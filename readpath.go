package doceph

import (
	"fmt"
	"math/rand"

	"doceph/internal/radosbench"
	"doceph/internal/rbd"
	"doceph/internal/report"
	"doceph/internal/sim"
	"doceph/internal/wire"
)

// ---------------------------------------------------------------------------
// Read-path ablation: op mix x replica reads x DPU read cache x deployment.

// readPathSize is the object size of the ablation grid: small enough that
// per-op overheads (the DPU read cache's target) dominate, matching the
// smallops extension's regime.
const readPathSize = 64 << 10

// ReadPathResult is one row of the read-path ablation.
type ReadPathResult struct {
	Name       string
	ReadPct    int // 100 = pure read
	QueueDepth int
	ReadStats  ClassStats
	WriteStats ClassStats
	Window     Duration
	HostUtil   float64
	// BalancedReads counts reads the client dispatched to a non-primary
	// replica (0 with balancing off).
	BalancedReads int64
	// CacheHits/CacheMisses sum the DPU-side read cache counters over all
	// nodes (0 on Baseline or with the cache off).
	CacheHits   int64
	CacheMisses int64
}

// RunReadPathAblation measures the opened read path: pure-read, 70/30 and
// 50/50 mixes on both deployments, each with replica-read balancing and
// (DoCeph only) the DPU-side read cache toggled, plus queue-depth arms on
// the pure-read workload. Every knob defaults off; the first row of each
// deployment is the unmodified configuration.
func RunReadPathAblation(opts ExpOptions) ([]ReadPathResult, error) {
	opts = opts.withDefaults()

	type variant struct {
		name    string
		mode    Mode
		readPct int
		qd      int
		balance bool
		cache   bool
		pop     radosbench.Popularity
	}
	var variants []variant
	for _, mode := range []Mode{Baseline, DoCeph} {
		prefix := "baseline"
		if mode == DoCeph {
			prefix = "doceph"
		}
		for _, pct := range []int{100, 70, 50} {
			mix := fmt.Sprintf("%dR/%dW", pct, 100-pct)
			variants = append(variants,
				variant{name: prefix + " " + mix, mode: mode, readPct: pct},
				variant{name: prefix + " " + mix + " +balance", mode: mode, readPct: pct, balance: true})
			if mode == DoCeph {
				variants = append(variants,
					variant{name: prefix + " " + mix + " +cache", mode: mode, readPct: pct, cache: true},
					variant{name: prefix + " " + mix + " +balance+cache", mode: mode, readPct: pct, balance: true, cache: true})
			}
		}
		// Queue-depth arms: the closed loop widened to 4 slots per worker.
		variants = append(variants,
			variant{name: prefix + " 100R/0W qd=4", mode: mode, readPct: 100, qd: 4})
		// Popularity arms (the scale-out PR's skew models on the single
		// cluster): pure reads under Zipf and hotspot skew, with replica-read
		// balancing as the mitigation and (DoCeph) the read cache — a hot set
		// is exactly what DPU-side DDR can absorb.
		zipf := radosbench.Popularity{Kind: radosbench.PopZipf}
		hot := radosbench.Popularity{Kind: radosbench.PopHotspot}
		variants = append(variants,
			variant{name: prefix + " 100R/0W zipf", mode: mode, readPct: 100, pop: zipf},
			variant{name: prefix + " 100R/0W zipf+balance", mode: mode, readPct: 100, pop: zipf, balance: true},
			variant{name: prefix + " 100R/0W hotspot", mode: mode, readPct: 100, pop: hot})
		if mode == DoCeph {
			variants = append(variants,
				variant{name: prefix + " 100R/0W zipf+cache", mode: mode, readPct: 100, pop: zipf, cache: true})
		}
	}

	out := make([]ReadPathResult, len(variants))
	err := runParallel(len(variants), func(i int) error {
		v := variants[i]
		cfg := ClusterConfig{Mode: v.mode, Seed: opts.Seed}
		if v.balance {
			cfg.Client.BalanceReads = true
		}
		if v.cache {
			cfg.Bridge.ReadCache.Enable = true
		}
		cl := NewCluster(cfg)
		defer cl.Shutdown()
		op := BenchConfig{
			Threads: opts.Threads, ObjectBytes: readPathSize,
			Duration: opts.Duration, Warmup: opts.Warmup,
			QueueDepth: v.qd,
			Op:         ReadWorkload,
			Popularity: v.pop,
		}
		if v.readPct < 100 {
			op.Op = MixedWorkload
			op.ReadPercent = v.readPct
		}
		bench, err := RunBench(cl, op)
		if err != nil {
			return fmt.Errorf("readpath %q: %w", v.name, err)
		}
		res := ReadPathResult{
			Name:          v.name,
			ReadPct:       v.readPct,
			QueueDepth:    v.qd,
			ReadStats:     bench.ReadStats,
			WriteStats:    bench.WriteStats,
			Window:        bench.Window,
			HostUtil:      cl.HostCPUMerged().SingleCoreUtilization(),
			BalancedReads: cl.Client.Stats().BalancedReads,
		}
		for _, n := range cl.Nodes {
			if n.Bridge != nil {
				st := n.Bridge.Proxy.Stats()
				res.CacheHits += st.ReadCacheHits
				res.CacheMisses += st.ReadCacheMisses
			}
		}
		out[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ReadPathTable renders the read-path ablation.
func ReadPathTable(rows []ReadPathResult) *report.Table {
	t := &report.Table{
		Title: "Read path: op mix x replica reads x DPU read cache x deployment",
		Header: []string{"variant", "read IOPS", "read p99 (ms)", "write IOPS",
			"write p99 (ms)", "host CPU", "balanced", "cache hit"},
	}
	for _, r := range rows {
		hit := "-"
		if r.CacheHits+r.CacheMisses > 0 {
			hit = report.Pct(float64(r.CacheHits) / float64(r.CacheHits+r.CacheMisses))
		}
		wIOPS, wP99 := "-", "-"
		if r.WriteStats.Ops > 0 {
			wIOPS = report.F2(r.WriteStats.IOPS(r.Window))
			wP99 = report.F2(r.WriteStats.P99.Seconds() * 1e3)
		}
		t.AddRow(r.Name,
			report.F2(r.ReadStats.IOPS(r.Window)),
			report.F2(r.ReadStats.P99.Seconds()*1e3),
			wIOPS, wP99,
			report.Pct(r.HostUtil),
			fmt.Sprint(r.BalancedReads), hit)
	}
	t.AddNote("64KB objects; balance = read-from-secondary hashing, cache = DPU-side object read cache (both default off); zipf/hotspot = skewed read popularity over the prepopulated set (uniform otherwise)")
	return t
}

// ---------------------------------------------------------------------------
// Block-device comparison: the RBD-style striped device on both deployments.

// Block-device workload geometry: a 32 MiB volume striped over 4 MiB
// objects, an 8 MiB bulk load, then two passes of random 16 KiB reads (the
// second pass re-reads the same offsets, so the client page cache can
// absorb it entirely).
const (
	bdVolBytes  = 32 << 20
	bdObjBytes  = 4 << 20
	bdBulkBytes = 8 << 20
	bdReadBytes = 16 << 10
	bdReads     = 128
)

// BlockDeviceResult is one row of the block-device comparison.
type BlockDeviceResult struct {
	Name string
	// BulkWrite is the virtual time to stream the 8 MiB sequential load.
	BulkWrite Duration
	// ColdRead/WarmRead are the virtual times of the two random-read
	// passes; with the client cache on, WarmRead never reaches the cluster.
	ColdRead Duration
	WarmRead Duration
	// CacheHits is the client page cache's hit count (0 with it off).
	CacheHits int64
	// Intact reports that every read returned byte-identical data.
	Intact   bool
	HostUtil float64
}

// RunBlockDeviceComparison runs the striped block device's write + random
// read workload on both deployments with the client-side write-through
// cache off and on. The read offsets are a pure function of the seed, so
// all four arms replay the identical access pattern.
func RunBlockDeviceComparison(opts ExpOptions) ([]BlockDeviceResult, error) {
	opts = opts.withDefaults()

	type variant struct {
		name  string
		mode  Mode
		cache bool
	}
	variants := []variant{
		{name: "baseline rbd", mode: Baseline},
		{name: "baseline rbd +cache", mode: Baseline, cache: true},
		{name: "doceph rbd", mode: DoCeph},
		{name: "doceph rbd +cache", mode: DoCeph, cache: true},
	}
	out := make([]BlockDeviceResult, len(variants))
	err := runParallel(len(variants), func(i int) error {
		v := variants[i]
		res, err := runBlockDeviceCell(v.mode, v.cache, opts.Seed)
		if err != nil {
			return fmt.Errorf("blockdevice %q: %w", v.name, err)
		}
		res.Name = v.name
		out[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func runBlockDeviceCell(mode Mode, clientCache bool, seed int64) (BlockDeviceResult, error) {
	cl := NewCluster(ClusterConfig{Mode: mode, Seed: seed})
	defer cl.Shutdown()

	var res BlockDeviceResult
	var runErr error
	done := false
	cl.Env.Spawn("rbd-bench", func(p *sim.Proc) {
		p.SetThread(sim.NewThread("rbd-bench", "client"))
		dev, err := rbd.Create(p, cl.Client, "bench-vol", bdVolBytes, rbd.DeviceConfig{
			ObjectBytes: bdObjBytes,
			Cache:       rbd.CacheConfig{Enable: clientCache},
		})
		if err != nil {
			runErr = err
			return
		}

		bulk := make([]byte, bdBulkBytes)
		for i := range bulk {
			bulk[i] = byte(i*2654435761 + i>>8)
		}
		start := p.Now()
		if runErr = dev.WriteAt(p, wire.FromBytes(bulk), 0); runErr != nil {
			return
		}
		res.BulkWrite = p.Now().Sub(start)

		// Two identical passes of random reads inside the loaded region;
		// offsets come from the cell's own seeded source, not sim RNG, so
		// every arm sees the same pattern.
		offs := make([]int64, bdReads)
		r := rand.New(rand.NewSource(seed))
		for i := range offs {
			offs[i] = int64(r.Intn(bdBulkBytes-bdReadBytes)) &^ (bdReadBytes - 1)
		}
		res.Intact = true
		for pass := 0; pass < 2; pass++ {
			start = p.Now()
			for _, off := range offs {
				bl, err := dev.ReadAt(p, off, bdReadBytes)
				if err != nil {
					runErr = err
					return
				}
				want := wire.FromBytes(bulk[off : off+bdReadBytes])
				if bl.CRC32C() != want.CRC32C() {
					res.Intact = false
				}
			}
			if pass == 0 {
				res.ColdRead = p.Now().Sub(start)
			} else {
				res.WarmRead = p.Now().Sub(start)
			}
		}
		res.CacheHits = dev.Stats().CacheHits
		done = true
	})
	if err := cl.Env.RunUntil(sim.Time(10 * 60 * sim.Second)); err != nil {
		return res, err
	}
	if runErr != nil {
		return res, runErr
	}
	if !done {
		return res, fmt.Errorf("block device run did not complete")
	}
	res.HostUtil = cl.HostCPUMerged().SingleCoreUtilization()
	return res, nil
}

// BlockDeviceTable renders the block-device comparison.
func BlockDeviceTable(rows []BlockDeviceResult) *report.Table {
	t := &report.Table{
		Title: "RBD-style striped block device: 8MiB load + 2x128 random 16KiB reads",
		Header: []string{"variant", "bulk write (ms)", "cold reads (ms)",
			"warm reads (ms)", "cache hits", "intact", "host CPU"},
	}
	for _, r := range rows {
		t.AddRow(r.Name,
			report.F2(r.BulkWrite.Seconds()*1e3),
			report.F2(r.ColdRead.Seconds()*1e3),
			report.F2(r.WarmRead.Seconds()*1e3),
			fmt.Sprint(r.CacheHits), fmt.Sprint(r.Intact),
			report.Pct(r.HostUtil))
	}
	t.AddNote("32MiB volume over 4MiB stripe objects; +cache = client-side write-through page cache (default off) — the bulk load warms it, so cached arms absorb both read passes client-side")
	return t
}

package cephmsg

import (
	"testing"

	"doceph/internal/wire"
)

// segmented rebuilds raw as a multi-segment Bufferlist so the Decoder's
// cross-segment gather path is exercised, not just the contiguous fast
// path.
func segmented(raw []byte, segLen int) *wire.Bufferlist {
	bl := &wire.Bufferlist{}
	for len(raw) > 0 {
		n := segLen
		if n > len(raw) {
			n = len(raw)
		}
		bl.AppendCopy(raw[:n])
		raw = raw[n:]
	}
	return bl
}

// fuzzSeeds is one valid frame per message type — the encoded golden
// corpus the fuzzer mutates into corrupt and truncated variants.
func fuzzSeeds() []Message {
	payload := wire.FromBytes([]byte("0123456789abcdef"))
	return []Message{
		&MOSDOp{Tid: 1, Epoch: 2, Src: "client.0", Pool: "benchmark_data",
			Object: "obj-1", Op: OpWrite, Offset: 0, Length: 16, Data: payload},
		&MOSDOp{Tid: 2, Epoch: 2, Src: "client.0", Pool: "p", Object: "o",
			Op: OpOmapSet, Key: "k", Data: payload},
		&MOSDOpReply{Tid: 1, Object: "obj-1", Op: OpRead, Result: 0,
			Version: 3, Size: 16, Data: payload},
		&MRepOp{Tid: 4, Epoch: 2, PGID: 17, Object: "obj-1", Op: OpWrite,
			Offset: 0, Data: payload},
		&MRepOpReply{Tid: 4, PGID: 17, Result: 0},
		&MPing{Src: "osd.0", Stamp: 12345},
		&MPingReply{Src: "osd.1", Stamp: 12345},
		&MOSDMap{Epoch: 7, Up: []int32{0, 1}},
		&MOSDFailure{Reporter: "osd.0", Failed: 1, Epoch: 7},
		&MPGPush{Tid: 9, Epoch: 7, PGID: 3, Object: "obj-2", Version: 5,
			Force: true, Data: payload, OmapKeys: []string{"a"},
			OmapVals: [][]byte{{1, 2}}},
		&MPGPushAck{Tid: 9, PGID: 3, Object: "obj-2", Result: 0},
		&MScrub{Tid: 11, PGID: 3, Object: "obj-2"},
		&MScrubReply{Tid: 11, PGID: 3, Object: "obj-2", Exists: true,
			CRC: 0xdeadbeef, Size: 16},
		&MGetStats{Tid: 13},
		&MStatsReply{Tid: 13, Source: "osd.0", Keys: []string{"ops"},
			Values: []int64{42}},
		&MGetMap{Epoch: 7},
		&MOSDBoot{OSD: 1, Epoch: 7},
		// Stream framing. The open's inner op must carry no inline payload
		// (the strict decoder rejects smuggled data; bulk travels in chunks).
		&MStreamOpen{StreamID: 21, Total: 32, ChunkBytes: 16, Window: 2, Lane: 5,
			Inner: &MOSDOp{Tid: 21, Epoch: 2, Src: "client.0", Pool: "p",
				Object: "obj-3", Op: OpWrite, Length: 32}},
		&MStreamChunk{StreamID: 21, Seq: 0, Lane: 5, Data: payload},
		&MStreamEnd{StreamID: 21, Chunks: 2, Lane: 5},
		&MStreamCredit{StreamID: 21, Credits: 1, Lane: 5},
		&MStreamAbort{StreamID: 21, Lane: 5},
	}
}

// FuzzDecode asserts the codec's robustness contract: Decode must return
// an error — never panic, never spin — on arbitrary corrupt or truncated
// input, whether the frame arrives contiguous or scattered across tiny
// segments. Run with: go test -fuzz=FuzzDecode ./internal/cephmsg
func FuzzDecode(f *testing.F) {
	for _, m := range fuzzSeeds() {
		f.Add(Encode(m).Bytes())
	}
	f.Add([]byte{})
	f.Add([]byte{0xff})
	f.Add([]byte{0xff, 0xff})
	f.Fuzz(func(t *testing.T, raw []byte) {
		for _, segLen := range []int{len(raw) + 1, 7, 1} {
			m, err := Decode(segmented(raw, segLen))
			if err != nil {
				continue
			}
			if m == nil {
				t.Fatal("Decode returned nil message with nil error")
			}
			// Whatever decodes must re-encode without panicking.
			Encode(m)
		}
	})
}

// FuzzStreamAssembler drives the stream protocol state machine with an
// arbitrary frame script — interleaved streams, torn (short/oversized)
// chunks, out-of-order sequences, credit violations, ends and aborts for
// streams in any state. The contract under fuzz: never panic, report every
// violation as an error, keep the open-stream count bounded, and only
// return a fully-sized payload from a successful End.
// Run with: go test -fuzz=FuzzStreamAssembler ./internal/cephmsg
//
// Script encoding, 4 bytes per op: {opcode, streamID, argA, argB}.
//
//	opcode%6: 0=open(total=argA*8, chunk=argB, window=argA%4+1)
//	          1=chunk(seq=argA, size=argB)  2=end(chunks=argA)
//	          3=credit(n=argA)              4=abort      5=re-open dup
func FuzzStreamAssembler(f *testing.F) {
	// Clean open → in-order chunks → end.
	f.Add([]byte{
		0, 1, 2, 8, // open id1 total=16 chunk=8 window=2
		1, 1, 0, 8, // chunk seq0 size8
		3, 1, 1, 0, // credit 1
		1, 1, 1, 8, // chunk seq1 size8
		2, 1, 2, 0, // end chunks=2
	})
	// Interleaved streams with a credit violation on one of them.
	f.Add([]byte{
		0, 1, 2, 8,
		0, 2, 2, 8,
		1, 1, 0, 8,
		1, 2, 0, 8,
		1, 1, 1, 8, // id1 window exhausted: violation
		4, 2, 0, 0, // abort id2
	})
	// Torn chunks: short, oversized, wrong seq, end with wrong count.
	f.Add([]byte{
		0, 3, 4, 16,
		1, 3, 0, 0, // zero-size chunk
		1, 3, 0, 17, // oversized chunk
		1, 3, 2, 16, // out-of-order seq
		2, 3, 7, 0, // end with bogus count
	})
	f.Fuzz(func(t *testing.T, script []byte) {
		a := NewAssembler()
		a.MaxStreams = 8
		accumulate := len(script)%2 == 0
		for i := 0; i+4 <= len(script); i += 4 {
			op, id := script[i]%6, uint64(script[i+1]%4)
			argA, argB := script[i+2], script[i+3]
			switch op {
			case 0, 5:
				a.Open(&MStreamOpen{
					StreamID: id, Total: int64(argA) * 8, ChunkBytes: int64(argB),
					Window: uint32(argA%4) + 1,
					Inner:  &MOSDOp{Tid: id, Object: "o", Op: OpWrite},
				}, accumulate)
			case 1:
				data := make([]byte, int(argB))
				a.Chunk(&MStreamChunk{StreamID: id, Seq: uint32(argA),
					Data: wire.FromBytes(data)})
			case 2:
				inner, err := a.End(&MStreamEnd{StreamID: id, Chunks: uint32(argA)})
				if err == nil && inner == nil {
					t.Fatal("End returned nil inner with nil error")
				}
			case 3:
				a.Credit(id, uint32(argA))
			case 4:
				a.Abort(id)
			}
			if a.Active() > a.MaxStreams {
				t.Fatalf("open streams %d exceed bound %d", a.Active(), a.MaxStreams)
			}
		}
	})
}

// TestDecodeSeedsRoundTrip pins that every fuzz seed actually decodes
// back to its own type — guarding the corpus itself against rot.
func TestDecodeSeedsRoundTrip(t *testing.T) {
	for _, m := range fuzzSeeds() {
		enc := Encode(m)
		for _, segLen := range []int{int(enc.Length()), 3} {
			got, err := Decode(segmented(enc.Bytes(), segLen))
			if err != nil {
				t.Fatalf("%T (seg %d): %v", m, segLen, err)
			}
			if got.MsgType() != m.MsgType() {
				t.Errorf("%T: round-tripped to type %v", m, got.MsgType())
			}
		}
	}
}

package cephmsg

import (
	"testing"

	"doceph/internal/wire"
)

// segmented rebuilds raw as a multi-segment Bufferlist so the Decoder's
// cross-segment gather path is exercised, not just the contiguous fast
// path.
func segmented(raw []byte, segLen int) *wire.Bufferlist {
	bl := &wire.Bufferlist{}
	for len(raw) > 0 {
		n := segLen
		if n > len(raw) {
			n = len(raw)
		}
		bl.AppendCopy(raw[:n])
		raw = raw[n:]
	}
	return bl
}

// fuzzSeeds is one valid frame per message type — the encoded golden
// corpus the fuzzer mutates into corrupt and truncated variants.
func fuzzSeeds() []Message {
	payload := wire.FromBytes([]byte("0123456789abcdef"))
	return []Message{
		&MOSDOp{Tid: 1, Epoch: 2, Src: "client.0", Pool: "benchmark_data",
			Object: "obj-1", Op: OpWrite, Offset: 0, Length: 16, Data: payload},
		&MOSDOp{Tid: 2, Epoch: 2, Src: "client.0", Pool: "p", Object: "o",
			Op: OpOmapSet, Key: "k", Data: payload},
		&MOSDOpReply{Tid: 1, Object: "obj-1", Op: OpRead, Result: 0,
			Version: 3, Size: 16, Data: payload},
		&MRepOp{Tid: 4, Epoch: 2, PGID: 17, Object: "obj-1", Op: OpWrite,
			Offset: 0, Data: payload},
		&MRepOpReply{Tid: 4, PGID: 17, Result: 0},
		&MPing{Src: "osd.0", Stamp: 12345},
		&MPingReply{Src: "osd.1", Stamp: 12345},
		&MOSDMap{Epoch: 7, Up: []int32{0, 1}},
		&MOSDFailure{Reporter: "osd.0", Failed: 1, Epoch: 7},
		&MPGPush{Tid: 9, Epoch: 7, PGID: 3, Object: "obj-2", Version: 5,
			Force: true, Data: payload, OmapKeys: []string{"a"},
			OmapVals: [][]byte{{1, 2}}},
		&MPGPushAck{Tid: 9, PGID: 3, Object: "obj-2", Result: 0},
		&MScrub{Tid: 11, PGID: 3, Object: "obj-2"},
		&MScrubReply{Tid: 11, PGID: 3, Object: "obj-2", Exists: true,
			CRC: 0xdeadbeef, Size: 16},
		&MGetStats{Tid: 13},
		&MStatsReply{Tid: 13, Source: "osd.0", Keys: []string{"ops"},
			Values: []int64{42}},
		&MGetMap{Epoch: 7},
		&MOSDBoot{OSD: 1, Epoch: 7},
	}
}

// FuzzDecode asserts the codec's robustness contract: Decode must return
// an error — never panic, never spin — on arbitrary corrupt or truncated
// input, whether the frame arrives contiguous or scattered across tiny
// segments. Run with: go test -fuzz=FuzzDecode ./internal/cephmsg
func FuzzDecode(f *testing.F) {
	for _, m := range fuzzSeeds() {
		f.Add(Encode(m).Bytes())
	}
	f.Add([]byte{})
	f.Add([]byte{0xff})
	f.Add([]byte{0xff, 0xff})
	f.Fuzz(func(t *testing.T, raw []byte) {
		for _, segLen := range []int{len(raw) + 1, 7, 1} {
			m, err := Decode(segmented(raw, segLen))
			if err != nil {
				continue
			}
			if m == nil {
				t.Fatal("Decode returned nil message with nil error")
			}
			// Whatever decodes must re-encode without panicking.
			Encode(m)
		}
	})
}

// TestDecodeSeedsRoundTrip pins that every fuzz seed actually decodes
// back to its own type — guarding the corpus itself against rot.
func TestDecodeSeedsRoundTrip(t *testing.T) {
	for _, m := range fuzzSeeds() {
		enc := Encode(m)
		for _, segLen := range []int{int(enc.Length()), 3} {
			got, err := Decode(segmented(enc.Bytes(), segLen))
			if err != nil {
				t.Fatalf("%T (seg %d): %v", m, segLen, err)
			}
			if got.MsgType() != m.MsgType() {
				t.Errorf("%T: round-tripped to type %v", m, got.MsgType())
			}
		}
	}
}

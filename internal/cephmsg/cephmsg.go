// Package cephmsg defines the messages exchanged by the mini-RADOS cluster:
// client ops, replication sub-ops, heartbeats and map updates — the
// counterparts of Ceph's MOSDOp/MOSDRepOp/MOSDPing/MOSDMap families. Each
// message encodes to and decodes from a wire.Bufferlist; framing (length
// prefix + CRC) is owned by the messenger.
package cephmsg

import (
	"fmt"

	"doceph/internal/wire"
)

// Type discriminates message kinds on the wire.
type Type uint16

// Message type tags.
const (
	TOSDOp      Type = 0x0701 // client -> primary OSD
	TOSDOpReply Type = 0x0702 // primary OSD -> client
	TRepOp      Type = 0x0703 // primary -> replica
	TRepOpReply Type = 0x0704 // replica -> primary
	TPing       Type = 0x0705 // heartbeat
	TPingReply  Type = 0x0706
	TOSDMap     Type = 0x0707 // monitor -> daemons
	TOSDFailure Type = 0x0708 // osd -> monitor failure report
	TPGPush     Type = 0x0709 // recovery: primary -> backfill target
	TPGPushAck  Type = 0x070A // recovery: target -> primary
	TScrub      Type = 0x070B // scrub: primary -> replica digest request
	TScrubReply Type = 0x070C // scrub: replica -> primary digest
	TGetStats   Type = 0x070D // mgr -> osd statistics poll
	TStatsReply Type = 0x070E // osd -> mgr statistics report
	TGetMap     Type = 0x070F // client/osd -> monitor map refresh request
	TOSDBoot    Type = 0x0710 // osd -> monitor "I am alive" announcement
	// Stream framing (see stream.go): flow-controlled chunked transfer of
	// large write payloads.
	TStreamOpen   Type = 0x0711 // sender -> receiver: start a chunked transfer
	TStreamChunk  Type = 0x0712 // sender -> receiver: one ordered payload chunk
	TStreamEnd    Type = 0x0713 // sender -> receiver: stream complete
	TStreamCredit Type = 0x0714 // receiver -> sender: flow-control credit return
	TStreamAbort  Type = 0x0715 // sender -> receiver: discard partial stream
)

func (t Type) String() string {
	switch t {
	case TOSDOp:
		return "osd_op"
	case TOSDOpReply:
		return "osd_op_reply"
	case TRepOp:
		return "rep_op"
	case TRepOpReply:
		return "rep_op_reply"
	case TPing:
		return "ping"
	case TPingReply:
		return "ping_reply"
	case TOSDMap:
		return "osd_map"
	case TOSDFailure:
		return "osd_failure"
	case TPGPush:
		return "pg_push"
	case TPGPushAck:
		return "pg_push_ack"
	case TScrub:
		return "scrub"
	case TScrubReply:
		return "scrub_reply"
	case TGetStats:
		return "get_stats"
	case TStatsReply:
		return "stats_reply"
	case TGetMap:
		return "get_map"
	case TOSDBoot:
		return "osd_boot"
	case TStreamOpen:
		return "stream_open"
	case TStreamChunk:
		return "stream_chunk"
	case TStreamEnd:
		return "stream_end"
	case TStreamCredit:
		return "stream_credit"
	case TStreamAbort:
		return "stream_abort"
	}
	return fmt.Sprintf("type(%#04x)", uint16(t))
}

// Op is the operation carried by an MOSDOp.
type Op uint8

// Client operation codes.
const (
	OpWrite Op = iota + 1
	OpRead
	OpStat
	OpDelete
	// Omap client ops (librados' omap family, used by gateway bucket
	// indexes).
	OpOmapSet
	OpOmapGet
	OpOmapKeys
	OpOmapRm
)

// FlagBalanceReads marks a read the client is willing to have served by
// any in-acting-set replica, not just the PG primary — the counterpart of
// Ceph's CEPH_OSD_FLAG_BALANCE_READS. It travels in the high bit of the
// op byte, so flagged requests are the same wire length as unflagged ones
// (both the PayloadBytes cost model and real WireEncode framing see
// identical sizes).
const FlagBalanceReads uint8 = 0x80

func (o Op) String() string {
	switch o {
	case OpWrite:
		return "write"
	case OpRead:
		return "read"
	case OpStat:
		return "stat"
	case OpDelete:
		return "delete"
	case OpOmapSet:
		return "omap-set"
	case OpOmapGet:
		return "omap-get"
	case OpOmapKeys:
		return "omap-keys"
	case OpOmapRm:
		return "omap-rm"
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Message is a decoded cluster message.
type Message interface {
	// MsgType returns the wire discriminator.
	MsgType() Type
	// EncodePayload appends the message body (everything after the type
	// tag) to e.
	EncodePayload(e *wire.Encoder)
	// PayloadBytes is the approximate body size used by CPU/network cost
	// models without encoding.
	PayloadBytes() int64
}

// MOSDOp is a client request against one object.
type MOSDOp struct {
	Tid    uint64
	Epoch  uint32
	Src    string
	Pool   string
	Object string
	Op     Op
	Offset uint64
	Length uint64
	// Flags carries op modifiers (FlagBalanceReads); packed into the op
	// byte's high bits on the wire.
	Flags uint8
	// Key addresses omap operations; Data carries write payloads and omap
	// values.
	Key  string
	Data *wire.Bufferlist
	// TraceCtx is the sender's trace span context (trace.SpanID as a raw
	// uint64). It is simulator instrumentation, not protocol state: it is
	// never encoded, so wire-encoded round trips drop it.
	TraceCtx uint64
}

// MsgType implements Message.
func (m *MOSDOp) MsgType() Type { return TOSDOp }

// EncodePayload implements Message.
func (m *MOSDOp) EncodePayload(e *wire.Encoder) {
	e.U64(m.Tid)
	e.U32(m.Epoch)
	e.String(m.Src)
	e.String(m.Pool)
	e.String(m.Object)
	e.U8(uint8(m.Op) | m.Flags)
	e.U64(m.Offset)
	e.U64(m.Length)
	e.String(m.Key)
	e.BufferlistField(data(m.Data))
}

// PayloadBytes implements Message.
func (m *MOSDOp) PayloadBytes() int64 {
	return 64 + int64(len(m.Src)+len(m.Pool)+len(m.Object)+len(m.Key)) +
		int64(data(m.Data).Length())
}

// Result codes carried in MOSDOpReply.Result.
const (
	ResOK         int32 = 0
	ResNotPrimary int32 = -2  // client must refresh its map and retry
	ResNotFound   int32 = -61 // object does not exist
	ResError      int32 = -5  // backend I/O error
	ResNoQuorum   int32 = -11 // PG below min_size: retry after recovery (EAGAIN)
)

// MOSDOpReply answers an MOSDOp.
type MOSDOpReply struct {
	Tid     uint64
	Object  string
	Op      Op
	Result  int32
	Version uint64
	Size    uint64           // stat result
	Data    *wire.Bufferlist // read payload
	// TraceCtx carries the trace span context out-of-band (see MOSDOp).
	TraceCtx uint64
}

// MsgType implements Message.
func (m *MOSDOpReply) MsgType() Type { return TOSDOpReply }

// EncodePayload implements Message.
func (m *MOSDOpReply) EncodePayload(e *wire.Encoder) {
	e.U64(m.Tid)
	e.String(m.Object)
	e.U8(uint8(m.Op))
	e.U32(uint32(m.Result))
	e.U64(m.Version)
	e.U64(m.Size)
	e.BufferlistField(data(m.Data))
}

// PayloadBytes implements Message.
func (m *MOSDOpReply) PayloadBytes() int64 {
	return 40 + int64(len(m.Object)) + int64(data(m.Data).Length())
}

// MRepOp carries a replicated write from a primary to a replica OSD.
type MRepOp struct {
	Tid    uint64
	Epoch  uint32
	PGID   uint32
	Object string
	Op     Op
	Offset uint64
	Key    string
	Data   *wire.Bufferlist
	// TraceCtx carries the trace span context out-of-band (see MOSDOp).
	TraceCtx uint64
}

// MsgType implements Message.
func (m *MRepOp) MsgType() Type { return TRepOp }

// EncodePayload implements Message.
func (m *MRepOp) EncodePayload(e *wire.Encoder) {
	e.U64(m.Tid)
	e.U32(m.Epoch)
	e.U32(m.PGID)
	e.String(m.Object)
	e.U8(uint8(m.Op))
	e.U64(m.Offset)
	e.String(m.Key)
	e.BufferlistField(data(m.Data))
}

// PayloadBytes implements Message.
func (m *MRepOp) PayloadBytes() int64 {
	return 48 + int64(len(m.Object)+len(m.Key)) + int64(data(m.Data).Length())
}

// MRepOpReply acknowledges an MRepOp.
type MRepOpReply struct {
	Tid    uint64
	PGID   uint32
	Result int32
	// TraceCtx carries the trace span context out-of-band (see MOSDOp).
	TraceCtx uint64
}

// MsgType implements Message.
func (m *MRepOpReply) MsgType() Type { return TRepOpReply }

// EncodePayload implements Message.
func (m *MRepOpReply) EncodePayload(e *wire.Encoder) {
	e.U64(m.Tid)
	e.U32(m.PGID)
	e.U32(uint32(m.Result))
}

// PayloadBytes implements Message.
func (m *MRepOpReply) PayloadBytes() int64 { return 16 }

// MPing is a heartbeat probe; Stamp is the sender's virtual-time nanosecond
// clock, echoed back in MPingReply for RTT estimation.
type MPing struct {
	Src   string
	Stamp int64
}

// MsgType implements Message.
func (m *MPing) MsgType() Type { return TPing }

// EncodePayload implements Message.
func (m *MPing) EncodePayload(e *wire.Encoder) {
	e.String(m.Src)
	e.I64(m.Stamp)
}

// PayloadBytes implements Message.
func (m *MPing) PayloadBytes() int64 { return 16 + int64(len(m.Src)) }

// MPingReply echoes an MPing.
type MPingReply struct {
	Src   string
	Stamp int64
}

// MsgType implements Message.
func (m *MPingReply) MsgType() Type { return TPingReply }

// EncodePayload implements Message.
func (m *MPingReply) EncodePayload(e *wire.Encoder) {
	e.String(m.Src)
	e.I64(m.Stamp)
}

// PayloadBytes implements Message.
func (m *MPingReply) PayloadBytes() int64 { return 16 + int64(len(m.Src)) }

// MOSDMap distributes a new OSDMap epoch: the set of up+in OSD ids.
type MOSDMap struct {
	Epoch uint32
	Up    []int32
}

// MsgType implements Message.
func (m *MOSDMap) MsgType() Type { return TOSDMap }

// EncodePayload implements Message.
func (m *MOSDMap) EncodePayload(e *wire.Encoder) {
	e.U32(m.Epoch)
	e.U32(uint32(len(m.Up)))
	for _, id := range m.Up {
		e.U32(uint32(id))
	}
}

// PayloadBytes implements Message.
func (m *MOSDMap) PayloadBytes() int64 { return 8 + 4*int64(len(m.Up)) }

// MOSDFailure reports a suspected-dead peer OSD to the monitor.
type MOSDFailure struct {
	Reporter string
	Failed   int32
	Epoch    uint32
}

// MsgType implements Message.
func (m *MOSDFailure) MsgType() Type { return TOSDFailure }

// EncodePayload implements Message.
func (m *MOSDFailure) EncodePayload(e *wire.Encoder) {
	e.String(m.Reporter)
	e.U32(uint32(m.Failed))
	e.U32(m.Epoch)
}

// PayloadBytes implements Message.
func (m *MOSDFailure) PayloadBytes() int64 { return 12 + int64(len(m.Reporter)) }

// MPGPush carries one object from a PG's primary to a backfill target
// during recovery (the rebalancing traffic the paper's §1 attributes to the
// messenger layer).
type MPGPush struct {
	Tid     uint64
	Epoch   uint32
	PGID    uint32
	Object  string
	Version uint64
	// Force overwrites the target's copy even if present (scrub repair).
	Force bool
	Data  *wire.Bufferlist
	// OmapKeys/OmapVals carry the object's key-value map; recovery must
	// rebuild it along with the data or bucket indexes would be lost.
	OmapKeys []string
	OmapVals [][]byte
}

// MsgType implements Message.
func (m *MPGPush) MsgType() Type { return TPGPush }

// EncodePayload implements Message.
func (m *MPGPush) EncodePayload(e *wire.Encoder) {
	e.U64(m.Tid)
	e.U32(m.Epoch)
	e.U32(m.PGID)
	e.String(m.Object)
	e.U64(m.Version)
	e.Bool(m.Force)
	e.BufferlistField(data(m.Data))
	e.U32(uint32(len(m.OmapKeys)))
	for i := range m.OmapKeys {
		e.String(m.OmapKeys[i])
		e.Blob(m.OmapVals[i])
	}
}

// PayloadBytes implements Message.
func (m *MPGPush) PayloadBytes() int64 {
	n := 48 + int64(len(m.Object)) + int64(data(m.Data).Length())
	for i := range m.OmapKeys {
		n += int64(len(m.OmapKeys[i])+len(m.OmapVals[i])) + 8
	}
	return n
}

// MPGPushAck confirms a pushed object is durable on the target.
type MPGPushAck struct {
	Tid    uint64
	PGID   uint32
	Object string
	Result int32
}

// MsgType implements Message.
func (m *MPGPushAck) MsgType() Type { return TPGPushAck }

// EncodePayload implements Message.
func (m *MPGPushAck) EncodePayload(e *wire.Encoder) {
	e.U64(m.Tid)
	e.U32(m.PGID)
	e.String(m.Object)
	e.U32(uint32(m.Result))
}

// PayloadBytes implements Message.
func (m *MPGPushAck) PayloadBytes() int64 { return 24 + int64(len(m.Object)) }

// MScrub asks a replica for an object's content digest (deep scrub).
type MScrub struct {
	Tid    uint64
	PGID   uint32
	Object string
}

// MsgType implements Message.
func (m *MScrub) MsgType() Type { return TScrub }

// EncodePayload implements Message.
func (m *MScrub) EncodePayload(e *wire.Encoder) {
	e.U64(m.Tid)
	e.U32(m.PGID)
	e.String(m.Object)
}

// PayloadBytes implements Message.
func (m *MScrub) PayloadBytes() int64 { return 16 + int64(len(m.Object)) }

// MScrubReply returns a replica's digest of one object.
type MScrubReply struct {
	Tid    uint64
	PGID   uint32
	Object string
	Exists bool
	CRC    uint32
	Size   uint64
}

// MsgType implements Message.
func (m *MScrubReply) MsgType() Type { return TScrubReply }

// EncodePayload implements Message.
func (m *MScrubReply) EncodePayload(e *wire.Encoder) {
	e.U64(m.Tid)
	e.U32(m.PGID)
	e.String(m.Object)
	e.Bool(m.Exists)
	e.U32(m.CRC)
	e.U64(m.Size)
}

// PayloadBytes implements Message.
func (m *MScrubReply) PayloadBytes() int64 { return 32 + int64(len(m.Object)) }

// MGetStats polls a daemon for its runtime statistics (MGR traffic).
type MGetStats struct {
	Tid uint64
}

// MsgType implements Message.
func (m *MGetStats) MsgType() Type { return TGetStats }

// EncodePayload implements Message.
func (m *MGetStats) EncodePayload(e *wire.Encoder) { e.U64(m.Tid) }

// PayloadBytes implements Message.
func (m *MGetStats) PayloadBytes() int64 { return 8 }

// MStatsReply reports a daemon's counters as ordered key/value pairs; the
// schema is owned by the sender so the MGR aggregates without coupling to
// daemon internals.
type MStatsReply struct {
	Tid    uint64
	Source string
	Keys   []string
	Values []int64
}

// MsgType implements Message.
func (m *MStatsReply) MsgType() Type { return TStatsReply }

// EncodePayload implements Message.
func (m *MStatsReply) EncodePayload(e *wire.Encoder) {
	e.U64(m.Tid)
	e.String(m.Source)
	e.U32(uint32(len(m.Keys)))
	for i := range m.Keys {
		e.String(m.Keys[i])
		e.I64(m.Values[i])
	}
}

// PayloadBytes implements Message.
func (m *MStatsReply) PayloadBytes() int64 {
	n := int64(16 + len(m.Source))
	for _, k := range m.Keys {
		n += int64(len(k)) + 12
	}
	return n
}

// MGetMap asks the monitor to send the requester its current map epoch
// directly (an on-demand refresh: after an op timeout a client cannot rely
// on having seen the broadcast that may have been lost with the fault).
type MGetMap struct {
	// Epoch is the requester's current epoch; the monitor may skip the
	// reply if it has nothing newer.
	Epoch uint32
}

// MsgType implements Message.
func (m *MGetMap) MsgType() Type { return TGetMap }

// EncodePayload implements Message.
func (m *MGetMap) EncodePayload(e *wire.Encoder) { e.U32(m.Epoch) }

// PayloadBytes implements Message.
func (m *MGetMap) PayloadBytes() int64 { return 4 }

// MOSDBoot announces a live OSD to the monitor (Ceph's MOSDBoot). Sent on
// daemon restart and, crucially, when a running OSD sees a map that marks
// it down: the monitor's failure evidence was stale, and the daemon defends
// itself by requesting to be marked back up.
type MOSDBoot struct {
	OSD   int32
	Epoch uint32 // sender's map epoch when it booted/protested
}

// MsgType implements Message.
func (m *MOSDBoot) MsgType() Type { return TOSDBoot }

// EncodePayload implements Message.
func (m *MOSDBoot) EncodePayload(e *wire.Encoder) {
	e.U32(uint32(m.OSD))
	e.U32(m.Epoch)
}

// PayloadBytes implements Message.
func (m *MOSDBoot) PayloadBytes() int64 { return 8 }

func data(bl *wire.Bufferlist) *wire.Bufferlist {
	if bl == nil {
		return &wire.Bufferlist{}
	}
	return bl
}

// Encode serializes m with its type tag into a Bufferlist. Headers and
// other fixed-size fields go into a pooled scratch segment; bulk payload
// fields (MOSDOp/MRepOp data and friends) are spliced in as shared
// segments, so encoding never copies the payload. The first segment of the
// result is pool-owned: once the list and everything decoded zero-copy
// from it are dead, the framing layer hands it back with wire.PutBuffer.
func Encode(m Message) *wire.Bufferlist {
	hint := int(m.PayloadBytes()) + 8 - int(data(payloadOf(m)).Length())
	e := wire.NewEncoderBL(wire.GetBuffer(hint))
	e.U16(uint16(m.MsgType()))
	m.EncodePayload(e)
	return e.Bufferlist()
}

// TraceContext returns the out-of-band trace span context carried by op
// messages (0 for message types that carry none). The messenger uses it to
// parent its framing spans without knowing the concrete message type.
func TraceContext(m Message) uint64 {
	switch m := m.(type) {
	case *MOSDOp:
		return m.TraceCtx
	case *MOSDOpReply:
		return m.TraceCtx
	case *MRepOp:
		return m.TraceCtx
	case *MRepOpReply:
		return m.TraceCtx
	case *MStreamOpen:
		return m.TraceCtx
	case *MStreamChunk:
		return m.TraceCtx
	}
	return 0
}

// LaneKey returns a stable ordering key for multi-lane transports and
// whether the message may leave lane 0 at all. Messages addressing one
// object hash by object name (RADOS ordering is per object per session);
// PG-scoped traffic hashes by PG id so a PG's replication stream stays
// FIFO. Everything else — maps, boots, heartbeats, stats — returns false
// and must ride lane 0, preserving the strict peer-wide ordering those
// protocols assume.
func LaneKey(m Message) (uint64, bool) {
	switch m := m.(type) {
	case *MOSDOp:
		return fnv64(m.Object), true
	case *MOSDOpReply:
		return fnv64(m.Object), true
	case *MRepOp:
		return uint64(m.PGID), true
	case *MRepOpReply:
		return uint64(m.PGID), true
	case *MPGPush:
		return uint64(m.PGID), true
	case *MPGPushAck:
		return uint64(m.PGID), true
	case *MScrub:
		return uint64(m.PGID), true
	case *MScrubReply:
		return uint64(m.PGID), true
	// Stream frames echo the ordering key of the op they carry, so every
	// frame of one stream stays on one lane (per-stream FIFO), and credits
	// flow back on the matching reverse lane.
	case *MStreamOpen:
		return m.Lane, true
	case *MStreamChunk:
		return m.Lane, true
	case *MStreamEnd:
		return m.Lane, true
	case *MStreamCredit:
		return m.Lane, true
	case *MStreamAbort:
		return m.Lane, true
	}
	return 0, false
}

// fnv64 is FNV-1a, inlined so lane steering never allocates.
func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// payloadOf returns the bulk data field excluded from the scratch sizing
// hint (it travels as shared segments, not through scratch).
func payloadOf(m Message) *wire.Bufferlist {
	switch m := m.(type) {
	case *MOSDOp:
		return m.Data
	case *MOSDOpReply:
		return m.Data
	case *MRepOp:
		return m.Data
	case *MPGPush:
		return m.Data
	case *MStreamChunk:
		return m.Data
	}
	return nil
}

// Decode parses a message previously produced by Encode.
func Decode(bl *wire.Bufferlist) (Message, error) {
	return decodeMsg(wire.NewDecoderBL(bl), 0)
}

// decodeMsg parses one tag+payload frame from d. depth guards the one
// level of nesting MStreamOpen introduces (its inner op is a nested frame;
// an inner frame may not itself be a stream message).
func decodeMsg(d *wire.Decoder, depth int) (Message, error) {
	t := Type(d.U16())
	var m Message
	switch t {
	case TOSDOp:
		op := &MOSDOp{
			Tid: d.U64(), Epoch: d.U32(), Src: d.String(), Pool: d.String(),
			Object: d.String(),
		}
		// The op byte carries flags in its high bits (FlagBalanceReads).
		b := d.U8()
		op.Op, op.Flags = Op(b&^FlagBalanceReads), b&FlagBalanceReads
		op.Offset, op.Length = d.U64(), d.U64()
		op.Key, op.Data = d.String(), d.BufferlistField()
		m = op
	case TOSDOpReply:
		m = &MOSDOpReply{
			Tid: d.U64(), Object: d.String(), Op: Op(d.U8()),
			Result: int32(d.U32()), Version: d.U64(), Size: d.U64(),
			Data: d.BufferlistField(),
		}
	case TRepOp:
		m = &MRepOp{
			Tid: d.U64(), Epoch: d.U32(), PGID: d.U32(), Object: d.String(),
			Op: Op(d.U8()), Offset: d.U64(), Key: d.String(),
			Data: d.BufferlistField(),
		}
	case TRepOpReply:
		m = &MRepOpReply{Tid: d.U64(), PGID: d.U32(), Result: int32(d.U32())}
	case TPing:
		m = &MPing{Src: d.String(), Stamp: d.I64()}
	case TPingReply:
		m = &MPingReply{Src: d.String(), Stamp: d.I64()}
	case TOSDMap:
		mm := &MOSDMap{Epoch: d.U32()}
		n := d.U32()
		for i := uint32(0); i < n && d.Err() == nil; i++ {
			mm.Up = append(mm.Up, int32(d.U32()))
		}
		m = mm
	case TOSDFailure:
		m = &MOSDFailure{Reporter: d.String(), Failed: int32(d.U32()), Epoch: d.U32()}
	case TPGPush:
		mp := &MPGPush{
			Tid: d.U64(), Epoch: d.U32(), PGID: d.U32(), Object: d.String(),
			Version: d.U64(), Force: d.Bool(), Data: d.BufferlistField(),
		}
		nk := d.U32()
		for i := uint32(0); i < nk && d.Err() == nil; i++ {
			mp.OmapKeys = append(mp.OmapKeys, d.String())
			mp.OmapVals = append(mp.OmapVals, d.Blob())
		}
		m = mp
	case TPGPushAck:
		m = &MPGPushAck{Tid: d.U64(), PGID: d.U32(), Object: d.String(),
			Result: int32(d.U32())}
	case TScrub:
		m = &MScrub{Tid: d.U64(), PGID: d.U32(), Object: d.String()}
	case TScrubReply:
		m = &MScrubReply{Tid: d.U64(), PGID: d.U32(), Object: d.String(),
			Exists: d.Bool(), CRC: d.U32(), Size: d.U64()}
	case TGetStats:
		m = &MGetStats{Tid: d.U64()}
	case TStatsReply:
		sr := &MStatsReply{Tid: d.U64(), Source: d.String()}
		n := d.U32()
		for i := uint32(0); i < n && d.Err() == nil; i++ {
			sr.Keys = append(sr.Keys, d.String())
			sr.Values = append(sr.Values, d.I64())
		}
		m = sr
	case TGetMap:
		m = &MGetMap{Epoch: d.U32()}
	case TOSDBoot:
		m = &MOSDBoot{OSD: int32(d.U32()), Epoch: d.U32()}
	case TStreamOpen:
		if depth > 0 {
			return nil, fmt.Errorf("cephmsg: nested stream open")
		}
		so, err := decodeStreamOpen(d, depth)
		if err != nil {
			return nil, err
		}
		m = so
	case TStreamChunk:
		m = &MStreamChunk{StreamID: d.U64(), Seq: d.U32(), Lane: d.U64(),
			Data: d.BufferlistField()}
	case TStreamEnd:
		m = &MStreamEnd{StreamID: d.U64(), Chunks: d.U32(), Lane: d.U64()}
	case TStreamCredit:
		m = &MStreamCredit{StreamID: d.U64(), Credits: d.U32(), Lane: d.U64()}
	case TStreamAbort:
		m = &MStreamAbort{StreamID: d.U64(), Lane: d.U64()}
	default:
		return nil, fmt.Errorf("cephmsg: unknown message type %#04x", uint16(t))
	}
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("cephmsg: decoding %v: %w", t, err)
	}
	return m, nil
}

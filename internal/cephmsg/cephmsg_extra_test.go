package cephmsg

import (
	"bytes"
	"testing"

	"doceph/internal/wire"
)

func TestMPGPushRoundTrip(t *testing.T) {
	m := &MPGPush{Tid: 9, Epoch: 4, PGID: 77, Object: "obj", Version: 12,
		Force: true, Data: wire.FromBytes([]byte("recovery-payload"))}
	got := roundTrip(t, m).(*MPGPush)
	if got.Tid != 9 || got.Epoch != 4 || got.PGID != 77 || got.Object != "obj" ||
		got.Version != 12 || !got.Force {
		t.Fatalf("got=%+v", got)
	}
	if string(got.Data.Bytes()) != "recovery-payload" {
		t.Fatal("data mismatch")
	}
	// Force=false survives too.
	plain := roundTrip(t, &MPGPush{Tid: 1, Object: "o"}).(*MPGPush)
	if plain.Force {
		t.Fatal("force leaked")
	}
}

func TestMPGPushAckRoundTrip(t *testing.T) {
	got := roundTrip(t, &MPGPushAck{Tid: 3, PGID: 8, Object: "o", Result: -5}).(*MPGPushAck)
	if got.Tid != 3 || got.PGID != 8 || got.Object != "o" || got.Result != -5 {
		t.Fatalf("got=%+v", got)
	}
}

func TestMScrubRoundTrip(t *testing.T) {
	got := roundTrip(t, &MScrub{Tid: 5, PGID: 2, Object: "victim"}).(*MScrub)
	if got.Tid != 5 || got.PGID != 2 || got.Object != "victim" {
		t.Fatalf("got=%+v", got)
	}
}

func TestMScrubReplyRoundTrip(t *testing.T) {
	m := &MScrubReply{Tid: 6, PGID: 3, Object: "v", Exists: true,
		CRC: 0xDEADBEEF, Size: 4096}
	got := roundTrip(t, m).(*MScrubReply)
	if !got.Exists || got.CRC != 0xDEADBEEF || got.Size != 4096 {
		t.Fatalf("got=%+v", got)
	}
	missing := roundTrip(t, &MScrubReply{Tid: 7, Object: "x"}).(*MScrubReply)
	if missing.Exists || missing.CRC != 0 {
		t.Fatalf("got=%+v", missing)
	}
}

func TestMGetStatsAndReplyRoundTrip(t *testing.T) {
	g := roundTrip(t, &MGetStats{Tid: 44}).(*MGetStats)
	if g.Tid != 44 {
		t.Fatalf("got=%+v", g)
	}
	m := &MStatsReply{Tid: 44, Source: "osd.3",
		Keys:   []string{"a", "b", "c"},
		Values: []int64{1, -2, 1 << 40}}
	got := roundTrip(t, m).(*MStatsReply)
	if got.Source != "osd.3" || len(got.Keys) != 3 {
		t.Fatalf("got=%+v", got)
	}
	for i := range m.Keys {
		if got.Keys[i] != m.Keys[i] || got.Values[i] != m.Values[i] {
			t.Fatalf("kv %d: %s=%d", i, got.Keys[i], got.Values[i])
		}
	}
	empty := roundTrip(t, &MStatsReply{Tid: 1, Source: "s"}).(*MStatsReply)
	if len(empty.Keys) != 0 {
		t.Fatalf("got=%+v", empty)
	}
}

func TestNewTypeStrings(t *testing.T) {
	cases := map[Type]string{
		TPGPush: "pg_push", TPGPushAck: "pg_push_ack",
		TScrub: "scrub", TScrubReply: "scrub_reply",
		TGetStats: "get_stats", TStatsReply: "stats_reply",
	}
	for typ, want := range cases {
		if typ.String() != want {
			t.Fatalf("%v != %s", typ, want)
		}
	}
}

func TestPayloadBytesNewTypes(t *testing.T) {
	push := &MPGPush{Object: "o", Data: wire.FromBytes(make([]byte, 1<<20))}
	if push.PayloadBytes() < 1<<20 {
		t.Fatal("push payload accounting too small")
	}
	sr := &MStatsReply{Source: "s", Keys: []string{"long-counter-name"}, Values: []int64{1}}
	if sr.PayloadBytes() < int64(len("long-counter-name")) {
		t.Fatal("stats payload accounting too small")
	}
}

func TestTruncatedNewTypes(t *testing.T) {
	for _, m := range []Message{
		&MPGPush{Tid: 1, Object: "obj", Data: wire.FromBytes(make([]byte, 64))},
		&MScrubReply{Tid: 1, Object: "obj", Exists: true, Size: 9},
		&MStatsReply{Tid: 1, Source: "s", Keys: []string{"k"}, Values: []int64{2}},
	} {
		flat := Encode(m).Bytes()
		for _, cut := range []int{3, len(flat) / 2, len(flat) - 1} {
			if _, err := Decode(wire.FromBytes(flat[:cut])); err == nil {
				t.Fatalf("%T cut=%d accepted", m, cut)
			}
		}
		if !bytes.Equal(Encode(m).Bytes(), flat) {
			t.Fatalf("%T encode not deterministic", m)
		}
	}
}

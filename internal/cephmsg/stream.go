package cephmsg

import (
	"fmt"

	"doceph/internal/wire"
)

// Stream framing: objects larger than one DMA segment travel as a
// flow-controlled chunk stream instead of a single monolithic frame. The
// sender opens a stream carrying the op header (MStreamOpen with the bulk
// data stripped), pushes ChunkBytes-sized MStreamChunk frames under a
// credit window, and closes with MStreamEnd; the receiver returns one
// MStreamCredit per consumed chunk, so at most Window chunks are ever in
// flight and staging memory at every hop is bounded by Window×ChunkBytes,
// not by the object size. MStreamAbort tears a stream down mid-flight.
// The framing follows the ByteStream write/end contract (open → ordered
// writes → end), with Ceph-style credit-based flow control on top.

// MStreamOpen starts a chunked transfer. Inner is the op the stream
// carries (MOSDOp or MRepOp, write family) with its Data field stripped;
// the receiver reattaches the reassembled payload, or feeds chunks to an
// incremental sink. Window is the sender's credit window: the number of
// chunks it will put in flight before blocking on returned credits.
type MStreamOpen struct {
	StreamID   uint64
	Total      int64
	ChunkBytes int64
	Window     uint32
	// Lane is the ordering key of Inner, echoed on every frame of the
	// stream so all of them ride the same transport lane (per-stream FIFO).
	Lane  uint64
	Inner Message
	// TraceCtx carries the trace span context out-of-band (see MOSDOp).
	TraceCtx uint64
}

// MsgType implements Message.
func (m *MStreamOpen) MsgType() Type { return TStreamOpen }

// EncodePayload implements Message. The inner op is embedded as a nested
// tag+payload frame, decoded by the same dispatch the outer frame uses.
func (m *MStreamOpen) EncodePayload(e *wire.Encoder) {
	e.U64(m.StreamID)
	e.I64(m.Total)
	e.I64(m.ChunkBytes)
	e.U32(m.Window)
	e.U64(m.Lane)
	e.U16(uint16(m.Inner.MsgType()))
	m.Inner.EncodePayload(e)
}

// PayloadBytes implements Message.
func (m *MStreamOpen) PayloadBytes() int64 { return 38 + m.Inner.PayloadBytes() }

// MStreamChunk carries one ordered piece of a stream's payload. Seq starts
// at 0 and increments by 1; each chunk consumes one credit.
type MStreamChunk struct {
	StreamID uint64
	Seq      uint32
	Lane     uint64
	Data     *wire.Bufferlist
	// TraceCtx carries the trace span context out-of-band (see MOSDOp).
	TraceCtx uint64
}

// MsgType implements Message.
func (m *MStreamChunk) MsgType() Type { return TStreamChunk }

// EncodePayload implements Message.
func (m *MStreamChunk) EncodePayload(e *wire.Encoder) {
	e.U64(m.StreamID)
	e.U32(m.Seq)
	e.U64(m.Lane)
	e.BufferlistField(data(m.Data))
}

// PayloadBytes implements Message.
func (m *MStreamChunk) PayloadBytes() int64 {
	return 24 + int64(data(m.Data).Length())
}

// MStreamEnd closes a stream; Chunks is the total chunk count, checked
// against what arrived.
type MStreamEnd struct {
	StreamID uint64
	Chunks   uint32
	Lane     uint64
}

// MsgType implements Message.
func (m *MStreamEnd) MsgType() Type { return TStreamEnd }

// EncodePayload implements Message.
func (m *MStreamEnd) EncodePayload(e *wire.Encoder) {
	e.U64(m.StreamID)
	e.U32(m.Chunks)
	e.U64(m.Lane)
}

// PayloadBytes implements Message.
func (m *MStreamEnd) PayloadBytes() int64 { return 20 }

// MStreamCredit returns consumed-chunk credits to the sender (receiver →
// sender, the reverse direction of the data).
type MStreamCredit struct {
	StreamID uint64
	Credits  uint32
	Lane     uint64
}

// MsgType implements Message.
func (m *MStreamCredit) MsgType() Type { return TStreamCredit }

// EncodePayload implements Message.
func (m *MStreamCredit) EncodePayload(e *wire.Encoder) {
	e.U64(m.StreamID)
	e.U32(m.Credits)
	e.U64(m.Lane)
}

// PayloadBytes implements Message.
func (m *MStreamCredit) PayloadBytes() int64 { return 20 }

// MStreamAbort tears down a stream mid-flight (sender gave up); the
// receiver discards partial state and stops expecting chunks.
type MStreamAbort struct {
	StreamID uint64
	Lane     uint64
}

// MsgType implements Message.
func (m *MStreamAbort) MsgType() Type { return TStreamAbort }

// EncodePayload implements Message.
func (m *MStreamAbort) EncodePayload(e *wire.Encoder) {
	e.U64(m.StreamID)
	e.U64(m.Lane)
}

// PayloadBytes implements Message.
func (m *MStreamAbort) PayloadBytes() int64 { return 16 }

// streamInnerOK reports whether m may ride inside an MStreamOpen: only the
// write family is streamable (reads/replies carry their data downstream
// and are served whole; everything else is control traffic).
func streamInnerOK(m Message) bool {
	switch m := m.(type) {
	case *MOSDOp:
		return m.Op == OpWrite
	case *MRepOp:
		return m.Op == OpWrite
	}
	return false
}

// decodeStreamOpen parses an MStreamOpen body, including the nested inner
// op, enforcing the strict-decoder rules: the inner message must be a
// streamable write op, must not itself be a stream frame (depth guard) and
// must not smuggle an inline payload past the chunk accounting.
func decodeStreamOpen(d *wire.Decoder, depth int) (Message, error) {
	m := &MStreamOpen{
		StreamID: d.U64(), Total: d.I64(), ChunkBytes: d.I64(),
		Window: d.U32(), Lane: d.U64(),
	}
	if d.Err() != nil {
		return nil, d.Err()
	}
	inner, err := decodeMsg(d, depth+1)
	if err != nil {
		return nil, err
	}
	if !streamInnerOK(inner) {
		return nil, fmt.Errorf("cephmsg: stream open with non-streamable inner %v",
			inner.MsgType())
	}
	if data(payloadOf(inner)).Length() != 0 {
		return nil, fmt.Errorf("cephmsg: stream open carries inline payload")
	}
	m.Inner = inner
	return m, nil
}

// Assembler is the receive-side stream protocol state machine: it
// validates open/chunk/end/abort/credit sequences (ordering, size bounds,
// credit-window conformance) and optionally reassembles the payload. It is
// pure — no simulator dependencies — and never panics on bad input; every
// violation is returned as an error, which makes it directly fuzzable
// (FuzzStreamAssembler) while the messenger treats any error as a broken
// transport and fails loudly.
type Assembler struct {
	// MaxStreams bounds concurrently open streams per peer (resource
	// exhaustion guard); NewAssembler sets the default.
	MaxStreams int
	streams    map[uint64]*streamState
}

type streamState struct {
	open       *MStreamOpen
	accumulate bool
	nextSeq    uint32
	received   int64
	// inWindow counts chunks received but not yet credited back; it may
	// never exceed the sender's declared window.
	inWindow uint32
	data     *wire.Bufferlist
}

// NewAssembler returns an empty assembler.
func NewAssembler() *Assembler {
	return &Assembler{MaxStreams: 256, streams: make(map[uint64]*streamState)}
}

// Active returns the number of open streams.
func (a *Assembler) Active() int { return len(a.streams) }

// Open registers a new stream. With accumulate set the assembler gathers
// chunk data and End returns the reconstructed inner op; without it the
// caller consumes chunks incrementally and End returns the bare inner.
func (a *Assembler) Open(m *MStreamOpen, accumulate bool) error {
	if m.ChunkBytes <= 0 || m.Total < 0 || m.Window == 0 {
		return fmt.Errorf("cephmsg: stream %d: bad open (total %d chunk %d window %d)",
			m.StreamID, m.Total, m.ChunkBytes, m.Window)
	}
	if m.Inner == nil || !streamInnerOK(m.Inner) {
		return fmt.Errorf("cephmsg: stream %d: non-streamable inner", m.StreamID)
	}
	if data(payloadOf(m.Inner)).Length() != 0 {
		return fmt.Errorf("cephmsg: stream %d: open carries inline payload", m.StreamID)
	}
	if _, ok := a.streams[m.StreamID]; ok {
		return fmt.Errorf("cephmsg: stream %d: duplicate open", m.StreamID)
	}
	if len(a.streams) >= a.MaxStreams {
		return fmt.Errorf("cephmsg: stream %d: too many open streams (%d)",
			m.StreamID, len(a.streams))
	}
	st := &streamState{open: m, accumulate: accumulate}
	if accumulate {
		st.data = &wire.Bufferlist{}
	}
	a.streams[m.StreamID] = st
	return nil
}

// Chunk validates one arriving chunk and returns its data (shared, not
// copied). Order, size and credit-window violations are errors.
func (a *Assembler) Chunk(m *MStreamChunk) (*wire.Bufferlist, error) {
	st, ok := a.streams[m.StreamID]
	if !ok {
		return nil, fmt.Errorf("cephmsg: stream %d: chunk for unopened stream", m.StreamID)
	}
	if m.Seq != st.nextSeq {
		return nil, fmt.Errorf("cephmsg: stream %d: chunk %d out of order (want %d)",
			m.StreamID, m.Seq, st.nextSeq)
	}
	if st.inWindow >= st.open.Window {
		return nil, fmt.Errorf("cephmsg: stream %d: credit violation (window %d exhausted)",
			m.StreamID, st.open.Window)
	}
	n := int64(data(m.Data).Length())
	if n <= 0 || n > st.open.ChunkBytes {
		return nil, fmt.Errorf("cephmsg: stream %d: chunk %d bad size %d (max %d)",
			m.StreamID, m.Seq, n, st.open.ChunkBytes)
	}
	if st.received+n > st.open.Total {
		return nil, fmt.Errorf("cephmsg: stream %d: overrun (%d+%d > total %d)",
			m.StreamID, st.received, n, st.open.Total)
	}
	st.nextSeq++
	st.inWindow++
	st.received += n
	if st.accumulate {
		st.data.AppendBufferlist(m.Data)
	}
	return m.Data, nil
}

// Credit records n credits returned to the sender. Crediting a stream that
// already ended is a no-op (the End raced the consumer's last credit);
// crediting more than is outstanding on an open stream is an error.
func (a *Assembler) Credit(id uint64, n uint32) error {
	st, ok := a.streams[id]
	if !ok {
		return nil
	}
	if n > st.inWindow {
		return fmt.Errorf("cephmsg: stream %d: over-credit (%d > %d outstanding)",
			id, n, st.inWindow)
	}
	st.inWindow -= n
	return nil
}

// End closes a stream, checking the totals, and returns the inner op: with
// accumulate a shallow copy with the reassembled payload attached,
// otherwise the bare inner as opened.
func (a *Assembler) End(m *MStreamEnd) (Message, error) {
	st, ok := a.streams[m.StreamID]
	if !ok {
		return nil, fmt.Errorf("cephmsg: stream %d: end for unopened stream", m.StreamID)
	}
	if m.Chunks != st.nextSeq {
		return nil, fmt.Errorf("cephmsg: stream %d: end after %d chunks (sender says %d)",
			m.StreamID, st.nextSeq, m.Chunks)
	}
	if st.received != st.open.Total {
		return nil, fmt.Errorf("cephmsg: stream %d: end with %d of %d bytes",
			m.StreamID, st.received, st.open.Total)
	}
	delete(a.streams, m.StreamID)
	if !st.accumulate {
		return st.open.Inner, nil
	}
	switch inner := st.open.Inner.(type) {
	case *MOSDOp:
		cp := *inner
		cp.Data = st.data
		return &cp, nil
	case *MRepOp:
		cp := *inner
		cp.Data = st.data
		return &cp, nil
	}
	return nil, fmt.Errorf("cephmsg: stream %d: non-streamable inner", m.StreamID)
}

// Abort drops a stream's partial state, returning its inner op (for an
// error reply) and whether the stream was open.
func (a *Assembler) Abort(id uint64) (Message, bool) {
	st, ok := a.streams[id]
	if !ok {
		return nil, false
	}
	delete(a.streams, id)
	return st.open.Inner, true
}

package cephmsg

import (
	"strings"
	"testing"

	"doceph/internal/wire"
)

func streamOpen(id uint64, total, chunk int64, window uint32) *MStreamOpen {
	return &MStreamOpen{
		StreamID: id, Total: total, ChunkBytes: chunk, Window: window, Lane: 3,
		Inner: &MOSDOp{Tid: 11, Object: "obj", Op: OpWrite, Length: uint64(total)},
	}
}

func chunkOf(id uint64, seq uint32, n int) *MStreamChunk {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(seq)
	}
	return &MStreamChunk{StreamID: id, Seq: seq, Lane: 3, Data: wire.FromBytes(b)}
}

func TestStreamMessagesRoundTrip(t *testing.T) {
	msgs := []Message{
		streamOpen(5, 1<<22, 1<<20, 4),
		chunkOf(5, 0, 4096),
		&MStreamEnd{StreamID: 5, Chunks: 4, Lane: 3},
		&MStreamCredit{StreamID: 5, Credits: 2, Lane: 3},
		&MStreamAbort{StreamID: 5, Lane: 3},
	}
	for _, m := range msgs {
		bl := Encode(m)
		// PayloadBytes is the modeled wire size; for the flat stream frames
		// (everything but the open, whose inner op models header overhead)
		// it matches the actual encoding exactly.
		if _, isOpen := m.(*MStreamOpen); !isOpen {
			if got := int64(bl.Length()); got != m.PayloadBytes()+2 {
				t.Errorf("%v: encoded %d bytes, PayloadBytes says %d+2",
					m.MsgType(), got, m.PayloadBytes())
			}
		}
		back, err := Decode(bl)
		if err != nil {
			t.Fatalf("%v: decode: %v", m.MsgType(), err)
		}
		if back.MsgType() != m.MsgType() {
			t.Fatalf("round-trip changed type: %v -> %v", m.MsgType(), back.MsgType())
		}
	}
	// Field fidelity for the interesting one: the open with its nested op.
	back, err := Decode(Encode(streamOpen(7, 1<<24, 1<<20, 8)))
	if err != nil {
		t.Fatal(err)
	}
	so := back.(*MStreamOpen)
	if so.StreamID != 7 || so.Total != 1<<24 || so.ChunkBytes != 1<<20 ||
		so.Window != 8 || so.Lane != 3 {
		t.Fatalf("open fields: %+v", so)
	}
	inner := so.Inner.(*MOSDOp)
	if inner.Tid != 11 || inner.Object != "obj" || inner.Op != OpWrite {
		t.Fatalf("inner fields: %+v", inner)
	}
}

func TestStreamOpenDecodeRejections(t *testing.T) {
	// Nested stream-open inside a stream-open.
	nested := &MStreamOpen{
		StreamID: 1, Total: 8, ChunkBytes: 8, Window: 1, Inner: streamOpen(2, 8, 8, 1),
	}
	if _, err := Decode(Encode(nested)); err == nil ||
		!strings.Contains(err.Error(), "nested") {
		t.Fatalf("nested open: err=%v", err)
	}
	// Non-streamable inner (a read op).
	read := &MStreamOpen{StreamID: 1, Total: 8, ChunkBytes: 8, Window: 1,
		Inner: &MOSDOp{Tid: 1, Object: "o", Op: OpRead}}
	if _, err := Decode(Encode(read)); err == nil ||
		!strings.Contains(err.Error(), "non-streamable") {
		t.Fatalf("read inner: err=%v", err)
	}
	// Inline payload smuggled past the chunk accounting.
	smuggle := &MStreamOpen{StreamID: 1, Total: 8, ChunkBytes: 8, Window: 1,
		Inner: &MOSDOp{Tid: 1, Object: "o", Op: OpWrite, Data: wire.FromBytes([]byte("xx"))}}
	if _, err := Decode(Encode(smuggle)); err == nil ||
		!strings.Contains(err.Error(), "inline payload") {
		t.Fatalf("inline payload: err=%v", err)
	}
}

func TestStreamLaneKeyGroupsWholeStream(t *testing.T) {
	msgs := []Message{
		streamOpen(9, 64, 32, 2),
		chunkOf(9, 0, 32),
		&MStreamEnd{StreamID: 9, Chunks: 2, Lane: 3},
		&MStreamCredit{StreamID: 9, Credits: 1, Lane: 3},
		&MStreamAbort{StreamID: 9, Lane: 3},
	}
	for _, m := range msgs {
		key, ok := LaneKey(m)
		if !ok || key != 3 {
			t.Fatalf("%v: LaneKey=(%d,%v), want (3,true)", m.MsgType(), key, ok)
		}
	}
}

func TestAssemblerReassembles(t *testing.T) {
	a := NewAssembler()
	if err := a.Open(streamOpen(1, 100, 40, 2), true); err != nil {
		t.Fatal(err)
	}
	sizes := []int{40, 40, 20}
	for seq, n := range sizes {
		if _, err := a.Chunk(chunkOf(1, uint32(seq), n)); err != nil {
			t.Fatalf("chunk %d: %v", seq, err)
		}
		if err := a.Credit(1, 1); err != nil {
			t.Fatalf("credit %d: %v", seq, err)
		}
	}
	inner, err := a.End(&MStreamEnd{StreamID: 1, Chunks: 3})
	if err != nil {
		t.Fatal(err)
	}
	op := inner.(*MOSDOp)
	if op.Data == nil || op.Data.Length() != 100 {
		t.Fatalf("reassembled %v bytes, want 100", op.Data)
	}
	if a.Active() != 0 {
		t.Fatalf("stream leaked: %d active", a.Active())
	}
}

func TestAssemblerSinkModeReturnsBareInner(t *testing.T) {
	a := NewAssembler()
	open := streamOpen(2, 50, 50, 1)
	if err := a.Open(open, false); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Chunk(chunkOf(2, 0, 50)); err != nil {
		t.Fatal(err)
	}
	if err := a.Credit(2, 1); err != nil {
		t.Fatal(err)
	}
	inner, err := a.End(&MStreamEnd{StreamID: 2, Chunks: 1})
	if err != nil {
		t.Fatal(err)
	}
	if inner != open.Inner {
		t.Fatal("sink mode must return the inner op as opened")
	}
	if got := inner.(*MOSDOp).Data; got != nil {
		t.Fatalf("sink-mode inner grew a payload: %d bytes", got.Length())
	}
}

func TestAssemblerViolations(t *testing.T) {
	a := NewAssembler()
	// Bad opens.
	if err := a.Open(streamOpen(1, -1, 10, 1), true); err == nil {
		t.Fatal("negative total accepted")
	}
	if err := a.Open(streamOpen(1, 10, 0, 1), true); err == nil {
		t.Fatal("zero chunk size accepted")
	}
	if err := a.Open(streamOpen(1, 10, 10, 0), true); err == nil {
		t.Fatal("zero window accepted")
	}
	// Valid open, then protocol violations.
	if err := a.Open(streamOpen(1, 100, 40, 1), true); err != nil {
		t.Fatal(err)
	}
	if err := a.Open(streamOpen(1, 100, 40, 1), true); err == nil {
		t.Fatal("duplicate open accepted")
	}
	if _, err := a.Chunk(chunkOf(99, 0, 10)); err == nil {
		t.Fatal("chunk for unopened stream accepted")
	}
	if _, err := a.Chunk(chunkOf(1, 1, 10)); err == nil {
		t.Fatal("out-of-order chunk accepted")
	}
	if _, err := a.Chunk(chunkOf(1, 0, 41)); err == nil {
		t.Fatal("oversized chunk accepted")
	}
	if _, err := a.Chunk(chunkOf(1, 0, 40)); err != nil {
		t.Fatal(err)
	}
	// Window 1 exhausted, no credit returned: next chunk violates.
	if _, err := a.Chunk(chunkOf(1, 1, 40)); err == nil ||
		!strings.Contains(err.Error(), "credit violation") {
		t.Fatalf("credit violation not caught: %v", err)
	}
	// Over-credit on an open stream.
	if err := a.Credit(1, 5); err == nil {
		t.Fatal("over-credit accepted")
	}
	if err := a.Credit(1, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Chunk(chunkOf(1, 1, 40)); err != nil {
		t.Fatal(err)
	}
	if err := a.Credit(1, 1); err != nil {
		t.Fatal(err)
	}
	// Ends that lie about counts or bytes.
	if _, err := a.End(&MStreamEnd{StreamID: 1, Chunks: 5}); err == nil {
		t.Fatal("wrong chunk count accepted")
	}
	if _, err := a.End(&MStreamEnd{StreamID: 1, Chunks: 2}); err == nil {
		t.Fatal("short stream accepted (80 of 100 bytes)")
	}
	// Overrun past Total.
	if _, err := a.Chunk(chunkOf(1, 2, 40)); err == nil ||
		!strings.Contains(err.Error(), "overrun") {
		t.Fatalf("overrun not caught: %v", err)
	}
	// Abort drops the stream; credits after it are no-ops.
	if _, open := a.Abort(1); !open {
		t.Fatal("abort of open stream reported not-open")
	}
	if _, open := a.Abort(1); open {
		t.Fatal("double abort reported open")
	}
	if err := a.Credit(1, 1); err != nil {
		t.Fatal(err)
	}
	if a.Active() != 0 {
		t.Fatalf("streams leaked: %d", a.Active())
	}
}

func TestAssemblerMaxStreams(t *testing.T) {
	a := NewAssembler()
	a.MaxStreams = 4
	for id := uint64(1); id <= 4; id++ {
		if err := a.Open(streamOpen(id, 10, 10, 1), false); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Open(streamOpen(5, 10, 10, 1), false); err == nil {
		t.Fatal("stream beyond MaxStreams accepted")
	}
}

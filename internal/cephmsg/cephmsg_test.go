package cephmsg

import (
	"strings"
	"testing"
	"testing/quick"

	"doceph/internal/wire"
)

func roundTrip(t *testing.T, m Message) Message {
	t.Helper()
	got, err := Decode(Encode(m))
	if err != nil {
		t.Fatalf("decode %v: %v", m.MsgType(), err)
	}
	if got.MsgType() != m.MsgType() {
		t.Fatalf("type %v != %v", got.MsgType(), m.MsgType())
	}
	return got
}

func TestMOSDOpRoundTrip(t *testing.T) {
	payload := wire.NewBufferlist([]byte("some object data"), []byte(" in two segments"))
	m := &MOSDOp{
		Tid: 42, Epoch: 3, Src: "client.0", Pool: "rbd", Object: "obj-17",
		Op: OpWrite, Offset: 4096, Length: uint64(payload.Length()), Data: payload,
	}
	got := roundTrip(t, m).(*MOSDOp)
	if got.Tid != 42 || got.Epoch != 3 || got.Src != "client.0" ||
		got.Pool != "rbd" || got.Object != "obj-17" || got.Op != OpWrite ||
		got.Offset != 4096 || got.Length != m.Length {
		t.Fatalf("got=%+v", got)
	}
	if !got.Data.Equal(payload) {
		t.Fatal("data mismatch")
	}
}

func TestMOSDOpReplyRoundTrip(t *testing.T) {
	m := &MOSDOpReply{Tid: 7, Object: "o", Op: OpRead, Result: -2,
		Version: 9, Data: wire.FromBytes([]byte("read-back"))}
	got := roundTrip(t, m).(*MOSDOpReply)
	if got.Result != -2 || got.Version != 9 || string(got.Data.Bytes()) != "read-back" {
		t.Fatalf("got=%+v", got)
	}
}

func TestMRepOpRoundTrip(t *testing.T) {
	m := &MRepOp{Tid: 1, Epoch: 2, PGID: 12, Object: "oo", Op: OpWrite,
		Offset: 8, Data: wire.FromBytes([]byte("rep"))}
	got := roundTrip(t, m).(*MRepOp)
	if got.PGID != 12 || got.Offset != 8 || string(got.Data.Bytes()) != "rep" {
		t.Fatalf("got=%+v", got)
	}
}

func TestMRepOpReplyRoundTrip(t *testing.T) {
	got := roundTrip(t, &MRepOpReply{Tid: 5, PGID: 3, Result: 0}).(*MRepOpReply)
	if got.Tid != 5 || got.PGID != 3 || got.Result != 0 {
		t.Fatalf("got=%+v", got)
	}
}

func TestPingRoundTrip(t *testing.T) {
	p := roundTrip(t, &MPing{Src: "osd.1", Stamp: 123456789}).(*MPing)
	if p.Src != "osd.1" || p.Stamp != 123456789 {
		t.Fatalf("got=%+v", p)
	}
	r := roundTrip(t, &MPingReply{Src: "osd.2", Stamp: -1}).(*MPingReply)
	if r.Src != "osd.2" || r.Stamp != -1 {
		t.Fatalf("got=%+v", r)
	}
}

func TestMOSDMapRoundTrip(t *testing.T) {
	m := roundTrip(t, &MOSDMap{Epoch: 11, Up: []int32{0, 1, 5}}).(*MOSDMap)
	if m.Epoch != 11 || len(m.Up) != 3 || m.Up[2] != 5 {
		t.Fatalf("got=%+v", m)
	}
	empty := roundTrip(t, &MOSDMap{Epoch: 1}).(*MOSDMap)
	if len(empty.Up) != 0 {
		t.Fatalf("got=%+v", empty)
	}
}

func TestNilDataEncodesEmpty(t *testing.T) {
	got := roundTrip(t, &MOSDOp{Op: OpStat, Object: "x"}).(*MOSDOp)
	if got.Data.Length() != 0 {
		t.Fatalf("data len=%d", got.Data.Length())
	}
}

func TestDecodeUnknownType(t *testing.T) {
	e := wire.NewEncoder(4)
	e.U16(0x9999)
	if _, err := Decode(e.Bufferlist()); err == nil {
		t.Fatal("want error for unknown type")
	}
}

func TestDecodeTruncated(t *testing.T) {
	full := Encode(&MOSDOp{Tid: 1, Object: "obj", Op: OpWrite,
		Data: wire.FromBytes(make([]byte, 100))})
	flat := full.Bytes()
	for _, cut := range []int{1, 3, 10, len(flat) - 1} {
		if _, err := Decode(wire.FromBytes(flat[:cut])); err == nil {
			t.Fatalf("cut=%d: want error", cut)
		}
	}
}

func TestPayloadBytesTracksData(t *testing.T) {
	small := &MOSDOp{Object: "o", Op: OpWrite, Data: wire.FromBytes(make([]byte, 10))}
	big := &MOSDOp{Object: "o", Op: OpWrite, Data: wire.FromBytes(make([]byte, 1<<20))}
	if big.PayloadBytes()-small.PayloadBytes() != (1<<20)-10 {
		t.Fatalf("payload accounting: small=%d big=%d", small.PayloadBytes(), big.PayloadBytes())
	}
}

func TestTypeAndOpStrings(t *testing.T) {
	if TOSDOp.String() != "osd_op" || TRepOp.String() != "rep_op" {
		t.Fatal("type strings")
	}
	if !strings.Contains(Type(0x9999).String(), "9999") {
		t.Fatal("unknown type string")
	}
	if OpWrite.String() != "write" || Op(99).String() != "op(99)" {
		t.Fatal("op strings")
	}
}

func TestQuickMOSDOpRoundTrip(t *testing.T) {
	f := func(tid uint64, epoch uint32, obj string, off, ln uint64, payload []byte) bool {
		m := &MOSDOp{Tid: tid, Epoch: epoch, Src: "c", Pool: "p", Object: obj,
			Op: OpWrite, Offset: off, Length: ln, Data: wire.FromBytes(payload)}
		got, err := Decode(Encode(m))
		if err != nil {
			return false
		}
		g := got.(*MOSDOp)
		return g.Tid == tid && g.Epoch == epoch && g.Object == obj &&
			g.Offset == off && g.Length == ln && g.Data.Equal(m.Data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

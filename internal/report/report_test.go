package report

import (
	"strings"
	"testing"
)

func TestTableRendersAligned(t *testing.T) {
	tb := &Table{
		Title:  "Demo",
		Header: []string{"name", "value"},
	}
	tb.AddRow("short", "1")
	tb.AddRow("a-much-longer-name", "23456")
	tb.AddNote("footnote %d", 7)
	out := tb.String()
	if !strings.Contains(out, "== Demo ==") {
		t.Fatalf("missing title:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title, header, separator, 2 rows, note
	if len(lines) != 6 {
		t.Fatalf("lines=%d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[2], "----") {
		t.Fatalf("separator missing: %q", lines[2])
	}
	// Columns align: "value" column starts at the same offset in both rows.
	if strings.Index(lines[3], "1") < len("a-much-longer-name") {
		t.Fatalf("misaligned row: %q", lines[3])
	}
	if !strings.Contains(lines[5], "note: footnote 7") {
		t.Fatalf("note: %q", lines[5])
	}
}

func TestBar(t *testing.T) {
	if Bar(5, 10, 10) != "#####" {
		t.Fatalf("bar=%q", Bar(5, 10, 10))
	}
	if Bar(20, 10, 10) != "##########" {
		t.Fatal("bar should clamp at width")
	}
	if Bar(1, 0, 10) != "" || Bar(-1, 10, 10) != "" {
		t.Fatal("degenerate bars should be empty")
	}
}

func TestFormatters(t *testing.T) {
	if Pct(0.123) != "12.3%" {
		t.Fatalf("pct=%q", Pct(0.123))
	}
	if F2(1.005) != "1.00" && F2(1.005) != "1.01" {
		t.Fatalf("f2=%q", F2(1.005))
	}
	if F3(0.1234) != "0.123" {
		t.Fatalf("f3=%q", F3(0.1234))
	}
	if F4(0.12345) != "0.1234" && F4(0.12345) != "0.1235" {
		t.Fatalf("f4=%q", F4(0.12345))
	}
	if MB(4<<20) != "4MB" {
		t.Fatalf("mb=%q", MB(4<<20))
	}
}

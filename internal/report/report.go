// Package report renders experiment results as aligned text tables and
// simple ASCII bar series, the output format of cmd/docephbench and
// EXPERIMENTS.md.
package report

import (
	"fmt"
	"strings"
)

// Table is a simple aligned text table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddNote appends a footnote line.
func (t *Table) AddNote(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Bar renders value as an ASCII bar scaled so that max fills width runes.
func Bar(value, max float64, width int) string {
	if max <= 0 || value < 0 {
		return ""
	}
	n := int(value / max * float64(width))
	if n > width {
		n = width
	}
	return strings.Repeat("#", n)
}

// Pct formats a fraction as a percentage.
func Pct(f float64) string { return fmt.Sprintf("%.1f%%", f*100) }

// F2 formats with two decimals.
func F2(f float64) string { return fmt.Sprintf("%.2f", f) }

// F3 formats with three decimals.
func F3(f float64) string { return fmt.Sprintf("%.3f", f) }

// F4 formats with four decimals.
func F4(f float64) string { return fmt.Sprintf("%.4f", f) }

// MB formats bytes as mebibytes.
func MB(b int64) string { return fmt.Sprintf("%dMB", b>>20) }

// KB formats bytes as kibibytes.
func KB(b int64) string { return fmt.Sprintf("%dKB", b>>10) }

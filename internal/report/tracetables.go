package report

import (
	"fmt"
	"sort"

	"doceph/internal/sim"
	"doceph/internal/trace"
)

// StageTable renders trace.Aggregate rows as one line per (stage,
// resource): span count, total CPU charged, mean span latency, mean queue
// wait and total payload moved.
func StageTable(title string, stats []trace.StageStat) *Table {
	t := &Table{
		Title:  title,
		Header: []string{"stage", "resource", "count", "cpu (s)", "avg lat (ms)", "avg wait (ms)", "MB"},
	}
	for _, s := range stats {
		res := s.Resource
		if res == "" {
			res = "-"
		}
		n := float64(s.Count)
		t.AddRow(s.Stage, res, fmt.Sprint(s.Count),
			F3(s.CPU.Seconds()),
			F3(s.Latency.Seconds()*1e3/n),
			F3(s.QueueWait.Seconds()*1e3/n),
			fmt.Sprintf("%.1f", float64(s.Bytes)/(1<<20)))
	}
	return t
}

// CPUAttributionRows renders traced CPU per processor as (resource, cpu,
// share-of-total) cells, sorted by resource name for stable output.
func CPUAttributionRows(byRes map[string]sim.Duration) [][]string {
	names := make([]string, 0, len(byRes))
	var total sim.Duration
	for name, d := range byRes {
		names = append(names, name)
		total += d
	}
	sort.Strings(names)
	rows := make([][]string, 0, len(names))
	for _, name := range names {
		share := 0.0
		if total > 0 {
			share = byRes[name].Seconds() / total.Seconds()
		}
		rows = append(rows, []string{name, F3(byRes[name].Seconds()), Pct(share)})
	}
	return rows
}

package crush

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSelectDeterministic(t *testing.T) {
	m := BuildUniform(3, 2, 1.0)
	for x := uint32(0); x < 50; x++ {
		a := m.Select(x, 2)
		b := m.Select(x, 2)
		if len(a) != 2 || len(b) != 2 || a[0] != b[0] || a[1] != b[1] {
			t.Fatalf("x=%d a=%v b=%v", x, a, b)
		}
	}
}

func hostOf(osd ItemID, osdsPerHost int) int { return int(osd) / osdsPerHost }

func TestSelectDistinctHosts(t *testing.T) {
	m := BuildUniform(4, 3, 1.0)
	for x := uint32(0); x < 500; x++ {
		got := m.Select(x, 3)
		if len(got) != 3 {
			t.Fatalf("x=%d got=%v", x, got)
		}
		hosts := map[int]bool{}
		for _, o := range got {
			hosts[hostOf(o, 3)] = true
		}
		if len(hosts) != 3 {
			t.Fatalf("x=%d replicas share a host: %v", x, got)
		}
	}
}

func TestSelectDistinctOSDs(t *testing.T) {
	m := BuildUniform(5, 1, 1.0)
	for x := uint32(0); x < 500; x++ {
		got := m.Select(x, 3)
		seen := map[ItemID]bool{}
		for _, o := range got {
			if seen[o] {
				t.Fatalf("x=%d duplicate osd in %v", x, got)
			}
			seen[o] = true
		}
	}
}

func TestDistributionRoughlyUniform(t *testing.T) {
	m := BuildUniform(4, 2, 1.0)
	counts := map[ItemID]int{}
	const trials = 8000
	for x := uint32(0); x < trials; x++ {
		for _, o := range m.Select(x, 2) {
			counts[o]++
		}
	}
	expect := float64(trials*2) / 8
	for osd, c := range counts {
		if math.Abs(float64(c)-expect)/expect > 0.15 {
			t.Fatalf("osd %d count %d, expected ~%.0f (+-15%%)", osd, c, expect)
		}
	}
}

func TestDistributionFollowsWeights(t *testing.T) {
	m := NewMap()
	root := &Bucket{ID: -1, Name: "root", Type: "root"}
	_ = m.AddBucket(root)
	h := &Bucket{ID: -2, Name: "h", Type: "host"}
	_ = m.AddBucket(h)
	root.Items = append(root.Items, h.ID)
	_ = m.AddDevice(&Device{ID: 0, Weight: 1.0})
	_ = m.AddDevice(&Device{ID: 1, Weight: 3.0})
	h.Items = append(h.Items, 0, 1)
	counts := map[ItemID]int{}
	const trials = 20000
	for x := uint32(0); x < trials; x++ {
		counts[m.Select(x, 1)[0]]++
	}
	ratio := float64(counts[1]) / float64(counts[0])
	if ratio < 2.5 || ratio > 3.5 {
		t.Fatalf("weight-3 device got %.2fx the weight-1 device, want ~3x", ratio)
	}
}

func TestMarkOutExcludesDevice(t *testing.T) {
	m := BuildUniform(3, 1, 1.0)
	if err := m.MarkOut(1); err != nil {
		t.Fatal(err)
	}
	for x := uint32(0); x < 300; x++ {
		for _, o := range m.Select(x, 2) {
			if o == 1 {
				t.Fatalf("x=%d placed on out device", x)
			}
		}
	}
	if err := m.MarkIn(1); err != nil {
		t.Fatal(err)
	}
	seen := false
	for x := uint32(0); x < 300 && !seen; x++ {
		for _, o := range m.Select(x, 2) {
			seen = seen || o == 1
		}
	}
	if !seen {
		t.Fatal("marked-in device never selected")
	}
}

func TestZeroWeightExcluded(t *testing.T) {
	m := BuildUniform(3, 1, 1.0)
	if err := m.SetDeviceWeight(0, 0); err != nil {
		t.Fatal(err)
	}
	for x := uint32(0); x < 300; x++ {
		for _, o := range m.Select(x, 2) {
			if o == 0 {
				t.Fatal("zero-weight device selected")
			}
		}
	}
}

// Minimal movement: marking one device out only moves (a) replicas that
// lived on it, (b) a share of its host's sibling data (the host bucket's
// weight shrank), and (c) rare knock-on moves from the distinct-host
// constraint. Data on unrelated hosts must stay put almost entirely.
func TestStabilityOnDeviceOut(t *testing.T) {
	const osdsPerHost = 2
	m := BuildUniform(5, osdsPerHost, 1.0)
	const pgs = 400
	before := make([][]ItemID, pgs)
	for x := 0; x < pgs; x++ {
		before[x] = m.Select(uint32(x), 2)
	}
	const failed = ItemID(3)
	failedHost := hostOf(failed, osdsPerHost)
	if err := m.MarkOut(failed); err != nil {
		t.Fatal(err)
	}
	movedOther, totalOther := 0, 0
	for x := 0; x < pgs; x++ {
		after := m.Select(uint32(x), 2)
		afterSet := map[ItemID]bool{}
		for _, o := range after {
			afterSet[o] = true
			if o == failed {
				t.Fatalf("x=%d still placed on out device", x)
			}
		}
		for _, o := range before[x] {
			if o == failed || hostOf(o, osdsPerHost) == failedHost {
				continue
			}
			totalOther++
			if !afterSet[o] {
				movedOther++
			}
		}
	}
	// straw2 independence: replicas on unaffected hosts move only via
	// distinct-host knock-on, which should be a few percent at most.
	if float64(movedOther) > 0.08*float64(totalOther) {
		t.Fatalf("%d of %d replicas on unaffected hosts moved", movedOther, totalOther)
	}
}

func TestSelectUnsatisfiable(t *testing.T) {
	m := BuildUniform(2, 2, 1.0) // only 2 hosts
	got := m.Select(7, 3)
	if len(got) != 2 {
		t.Fatalf("want 2 placements on 2 hosts, got %v", got)
	}
}

func TestEmptyMap(t *testing.T) {
	m := NewMap()
	if got := m.Select(1, 2); got != nil {
		t.Fatalf("got=%v", got)
	}
}

func TestAddValidation(t *testing.T) {
	m := NewMap()
	if err := m.AddBucket(&Bucket{ID: 5}); err == nil {
		t.Fatal("positive bucket id accepted")
	}
	if err := m.AddDevice(&Device{ID: -1}); err == nil {
		t.Fatal("negative device id accepted")
	}
	if err := m.AddBucket(&Bucket{ID: -1, Type: "root"}); err != nil {
		t.Fatal(err)
	}
	if err := m.AddBucket(&Bucket{ID: -1}); err == nil {
		t.Fatal("duplicate bucket accepted")
	}
	if err := m.AddDevice(&Device{ID: 0, Weight: 1}); err != nil {
		t.Fatal(err)
	}
	if err := m.AddDevice(&Device{ID: 0, Weight: 1}); err == nil {
		t.Fatal("duplicate device accepted")
	}
	if err := m.SetDeviceWeight(99, 1); err == nil {
		t.Fatal("unknown device accepted")
	}
	if err := m.MarkOut(99); err == nil {
		t.Fatal("unknown device accepted")
	}
}

func TestDevicesSorted(t *testing.T) {
	m := BuildUniform(2, 3, 1.0)
	ids := m.Devices()
	if len(ids) != 6 {
		t.Fatalf("ids=%v", ids)
	}
	for i, id := range ids {
		if id != ItemID(i) {
			t.Fatalf("ids=%v", ids)
		}
	}
}

func TestHash3Avalanche(t *testing.T) {
	// Flipping one input bit should flip ~half the output bits on average.
	totalFlips := 0
	const samples = 200
	for i := 0; i < samples; i++ {
		a := uint32(i * 2654435761)
		h1 := hash3(a, 1, 2)
		h2 := hash3(a^1, 1, 2)
		x := h1 ^ h2
		for x != 0 {
			totalFlips += int(x & 1)
			x >>= 1
		}
	}
	avg := float64(totalFlips) / samples
	if avg < 10 || avg > 22 {
		t.Fatalf("avalanche avg bit flips = %.1f, want ~16", avg)
	}
}

func TestQuickSelectAlwaysValidDevices(t *testing.T) {
	m := BuildUniform(4, 4, 1.0)
	f := func(x uint32, n uint8) bool {
		k := int(n%4) + 1
		got := m.Select(x, k)
		if len(got) != k {
			return false
		}
		for _, o := range got {
			if m.Device(o) == nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func buildWithAlg(alg BucketAlg, weights []float64) *Map {
	m := NewMap()
	root := &Bucket{ID: -1, Name: "root", Type: "root"}
	_ = m.AddBucket(root)
	h := &Bucket{ID: -2, Name: "h", Type: "host", Alg: alg}
	_ = m.AddBucket(h)
	root.Items = append(root.Items, h.ID)
	for i, w := range weights {
		_ = m.AddDevice(&Device{ID: ItemID(i), Weight: w})
		h.Items = append(h.Items, ItemID(i))
	}
	return m
}

func TestUniformBucketDistribution(t *testing.T) {
	m := buildWithAlg(AlgUniform, []float64{1, 1, 1, 1})
	counts := map[ItemID]int{}
	const trials = 8000
	for x := uint32(0); x < trials; x++ {
		got := m.Select(x, 1)
		if len(got) != 1 {
			t.Fatalf("x=%d got=%v", x, got)
		}
		counts[got[0]]++
	}
	for id, c := range counts {
		if c < trials/4-trials/20 || c > trials/4+trials/20 {
			t.Fatalf("uniform skew: item %d count %d", id, c)
		}
	}
}

func TestUniformBucketRejectsZeroWeight(t *testing.T) {
	m := buildWithAlg(AlgUniform, []float64{1, 0, 1, 1})
	for x := uint32(0); x < 500; x++ {
		for _, id := range m.Select(x, 1) {
			if id == 1 {
				t.Fatal("zero-weight item selected from uniform bucket")
			}
		}
	}
}

func TestListBucketFollowsWeights(t *testing.T) {
	m := buildWithAlg(AlgList, []float64{1, 3})
	counts := map[ItemID]int{}
	const trials = 20000
	for x := uint32(0); x < trials; x++ {
		counts[m.Select(x, 1)[0]]++
	}
	ratio := float64(counts[1]) / float64(counts[0])
	if ratio < 2.5 || ratio > 3.5 {
		t.Fatalf("list bucket ratio=%.2f want ~3", ratio)
	}
}

func TestListBucketAppendStability(t *testing.T) {
	// Appending an item to a list bucket must only move data TO the new
	// item, never between the existing ones.
	m := buildWithAlg(AlgList, []float64{1, 1, 1})
	const trials = 4000
	before := make([]ItemID, trials)
	for x := 0; x < trials; x++ {
		before[x] = m.Select(uint32(x), 1)[0]
	}
	_ = m.AddDevice(&Device{ID: 3, Weight: 1})
	m.buckets[-2].Items = append(m.buckets[-2].Items, 3)
	movedBetween := 0
	for x := 0; x < trials; x++ {
		after := m.Select(uint32(x), 1)[0]
		if after != before[x] && after != 3 {
			movedBetween++
		}
	}
	if movedBetween > 0 {
		t.Fatalf("%d placements moved between existing items", movedBetween)
	}
}

func TestBucketAlgStrings(t *testing.T) {
	if AlgStraw2.String() != "straw2" || AlgUniform.String() != "uniform" || AlgList.String() != "list" {
		t.Fatal("alg strings")
	}
}

package crush

import "testing"

func BenchmarkSelectReplica3(b *testing.B) {
	m := BuildUniform(16, 8, 1.0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Select(uint32(i), 3)
	}
}

func BenchmarkSelectLargeCluster(b *testing.B) {
	m := BuildUniform(64, 16, 1.0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Select(uint32(i), 3)
	}
}

// Package crush implements a CRUSH-style deterministic placement function
// (Weil et al., SC'06): a weighted hierarchy of buckets selected with the
// straw2 algorithm, giving stable, reproducible replica placement with
// minimal data movement on topology changes. It is the placement substrate
// for the mini-RADOS cluster in this repository.
package crush

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
)

// ItemID identifies a device (>= 0, an OSD id) or a bucket (< 0).
type ItemID int32

// InvalidItem is returned when selection fails.
const InvalidItem = ItemID(math.MinInt32)

// Device is a leaf placement target (an OSD).
type Device struct {
	ID ItemID
	// Weight is the relative capacity; devices with weight <= 0 receive no
	// data.
	Weight float64
	// Out marks the device as excluded from placement (e.g. failed and
	// marked out by the monitor).
	Out bool
}

// BucketAlg selects the algorithm a bucket uses to choose among its items
// (Weil et al. §3.4; straw2 is modern Ceph's default).
type BucketAlg uint8

// Bucket algorithms.
const (
	// AlgStraw2: probability exactly proportional to weight, optimal
	// stability under weight changes. The default.
	AlgStraw2 BucketAlg = iota
	// AlgUniform: O(1) selection for identically weighted items; cheap
	// but any membership change reshuffles placements.
	AlgUniform
	// AlgList: O(n) head-to-tail walk; optimal when items are only ever
	// appended.
	AlgList
)

func (a BucketAlg) String() string {
	switch a {
	case AlgUniform:
		return "uniform"
	case AlgList:
		return "list"
	default:
		return "straw2"
	}
}

// Bucket is an interior node of the hierarchy grouping items of the next
// level down (e.g. a host grouping OSDs, a root grouping hosts).
type Bucket struct {
	ID    ItemID
	Name  string
	Type  string
	Alg   BucketAlg
	Items []ItemID
}

// Map is a CRUSH hierarchy: a single root bucket, interior buckets and leaf
// devices. Build one with NewMap + AddBucket/AddDevice, or use BuildUniform.
type Map struct {
	root    ItemID
	buckets map[ItemID]*Bucket
	devices map[ItemID]*Device
	// ChooseRetries bounds collision retries per replica slot.
	ChooseRetries int
}

// NewMap returns an empty map.
func NewMap() *Map {
	return &Map{
		root:          InvalidItem,
		buckets:       make(map[ItemID]*Bucket),
		devices:       make(map[ItemID]*Device),
		ChooseRetries: 50,
	}
}

// AddBucket inserts a bucket. The first bucket of type "root" becomes the
// selection root.
func (m *Map) AddBucket(b *Bucket) error {
	if b.ID >= 0 {
		return fmt.Errorf("crush: bucket id %d must be negative", b.ID)
	}
	if _, dup := m.buckets[b.ID]; dup {
		return fmt.Errorf("crush: duplicate bucket id %d", b.ID)
	}
	m.buckets[b.ID] = b
	if b.Type == "root" && m.root == InvalidItem {
		m.root = b.ID
	}
	return nil
}

// AddDevice inserts a leaf device.
func (m *Map) AddDevice(d *Device) error {
	if d.ID < 0 {
		return fmt.Errorf("crush: device id %d must be non-negative", d.ID)
	}
	if _, dup := m.devices[d.ID]; dup {
		return fmt.Errorf("crush: duplicate device id %d", d.ID)
	}
	m.devices[d.ID] = d
	return nil
}

// Device returns the device with the given id, or nil.
func (m *Map) Device(id ItemID) *Device { return m.devices[id] }

// Devices returns all device ids in ascending order.
func (m *Map) Devices() []ItemID {
	ids := make([]ItemID, 0, len(m.devices))
	for id := range m.devices {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// SetDeviceWeight adjusts a device's weight (0 drains it).
func (m *Map) SetDeviceWeight(id ItemID, w float64) error {
	d, ok := m.devices[id]
	if !ok {
		return fmt.Errorf("crush: unknown device %d", id)
	}
	d.Weight = w
	return nil
}

// MarkOut excludes a device from placement; MarkIn restores it.
func (m *Map) MarkOut(id ItemID) error { return m.setOut(id, true) }

// MarkIn restores a device excluded with MarkOut.
func (m *Map) MarkIn(id ItemID) error { return m.setOut(id, false) }

func (m *Map) setOut(id ItemID, out bool) error {
	d, ok := m.devices[id]
	if !ok {
		return fmt.Errorf("crush: unknown device %d", id)
	}
	d.Out = out
	return nil
}

// weightOf returns the effective placement weight of an item: for devices,
// the device weight (0 if out); for buckets, the sum of children weights.
func (m *Map) weightOf(id ItemID) float64 {
	if id >= 0 {
		d := m.devices[id]
		if d == nil || d.Out || d.Weight <= 0 {
			return 0
		}
		return d.Weight
	}
	b := m.buckets[id]
	if b == nil {
		return 0
	}
	sum := 0.0
	for _, c := range b.Items {
		sum += m.weightOf(c)
	}
	return sum
}

// chooseFrom picks one child of bucket b for input x and replica attempt r
// using the bucket's algorithm.
func (m *Map) chooseFrom(b *Bucket, x, r uint32) ItemID {
	switch b.Alg {
	case AlgUniform:
		return m.uniformChoose(b, x, r)
	case AlgList:
		return m.listChoose(b, x, r)
	default:
		return m.straw2(b, x, r)
	}
}

// uniformChoose selects by hash modulo; weights are assumed equal. Items
// with zero effective weight are rejected (the caller's retry loop supplies
// a fresh r).
func (m *Map) uniformChoose(b *Bucket, x, r uint32) ItemID {
	if len(b.Items) == 0 {
		return InvalidItem
	}
	item := b.Items[hash3(x, uint32(int64(b.ID)&0xffffffff), r)%uint32(len(b.Items))]
	if m.weightOf(item) <= 0 {
		return InvalidItem
	}
	return item
}

// listChoose walks tail to head: item i is taken with probability
// w_i / sum(w_0..w_i), each decision drawn from an independent per-item
// hash. Appending an item adds exactly one new decision in front of the
// unchanged old sequence, so data only ever moves TO the new tail item —
// the append-only stability the original CRUSH paper designed this bucket
// for.
func (m *Map) listChoose(b *Bucket, x, r uint32) ItemID {
	weights := make([]float64, len(b.Items))
	cums := make([]float64, len(b.Items))
	sum := 0.0
	for i, item := range b.Items {
		weights[i] = m.weightOf(item)
		sum += weights[i]
		cums[i] = sum
	}
	for i := len(b.Items) - 1; i >= 0; i-- {
		if weights[i] <= 0 {
			continue
		}
		item := b.Items[i]
		h := hash3(x, uint32(int64(item)&0xffffffff), r)
		u := float64(h&0xffffff) / float64(1<<24)
		if u < weights[i]/cums[i] {
			return item
		}
	}
	return InvalidItem
}

// straw2 implements the straw2 distribution: each child draws ln(u)/w and
// the maximum wins, which makes per-item placement probability exactly
// proportional to weight and placement of unrelated items independent.
func (m *Map) straw2(b *Bucket, x, r uint32) ItemID {
	best := InvalidItem
	bestDraw := math.Inf(-1)
	for _, item := range b.Items {
		w := m.weightOf(item)
		if w <= 0 {
			continue
		}
		h := hash3(x, uint32(int64(item)&0xffffffff), r)
		// Map hash to (0,1]; 0 would yield -Inf which still orders fine,
		// but avoid it for numerical hygiene.
		u := (float64(h&0xffff) + 1) / 65536.0
		draw := math.Log(u) / w
		if draw > bestDraw {
			bestDraw = draw
			best = item
		}
	}
	return best
}

// Select places n replicas for input x (a placement-group seed), returning
// device ids on n distinct second-level buckets (the failure domain, e.g.
// hosts). Fewer than n ids are returned if the hierarchy cannot satisfy the
// constraint.
func (m *Map) Select(x uint32, n int) []ItemID {
	rootB := m.buckets[m.root]
	if rootB == nil {
		return nil
	}
	out := make([]ItemID, 0, n)
	usedDomain := make(map[ItemID]bool)
	for rep := 0; rep < n; rep++ {
		placed := false
		for attempt := 0; attempt < m.ChooseRetries && !placed; attempt++ {
			r := uint32(rep + attempt*n)
			leaf, domain := m.descend(rootB, x, r)
			if leaf == InvalidItem {
				continue
			}
			if domain != InvalidItem && usedDomain[domain] {
				continue
			}
			usedDomain[domain] = true
			out = append(out, leaf)
			placed = true
		}
	}
	return out
}

// descend walks from bucket b to a leaf, returning the leaf and the first
// interior bucket below b encountered (the failure domain).
func (m *Map) descend(b *Bucket, x, r uint32) (leaf, domain ItemID) {
	domain = InvalidItem
	cur := b
	for {
		next := m.chooseFrom(cur, x, r)
		if next == InvalidItem {
			return InvalidItem, InvalidItem
		}
		if next >= 0 {
			return next, domain
		}
		if domain == InvalidItem {
			domain = next
		}
		cur = m.buckets[next]
		if cur == nil {
			return InvalidItem, InvalidItem
		}
	}
}

// Clone returns an independent deep copy of the hierarchy, so one epoch's
// placement changes (reweights, out-marks) cannot leak into another's.
func (m *Map) Clone() *Map {
	c := NewMap()
	c.root = m.root
	c.ChooseRetries = m.ChooseRetries
	for id, b := range m.buckets {
		items := make([]ItemID, len(b.Items))
		copy(items, b.Items)
		c.buckets[id] = &Bucket{ID: b.ID, Name: b.Name, Type: b.Type, Alg: b.Alg, Items: items}
	}
	for id, d := range m.devices {
		dd := *d
		c.devices[id] = &dd
	}
	return c
}

// BuildUniform constructs a two-level map: one root, hosts hosts each
// holding osdsPerHost devices of the given weight. Device ids are assigned
// host-major starting at 0.
func BuildUniform(hosts, osdsPerHost int, weight float64) *Map {
	m := NewMap()
	root := &Bucket{ID: -1, Name: "default", Type: "root"}
	_ = m.AddBucket(root)
	next := ItemID(0)
	for h := 0; h < hosts; h++ {
		hb := &Bucket{ID: ItemID(-2 - h), Name: fmt.Sprintf("host%d", h), Type: "host"}
		_ = m.AddBucket(hb)
		root.Items = append(root.Items, hb.ID)
		for o := 0; o < osdsPerHost; o++ {
			_ = m.AddDevice(&Device{ID: next, Weight: weight})
			hb.Items = append(hb.Items, next)
			next++
		}
	}
	return m
}

// BuildRacks constructs a three-level rack-aware map: one root, racks rack
// buckets, each holding hostsPerRack host buckets of osdsPerHost devices of
// the given weight. Device ids are assigned rack-major starting at 0, so
// consecutive ids share a rack. Because the rack level is the first interior
// level below the root, Select's failure-domain constraint places every
// replica of a PG on a distinct rack.
func BuildRacks(racks, hostsPerRack, osdsPerHost int, weight float64) *Map {
	m := NewMap()
	root := &Bucket{ID: -1, Name: "default", Type: "root"}
	_ = m.AddBucket(root)
	next := ItemID(0)
	for r := 0; r < racks; r++ {
		rb := &Bucket{ID: ItemID(-2 - r), Name: fmt.Sprintf("rack%d", r), Type: "rack"}
		_ = m.AddBucket(rb)
		root.Items = append(root.Items, rb.ID)
		for h := 0; h < hostsPerRack; h++ {
			hb := &Bucket{
				ID:   ItemID(-2 - racks - r*hostsPerRack - h),
				Name: fmt.Sprintf("rack%d-host%d", r, h),
				Type: "host",
			}
			_ = m.AddBucket(hb)
			rb.Items = append(rb.Items, hb.ID)
			for o := 0; o < osdsPerHost; o++ {
				_ = m.AddDevice(&Device{ID: next, Weight: weight})
				hb.Items = append(hb.Items, next)
				next++
			}
		}
	}
	return m
}

// DomainOf returns the id of the bucket of the given type on the path from
// the root to device dev, or InvalidItem if dev is not reachable under a
// bucket of that type. It is how callers map an OSD back to its rack (or
// host) without assuming anything about id arithmetic.
func (m *Map) DomainOf(dev ItemID, btype string) ItemID {
	root := m.buckets[m.root]
	if root == nil {
		return InvalidItem
	}
	return m.domainSearch(root, dev, btype, InvalidItem)
}

func (m *Map) domainSearch(b *Bucket, dev ItemID, btype string, cur ItemID) ItemID {
	if b.Type == btype {
		cur = b.ID
	}
	for _, item := range b.Items {
		if item == dev {
			return cur
		}
		if item < 0 {
			if child := m.buckets[item]; child != nil {
				if found := m.domainSearch(child, dev, btype, cur); found != InvalidItem || m.contains(child, dev) {
					return found
				}
			}
		}
	}
	return InvalidItem
}

// contains reports whether dev lives anywhere under bucket b.
func (m *Map) contains(b *Bucket, dev ItemID) bool {
	for _, item := range b.Items {
		if item == dev {
			return true
		}
		if item < 0 {
			if child := m.buckets[item]; child != nil && m.contains(child, dev) {
				return true
			}
		}
	}
	return false
}

// mapJSON is the deterministic wire form of a Map: buckets and devices are
// serialized as id-sorted slices, never as Go maps, so marshalling the same
// hierarchy always yields the same bytes and placement cannot pick up
// map-iteration nondeterminism through a serialize/deserialize cycle.
type mapJSON struct {
	Root          ItemID    `json:"root"`
	ChooseRetries int       `json:"choose_retries"`
	Buckets       []*Bucket `json:"buckets"`
	Devices       []*Device `json:"devices"`
}

// MarshalJSON encodes the hierarchy deterministically (buckets and devices
// in ascending id order).
func (m *Map) MarshalJSON() ([]byte, error) {
	j := mapJSON{Root: m.root, ChooseRetries: m.ChooseRetries}
	for _, b := range m.buckets {
		j.Buckets = append(j.Buckets, b)
	}
	sort.Slice(j.Buckets, func(i, k int) bool { return j.Buckets[i].ID < j.Buckets[k].ID })
	for _, d := range m.devices {
		j.Devices = append(j.Devices, d)
	}
	sort.Slice(j.Devices, func(i, k int) bool { return j.Devices[i].ID < j.Devices[k].ID })
	return json.Marshal(j)
}

// UnmarshalJSON rebuilds the hierarchy from its wire form.
func (m *Map) UnmarshalJSON(data []byte) error {
	var j mapJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	m.root = j.Root
	m.ChooseRetries = j.ChooseRetries
	m.buckets = make(map[ItemID]*Bucket, len(j.Buckets))
	m.devices = make(map[ItemID]*Device, len(j.Devices))
	for _, b := range j.Buckets {
		if _, dup := m.buckets[b.ID]; dup {
			return fmt.Errorf("crush: duplicate bucket id %d in encoded map", b.ID)
		}
		m.buckets[b.ID] = b
	}
	for _, d := range j.Devices {
		if _, dup := m.devices[d.ID]; dup {
			return fmt.Errorf("crush: duplicate device id %d in encoded map", d.ID)
		}
		m.devices[d.ID] = d
	}
	if m.root != InvalidItem && m.buckets[m.root] == nil {
		return fmt.Errorf("crush: encoded root %d has no bucket", m.root)
	}
	return nil
}

// hash3 is a Jenkins-style 3-word integer mix, the same family CRUSH's
// rjenkins1 hash belongs to. Exact constants differ from Ceph; determinism
// and avalanche behaviour are what placement quality depends on.
func hash3(a, b, c uint32) uint32 {
	const golden = 0x9e3779b9
	a, b, c = a+golden, b+golden, c+1315423911
	a -= b + c
	a ^= c >> 13
	b -= c + a
	b ^= a << 8
	c -= a + b
	c ^= b >> 13
	a -= b + c
	a ^= c >> 12
	b -= c + a
	b ^= a << 16
	c -= a + b
	c ^= b >> 5
	a -= b + c
	a ^= c >> 3
	b -= c + a
	b ^= a << 10
	c -= a + b
	c ^= b >> 15
	return c
}

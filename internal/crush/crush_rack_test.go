package crush

import (
	"bytes"
	"encoding/json"
	"testing"
)

// rack128 is the tentpole topology: 16 racks × 8 OSDs (1 OSD per host).
func rack128() *Map { return BuildRacks(16, 8, 1, 1.0) }

func TestBuildRacksShape(t *testing.T) {
	m := rack128()
	devs := m.Devices()
	if len(devs) != 128 {
		t.Fatalf("got %d devices, want 128", len(devs))
	}
	for i, id := range devs {
		if id != ItemID(i) {
			t.Fatalf("device ids not dense: devs[%d] = %d", i, id)
		}
	}
	// Rack-major ids: device id/8 is its rack index.
	for _, id := range devs {
		rack := m.DomainOf(id, "rack")
		if rack == InvalidItem {
			t.Fatalf("device %d has no rack domain", id)
		}
		wantRack := ItemID(-2 - int(id)/8)
		if rack != wantRack {
			t.Fatalf("device %d in rack %d, want %d (rack-major layout)", id, rack, wantRack)
		}
		if host := m.DomainOf(id, "host"); host == InvalidItem {
			t.Fatalf("device %d has no host domain", id)
		}
	}
	if m.DomainOf(999, "rack") != InvalidItem {
		t.Fatalf("unknown device should have no rack domain")
	}
	if m.DomainOf(0, "row") != InvalidItem {
		t.Fatalf("absent bucket type should yield no domain")
	}
}

// TestRackPlacementProperties pins the two invariants the scale-out assembly
// leans on: every acting set has the full replica count, and its members
// land on pairwise-distinct racks.
func TestRackPlacementProperties(t *testing.T) {
	m := rack128()
	for _, n := range []int{2, 3} {
		for x := uint32(0); x < 512; x++ {
			acting := m.Select(x, n)
			if len(acting) != n {
				t.Fatalf("Select(%d, %d) returned %d replicas", x, n, len(acting))
			}
			racks := make(map[ItemID]bool, n)
			seen := make(map[ItemID]bool, n)
			for _, id := range acting {
				if seen[id] {
					t.Fatalf("Select(%d, %d) repeated device %d", x, n, id)
				}
				seen[id] = true
				rack := m.DomainOf(id, "rack")
				if rack == InvalidItem {
					t.Fatalf("Select(%d, %d) placed on rackless device %d", x, n, id)
				}
				if racks[rack] {
					t.Fatalf("Select(%d, %d) = %v put two replicas in rack %d", x, n, acting, rack)
				}
				racks[rack] = true
			}
		}
	}
}

// TestRackPlacementSpreadsPrimaries guards against a degenerate straw2 that
// funnels primaries into few racks: over many PG seeds every rack must own
// at least one primary.
func TestRackPlacementSpreadsPrimaries(t *testing.T) {
	m := rack128()
	perRack := make(map[ItemID]int)
	const pgs = 1024
	for x := uint32(0); x < pgs; x++ {
		acting := m.Select(x, 3)
		if len(acting) == 0 {
			t.Fatalf("Select(%d, 3) empty", x)
		}
		perRack[m.DomainOf(acting[0], "rack")]++
	}
	if len(perRack) != 16 {
		t.Fatalf("primaries landed on %d racks, want all 16", len(perRack))
	}
	for rack, n := range perRack {
		// Uniform share is 64; even a skewed hash should stay within 3x.
		if n > 3*pgs/16 {
			t.Fatalf("rack %d owns %d/%d primaries — pathological skew", rack, n, pgs)
		}
	}
}

// TestMapMarshalDeterministic: marshalling the same hierarchy twice — and
// marshalling an Unmarshal-round-tripped copy — must yield identical bytes.
// Go maps iterate in random order; this is the class of bug PR 6 fixed and
// the encoder must stay immune to it.
func TestMapMarshalDeterministic(t *testing.T) {
	m := rack128()
	first, err := json.Marshal(m)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	for i := 0; i < 16; i++ {
		again, err := json.Marshal(m)
		if err != nil {
			t.Fatalf("marshal #%d: %v", i, err)
		}
		if !bytes.Equal(first, again) {
			t.Fatalf("marshal #%d produced different bytes", i)
		}
	}
	var rt Map
	if err := json.Unmarshal(first, &rt); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	rtBytes, err := json.Marshal(&rt)
	if err != nil {
		t.Fatalf("re-marshal: %v", err)
	}
	if !bytes.Equal(first, rtBytes) {
		t.Fatalf("round-tripped map marshals to different bytes")
	}
}

// TestPlacementStableUnderRemarshal: a map that has been through
// marshal → unmarshal → marshal → unmarshal must place every PG exactly
// where the original did, for all replica counts the cluster uses.
func TestPlacementStableUnderRemarshal(t *testing.T) {
	orig := rack128()
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var once Map
	if err := json.Unmarshal(data, &once); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	data2, err := json.Marshal(&once)
	if err != nil {
		t.Fatalf("re-marshal: %v", err)
	}
	var twice Map
	if err := json.Unmarshal(data2, &twice); err != nil {
		t.Fatalf("re-unmarshal: %v", err)
	}
	for _, n := range []int{1, 2, 3} {
		for x := uint32(0); x < 512; x++ {
			want := orig.Select(x, n)
			for pass, m := range []*Map{&once, &twice} {
				got := m.Select(x, n)
				if len(got) != len(want) {
					t.Fatalf("pass %d: Select(%d, %d) len %d, want %d", pass, x, n, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("pass %d: Select(%d, %d)[%d] = %d, want %d", pass, x, n, i, got[i], want[i])
					}
				}
			}
		}
	}
	// DomainOf must survive the trip too — the scale-out assembly uses it to
	// home objects to racks.
	for dev := ItemID(0); dev < 128; dev++ {
		if got, want := twice.DomainOf(dev, "rack"), orig.DomainOf(dev, "rack"); got != want {
			t.Fatalf("device %d rack %d after round trip, want %d", dev, got, want)
		}
	}
}

func TestUnmarshalRejectsCorruptMaps(t *testing.T) {
	dup := `{"root":-1,"choose_retries":50,"buckets":[{"ID":-1,"Name":"default","Type":"root","Alg":0,"Items":[0]},{"ID":-1,"Name":"dup","Type":"root","Alg":0,"Items":[]}],"devices":[{"ID":0,"Weight":1,"Out":false}]}`
	var m Map
	if err := json.Unmarshal([]byte(dup), &m); err == nil {
		t.Fatalf("duplicate bucket id accepted")
	}
	dupDev := `{"root":-1,"choose_retries":50,"buckets":[{"ID":-1,"Name":"default","Type":"root","Alg":0,"Items":[0]}],"devices":[{"ID":0,"Weight":1,"Out":false},{"ID":0,"Weight":1,"Out":false}]}`
	var m2 Map
	if err := json.Unmarshal([]byte(dupDev), &m2); err == nil {
		t.Fatalf("duplicate device id accepted")
	}
	noRoot := `{"root":-7,"choose_retries":50,"buckets":[],"devices":[]}`
	var m3 Map
	if err := json.Unmarshal([]byte(noRoot), &m3); err == nil {
		t.Fatalf("dangling root accepted")
	}
}

// TestCloneKeepsRackTopology: Clone must preserve placement and domains —
// the monitor clones the map per epoch.
func TestCloneKeepsRackTopology(t *testing.T) {
	m := rack128()
	c := m.Clone()
	for x := uint32(0); x < 256; x++ {
		want, got := m.Select(x, 3), c.Select(x, 3)
		if len(want) != len(got) {
			t.Fatalf("clone Select(%d) len %d, want %d", x, len(got), len(want))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("clone Select(%d)[%d] = %d, want %d", x, i, got[i], want[i])
			}
		}
	}
	for dev := ItemID(0); dev < 128; dev++ {
		if c.DomainOf(dev, "rack") != m.DomainOf(dev, "rack") {
			t.Fatalf("clone lost rack domain of device %d", dev)
		}
	}
}

package dpu

import "doceph/internal/sim"

// BreakerState is the circuit-breaker position: Closed means the DMA data
// plane is trusted, Open means traffic is failed over to the host RPC path,
// HalfOpen means probe transfers are testing whether the DPU recovered.
type BreakerState int

const (
	BreakerClosed BreakerState = iota
	BreakerOpen
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// BreakerDecision is what the data path should do with the next request.
type BreakerDecision int

const (
	// BreakerAllow: use the DMA data plane.
	BreakerAllow BreakerDecision = iota
	// BreakerDeny: route over the host RPC fallback path.
	BreakerDeny
	// BreakerProbe: run one small probe transfer before deciding; the
	// caller must report the outcome via RecordProbe. The probe slot is
	// reserved at decision time, so concurrent requests are denied until
	// the probe resolves and ProbeInterval passes.
	BreakerProbe
)

// BreakerConfig tunes the per-bridge DPU health circuit breaker. Off by
// default: with Enable false no breaker is constructed and the proxy keeps
// its legacy single-failure cooldown behaviour, so existing golden runs stay
// bit-identical. All other fields take defaults when zero.
type BreakerConfig struct {
	// Enable turns the breaker on (usually set through BridgeConfig.Breaker).
	Enable bool
	// Window is the rolling interval over which data-path failures and
	// stalls are counted against FailureThreshold.
	Window sim.Duration
	// FailureThreshold opens the breaker once this many failures (errors +
	// stalls) land inside Window. Unlike the legacy cooldown, isolated
	// failures below the threshold keep DMA enabled.
	FailureThreshold int
	// OpenTimeout is how long the breaker stays open before transitioning
	// to half-open and admitting probe traffic.
	OpenTimeout sim.Duration
	// ProbeInterval is the minimum spacing between half-open probes.
	ProbeInterval sim.Duration
	// CloseProbes is the number of consecutive successful probes required
	// to close the breaker and re-enroll the session onto the DPU.
	CloseProbes int
	// StallThreshold classifies a DMA request whose non-copy wait exceeds
	// it as a stall, which counts toward FailureThreshold like an error.
	// Zero disables stall detection.
	StallThreshold sim.Duration
}

// DefaultBreakerConfig returns the defaults used when Enable is set.
func DefaultBreakerConfig() BreakerConfig {
	return BreakerConfig{
		Window:           10 * sim.Second,
		FailureThreshold: 5,
		OpenTimeout:      5 * sim.Second,
		ProbeInterval:    sim.Second,
		CloseProbes:      3,
	}
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	d := DefaultBreakerConfig()
	if c.Window == 0 {
		c.Window = d.Window
	}
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = d.FailureThreshold
	}
	if c.OpenTimeout == 0 {
		c.OpenTimeout = d.OpenTimeout
	}
	if c.ProbeInterval == 0 {
		c.ProbeInterval = d.ProbeInterval
	}
	if c.CloseProbes <= 0 {
		c.CloseProbes = d.CloseProbes
	}
	return c
}

// BreakerStats counts breaker activity.
type BreakerStats struct {
	Failures       int64 // data-path errors recorded
	Stalls         int64 // stall-classified requests recorded
	Rejections     int64 // requests denied DMA (open / awaiting probe slot)
	ProbeSuccesses int64
	ProbeFailures  int64
	Opens          int64 // transitions into Open
	HalfOpens      int64 // transitions into HalfOpen
	Closes         int64 // transitions back into Closed
}

// BreakerTransition is one recorded state change.
type BreakerTransition struct {
	At   sim.Time
	From BreakerState
	To   BreakerState
}

// maxTransitions bounds the recorded history; a breaker flapping past this
// keeps counting in Stats but stops appending (chaos runs see a handful).
const maxTransitions = 256

// Breaker is a deterministic circuit breaker driven entirely by caller-
// supplied virtual-clock instants — it owns no goroutines and never reads a
// wall clock, so its trajectory is a pure function of the event sequence.
type Breaker struct {
	cfg      BreakerConfig
	state    BreakerState
	failures []sim.Time // failure instants within the rolling window
	openedAt sim.Time
	// probeAt reserves the in-flight or most recent probe slot; the next
	// probe is admitted once ProbeInterval has passed since it.
	probeAt     sim.Time
	probeArmed  bool // false until the first half-open probe fires
	streak      int  // consecutive successful probes while half-open
	stats       BreakerStats
	transitions []BreakerTransition
}

// NewBreaker returns a closed breaker (cfg zero fields take defaults).
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults()}
}

// Config returns the post-defaulting configuration.
func (b *Breaker) Config() BreakerConfig { return b.cfg }

// State returns the current position.
func (b *Breaker) State() BreakerState { return b.state }

// Stats returns a copy of the counters.
func (b *Breaker) Stats() BreakerStats { return b.stats }

// Transitions returns the recorded state-change history in order.
func (b *Breaker) Transitions() []BreakerTransition {
	out := make([]BreakerTransition, len(b.transitions))
	copy(out, b.transitions)
	return out
}

func (b *Breaker) transition(now sim.Time, to BreakerState) {
	if len(b.transitions) < maxTransitions {
		b.transitions = append(b.transitions, BreakerTransition{At: now, From: b.state, To: to})
	}
	b.state = to
	switch to {
	case BreakerOpen:
		b.stats.Opens++
		b.openedAt = now
		b.failures = b.failures[:0]
	case BreakerHalfOpen:
		b.stats.HalfOpens++
		b.streak = 0
		b.probeArmed = false
	case BreakerClosed:
		b.stats.Closes++
		b.failures = b.failures[:0]
	}
}

// prune drops failures that slid out of the rolling window.
func (b *Breaker) prune(now sim.Time) {
	cut := 0
	for cut < len(b.failures) && now.Sub(b.failures[cut]) > b.cfg.Window {
		cut++
	}
	if cut > 0 {
		b.failures = append(b.failures[:0], b.failures[cut:]...)
	}
}

// Decide returns what the data path should do with a request arriving at
// now. A BreakerProbe return reserves the probe slot: until the caller
// resolves it with RecordProbe and ProbeInterval elapses, concurrent
// requests are denied rather than piling probes onto a sick device.
func (b *Breaker) Decide(now sim.Time) BreakerDecision {
	switch b.state {
	case BreakerClosed:
		return BreakerAllow
	case BreakerOpen:
		if now.Sub(b.openedAt) < b.cfg.OpenTimeout {
			b.stats.Rejections++
			return BreakerDeny
		}
		b.transition(now, BreakerHalfOpen)
		b.probeArmed = true
		b.probeAt = now
		return BreakerProbe
	default: // BreakerHalfOpen
		if b.probeArmed && now.Sub(b.probeAt) < b.cfg.ProbeInterval {
			b.stats.Rejections++
			return BreakerDeny
		}
		b.probeArmed = true
		b.probeAt = now
		return BreakerProbe
	}
}

// RecordProbe resolves a probe admitted by Decide: a failure reopens the
// breaker immediately; CloseProbes consecutive successes close it.
func (b *Breaker) RecordProbe(now sim.Time, ok bool) {
	b.probeAt = now
	if !ok {
		b.stats.ProbeFailures++
		if b.state != BreakerOpen {
			b.transition(now, BreakerOpen)
		} else {
			b.openedAt = now
		}
		return
	}
	b.stats.ProbeSuccesses++
	if b.state != BreakerHalfOpen {
		return
	}
	b.streak++
	if b.streak >= b.cfg.CloseProbes {
		b.transition(now, BreakerClosed)
	}
}

// RecordFailure notes a data-path DMA error at now. While closed it counts
// toward FailureThreshold inside the rolling window; while half-open any
// traffic failure reopens the breaker; while open it refreshes nothing (the
// path is already failed over).
func (b *Breaker) RecordFailure(now sim.Time) {
	b.stats.Failures++
	b.noteFailure(now)
}

// RecordStall notes a stall-classified request (non-copy wait beyond
// StallThreshold); it weighs the same as an error.
func (b *Breaker) RecordStall(now sim.Time) {
	b.stats.Stalls++
	b.noteFailure(now)
}

func (b *Breaker) noteFailure(now sim.Time) {
	switch b.state {
	case BreakerClosed:
		b.prune(now)
		b.failures = append(b.failures, now)
		if len(b.failures) >= b.cfg.FailureThreshold {
			b.transition(now, BreakerOpen)
		}
	case BreakerHalfOpen:
		b.transition(now, BreakerOpen)
	}
}

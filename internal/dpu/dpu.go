// Package dpu models a BlueField-3-class Data Processing Unit as the paper
// uses it: a SoC with its own ARM cores running an independent OS (a
// separate, slower sim.CPU), onboard DDR for staging buffers, and a PCIe
// attachment to the host through which the DOCA DMA engine and CommChannel
// operate (see package doca).
package dpu

import (
	"fmt"

	"doceph/internal/sim"
)

// Config describes the SoC. Defaults approximate a BlueField-3: 16
// Cortex-A78 cores around 2.0 GHz with a few hundred staging buffers of the
// DMA segment size.
type Config struct {
	Cores           int
	FreqGHz         float64
	CtxSwitchCycles int64
	// StagingBufferBytes is the size of one DMA-capable staging buffer
	// (the hardware's ~2 MB transfer limit).
	StagingBufferBytes int64
	// StagingBuffers is the pool depth shared by all in-flight requests.
	StagingBuffers int
}

// DefaultConfig returns the BlueField-3-like defaults.
func DefaultConfig() Config {
	return Config{
		Cores:              16,
		FreqGHz:            2.0,
		CtxSwitchCycles:    2500,
		StagingBufferBytes: 2 << 20,
		StagingBuffers:     64,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.Cores == 0 {
		c.Cores = d.Cores
	}
	if c.FreqGHz == 0 {
		c.FreqGHz = d.FreqGHz
	}
	if c.CtxSwitchCycles == 0 {
		c.CtxSwitchCycles = d.CtxSwitchCycles
	}
	if c.StagingBufferBytes == 0 {
		c.StagingBufferBytes = d.StagingBufferBytes
	}
	if c.StagingBuffers == 0 {
		c.StagingBuffers = d.StagingBuffers
	}
	return c
}

// DPU is one device instance.
type DPU struct {
	Name string
	// CPU is the ARM complex; all DPU-resident Ceph threads execute here.
	CPU *sim.CPU
	// Buffers is the DMA-capable staging memory pool.
	Buffers *BufferPool
	cfg     Config
}

// New creates a DPU named name.
func New(env *sim.Env, name string, cfg Config) *DPU {
	cfg = cfg.withDefaults()
	return &DPU{
		Name: name,
		CPU:  sim.NewCPU(env, name+"-arm", cfg.Cores, cfg.FreqGHz, cfg.CtxSwitchCycles),
		Buffers: NewBufferPool(env, fmt.Sprintf("%s-staging", name),
			cfg.StagingBuffers, cfg.StagingBufferBytes),
		cfg: cfg,
	}
}

// Config returns the device configuration (post-defaulting).
func (d *DPU) Config() Config { return d.cfg }

// BufferPool is a fixed pool of equally sized DMA-capable buffers. Acquire
// blocks when the pool is drained, which is exactly the backpressure that
// bounds the DMA pipeline depth.
type BufferPool struct {
	name string
	sem  *sim.Semaphore
	size int64
	cap  int
	// Backpressure accounting: cumulative time Acquire callers spent
	// blocked on a drained pool, and the number of acquisitions.
	totalWait sim.Duration
	acquires  int64
}

// NewBufferPool returns a pool of n buffers of the given size.
func NewBufferPool(env *sim.Env, name string, n int, size int64) *BufferPool {
	return &BufferPool{name: name, sem: sim.NewSemaphore(env, n), size: size, cap: n}
}

// BufferBytes returns the size of each buffer.
func (b *BufferPool) BufferBytes() int64 { return b.size }

// Capacity returns the pool depth.
func (b *BufferPool) Capacity() int { return b.cap }

// Available returns the number of free buffers.
func (b *BufferPool) Available() int { return b.sem.Available() }

// Acquire blocks p until a buffer is free and returns the acquisition
// instant (used to measure staging-wait).
func (b *BufferPool) Acquire(p *sim.Proc) sim.Time {
	start := p.Now()
	b.sem.Acquire(p, 1)
	b.acquires++
	b.totalWait += p.Now().Sub(start)
	return p.Now()
}

// WaitStats returns the cumulative blocked time across all Acquire calls
// and how many acquisitions were made — the staging-buffer backpressure
// behind the DMA-wait component of the latency breakdown.
func (b *BufferPool) WaitStats() (total sim.Duration, acquires int64) {
	return b.totalWait, b.acquires
}

// Release returns one buffer to the pool.
func (b *BufferPool) Release() { b.sem.Release(1) }

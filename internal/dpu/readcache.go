package dpu

import (
	"container/list"

	"doceph/internal/wire"
)

// ReadCacheConfig tunes the DPU-side object read cache (off by default).
// With the cache on, hot full-object reads are answered from the DPU's
// DDR without crossing PCIe or touching the host CPU — the paper's
// messaging-offload claim extended to the read path.
type ReadCacheConfig struct {
	// Enable turns the cache on. Off by default: the write-only paper
	// goldens must not see a read cache.
	Enable bool
	// CapacityBytes bounds the cached payload volume (default 64 MiB).
	// Least-recently-used entries are evicted past it; objects larger
	// than the capacity are never cached.
	CapacityBytes int64
	// HitCycles is the fixed DPU CPU cost of a cache hit (lookup +
	// descriptor bookkeeping; default 2000).
	HitCycles int64
	// HitCyclesPerByte is the DPU CPU cost per byte served from cache
	// (the memcpy out of DDR; default 0.25).
	HitCyclesPerByte float64
}

func (c ReadCacheConfig) withDefaults() ReadCacheConfig {
	if c.CapacityBytes == 0 {
		c.CapacityBytes = 64 << 20
	}
	if c.HitCycles == 0 {
		c.HitCycles = 2000
	}
	if c.HitCyclesPerByte == 0 {
		c.HitCyclesPerByte = 0.25
	}
	return c
}

// ReadCacheStats counts cache activity.
type ReadCacheStats struct {
	Hits          int64
	Misses        int64
	Inserts       int64
	Evictions     int64
	Invalidations int64
	Bytes         int64 // currently cached payload volume
	Entries       int64
}

type rcEntry struct {
	coll, obj string
	data      *wire.Bufferlist
	elem      *list.Element
}

// ReadCache is a deterministic LRU cache of whole objects, keyed by
// (collection, object). Entries are populated by full-object reads only —
// a partial read does not reveal the object's full content — and hits are
// served for any byte range with BlueStore's clamp-to-EOF semantics.
// Cached Bufferlists are shared zero-copy (the data plane never mutates
// payload segments), so Lookup returns sublists of the stored content.
// Eviction order depends only on the access sequence, never on map
// iteration, so runs are bit-identical per seed.
type ReadCache struct {
	cfg     ReadCacheConfig
	entries map[string]*rcEntry
	lru     *list.List // front = most recent
	bytes   int64
	stats   ReadCacheStats
}

// NewReadCache returns an empty cache with cfg (defaults applied).
func NewReadCache(cfg ReadCacheConfig) *ReadCache {
	return &ReadCache{
		cfg:     cfg.withDefaults(),
		entries: make(map[string]*rcEntry),
		lru:     list.New(),
	}
}

// Config returns the post-defaulting configuration.
func (c *ReadCache) Config() ReadCacheConfig { return c.cfg }

// Stats returns a snapshot of the counters.
func (c *ReadCache) Stats() ReadCacheStats {
	s := c.stats
	s.Bytes = c.bytes
	s.Entries = int64(len(c.entries))
	return s
}

func rcKey(coll, obj string) string { return coll + "\x00" + obj }

// Lookup serves a read of (off, length) against the cached full object,
// if present: off past EOF yields an empty list, length 0 or past EOF
// clamps to EOF (matching BlueStore.Read). The second result is false on
// a miss.
func (c *ReadCache) Lookup(coll, obj string, off, length uint64) (*wire.Bufferlist, bool) {
	e, ok := c.entries[rcKey(coll, obj)]
	if !ok {
		c.stats.Misses++
		return nil, false
	}
	c.stats.Hits++
	c.lru.MoveToFront(e.elem)
	size := uint64(e.data.Length())
	if off >= size {
		return &wire.Bufferlist{}, true
	}
	if length == 0 || off+length > size {
		length = size - off
	}
	return e.data.SubList(int(off), int(length)), true
}

// Insert stores the full content of (coll, obj), evicting LRU entries
// until the capacity holds. Oversized objects are ignored.
func (c *ReadCache) Insert(coll, obj string, data *wire.Bufferlist) {
	if data == nil || int64(data.Length()) > c.cfg.CapacityBytes {
		return
	}
	key := rcKey(coll, obj)
	if e, ok := c.entries[key]; ok {
		c.bytes += int64(data.Length()) - int64(e.data.Length())
		e.data = data
		c.lru.MoveToFront(e.elem)
	} else {
		e := &rcEntry{coll: coll, obj: obj, data: data}
		e.elem = c.lru.PushFront(e)
		c.entries[key] = e
		c.bytes += int64(data.Length())
		c.stats.Inserts++
	}
	for c.bytes > c.cfg.CapacityBytes {
		back := c.lru.Back()
		if back == nil {
			break
		}
		c.removeEntry(back.Value.(*rcEntry))
		c.stats.Evictions++
	}
}

// Invalidate drops the entry for (coll, obj), if cached — called for
// every mutation the proxy ships so cached content never goes stale.
func (c *ReadCache) Invalidate(coll, obj string) {
	if e, ok := c.entries[rcKey(coll, obj)]; ok {
		c.removeEntry(e)
		c.stats.Invalidations++
	}
}

// InvalidateCollection drops every entry of coll (collection removal).
// Entries are walked in LRU order, not map order, for determinism.
func (c *ReadCache) InvalidateCollection(coll string) {
	for elem := c.lru.Front(); elem != nil; {
		next := elem.Next()
		if e := elem.Value.(*rcEntry); e.coll == coll {
			c.removeEntry(e)
			c.stats.Invalidations++
		}
		elem = next
	}
}

func (c *ReadCache) removeEntry(e *rcEntry) {
	c.lru.Remove(e.elem)
	delete(c.entries, rcKey(e.coll, e.obj))
	c.bytes -= int64(e.data.Length())
}

// HitCost returns the DPU CPU cycles a hit of n payload bytes costs.
func (c *ReadCache) HitCost(n int64) int64 {
	return c.cfg.HitCycles + int64(float64(n)*c.cfg.HitCyclesPerByte)
}

package dpu

import (
	"testing"

	"doceph/internal/sim"
)

func at(d sim.Duration) sim.Time { return sim.Time(0).Add(d) }

// TestBreakerOpensAtThreshold: failures below the threshold keep DMA
// allowed; the Nth failure inside the window opens the breaker.
func TestBreakerOpensAtThreshold(t *testing.T) {
	b := NewBreaker(BreakerConfig{Enable: true, Window: 10 * sim.Second, FailureThreshold: 3})
	for i := 0; i < 2; i++ {
		b.RecordFailure(at(sim.Duration(i) * sim.Second))
		if got := b.Decide(at(sim.Duration(i) * sim.Second)); got != BreakerAllow {
			t.Fatalf("after %d failures: decision %v, want allow", i+1, got)
		}
	}
	b.RecordFailure(at(2 * sim.Second))
	if b.State() != BreakerOpen {
		t.Fatalf("state %v after threshold failures, want open", b.State())
	}
	if got := b.Decide(at(3 * sim.Second)); got != BreakerDeny {
		t.Fatalf("decision %v while open, want deny", got)
	}
	if s := b.Stats(); s.Opens != 1 || s.Failures != 3 || s.Rejections != 1 {
		t.Fatalf("stats %+v, want 1 open / 3 failures / 1 rejection", s)
	}
}

// TestBreakerWindowExpiry: failures spread wider than the rolling window
// never accumulate to the threshold.
func TestBreakerWindowExpiry(t *testing.T) {
	b := NewBreaker(BreakerConfig{Enable: true, Window: sim.Second, FailureThreshold: 3})
	for i := 0; i < 10; i++ {
		b.RecordFailure(at(sim.Duration(i) * 2 * sim.Second))
	}
	if b.State() != BreakerClosed {
		t.Fatalf("state %v with spread-out failures, want closed", b.State())
	}
}

// TestBreakerHalfOpenProbeCadence: after OpenTimeout the first request is
// admitted as a probe, concurrent requests are denied while the probe slot
// is reserved, and successive probes respect ProbeInterval until CloseProbes
// successes close the breaker.
func TestBreakerHalfOpenProbeCadence(t *testing.T) {
	cfg := BreakerConfig{Enable: true, Window: 10 * sim.Second, FailureThreshold: 1,
		OpenTimeout: 5 * sim.Second, ProbeInterval: sim.Second, CloseProbes: 2}
	b := NewBreaker(cfg)
	b.RecordFailure(at(0))
	if b.State() != BreakerOpen {
		t.Fatalf("state %v, want open", b.State())
	}
	if got := b.Decide(at(4 * sim.Second)); got != BreakerDeny {
		t.Fatalf("decision %v before OpenTimeout, want deny", got)
	}
	if got := b.Decide(at(5 * sim.Second)); got != BreakerProbe {
		t.Fatalf("decision %v at OpenTimeout, want probe", got)
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state %v after probe admission, want half-open", b.State())
	}
	// Probe slot reserved: a concurrent request must not probe too.
	if got := b.Decide(at(5*sim.Second + 100*sim.Millisecond)); got != BreakerDeny {
		t.Fatalf("decision %v with probe in flight, want deny", got)
	}
	b.RecordProbe(at(5*sim.Second+200*sim.Millisecond), true)
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state %v after 1/2 probe successes, want half-open", b.State())
	}
	// Next probe only after ProbeInterval from the last resolution.
	if got := b.Decide(at(6 * sim.Second)); got != BreakerDeny {
		t.Fatalf("decision %v inside ProbeInterval, want deny", got)
	}
	if got := b.Decide(at(6*sim.Second + 200*sim.Millisecond)); got != BreakerProbe {
		t.Fatalf("decision %v after ProbeInterval, want probe", got)
	}
	b.RecordProbe(at(6*sim.Second+300*sim.Millisecond), true)
	if b.State() != BreakerClosed {
		t.Fatalf("state %v after %d probe successes, want closed", b.State(), cfg.CloseProbes)
	}
	if got := b.Decide(at(7 * sim.Second)); got != BreakerAllow {
		t.Fatalf("decision %v after close, want allow", got)
	}
}

// TestBreakerProbeFailureReopens: a failed half-open probe reopens the
// breaker and restarts the OpenTimeout clock; the success streak resets.
func TestBreakerProbeFailureReopens(t *testing.T) {
	b := NewBreaker(BreakerConfig{Enable: true, FailureThreshold: 1,
		OpenTimeout: 2 * sim.Second, ProbeInterval: sim.Second, CloseProbes: 2})
	b.RecordFailure(at(0))
	if got := b.Decide(at(2 * sim.Second)); got != BreakerProbe {
		t.Fatalf("decision %v, want probe", got)
	}
	b.RecordProbe(at(2*sim.Second+100*sim.Millisecond), true) // streak 1/2
	if got := b.Decide(at(4 * sim.Second)); got != BreakerProbe {
		t.Fatalf("decision %v, want probe", got)
	}
	b.RecordProbe(at(4*sim.Second+100*sim.Millisecond), false)
	if b.State() != BreakerOpen {
		t.Fatalf("state %v after probe failure, want open", b.State())
	}
	// OpenTimeout restarts from the failed probe.
	if got := b.Decide(at(5 * sim.Second)); got != BreakerDeny {
		t.Fatalf("decision %v inside restarted OpenTimeout, want deny", got)
	}
	if got := b.Decide(at(6*sim.Second + 200*sim.Millisecond)); got != BreakerProbe {
		t.Fatalf("decision %v after restarted OpenTimeout, want probe", got)
	}
	// The streak restarted: one success must not close.
	b.RecordProbe(at(6*sim.Second+300*sim.Millisecond), true)
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state %v after reset streak success, want half-open", b.State())
	}
}

// TestBreakerHalfOpenTrafficFailure: a data-path failure (not a probe)
// while half-open also reopens the breaker.
func TestBreakerHalfOpenTrafficFailure(t *testing.T) {
	b := NewBreaker(BreakerConfig{Enable: true, FailureThreshold: 1,
		OpenTimeout: sim.Second, CloseProbes: 3})
	b.RecordFailure(at(0))
	if got := b.Decide(at(sim.Second)); got != BreakerProbe {
		t.Fatalf("decision %v, want probe", got)
	}
	b.RecordFailure(at(sim.Second + 500*sim.Millisecond))
	if b.State() != BreakerOpen {
		t.Fatalf("state %v after half-open traffic failure, want open", b.State())
	}
}

// TestBreakerStallCountsAsFailure: stalls share the failure budget.
func TestBreakerStallCountsAsFailure(t *testing.T) {
	b := NewBreaker(BreakerConfig{Enable: true, Window: 10 * sim.Second, FailureThreshold: 2})
	b.RecordStall(at(sim.Second))
	b.RecordFailure(at(2 * sim.Second))
	if b.State() != BreakerOpen {
		t.Fatalf("state %v after stall+failure, want open", b.State())
	}
	if s := b.Stats(); s.Stalls != 1 || s.Failures != 1 {
		t.Fatalf("stats %+v, want 1 stall / 1 failure", s)
	}
}

// TestBreakerTransitionsRecorded: the full open -> half-open -> closed
// history is observable in order with the causal instants.
func TestBreakerTransitionsRecorded(t *testing.T) {
	b := NewBreaker(BreakerConfig{Enable: true, FailureThreshold: 1,
		OpenTimeout: sim.Second, CloseProbes: 1})
	b.RecordFailure(at(sim.Second))
	b.Decide(at(2 * sim.Second))
	b.RecordProbe(at(2*sim.Second+100*sim.Millisecond), true)
	trs := b.Transitions()
	want := []BreakerState{BreakerOpen, BreakerHalfOpen, BreakerClosed}
	if len(trs) != len(want) {
		t.Fatalf("%d transitions, want %d: %+v", len(trs), len(want), trs)
	}
	for i, tr := range trs {
		if tr.To != want[i] {
			t.Fatalf("transition %d is %v->%v, want ->%v", i, tr.From, tr.To, want[i])
		}
		if i > 0 && trs[i-1].At > tr.At {
			t.Fatalf("transition instants out of order: %+v", trs)
		}
	}
	if s := b.Stats(); s.Opens != 1 || s.HalfOpens != 1 || s.Closes != 1 {
		t.Fatalf("stats %+v, want one of each transition", s)
	}
}

// TestBreakerDefaults: zero config fields take documented defaults.
func TestBreakerDefaults(t *testing.T) {
	b := NewBreaker(BreakerConfig{Enable: true})
	cfg := b.Config()
	d := DefaultBreakerConfig()
	if cfg.Window != d.Window || cfg.FailureThreshold != d.FailureThreshold ||
		cfg.OpenTimeout != d.OpenTimeout || cfg.ProbeInterval != d.ProbeInterval ||
		cfg.CloseProbes != d.CloseProbes {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
	if cfg.StallThreshold != 0 {
		t.Fatalf("StallThreshold defaulted to %v; zero must stay disabled", cfg.StallThreshold)
	}
}

package dpu

import (
	"testing"

	"doceph/internal/sim"
)

func TestDefaultsApplied(t *testing.T) {
	env := sim.NewEnv(1)
	d := New(env, "bf3", Config{})
	cfg := d.Config()
	if cfg.Cores != 16 || cfg.FreqGHz != 2.0 {
		t.Fatalf("cfg=%+v", cfg)
	}
	if d.CPU.Cores() != 16 {
		t.Fatalf("cpu cores=%d", d.CPU.Cores())
	}
	if d.Buffers.BufferBytes() != 2<<20 || d.Buffers.Capacity() != 64 {
		t.Fatalf("buffers=%d x %d", d.Buffers.Capacity(), d.Buffers.BufferBytes())
	}
}

func TestConfigOverrides(t *testing.T) {
	env := sim.NewEnv(1)
	d := New(env, "bf3", Config{Cores: 8, FreqGHz: 2.5, StagingBuffers: 4, StagingBufferBytes: 1 << 20})
	if d.CPU.Cores() != 8 || d.Buffers.Capacity() != 4 || d.Buffers.BufferBytes() != 1<<20 {
		t.Fatalf("cfg not applied: %+v", d.Config())
	}
}

func TestBufferPoolBackpressure(t *testing.T) {
	env := sim.NewEnv(1)
	pool := NewBufferPool(env, "p", 2, 1<<20)
	if pool.Available() != 2 {
		t.Fatalf("avail=%d", pool.Available())
	}
	var acquiredAt []sim.Time
	for i := 0; i < 3; i++ {
		env.Spawn("w", func(p *sim.Proc) {
			at := pool.Acquire(p)
			acquiredAt = append(acquiredAt, at)
			p.Wait(sim.Millisecond)
			pool.Release()
		})
	}
	if err := env.RunUntil(sim.Time(sim.Second)); err != nil {
		t.Fatal(err)
	}
	env.Shutdown()
	if len(acquiredAt) != 3 {
		t.Fatalf("acquisitions=%d", len(acquiredAt))
	}
	// First two immediate, third waits for a release.
	if acquiredAt[0] != 0 || acquiredAt[1] != 0 {
		t.Fatalf("early acquires at %v", acquiredAt[:2])
	}
	if acquiredAt[2] != sim.Time(sim.Millisecond) {
		t.Fatalf("third acquire at %v, want 1ms", acquiredAt[2])
	}
	if pool.Available() != 2 {
		t.Fatalf("avail=%d after all releases", pool.Available())
	}
}

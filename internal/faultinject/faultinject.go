// Package faultinject provides a deterministic, virtual-time-scheduled
// fault-injection framework for the simulated cluster. A Plan is a list of
// timed fault events (network degradation, storage faults, DPU faults, OSD
// crashes); an Injector binds the plan to concrete targets and replays it on
// the simulation clock. Because events fire at virtual times and every
// probabilistic fault draws from the environment's seeded RNG, a given
// (seed, plan) pair reproduces the exact same failure history on every run —
// which is what lets the chaos experiments compare Baseline and DoCeph under
// *identical* fault schedules and assert byte-identical results across runs.
package faultinject

import (
	"fmt"

	"doceph/internal/bluestore"
	"doceph/internal/doca"
	"doceph/internal/mon"
	"doceph/internal/osd"
	"doceph/internal/sim"
	"doceph/internal/telemetry"
)

// Kind enumerates the fault classes the injector can apply.
type Kind int

// Fault kinds. Network faults (Drop, Latency, Bandwidth, Partition) act on
// the fabric NIC of Event.Node; storage faults (SlowIO, WriteError, BitRot)
// act on that node's BlueStore; DPU faults (DMAError, CommStall) act on that
// node's DMA engines / CommChannel; OSDCrash acts on Event.OSD.
const (
	// Drop adds Prob packet-loss probability to the node's NIC.
	Drop Kind = iota
	// Latency adds Extra one-way latency to the node's NIC.
	Latency
	// Bandwidth multiplies the node's NIC rate by Factor (0 < Factor < 1).
	Bandwidth
	// Partition places the node in partition group Group; nodes in
	// different nonzero groups cannot exchange frames.
	Partition
	// SlowIO adds Extra service latency to every BlueStore transaction.
	SlowIO
	// WriteError fails each BlueStore transaction with probability Prob.
	WriteError
	// BitRot flips payload bytes of up to Count stored objects on the
	// node, skipping objects for which the node's OSD is the PG primary —
	// so client reads stay clean while scrub must detect the damage on
	// the replica.
	BitRot
	// DMAError fails each DMA transfer with probability Prob.
	DMAError
	// CommStall adds Extra latency to every CommChannel negotiation.
	CommStall
	// OSDCrash fails the OSD for Duration, then restarts it; the daemon
	// announces its boot to the monitor, which marks it back up.
	OSDCrash
)

var kindNames = map[Kind]string{
	Drop: "drop", Latency: "latency", Bandwidth: "bandwidth",
	Partition: "partition", SlowIO: "slow_io", WriteError: "write_error",
	BitRot: "bit_rot", DMAError: "dma_error", CommStall: "comm_stall",
	OSDCrash: "osd_crash",
}

func (k Kind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Event is one timed fault. At is the virtual-time offset from Run;
// Duration is the fault window (faults with a window revert when it closes;
// zero makes degradations permanent for the rest of the run). The remaining
// fields parameterize the individual kinds, as documented on the constants.
type Event struct {
	At       sim.Duration
	Duration sim.Duration
	Kind     Kind
	Node     string
	OSD      int32
	Prob     float64
	Factor   float64
	Extra    sim.Duration
	Group    int
	Count    int
}

// Plan is a named, ordered fault schedule.
type Plan struct {
	Name   string
	Events []Event
}

// Add appends an event and returns the plan for chaining.
func (p *Plan) Add(e Event) *Plan {
	p.Events = append(p.Events, e)
	return p
}

// nodeScoped lists the kinds that act on a named node (everything except
// OSDCrash, which targets Event.OSD).
func nodeScoped(k Kind) bool { return k != OSDCrash }

// Validate checks the plan's structural invariants before anything is
// scheduled: event times and windows must not be negative, kinds must be
// known, node-scoped events need a target name, and each kind's parameters
// must be in range. A nil error means the plan is schedulable on any
// deployment (whether a given fault then binds to a live target is a
// per-deployment question — see Injector.Run).
func (p Plan) Validate() error {
	for i, ev := range p.Events {
		fail := func(format string, args ...any) error {
			return fmt.Errorf("plan %q event %d (%s): %s",
				p.Name, i, ev.Kind, fmt.Sprintf(format, args...))
		}
		if _, known := kindNames[ev.Kind]; !known {
			return fmt.Errorf("plan %q event %d: unknown fault kind %d",
				p.Name, i, int(ev.Kind))
		}
		if ev.At < 0 {
			return fail("negative start offset %v", ev.At)
		}
		if ev.Duration < 0 {
			return fail("negative window %v", ev.Duration)
		}
		if nodeScoped(ev.Kind) && ev.Node == "" {
			return fail("missing target node")
		}
		switch ev.Kind {
		case Drop, WriteError, DMAError:
			if ev.Prob < 0 || ev.Prob > 1 {
				return fail("probability %v outside [0, 1]", ev.Prob)
			}
		case Bandwidth:
			if ev.Factor <= 0 || ev.Factor > 1 {
				return fail("bandwidth factor %v outside (0, 1]", ev.Factor)
			}
		case Latency, SlowIO, CommStall:
			if ev.Extra <= 0 {
				return fail("requires a positive Extra latency, got %v", ev.Extra)
			}
		case Partition:
			if ev.Group < 0 {
				return fail("negative partition group %d", ev.Group)
			}
		case BitRot:
			if ev.Count < 0 {
				return fail("negative object count %d", ev.Count)
			}
		case OSDCrash:
			if ev.OSD < 0 {
				return fail("negative OSD id %d", ev.OSD)
			}
			if ev.Duration == 0 {
				return fail("requires a restart window (zero Duration would crash forever)")
			}
		}
	}
	return nil
}

// Targets binds a plan's symbolic names to live simulation objects. Any nil
// or missing target simply makes the corresponding fault kinds no-ops (a
// Baseline cluster has no DMA engines, for example).
type Targets struct {
	Fabric *sim.Fabric
	// Stores maps fabric node name -> that node's BlueStore.
	Stores map[string]*bluestore.Store
	// StoreOSD maps fabric node name -> the OSD id resident on it (used by
	// BitRot to avoid corrupting primary copies).
	StoreOSD map[string]int32
	OSDs     map[int32]*osd.OSD
	Mon      *mon.Monitor
	// Engines maps node name -> that node's DMA engines (both directions).
	Engines map[string][]*doca.Engine
	// Channels maps node name -> that node's CommChannel.
	Channels map[string]*doca.CommChannel
}

// Injector replays fault plans against a target set.
type Injector struct {
	env      *sim.Env
	t        Targets
	counters *telemetry.Counters
}

// New creates an injector for the given environment and targets.
func New(env *sim.Env, t Targets) *Injector {
	return &Injector{env: env, t: t, counters: telemetry.NewCounters()}
}

// Counters returns the injection ledger: "inject_<kind>" counts one per
// applied event, "bit_rot_objects" counts corrupted objects.
func (in *Injector) Counters() *telemetry.Counters { return in.counters }

// Run validates plan and schedules every event relative to the current
// virtual time. Each event runs on its own daemon process: it sleeps until
// Event.At, applies the fault, and — for windowed faults — sleeps
// Event.Duration and reverts it.
//
// Beyond Plan.Validate's structural checks, Run rejects events that name a
// target the bound deployment should have but does not: an unknown fabric
// node, or a node absent from a populated Stores/Engines/Channels/OSDs map.
// Events aimed at a subsystem this deployment lacks entirely (DMAError on a
// Baseline cluster, whose Engines map is empty) stay benign no-ops, so one
// plan still drives both deployments identically. Nothing is scheduled on
// error.
func (in *Injector) Run(plan Plan) error {
	if err := plan.Validate(); err != nil {
		return err
	}
	for i, ev := range plan.Events {
		fail := func(format string, args ...any) error {
			return fmt.Errorf("plan %q event %d (%s): %s",
				plan.Name, i, ev.Kind, fmt.Sprintf(format, args...))
		}
		switch ev.Kind {
		case Drop, Latency, Bandwidth, Partition:
			if in.t.Fabric != nil && !in.t.Fabric.HasNode(ev.Node) {
				return fail("unknown fabric node %q", ev.Node)
			}
		case SlowIO, WriteError, BitRot:
			if len(in.t.Stores) > 0 && in.t.Stores[ev.Node] == nil {
				return fail("no store on node %q", ev.Node)
			}
		case DMAError:
			if len(in.t.Engines) > 0 && len(in.t.Engines[ev.Node]) == 0 {
				return fail("no DMA engines on node %q", ev.Node)
			}
		case CommStall:
			if len(in.t.Channels) > 0 && in.t.Channels[ev.Node] == nil {
				return fail("no comm channel on node %q", ev.Node)
			}
		case OSDCrash:
			if len(in.t.OSDs) > 0 && in.t.OSDs[ev.OSD] == nil {
				return fail("unknown OSD %d", ev.OSD)
			}
		}
	}
	for i := range plan.Events {
		ev := plan.Events[i]
		name := fmt.Sprintf("fault:%s/%d:%s", plan.Name, i, ev.Kind)
		in.env.SpawnDaemon(name, func(p *sim.Proc) {
			if ev.At > 0 {
				p.Wait(ev.At)
			}
			in.apply(p, ev)
		})
	}
	return nil
}

func (in *Injector) apply(p *sim.Proc, ev Event) {
	in.counters.Add("inject_"+ev.Kind.String(), 1)
	revert := func() {}
	switch ev.Kind {
	case Drop:
		if in.t.Fabric == nil {
			return
		}
		in.t.Fabric.SetDropProb(ev.Node, ev.Prob)
		revert = func() { in.t.Fabric.SetDropProb(ev.Node, 0) }
	case Latency:
		if in.t.Fabric == nil {
			return
		}
		in.t.Fabric.SetExtraLatency(ev.Node, ev.Extra)
		revert = func() { in.t.Fabric.SetExtraLatency(ev.Node, 0) }
	case Bandwidth:
		if in.t.Fabric == nil {
			return
		}
		in.t.Fabric.SetBandwidthFactor(ev.Node, ev.Factor)
		revert = func() { in.t.Fabric.SetBandwidthFactor(ev.Node, 0) }
	case Partition:
		if in.t.Fabric == nil {
			return
		}
		in.t.Fabric.SetPartitionGroup(ev.Node, ev.Group)
		revert = func() { in.t.Fabric.SetPartitionGroup(ev.Node, 0) }
	case SlowIO:
		st := in.t.Stores[ev.Node]
		if st == nil {
			return
		}
		st.SetSlowIO(ev.Extra)
		revert = func() { st.SetSlowIO(0) }
	case WriteError:
		st := in.t.Stores[ev.Node]
		if st == nil {
			return
		}
		st.SetWriteErrorProb(ev.Prob)
		revert = func() { st.SetWriteErrorProb(0) }
	case BitRot:
		in.bitRot(ev)
		return // instantaneous, nothing to revert
	case DMAError:
		engs := in.t.Engines[ev.Node]
		if len(engs) == 0 {
			return
		}
		for _, e := range engs {
			e.SetFailProb(ev.Prob)
		}
		revert = func() {
			for _, e := range engs {
				e.SetFailProb(0)
			}
		}
	case CommStall:
		cc := in.t.Channels[ev.Node]
		if cc == nil {
			return
		}
		cc.SetStall(ev.Extra)
		revert = func() { cc.SetStall(0) }
	case OSDCrash:
		o := in.t.OSDs[ev.OSD]
		if o == nil {
			return
		}
		o.Fail()
		revert = func() {
			// Recover announces the restart to the monitor (MOSDBoot),
			// which re-ups the daemon if it was marked down. MarkUp here
			// is only a fallback for OSDs with no monitor configured.
			o.Recover()
			if in.t.Mon != nil && !in.t.Mon.Map().IsUp(ev.OSD) {
				in.t.Mon.MarkUp(ev.OSD)
			}
		}
		// A crash with no window would leave the cluster permanently
		// degraded; treat it as crash-and-restart with a minimal outage.
		if ev.Duration <= 0 {
			ev.Duration = sim.Second
		}
	}
	if ev.Duration > 0 {
		p.Wait(ev.Duration)
		revert()
	}
}

// bitRot corrupts up to ev.Count replica-held objects on ev.Node's store.
// Candidates come from the store's sorted object listing, so the picks are
// deterministic; objects whose PG primary is the resident OSD are skipped so
// reads served by the primary remain clean and scrub is what must find the
// damage.
func (in *Injector) bitRot(ev Event) {
	st := in.t.Stores[ev.Node]
	if st == nil {
		return
	}
	count := ev.Count
	if count <= 0 {
		count = 1
	}
	resident, haveOSD := in.t.StoreOSD[ev.Node]
	var o *osd.OSD
	if haveOSD {
		o = in.t.OSDs[resident]
	}
	for _, obj := range st.DataObjects() {
		if count == 0 {
			break
		}
		var pg uint32
		if n, err := fmt.Sscanf(obj.Collection, "pg.%d", &pg); err != nil || n != 1 {
			continue
		}
		if o != nil && o.Map().Primary(pg) == resident {
			continue
		}
		if err := st.CorruptObject(obj.Collection, obj.Object); err == nil {
			in.counters.Add("bit_rot_objects", 1)
			count--
		}
	}
}

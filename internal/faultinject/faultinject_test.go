package faultinject_test

import (
	"fmt"
	"testing"

	"doceph/internal/cluster"
	"doceph/internal/faultinject"
	"doceph/internal/sim"
	"doceph/internal/wire"
)

func runBody(t *testing.T, cl *cluster.Cluster, horizon sim.Duration, body func(p *sim.Proc)) {
	t.Helper()
	done := false
	cl.Env.Spawn("test-body", func(p *sim.Proc) {
		p.SetThread(sim.NewThread("tester", "client"))
		body(p)
		done = true
	})
	err := cl.Env.RunUntil(sim.Time(horizon))
	if !done {
		t.Fatalf("body did not finish: %v", err)
	}
	cl.Shutdown()
}

// TestScrubDetectsInjectedBitRot is the end-to-end self-healing check: the
// fault layer flips bytes on a replica copy, a deep scrub must notice the
// CRC divergence and repair it, and client reads must never see the damage.
func TestScrubDetectsInjectedBitRot(t *testing.T) {
	cl := cluster.New(cluster.Config{Mode: cluster.Baseline, WireEncode: true})
	inj := faultinject.New(cl.Env, cl.FaultTargets())
	if err := inj.Run(faultinject.Plan{Name: "rot", Events: []faultinject.Event{
		{At: 5 * sim.Second, Kind: faultinject.BitRot, Node: "node1", Count: 3},
	}}); err != nil {
		t.Fatal(err)
	}

	payload := func(i int) *wire.Bufferlist {
		data := make([]byte, 128<<10)
		for j := range data {
			data[j] = byte(i*131 + j*17)
		}
		return wire.FromBytes(data)
	}
	const objects = 12
	runBody(t, cl, 10*60*sim.Second, func(p *sim.Proc) {
		for i := 0; i < objects; i++ {
			if err := cl.Client.Write(p, fmt.Sprintf("obj-%d", i), payload(i)); err != nil {
				t.Fatal(err)
			}
		}
		p.Wait(6 * sim.Second) // past the bit-rot event
		if got := inj.Counters().Get("bit_rot_objects"); got == 0 {
			t.Fatal("bit-rot event corrupted nothing")
		}
		for _, n := range cl.Nodes {
			n.OSD.ScrubNow()
		}
		p.Wait(30 * sim.Second) // let the scrub pass and repairs finish
		var errs, repairs int64
		for _, n := range cl.Nodes {
			errs += n.OSD.Stats().ScrubErrors
			repairs += n.OSD.Stats().ScrubRepairs
		}
		if errs == 0 {
			t.Fatal("scrub missed the injected corruption")
		}
		if repairs == 0 {
			t.Fatal("scrub reported errors but repaired nothing")
		}
		// Client reads stay clean throughout (corruption targeted replicas).
		for i := 0; i < objects; i++ {
			got, err := cl.Client.Read(p, fmt.Sprintf("obj-%d", i), 0, 0)
			if err != nil {
				t.Fatal(err)
			}
			if got.CRC32C() != payload(i).CRC32C() {
				t.Fatalf("obj-%d read corrupted", i)
			}
		}
	})
}

// TestOSDCrashRecoverPlan drives a crash/restart through the plan and checks
// the data plane rides it out: writes keep succeeding (degraded, then
// recovered) and the monitor publishes the down/up transitions.
func TestOSDCrashRecoverPlan(t *testing.T) {
	cl := cluster.New(cluster.Config{Mode: cluster.Baseline})
	inj := faultinject.New(cl.Env, cl.FaultTargets())
	if err := inj.Run(faultinject.Plan{Name: "crash", Events: []faultinject.Event{
		{At: 2 * sim.Second, Duration: 20 * sim.Second, Kind: faultinject.OSDCrash, OSD: 1},
	}}); err != nil {
		t.Fatal(err)
	}
	runBody(t, cl, 10*60*sim.Second, func(p *sim.Proc) {
		for i := 0; i < 30; i++ {
			if err := cl.Client.Write(p, fmt.Sprintf("o-%d", i), wire.FromBytes(make([]byte, 4<<10))); err != nil {
				t.Fatalf("write %d: %v", i, err)
			}
			p.Wait(2 * sim.Second)
		}
		if !cl.Nodes[1].OSD.Map().IsUp(1) {
			t.Fatal("osd.1 not re-integrated after recovery")
		}
		if cl.Mon.EpochBumps() == 0 {
			t.Fatal("monitor never published the failure")
		}
	})
}

// TestWindowedFaultReverts checks that a windowed network fault clears: the
// NIC drops frames during the window and none after it.
func TestWindowedFaultReverts(t *testing.T) {
	cl := cluster.New(cluster.Config{Mode: cluster.Baseline})
	inj := faultinject.New(cl.Env, cl.FaultTargets())
	if err := inj.Run(faultinject.Plan{Name: "drop", Events: []faultinject.Event{
		{At: sim.Second, Duration: 4 * sim.Second, Kind: faultinject.Drop, Node: "node0", Prob: 1.0},
	}}); err != nil {
		t.Fatal(err)
	}
	runBody(t, cl, 10*60*sim.Second, func(p *sim.Proc) {
		p.Wait(6 * sim.Second) // heartbeats flow through the whole window
		during := cl.Fabric.DroppedFrames()
		if during == 0 {
			t.Fatal("no frames dropped during the fault window")
		}
		// After revert the messenger retries deliver; write must succeed
		// promptly and drop no further frames.
		start := cl.Fabric.DroppedFrames()
		if err := cl.Client.Write(p, "post", wire.FromBytes(make([]byte, 4<<10))); err != nil {
			t.Fatal(err)
		}
		if cl.Fabric.DroppedFrames() != start {
			t.Fatal("frames still dropped after the fault window closed")
		}
	})
}

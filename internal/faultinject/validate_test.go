package faultinject_test

import (
	"strings"
	"testing"

	"doceph/internal/cluster"
	"doceph/internal/faultinject"
	"doceph/internal/sim"
)

// ok is a minimal valid event used as the mutation base of the table.
func okEvent() faultinject.Event {
	return faultinject.Event{
		At: sim.Second, Duration: sim.Second,
		Kind: faultinject.Drop, Node: "node0", Prob: 0.1,
	}
}

func TestPlanValidate(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*faultinject.Event)
		wantErr string // "" = valid
	}{
		{"baseline event valid", func(e *faultinject.Event) {}, ""},
		{"negative start", func(e *faultinject.Event) { e.At = -sim.Second }, "negative start"},
		{"negative window", func(e *faultinject.Event) { e.Duration = -sim.Second }, "negative window"},
		{"permanent degradation allowed", func(e *faultinject.Event) { e.Duration = 0 }, ""},
		{"unknown kind", func(e *faultinject.Event) { e.Kind = faultinject.Kind(99) }, "unknown fault kind"},
		{"missing node", func(e *faultinject.Event) { e.Node = "" }, "missing target node"},
		{"prob above one", func(e *faultinject.Event) { e.Prob = 1.5 }, "outside [0, 1]"},
		{"negative prob", func(e *faultinject.Event) { e.Prob = -0.1 }, "outside [0, 1]"},
		{"write error prob", func(e *faultinject.Event) {
			e.Kind = faultinject.WriteError
			e.Prob = 2
		}, "outside [0, 1]"},
		{"zero bandwidth factor", func(e *faultinject.Event) {
			e.Kind = faultinject.Bandwidth
			e.Factor = 0
		}, "outside (0, 1]"},
		{"bandwidth above one", func(e *faultinject.Event) {
			e.Kind = faultinject.Bandwidth
			e.Factor = 1.2
		}, "outside (0, 1]"},
		{"latency without extra", func(e *faultinject.Event) {
			e.Kind = faultinject.Latency
			e.Extra = 0
		}, "positive Extra"},
		{"slow io negative extra", func(e *faultinject.Event) {
			e.Kind = faultinject.SlowIO
			e.Extra = -sim.Millisecond
		}, "positive Extra"},
		{"comm stall valid", func(e *faultinject.Event) {
			e.Kind = faultinject.CommStall
			e.Extra = sim.Millisecond
		}, ""},
		{"negative partition group", func(e *faultinject.Event) {
			e.Kind = faultinject.Partition
			e.Group = -1
		}, "negative partition group"},
		{"negative bit rot count", func(e *faultinject.Event) {
			e.Kind = faultinject.BitRot
			e.Count = -2
		}, "negative object count"},
		{"crash without window", func(e *faultinject.Event) {
			e.Kind = faultinject.OSDCrash
			e.Node = ""
			e.OSD = 1
			e.Duration = 0
		}, "restart window"},
		{"crash negative osd", func(e *faultinject.Event) {
			e.Kind = faultinject.OSDCrash
			e.Node = ""
			e.OSD = -1
		}, "negative OSD id"},
		{"crash valid", func(e *faultinject.Event) {
			e.Kind = faultinject.OSDCrash
			e.Node = ""
			e.OSD = 0
		}, ""},
	}
	for _, c := range cases {
		ev := okEvent()
		c.mutate(&ev)
		err := (faultinject.Plan{Name: "t", Events: []faultinject.Event{ev}}).Validate()
		if c.wantErr == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", c.name, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("%s: validation passed, want error containing %q", c.name, c.wantErr)
		} else if !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: error %q does not contain %q", c.name, err, c.wantErr)
		}
	}
	// An invalid event anywhere in the list fails the whole plan.
	p := faultinject.Plan{Name: "mixed", Events: []faultinject.Event{
		okEvent(),
		{At: -sim.Second, Kind: faultinject.Drop, Node: "node0"},
	}}
	if err := p.Validate(); err == nil {
		t.Error("plan with one invalid event validated")
	}
	if err := (faultinject.Plan{Name: "empty"}).Validate(); err != nil {
		t.Errorf("empty plan rejected: %v", err)
	}
}

// TestRunRejectsUnknownTargets: a structurally valid plan naming targets the
// deployment should have but does not is refused before anything schedules —
// while a fault aimed at a subsystem the deployment lacks entirely (DPU
// faults on Baseline) stays a benign no-op so one plan drives both modes.
func TestRunRejectsUnknownTargets(t *testing.T) {
	base := cluster.New(cluster.Config{Mode: cluster.Baseline})
	defer base.Shutdown()
	inj := faultinject.New(base.Env, base.FaultTargets())

	reject := func(name string, ev faultinject.Event, want string) {
		t.Helper()
		err := inj.Run(faultinject.Plan{Name: name, Events: []faultinject.Event{ev}})
		if err == nil || !strings.Contains(err.Error(), want) {
			t.Errorf("%s: err = %v, want mention of %q", name, err, want)
		}
	}
	reject("fabric", faultinject.Event{
		Kind: faultinject.Drop, Node: "node99", Prob: 0.5,
	}, "unknown fabric node")
	reject("store", faultinject.Event{
		Kind: faultinject.WriteError, Node: "ghost", Prob: 0.5,
	}, "no store on node")
	reject("osd", faultinject.Event{
		Kind: faultinject.OSDCrash, OSD: 42, Duration: sim.Second,
	}, "unknown OSD")

	// Cross-mode no-op: Baseline has no DMA engines or comm channels, so
	// DPU faults schedule (and do nothing) rather than erroring.
	err := inj.Run(faultinject.Plan{Name: "dpu-on-baseline", Events: []faultinject.Event{
		{Kind: faultinject.DMAError, Node: "node0", Prob: 1, Duration: sim.Second},
		{Kind: faultinject.CommStall, Node: "node0", Extra: sim.Millisecond, Duration: sim.Second},
	}})
	if err != nil {
		t.Fatalf("DPU fault on Baseline rejected: %v", err)
	}

	// On DoCeph those same subsystems exist, so a bogus node name errors.
	dc := cluster.New(cluster.Config{Mode: cluster.DoCeph})
	defer dc.Shutdown()
	dinj := faultinject.New(dc.Env, dc.FaultTargets())
	err = dinj.Run(faultinject.Plan{Name: "dpu-ghost", Events: []faultinject.Event{
		{Kind: faultinject.DMAError, Node: "ghost", Prob: 1, Duration: sim.Second},
	}})
	if err == nil || !strings.Contains(err.Error(), "no DMA engines") {
		t.Fatalf("unknown engine node: err = %v", err)
	}
	err = dinj.Run(faultinject.Plan{Name: "dpu-ok", Events: []faultinject.Event{
		{Kind: faultinject.DMAError, Node: "node0", Prob: 1, Duration: sim.Second},
	}})
	if err != nil {
		t.Fatalf("valid DoCeph DMA fault rejected: %v", err)
	}
}

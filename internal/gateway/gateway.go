// Package gateway implements an RGW-style object gateway over the RADOS
// client: named buckets whose listings live as omap entries on a per-bucket
// index object (exactly how RGW's bucket indexes work), with object data
// stored as ordinary RADOS objects. Together with the striper (RBD) this
// rounds out the paper's §2.1 trio of Ceph interfaces — and gives the
// examples an S3-flavoured workload whose metadata path exercises the
// replicated omap machinery end to end.
package gateway

import (
	"errors"
	"fmt"

	"doceph/internal/rados"
	"doceph/internal/sim"
	"doceph/internal/wire"
)

// Errors returned by the gateway.
var (
	ErrBucketExists   = errors.New("gateway: bucket already exists")
	ErrNoBucket       = errors.New("gateway: bucket not found")
	ErrNoObject       = errors.New("gateway: object not found")
	ErrBucketNotEmpty = errors.New("gateway: bucket not empty")
)

// Gateway is a stateless front end over one RADOS client; all state lives
// in the cluster (index objects + data objects), so any number of gateway
// instances can serve the same buckets.
type Gateway struct {
	client *rados.Client
}

// New returns a gateway over client.
func New(client *rados.Client) *Gateway { return &Gateway{client: client} }

func indexObject(bucket string) string { return "gw.index." + bucket }

func dataObject(bucket, key string) string { return "gw." + bucket + "." + key }

// entry is the bucket-index record for one object.
type entry struct {
	Size uint64
	ETag uint32 // CRC32C of the content, S3-ETag style
}

func (e entry) encode() []byte {
	enc := wire.NewEncoder(12)
	enc.U64(e.Size)
	enc.U32(e.ETag)
	return enc.Bytes()
}

func decodeEntry(b []byte) (entry, error) {
	d := wire.NewDecoder(b)
	e := entry{Size: d.U64(), ETag: d.U32()}
	return e, d.Err()
}

// CreateBucket creates an empty bucket.
func (g *Gateway) CreateBucket(p *sim.Proc, bucket string) error {
	if _, _, err := g.client.Stat(p, indexObject(bucket)); err == nil {
		return ErrBucketExists
	}
	// The index object is created by its first omap access; a marker key
	// distinguishes "bucket exists, empty" from "no bucket".
	if err := g.client.OmapSet(p, indexObject(bucket), ".bucket", nil); err != nil {
		return fmt.Errorf("gateway: creating bucket %q: %w", bucket, err)
	}
	return nil
}

// bucketExists verifies the marker.
func (g *Gateway) bucketExists(p *sim.Proc, bucket string) bool {
	_, err := g.client.OmapGet(p, indexObject(bucket), ".bucket")
	return err == nil
}

// Put stores data under bucket/key and updates the bucket index.
func (g *Gateway) Put(p *sim.Proc, bucket, key string, data *wire.Bufferlist) error {
	if !g.bucketExists(p, bucket) {
		return ErrNoBucket
	}
	if err := g.client.Write(p, dataObject(bucket, key), data); err != nil {
		return fmt.Errorf("gateway: put %s/%s: %w", bucket, key, err)
	}
	e := entry{Size: uint64(data.Length()), ETag: data.CRC32C()}
	if err := g.client.OmapSet(p, indexObject(bucket), key, e.encode()); err != nil {
		return fmt.Errorf("gateway: indexing %s/%s: %w", bucket, key, err)
	}
	return nil
}

// Get returns the content of bucket/key.
func (g *Gateway) Get(p *sim.Proc, bucket, key string) (*wire.Bufferlist, error) {
	if !g.bucketExists(p, bucket) {
		return nil, ErrNoBucket
	}
	bl, err := g.client.Read(p, dataObject(bucket, key), 0, 0)
	if errors.Is(err, rados.ErrNotFound) {
		return nil, ErrNoObject
	}
	return bl, err
}

// Head returns an object's index entry without reading its data.
func (g *Gateway) Head(p *sim.Proc, bucket, key string) (size uint64, etag uint32, err error) {
	v, gerr := g.client.OmapGet(p, indexObject(bucket), key)
	if gerr != nil {
		if !g.bucketExists(p, bucket) {
			return 0, 0, ErrNoBucket
		}
		return 0, 0, ErrNoObject
	}
	e, derr := decodeEntry(v)
	if derr != nil {
		return 0, 0, derr
	}
	return e.Size, e.ETag, nil
}

// List returns the bucket's object keys in sorted order.
func (g *Gateway) List(p *sim.Proc, bucket string) ([]string, error) {
	keys, err := g.client.OmapKeys(p, indexObject(bucket))
	if err != nil {
		return nil, ErrNoBucket
	}
	out := keys[:0]
	for _, k := range keys {
		if k != ".bucket" {
			out = append(out, k)
		}
	}
	return out, nil
}

// Delete removes bucket/key and its index entry.
func (g *Gateway) Delete(p *sim.Proc, bucket, key string) error {
	if _, _, err := g.Head(p, bucket, key); err != nil {
		return err
	}
	if err := g.client.OmapRm(p, indexObject(bucket), key); err != nil {
		return err
	}
	if err := g.client.Delete(p, dataObject(bucket, key)); err != nil &&
		!errors.Is(err, rados.ErrNotFound) {
		return err
	}
	return nil
}

// DeleteBucket removes an empty bucket.
func (g *Gateway) DeleteBucket(p *sim.Proc, bucket string) error {
	keys, err := g.List(p, bucket)
	if err != nil {
		return err
	}
	if len(keys) > 0 {
		return ErrBucketNotEmpty
	}
	return g.client.Delete(p, indexObject(bucket))
}

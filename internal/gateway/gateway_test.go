package gateway

import (
	"errors"
	"fmt"
	"testing"

	"doceph/internal/cluster"
	"doceph/internal/sim"
	"doceph/internal/wire"
)

func runGW(t *testing.T, mode cluster.Mode, body func(p *sim.Proc, g *Gateway, cl *cluster.Cluster)) {
	t.Helper()
	cl := cluster.New(cluster.Config{Mode: mode})
	g := New(cl.Client)
	done := false
	cl.Env.Spawn("gw-test", func(p *sim.Proc) {
		p.SetThread(sim.NewThread("gw-test", "client"))
		body(p, g, cl)
		done = true
	})
	err := cl.Env.RunUntil(sim.Time(10 * 60 * sim.Second))
	if !done {
		t.Fatalf("body did not finish: %v", err)
	}
	cl.Shutdown()
}

func doc(n int, seed byte) *wire.Bufferlist {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(int(seed)*7 + i*13)
	}
	return wire.FromBytes(b)
}

func TestBucketLifecycle(t *testing.T) {
	runGW(t, cluster.DoCeph, func(p *sim.Proc, g *Gateway, cl *cluster.Cluster) {
		if err := g.CreateBucket(p, "photos"); err != nil {
			t.Fatal(err)
		}
		if err := g.CreateBucket(p, "photos"); !errors.Is(err, ErrBucketExists) {
			t.Fatalf("duplicate create: %v", err)
		}
		keys, err := g.List(p, "photos")
		if err != nil || len(keys) != 0 {
			t.Fatalf("empty list=%v err=%v", keys, err)
		}
		if _, err := g.List(p, "ghost"); !errors.Is(err, ErrNoBucket) {
			t.Fatalf("list ghost: %v", err)
		}
		if err := g.DeleteBucket(p, "photos"); err != nil {
			t.Fatal(err)
		}
		if _, err := g.List(p, "photos"); !errors.Is(err, ErrNoBucket) {
			t.Fatalf("list after delete: %v", err)
		}
	})
}

func TestPutGetHeadListDelete(t *testing.T) {
	runGW(t, cluster.DoCeph, func(p *sim.Proc, g *Gateway, cl *cluster.Cluster) {
		if err := g.CreateBucket(p, "b"); err != nil {
			t.Fatal(err)
		}
		contents := map[string]*wire.Bufferlist{
			"zebra.jpg":  doc(300_000, 1),
			"apple.txt":  doc(1_000, 2),
			"mango/1.md": doc(50_000, 3),
		}
		for k, v := range contents {
			if err := g.Put(p, "b", k, v); err != nil {
				t.Fatalf("put %s: %v", k, err)
			}
		}
		keys, err := g.List(p, "b")
		if err != nil {
			t.Fatal(err)
		}
		want := []string{"apple.txt", "mango/1.md", "zebra.jpg"}
		if len(keys) != 3 {
			t.Fatalf("keys=%v", keys)
		}
		for i := range want {
			if keys[i] != want[i] {
				t.Fatalf("keys=%v want sorted %v", keys, want)
			}
		}
		for k, v := range contents {
			got, err := g.Get(p, "b", k)
			if err != nil || got.CRC32C() != v.CRC32C() {
				t.Fatalf("get %s: %v", k, err)
			}
			size, etag, err := g.Head(p, "b", k)
			if err != nil || size != uint64(v.Length()) || etag != v.CRC32C() {
				t.Fatalf("head %s: size=%d etag=%08x err=%v", k, size, etag, err)
			}
		}
		if err := g.Delete(p, "b", "apple.txt"); err != nil {
			t.Fatal(err)
		}
		if _, err := g.Get(p, "b", "apple.txt"); !errors.Is(err, ErrNoObject) {
			t.Fatalf("get deleted: %v", err)
		}
		if keys, _ := g.List(p, "b"); len(keys) != 2 {
			t.Fatalf("keys after delete=%v", keys)
		}
		if err := g.DeleteBucket(p, "b"); !errors.Is(err, ErrBucketNotEmpty) {
			t.Fatalf("delete non-empty: %v", err)
		}
	})
}

func TestGatewayErrors(t *testing.T) {
	runGW(t, cluster.Baseline, func(p *sim.Proc, g *Gateway, cl *cluster.Cluster) {
		if err := g.Put(p, "nope", "k", doc(10, 1)); !errors.Is(err, ErrNoBucket) {
			t.Fatalf("put: %v", err)
		}
		if _, err := g.Get(p, "nope", "k"); !errors.Is(err, ErrNoBucket) {
			t.Fatalf("get: %v", err)
		}
		if err := g.CreateBucket(p, "b"); err != nil {
			t.Fatal(err)
		}
		if _, _, err := g.Head(p, "b", "ghost"); !errors.Is(err, ErrNoObject) {
			t.Fatalf("head: %v", err)
		}
		if err := g.Delete(p, "b", "ghost"); !errors.Is(err, ErrNoObject) {
			t.Fatalf("delete: %v", err)
		}
	})
}

func TestOverwriteUpdatesIndex(t *testing.T) {
	runGW(t, cluster.DoCeph, func(p *sim.Proc, g *Gateway, cl *cluster.Cluster) {
		if err := g.CreateBucket(p, "b"); err != nil {
			t.Fatal(err)
		}
		v1, v2 := doc(1000, 4), doc(2000, 5)
		if err := g.Put(p, "b", "k", v1); err != nil {
			t.Fatal(err)
		}
		if err := g.Put(p, "b", "k", v2); err != nil {
			t.Fatal(err)
		}
		size, etag, err := g.Head(p, "b", "k")
		if err != nil || size != 2000 || etag != v2.CRC32C() {
			t.Fatalf("head after overwrite: size=%d err=%v", size, err)
		}
		got, err := g.Get(p, "b", "k")
		if err != nil || got.CRC32C() != v2.CRC32C() {
			t.Fatalf("get: %v", err)
		}
	})
}

// The bucket index (omap) must be replicated: after the index object's
// primary fails, listings still work against the surviving replica.
func TestIndexSurvivesOSDFailure(t *testing.T) {
	cl := cluster.New(cluster.Config{Mode: cluster.Baseline, StorageNodes: 3})
	g := New(cl.Client)
	done := false
	cl.Env.Spawn("gw-failover", func(p *sim.Proc) {
		p.SetThread(sim.NewThread("gw-failover", "client"))
		if err := g.CreateBucket(p, "durable"); err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < 6; i++ {
			if err := g.Put(p, "durable", fmt.Sprintf("obj-%d", i), doc(20_000, byte(i))); err != nil {
				t.Error(err)
				return
			}
		}
		// Kill the index object's primary.
		idx := cl.Client.Map().PGForObject("gw.index.durable")
		victim := cl.Client.Map().Primary(idx)
		cl.Nodes[victim].OSD.Fail()
		p.Wait(15 * sim.Second)
		keys, err := g.List(p, "durable")
		if err != nil || len(keys) != 6 {
			t.Errorf("list after failover: keys=%v err=%v", keys, err)
			return
		}
		got, err := g.Get(p, "durable", "obj-3")
		if err != nil || got.CRC32C() != doc(20_000, 3).CRC32C() {
			t.Errorf("get after failover: %v", err)
			return
		}
		done = true
	})
	err := cl.Env.RunUntil(sim.Time(10 * 60 * sim.Second))
	if !done {
		t.Fatalf("body did not finish: %v", err)
	}
	cl.Shutdown()
}

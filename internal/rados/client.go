// Package rados implements the client library of the mini-RADOS cluster:
// synchronous object write/read/stat/delete calls that resolve placement via
// the client's OSDMap, talk to the primary OSD through the messenger, and
// transparently refresh + retry when the map changes under them.
package rados

import (
	"errors"
	"fmt"

	"doceph/internal/cephmsg"
	"doceph/internal/messenger"
	"doceph/internal/osdmap"
	"doceph/internal/sim"
	"doceph/internal/telemetry"
	"doceph/internal/trace"
	"doceph/internal/wire"
)

// ThreadCat is the accounting category for client threads (on the client
// node's CPU, which the paper does not measure).
const ThreadCat = "client"

// osdNames caches target entity names so the per-op send path stays
// allocation-free (mirrors osd.Name, which we cannot import without a test
// package cycle).
var osdNames = func() [256]string {
	var a [256]string
	for i := range a {
		a[i] = fmt.Sprintf("osd.%d", i)
	}
	return a
}()

func osdName(id int32) string {
	if id >= 0 && int(id) < len(osdNames) {
		return osdNames[id]
	}
	return fmt.Sprintf("osd.%d", id)
}

// Errors returned by client calls.
var (
	ErrNotFound = errors.New("rados: object not found")
	ErrIO       = errors.New("rados: backend I/O error")
	ErrTimeout  = errors.New("rados: request timed out")
	ErrNoOSD    = errors.New("rados: no primary OSD for object")
	ErrNoQuorum = errors.New("rados: PG below min_size, write quorum unavailable")
)

// Config carries client tunables.
type Config struct {
	// OpTimeout bounds one attempt before the client resends (possibly
	// against a fresher map).
	OpTimeout sim.Duration
	// MaxRetries bounds retries on timeout or wrong-primary redirects, so
	// every op resolves (success or typed error) within a virtual-time
	// deadline of roughly (OpTimeout+backoff) * (MaxRetries+1).
	MaxRetries int
	// RetryBackoff is the initial delay between attempts; each retry
	// doubles it up to RetryBackoffMax (capped exponential backoff).
	RetryBackoff    sim.Duration
	RetryBackoffMax sim.Duration
	// Monitor is the entity asked for an on-demand map refresh after a
	// timeout or redirect ("" disables refresh requests).
	Monitor string
	// PrepCycles is the client-side cost per op (librados encode, CRC).
	PrepCycles int64
	// BalanceReads spreads reads across the whole acting set instead of
	// pinning them to the PG primary (Ceph's CEPH_OSD_FLAG_BALANCE_READS).
	// The replica is chosen by a deterministic hash of the object name
	// over the up acting members; retries fall back to the primary. Off by
	// default: primary reads are the consistency-conservative choice and
	// keep existing goldens unchanged.
	BalanceReads bool
}

// DefaultConfig returns client defaults.
func DefaultConfig() Config {
	return Config{
		OpTimeout:       30 * sim.Second,
		MaxRetries:      5,
		RetryBackoff:    100 * sim.Millisecond,
		RetryBackoffMax: 5 * sim.Second,
		PrepCycles:      15_000,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.OpTimeout == 0 {
		c.OpTimeout = d.OpTimeout
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = d.MaxRetries
	}
	if c.RetryBackoff == 0 {
		c.RetryBackoff = d.RetryBackoff
	}
	if c.RetryBackoffMax == 0 {
		c.RetryBackoffMax = d.RetryBackoffMax
	}
	if c.PrepCycles == 0 {
		c.PrepCycles = d.PrepCycles
	}
	return c
}

// Stats counts the client's robustness events; the same values feed the
// telemetry counter set returned by Telemetry.
type Stats struct {
	Ops          int64
	Retries      int64
	Timeouts     int64
	Redirects    int64
	StaleReplies int64
	MapRefreshes int64
	// NoQuorumWaits counts ResNoQuorum replies (PG below min_size): the
	// client backs off and retries, waiting for recovery to restore quorum.
	NoQuorumWaits int64
	// BalancedReads counts reads dispatched to a non-primary replica
	// (BalanceReads enabled and the hash picked a secondary).
	BalancedReads int64
}

// Client is one RADOS client instance bound to a messenger entity.
type Client struct {
	env  *sim.Env
	cpu  *sim.CPU
	msgr *messenger.Messenger
	cfg  Config
	th   *sim.Thread

	curMap   *osdmap.Map
	nextTid  uint64
	inflight map[uint64]*call

	stats    Stats
	counters *telemetry.Counters
	tr       *trace.Tracer
}

type call struct {
	done  *sim.Event
	reply *cephmsg.MOSDOpReply
}

// New creates a client using msgr, charging client-side CPU to cpu, with an
// initial cluster map m (kept fresh via MOSDMap broadcasts).
func New(env *sim.Env, cpu *sim.CPU, msgr *messenger.Messenger,
	m *osdmap.Map, cfg Config) *Client {
	c := &Client{
		env: env, cpu: cpu, msgr: msgr, cfg: cfg.withDefaults(),
		th:       sim.NewThread(msgr.Name(), ThreadCat),
		curMap:   m,
		inflight: make(map[uint64]*call),
		counters: telemetry.NewCounters(),
	}
	msgr.SetDispatcher(c.dispatch)
	return c
}

// SetTracer enables op tracing (nil disables it; the hooks are
// nil-receiver safe).
func (c *Client) SetTracer(tr *trace.Tracer) { c.tr = tr }

// Map returns the client's current cluster map.
func (c *Client) Map() *osdmap.Map { return c.curMap }

// Stats returns a copy of the robustness counters.
func (c *Client) Stats() Stats { return c.stats }

// Telemetry returns the client's counter set (stale_replies, op_retries,
// op_timeouts, redirects, map_refreshes, no_quorum_waits).
func (c *Client) Telemetry() *telemetry.Counters { return c.counters }

func (c *Client) dispatch(p *sim.Proc, src string, m cephmsg.Message) {
	switch msg := m.(type) {
	case *cephmsg.MOSDOpReply:
		call, ok := c.inflight[msg.Tid]
		if !ok {
			// A reply for an unknown or stale tid: the op already
			// completed (or gave up) via another attempt. Account for it
			// instead of dropping it silently — stale replies are the
			// visible residue of timeout+resend under faults.
			c.stats.StaleReplies++
			c.counters.Add("stale_replies", 1)
			return
		}
		call.reply = msg
		call.done.Fire()
		delete(c.inflight, msg.Tid)
	case *cephmsg.MOSDMap:
		c.applyMap(msg)
	}
}

// refreshMap asks the monitor for a newer map than the one we hold; the
// answer arrives through the regular MOSDMap dispatch path.
func (c *Client) refreshMap() {
	if c.cfg.Monitor == "" {
		return
	}
	c.stats.MapRefreshes++
	c.counters.Add("map_refreshes", 1)
	c.msgr.Send(c.cfg.Monitor, &cephmsg.MGetMap{Epoch: c.curMap.Epoch})
}

func (c *Client) applyMap(m *cephmsg.MOSDMap) {
	if m.Epoch <= c.curMap.Epoch {
		return
	}
	next := c.curMap.Next()
	next.Epoch = m.Epoch
	up := make(map[int32]bool, len(m.Up))
	for _, id := range m.Up {
		up[id] = true
	}
	for _, dev := range next.Crush.Devices() {
		id := int32(dev)
		if up[id] {
			next.MarkUp(id)
		} else {
			next.MarkDown(id)
		}
	}
	c.curMap = next
}

// do sends one op to the current primary and waits for the reply, resending
// on timeouts and redirects with capped exponential backoff. The tid is
// assigned once per op, so resends are idempotent: whichever attempt's reply
// arrives first completes the op, and later duplicates are counted as stale.
// Every op resolves within a bounded virtual-time deadline — success or a
// typed error (ErrTimeout, ErrNoOSD), never a hang.
func (c *Client) do(p *sim.Proc, op *cephmsg.MOSDOp) (*cephmsg.MOSDOpReply, error) {
	c.stats.Ops++
	c.nextTid++
	op.Tid = c.nextTid
	op.Src = c.msgr.Name()
	defer delete(c.inflight, op.Tid)
	// Root span of the operation: submit through final reply (covering
	// retries). Downstream stages parent themselves to it via op.TraceCtx.
	sp := c.tr.Start(0, op.Tid, trace.StageOp, op.Object)
	op.TraceCtx = uint64(sp)
	if op.Data != nil {
		c.tr.AddBytes(sp, int64(op.Data.Length()))
	}
	defer c.tr.Finish(sp)
	backoff := c.cfg.RetryBackoff
	wait := func() {
		p.Wait(backoff)
		if backoff *= 2; backoff > c.cfg.RetryBackoffMax {
			backoff = c.cfg.RetryBackoffMax
		}
	}
	sawNoOSD := false
	sawNoQuorum := false
	for attempt := 0; attempt <= c.cfg.MaxRetries; attempt++ {
		if attempt > 0 {
			c.stats.Retries++
			c.counters.Add("op_retries", 1)
		}
		pg := c.curMap.PGForObject(op.Object)
		primary := c.curMap.Primary(pg)
		if primary < 0 {
			// The whole acting set is down. Ask for a fresher map and
			// back off instead of failing outright — the monitor may be
			// about to re-integrate a recovered OSD.
			sawNoOSD = true
			c.refreshMap()
			wait()
			continue
		}
		sawNoOSD = false
		target := primary
		op.Flags &^= cephmsg.FlagBalanceReads
		if c.cfg.BalanceReads && op.Op == cephmsg.OpRead && attempt == 0 {
			// First attempt only: retries fall back to the primary, so a
			// down or lagging replica costs one timeout, never the op.
			if t := c.balancedTarget(pg, op.Object); t >= 0 {
				target = t
				op.Flags |= cephmsg.FlagBalanceReads
				if target != primary {
					c.stats.BalancedReads++
					c.counters.Add("balanced_reads", 1)
				}
			}
		}
		c.tr.AddCPU(sp, c.cpu.Name(), c.cpu.Exec(p, c.th, c.cfg.PrepCycles))
		op.Epoch = c.curMap.Epoch
		call := &call{done: sim.NewEvent(c.env)}
		c.inflight[op.Tid] = call
		c.msgr.Send(osdName(target), op)
		if !call.done.WaitTimeout(p, c.cfg.OpTimeout) {
			c.stats.Timeouts++
			c.counters.Add("op_timeouts", 1)
			c.refreshMap()
			wait()
			continue
		}
		if call.reply.Result == cephmsg.ResNotPrimary {
			c.stats.Redirects++
			c.counters.Add("redirects", 1)
			c.refreshMap()
			wait()
			continue
		}
		if call.reply.Result == cephmsg.ResNoQuorum {
			// The PG is below min_size: real Ceph blocks such writes until
			// the acting set regrows. Back off and retry against a fresher
			// map; surface a typed error only once retries exhaust.
			c.stats.NoQuorumWaits++
			c.counters.Add("no_quorum_waits", 1)
			sawNoQuorum = true
			c.refreshMap()
			wait()
			continue
		}
		return call.reply, nil
	}
	if sawNoQuorum {
		return nil, ErrNoQuorum
	}
	if sawNoOSD {
		return nil, ErrNoOSD
	}
	return nil, ErrTimeout
}

// balancedTarget picks the acting-set member a flagged read goes to: a
// deterministic hash of the object name over the up acting members, so the
// same object always reads from the same replica (cache-friendly) and the
// load spreads across the set object-by-object. Returns -1 when no acting
// member is up.
func (c *Client) balancedTarget(pg uint32, object string) int32 {
	acting := c.curMap.ActingSet(pg)
	up := make([]int32, 0, len(acting))
	for _, id := range acting {
		if c.curMap.IsUp(id) {
			up = append(up, id)
		}
	}
	if len(up) == 0 {
		return -1
	}
	// Decorrelate from PGForObject's fnv%PGCount with an avalanche mix.
	h := fnv64(object)
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return up[h%uint64(len(up))]
}

func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

func resultErr(r int32) error {
	switch r {
	case cephmsg.ResOK:
		return nil
	case cephmsg.ResNotFound:
		return ErrNotFound
	default:
		return ErrIO
	}
}

// Write stores data as the full content of object at offset 0.
func (c *Client) Write(p *sim.Proc, object string, data *wire.Bufferlist) error {
	return c.WriteAt(p, object, 0, data)
}

// WriteAt stores data at the given object offset.
func (c *Client) WriteAt(p *sim.Proc, object string, off uint64, data *wire.Bufferlist) error {
	reply, err := c.do(p, &cephmsg.MOSDOp{
		Pool: "rbd", Object: object, Op: cephmsg.OpWrite,
		Offset: off, Length: uint64(data.Length()), Data: data,
	})
	if err != nil {
		return err
	}
	return resultErr(reply.Result)
}

// Read returns length bytes at offset off of object (length 0 = to EOF).
func (c *Client) Read(p *sim.Proc, object string, off, length uint64) (*wire.Bufferlist, error) {
	reply, err := c.do(p, &cephmsg.MOSDOp{
		Pool: "rbd", Object: object, Op: cephmsg.OpRead, Offset: off, Length: length,
	})
	if err != nil {
		return nil, err
	}
	if err := resultErr(reply.Result); err != nil {
		return nil, err
	}
	return reply.Data, nil
}

// Stat returns object size and version.
func (c *Client) Stat(p *sim.Proc, object string) (size, version uint64, err error) {
	reply, err := c.do(p, &cephmsg.MOSDOp{Pool: "rbd", Object: object, Op: cephmsg.OpStat})
	if err != nil {
		return 0, 0, err
	}
	if err := resultErr(reply.Result); err != nil {
		return 0, 0, err
	}
	return reply.Size, reply.Version, nil
}

// Delete removes object.
func (c *Client) Delete(p *sim.Proc, object string) error {
	reply, err := c.do(p, &cephmsg.MOSDOp{Pool: "rbd", Object: object, Op: cephmsg.OpDelete})
	if err != nil {
		return err
	}
	return resultErr(reply.Result)
}

// Completion tracks an asynchronous operation (librados' aio_* family).
// Wait blocks until the operation finishes and returns its error; Data
// holds the payload of a completed read.
type Completion struct {
	done *sim.Event
	err  error
	data *wire.Bufferlist
}

// Wait blocks p until the operation completes.
func (c *Completion) Wait(p *sim.Proc) error {
	c.done.Wait(p)
	return c.err
}

// Done reports completion without blocking.
func (c *Completion) Done() bool { return c.done.Fired() }

// Data returns a completed read's payload (nil for writes or errors).
func (c *Completion) Data() *wire.Bufferlist { return c.data }

// aio runs op in its own simulated thread and fires the completion.
func (c *Client) aio(name string, op func(p *sim.Proc) (*wire.Bufferlist, error)) *Completion {
	comp := &Completion{done: sim.NewEvent(c.env)}
	c.env.Spawn(name, func(p *sim.Proc) {
		p.SetThread(sim.NewThread(name, ThreadCat))
		comp.data, comp.err = op(p)
		comp.done.Fire()
	})
	return comp
}

// AioWrite starts an asynchronous full-object write. The caller must not
// mutate data until the completion fires.
func (c *Client) AioWrite(object string, data *wire.Bufferlist) *Completion {
	return c.aio("aio-write:"+object, func(p *sim.Proc) (*wire.Bufferlist, error) {
		return nil, c.Write(p, object, data)
	})
}

// AioRead starts an asynchronous read (length 0 = whole object).
func (c *Client) AioRead(object string, off, length uint64) *Completion {
	return c.aio("aio-read:"+object, func(p *sim.Proc) (*wire.Bufferlist, error) {
		return c.Read(p, object, off, length)
	})
}

// OmapSet sets one key of object's omap, replicated with write-through
// durability (librados rados_omap_set).
func (c *Client) OmapSet(p *sim.Proc, object, key string, value []byte) error {
	reply, err := c.do(p, &cephmsg.MOSDOp{Pool: "rbd", Object: object,
		Op: cephmsg.OpOmapSet, Key: key, Data: wire.FromBytes(value)})
	if err != nil {
		return err
	}
	return resultErr(reply.Result)
}

// OmapRm removes one key of object's omap.
func (c *Client) OmapRm(p *sim.Proc, object, key string) error {
	reply, err := c.do(p, &cephmsg.MOSDOp{Pool: "rbd", Object: object,
		Op: cephmsg.OpOmapRm, Key: key})
	if err != nil {
		return err
	}
	return resultErr(reply.Result)
}

// OmapGet returns the value of one omap key of object.
func (c *Client) OmapGet(p *sim.Proc, object, key string) ([]byte, error) {
	reply, err := c.do(p, &cephmsg.MOSDOp{Pool: "rbd", Object: object,
		Op: cephmsg.OpOmapGet, Key: key})
	if err != nil {
		return nil, err
	}
	if err := resultErr(reply.Result); err != nil {
		return nil, err
	}
	return reply.Data.Bytes(), nil
}

// OmapKeys returns object's omap keys in sorted order.
func (c *Client) OmapKeys(p *sim.Proc, object string) ([]string, error) {
	reply, err := c.do(p, &cephmsg.MOSDOp{Pool: "rbd", Object: object,
		Op: cephmsg.OpOmapKeys})
	if err != nil {
		return nil, err
	}
	if err := resultErr(reply.Result); err != nil {
		return nil, err
	}
	d := wire.NewDecoderBL(reply.Data)
	n := d.U32()
	keys := make([]string, 0, n)
	for i := uint32(0); i < n && d.Err() == nil; i++ {
		keys = append(keys, d.String())
	}
	if d.Err() != nil {
		return nil, ErrIO
	}
	return keys, nil
}

package rados

import (
	"errors"
	"testing"

	"doceph/internal/cephmsg"
	"doceph/internal/crush"
	"doceph/internal/messenger"
	"doceph/internal/osdmap"
	"doceph/internal/sim"
	"doceph/internal/wire"
)

// fakeOSD is a scriptable OSD stand-in for exercising the client's retry
// and redirect machinery without a full cluster.
type fakeOSD struct {
	env    *sim.Env
	msgr   *messenger.Messenger
	mode   string // "ok", "drop", "wrongPrimary", "notfound", "dup", "slowOnce"
	served int
}

func (f *fakeOSD) dispatch(p *sim.Proc, src string, m cephmsg.Message) {
	op, ok := m.(*cephmsg.MOSDOp)
	if !ok {
		return
	}
	f.served++
	switch f.mode {
	case "drop":
		return
	case "dup":
		// Reply twice: the second copy must land as a stale reply.
		for i := 0; i < 2; i++ {
			f.msgr.Send(src, &cephmsg.MOSDOpReply{Tid: op.Tid, Object: op.Object,
				Op: op.Op, Result: cephmsg.ResOK, Version: 1, Size: 42})
		}
	case "slowOnce":
		// First request answers late (after the client's timeout+resend);
		// later requests answer immediately.
		reply := &cephmsg.MOSDOpReply{Tid: op.Tid, Object: op.Object,
			Op: op.Op, Result: cephmsg.ResOK, Version: 1, Size: 42}
		if f.served == 1 {
			f.env.Spawn("late-reply", func(lp *sim.Proc) {
				lp.Wait(5 * sim.Second)
				f.msgr.Send(src, reply)
			})
			return
		}
		f.msgr.Send(src, reply)
	case "wrongPrimary":
		f.msgr.Send(src, &cephmsg.MOSDOpReply{Tid: op.Tid, Object: op.Object,
			Op: op.Op, Result: cephmsg.ResNotPrimary})
	case "notfound":
		f.msgr.Send(src, &cephmsg.MOSDOpReply{Tid: op.Tid, Object: op.Object,
			Op: op.Op, Result: cephmsg.ResNotFound})
	default:
		reply := &cephmsg.MOSDOpReply{Tid: op.Tid, Object: op.Object,
			Op: op.Op, Result: cephmsg.ResOK, Version: 1, Size: 42}
		if op.Op == cephmsg.OpRead {
			reply.Data = wire.FromBytes([]byte("fake-object-content"))
		}
		f.msgr.Send(src, reply)
	}
}

type clientRig struct {
	env    *sim.Env
	client *Client
	osds   []*fakeOSD
}

// newClientRig builds a 2-OSD world where every request lands on one of the
// two fakes.
func newClientRig(cfg Config) *clientRig {
	env := sim.NewEnv(5)
	fabric := sim.NewFabric(env, "eth", sim.Microsecond)
	fabric.AddNode("n", 12.5e9)
	reg := messenger.NewRegistry()
	cpu := sim.NewCPU(env, "cpu", 8, 3.0, 2000)
	r := &clientRig{env: env}
	for i := 0; i < 2; i++ {
		f := &fakeOSD{env: env}
		f.msgr = messenger.New(env, reg, fabric, cpu, Name(i), "n", messenger.Config{})
		f.msgr.SetDispatcher(f.dispatch)
		r.osds = append(r.osds, f)
	}
	cmsgr := messenger.New(env, reg, fabric, cpu, "client.0", "n", messenger.Config{})
	m := osdmap.New(crush.BuildUniform(2, 1, 1.0), 16, 1)
	r.client = New(env, cpu, cmsgr, m, cfg)
	return r
}

// Name mirrors osd.Name without importing the osd package (avoiding a
// dependency from the client's tests on the daemon).
func Name(i int) string {
	return map[int]string{0: "osd.0", 1: "osd.1"}[i]
}

func (r *clientRig) run(t *testing.T, body func(p *sim.Proc)) {
	t.Helper()
	done := false
	r.env.Spawn("body", func(p *sim.Proc) {
		p.SetThread(sim.NewThread("body", ThreadCat))
		body(p)
		done = true
	})
	err := r.env.RunUntil(sim.Time(20 * 60 * sim.Second))
	if !done {
		t.Fatalf("body did not finish: %v", err)
	}
	r.env.Shutdown()
}

func TestClientHappyPath(t *testing.T) {
	r := newClientRig(Config{})
	r.run(t, func(p *sim.Proc) {
		if err := r.client.Write(p, "obj", wire.FromBytes([]byte("data"))); err != nil {
			t.Fatal(err)
		}
		size, ver, err := r.client.Stat(p, "obj")
		if err != nil || size != 42 || ver != 1 {
			t.Fatalf("stat size=%d ver=%d err=%v", size, ver, err)
		}
	})
	if r.osds[0].served+r.osds[1].served != 2 {
		t.Fatalf("served=%d+%d", r.osds[0].served, r.osds[1].served)
	}
}

func TestClientTimesOutAndRetries(t *testing.T) {
	r := newClientRig(Config{OpTimeout: 2 * sim.Second, MaxRetries: 2})
	for _, f := range r.osds {
		f.mode = "drop"
	}
	r.run(t, func(p *sim.Proc) {
		start := p.Now()
		err := r.client.Write(p, "obj", wire.FromBytes([]byte("x")))
		if !errors.Is(err, ErrTimeout) {
			t.Fatalf("err=%v", err)
		}
		// 3 attempts x (2s timeout + 1s backoff).
		if elapsed := p.Now().Sub(start); elapsed < 6*sim.Second {
			t.Fatalf("gave up too fast: %v", elapsed)
		}
	})
	total := r.osds[0].served + r.osds[1].served
	if total != 3 {
		t.Fatalf("attempts=%d want 3", total)
	}
}

func TestClientCountsDuplicateReplyAsStale(t *testing.T) {
	r := newClientRig(Config{})
	for _, f := range r.osds {
		f.mode = "dup"
	}
	r.run(t, func(p *sim.Proc) {
		if err := r.client.Write(p, "obj", wire.FromBytes([]byte("x"))); err != nil {
			t.Fatal(err)
		}
		p.Wait(sim.Second) // let the duplicate drain through dispatch
		if got := r.client.Stats().StaleReplies; got != 1 {
			t.Fatalf("StaleReplies=%d want 1", got)
		}
		if got := r.client.Telemetry().Get("stale_replies"); got != 1 {
			t.Fatalf("stale_replies counter=%d want 1", got)
		}
	})
}

func TestClientResendIsIdempotentAndLateReplyIsStale(t *testing.T) {
	r := newClientRig(Config{OpTimeout: 2 * sim.Second, MaxRetries: 2,
		RetryBackoff: 500 * sim.Millisecond})
	for _, f := range r.osds {
		f.mode = "slowOnce"
	}
	r.run(t, func(p *sim.Proc) {
		// Attempt 1 at t=0 times out at 2s; the resend at 2.5s succeeds
		// under the same tid. The late reply from attempt 1 lands at 5s,
		// after the op is retired, and must count as stale — not complete
		// (or corrupt) some other op.
		if err := r.client.Write(p, "obj", wire.FromBytes([]byte("x"))); err != nil {
			t.Fatal(err)
		}
		p.Wait(10 * sim.Second) // outlive the late reply
		st := r.client.Stats()
		if st.Timeouts != 1 || st.Retries != 1 {
			t.Fatalf("timeouts=%d retries=%d want 1/1", st.Timeouts, st.Retries)
		}
		if st.StaleReplies != 1 {
			t.Fatalf("StaleReplies=%d want 1", st.StaleReplies)
		}
	})
	if total := r.osds[0].served + r.osds[1].served; total != 2 {
		t.Fatalf("served=%d want 2", total)
	}
}

func TestClientRetriesOnWrongPrimary(t *testing.T) {
	r := newClientRig(Config{OpTimeout: 2 * sim.Second, MaxRetries: 3})
	for _, f := range r.osds {
		f.mode = "wrongPrimary"
	}
	r.run(t, func(p *sim.Proc) {
		err := r.client.Write(p, "obj", wire.FromBytes([]byte("x")))
		if !errors.Is(err, ErrTimeout) {
			t.Fatalf("err=%v", err)
		}
	})
	if total := r.osds[0].served + r.osds[1].served; total != 4 {
		t.Fatalf("attempts=%d want 4 (1 + 3 retries)", total)
	}
}

func TestClientSurfacesNotFound(t *testing.T) {
	r := newClientRig(Config{})
	for _, f := range r.osds {
		f.mode = "notfound"
	}
	r.run(t, func(p *sim.Proc) {
		if _, err := r.client.Read(p, "ghost", 0, 0); !errors.Is(err, ErrNotFound) {
			t.Fatalf("err=%v", err)
		}
		if err := r.client.Delete(p, "ghost"); !errors.Is(err, ErrNotFound) {
			t.Fatalf("err=%v", err)
		}
	})
}

func TestClientMapUpdateViaBroadcast(t *testing.T) {
	r := newClientRig(Config{})
	r.run(t, func(p *sim.Proc) {
		if r.client.Map().Epoch != 1 {
			t.Fatalf("epoch=%d", r.client.Map().Epoch)
		}
		// Simulate a monitor broadcast dropping osd.1.
		r.osds[0].msgr.Send("client.0", &cephmsg.MOSDMap{Epoch: 5, Up: []int32{0}})
		p.Wait(sim.Second)
		if r.client.Map().Epoch != 5 || r.client.Map().IsUp(1) {
			t.Fatalf("epoch=%d up1=%v", r.client.Map().Epoch, r.client.Map().IsUp(1))
		}
		// Stale broadcasts are ignored.
		r.osds[0].msgr.Send("client.0", &cephmsg.MOSDMap{Epoch: 3, Up: []int32{0, 1}})
		p.Wait(sim.Second)
		if r.client.Map().Epoch != 5 {
			t.Fatalf("stale epoch applied: %d", r.client.Map().Epoch)
		}
	})
}

func TestClientNoOSDError(t *testing.T) {
	r := newClientRig(Config{})
	r.run(t, func(p *sim.Proc) {
		next := r.client.Map().Next()
		next.MarkDown(0)
		next.MarkDown(1)
		r.client.curMap = next
		if err := r.client.Write(p, "obj", wire.FromBytes([]byte("x"))); !errors.Is(err, ErrNoOSD) {
			t.Fatalf("err=%v", err)
		}
	})
}

func TestAioOverlapsOperations(t *testing.T) {
	r := newClientRig(Config{})
	r.run(t, func(p *sim.Proc) {
		// Sequential baseline.
		seqStart := p.Now()
		for i := 0; i < 4; i++ {
			if err := r.client.Write(p, "seq", wire.FromBytes(make([]byte, 64<<10))); err != nil {
				t.Fatal(err)
			}
		}
		seq := p.Now().Sub(seqStart)
		// Four overlapped AIOs.
		aioStart := p.Now()
		var comps []*Completion
		for i := 0; i < 4; i++ {
			comps = append(comps, r.client.AioWrite("aio", wire.FromBytes(make([]byte, 64<<10))))
		}
		for _, c := range comps {
			if err := c.Wait(p); err != nil {
				t.Fatal(err)
			}
			if !c.Done() {
				t.Fatal("completion not marked done")
			}
		}
		aio := p.Now().Sub(aioStart)
		if aio >= seq {
			t.Fatalf("aio (%v) not faster than sequential (%v)", aio, seq)
		}
	})
}

func TestAioReadReturnsData(t *testing.T) {
	r := newClientRig(Config{})
	r.run(t, func(p *sim.Proc) {
		comp := r.client.AioRead("obj", 0, 0)
		if err := comp.Wait(p); err != nil {
			t.Fatal(err)
		}
		if comp.Data() == nil || string(comp.Data().Bytes()) != "fake-object-content" {
			t.Fatal("wrong data on completed read")
		}
	})
}

func TestAioSurfacesErrors(t *testing.T) {
	r := newClientRig(Config{})
	for _, f := range r.osds {
		f.mode = "notfound"
	}
	r.run(t, func(p *sim.Proc) {
		comp := r.client.AioRead("ghost", 0, 0)
		if err := comp.Wait(p); !errors.Is(err, ErrNotFound) {
			t.Fatalf("err=%v", err)
		}
	})
}

package wire

import "encoding/binary"

// Encoder builds a little-endian binary payload in the style of Ceph's
// encode() helpers. The zero value is ready for use.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an encoder preallocating capacity hint bytes.
func NewEncoder(hint int) *Encoder {
	return &Encoder{buf: make([]byte, 0, hint)}
}

// Bytes returns the encoded payload (shared with the encoder).
func (e *Encoder) Bytes() []byte { return e.buf }

// Bufferlist wraps the encoded payload in a single-segment list.
func (e *Encoder) Bufferlist() *Bufferlist { return FromBytes(e.buf) }

// Len returns the encoded length so far.
func (e *Encoder) Len() int { return len(e.buf) }

// U8 appends one byte.
func (e *Encoder) U8(v uint8) { e.buf = append(e.buf, v) }

// U16 appends a little-endian uint16.
func (e *Encoder) U16(v uint16) { e.buf = binary.LittleEndian.AppendUint16(e.buf, v) }

// U32 appends a little-endian uint32.
func (e *Encoder) U32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }

// U64 appends a little-endian uint64.
func (e *Encoder) U64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }

// I64 appends a little-endian int64.
func (e *Encoder) I64(v int64) { e.U64(uint64(v)) }

// Bool appends a bool as one byte.
func (e *Encoder) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// String appends a u32 length prefix followed by the bytes of s.
func (e *Encoder) String(s string) {
	e.U32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

// Blob appends a u32 length prefix followed by b.
func (e *Encoder) Blob(b []byte) {
	e.U32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

// BufferlistField appends a u32 length prefix followed by bl's content.
func (e *Encoder) BufferlistField(bl *Bufferlist) {
	e.U32(uint32(bl.Length()))
	for _, s := range bl.segs {
		e.buf = append(e.buf, s...)
	}
}

// Decoder reads little-endian values from a byte slice. Errors are sticky:
// after the first short read every subsequent call returns zero values and
// Err() reports ErrShortBuffer.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder returns a decoder over b (shared, not copied).
func NewDecoder(b []byte) *Decoder { return &Decoder{buf: b} }

// NewDecoderBL flattens bl and returns a decoder over the result.
func NewDecoderBL(bl *Bufferlist) *Decoder {
	if bl.Segments() == 1 {
		return NewDecoder(bl.segs[0])
	}
	return NewDecoder(bl.Bytes())
}

// Err returns the sticky decode error, if any.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.off+n > len(d.buf) {
		d.err = ErrShortBuffer
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// U8 reads one byte.
func (d *Decoder) U8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U16 reads a little-endian uint16.
func (d *Decoder) U16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

// U32 reads a little-endian uint32.
func (d *Decoder) U32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a little-endian uint64.
func (d *Decoder) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 reads a little-endian int64.
func (d *Decoder) I64() int64 { return int64(d.U64()) }

// Bool reads one byte as a bool.
func (d *Decoder) Bool() bool { return d.U8() != 0 }

// String reads a u32-length-prefixed string.
func (d *Decoder) String() string {
	n := d.U32()
	b := d.take(int(n))
	if b == nil {
		return ""
	}
	return string(b)
}

// Blob reads a u32-length-prefixed byte slice (copied).
func (d *Decoder) Blob() []byte {
	n := d.U32()
	b := d.take(int(n))
	if b == nil {
		return nil
	}
	c := make([]byte, len(b))
	copy(c, b)
	return c
}

// BufferlistField reads a u32-length-prefixed field as a zero-copy
// Bufferlist view of the decoder's backing slice.
func (d *Decoder) BufferlistField() *Bufferlist {
	n := d.U32()
	b := d.take(int(n))
	if b == nil {
		return &Bufferlist{}
	}
	return FromBytes(b)
}

package wire

import "encoding/binary"

// Encoder builds a little-endian binary payload in the style of Ceph's
// encode() helpers. The zero value is ready for use and produces one flat
// buffer. An encoder created with NewEncoderBL instead assembles a
// Bufferlist: fixed-size fields accumulate in a scratch segment and
// BufferlistField splices payload segments in shared, not copied — the
// zero-copy framing mode the messenger uses.
type Encoder struct {
	buf []byte
	// out is non-nil in Bufferlist-assembly mode.
	out *Bufferlist
}

// NewEncoder returns a flat encoder preallocating capacity hint bytes.
func NewEncoder(hint int) *Encoder {
	return &Encoder{buf: make([]byte, 0, hint)}
}

// NewEncoderBL returns an encoder assembling into a Bufferlist, using
// scratch (typically from GetBuffer) as the initial header segment storage.
// Fixed-size fields append to the current scratch region; BufferlistField
// flushes it and shares the payload's segments. The caller owns the
// lifetime of scratch's array: it may only be recycled once the returned
// list and everything decoded zero-copy from it are unreachable.
func NewEncoderBL(scratch []byte) *Encoder {
	return &Encoder{buf: scratch[:0], out: &Bufferlist{}}
}

// flush moves the pending scratch region into the output list and starts a
// new region in the remaining capacity of the same array (append never
// rewrites bytes below its starting length, so the flushed segment stays
// intact even if the array is shared until a growth reallocates).
func (e *Encoder) flush() {
	if len(e.buf) == 0 {
		return
	}
	e.out.Append(e.buf)
	e.buf = e.buf[len(e.buf):]
}

// Bytes returns the encoded payload. In Bufferlist mode this flattens;
// prefer Bufferlist there.
func (e *Encoder) Bytes() []byte {
	if e.out != nil {
		e.flush()
		return e.out.Bytes()
	}
	return e.buf
}

// Bufferlist returns the encoded payload as a Bufferlist. In flat mode it
// wraps the buffer in a single shared segment.
func (e *Encoder) Bufferlist() *Bufferlist {
	if e.out != nil {
		e.flush()
		return e.out
	}
	return FromBytes(e.buf)
}

// Len returns the encoded length so far.
func (e *Encoder) Len() int {
	if e.out != nil {
		return e.out.Length() + len(e.buf)
	}
	return len(e.buf)
}

// U8 appends one byte.
func (e *Encoder) U8(v uint8) { e.buf = append(e.buf, v) }

// U16 appends a little-endian uint16.
func (e *Encoder) U16(v uint16) { e.buf = binary.LittleEndian.AppendUint16(e.buf, v) }

// U32 appends a little-endian uint32.
func (e *Encoder) U32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }

// U64 appends a little-endian uint64.
func (e *Encoder) U64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }

// I64 appends a little-endian int64.
func (e *Encoder) I64(v int64) { e.U64(uint64(v)) }

// Bool appends a bool as one byte.
func (e *Encoder) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// String appends a u32 length prefix followed by the bytes of s.
func (e *Encoder) String(s string) {
	e.U32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

// Blob appends a u32 length prefix followed by b.
func (e *Encoder) Blob(b []byte) {
	e.U32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

// BufferlistField appends a u32 length prefix followed by bl's content. In
// Bufferlist mode the content segments are shared, not copied.
func (e *Encoder) BufferlistField(bl *Bufferlist) {
	e.U32(uint32(bl.Length()))
	if e.out != nil {
		e.flush()
		e.out.AppendBufferlist(bl)
		return
	}
	for _, s := range bl.segs {
		e.buf = append(e.buf, s...)
	}
}

// Decoder reads little-endian values from a byte slice or, via
// NewDecoderBL, directly from a Bufferlist's segments without flattening.
// Fields that lie within one segment are read in place; only a field that
// straddles a segment boundary is gathered into a fresh slice. Errors are
// sticky: after the first short read every subsequent call returns zero
// values and Err() reports ErrShortBuffer.
type Decoder struct {
	// bl is non-nil for segmented decoders; base is the logical offset of
	// the current segment within it.
	bl   *Bufferlist
	seg  int
	base int
	buf  []byte
	off  int
	err  error
}

// NewDecoder returns a decoder over b (shared, not copied).
func NewDecoder(b []byte) *Decoder { return &Decoder{buf: b} }

// NewDecoderBL returns a decoder over bl's content. Single-segment lists
// decode exactly like NewDecoder; multi-segment lists are walked segment by
// segment with no up-front flatten.
func NewDecoderBL(bl *Bufferlist) *Decoder {
	switch len(bl.segs) {
	case 0:
		return &Decoder{}
	case 1:
		return NewDecoder(bl.segs[0])
	}
	return &Decoder{bl: bl, buf: bl.segs[0]}
}

// Err returns the sticky decode error, if any.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int {
	if d.bl != nil {
		return d.bl.length - d.base - d.off
	}
	return len(d.buf) - d.off
}

// nextSeg advances to the following segment; it reports false at the end.
func (d *Decoder) nextSeg() bool {
	if d.bl == nil || d.seg+1 >= len(d.bl.segs) {
		return false
	}
	d.base += len(d.buf)
	d.seg++
	d.buf = d.bl.segs[d.seg]
	d.off = 0
	return true
}

func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	for d.off == len(d.buf) && d.nextSeg() {
	}
	if d.off+n <= len(d.buf) {
		b := d.buf[d.off : d.off+n]
		d.off += n
		return b
	}
	if d.Remaining() < n {
		d.err = ErrShortBuffer
		return nil
	}
	// The field straddles a segment boundary: gather.
	out := make([]byte, n)
	m := 0
	for m < n {
		if d.off == len(d.buf) {
			d.nextSeg()
			continue
		}
		c := copy(out[m:], d.buf[d.off:])
		d.off += c
		m += c
	}
	return out
}

// skip consumes n bytes without materializing them. The caller has already
// checked Remaining.
func (d *Decoder) skip(n int) {
	for n > 0 {
		avail := len(d.buf) - d.off
		if avail >= n {
			d.off += n
			return
		}
		n -= avail
		d.off = len(d.buf)
		if !d.nextSeg() {
			return
		}
	}
}

// U8 reads one byte.
func (d *Decoder) U8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U16 reads a little-endian uint16.
func (d *Decoder) U16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

// U32 reads a little-endian uint32.
func (d *Decoder) U32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a little-endian uint64.
func (d *Decoder) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 reads a little-endian int64.
func (d *Decoder) I64() int64 { return int64(d.U64()) }

// Bool reads one byte as a bool.
func (d *Decoder) Bool() bool { return d.U8() != 0 }

// String reads a u32-length-prefixed string.
func (d *Decoder) String() string {
	n := d.U32()
	b := d.take(int(n))
	if b == nil {
		return ""
	}
	return string(b)
}

// Blob reads a u32-length-prefixed byte slice (copied).
func (d *Decoder) Blob() []byte {
	n := d.U32()
	b := d.take(int(n))
	if b == nil {
		return nil
	}
	c := make([]byte, len(b))
	copy(c, b)
	return c
}

// BufferlistField reads a u32-length-prefixed field as a zero-copy
// Bufferlist view of the decoder's backing storage — even when the field
// spans segments.
func (d *Decoder) BufferlistField() *Bufferlist {
	n := int(d.U32())
	if d.err != nil || n == 0 {
		return &Bufferlist{}
	}
	for d.off == len(d.buf) && d.nextSeg() {
	}
	if d.off+n <= len(d.buf) {
		b := d.buf[d.off : d.off+n]
		d.off += n
		return FromBytes(b)
	}
	if d.bl == nil || d.Remaining() < n {
		d.err = ErrShortBuffer
		return &Bufferlist{}
	}
	out := d.bl.SubList(d.base+d.off, n)
	d.skip(n)
	return out
}

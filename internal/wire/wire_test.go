package wire

import (
	"bytes"
	"hash/crc32"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBufferlistAppendAndBytes(t *testing.T) {
	bl := NewBufferlist([]byte("hello, "), []byte("world"))
	if bl.Length() != 12 || bl.Segments() != 2 {
		t.Fatalf("len=%d segs=%d", bl.Length(), bl.Segments())
	}
	if string(bl.Bytes()) != "hello, world" {
		t.Fatalf("bytes=%q", bl.Bytes())
	}
}

func TestBufferlistEmptyAppendIgnored(t *testing.T) {
	bl := &Bufferlist{}
	bl.Append(nil)
	bl.Append([]byte{})
	bl.AppendCopy(nil)
	if bl.Length() != 0 || bl.Segments() != 0 {
		t.Fatalf("len=%d segs=%d", bl.Length(), bl.Segments())
	}
}

func TestBufferlistAppendShares(t *testing.T) {
	src := []byte("abc")
	bl := &Bufferlist{}
	bl.Append(src)
	src[0] = 'x'
	if string(bl.Bytes()) != "xbc" {
		t.Fatal("Append must share storage")
	}
	bl2 := &Bufferlist{}
	src2 := []byte("abc")
	bl2.AppendCopy(src2)
	src2[0] = 'x'
	if string(bl2.Bytes()) != "abc" {
		t.Fatal("AppendCopy must copy")
	}
}

func TestSubListSpansSegments(t *testing.T) {
	bl := NewBufferlist([]byte("abcd"), []byte("efgh"), []byte("ijkl"))
	sub := bl.SubList(2, 8)
	if string(sub.Bytes()) != "cdefghij" {
		t.Fatalf("sub=%q", sub.Bytes())
	}
	if got := bl.SubList(0, 0); got.Length() != 0 {
		t.Fatalf("empty sublist len=%d", got.Length())
	}
	if got := bl.SubList(12, 0); got.Length() != 0 {
		t.Fatalf("tail sublist len=%d", got.Length())
	}
}

func TestSubListOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBufferlist([]byte("ab")).SubList(1, 5)
}

func TestCRC32CMatchesFlat(t *testing.T) {
	table := crc32.MakeTable(crc32.Castagnoli)
	bl := NewBufferlist([]byte("seg1-"), []byte("seg2-"), []byte("seg3"))
	want := crc32.Checksum(bl.Bytes(), table)
	if bl.CRC32C() != want {
		t.Fatalf("crc=%08x want %08x", bl.CRC32C(), want)
	}
}

func TestEqual(t *testing.T) {
	a := NewBufferlist([]byte("abc"), []byte("def"))
	b := NewBufferlist([]byte("a"), []byte("bcde"), []byte("f"))
	c := NewBufferlist([]byte("abcdeX"))
	if !a.Equal(b) {
		t.Fatal("a should equal b")
	}
	if a.Equal(c) {
		t.Fatal("a should not equal c")
	}
	if !(&Bufferlist{}).Equal(&Bufferlist{}) {
		t.Fatal("empty lists should be equal")
	}
}

func TestCopyToAndClone(t *testing.T) {
	bl := NewBufferlist([]byte("ab"), []byte("cd"))
	dst := make([]byte, 3)
	if n := bl.CopyTo(dst); n != 3 || string(dst) != "abc" {
		t.Fatalf("n=%d dst=%q", n, dst)
	}
	cl := bl.Clone()
	if !cl.Equal(bl) || cl.Segments() != 1 {
		t.Fatalf("clone segs=%d", cl.Segments())
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	e := NewEncoder(64)
	e.U8(0xAB)
	e.U16(0xBEEF)
	e.U32(0xDEADBEEF)
	e.U64(0x0123456789ABCDEF)
	e.I64(-42)
	e.Bool(true)
	e.Bool(false)
	e.String("object-7")
	e.Blob([]byte{1, 2, 3})
	inner := NewBufferlist([]byte("xx"), []byte("yy"))
	e.BufferlistField(inner)

	d := NewDecoder(e.Bytes())
	if d.U8() != 0xAB || d.U16() != 0xBEEF || d.U32() != 0xDEADBEEF {
		t.Fatal("int mismatch")
	}
	if d.U64() != 0x0123456789ABCDEF || d.I64() != -42 {
		t.Fatal("64-bit mismatch")
	}
	if !d.Bool() || d.Bool() {
		t.Fatal("bool mismatch")
	}
	if d.String() != "object-7" {
		t.Fatal("string mismatch")
	}
	if !bytes.Equal(d.Blob(), []byte{1, 2, 3}) {
		t.Fatal("blob mismatch")
	}
	if got := d.BufferlistField(); string(got.Bytes()) != "xxyy" {
		t.Fatalf("bl field=%q", got.Bytes())
	}
	if d.Err() != nil || d.Remaining() != 0 {
		t.Fatalf("err=%v remaining=%d", d.Err(), d.Remaining())
	}
}

func TestDecoderShortBufferSticky(t *testing.T) {
	d := NewDecoder([]byte{1, 2})
	_ = d.U32()
	if d.Err() != ErrShortBuffer {
		t.Fatalf("err=%v", d.Err())
	}
	// Sticky: further reads stay zero without panicking.
	if d.U64() != 0 || d.String() != "" || d.Blob() != nil {
		t.Fatal("sticky error should zero subsequent reads")
	}
}

func TestDecoderTruncatedString(t *testing.T) {
	e := NewEncoder(16)
	e.String("hello")
	b := e.Bytes()[:6] // cut mid-string
	d := NewDecoder(b)
	if d.String() != "" || d.Err() != ErrShortBuffer {
		t.Fatal("want short-buffer error")
	}
}

func TestDecoderBLMultiSegment(t *testing.T) {
	e := NewEncoder(16)
	e.U32(77)
	e.String("abc")
	flat := e.Bytes()
	bl := NewBufferlist(flat[:3], flat[3:])
	d := NewDecoderBL(bl)
	if d.U32() != 77 || d.String() != "abc" || d.Err() != nil {
		t.Fatal("multi-segment decode failed")
	}
}

func TestQuickSubListMatchesFlatSlice(t *testing.T) {
	f := func(data []byte, cut uint8, off, n uint16) bool {
		// Split data into segments at pseudo-random points.
		bl := &Bufferlist{}
		rest := data
		r := rand.New(rand.NewSource(int64(cut)))
		for len(rest) > 0 {
			k := 1 + r.Intn(len(rest))
			bl.Append(rest[:k])
			rest = rest[k:]
		}
		o := int(off) % (len(data) + 1)
		m := int(n) % (len(data) - o + 1)
		return bytes.Equal(bl.SubList(o, m).Bytes(), data[o:o+m])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickEncodeDecodeBlob(t *testing.T) {
	f := func(b []byte, s string) bool {
		e := NewEncoder(len(b) + len(s) + 8)
		e.Blob(b)
		e.String(s)
		d := NewDecoder(e.Bytes())
		got := d.Blob()
		if len(b) == 0 {
			if len(got) != 0 {
				return false
			}
		} else if !bytes.Equal(got, b) {
			return false
		}
		return d.String() == s && d.Err() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCRCSegmentationInvariant(t *testing.T) {
	f := func(data []byte, seed int64) bool {
		table := crc32.MakeTable(crc32.Castagnoli)
		want := crc32.Checksum(data, table)
		bl := &Bufferlist{}
		rest := data
		r := rand.New(rand.NewSource(seed))
		for len(rest) > 0 {
			k := 1 + r.Intn(len(rest))
			bl.Append(rest[:k])
			rest = rest[k:]
		}
		return bl.CRC32C() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Package wire implements Ceph-style buffer management and binary
// encoding: a segmented, zero-copy Bufferlist (the moral equivalent of
// ceph::bufferlist) plus little-endian Encoder/Decoder helpers used by
// messages, the proxy RPC protocol and the BlueStore key-value layer.
package wire

import (
	"errors"
	"fmt"
	"hash/crc32"
)

// castagnoli is the CRC-32C table Ceph uses for data checksums.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrShortBuffer is returned when a decode runs past the end of the data.
var ErrShortBuffer = errors.New("wire: short buffer")

// Bufferlist is an ordered list of byte segments treated as one logical
// byte string. The zero value is an empty list ready for use.
//
// # Sharing vs copying
//
// Append and AppendBufferlist share the underlying arrays — they are the
// zero-copy fast path the data plane is built on, and they come with the
// same aliasing contract as Ceph's bufferlist::append(ptr): neither the
// caller nor any holder of the resulting list may mutate the bytes while
// the other can still observe them. Concretely:
//
//   - A producer that will reuse or overwrite its slice after handing it
//     off (e.g. a recycled I/O buffer) must use AppendCopy instead.
//   - A consumer that stores a shared list for later reading (BlueStore
//     blobs, omap values) relies on every upstream producer following the
//     rule above; in this simulation the payload travels client → OSD →
//     BlueStore fully shared, which is what lets a write reach the disk
//     blob with at most the one copy the model charges for.
//
// TestBufferlistAliasingContract pins this contract down.
type Bufferlist struct {
	segs   [][]byte
	length int
}

// NewBufferlist returns a list over the given segments without copying.
func NewBufferlist(segs ...[]byte) *Bufferlist {
	bl := &Bufferlist{}
	for _, s := range segs {
		bl.Append(s)
	}
	return bl
}

// FromBytes returns a single-segment list sharing b.
func FromBytes(b []byte) *Bufferlist { return NewBufferlist(b) }

// Length returns the logical length in bytes.
func (bl *Bufferlist) Length() int { return bl.length }

// Segments returns the number of underlying segments.
func (bl *Bufferlist) Segments() int { return len(bl.segs) }

// Append adds b as a new segment, sharing its storage. Empty slices are
// ignored.
func (bl *Bufferlist) Append(b []byte) {
	if len(b) == 0 {
		return
	}
	bl.segs = append(bl.segs, b)
	bl.length += len(b)
}

// AppendCopy adds a private copy of b.
func (bl *Bufferlist) AppendCopy(b []byte) {
	if len(b) == 0 {
		return
	}
	c := make([]byte, len(b))
	copy(c, b)
	bl.Append(c)
}

// AppendBufferlist appends all of other's segments (shared storage).
func (bl *Bufferlist) AppendBufferlist(other *Bufferlist) {
	for _, s := range other.segs {
		bl.Append(s)
	}
}

// Bytes flattens the list into a single freshly allocated slice.
func (bl *Bufferlist) Bytes() []byte {
	out := make([]byte, 0, bl.length)
	for _, s := range bl.segs {
		out = append(out, s...)
	}
	return out
}

// ContiguousBytes returns the logical content as one contiguous slice:
// single-segment lists are returned shared (no copy, aliasing contract
// applies), multi-segment lists are flattened. Hot paths that need a plain
// []byte should prefer this over Bytes.
func (bl *Bufferlist) ContiguousBytes() []byte {
	if len(bl.segs) == 1 {
		return bl.segs[0]
	}
	return bl.Bytes()
}

// FirstSegment returns the first underlying segment (shared), or nil for an
// empty list. Framing code uses it to recycle pooled header scratch once a
// frame has been decoded and dispatched.
func (bl *Bufferlist) FirstSegment() []byte {
	if len(bl.segs) == 0 {
		return nil
	}
	return bl.segs[0]
}

// SubList returns a zero-copy view of n bytes starting at off. It panics if
// the range is out of bounds (programmer error, mirroring slice semantics).
func (bl *Bufferlist) SubList(off, n int) *Bufferlist {
	if off < 0 || n < 0 || off+n > bl.length {
		panic(fmt.Sprintf("wire: SubList(%d,%d) out of range (len %d)", off, n, bl.length))
	}
	out := &Bufferlist{}
	if n == 0 {
		return out
	}
	pos := 0
	for _, s := range bl.segs {
		if n == 0 {
			break
		}
		end := pos + len(s)
		if end <= off {
			pos = end
			continue
		}
		start := 0
		if off > pos {
			start = off - pos
		}
		take := len(s) - start
		if take > n {
			take = n
		}
		out.Append(s[start : start+take])
		n -= take
		off += take
		pos = end
	}
	return out
}

// CRC32C computes the Castagnoli CRC over the logical content without
// flattening.
func (bl *Bufferlist) CRC32C() uint32 {
	var crc uint32
	for _, s := range bl.segs {
		crc = crc32.Update(crc, castagnoli, s)
	}
	return crc
}

// Equal reports whether two lists have identical logical content.
func (bl *Bufferlist) Equal(other *Bufferlist) bool {
	if bl.length != other.length {
		return false
	}
	ai, bi := bl.iter(), other.iter()
	for {
		a, aok := ai.next()
		if !aok {
			return true
		}
		for len(a) > 0 {
			b, _ := bi.nextN(len(a))
			if !bytesEqual(a[:len(b)], b) {
				return false
			}
			a = a[len(b):]
		}
	}
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

type blIter struct {
	segs [][]byte
	seg  int
	off  int
}

func (bl *Bufferlist) iter() blIter { return blIter{segs: bl.segs} }

func (it *blIter) next() ([]byte, bool) {
	for it.seg < len(it.segs) {
		s := it.segs[it.seg][it.off:]
		it.seg++
		it.off = 0
		if len(s) > 0 {
			return s, true
		}
	}
	return nil, false
}

// nextN returns up to n contiguous bytes.
func (it *blIter) nextN(n int) ([]byte, bool) {
	for it.seg < len(it.segs) {
		s := it.segs[it.seg][it.off:]
		if len(s) == 0 {
			it.seg++
			it.off = 0
			continue
		}
		if len(s) > n {
			it.off += n
			return s[:n], true
		}
		it.seg++
		it.off = 0
		return s, true
	}
	return nil, false
}

// CopyTo copies the logical content into dst and returns the number of
// bytes copied (min of lengths).
func (bl *Bufferlist) CopyTo(dst []byte) int {
	n := 0
	for _, s := range bl.segs {
		if n >= len(dst) {
			break
		}
		n += copy(dst[n:], s)
	}
	return n
}

// Clone returns a deep copy with a single private segment.
func (bl *Bufferlist) Clone() *Bufferlist {
	return FromBytes(bl.Bytes())
}

package wire

import "sync"

// The scratch pool recycles the short header buffers the framing layer
// encodes into (and any other transient []byte a hot path needs). Buffers
// are handed out empty with at least the requested capacity; callers give
// them back with PutBuffer once nothing can reference them anymore.
//
// A mutex-guarded free list (rather than sync.Pool) keeps Get/Put
// allocation-free; the simulator runs one goroutine at a time per
// environment, so the lock is effectively uncontended.
var scratch = struct {
	sync.Mutex
	free [][]byte
}{}

const (
	// poolMaxBuffers bounds how many buffers the pool retains.
	poolMaxBuffers = 64
	// poolMaxCap bounds the capacity of a retained buffer; anything larger
	// (bulk payloads) is left to the garbage collector.
	poolMaxCap = 64 << 10
)

// GetBuffer returns an empty buffer with capacity at least hint, reusing a
// pooled one when possible.
func GetBuffer(hint int) []byte {
	scratch.Lock()
	for i := len(scratch.free) - 1; i >= 0; i-- {
		if b := scratch.free[i]; cap(b) >= hint {
			last := len(scratch.free) - 1
			scratch.free[i] = scratch.free[last]
			scratch.free[last] = nil
			scratch.free = scratch.free[:last]
			scratch.Unlock()
			return b[:0]
		}
	}
	scratch.Unlock()
	if hint < 128 {
		hint = 128
	}
	return make([]byte, 0, hint)
}

// PutBuffer returns b's storage to the pool. The caller must guarantee no
// live reference into b's array remains; passing a buffer that is still
// aliased by a Bufferlist in flight corrupts that list's content.
func PutBuffer(b []byte) {
	if cap(b) == 0 || cap(b) > poolMaxCap {
		return
	}
	scratch.Lock()
	if len(scratch.free) < poolMaxBuffers {
		scratch.free = append(scratch.free, b[:0])
	}
	scratch.Unlock()
}

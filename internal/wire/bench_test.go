package wire

import "testing"

func BenchmarkBufferlistCRC32C(b *testing.B) {
	bl := FromBytes(make([]byte, 4<<20))
	b.SetBytes(4 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = bl.CRC32C()
	}
}

func BenchmarkSubListZeroCopy(b *testing.B) {
	bl := &Bufferlist{}
	for i := 0; i < 64; i++ {
		bl.Append(make([]byte, 64<<10))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = bl.SubList((i%32)<<10, 2<<20)
	}
}

func BenchmarkEncoderSmallMessage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := NewEncoder(64)
		e.U64(uint64(i))
		e.U32(7)
		e.String("pg.17/object-name")
		e.Bool(true)
	}
}

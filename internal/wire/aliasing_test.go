package wire

import (
	"bytes"
	"testing"
)

// TestBufferlistAliasingContract pins down the sharing-vs-copying contract
// documented on Bufferlist: which operations alias the caller's storage and
// which isolate it. The zero-copy data plane (messenger framing, OSD
// replication, BlueStore blobs) is built on exactly these guarantees, so a
// behavior change here is a correctness bug even if every codec test still
// passes.
func TestBufferlistAliasingContract(t *testing.T) {
	t.Run("AppendShares", func(t *testing.T) {
		src := []byte{1, 2, 3}
		bl := &Bufferlist{}
		bl.Append(src)
		src[0] = 99
		if got := bl.Bytes(); !bytes.Equal(got, []byte{99, 2, 3}) {
			t.Fatalf("Append must share storage; got %v", got)
		}
	})

	t.Run("AppendCopyIsolates", func(t *testing.T) {
		src := []byte{1, 2, 3}
		bl := &Bufferlist{}
		bl.AppendCopy(src)
		src[0] = 99
		if got := bl.Bytes(); !bytes.Equal(got, []byte{1, 2, 3}) {
			t.Fatalf("AppendCopy must isolate; got %v", got)
		}
	})

	t.Run("AppendBufferlistShares", func(t *testing.T) {
		seg := []byte{4, 5}
		inner := FromBytes(seg)
		outer := &Bufferlist{}
		outer.AppendBufferlist(inner)
		seg[1] = 50
		if got := outer.Bytes(); !bytes.Equal(got, []byte{4, 50}) {
			t.Fatalf("AppendBufferlist must share storage; got %v", got)
		}
	})

	t.Run("SubListShares", func(t *testing.T) {
		seg := []byte{0, 1, 2, 3, 4}
		view := FromBytes(seg).SubList(1, 3)
		seg[2] = 77
		if got := view.Bytes(); !bytes.Equal(got, []byte{1, 77, 3}) {
			t.Fatalf("SubList must be a view; got %v", got)
		}
	})

	t.Run("CloneIsolates", func(t *testing.T) {
		seg := []byte{8, 9}
		cl := FromBytes(seg).Clone()
		seg[0] = 0
		if got := cl.Bytes(); !bytes.Equal(got, []byte{8, 9}) {
			t.Fatalf("Clone must deep-copy; got %v", got)
		}
	})

	t.Run("ContiguousBytesSharesSingleSegment", func(t *testing.T) {
		seg := []byte{1, 2}
		b := FromBytes(seg).ContiguousBytes()
		seg[0] = 42
		if b[0] != 42 {
			t.Fatal("ContiguousBytes must share a single-segment list's storage")
		}
	})

	// The framing path: BufferlistField in Bufferlist-assembly mode shares
	// the payload's segments, and header bytes flushed to the output stay
	// intact even though later fields keep appending into the same scratch
	// array (append never rewrites below its starting length).
	t.Run("EncoderBLSharesPayload", func(t *testing.T) {
		payload := []byte{10, 20, 30}
		e := NewEncoderBL(make([]byte, 0, 64))
		e.U16(0x0102)
		e.BufferlistField(FromBytes(payload))
		e.U32(0xdeadbeef) // trailer continues in the same scratch array
		out := e.Bufferlist()

		payload[0] = 111
		d := NewDecoderBL(out)
		if v := d.U16(); v != 0x0102 {
			t.Fatalf("header corrupted: %#x", v)
		}
		field := d.BufferlistField()
		if got := field.Bytes(); !bytes.Equal(got, []byte{111, 20, 30}) {
			t.Fatalf("payload must be shared through the encoder; got %v", got)
		}
		if v := d.U32(); v != 0xdeadbeef {
			t.Fatalf("trailer corrupted: %#x", v)
		}
		if d.Err() != nil {
			t.Fatal(d.Err())
		}
	})

	// The decode side of the same contract: a BufferlistField read from a
	// segmented list is a view of the frame's storage, not a copy.
	t.Run("DecoderFieldIsView", func(t *testing.T) {
		frame := &Bufferlist{}
		e := NewEncoder(16)
		e.U32(4)
		frame.Append(e.Bytes())
		body := []byte{7, 7, 7, 7}
		frame.Append(body)

		field := NewDecoderBL(frame).BufferlistField()
		body[3] = 9
		if got := field.Bytes(); !bytes.Equal(got, []byte{7, 7, 7, 9}) {
			t.Fatalf("decoded field must view frame storage; got %v", got)
		}
	})
}

// TestBufferPoolRoundTrip exercises the scratch pool the framing layer
// recycles header buffers through.
func TestBufferPoolRoundTrip(t *testing.T) {
	b := GetBuffer(256)
	if len(b) != 0 || cap(b) < 256 {
		t.Fatalf("GetBuffer: len=%d cap=%d", len(b), cap(b))
	}
	b = append(b, 1, 2, 3)
	PutBuffer(b)
	c := GetBuffer(128)
	if len(c) != 0 {
		t.Fatalf("recycled buffer must come back empty, len=%d", len(c))
	}
	// Oversized buffers must not be retained.
	PutBuffer(make([]byte, poolMaxCap+1))
}

package bluestore

import (
	"errors"
	"sort"
)

// ErrNoSpace is returned when the virtual device is exhausted.
var ErrNoSpace = errors.New("bluestore: device out of space")

// allocator hands out device extents with best-effort reuse of freed space:
// a bump pointer for fresh space plus a coalescing free list, in the spirit
// of BlueStore's bitmap allocator but sized for simulation.
type allocator struct {
	capacity int64
	unit     int64
	bump     int64
	// freeList holds released extents sorted by offset, adjacent runs
	// coalesced.
	freeList []devExtent
	freeSum  int64
}

type devExtent struct {
	off    int64
	length int64
}

func newAllocator(capacity, unit int64) *allocator {
	return &allocator{capacity: capacity, unit: unit}
}

// free returns the total unallocated bytes.
func (a *allocator) free() int64 { return (a.capacity - a.bump) + a.freeSum }

// allocate returns the device offset of a contiguous extent of the given
// length (already rounded to the allocation unit by the caller).
func (a *allocator) allocate(length int64) (int64, error) {
	// First fit from the free list.
	for i, e := range a.freeList {
		if e.length >= length {
			off := e.off
			if e.length == length {
				a.freeList = append(a.freeList[:i], a.freeList[i+1:]...)
			} else {
				a.freeList[i] = devExtent{off: e.off + length, length: e.length - length}
			}
			a.freeSum -= length
			return off, nil
		}
	}
	if a.bump+length > a.capacity {
		return 0, ErrNoSpace
	}
	off := a.bump
	a.bump += length
	return off, nil
}

// release returns an extent to the free list, coalescing neighbours.
func (a *allocator) release(off, length int64) {
	a.freeList = append(a.freeList, devExtent{off: off, length: length})
	sort.Slice(a.freeList, func(i, j int) bool { return a.freeList[i].off < a.freeList[j].off })
	var out []devExtent
	for _, e := range a.freeList {
		if n := len(out); n > 0 && out[n-1].off+out[n-1].length == e.off {
			out[n-1].length += e.length
			continue
		}
		out = append(out, e)
	}
	a.freeList = out
	a.freeSum += length
	// Fold a tail run back into the bump pointer.
	if n := len(a.freeList); n > 0 {
		tail := a.freeList[n-1]
		if tail.off+tail.length == a.bump {
			a.bump = tail.off
			a.freeSum -= tail.length
			a.freeList = a.freeList[:n-1]
		}
	}
}

// kvStore is a minimal ordered key-value map standing in for RocksDB: the
// engine charges commit costs explicitly, so this only needs correct
// ordered-iteration semantics for metadata listing and tests.
type kvStore struct {
	m map[string][]byte
}

func newKVStore() *kvStore { return &kvStore{m: make(map[string][]byte)} }

func (k *kvStore) set(key string, val []byte) { k.m[key] = val }
func (k *kvStore) del(key string)             { delete(k.m, key) }
func (k *kvStore) get(key string) ([]byte, bool) {
	v, ok := k.m[key]
	return v, ok
}

// keysWithPrefix returns all keys with the given prefix in sorted order.
func (k *kvStore) keysWithPrefix(prefix string) []string {
	var out []string
	for key := range k.m {
		if len(key) >= len(prefix) && key[:len(prefix)] == prefix {
			out = append(out, key)
		}
	}
	sort.Strings(out)
	return out
}

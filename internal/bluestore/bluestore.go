// Package bluestore implements a BlueStore-like transactional object store:
// collections of objects with sparse extent data, an extent allocator over a
// virtual block device, a small ordered key-value store holding onode
// metadata, a write-ahead (deferred-write) path for small writes and a
// direct data path for large ones, and the bstore_aio/bstore_kv thread pair
// that Ceph's perf breakdown attributes "ObjectStore" CPU to.
//
// Data is retained as zero-copy wire.Bufferlist views, so integrity checks
// (CRC32C end-to-end) are real while memory stays proportional to the
// distinct payload buffers the workload allocates.
package bluestore

import (
	"errors"
	"fmt"
	"sort"

	"doceph/internal/objstore"
	"doceph/internal/sim"
	"doceph/internal/trace"
	"doceph/internal/wire"
)

// ErrInjectedWrite is the transient I/O error surfaced by the write-error
// fault hook; the OSD reports it to the client as a backend error, and a
// later retry of the op (new transaction) rolls the dice again.
var ErrInjectedWrite = errors.New("bluestore: injected transient write error")

// Config carries the engine's tunables and CPU cost model. Zero values are
// replaced by defaults in New.
type Config struct {
	// DeviceBytes is the virtual block device capacity.
	DeviceBytes int64
	// MinAllocSize is the allocation granularity (BlueStore default 64 KiB
	// for HDD, 16 KiB for SSD; we default to 64 KiB).
	MinAllocSize int64
	// DeferredThreshold routes writes strictly smaller than this through
	// the WAL/KV journal instead of the direct data path.
	DeferredThreshold int64
	// KVBatchMax bounds how many transactions one kv-sync cycle commits.
	KVBatchMax int

	// PrepCyclesPerOp is charged on the submitting thread per transaction op.
	PrepCyclesPerOp int64
	// CsumCyclesPerByte is charged on bstore_aio per data byte (checksum +
	// memcpy into device buffers).
	CsumCyclesPerByte float64
	// KVCommitCycles is charged on bstore_kv per sync cycle.
	KVCommitCycles int64
	// KVApplyCyclesPerOp is charged on bstore_kv per committed op.
	KVApplyCyclesPerOp int64
	// ReadCyclesPerByte is charged on the reading thread per byte.
	ReadCyclesPerByte float64
	// ReadCyclesPerOp is charged on the reading thread per read/stat call.
	ReadCyclesPerOp int64
	// SwitchesPerKVSync is the voluntary context-switch count recorded per
	// kv-sync cycle (flush/fdatasync wakeups).
	SwitchesPerKVSync int64
	// SwitchesPerAIO is the voluntary context-switch count recorded per
	// aio completion.
	SwitchesPerAIO int64
}

// DefaultConfig returns the engine defaults used by the experiments.
func DefaultConfig() Config {
	return Config{
		DeviceBytes:        2 << 40, // 2 TiB
		MinAllocSize:       64 << 10,
		DeferredThreshold:  64 << 10,
		KVBatchMax:         16,
		PrepCyclesPerOp:    12_000,
		CsumCyclesPerByte:  0.18,
		KVCommitCycles:     40_000,
		KVApplyCyclesPerOp: 6_000,
		ReadCyclesPerByte:  0.25,
		ReadCyclesPerOp:    8_000,
		SwitchesPerKVSync:  2,
		SwitchesPerAIO:     1,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.DeviceBytes == 0 {
		c.DeviceBytes = d.DeviceBytes
	}
	if c.MinAllocSize == 0 {
		c.MinAllocSize = d.MinAllocSize
	}
	if c.DeferredThreshold == 0 {
		c.DeferredThreshold = d.DeferredThreshold
	}
	if c.KVBatchMax == 0 {
		c.KVBatchMax = d.KVBatchMax
	}
	if c.PrepCyclesPerOp == 0 {
		c.PrepCyclesPerOp = d.PrepCyclesPerOp
	}
	if c.CsumCyclesPerByte == 0 {
		c.CsumCyclesPerByte = d.CsumCyclesPerByte
	}
	if c.KVCommitCycles == 0 {
		c.KVCommitCycles = d.KVCommitCycles
	}
	if c.KVApplyCyclesPerOp == 0 {
		c.KVApplyCyclesPerOp = d.KVApplyCyclesPerOp
	}
	if c.ReadCyclesPerByte == 0 {
		c.ReadCyclesPerByte = d.ReadCyclesPerByte
	}
	if c.ReadCyclesPerOp == 0 {
		c.ReadCyclesPerOp = d.ReadCyclesPerOp
	}
	if c.SwitchesPerKVSync == 0 {
		c.SwitchesPerKVSync = d.SwitchesPerKVSync
	}
	if c.SwitchesPerAIO == 0 {
		c.SwitchesPerAIO = d.SwitchesPerAIO
	}
	return c
}

// ThreadCat is the accounting category for BlueStore threads, matching the
// paper's "bstore_" perf pattern.
const ThreadCat = "bstore"

// Stats are engine counters for tests and reports.
type Stats struct {
	Transactions   int64
	Ops            int64
	DirectWrites   int64
	DeferredWrites int64
	KVSyncCycles   int64
	BytesWritten   int64
	BytesRead      int64
	AllocatedBytes int64
	InjectedErrors int64
}

// Store is a BlueStore-like engine bound to one host CPU and one disk.
type Store struct {
	env  *sim.Env
	cpu  *sim.CPU
	disk *sim.Disk
	cfg  Config
	name string

	thAIO *sim.Thread
	thKV  *sim.Thread

	alloc *allocator
	kv    *kvStore
	colls map[string]*collection

	aioq *sim.Queue[*txc]
	kvq  *sim.Queue[*txc]

	// Fault-injection state (see SetSlowIO / SetWriteErrorProb).
	slowIO       sim.Duration
	writeErrProb float64

	stats Stats
	tr    *trace.Tracer
}

type collection struct {
	objects map[string]*onode
}

type onode struct {
	size    uint64
	version uint64
	mtime   sim.Time
	attrs   map[string][]byte
	omap    map[string][]byte
	extents []extent // sorted by off, non-overlapping
	// blocks are device extents backing the object, tracked for free-space
	// accounting.
	blocks []blockExtent
}

type extent struct {
	off  uint64
	data *wire.Bufferlist
}

type blockExtent struct {
	dev    int64
	length int64
}

// txc is an in-flight transaction context walking the aio -> kv pipeline.
type txc struct {
	txn    *objstore.Transaction
	result *objstore.Result
	// span/enq carry the current pipeline stage's trace span and its
	// enqueue instant (zero when the transaction is untraced).
	span trace.SpanID
	enq  sim.Time
}

// New creates a store and spawns its bstore_aio and bstore_kv threads on
// env. name distinguishes multiple stores in one simulation.
func New(env *sim.Env, name string, cpu *sim.CPU, disk *sim.Disk, cfg Config) *Store {
	s := &Store{
		env:   env,
		cpu:   cpu,
		disk:  disk,
		cfg:   cfg.withDefaults(),
		name:  name,
		thAIO: sim.NewThread("bstore_aio-"+name, ThreadCat),
		thKV:  sim.NewThread("bstore_kv-"+name, ThreadCat),
		alloc: newAllocator(cfg.withDefaults().DeviceBytes, cfg.withDefaults().MinAllocSize),
		kv:    newKVStore(),
		colls: make(map[string]*collection),
		aioq:  sim.NewQueue[*txc](env),
		kvq:   sim.NewQueue[*txc](env),
	}
	env.SpawnDaemon("bstore_aio-"+name, func(p *sim.Proc) { s.aioLoop(p) })
	env.SpawnDaemon("bstore_kv-"+name, func(p *sim.Proc) { s.kvLoop(p) })
	return s
}

// Stats returns a copy of the engine counters.
func (s *Store) Stats() Stats { return s.stats }

// SetTracer enables pipeline-stage tracing (nil disables). Only
// transactions carrying a TraceCtx produce spans.
func (s *Store) SetTracer(tr *trace.Tracer) { s.tr = tr }

// SetSlowIO injects extra per-transaction service latency on the aio path
// (a degraded device); zero clears the fault.
func (s *Store) SetSlowIO(extra sim.Duration) { s.slowIO = extra }

// SetWriteErrorProb makes each transaction fail with ErrInjectedWrite with
// probability prob (a transient medium error); zero clears the fault.
func (s *Store) SetWriteErrorProb(prob float64) { s.writeErrProb = prob }

// FreeBytes returns unallocated device capacity.
func (s *Store) FreeBytes() int64 { return s.alloc.free() }

// QueueTransaction implements objstore.Store. Preparation cost is charged to
// the calling process's thread (tp_osd_tp in the baseline, the host RPC/DMA
// server in DoCeph); data and metadata persistence proceed asynchronously on
// the bstore threads.
func (s *Store) QueueTransaction(p *sim.Proc, txn *objstore.Transaction) *objstore.Result {
	prep := s.cpu.ExecSelf(p, s.cfg.PrepCyclesPerOp*int64(len(txn.Ops)))
	res := &objstore.Result{Done: sim.NewEvent(s.env)}
	s.stats.Transactions++
	s.stats.Ops += int64(len(txn.Ops))
	t := &txc{txn: txn, result: res}
	if s.tr.Enabled() && txn.TraceCtx != 0 {
		// Submission prep runs on the caller's thread but belongs to the
		// commit stage the caller opened.
		s.tr.AddCPU(trace.SpanID(txn.TraceCtx), s.cpu.Name(), prep)
		t.span = s.tr.Start(trace.SpanID(txn.TraceCtx), 0, trace.StageAIO, s.name)
		t.enq = s.env.Now()
	}
	s.aioq.Push(t)
	return res
}

// aioLoop is the bstore_aio thread: it streams large write payloads to the
// data device (after checksumming) and forwards the transaction to the
// kv-sync thread.
func (s *Store) aioLoop(p *sim.Proc) {
	p.SetThread(s.thAIO)
	for {
		t := s.aioq.Pop(p)
		if t.span != 0 {
			s.tr.AddQueueWait(t.span, p.Now().Sub(t.enq))
		}
		if s.slowIO > 0 {
			p.Wait(s.slowIO)
			t.result.ServiceTime += s.slowIO
		}
		var directBytes int64
		for i := range t.txn.Ops {
			op := &t.txn.Ops[i]
			if op.Code != objstore.OpWrite || op.Data == nil {
				continue
			}
			if int64(op.Data.Length()) < s.cfg.DeferredThreshold {
				s.stats.DeferredWrites++
				continue // rides the kv WAL write
			}
			s.stats.DirectWrites++
			directBytes += int64(op.Data.Length())
		}
		if directBytes > 0 {
			csum := int64(float64(directBytes) * s.cfg.CsumCyclesPerByte)
			s.tr.AddCPU(t.span, s.cpu.Name(), s.cpu.Exec(p, s.thAIO, csum))
			svc := s.disk.Write(p, directBytes)
			t.result.ServiceTime += svc + s.cpu.CyclesToDuration(csum)
			s.cpu.NoteSwitches(s.thAIO, s.cfg.SwitchesPerAIO)
			s.stats.BytesWritten += directBytes
			s.tr.AddBytes(t.span, directBytes)
		}
		if t.span != 0 {
			s.tr.Finish(t.span)
			t.span = s.tr.Start(trace.SpanID(t.txn.TraceCtx), 0, trace.StageKV, s.name)
			t.enq = p.Now()
		}
		s.kvq.Push(t)
	}
}

// kvLoop is the bstore_kv thread: it batches transactions, applies their
// mutations to the in-memory metadata/KV state, persists the WAL+metadata
// batch, and fires completion events.
func (s *Store) kvLoop(p *sim.Proc) {
	p.SetThread(s.thKV)
	for {
		batch := []*txc{s.kvq.Pop(p)}
		for len(batch) < s.cfg.KVBatchMax {
			t, ok := s.kvq.TryPop()
			if !ok {
				break
			}
			batch = append(batch, t)
		}
		var walBytes int64 = 512 // batch header
		var ops int64
		for _, t := range batch {
			if t.span != 0 {
				s.tr.AddQueueWait(t.span, p.Now().Sub(t.enq))
			}
			var tWal int64
			for i := range t.txn.Ops {
				op := &t.txn.Ops[i]
				ops++
				tWal += 256 // per-op metadata/onode delta
				if op.Code == objstore.OpWrite && op.Data != nil &&
					int64(op.Data.Length()) < s.cfg.DeferredThreshold {
					tWal += int64(op.Data.Length())
				}
			}
			walBytes += tWal
			s.tr.AddBytes(t.span, tWal)
		}
		kvCycles := s.cfg.KVCommitCycles + s.cfg.KVApplyCyclesPerOp*ops
		kvBusy := s.cpu.Exec(p, s.thKV, kvCycles)
		// Each transaction in the batch is attributed an equal share of the
		// sync cycle's CPU (the remainder of the integer split stays
		// unattributed, preserving traced <= busy).
		for _, t := range batch {
			s.tr.AddCPU(t.span, s.cpu.Name(), kvBusy/sim.Duration(len(batch)))
		}
		for _, t := range batch {
			if s.writeErrProb > 0 && s.env.Rand().Float64() < s.writeErrProb {
				s.stats.InjectedErrors++
				t.result.Err = ErrInjectedWrite
				continue
			}
			t.result.Err = s.apply(t.txn)
		}
		walSvc := s.disk.Write(p, walBytes)
		kvShare := (walSvc + s.cpu.CyclesToDuration(kvCycles)) / sim.Duration(len(batch))
		for _, t := range batch {
			t.result.ServiceTime += kvShare
		}
		s.cpu.NoteSwitches(s.thKV, s.cfg.SwitchesPerKVSync)
		s.stats.KVSyncCycles++
		s.stats.BytesWritten += walBytes
		for _, t := range batch {
			s.tr.Finish(t.span)
			t.result.Done.Fire()
		}
	}
}

// apply mutates the in-memory state. The first failing op aborts the rest
// (mirroring Ceph, where a failing ObjectStore transaction is fatal; here we
// surface it as Result.Err so tests can assert on it).
func (s *Store) apply(txn *objstore.Transaction) error {
	for i := range txn.Ops {
		if err := s.applyOp(&txn.Ops[i]); err != nil {
			return fmt.Errorf("bluestore %s: op %d (%v): %w", s.name, i, txn.Ops[i].Code, err)
		}
	}
	return nil
}

func (s *Store) applyOp(op *objstore.Op) error {
	switch op.Code {
	case objstore.OpMkColl:
		if _, dup := s.colls[op.Collection]; dup {
			return fmt.Errorf("collection %q exists", op.Collection)
		}
		s.colls[op.Collection] = &collection{objects: make(map[string]*onode)}
		s.kv.set("C/"+op.Collection, []byte{1})
		return nil
	case objstore.OpRmColl:
		c, ok := s.colls[op.Collection]
		if !ok {
			return objstore.ErrNoCollection
		}
		if len(c.objects) > 0 {
			return fmt.Errorf("collection %q not empty", op.Collection)
		}
		delete(s.colls, op.Collection)
		s.kv.del("C/" + op.Collection)
		return nil
	}

	c, ok := s.colls[op.Collection]
	if !ok {
		return objstore.ErrNoCollection
	}
	switch op.Code {
	case objstore.OpTouch:
		s.getOrCreate(c, op.Collection, op.Object)
		return nil
	case objstore.OpWrite:
		o := s.getOrCreate(c, op.Collection, op.Object)
		return s.writeExtent(o, op.Offset, op.Data)
	case objstore.OpZero:
		o, ok := c.objects[op.Object]
		if !ok {
			return objstore.ErrNotFound
		}
		o.punch(op.Offset, op.Length)
		if op.Offset+op.Length > o.size {
			o.size = op.Offset + op.Length
		}
		o.bump(s.env.Now())
		return nil
	case objstore.OpTruncate:
		o, ok := c.objects[op.Object]
		if !ok {
			return objstore.ErrNotFound
		}
		o.truncate(op.Offset)
		o.bump(s.env.Now())
		return nil
	case objstore.OpRemove:
		o, ok := c.objects[op.Object]
		if !ok {
			return objstore.ErrNotFound
		}
		for _, b := range o.blocks {
			s.alloc.release(b.dev, b.length)
			s.stats.AllocatedBytes -= b.length
		}
		delete(c.objects, op.Object)
		s.kv.del(onodeKey(op.Collection, op.Object))
		return nil
	case objstore.OpSetAttr:
		o, ok := c.objects[op.Object]
		if !ok {
			return objstore.ErrNotFound
		}
		o.attrs[op.AttrName] = op.AttrValue
		o.bump(s.env.Now())
		return nil
	case objstore.OpOmapSet:
		o, ok := c.objects[op.Object]
		if !ok {
			return objstore.ErrNotFound
		}
		if o.omap == nil {
			o.omap = make(map[string][]byte)
		}
		o.omap[op.AttrName] = op.AttrValue
		s.kv.set(omapKey(op.Collection, op.Object, op.AttrName), op.AttrValue)
		o.bump(s.env.Now())
		return nil
	case objstore.OpOmapRm:
		o, ok := c.objects[op.Object]
		if !ok {
			return objstore.ErrNotFound
		}
		delete(o.omap, op.AttrName)
		s.kv.del(omapKey(op.Collection, op.Object, op.AttrName))
		o.bump(s.env.Now())
		return nil
	}
	return fmt.Errorf("unknown op code %d", op.Code)
}

func (s *Store) getOrCreate(c *collection, coll, obj string) *onode {
	o, ok := c.objects[obj]
	if !ok {
		o = &onode{attrs: make(map[string][]byte)}
		c.objects[obj] = o
		s.kv.set(onodeKey(coll, obj), []byte{1})
	}
	return o
}

func (s *Store) writeExtent(o *onode, off uint64, data *wire.Bufferlist) error {
	n := int64(data.Length())
	if n == 0 {
		// Zero-length write: creation/touch semantics only.
		o.bump(s.env.Now())
		return nil
	}
	// Allocate device space rounded to min_alloc_size.
	allocLen := (n + s.cfg.MinAllocSize - 1) / s.cfg.MinAllocSize * s.cfg.MinAllocSize
	dev, err := s.alloc.allocate(allocLen)
	if err != nil {
		return err
	}
	o.blocks = append(o.blocks, blockExtent{dev: dev, length: allocLen})
	s.stats.AllocatedBytes += allocLen
	o.punch(off, uint64(n))
	o.insert(extent{off: off, data: data})
	if off+uint64(n) > o.size {
		o.size = off + uint64(n)
	}
	o.bump(s.env.Now())
	return nil
}

func (o *onode) bump(now sim.Time) {
	o.version++
	o.mtime = now
}

// punch removes [off, off+length) from the extent list, trimming partial
// overlaps.
func (o *onode) punch(off, length uint64) {
	if length == 0 {
		return
	}
	end := off + length
	var out []extent
	for _, e := range o.extents {
		eEnd := e.off + uint64(e.data.Length())
		if eEnd <= off || e.off >= end {
			out = append(out, e)
			continue
		}
		if e.off < off {
			out = append(out, extent{off: e.off, data: e.data.SubList(0, int(off-e.off))})
		}
		if eEnd > end {
			skip := int(end - e.off)
			out = append(out, extent{off: end, data: e.data.SubList(skip, e.data.Length()-skip)})
		}
	}
	o.extents = out
	o.sortExtents()
}

func (o *onode) insert(e extent) {
	o.extents = append(o.extents, e)
	o.sortExtents()
}

func (o *onode) sortExtents() {
	sort.Slice(o.extents, func(i, j int) bool { return o.extents[i].off < o.extents[j].off })
}

func (o *onode) truncate(size uint64) {
	if size < o.size {
		o.punch(size, o.size-size)
	}
	o.size = size
}

// zeroPage backs hole fills in readRange. Read results are never mutated
// (Bufferlist aliasing contract), so every hole can share the one page
// instead of allocating per read.
var zeroPage = make([]byte, 64<<10)

// appendZeros appends n zero bytes to out as views of the shared zero page.
func appendZeros(out *wire.Bufferlist, n uint64) {
	for n > 0 {
		c := n
		if c > uint64(len(zeroPage)) {
			c = uint64(len(zeroPage))
		}
		out.Append(zeroPage[:c])
		n -= c
	}
}

// readRange assembles [off, off+length) from extents, zero-filling holes.
func (o *onode) readRange(off, length uint64) *wire.Bufferlist {
	out := &wire.Bufferlist{}
	pos := off
	end := off + length
	for _, e := range o.extents {
		eEnd := e.off + uint64(e.data.Length())
		if eEnd <= pos || e.off >= end {
			continue
		}
		if e.off > pos {
			appendZeros(out, e.off-pos)
			pos = e.off
		}
		start := pos - e.off
		stop := eEnd
		if stop > end {
			stop = end
		}
		out.AppendBufferlist(e.data.SubList(int(start), int(stop-pos)))
		pos = stop
	}
	if pos < end {
		appendZeros(out, end-pos)
	}
	return out
}

// Read implements objstore.Store.
func (s *Store) Read(p *sim.Proc, coll, obj string, off, length uint64) (*wire.Bufferlist, error) {
	o, err := s.lookup(p, coll, obj)
	if err != nil {
		return nil, err
	}
	if off >= o.size {
		return &wire.Bufferlist{}, nil
	}
	if length == 0 || off+length > o.size {
		length = o.size - off
	}
	s.cpu.ExecSelf(p, int64(float64(length)*s.cfg.ReadCyclesPerByte))
	s.disk.Read(p, int64(length))
	s.stats.BytesRead += int64(length)
	return o.readRange(off, length), nil
}

// Stat implements objstore.Store.
func (s *Store) Stat(p *sim.Proc, coll, obj string) (objstore.StatInfo, error) {
	o, err := s.lookup(p, coll, obj)
	if err != nil {
		return objstore.StatInfo{}, err
	}
	return objstore.StatInfo{Size: o.size, Version: o.version, Mtime: o.mtime}, nil
}

// Exists implements objstore.Store.
func (s *Store) Exists(p *sim.Proc, coll, obj string) bool {
	_, err := s.lookup(p, coll, obj)
	return err == nil
}

// List implements objstore.Store.
func (s *Store) List(p *sim.Proc, coll string) ([]string, error) {
	s.cpu.ExecSelf(p, s.cfg.ReadCyclesPerOp)
	c, ok := s.colls[coll]
	if !ok {
		return nil, objstore.ErrNoCollection
	}
	names := make([]string, 0, len(c.objects))
	for n := range c.objects {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

func (s *Store) lookup(p *sim.Proc, coll, obj string) (*onode, error) {
	s.cpu.ExecSelf(p, s.cfg.ReadCyclesPerOp)
	c, ok := s.colls[coll]
	if !ok {
		return nil, objstore.ErrNoCollection
	}
	o, ok := c.objects[obj]
	if !ok {
		return nil, objstore.ErrNotFound
	}
	return o, nil
}

func onodeKey(coll, obj string) string { return "O/" + coll + "/" + obj }

func omapKey(coll, obj, key string) string { return "M/" + coll + "/" + obj + "/" + key }

// OmapGet implements objstore.Store.
func (s *Store) OmapGet(p *sim.Proc, coll, obj, key string) ([]byte, error) {
	o, err := s.lookup(p, coll, obj)
	if err != nil {
		return nil, err
	}
	v, ok := o.omap[key]
	if !ok {
		return nil, objstore.ErrNotFound
	}
	return v, nil
}

// OmapKeys implements objstore.Store.
func (s *Store) OmapKeys(p *sim.Proc, coll, obj string) ([]string, error) {
	o, err := s.lookup(p, coll, obj)
	if err != nil {
		return nil, err
	}
	keys := make([]string, 0, len(o.omap))
	for k := range o.omap {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys, nil
}

// DataObject names one stored object that holds byte extents.
type DataObject struct {
	Collection string
	Object     string
}

// DataObjects returns every object that currently has data, sorted by
// collection then object — the deterministic candidate set bit-rot
// injection picks from. It is an instantaneous inspection hook (no
// simulated CPU or disk time), like CorruptObject.
func (s *Store) DataObjects() []DataObject {
	var out []DataObject
	for cname, c := range s.colls {
		for oname, o := range c.objects {
			if len(o.extents) > 0 {
				out = append(out, DataObject{Collection: cname, Object: oname})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Collection != out[j].Collection {
			return out[i].Collection < out[j].Collection
		}
		return out[i].Object < out[j].Object
	})
	return out
}

// CorruptObject flips one byte of obj's first extent — a bit-rot injection
// hook for scrub tests. The corrupted extent is re-backed by a private
// clone first, so the shared payload buffers of other replicas stay intact.
func (s *Store) CorruptObject(coll, obj string) error {
	c, ok := s.colls[coll]
	if !ok {
		return objstore.ErrNoCollection
	}
	o, ok := c.objects[obj]
	if !ok {
		return objstore.ErrNotFound
	}
	if len(o.extents) == 0 {
		return fmt.Errorf("bluestore %s: %s/%s has no data to corrupt", s.name, coll, obj)
	}
	clone := o.extents[0].data.Bytes()
	clone[len(clone)/2] ^= 0xFF
	o.extents[0].data = wire.FromBytes(clone)
	return nil
}

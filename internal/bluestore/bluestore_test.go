package bluestore

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"doceph/internal/objstore"
	"doceph/internal/sim"
	"doceph/internal/wire"
)

// newTestStore builds a store on a 3 GHz 4-core CPU and a fast disk.
func newTestStore(cfg Config) (*sim.Env, *Store) {
	env := sim.NewEnv(1)
	cpu := sim.NewCPU(env, "host", 4, 3.0, 2000)
	disk := sim.NewDisk(env, "ssd", 500e6, 1000e6, 20*sim.Microsecond)
	return env, New(env, "s0", cpu, disk, cfg)
}

// runStore executes body as a simulated thread and drives the sim until it
// finishes. The store's service loops never exit, so a deadlock result with
// the body complete is the expected termination.
func runStore(t *testing.T, env *sim.Env, body func(p *sim.Proc)) {
	t.Helper()
	done := false
	env.Spawn("test-body", func(p *sim.Proc) {
		p.SetThread(sim.NewThread("tester", "test"))
		body(p)
		done = true
	})
	err := env.RunUntil(sim.MaxTime)
	if !done {
		t.Fatalf("test body did not finish: %v", err)
	}
	env.Shutdown()
}

func commit(t *testing.T, p *sim.Proc, s *Store, txn *objstore.Transaction) error {
	t.Helper()
	res := s.QueueTransaction(p, txn)
	res.Done.Wait(p)
	return res.Err
}

func mkColl(t *testing.T, p *sim.Proc, s *Store, coll string) {
	t.Helper()
	if err := commit(t, p, s, (&objstore.Transaction{}).MkColl(coll)); err != nil {
		t.Fatalf("mkcoll: %v", err)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	env, s := newTestStore(Config{})
	runStore(t, env, func(p *sim.Proc) {
		mkColl(t, p, s, "pg1")
		payload := []byte("hello bluestore, this is object data")
		txn := (&objstore.Transaction{}).Write("pg1", "obj1", 0, wire.FromBytes(payload))
		if err := commit(t, p, s, txn); err != nil {
			t.Fatalf("commit: %v", err)
		}
		got, err := s.Read(p, "pg1", "obj1", 0, 0)
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		if !bytes.Equal(got.Bytes(), payload) {
			t.Fatalf("got %q want %q", got.Bytes(), payload)
		}
	})
}

func TestWriteAtOffsetZeroFillsHole(t *testing.T) {
	env, s := newTestStore(Config{})
	runStore(t, env, func(p *sim.Proc) {
		mkColl(t, p, s, "c")
		txn := (&objstore.Transaction{}).Write("c", "o", 10, wire.FromBytes([]byte("abc")))
		if err := commit(t, p, s, txn); err != nil {
			t.Fatal(err)
		}
		got, err := s.Read(p, "c", "o", 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		want := append(make([]byte, 10), 'a', 'b', 'c')
		if !bytes.Equal(got.Bytes(), want) {
			t.Fatalf("got %v want %v", got.Bytes(), want)
		}
		st, err := s.Stat(p, "c", "o")
		if err != nil || st.Size != 13 {
			t.Fatalf("stat=%+v err=%v", st, err)
		}
	})
}

func TestPartialOverwrite(t *testing.T) {
	env, s := newTestStore(Config{})
	runStore(t, env, func(p *sim.Proc) {
		mkColl(t, p, s, "c")
		if err := commit(t, p, s,
			(&objstore.Transaction{}).Write("c", "o", 0, wire.FromBytes([]byte("AAAAAAAAAA")))); err != nil {
			t.Fatal(err)
		}
		if err := commit(t, p, s,
			(&objstore.Transaction{}).Write("c", "o", 3, wire.FromBytes([]byte("BBBB")))); err != nil {
			t.Fatal(err)
		}
		got, err := s.Read(p, "c", "o", 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		if string(got.Bytes()) != "AAABBBBAAA" {
			t.Fatalf("got %q", got.Bytes())
		}
	})
}

func TestRangedRead(t *testing.T) {
	env, s := newTestStore(Config{})
	runStore(t, env, func(p *sim.Proc) {
		mkColl(t, p, s, "c")
		if err := commit(t, p, s,
			(&objstore.Transaction{}).Write("c", "o", 0, wire.FromBytes([]byte("0123456789")))); err != nil {
			t.Fatal(err)
		}
		got, err := s.Read(p, "c", "o", 2, 5)
		if err != nil || string(got.Bytes()) != "23456" {
			t.Fatalf("got %q err=%v", got.Bytes(), err)
		}
		// Past EOF reads clamp.
		got, err = s.Read(p, "c", "o", 8, 100)
		if err != nil || string(got.Bytes()) != "89" {
			t.Fatalf("got %q err=%v", got.Bytes(), err)
		}
		got, err = s.Read(p, "c", "o", 50, 10)
		if err != nil || got.Length() != 0 {
			t.Fatalf("past-EOF read len=%d err=%v", got.Length(), err)
		}
	})
}

func TestTruncateAndZero(t *testing.T) {
	env, s := newTestStore(Config{})
	runStore(t, env, func(p *sim.Proc) {
		mkColl(t, p, s, "c")
		if err := commit(t, p, s,
			(&objstore.Transaction{}).Write("c", "o", 0, wire.FromBytes([]byte("0123456789")))); err != nil {
			t.Fatal(err)
		}
		if err := commit(t, p, s, (&objstore.Transaction{}).Truncate("c", "o", 4)); err != nil {
			t.Fatal(err)
		}
		got, _ := s.Read(p, "c", "o", 0, 0)
		if string(got.Bytes()) != "0123" {
			t.Fatalf("after truncate: %q", got.Bytes())
		}
		if err := commit(t, p, s, (&objstore.Transaction{}).Zero("c", "o", 1, 2)); err != nil {
			t.Fatal(err)
		}
		got, _ = s.Read(p, "c", "o", 0, 0)
		if !bytes.Equal(got.Bytes(), []byte{'0', 0, 0, '3'}) {
			t.Fatalf("after zero: %v", got.Bytes())
		}
	})
}

func TestRemoveFreesSpace(t *testing.T) {
	env, s := newTestStore(Config{})
	runStore(t, env, func(p *sim.Proc) {
		mkColl(t, p, s, "c")
		before := s.FreeBytes()
		if err := commit(t, p, s,
			(&objstore.Transaction{}).Write("c", "o", 0, wire.FromBytes(make([]byte, 1<<20)))); err != nil {
			t.Fatal(err)
		}
		if s.FreeBytes() >= before {
			t.Fatal("write did not consume space")
		}
		if err := commit(t, p, s, (&objstore.Transaction{}).Remove("c", "o")); err != nil {
			t.Fatal(err)
		}
		if s.FreeBytes() != before {
			t.Fatalf("free=%d want %d", s.FreeBytes(), before)
		}
		if s.Exists(p, "c", "o") {
			t.Fatal("object still exists")
		}
	})
}

func TestDeferredVsDirectWrites(t *testing.T) {
	env, s := newTestStore(Config{DeferredThreshold: 64 << 10})
	runStore(t, env, func(p *sim.Proc) {
		mkColl(t, p, s, "c")
		if err := commit(t, p, s,
			(&objstore.Transaction{}).Write("c", "small", 0, wire.FromBytes(make([]byte, 4<<10)))); err != nil {
			t.Fatal(err)
		}
		if err := commit(t, p, s,
			(&objstore.Transaction{}).Write("c", "big", 0, wire.FromBytes(make([]byte, 1<<20)))); err != nil {
			t.Fatal(err)
		}
		st := s.Stats()
		if st.DeferredWrites != 1 || st.DirectWrites != 1 {
			t.Fatalf("deferred=%d direct=%d", st.DeferredWrites, st.DirectWrites)
		}
	})
}

func TestKVBatching(t *testing.T) {
	env, s := newTestStore(Config{KVBatchMax: 16})
	runStore(t, env, func(p *sim.Proc) {
		mkColl(t, p, s, "c")
		// Queue many tiny transactions without waiting in between; the kv
		// sync thread should batch them into far fewer cycles.
		var results []*objstore.Result
		for i := 0; i < 64; i++ {
			txn := (&objstore.Transaction{}).Touch("c", "o")
			results = append(results, s.QueueTransaction(p, txn))
		}
		for _, r := range results {
			r.Done.Wait(p)
		}
		st := s.Stats()
		if st.KVSyncCycles >= 64 || st.KVSyncCycles < 1 {
			t.Fatalf("kv cycles=%d for 64 txns, want batching", st.KVSyncCycles)
		}
	})
}

func TestErrorSurfacedViaResult(t *testing.T) {
	env, s := newTestStore(Config{})
	runStore(t, env, func(p *sim.Proc) {
		err := commit(t, p, s,
			(&objstore.Transaction{}).Write("nocoll", "o", 0, wire.FromBytes([]byte("x"))))
		if !errors.Is(err, objstore.ErrNoCollection) {
			t.Fatalf("err=%v", err)
		}
		mkColl(t, p, s, "c")
		if err := commit(t, p, s, (&objstore.Transaction{}).Remove("c", "ghost")); !errors.Is(err, objstore.ErrNotFound) {
			t.Fatalf("err=%v", err)
		}
		if err := commit(t, p, s, (&objstore.Transaction{}).MkColl("c")); err == nil {
			t.Fatal("duplicate mkcoll accepted")
		}
	})
}

func TestRmCollRules(t *testing.T) {
	env, s := newTestStore(Config{})
	runStore(t, env, func(p *sim.Proc) {
		mkColl(t, p, s, "c")
		if err := commit(t, p, s, (&objstore.Transaction{}).Touch("c", "o")); err != nil {
			t.Fatal(err)
		}
		if err := commit(t, p, s, (&objstore.Transaction{}).RmColl("c")); err == nil {
			t.Fatal("rmcoll of non-empty collection accepted")
		}
		if err := commit(t, p, s, (&objstore.Transaction{}).Remove("c", "o")); err != nil {
			t.Fatal(err)
		}
		if err := commit(t, p, s, (&objstore.Transaction{}).RmColl("c")); err != nil {
			t.Fatal(err)
		}
		if err := commit(t, p, s, (&objstore.Transaction{}).RmColl("c")); !errors.Is(err, objstore.ErrNoCollection) {
			t.Fatalf("err=%v", err)
		}
	})
}

func TestSetAttrAndVersionBump(t *testing.T) {
	env, s := newTestStore(Config{})
	runStore(t, env, func(p *sim.Proc) {
		mkColl(t, p, s, "c")
		if err := commit(t, p, s, (&objstore.Transaction{}).Touch("c", "o")); err != nil {
			t.Fatal(err)
		}
		st0, _ := s.Stat(p, "c", "o")
		if err := commit(t, p, s, (&objstore.Transaction{}).SetAttr("c", "o", "snap", []byte("v"))); err != nil {
			t.Fatal(err)
		}
		st1, _ := s.Stat(p, "c", "o")
		if st1.Version <= st0.Version {
			t.Fatalf("version did not advance: %d -> %d", st0.Version, st1.Version)
		}
	})
}

func TestListSorted(t *testing.T) {
	env, s := newTestStore(Config{})
	runStore(t, env, func(p *sim.Proc) {
		mkColl(t, p, s, "c")
		for _, n := range []string{"zeta", "alpha", "mid"} {
			if err := commit(t, p, s, (&objstore.Transaction{}).Touch("c", n)); err != nil {
				t.Fatal(err)
			}
		}
		names, err := s.List(p, "c")
		if err != nil {
			t.Fatal(err)
		}
		want := []string{"alpha", "mid", "zeta"}
		for i := range want {
			if names[i] != want[i] {
				t.Fatalf("names=%v", names)
			}
		}
		if _, err := s.List(p, "ghost"); !errors.Is(err, objstore.ErrNoCollection) {
			t.Fatalf("err=%v", err)
		}
	})
}

func TestENOSPC(t *testing.T) {
	env, s := newTestStore(Config{DeviceBytes: 256 << 10, MinAllocSize: 64 << 10})
	runStore(t, env, func(p *sim.Proc) {
		mkColl(t, p, s, "c")
		err := commit(t, p, s,
			(&objstore.Transaction{}).Write("c", "big", 0, wire.FromBytes(make([]byte, 1<<20))))
		if !errors.Is(err, ErrNoSpace) {
			t.Fatalf("err=%v", err)
		}
	})
}

func TestMultiSegmentPayloadIntegrity(t *testing.T) {
	env, s := newTestStore(Config{})
	runStore(t, env, func(p *sim.Proc) {
		mkColl(t, p, s, "c")
		bl := wire.NewBufferlist([]byte("part1-"), []byte("part2-"), []byte("part3"))
		wantCRC := bl.CRC32C()
		if err := commit(t, p, s, (&objstore.Transaction{}).Write("c", "o", 0, bl)); err != nil {
			t.Fatal(err)
		}
		got, err := s.Read(p, "c", "o", 0, 0)
		if err != nil || got.CRC32C() != wantCRC {
			t.Fatalf("crc %08x want %08x err=%v", got.CRC32C(), wantCRC, err)
		}
	})
}

// Property test: a random sequence of write/zero/truncate ops matches a flat
// []byte reference model.
func TestQuickRandomOpsMatchReference(t *testing.T) {
	env, s := newTestStore(Config{})
	runStore(t, env, func(p *sim.Proc) {
		mkColl(t, p, s, "c")
		r := rand.New(rand.NewSource(99))
		ref := []byte{}
		const maxLen = 4096
		grow := func(n int) {
			if n > len(ref) {
				ref = append(ref, make([]byte, n-len(ref))...)
			}
		}
		for i := 0; i < 120; i++ {
			off := r.Intn(maxLen / 2)
			n := 1 + r.Intn(maxLen/2)
			switch r.Intn(3) {
			case 0: // write
				data := make([]byte, n)
				for j := range data {
					data[j] = byte(r.Intn(256))
				}
				if err := commit(t, p, s,
					(&objstore.Transaction{}).Write("c", "o", uint64(off), wire.FromBytes(data))); err != nil {
					t.Fatal(err)
				}
				grow(off + n)
				copy(ref[off:], data)
			case 1: // zero
				if err := commit(t, p, s,
					(&objstore.Transaction{}).Zero("c", "o", uint64(off), uint64(n))); err != nil {
					if errors.Is(err, objstore.ErrNotFound) {
						continue
					}
					t.Fatal(err)
				}
				grow(off + n)
				for j := off; j < off+n; j++ {
					ref[j] = 0
				}
			case 2: // truncate
				sz := r.Intn(maxLen)
				if err := commit(t, p, s,
					(&objstore.Transaction{}).Truncate("c", "o", uint64(sz))); err != nil {
					if errors.Is(err, objstore.ErrNotFound) {
						continue
					}
					t.Fatal(err)
				}
				if sz < len(ref) {
					ref = ref[:sz]
				} else {
					grow(sz)
				}
			}
			got, err := s.Read(p, "c", "o", 0, 0)
			if err != nil {
				if errors.Is(err, objstore.ErrNotFound) && len(ref) == 0 {
					continue
				}
				t.Fatal(err)
			}
			if !bytes.Equal(got.Bytes(), ref) {
				t.Fatalf("iteration %d: store diverged from reference (len %d vs %d)",
					i, got.Length(), len(ref))
			}
		}
	})
}

func TestAllocatorFirstFitAndCoalesce(t *testing.T) {
	a := newAllocator(1<<20, 1<<10)
	o1, err := a.allocate(4 << 10)
	if err != nil || o1 != 0 {
		t.Fatalf("o1=%d err=%v", o1, err)
	}
	o2, _ := a.allocate(4 << 10)
	o3, _ := a.allocate(4 << 10)
	if o2 != 4<<10 || o3 != 8<<10 {
		t.Fatalf("o2=%d o3=%d", o2, o3)
	}
	a.release(o1, 4<<10)
	a.release(o2, 4<<10) // coalesces with o1
	got, err := a.allocate(8 << 10)
	if err != nil || got != 0 {
		t.Fatalf("coalesced alloc got=%d err=%v", got, err)
	}
	free := a.free()
	a.release(got, 8<<10)
	if a.free() != free+8<<10 {
		t.Fatal("free accounting")
	}
}

func TestAllocatorTailFoldsIntoBump(t *testing.T) {
	a := newAllocator(1<<20, 1<<10)
	o1, _ := a.allocate(4 << 10)
	o2, _ := a.allocate(4 << 10)
	a.release(o2, 4<<10) // tail: folds into bump
	if len(a.freeList) != 0 || a.bump != 4<<10 {
		t.Fatalf("freeList=%v bump=%d", a.freeList, a.bump)
	}
	a.release(o1, 4<<10)
	if a.bump != 0 {
		t.Fatalf("bump=%d", a.bump)
	}
}

func TestAllocatorExhaustion(t *testing.T) {
	a := newAllocator(8<<10, 1<<10)
	if _, err := a.allocate(16 << 10); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("err=%v", err)
	}
	if _, err := a.allocate(8 << 10); err != nil {
		t.Fatal(err)
	}
	if _, err := a.allocate(1 << 10); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("err=%v", err)
	}
}

func TestKVStorePrefixScan(t *testing.T) {
	kv := newKVStore()
	kv.set("O/c/b", nil)
	kv.set("O/c/a", nil)
	kv.set("C/c", nil)
	keys := kv.keysWithPrefix("O/c/")
	if len(keys) != 2 || keys[0] != "O/c/a" || keys[1] != "O/c/b" {
		t.Fatalf("keys=%v", keys)
	}
	kv.del("O/c/a")
	if _, ok := kv.get("O/c/a"); ok {
		t.Fatal("deleted key present")
	}
	if v, ok := kv.get("C/c"); !ok || v != nil {
		t.Fatal("get")
	}
}

func TestTransactionEncodeDecode(t *testing.T) {
	txn := (&objstore.Transaction{}).
		MkColl("c").
		Write("c", "o", 128, wire.FromBytes([]byte("payload"))).
		SetAttr("c", "o", "k", []byte("v")).
		Truncate("c", "o", 64).
		Remove("c", "o")
	e := wire.NewEncoder(256)
	txn.Encode(e)
	got, err := objstore.DecodeTransaction(wire.NewDecoder(e.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Ops) != len(txn.Ops) {
		t.Fatalf("ops=%d want %d", len(got.Ops), len(txn.Ops))
	}
	for i := range got.Ops {
		a, b := got.Ops[i], txn.Ops[i]
		if a.Code != b.Code || a.Collection != b.Collection || a.Object != b.Object ||
			a.Offset != b.Offset || a.AttrName != b.AttrName {
			t.Fatalf("op %d: %+v vs %+v", i, a, b)
		}
	}
	if string(got.Ops[1].Data.Bytes()) != "payload" {
		t.Fatal("payload mismatch")
	}
	if got.DataBytes() != txn.DataBytes() {
		t.Fatal("DataBytes mismatch")
	}
}

func TestOmapSetGetKeysRm(t *testing.T) {
	env, s := newTestStore(Config{})
	runStore(t, env, func(p *sim.Proc) {
		mkColl(t, p, s, "c")
		txn := (&objstore.Transaction{}).
			Touch("c", "o").
			OmapSet("c", "o", "zeta", []byte("1")).
			OmapSet("c", "o", "alpha", []byte("2"))
		if err := commit(t, p, s, txn); err != nil {
			t.Fatal(err)
		}
		v, err := s.OmapGet(p, "c", "o", "alpha")
		if err != nil || string(v) != "2" {
			t.Fatalf("get=%q err=%v", v, err)
		}
		keys, err := s.OmapKeys(p, "c", "o")
		if err != nil || len(keys) != 2 || keys[0] != "alpha" || keys[1] != "zeta" {
			t.Fatalf("keys=%v err=%v", keys, err)
		}
		if err := commit(t, p, s, (&objstore.Transaction{}).OmapRm("c", "o", "zeta")); err != nil {
			t.Fatal(err)
		}
		if _, err := s.OmapGet(p, "c", "o", "zeta"); !errors.Is(err, objstore.ErrNotFound) {
			t.Fatalf("err=%v", err)
		}
		if _, err := s.OmapGet(p, "c", "ghost", "k"); !errors.Is(err, objstore.ErrNotFound) {
			t.Fatalf("err=%v", err)
		}
		if err := commit(t, p, s, (&objstore.Transaction{}).OmapSet("c", "ghost", "k", nil)); !errors.Is(err, objstore.ErrNotFound) {
			t.Fatalf("omapset on missing object: %v", err)
		}
	})
}

func TestOmapPersistedInKV(t *testing.T) {
	env, s := newTestStore(Config{})
	runStore(t, env, func(p *sim.Proc) {
		mkColl(t, p, s, "c")
		txn := (&objstore.Transaction{}).Touch("c", "o").OmapSet("c", "o", "k", []byte("v"))
		if err := commit(t, p, s, txn); err != nil {
			t.Fatal(err)
		}
		if v, ok := s.kv.get("M/c/o/k"); !ok || string(v) != "v" {
			t.Fatalf("kv mirror missing: %q %v", v, ok)
		}
	})
}

// Property: for any sequence of allocate/release pairs, the allocator never
// double-allocates overlapping extents and conserves free space.
func TestQuickAllocatorNoOverlapConservation(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := newAllocator(1<<22, 1<<10)
		type ext struct{ off, n int64 }
		var live []ext
		total := a.free()
		for step := 0; step < 200; step++ {
			if r.Intn(2) == 0 || len(live) == 0 {
				n := int64(1+r.Intn(8)) << 10
				off, err := a.allocate(n)
				if err != nil {
					continue
				}
				for _, e := range live {
					if off < e.off+e.n && e.off < off+n {
						return false // overlap!
					}
				}
				live = append(live, ext{off, n})
			} else {
				i := r.Intn(len(live))
				a.release(live[i].off, live[i].n)
				live = append(live[:i], live[i+1:]...)
			}
		}
		var held int64
		for _, e := range live {
			held += e.n
		}
		return a.free()+held == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

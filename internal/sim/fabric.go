package sim

import "fmt"

// Fabric models an Ethernet switch fabric connecting named nodes. Each node
// owns one full-duplex NIC (independent tx and rx directions). A transfer
// occupies the sender's tx path and the receiver's rx path simultaneously
// (cut-through), serialized at the slower of the two NICs, then experiences
// the fabric's propagation latency. Contention therefore appears both when
// one node fans out to many peers (tx-bound) and when many peers converge on
// one node (rx-bound), which is what shapes the paper's incast-style
// replication traffic.
type Fabric struct {
	env     *Env
	name    string
	Latency Duration
	nodes   map[string]*nic
}

type nic struct {
	bytesPerSec float64
	txFree      Time
	rxFree      Time
	txBytes     int64
	rxBytes     int64
}

// NewFabric returns an empty fabric with the given propagation latency.
func NewFabric(env *Env, name string, latency Duration) *Fabric {
	return &Fabric{env: env, name: name, Latency: latency, nodes: make(map[string]*nic)}
}

// AddNode attaches a node with a NIC of the given line rate (bytes/second).
// Adding the same node twice replaces its NIC.
func (f *Fabric) AddNode(node string, bytesPerSec float64) {
	f.nodes[node] = &nic{bytesPerSec: bytesPerSec}
}

// HasNode reports whether node is attached.
func (f *Fabric) HasNode(node string) bool { _, ok := f.nodes[node]; return ok }

// Transfer blocks p while bytes move from src to dst and returns the arrival
// instant. It panics if either endpoint is unknown (wiring bug).
func (f *Fabric) Transfer(p *Proc, src, dst string, bytes int64) Time {
	s, ok := f.nodes[src]
	if !ok {
		panic(fmt.Sprintf("sim: fabric %q: unknown src node %q", f.name, src))
	}
	d, ok := f.nodes[dst]
	if !ok {
		panic(fmt.Sprintf("sim: fabric %q: unknown dst node %q", f.name, dst))
	}
	bw := s.bytesPerSec
	if d.bytesPerSec < bw {
		bw = d.bytesPerSec
	}
	ser := Duration(float64(bytes) / bw * float64(Second))
	start := maxTime(f.env.now, maxTime(s.txFree, d.rxFree))
	end := start.Add(ser)
	s.txFree, d.rxFree = end, end
	s.txBytes += bytes
	d.rxBytes += bytes
	arrive := end.Add(f.Latency)
	p.WaitUntil(arrive)
	return arrive
}

// TxBytes returns total bytes node has transmitted.
func (f *Fabric) TxBytes(node string) int64 {
	if n := f.nodes[node]; n != nil {
		return n.txBytes
	}
	return 0
}

// RxBytes returns total bytes node has received.
func (f *Fabric) RxBytes(node string) int64 {
	if n := f.nodes[node]; n != nil {
		return n.rxBytes
	}
	return 0
}

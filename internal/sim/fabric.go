package sim

import "fmt"

// Fabric models an Ethernet switch fabric connecting named nodes. Each node
// owns one full-duplex NIC (independent tx and rx directions). A transfer
// occupies the sender's tx path and the receiver's rx path simultaneously
// (cut-through), serialized at the slower of the two NICs, then experiences
// the fabric's propagation latency. Contention therefore appears both when
// one node fans out to many peers (tx-bound) and when many peers converge on
// one node (rx-bound), which is what shapes the paper's incast-style
// replication traffic.
//
// The fabric also carries the network half of the fault-injection surface
// (package faultinject): per-node drop probability, added latency, bandwidth
// degradation and partition groups, all evaluated deterministically against
// the environment's seeded random stream.
type Fabric struct {
	env     *Env
	name    string
	Latency Duration
	nodes   map[string]*nic

	dropped int64
}

type nic struct {
	bytesPerSec float64
	txFree      Time
	rxFree      Time
	txBytes     int64
	rxBytes     int64

	// Fault state (zero values = healthy).
	dropProb     float64
	extraLatency Duration
	bwFactor     float64 // 0 means 1.0 (no degradation)
	partition    int     // nonzero groups only reach their own group
}

// NewFabric returns an empty fabric with the given propagation latency.
func NewFabric(env *Env, name string, latency Duration) *Fabric {
	return &Fabric{env: env, name: name, Latency: latency, nodes: make(map[string]*nic)}
}

// AddNode attaches a node with a NIC of the given line rate (bytes/second).
// Adding the same node twice replaces its NIC.
func (f *Fabric) AddNode(node string, bytesPerSec float64) {
	f.nodes[node] = &nic{bytesPerSec: bytesPerSec}
}

// HasNode reports whether node is attached.
func (f *Fabric) HasNode(node string) bool { _, ok := f.nodes[node]; return ok }

// Nodes returns the number of attached nodes.
func (f *Fabric) Nodes() int { return len(f.nodes) }

func (f *Fabric) mustNode(role, node string) *nic {
	n, ok := f.nodes[node]
	if !ok {
		panic(fmt.Sprintf("sim: fabric %q: unknown %s node %q", f.name, role, node))
	}
	return n
}

// SetDropProb sets the probability that a frame touching node (as sender or
// receiver) is lost in flight. 0 restores lossless delivery.
func (f *Fabric) SetDropProb(node string, p float64) {
	f.mustNode("fault", node).dropProb = p
}

// SetExtraLatency adds d of propagation latency to every frame touching
// node (a latency spike). 0 restores the base latency.
func (f *Fabric) SetExtraLatency(node string, d Duration) {
	f.mustNode("fault", node).extraLatency = d
}

// SetBandwidthFactor scales node's NIC line rate by factor (0 < factor <= 1
// degrades; 0 restores full rate).
func (f *Fabric) SetBandwidthFactor(node string, factor float64) {
	f.mustNode("fault", node).bwFactor = factor
}

// SetPartitionGroup assigns node to a partition group. Frames between nodes
// in different groups are dropped; group 0 (the default) communicates with
// everyone, modelling a partial partition that isolates a set of nodes.
func (f *Fabric) SetPartitionGroup(node string, group int) {
	f.mustNode("fault", node).partition = group
}

// ClearFaults restores every node to the healthy state.
func (f *Fabric) ClearFaults() {
	for _, n := range f.nodes {
		n.dropProb = 0
		n.extraLatency = 0
		n.bwFactor = 0
		n.partition = 0
	}
}

// DroppedFrames returns how many transfers the fault layer has discarded.
func (f *Fabric) DroppedFrames() int64 { return f.dropped }

func partitioned(s, d *nic) bool {
	return s.partition != 0 && d.partition != 0 && s.partition != d.partition
}

func (n *nic) effectiveRate() float64 {
	if n.bwFactor > 0 && n.bwFactor < 1 {
		return n.bytesPerSec * n.bwFactor
	}
	return n.bytesPerSec
}

// Transfer blocks p while bytes move from src to dst and returns the arrival
// instant. It panics if either endpoint is unknown (wiring bug). Injected
// faults are ignored: the frame is always delivered (legacy lossless path;
// transports that can recover use TransferFrame).
func (f *Fabric) Transfer(p *Proc, src, dst string, bytes int64) Time {
	arrive, _ := f.transfer(p, src, dst, bytes, false)
	return arrive
}

// TransferFrame is Transfer under the fault model: the frame still occupies
// the NICs (a lost frame burns wire time before the loss is detected), but
// delivered reports whether it actually arrived. Drops come from the
// per-node drop probability (evaluated on the env's seeded random stream)
// and from partition groups, so runs are reproducible.
func (f *Fabric) TransferFrame(p *Proc, src, dst string, bytes int64) (arrive Time, delivered bool) {
	return f.transfer(p, src, dst, bytes, true)
}

func (f *Fabric) transfer(p *Proc, src, dst string, bytes int64, faulty bool) (Time, bool) {
	s := f.mustNode("src", src)
	d := f.mustNode("dst", dst)
	bw := s.effectiveRate()
	if r := d.effectiveRate(); r < bw {
		bw = r
	}
	ser := Duration(float64(bytes) / bw * float64(Second))
	start := maxTime(f.env.now, maxTime(s.txFree, d.rxFree))
	end := start.Add(ser)
	s.txFree, d.rxFree = end, end
	s.txBytes += bytes
	d.rxBytes += bytes
	arrive := end.Add(f.Latency + s.extraLatency + d.extraLatency)
	if faulty {
		drop := partitioned(s, d)
		if !drop {
			if pr := s.dropProb + d.dropProb; pr > 0 && f.env.rng.Float64() < pr {
				drop = true
			}
		}
		if drop {
			f.dropped++
			p.WaitUntil(arrive)
			return arrive, false
		}
	}
	p.WaitUntil(arrive)
	return arrive, true
}

// TxBytes returns total bytes node has transmitted.
func (f *Fabric) TxBytes(node string) int64 {
	if n := f.nodes[node]; n != nil {
		return n.txBytes
	}
	return 0
}

// RxBytes returns total bytes node has received.
func (f *Fabric) RxBytes(node string) int64 {
	if n := f.nodes[node]; n != nil {
		return n.rxBytes
	}
	return 0
}

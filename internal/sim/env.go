package sim

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// wakeToken is a single-use wakeup permit for a parked Proc. A Proc about to
// block creates one token and registers it with every path that may resume it
// (a timer, a queue push, an event fire). The first path to reach the kernel
// wins; the rest find the token spent and are ignored. This is what makes
// timeouts composable with every blocking primitive.
//
// Tokens are pooled: refs counts live registrations (heap entries plus
// waiter-list entries). Every registration site increments refs and every
// site that drops a registration calls Env.dropRef; a spent token whose last
// registration is dropped returns to the free list. A token may therefore
// never be recycled while any waiter list can still observe it.
type wakeToken struct {
	p     *Proc
	spent bool
	refs  int32
}

type event struct {
	t   Time
	seq uint64
	tok *wakeToken
}

func (a event) before(b event) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	return a.seq < b.seq
}

// eventHeap is a 4-ary array-indexed min-heap ordered by (t, seq). It stores
// events by value (no interface boxing, so Push/Pop never allocate beyond
// amortized slice growth) and is flatter than a binary heap, which matters
// because pops dominate: each pop sifts down through at most log4(n) levels.
type eventHeap struct {
	a []event
}

func (h *eventHeap) len() int { return len(h.a) }

func (h *eventHeap) push(ev event) {
	h.a = append(h.a, ev)
	i := len(h.a) - 1
	for i > 0 {
		parent := (i - 1) >> 2
		if !h.a[i].before(h.a[parent]) {
			break
		}
		h.a[i], h.a[parent] = h.a[parent], h.a[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	a := h.a
	min := a[0]
	last := len(a) - 1
	a[0] = a[last]
	a[last] = event{} // release the token pointer
	a = a[:last]
	h.a = a
	i := 0
	for {
		first := i<<2 + 1
		if first >= last {
			break
		}
		m := first
		end := first + 4
		if end > last {
			end = last
		}
		for c := first + 1; c < end; c++ {
			if a[c].before(a[m]) {
				m = c
			}
		}
		if !a[m].before(a[i]) {
			break
		}
		a[i], a[m] = a[m], a[i]
		i = m
	}
	return min
}

type resumeMsg struct {
	kill bool
}

type procState int

const (
	stateNew procState = iota
	stateRunning
	stateBlocked
	stateDone
	// stateFree marks a proc whose body has returned and whose goroutine is
	// parked in the reuse pool awaiting the next Spawn.
	stateFree
)

// errKilled is the panic sentinel used by Shutdown to unwind parked procs.
type killSignal struct{}

// Proc is a simulated thread of control. All blocking operations on the
// simulation (Wait, queue pops, CPU execution, transfers) take the Proc as
// the identity of the caller; a Proc must only be used from its own body.
//
// Procs (and their goroutines and resume channels) are pooled: when a body
// returns, the proc parks in a free list and the next Spawn reuses it. A
// *Proc must therefore not be retained past the return of its body.
type Proc struct {
	env    *Env
	name   string
	fn     func(*Proc)
	resume chan resumeMsg
	state  procState
	thread *Thread
	daemon bool
	// idx is the proc's position in env.procs (swap-removed on completion).
	idx int
}

// Name returns the name the process was spawned with.
func (p *Proc) Name() string { return p.name }

// Thread returns the OS-thread identity attached to this process (may be
// nil for pure coordination processes).
func (p *Proc) Thread() *Thread { return p.thread }

// SetThread attaches an OS-thread identity used by CPU cost accounting when
// callees charge work to "the calling thread".
func (p *Proc) SetThread(th *Thread) { p.thread = th }

// Env returns the environment the process belongs to.
func (p *Proc) Env() *Env { return p.env }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.env.now }

// Env is a discrete-event simulation environment: a virtual clock, an event
// queue and the set of live processes. Create one with NewEnv, spawn
// processes, then call Run or RunUntil from the host goroutine. Env is not
// safe for concurrent use from multiple host goroutines.
//
// Scheduling uses direct handoff: the goroutine that is ceding control (a
// parking or finishing proc, or the kernel entering RunUntil) pops the next
// event itself and resumes its owner over that proc's channel. Control only
// returns to the kernel goroutine when the heap is exhausted or the next
// event lies beyond the current run limit, so a RunUntil interval costs one
// kernel round-trip instead of two channel operations per event. Exactly one
// goroutine runs at a time; every transfer of control is a channel rendezvous
// (or stays within the same goroutine on the park fast path), which keeps the
// event order — and with it every simulated result — identical to the
// classic kernel-centric loop.
type Env struct {
	now    Time
	seq    uint64
	heap   eventHeap
	limit  Time
	yield  chan struct{}
	rng    *rand.Rand
	live   int
	procs  []*Proc
	events uint64

	procFree []*Proc
	tokFree  []*wakeToken
}

// NewEnv returns an environment whose random stream is seeded with seed.
func NewEnv(seed int64) *Env {
	return &Env{
		yield: make(chan struct{}),
		rng:   rand.New(rand.NewSource(seed)),
		limit: MaxTime,
	}
}

// Now returns the current virtual time.
func (e *Env) Now() Time { return e.now }

// Rand returns the environment's deterministic random stream. It must only
// be used from simulation processes (or before Run), never concurrently.
func (e *Env) Rand() *rand.Rand { return e.rng }

// getToken takes a token from the pool (or allocates one) for p.
func (e *Env) getToken(p *Proc) *wakeToken {
	if n := len(e.tokFree); n > 0 {
		tok := e.tokFree[n-1]
		e.tokFree = e.tokFree[:n-1]
		tok.p, tok.spent, tok.refs = p, false, 0
		return tok
	}
	return &wakeToken{p: p}
}

// dropRef releases one registration of tok (heap entry or waiter-list
// entry). A spent token with no registrations left can never be observed
// again and returns to the pool.
func (e *Env) dropRef(tok *wakeToken) {
	tok.refs--
	if tok.refs == 0 && tok.spent {
		tok.p = nil
		e.tokFree = append(e.tokFree, tok)
	}
}

// schedule enqueues tok to fire at time at (>= now).
func (e *Env) schedule(tok *wakeToken, at Time) {
	if at < e.now {
		at = e.now
	}
	e.seq++
	tok.refs++
	e.heap.push(event{t: at, seq: e.seq, tok: tok})
}

// next pops events until it can return the proc owning the next live event.
// It returns nil when the heap is exhausted or the next live event lies
// beyond the run limit (the event is left in the heap). Must only be called
// by the goroutine currently holding control.
func (e *Env) next() *Proc {
	for e.heap.len() > 0 {
		if tok := e.heap.a[0].tok; tok.spent {
			e.heap.pop()
			e.dropRef(tok)
			continue
		}
		if e.heap.a[0].t > e.limit {
			return nil
		}
		ev := e.heap.pop()
		e.now = ev.t
		ev.tok.spent = true
		e.events++
		p := ev.tok.p
		e.dropRef(ev.tok)
		return p
	}
	return nil
}

// handoff transfers control to the owner of the next event — or back to the
// kernel goroutine when there is none runnable. It returns true (without any
// channel operation) when self is itself the next to run: the caller keeps
// control. Called by a goroutine that is ceding control.
func (e *Env) handoff(self *Proc) bool {
	next := e.next()
	if next == nil {
		e.yield <- struct{}{}
		return false
	}
	if next == self {
		return true
	}
	next.resume <- resumeMsg{}
	return false
}

// SpawnDaemon creates a service-loop process that is expected to block
// forever once the system goes idle (messenger workers, storage threads,
// pollers). Daemons are excluded from deadlock detection: a run whose only
// remaining blocked processes are daemons terminates cleanly.
func (e *Env) SpawnDaemon(name string, fn func(*Proc)) *Proc {
	p := e.Spawn(name, fn)
	p.daemon = true
	return p
}

// Spawn creates a new process running fn and schedules it to start at the
// current virtual time. It may be called before Run or from inside a running
// process. Finished procs (goroutine and channel included) are reused.
func (e *Env) Spawn(name string, fn func(*Proc)) *Proc {
	var p *Proc
	if n := len(e.procFree); n > 0 {
		p = e.procFree[n-1]
		e.procFree = e.procFree[:n-1]
		p.name, p.fn = name, fn
		p.state = stateNew
		p.thread = nil
		p.daemon = false
	} else {
		p = &Proc{env: e, name: name, fn: fn, resume: make(chan resumeMsg)}
		go p.loop()
	}
	p.idx = len(e.procs)
	e.procs = append(e.procs, p)
	e.live++
	e.schedule(e.getToken(p), e.now)
	return p
}

// loop is the body of a proc goroutine: run a spawned function, recycle the
// proc, park until the next reuse. One goroutine serves many Spawns.
func (p *Proc) loop() {
	e := p.env
	for {
		msg := <-p.resume
		if msg.kill {
			if p.state == stateNew {
				e.live--
			}
			p.state = stateDone
			e.yield <- struct{}{}
			return
		}
		p.state = stateRunning
		if p.run() {
			return // killed mid-body during Shutdown
		}
	}
}

// run executes the proc body once and reports whether the proc was killed.
// On normal completion it recycles the proc and hands control to the next
// event's owner.
func (p *Proc) run() (killed bool) {
	e := p.env
	func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(killSignal); !ok {
					panic(r)
				}
				killed = true
			}
		}()
		p.fn(p)
	}()
	e.live--
	p.state = stateDone
	if killed {
		e.yield <- struct{}{}
		return true
	}
	// Swap-remove from the live list and recycle.
	lastIdx := len(e.procs) - 1
	lastProc := e.procs[lastIdx]
	e.procs[p.idx] = lastProc
	lastProc.idx = p.idx
	e.procs[lastIdx] = nil
	e.procs = e.procs[:lastIdx]
	p.fn = nil
	p.thread = nil
	p.state = stateFree
	e.procFree = append(e.procFree, p)
	e.handoff(nil)
	return false
}

// park yields control to the kernel until one of the proc's registered wake
// tokens fires. Fast path: when the next event in the heap is the proc's
// own (typical for plain Waits), park pops it and returns without touching
// any channel.
func (p *Proc) park() {
	p.state = stateBlocked
	if p.env.handoff(p) {
		p.state = stateRunning
		return
	}
	msg := <-p.resume
	if msg.kill {
		panic(killSignal{})
	}
	p.state = stateRunning
}

// newToken creates a fresh single-use wake token for this proc.
func (p *Proc) newToken() *wakeToken { return p.env.getToken(p) }

// Wait blocks the process for duration d of virtual time.
func (p *Proc) Wait(d Duration) {
	if d < 0 {
		d = 0
	}
	tok := p.newToken()
	p.env.schedule(tok, p.env.now.Add(d))
	p.park()
}

// WaitUntil blocks the process until the virtual instant t (no-op if t has
// passed).
func (p *Proc) WaitUntil(t Time) {
	if t <= p.env.now {
		return
	}
	p.Wait(t.Sub(p.env.now))
}

// Yield reschedules the process at the current instant, letting every other
// process that is ready at the same time run first.
func (p *Proc) Yield() { p.Wait(0) }

// PartitionState is the diagnostic snapshot of one partition at the moment
// a deadlock was detected. Serial runs report a single partition; the
// partitioned kernel (Group) reports one entry per member, so a stall in a
// parallel run shows which partition is parked, where its clock stopped and
// whether cross-partition messages were delivered but never consumed.
type PartitionState struct {
	// Name is the partition name ("env" for a serial run).
	Name string
	// Now is the partition's local clock when the run stopped.
	Now Time
	// Parked lists the non-daemon procs blocked forever, sorted.
	Parked []string
	// Daemons counts parked daemon procs (excluded from detection).
	Daemons int
	// Pending counts cross-partition messages sitting in this partition's
	// link inboxes, delivered but never received by any proc.
	Pending int
}

// DeadlockError reports that live processes remain but no event can ever
// wake them. Partitions carries the per-partition breakdown; Blocked stays
// the flat list of stuck proc names (prefixed "partition/" in parallel
// runs) for callers that only want the summary.
type DeadlockError struct {
	Time       Time
	Blocked    []string
	Partitions []PartitionState
}

func (e DeadlockError) Error() string {
	if len(e.Partitions) <= 1 {
		return fmt.Sprintf("sim: deadlock at %v: %d proc(s) blocked forever: %s",
			e.Time, len(e.Blocked), strings.Join(e.Blocked, ", "))
	}
	var b strings.Builder
	fmt.Fprintf(&b, "sim: deadlock at %v: %d proc(s) blocked forever across %d partitions",
		e.Time, len(e.Blocked), len(e.Partitions))
	for _, ps := range e.Partitions {
		fmt.Fprintf(&b, "\n  partition %s @ %v: parked=[%s] daemons=%d pending-msgs=%d",
			ps.Name, ps.Now, strings.Join(ps.Parked, ", "), ps.Daemons, ps.Pending)
	}
	return b.String()
}

// Run executes events until no process remains. It returns a DeadlockError
// if live processes are blocked with an empty event queue.
func (e *Env) Run() error { return e.RunUntil(MaxTime) }

// RunUntil executes events with timestamps <= limit. On return the clock is
// at limit (or at the completion instant if everything finished earlier).
// Processes still blocked at the limit are left parked; use Shutdown to
// reclaim them. A DeadlockError is returned if, before the limit, live
// processes remain with an empty event queue.
func (e *Env) RunUntil(limit Time) error {
	if !e.runWindow(limit) {
		return nil
	}
	parked, daemons := e.blockedState()
	if len(parked) > 0 {
		return DeadlockError{Time: e.now, Blocked: parked, Partitions: []PartitionState{
			{Name: "env", Now: e.now, Parked: parked, Daemons: daemons},
		}}
	}
	return nil
}

// runWindow executes events with timestamps <= limit and reports whether
// the heap drained completely (false means live events remain beyond the
// limit and the clock was advanced to it). Unlike RunUntil it performs no
// deadlock detection: the partitioned kernel calls it for each safe window,
// where an empty heap with parked procs just means the partition is waiting
// for cross-partition messages.
func (e *Env) runWindow(limit Time) (drained bool) {
	e.limit = limit
	for {
		p := e.next()
		if p == nil {
			if e.heap.len() > 0 {
				// Next live event is beyond the limit; leave it queued.
				e.now = limit
				return false
			}
			return true
		}
		p.resume <- resumeMsg{}
		// Control comes back only when the handoff chain exhausts the heap
		// or reaches the limit; re-check which on the next iteration.
		<-e.yield
	}
}

// blockedState returns the sorted names of non-daemon procs parked or never
// started, plus the number of parked daemons.
func (e *Env) blockedState() (parked []string, daemons int) {
	for _, p := range e.procs {
		if p.state != stateBlocked && p.state != stateNew {
			continue
		}
		if p.daemon {
			daemons++
			continue
		}
		parked = append(parked, p.name)
	}
	sort.Strings(parked)
	return parked, daemons
}

// NextEventTime returns the timestamp of the earliest live event, popping
// any spent tokens it skims past. ok is false when no live event remains.
// It must only be called while the environment is not running (between
// windows or before Run).
func (e *Env) NextEventTime() (t Time, ok bool) {
	for e.heap.len() > 0 {
		if tok := e.heap.a[0].tok; tok.spent {
			e.heap.pop()
			e.dropRef(tok)
			continue
		}
		return e.heap.a[0].t, true
	}
	return 0, false
}

// advanceTo moves the clock forward to t without executing anything. The
// partitioned kernel uses it to align member clocks at the run limit.
func (e *Env) advanceTo(t Time) {
	if t > e.now {
		e.now = t
	}
}

// Shutdown force-terminates every process that is still parked or never
// started — including the pooled goroutines of finished procs — releasing
// their goroutines. The environment must not be used afterwards.
func (e *Env) Shutdown() {
	procs := append([]*Proc(nil), e.procs...)
	for _, p := range procs {
		if p.state == stateBlocked || p.state == stateNew {
			p.resume <- resumeMsg{kill: true}
			<-e.yield
		}
	}
	for _, p := range e.procFree {
		p.resume <- resumeMsg{kill: true}
		<-e.yield
	}
	e.procFree = nil
}

// LiveProcs returns the number of processes that have not finished.
func (e *Env) LiveProcs() int { return e.live }

// Events returns the total number of events fired since the environment was
// created (spent tokens skipped by the kernel are not counted). It is the
// numerator of the simulator's events/sec throughput metric.
func (e *Env) Events() uint64 { return e.events }

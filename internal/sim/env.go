package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// wakeToken is a single-use wakeup permit for a parked Proc. A Proc about to
// block creates one token and registers it with every path that may resume it
// (a timer, a queue push, an event fire). The first path to reach the kernel
// wins; the rest find the token spent and are ignored. This is what makes
// timeouts composable with every blocking primitive.
type wakeToken struct {
	p     *Proc
	spent bool
}

type event struct {
	t   Time
	seq uint64
	tok *wakeToken
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	*h = old[:n-1]
	return ev
}

type yieldKind int

const (
	yieldBlocked yieldKind = iota
	yieldDone
)

type resumeMsg struct {
	kill bool
}

type procState int

const (
	stateNew procState = iota
	stateRunning
	stateBlocked
	stateDone
)

// errKilled is the panic sentinel used by Shutdown to unwind parked procs.
type killSignal struct{}

// Proc is a simulated thread of control. All blocking operations on the
// simulation (Wait, queue pops, CPU execution, transfers) take the Proc as
// the identity of the caller; a Proc must only be used from its own body.
type Proc struct {
	env    *Env
	name   string
	resume chan resumeMsg
	state  procState
	thread *Thread
	daemon bool
}

// Name returns the name the process was spawned with.
func (p *Proc) Name() string { return p.name }

// Thread returns the OS-thread identity attached to this process (may be
// nil for pure coordination processes).
func (p *Proc) Thread() *Thread { return p.thread }

// SetThread attaches an OS-thread identity used by CPU cost accounting when
// callees charge work to "the calling thread".
func (p *Proc) SetThread(th *Thread) { p.thread = th }

// Env returns the environment the process belongs to.
func (p *Proc) Env() *Env { return p.env }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.env.now }

// Env is a discrete-event simulation environment: a virtual clock, an event
// queue and the set of live processes. Create one with NewEnv, spawn
// processes, then call Run or RunUntil from the host goroutine. Env is not
// safe for concurrent use from multiple host goroutines.
type Env struct {
	now   Time
	seq   uint64
	heap  eventHeap
	yield chan yieldKind
	rng   *rand.Rand
	live  int
	procs []*Proc
}

// NewEnv returns an environment whose random stream is seeded with seed.
func NewEnv(seed int64) *Env {
	return &Env{
		yield: make(chan yieldKind),
		rng:   rand.New(rand.NewSource(seed)),
	}
}

// Now returns the current virtual time.
func (e *Env) Now() Time { return e.now }

// Rand returns the environment's deterministic random stream. It must only
// be used from simulation processes (or before Run), never concurrently.
func (e *Env) Rand() *rand.Rand { return e.rng }

// schedule enqueues tok to fire at time at (>= now).
func (e *Env) schedule(tok *wakeToken, at Time) {
	if at < e.now {
		at = e.now
	}
	e.seq++
	heap.Push(&e.heap, event{t: at, seq: e.seq, tok: tok})
}

// SpawnDaemon creates a service-loop process that is expected to block
// forever once the system goes idle (messenger workers, storage threads,
// pollers). Daemons are excluded from deadlock detection: a run whose only
// remaining blocked processes are daemons terminates cleanly.
func (e *Env) SpawnDaemon(name string, fn func(*Proc)) *Proc {
	p := e.Spawn(name, fn)
	p.daemon = true
	return p
}

// Spawn creates a new process running fn and schedules it to start at the
// current virtual time. It may be called before Run or from inside a running
// process.
func (e *Env) Spawn(name string, fn func(*Proc)) *Proc {
	p := &Proc{env: e, name: name, resume: make(chan resumeMsg)}
	e.live++
	e.procs = append(e.procs, p)
	go func() {
		msg := <-p.resume
		if msg.kill {
			p.state = stateDone
			e.yield <- yieldDone
			return
		}
		p.state = stateRunning
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(killSignal); !ok {
					panic(r)
				}
			}
			p.state = stateDone
			e.yield <- yieldDone
		}()
		fn(p)
	}()
	tok := &wakeToken{p: p}
	e.schedule(tok, e.now)
	return p
}

// park yields control to the kernel until one of the proc's registered wake
// tokens fires.
func (p *Proc) park() {
	p.state = stateBlocked
	p.env.yield <- yieldBlocked
	msg := <-p.resume
	if msg.kill {
		panic(killSignal{})
	}
	p.state = stateRunning
}

// newToken creates a fresh single-use wake token for this proc.
func (p *Proc) newToken() *wakeToken { return &wakeToken{p: p} }

// Wait blocks the process for duration d of virtual time.
func (p *Proc) Wait(d Duration) {
	if d < 0 {
		d = 0
	}
	tok := p.newToken()
	p.env.schedule(tok, p.env.now.Add(d))
	p.park()
}

// WaitUntil blocks the process until the virtual instant t (no-op if t has
// passed).
func (p *Proc) WaitUntil(t Time) {
	if t <= p.env.now {
		return
	}
	p.Wait(t.Sub(p.env.now))
}

// Yield reschedules the process at the current instant, letting every other
// process that is ready at the same time run first.
func (p *Proc) Yield() { p.Wait(0) }

// DeadlockError reports that live processes remain but no event can ever
// wake them.
type DeadlockError struct {
	Time    Time
	Blocked []string
}

func (e DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at %v: %d proc(s) blocked forever: %s",
		e.Time, len(e.Blocked), strings.Join(e.Blocked, ", "))
}

// Run executes events until no process remains. It returns a DeadlockError
// if live processes are blocked with an empty event queue.
func (e *Env) Run() error { return e.RunUntil(MaxTime) }

// RunUntil executes events with timestamps <= limit. On return the clock is
// at limit (or at the completion instant if everything finished earlier).
// Processes still blocked at the limit are left parked; use Shutdown to
// reclaim them. A DeadlockError is returned if, before the limit, live
// processes remain with an empty event queue.
func (e *Env) RunUntil(limit Time) error {
	for len(e.heap) > 0 {
		ev := heap.Pop(&e.heap).(event)
		if ev.tok.spent {
			continue
		}
		if ev.t > limit {
			heap.Push(&e.heap, ev)
			e.now = limit
			return nil
		}
		e.now = ev.t
		ev.tok.spent = true
		p := ev.tok.p
		p.resume <- resumeMsg{}
		if k := <-e.yield; k == yieldDone {
			e.live--
		}
	}
	var blocked []string
	for _, p := range e.procs {
		if p.daemon {
			continue
		}
		if p.state == stateBlocked || p.state == stateNew {
			blocked = append(blocked, p.name)
		}
	}
	if len(blocked) > 0 {
		sort.Strings(blocked)
		return DeadlockError{Time: e.now, Blocked: blocked}
	}
	return nil
}

// Shutdown force-terminates every process that is still parked or never
// started, releasing their goroutines. The environment must not be used
// afterwards.
func (e *Env) Shutdown() {
	for _, p := range e.procs {
		if p.state == stateBlocked || p.state == stateNew {
			p.resume <- resumeMsg{kill: true}
			if k := <-e.yield; k == yieldDone {
				e.live--
			}
		}
	}
}

// LiveProcs returns the number of processes that have not finished.
func (e *Env) LiveProcs() int { return e.live }

package sim

import "fmt"

// Time is an absolute instant of virtual time, in nanoseconds since the
// start of the simulation.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration int64

// Convenient duration units.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// MaxTime is the largest representable instant; RunUntil(MaxTime) runs the
// simulation to completion.
const MaxTime = Time(1<<63 - 1)

// Seconds converts a float number of seconds into a Duration.
func Seconds(s float64) Duration { return Duration(s * float64(Second)) }

// Micros converts a float number of microseconds into a Duration.
func Micros(us float64) Duration { return Duration(us * float64(Microsecond)) }

// Add returns the instant d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the span from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds reports t as float seconds since simulation start.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Seconds reports d as float seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Millis reports d as float milliseconds.
func (d Duration) Millis() float64 { return float64(d) / float64(Millisecond) }

func (t Time) String() string     { return fmt.Sprintf("%.6fs", t.Seconds()) }
func (d Duration) String() string { return fmt.Sprintf("%.6fs", d.Seconds()) }

func maxTime(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

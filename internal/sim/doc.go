// Package sim implements a deterministic discrete-event simulation kernel
// used as the substrate for the DoCeph reproduction.
//
// The kernel is process-oriented: every simulated thread of control (a Ceph
// messenger worker, an OSD op thread, a DMA polling loop, a benchmark client)
// is a goroutine wrapped in a Proc. Exactly one Proc executes at any moment;
// control is handed between the kernel and processes through per-process
// channels, and pending wakeups are ordered by (virtual time, sequence
// number). Runs are therefore bit-deterministic for a given seed regardless
// of GOMAXPROCS, and safe under the race detector.
//
// On top of the kernel the package provides the contended resource models the
// experiments are measured against:
//
//   - CPU: a multi-core, FCFS, non-preemptive processor with per-thread cycle
//     accounting and context-switch costs/counters (the basis of the paper's
//     Figure 5, Figure 7 and Table 2).
//   - Pipe: a serialized bandwidth+latency channel used for Ethernet links
//     and PCIe DMA paths (Figures 6, 8, 10).
//   - Disk: a bandwidth+per-IO-latency block device (the PM893 SSD model).
//
// Virtual time is measured in integer nanoseconds (Time/Duration) and never
// depends on the wall clock.
package sim

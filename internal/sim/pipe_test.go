package sim

import (
	"math"
	"testing"
)

func TestPipeSerialization(t *testing.T) {
	env := NewEnv(1)
	// 1 GB/s, 1us latency: 1000 bytes = 1us ser + 1us lat = 2us.
	pipe := NewPipe(env, "link", 1e9, Microsecond)
	env.Spawn("p", func(p *Proc) {
		pipe.Transfer(p, 1000)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if env.Now() != Time(2*Microsecond) {
		t.Fatalf("now=%v", env.Now())
	}
	if pipe.BytesMoved() != 1000 || pipe.Transfers() != 1 {
		t.Fatalf("bytes=%d transfers=%d", pipe.BytesMoved(), pipe.Transfers())
	}
}

func TestPipeFIFOQueueing(t *testing.T) {
	env := NewEnv(1)
	pipe := NewPipe(env, "link", 1e9, 0)
	var done []Time
	for i := 0; i < 3; i++ {
		env.Spawn("p", func(p *Proc) {
			pipe.Transfer(p, 1000)
			done = append(done, p.Now())
		})
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	// Serialized back-to-back: 1us, 2us, 3us.
	want := []Time{Time(Microsecond), Time(2 * Microsecond), Time(3 * Microsecond)}
	for i := range want {
		if done[i] != want[i] {
			t.Fatalf("done=%v", done)
		}
	}
}

func TestPipeIdleGap(t *testing.T) {
	env := NewEnv(1)
	pipe := NewPipe(env, "link", 1e9, 0)
	var second Time
	env.Spawn("p", func(p *Proc) {
		pipe.Transfer(p, 1000)
		p.Wait(10 * Microsecond) // let the pipe go idle
		pipe.Transfer(p, 1000)
		second = p.Now()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if second != Time(12*Microsecond) {
		t.Fatalf("second=%v want 12us", second)
	}
}

func TestPipeWindowThroughput(t *testing.T) {
	env := NewEnv(1)
	pipe := NewPipe(env, "link", 1e9, 0)
	env.Spawn("p", func(p *Proc) {
		pipe.Transfer(p, 500)
		pipe.ResetStats()
		pipe.Transfer(p, 1000)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	// 1000 bytes in the 1us window after reset => 1e9 B/s.
	if math.Abs(pipe.WindowThroughput()-1e9) > 1 {
		t.Fatalf("thr=%v", pipe.WindowThroughput())
	}
}

func TestDiskWriteReadAccounting(t *testing.T) {
	env := NewEnv(1)
	// 100 MB/s write, 200 MB/s read, 10us per IO.
	d := NewDisk(env, "ssd", 100e6, 200e6, 10*Microsecond)
	env.Spawn("p", func(p *Proc) {
		d.Write(p, 1_000_000) // 10ms stream + 10us
		d.Read(p, 1_000_000)  // 5ms stream + 10us
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	want := Time(10*Millisecond + 5*Millisecond + 20*Microsecond)
	if env.Now() != want {
		t.Fatalf("now=%v want %v", env.Now(), want)
	}
	if d.BytesWritten() != 1_000_000 || d.BytesRead() != 1_000_000 {
		t.Fatalf("w=%d r=%d", d.BytesWritten(), d.BytesRead())
	}
	if d.Writes() != 1 || d.Reads() != 1 {
		t.Fatalf("writes=%d reads=%d", d.Writes(), d.Reads())
	}
}

func TestDiskSerializesConcurrentIO(t *testing.T) {
	env := NewEnv(1)
	d := NewDisk(env, "ssd", 1e9, 1e9, 0)
	var done []Time
	for i := 0; i < 2; i++ {
		env.Spawn("p", func(p *Proc) {
			d.Write(p, 1000)
			done = append(done, p.Now())
		})
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if done[0] != Time(Microsecond) || done[1] != Time(2*Microsecond) {
		t.Fatalf("done=%v", done)
	}
}

package sim

import "testing"

// BenchmarkKernelEventThroughput measures raw event-processing rate: two
// processes ping-ponging through a queue.
func BenchmarkKernelEventThroughput(b *testing.B) {
	env := NewEnv(1)
	q := NewQueue[int](env)
	r := NewQueue[int](env)
	env.SpawnDaemon("echo", func(p *Proc) {
		for {
			r.Push(q.Pop(p))
		}
	})
	done := false
	env.Spawn("driver", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			q.Push(i)
			_ = r.Pop(p)
		}
		done = true
	})
	b.ResetTimer()
	if err := env.RunUntil(MaxTime); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	if !done {
		b.Fatal("driver did not finish")
	}
	env.Shutdown()
}

// BenchmarkCPUExec measures the contended-CPU fast path.
func BenchmarkCPUExec(b *testing.B) {
	env := NewEnv(1)
	cpu := NewCPU(env, "c", 4, 3.0, 2000)
	th := NewThread("w", "work")
	env.Spawn("driver", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			cpu.Exec(p, th, 1000)
		}
	})
	b.ResetTimer()
	if err := env.RunUntil(MaxTime); err != nil {
		b.Fatal(err)
	}
	env.Shutdown()
}

package sim

// Pipe is a serialized bandwidth+latency channel: transfers are transmitted
// strictly in arrival order at BytesPerSec, then experience a fixed
// propagation Latency. It models one direction of an Ethernet link or a
// PCIe DMA path. Because the kernel is single-threaded, the busy-until
// arithmetic needs no locking.
type Pipe struct {
	env  *Env
	name string

	BytesPerSec float64
	Latency     Duration

	freeAt      Time
	bytesMoved  int64
	transfers   int64
	windowStart Time
	windowBytes int64
}

// NewPipe returns a pipe with the given bandwidth (bytes/second) and
// propagation latency.
func NewPipe(env *Env, name string, bytesPerSec float64, latency Duration) *Pipe {
	return &Pipe{env: env, name: name, BytesPerSec: bytesPerSec, Latency: latency}
}

// Name returns the pipe's name.
func (pp *Pipe) Name() string { return pp.name }

// Transfer blocks p for queueing + serialization + propagation of a message
// of the given size and returns the instant the last byte arrived.
func (pp *Pipe) Transfer(p *Proc, bytes int64) Time {
	ser := Duration(float64(bytes) / pp.BytesPerSec * float64(Second))
	start := maxTime(pp.env.now, pp.freeAt)
	pp.freeAt = start.Add(ser)
	pp.bytesMoved += bytes
	pp.windowBytes += bytes
	pp.transfers++
	arrive := pp.freeAt.Add(pp.Latency)
	p.WaitUntil(arrive)
	return arrive
}

// SerializationTime returns the pure transmission time for a message of the
// given size, ignoring queueing and latency.
func (pp *Pipe) SerializationTime(bytes int64) Duration {
	return Duration(float64(bytes) / pp.BytesPerSec * float64(Second))
}

// BytesMoved returns the total bytes ever transferred.
func (pp *Pipe) BytesMoved() int64 { return pp.bytesMoved }

// Transfers returns the total number of Transfer calls.
func (pp *Pipe) Transfers() int64 { return pp.transfers }

// ResetStats starts a fresh throughput window at the current instant.
func (pp *Pipe) ResetStats() {
	pp.windowStart = pp.env.now
	pp.windowBytes = 0
}

// WindowThroughput returns bytes/second moved in the current window.
func (pp *Pipe) WindowThroughput() float64 {
	w := pp.env.now.Sub(pp.windowStart).Seconds()
	if w <= 0 {
		return 0
	}
	return float64(pp.windowBytes) / w
}

// Disk is a block device model: each operation pays a fixed per-IO latency
// and is serialized against the device's bandwidth (distinct read and write
// rates). It approximates the sequential behaviour of a SATA SSD under the
// large-block workloads the paper uses.
type Disk struct {
	env  *Env
	name string

	WriteBytesPerSec float64
	ReadBytesPerSec  float64
	PerIOLatency     Duration

	freeAt       Time
	bytesWritten int64
	bytesRead    int64
	writes       int64
	reads        int64
}

// NewDisk returns a disk with the given sequential write/read bandwidths
// (bytes/second) and per-IO latency.
func NewDisk(env *Env, name string, writeBPS, readBPS float64, perIOLat Duration) *Disk {
	return &Disk{
		env: env, name: name,
		WriteBytesPerSec: writeBPS, ReadBytesPerSec: readBPS,
		PerIOLatency: perIOLat,
	}
}

// Name returns the disk's name.
func (d *Disk) Name() string { return d.name }

// Write blocks p while a write of the given size queues, seeks and streams,
// returning the pure service time (excluding queueing).
func (d *Disk) Write(p *Proc, bytes int64) Duration {
	svc := d.io(p, bytes, d.WriteBytesPerSec)
	d.bytesWritten += bytes
	d.writes++
	return svc
}

// Read blocks p while a read of the given size queues, seeks and streams,
// returning the pure service time (excluding queueing).
func (d *Disk) Read(p *Proc, bytes int64) Duration {
	svc := d.io(p, bytes, d.ReadBytesPerSec)
	d.bytesRead += bytes
	d.reads++
	return svc
}

func (d *Disk) io(p *Proc, bytes int64, bps float64) Duration {
	ser := d.PerIOLatency + Duration(float64(bytes)/bps*float64(Second))
	start := maxTime(d.env.now, d.freeAt)
	d.freeAt = start.Add(ser)
	p.WaitUntil(d.freeAt)
	return ser
}

// BytesWritten returns total bytes written.
func (d *Disk) BytesWritten() int64 { return d.bytesWritten }

// BytesRead returns total bytes read.
func (d *Disk) BytesRead() int64 { return d.bytesRead }

// Writes returns the number of write IOs.
func (d *Disk) Writes() int64 { return d.writes }

// Reads returns the number of read IOs.
func (d *Disk) Reads() int64 { return d.reads }

package sim

import "testing"

func TestFabricBasicTransfer(t *testing.T) {
	env := NewEnv(1)
	f := NewFabric(env, "eth", Microsecond)
	f.AddNode("a", 1e9)
	f.AddNode("b", 1e9)
	env.Spawn("p", func(p *Proc) {
		f.Transfer(p, "a", "b", 1000) // 1us ser + 1us lat
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if env.Now() != Time(2*Microsecond) {
		t.Fatalf("now=%v", env.Now())
	}
	if f.TxBytes("a") != 1000 || f.RxBytes("b") != 1000 {
		t.Fatalf("tx=%d rx=%d", f.TxBytes("a"), f.RxBytes("b"))
	}
}

func TestFabricSlowerNICBounds(t *testing.T) {
	env := NewEnv(1)
	f := NewFabric(env, "eth", 0)
	f.AddNode("fast", 1e9)
	f.AddNode("slow", 1e8) // 10x slower
	env.Spawn("p", func(p *Proc) {
		f.Transfer(p, "fast", "slow", 1000)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if env.Now() != Time(10*Microsecond) {
		t.Fatalf("now=%v want 10us", env.Now())
	}
}

func TestFabricTxContention(t *testing.T) {
	env := NewEnv(1)
	f := NewFabric(env, "eth", 0)
	f.AddNode("src", 1e9)
	f.AddNode("d1", 1e9)
	f.AddNode("d2", 1e9)
	var done []Time
	for _, dst := range []string{"d1", "d2"} {
		d := dst
		env.Spawn("p", func(p *Proc) {
			f.Transfer(p, "src", d, 1000)
			done = append(done, p.Now())
		})
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	// Shared tx NIC: serialized at 1us and 2us.
	if done[0] != Time(Microsecond) || done[1] != Time(2*Microsecond) {
		t.Fatalf("done=%v", done)
	}
}

func TestFabricRxIncast(t *testing.T) {
	env := NewEnv(1)
	f := NewFabric(env, "eth", 0)
	f.AddNode("s1", 1e9)
	f.AddNode("s2", 1e9)
	f.AddNode("dst", 1e9)
	var done []Time
	for _, src := range []string{"s1", "s2"} {
		s := src
		env.Spawn("p", func(p *Proc) {
			f.Transfer(p, s, "dst", 1000)
			done = append(done, p.Now())
		})
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if done[0] != Time(Microsecond) || done[1] != Time(2*Microsecond) {
		t.Fatalf("done=%v", done)
	}
}

func TestFabricDisjointPairsParallel(t *testing.T) {
	env := NewEnv(1)
	f := NewFabric(env, "eth", 0)
	for _, n := range []string{"a", "b", "c", "d"} {
		f.AddNode(n, 1e9)
	}
	var done []Time
	env.Spawn("p1", func(p *Proc) {
		f.Transfer(p, "a", "b", 1000)
		done = append(done, p.Now())
	})
	env.Spawn("p2", func(p *Proc) {
		f.Transfer(p, "c", "d", 1000)
		done = append(done, p.Now())
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	// Disjoint pairs proceed in parallel: both complete at 1us.
	if done[0] != Time(Microsecond) || done[1] != Time(Microsecond) {
		t.Fatalf("done=%v", done)
	}
}

func TestFabricUnknownNodePanics(t *testing.T) {
	env := NewEnv(1)
	f := NewFabric(env, "eth", 0)
	f.AddNode("a", 1e9)
	env.Spawn("p", func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic")
			}
		}()
		f.Transfer(p, "a", "ghost", 10)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

package sim

// Thread identifies a simulated OS thread executing on a CPU. Cat groups
// threads into the accounting categories the paper's perf methodology uses
// ("msgr-worker", "bstore", "tp_osd_tp", ...).
type Thread struct {
	Name string
	Cat  string
}

// NewThread returns a thread with the given name and accounting category.
func NewThread(name, cat string) *Thread { return &Thread{Name: name, Cat: cat} }

// CPUStats is a snapshot of a CPU's accounting counters since the last
// ResetStats.
type CPUStats struct {
	WindowStart Time
	WindowEnd   Time
	// BusyByCat is accumulated execution time (including context-switch
	// overhead) per thread category.
	BusyByCat map[string]Duration
	// SwitchesByCat counts voluntary context switches recorded via
	// NoteSwitches (blocking syscalls, futex waits) — the quantity the
	// paper's Table 2 compares.
	SwitchesByCat map[string]int64
	// CoreSwitchesByCat counts involuntary thread changes observed on the
	// cores themselves.
	CoreSwitchesByCat map[string]int64
	TotalBusy         Duration
	Cores             int
}

// Utilization returns total busy time over total core time, in [0,1]
// (assuming no oversubscription beyond the core count).
func (s CPUStats) Utilization() float64 {
	window := s.WindowEnd.Sub(s.WindowStart)
	if window <= 0 || s.Cores == 0 {
		return 0
	}
	return s.TotalBusy.Seconds() / (window.Seconds() * float64(s.Cores))
}

// UtilizationOfCat returns the busy share of one category over total core
// time in [0,1].
func (s CPUStats) UtilizationOfCat(cat string) float64 {
	window := s.WindowEnd.Sub(s.WindowStart)
	if window <= 0 || s.Cores == 0 {
		return 0
	}
	return s.BusyByCat[cat].Seconds() / (window.Seconds() * float64(s.Cores))
}

// ShareOfCat returns cat's fraction of total busy time in [0,1].
func (s CPUStats) ShareOfCat(cat string) float64 {
	if s.TotalBusy <= 0 {
		return 0
	}
	return s.BusyByCat[cat].Seconds() / s.TotalBusy.Seconds()
}

// CPU is a multi-core, FCFS, non-preemptive processor model. Exec acquires a
// core, charges cycles (translated to virtual time by the clock frequency),
// and releases the core. When a core picks up a thread different from the one
// it last ran, a context-switch cost is charged and counted.
type CPU struct {
	env  *Env
	name string

	// FreqGHz is the core clock: cycles per nanosecond.
	FreqGHz float64
	// CtxSwitchCycles is charged whenever a core changes threads.
	CtxSwitchCycles int64

	cores     []coreState
	freeCores []int
	waiters   []cpuWaiter

	windowStart  Time
	busyByCat    map[string]Duration
	switches     map[string]int64
	coreSwitches map[string]int64
	totalBusy    Duration
	// bgLoad is a constant background occupancy per category, in cores
	// (e.g. 0.05 = 5% of one core). It models busy-polling threads without
	// generating millions of idle-tick events; Stats folds it in as
	// coresWorth * window of busy time.
	bgLoad map[string]float64
}

type coreState struct {
	last *Thread
}

type cpuWaiter struct {
	tok  *wakeToken
	core *int
}

// NewCPU returns a CPU with the given core count and clock frequency.
func NewCPU(env *Env, name string, cores int, freqGHz float64, ctxSwitchCycles int64) *CPU {
	c := &CPU{
		env:             env,
		name:            name,
		FreqGHz:         freqGHz,
		CtxSwitchCycles: ctxSwitchCycles,
		cores:           make([]coreState, cores),
		busyByCat:       make(map[string]Duration),
		switches:        make(map[string]int64),
		coreSwitches:    make(map[string]int64),
		bgLoad:          make(map[string]float64),
	}
	for i := cores - 1; i >= 0; i-- {
		c.freeCores = append(c.freeCores, i)
	}
	return c
}

// Name returns the CPU's name.
func (c *CPU) Name() string { return c.name }

// Cores returns the core count.
func (c *CPU) Cores() int { return len(c.cores) }

// CyclesToDuration converts a cycle count to virtual time at this clock.
func (c *CPU) CyclesToDuration(cycles int64) Duration {
	return Duration(float64(cycles) / c.FreqGHz)
}

// Exec runs th on this CPU for the given number of cycles, blocking p for
// queueing (if all cores are busy) plus execution time. It returns the busy
// time charged (including any context-switch overhead) so callers can
// attribute the occupancy, e.g. to a trace span.
func (c *CPU) Exec(p *Proc, th *Thread, cycles int64) Duration {
	if cycles <= 0 {
		return 0
	}
	core := c.acquire(p)
	total := cycles
	if c.cores[core].last != th {
		if c.cores[core].last != nil {
			total += c.CtxSwitchCycles
			c.coreSwitches[th.Cat]++
		}
		c.cores[core].last = th
	}
	d := c.CyclesToDuration(total)
	c.busyByCat[th.Cat] += d
	c.totalBusy += d
	p.Wait(d)
	c.release(core)
	return d
}

// ExecSelf charges cycles to the thread identity attached to p (see
// Proc.SetThread) and returns the busy time charged. It panics if p has no
// thread — that is a wiring bug.
func (c *CPU) ExecSelf(p *Proc, cycles int64) Duration {
	th := p.Thread()
	if th == nil {
		panic("sim: ExecSelf on proc " + p.Name() + " with no thread identity")
	}
	return c.Exec(p, th, cycles)
}

// ExecDuration is Exec with the work expressed directly as time at this
// clock (cycles = d * FreqGHz).
func (c *CPU) ExecDuration(p *Proc, th *Thread, d Duration) Duration {
	return c.Exec(p, th, int64(float64(d)*c.FreqGHz))
}

// NoteSwitches records n voluntary context switches (e.g. blocking syscall
// boundaries) for th's category without consuming core time.
func (c *CPU) NoteSwitches(th *Thread, n int64) {
	c.switches[th.Cat] += n
}

func (c *CPU) acquire(p *Proc) int {
	if n := len(c.freeCores); n > 0 {
		core := c.freeCores[n-1]
		c.freeCores = c.freeCores[:n-1]
		return core
	}
	tok := p.newToken()
	tok.refs++
	core := -1
	c.waiters = append(c.waiters, cpuWaiter{tok: tok, core: &core})
	p.park()
	return core
}

func (c *CPU) release(core int) {
	for len(c.waiters) > 0 {
		w := c.waiters[0]
		c.waiters = c.waiters[1:]
		if w.tok.spent {
			c.env.dropRef(w.tok)
			continue
		}
		*w.core = core
		c.env.schedule(w.tok, c.env.now)
		c.env.dropRef(w.tok)
		return
	}
	c.freeCores = append(c.freeCores, core)
}

// SetBackgroundLoad registers a constant polling-style occupancy for cat,
// expressed in cores (0.05 = 5% of one core). Accounted analytically in
// Stats rather than via idle-tick events.
func (c *CPU) SetBackgroundLoad(cat string, coresWorth float64) {
	c.bgLoad[cat] = coresWorth
}

// ResetStats starts a fresh accounting window at the current instant
// (used to discard benchmark warmup).
func (c *CPU) ResetStats() {
	c.windowStart = c.env.now
	c.busyByCat = make(map[string]Duration)
	c.switches = make(map[string]int64)
	c.coreSwitches = make(map[string]int64)
	c.totalBusy = 0
}

// Stats returns a copy of the accounting counters for the current window.
func (c *CPU) Stats() CPUStats {
	busy := make(map[string]Duration, len(c.busyByCat))
	for k, v := range c.busyByCat {
		busy[k] = v
	}
	total := c.totalBusy
	window := c.env.now.Sub(c.windowStart)
	for cat, cores := range c.bgLoad {
		d := Duration(cores * float64(window))
		busy[cat] += d
		total += d
	}
	sw := make(map[string]int64, len(c.switches))
	for k, v := range c.switches {
		sw[k] = v
	}
	csw := make(map[string]int64, len(c.coreSwitches))
	for k, v := range c.coreSwitches {
		csw[k] = v
	}
	return CPUStats{
		WindowStart:       c.windowStart,
		WindowEnd:         c.env.now,
		BusyByCat:         busy,
		SwitchesByCat:     sw,
		CoreSwitchesByCat: csw,
		TotalBusy:         total,
		Cores:             len(c.cores),
	}
}

package sim

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// pingPong builds a two-partition group exchanging numbered messages and
// returns a fingerprint of everything observable: receive instants,
// payload order, event counts and final clocks.
func pingPong(t *testing.T, workers, rounds int) string {
	t.Helper()
	g := NewGroup()
	a := NewEnv(1)
	b := NewEnv(2)
	pa := g.Add("a", a)
	pb := g.Add("b", b)
	ab := g.Connect("a->b", pa, pb, 10*Microsecond)
	ba := g.Connect("b->a", pb, pa, 7*Microsecond)

	var log []string
	a.Spawn("pinger", func(p *Proc) {
		for i := 0; i < rounds; i++ {
			p.Wait(3 * Microsecond)
			ab.Send(p, i)
			m := ba.Recv(p)
			log = append(log, fmt.Sprintf("a@%v got %v (link=%d seq=%d at=%v)", p.Now(), m.Payload, m.Link, m.Seq, m.At))
		}
	})
	b.Spawn("ponger", func(p *Proc) {
		for i := 0; i < rounds; i++ {
			m := ab.Recv(p)
			if p.Now() != m.At {
				t.Errorf("delivery at %v, stamped %v", p.Now(), m.At)
			}
			log = append(log, fmt.Sprintf("b@%v got %v", p.Now(), m.Payload))
			ba.Send(p, m.Payload.(int)*10)
		}
	})
	if err := g.Run(workers, MaxTime); err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	fp := fmt.Sprintf("%s | events=%d,%d now=%v,%v delivered=%d rounds>0=%v",
		strings.Join(log, "; "), a.Events(), b.Events(), a.Now(), b.Now(),
		g.Stats().Delivered, g.Stats().Rounds > 0)
	g.Shutdown()
	return fp
}

func TestGroupPingPongDeterministicAcrossWorkers(t *testing.T) {
	want := pingPong(t, 1, 20)
	if !strings.Contains(want, "b@0.000013s got 0") {
		t.Fatalf("first delivery missing or mistimed: %s", want)
	}
	for _, workers := range []int{2, 4, 8} {
		if got := pingPong(t, workers, 20); got != want {
			t.Fatalf("workers=%d diverged:\n got %s\nwant %s", workers, got, want)
		}
	}
	// Run-twice determinism at the same worker count.
	if got := pingPong(t, 2, 20); got != pingPong(t, 2, 20) {
		t.Fatal("same-config reruns diverged")
	}
}

func TestGroupTieBreakByLinkThenSeq(t *testing.T) {
	g := NewGroup()
	a := NewEnv(1)
	b := NewEnv(2)
	c := NewEnv(3)
	pa, pb, pc := g.Add("a", a), g.Add("b", b), g.Add("c", c)
	// Two links into c with latencies arranged so messages sent at the
	// same relative offsets collide at the same arrival instant.
	ac := g.Connect("a->c", pa, pc, 10*Microsecond)
	bc := g.Connect("b->c", pb, pc, 10*Microsecond)

	a.Spawn("sa", func(p *Proc) {
		ac.Send(p, "a0")
		ac.Send(p, "a1") // same instant, same link: seq breaks the tie
	})
	b.Spawn("sb", func(p *Proc) {
		bc.Send(p, "b0") // same instant, higher link id: delivered after a's
	})
	// All three messages arrive at the same instant. The kernel delivers
	// them in (arrival, link, seq) order, so parked receivers wake in that
	// order too — observable through the shared log.
	var got []string
	c.Spawn("rc-a", func(p *Proc) {
		for i := 0; i < 2; i++ {
			m := ac.Recv(p)
			got = append(got, fmt.Sprintf("%v@%v", m.Payload, p.Now()))
		}
	})
	c.Spawn("rc-b", func(p *Proc) {
		m := bc.Recv(p)
		got = append(got, fmt.Sprintf("%v@%v", m.Payload, p.Now()))
	})
	if err := g.Run(2, MaxTime); err != nil {
		t.Fatal(err)
	}
	want := []string{"a0@0.000010s", "a1@0.000010s", "b0@0.000010s"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
	g.Shutdown()
}

func TestGroupRunUntilLimitAlignsClocks(t *testing.T) {
	g := NewGroup()
	a := NewEnv(1)
	b := NewEnv(2)
	pa, pb := g.Add("a", a), g.Add("b", b)
	g.Connect("a->b", pa, pb, Microsecond)
	a.SpawnDaemon("ticker", func(p *Proc) {
		for {
			p.Wait(Millisecond)
		}
	})
	if err := g.Run(2, Time(10*Millisecond)+Time(500*Microsecond)); err != nil {
		t.Fatal(err)
	}
	if a.Now() != Time(10*Millisecond)+Time(500*Microsecond) || b.Now() != a.Now() {
		t.Fatalf("clocks not aligned to limit: a=%v b=%v", a.Now(), b.Now())
	}
	g.Shutdown()
}

func TestGroupDeadlockReportsPerPartitionState(t *testing.T) {
	g := NewGroup()
	a := NewEnv(1)
	b := NewEnv(2)
	pa, pb := g.Add("racks", a), g.Add("coord", b)
	ab := g.Connect("up", pa, pb, Microsecond)
	q := NewQueue[int](a)
	a.Spawn("stuck-pop", func(p *Proc) {
		q.Pop(p) // never pushed
	})
	a.SpawnDaemon("idle-daemon", func(p *Proc) {
		q.Pop(p)
	})
	// A message that is delivered but never consumed must show up as
	// pending on the destination partition.
	a.Spawn("oneshot", func(p *Proc) {
		ab.Send(p, 99)
	})
	err := g.Run(1, MaxTime)
	de, ok := err.(DeadlockError)
	if !ok {
		t.Fatalf("err=%v, want DeadlockError", err)
	}
	if len(de.Partitions) != 2 {
		t.Fatalf("partitions=%d, want 2", len(de.Partitions))
	}
	if got := de.Blocked; len(got) != 1 || got[0] != "racks/stuck-pop" {
		t.Fatalf("blocked=%v", got)
	}
	racks := de.Partitions[0]
	if racks.Name != "racks" || len(racks.Parked) != 1 || racks.Parked[0] != "stuck-pop" || racks.Daemons != 1 {
		t.Fatalf("racks state=%+v", racks)
	}
	coord := de.Partitions[1]
	if coord.Name != "coord" || coord.Pending != 1 {
		t.Fatalf("coord state=%+v", coord)
	}
	for _, frag := range []string{"partition racks", "stuck-pop", "pending-msgs=1", "daemons=1"} {
		if !strings.Contains(de.Error(), frag) {
			t.Fatalf("error %q missing %q", de.Error(), frag)
		}
	}
	g.Shutdown()
}

func TestSerialDeadlockKeepsLegacyShape(t *testing.T) {
	env := NewEnv(1)
	ev := NewEvent(env)
	env.Spawn("stuck", func(p *Proc) { ev.Wait(p) })
	err := env.Run()
	de, ok := err.(DeadlockError)
	if !ok {
		t.Fatalf("err=%v", err)
	}
	if len(de.Partitions) != 1 || de.Partitions[0].Name != "env" {
		t.Fatalf("partitions=%+v", de.Partitions)
	}
	if !strings.Contains(de.Error(), "1 proc(s) blocked forever: stuck") {
		t.Fatalf("legacy message changed: %q", de.Error())
	}
	env.Shutdown()
}

func TestGroupPanicsOnZeroLookahead(t *testing.T) {
	g := NewGroup()
	pa := g.Add("a", NewEnv(1))
	pb := g.Add("b", NewEnv(2))
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for zero-latency link")
		}
	}()
	g.Connect("bad", pa, pb, 0)
}

func TestGroupSendOutsideSourcePanics(t *testing.T) {
	g := NewGroup()
	a := NewEnv(1)
	b := NewEnv(2)
	pa, pb := g.Add("a", a), g.Add("b", b)
	l := g.Connect("a->b", pa, pb, Microsecond)
	caught := false
	b.Spawn("wrong", func(p *Proc) {
		defer func() {
			if recover() != nil {
				caught = true
			}
		}()
		l.Send(p, 1)
	})
	if err := g.Run(1, MaxTime); err != nil {
		t.Fatal(err)
	}
	if !caught {
		t.Fatal("Send from wrong partition did not panic")
	}
	g.Shutdown()
}

func TestGroupHorizonsAllowFarAheadExecution(t *testing.T) {
	// Partition a has dense microsecond work; b only wakes every 10ms. The
	// horizon of a is bounded by b's sparse events plus the path latency,
	// so a must complete in far fewer rounds than events.
	g := NewGroup()
	a := NewEnv(1)
	b := NewEnv(2)
	pa, pb := g.Add("a", a), g.Add("b", b)
	g.Connect("b->a", pb, pa, 50*Microsecond)
	steps := 0
	a.Spawn("dense", func(p *Proc) {
		for i := 0; i < 5000; i++ {
			p.Wait(Microsecond)
			steps++
		}
	})
	b.Spawn("sparse", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Wait(10 * Millisecond)
		}
	})
	if err := g.Run(2, MaxTime); err != nil {
		t.Fatal(err)
	}
	if steps != 5000 {
		t.Fatalf("steps=%d", steps)
	}
	if r := g.Stats().Rounds; r > 100 {
		t.Fatalf("rounds=%d, lookahead windows are degenerate", r)
	}
	g.Shutdown()
}

func TestNextEventTimeSkipsSpentTokens(t *testing.T) {
	env := NewEnv(1)
	q := NewQueue[int](env)
	env.Spawn("w", func(p *Proc) {
		// A timed-out pop leaves a spent token in the heap.
		if _, ok := q.PopTimeout(p, Microsecond); ok {
			t.Error("unexpected value")
		}
		p.Wait(Millisecond)
	})
	if err := env.RunUntil(Time(2 * Microsecond)); err != nil {
		t.Fatal(err)
	}
	at, ok := env.NextEventTime()
	if !ok || at != Time(Microsecond)+Time(Millisecond) {
		t.Fatalf("next=%v ok=%v", at, ok)
	}
	env.Shutdown()
}

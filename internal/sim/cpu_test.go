package sim

import (
	"math"
	"testing"
)

func TestCPUExecChargesTime(t *testing.T) {
	env := NewEnv(1)
	cpu := NewCPU(env, "host", 1, 2.0, 0) // 2 GHz
	th := NewThread("w0", "work")
	env.Spawn("p", func(p *Proc) {
		cpu.Exec(p, th, 2000) // 2000 cycles at 2 GHz = 1000 ns
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if env.Now() != Time(1000) {
		t.Fatalf("now=%v want 1000ns", env.Now())
	}
	st := cpu.Stats()
	if st.BusyByCat["work"] != 1000 {
		t.Fatalf("busy=%v", st.BusyByCat["work"])
	}
}

func TestCPUCoresContended(t *testing.T) {
	env := NewEnv(1)
	cpu := NewCPU(env, "host", 2, 1.0, 0)
	for i := 0; i < 4; i++ {
		th := NewThread("w", "work")
		env.Spawn("p", func(p *Proc) {
			cpu.Exec(p, th, 1000)
		})
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	// 4 jobs of 1000ns on 2 cores = 2000ns makespan.
	if env.Now() != Time(2000) {
		t.Fatalf("now=%v want 2000ns", env.Now())
	}
}

func TestCPUContextSwitchCostAndCount(t *testing.T) {
	env := NewEnv(1)
	cpu := NewCPU(env, "host", 1, 1.0, 100)
	a := NewThread("a", "catA")
	b := NewThread("b", "catB")
	env.Spawn("p", func(p *Proc) {
		cpu.Exec(p, a, 1000) // first-run on a cold core: no switch charged
		cpu.Exec(p, b, 1000) // switch a->b
		cpu.Exec(p, b, 1000) // same thread: no switch
		cpu.Exec(p, a, 1000) // switch b->a
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	st := cpu.Stats()
	if st.CoreSwitchesByCat["catA"] != 1 || st.CoreSwitchesByCat["catB"] != 1 {
		t.Fatalf("core switches=%v", st.CoreSwitchesByCat)
	}
	// 4000 work + 200 switch cost at 1 GHz.
	if env.Now() != Time(4200) {
		t.Fatalf("now=%v", env.Now())
	}
}

func TestCPUNoteSwitches(t *testing.T) {
	env := NewEnv(1)
	cpu := NewCPU(env, "host", 1, 1.0, 0)
	th := NewThread("m", "msgr")
	cpu.NoteSwitches(th, 5)
	if cpu.Stats().SwitchesByCat["msgr"] != 5 {
		t.Fatalf("switches=%v", cpu.Stats().SwitchesByCat)
	}
}

func TestCPUUtilization(t *testing.T) {
	env := NewEnv(1)
	cpu := NewCPU(env, "host", 2, 1.0, 0)
	th := NewThread("w", "work")
	env.Spawn("p", func(p *Proc) {
		cpu.Exec(p, th, 1000)
		p.Wait(1000) // idle
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	st := cpu.Stats()
	// busy 1000ns of 2 cores * 2000ns elapsed = 25%.
	if math.Abs(st.Utilization()-0.25) > 1e-9 {
		t.Fatalf("util=%v", st.Utilization())
	}
	if math.Abs(st.ShareOfCat("work")-1.0) > 1e-9 {
		t.Fatalf("share=%v", st.ShareOfCat("work"))
	}
	if math.Abs(st.UtilizationOfCat("work")-0.25) > 1e-9 {
		t.Fatalf("utilOfCat=%v", st.UtilizationOfCat("work"))
	}
}

func TestCPUResetStats(t *testing.T) {
	env := NewEnv(1)
	cpu := NewCPU(env, "host", 1, 1.0, 0)
	th := NewThread("w", "work")
	env.Spawn("p", func(p *Proc) {
		cpu.Exec(p, th, 5000)
		cpu.ResetStats()
		cpu.Exec(p, th, 1000)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	st := cpu.Stats()
	if st.TotalBusy != 1000 {
		t.Fatalf("busy=%v want 1000ns after reset", st.TotalBusy)
	}
	if st.WindowStart != Time(5000) {
		t.Fatalf("windowStart=%v", st.WindowStart)
	}
}

func TestCPUExecDuration(t *testing.T) {
	env := NewEnv(1)
	cpu := NewCPU(env, "host", 1, 4.0, 0)
	th := NewThread("w", "work")
	env.Spawn("p", func(p *Proc) {
		cpu.ExecDuration(p, th, 250) // 250ns at 4GHz = 1000 cycles
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if env.Now() != Time(250) {
		t.Fatalf("now=%v", env.Now())
	}
}

func TestCPUZeroCyclesNoop(t *testing.T) {
	env := NewEnv(1)
	cpu := NewCPU(env, "host", 1, 1.0, 50)
	th := NewThread("w", "work")
	env.Spawn("p", func(p *Proc) {
		cpu.Exec(p, th, 0)
		cpu.Exec(p, th, -5)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if env.Now() != 0 || cpu.Stats().TotalBusy != 0 {
		t.Fatalf("now=%v busy=%v", env.Now(), cpu.Stats().TotalBusy)
	}
}

func TestCPUFCFSOrder(t *testing.T) {
	env := NewEnv(1)
	cpu := NewCPU(env, "host", 1, 1.0, 0)
	var order []int
	for i := 0; i < 3; i++ {
		id := i
		th := NewThread("w", "work")
		env.Spawn("p", func(p *Proc) {
			p.Wait(Duration(id)) // arrival order 0,1,2
			cpu.Exec(p, th, 1000)
			order = append(order, id)
		})
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range order {
		if order[i] != i {
			t.Fatalf("order=%v", order)
		}
	}
}

func TestCPUZeroWidthWorkUnderContention(t *testing.T) {
	// Zero-width work must not queue behind a busy core: the multi-queue
	// engine issues zero-cycle accounting calls on hot paths and relies on
	// them being free even when every core is occupied.
	env := NewEnv(1)
	cpu := NewCPU(env, "host", 1, 1.0, 50)
	hog := NewThread("hog", "work")
	idle := NewThread("idle", "poll")
	env.Spawn("hog", func(p *Proc) {
		cpu.Exec(p, hog, 10_000)
	})
	var elapsed Duration
	env.Spawn("zero", func(p *Proc) {
		p.Wait(100) // arrive while the core is held
		before := p.Now()
		if d := cpu.Exec(p, idle, 0); d != 0 {
			t.Errorf("zero-width work charged %v", d)
		}
		elapsed = p.Now().Sub(before)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if elapsed != 0 {
		t.Fatalf("zero-width work queued for %v on a busy core", elapsed)
	}
	if n := cpu.Stats().CoreSwitchesByCat["poll"]; n != 0 {
		t.Fatalf("zero-width work recorded %d core switches", n)
	}
}

func TestCPUSimultaneousReleaseWakesWaitersFIFO(t *testing.T) {
	// Both cores release at the same virtual instant; the three queued
	// waiters must be served in arrival order — C and D take the two cores,
	// E runs after. This is the ordering the per-queue DMA executors lean
	// on for determinism when several transfers complete together.
	env := NewEnv(1)
	cpu := NewCPU(env, "host", 2, 1.0, 0)
	var order []string
	runner := func(name string, arrive Duration) {
		th := NewThread(name, "work")
		env.Spawn(name, func(p *Proc) {
			p.Wait(arrive)
			cpu.Exec(p, th, 1000)
			order = append(order, name)
		})
	}
	runner("A", 0)
	runner("B", 0)
	runner("C", 1)
	runner("D", 2)
	runner("E", 3)
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"A", "B", "C", "D", "E"}
	if len(order) != len(want) {
		t.Fatalf("order=%v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("completion order=%v, want %v", order, want)
		}
	}
	// A/B at t=1000, C/D on the simultaneously released cores at 2000, E
	// on the next release at 3000.
	if env.Now() != Time(3000) {
		t.Fatalf("now=%v want 3000", env.Now())
	}
}

func TestCPUCorePoolReuseKeepsThreadAffinity(t *testing.T) {
	// A core handed directly to a waiter (never returned to the free pool)
	// and a core recycled through the free pool must both remember the last
	// thread they ran: re-running that thread later charges no context
	// switch.
	env := NewEnv(1)
	cpu := NewCPU(env, "host", 1, 1.0, 100)
	ta := NewThread("a", "catA")
	tb := NewThread("b", "catB")
	env.Spawn("A", func(p *Proc) {
		cpu.Exec(p, ta, 1000) // cold core: no switch
	})
	env.Spawn("B", func(p *Proc) {
		p.Wait(10)            // queue behind A: direct core handoff
		cpu.Exec(p, tb, 1000) // a->b: one switch
	})
	env.Spawn("C", func(p *Proc) {
		p.Wait(5000)          // core long idle, recycled via the free pool
		cpu.Exec(p, tb, 1000) // still b: no switch
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	st := cpu.Stats()
	if st.CoreSwitchesByCat["catB"] != 1 || st.CoreSwitchesByCat["catA"] != 0 {
		t.Fatalf("core switches=%v, want catB:1 only", st.CoreSwitchesByCat)
	}
	// 1000 (A) + 1100 (B incl. switch) ends at 2100; C runs 5000-6000.
	if env.Now() != Time(6000) {
		t.Fatalf("now=%v want 6000", env.Now())
	}
	if st.TotalBusy != 3100 {
		t.Fatalf("busy=%v want 3100", st.TotalBusy)
	}
}

package sim

import (
	"fmt"
	"sort"
	"sync"
)

// This file implements the conservative parallel event kernel: a Group of
// independent Env partitions, each with its own event heap, clock, random
// stream and proc pools, synchronized by lookahead-bounded safe windows.
//
// The synchronization protocol is a barrier-stepped variant of the classic
// Chandy-Misra-Bryant conservative algorithm (null messages replaced by a
// horizon computation at each barrier):
//
//  1. At a barrier, read every partition's next local event time E_i.
//  2. Compute each partition's safe horizon H_i = min over j != i of
//     (E_j + dist[j][i]), where dist is the minimum summed link latency of
//     any path j -> i (Floyd-Warshall over the declared XLinks). No event
//     another partition will ever execute can influence partition i before
//     H_i, because influence only travels over links and every link has
//     strictly positive latency (its lookahead).
//  3. Run, in parallel on worker goroutines, every partition whose next
//     event lies before min(H_i, limit+1). Each partition executes its
//     window serially with the unchanged serial kernel, so all existing
//     model code runs unmodified and data-race-free.
//  4. At the next barrier, deliver the cross-partition messages staged by
//     Send during the window. Lookahead guarantees every arrival timestamp
//     is still in each receiver's future.
//
// Determinism: a partition's execution depends only on its own event
// sequence and the messages injected at barriers. Horizons are pure
// functions of partition state read at barriers, and injected batches are
// sorted by the total order (arrival time, link id, per-link sequence) —
// none of it depends on how many workers run the windows or how the Go
// scheduler interleaves them. Results are therefore bit-identical for any
// worker count and any GOMAXPROCS, and with one partition and no links the
// group degenerates to the serial kernel exactly.
type Group struct {
	names []string
	envs  []*Env
	links []*XLink
	// dist[s][d] is the minimum summed link latency of any s->d path, or
	// <0 when d is unreachable from s. Recomputed lazily after topology
	// changes.
	dist    [][]Duration
	stats   GroupStats
	started bool
}

// GroupStats counts the synchronization work a Run performed.
type GroupStats struct {
	// Rounds is the number of barrier rounds executed.
	Rounds uint64
	// Windows is the number of partition windows dispatched (at most
	// Rounds x partitions; fewer when partitions sit idle).
	Windows uint64
	// Delivered is the number of cross-partition messages delivered.
	Delivered uint64
}

// PartitionID names one member environment of a Group.
type PartitionID int

// NewGroup returns an empty partition group.
func NewGroup() *Group { return &Group{} }

// Add registers env as a partition and returns its id. All partitions must
// be added (and their links connected) before Run.
func (g *Group) Add(name string, env *Env) PartitionID {
	for _, e := range g.envs {
		if e == env {
			panic(fmt.Sprintf("sim: partition %q: env already added to this group", name))
		}
	}
	g.envs = append(g.envs, env)
	g.names = append(g.names, name)
	g.dist = nil
	return PartitionID(len(g.envs) - 1)
}

// Partitions returns the number of member environments.
func (g *Group) Partitions() int { return len(g.envs) }

// Env returns the member environment with the given id.
func (g *Group) Env(id PartitionID) *Env { return g.envs[id] }

// Name returns the name the partition was added with.
func (g *Group) Name(id PartitionID) string { return g.names[id] }

// Events returns the total events fired across all partitions.
func (g *Group) Events() uint64 {
	var n uint64
	for _, e := range g.envs {
		n += e.Events()
	}
	return n
}

// Stats returns the synchronization counters of the last / current Run.
func (g *Group) Stats() GroupStats { return g.stats }

// XMsg is one cross-partition message: a payload stamped with its arrival
// instant at the destination partition plus the (link, sequence) pair that
// breaks ties deterministically when two messages arrive at the same
// instant.
type XMsg struct {
	// At is the arrival instant at the destination partition.
	At Time
	// Link is the carrying link's index within its group.
	Link int
	// Seq is the per-link send sequence number (starts at 1).
	Seq uint64
	// Payload is the message body.
	Payload any
}

// XLink is a unidirectional, latency-ful channel between two partitions —
// the only way state may cross a partition boundary. Its latency is the
// link's lookahead: the kernel relies on no send becoming visible at the
// destination sooner than latency after it was issued, which is what lets
// partitions run ahead of each other inside that bound.
type XLink struct {
	g        *Group
	id       int
	name     string
	src, dst PartitionID
	latency  Duration
	seq      uint64
	sent     uint64
	// staged holds the current window's sends; only the source partition's
	// (single-threaded) execution appends, and only the barrier drains.
	staged []XMsg
	// Inbox is the destination-side queue messages are delivered into at
	// their arrival instants. Receivers Pop it (or use Recv).
	Inbox *Queue[XMsg]
}

// Connect declares a link from src to dst with the given latency (the
// link's lookahead bound). Latency must be strictly positive — a
// zero-lookahead link would force the partitions into lockstep and the
// conservative kernel refuses to model it.
func (g *Group) Connect(name string, src, dst PartitionID, latency Duration) *XLink {
	if latency <= 0 {
		panic(fmt.Sprintf("sim: link %q: lookahead must be positive, got %v", name, latency))
	}
	if src == dst {
		panic(fmt.Sprintf("sim: link %q: src and dst are the same partition", name))
	}
	if int(src) < 0 || int(src) >= len(g.envs) || int(dst) < 0 || int(dst) >= len(g.envs) {
		panic(fmt.Sprintf("sim: link %q: unknown partition id", name))
	}
	l := &XLink{
		g: g, id: len(g.links), name: name,
		src: src, dst: dst, latency: latency,
		Inbox: NewQueue[XMsg](g.envs[dst]),
	}
	g.links = append(g.links, l)
	g.dist = nil
	return l
}

// Latency returns the link's lookahead bound.
func (l *XLink) Latency() Duration { return l.latency }

// Sent returns how many messages have been sent on the link.
func (l *XLink) Sent() uint64 { return l.sent }

// Send stages payload for delivery to the destination partition at
// p.Now()+latency and returns that arrival instant. It must be called from
// a proc of the source partition.
func (l *XLink) Send(p *Proc, payload any) Time {
	if p.env != l.g.envs[l.src] {
		panic(fmt.Sprintf("sim: link %q: Send from a proc outside the source partition", l.name))
	}
	l.seq++
	l.sent++
	at := p.Now().Add(l.latency)
	l.staged = append(l.staged, XMsg{At: at, Link: l.id, Seq: l.seq, Payload: payload})
	return at
}

// Recv blocks p until a message is delivered on the link and returns it.
// It must be called from a proc of the destination partition.
func (l *XLink) Recv(p *Proc) XMsg { return l.Inbox.Pop(p) }

// computeDist runs Floyd-Warshall over the link topology. Latencies are
// tiny against the int64 range, so sums cannot overflow once unreachable
// pairs are kept as a sentinel instead of an additive infinity.
func (g *Group) computeDist() {
	n := len(g.envs)
	d := make([][]Duration, n)
	for i := range d {
		d[i] = make([]Duration, n)
		for j := range d[i] {
			d[i][j] = -1
		}
	}
	for _, l := range g.links {
		if cur := d[l.src][l.dst]; cur < 0 || l.latency < cur {
			d[l.src][l.dst] = l.latency
		}
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			if d[i][k] < 0 {
				continue
			}
			for j := 0; j < n; j++ {
				if d[k][j] < 0 {
					continue
				}
				via := d[i][k] + d[k][j]
				if cur := d[i][j]; cur < 0 || via < cur {
					d[i][j] = via
				}
			}
		}
	}
	g.dist = d
}

// horizons fills hor[i] with the earliest instant any other partition
// could inject an event into partition i, or MaxTime when nothing can.
func (g *Group) horizons(next []Time, has []bool, hor []Time) {
	for i := range g.envs {
		h := MaxTime
		for j := range g.envs {
			if j == i || !has[j] || g.dist[j][i] < 0 {
				continue
			}
			if b := next[j].Add(g.dist[j][i]); b < h {
				h = b
			}
		}
		hor[i] = h
	}
}

// deliver drains every link's staged sends and injects them into the
// destination partitions: per destination, the batch is sorted by
// (arrival, link id, sequence) and a delivery proc walks it, waiting until
// each arrival instant before pushing into the link's inbox. Called only
// at barriers, with no partition running.
func (g *Group) deliver() {
	n := len(g.envs)
	batches := make([][]XMsg, n)
	for _, l := range g.links {
		if len(l.staged) == 0 {
			continue
		}
		batches[l.dst] = append(batches[l.dst], l.staged...)
		l.staged = l.staged[:0]
	}
	for dst, batch := range batches {
		if len(batch) == 0 {
			continue
		}
		g.stats.Delivered += uint64(len(batch))
		sort.Slice(batch, func(i, j int) bool {
			a, b := batch[i], batch[j]
			if a.At != b.At {
				return a.At < b.At
			}
			if a.Link != b.Link {
				return a.Link < b.Link
			}
			return a.Seq < b.Seq
		})
		batch := batch
		g.envs[dst].Spawn("xpart-deliver", func(p *Proc) {
			for _, m := range batch {
				p.WaitUntil(m.At)
				g.links[m.Link].Inbox.Push(m)
			}
		})
	}
}

// Run executes the group until every partition's heap is empty or every
// remaining event lies beyond limit, using up to workers goroutines to run
// partition windows concurrently (workers <= 0 means one per partition).
// On a clean end with events left beyond the limit, every partition clock
// is advanced to limit, mirroring the serial RunUntil contract. A
// DeadlockError carrying per-partition state is returned when, before the
// limit, live non-daemon procs remain with no event or message that could
// ever wake them.
func (g *Group) Run(workers int, limit Time) error {
	if g.started {
		panic("sim: Group.Run called twice")
	}
	g.started = true
	n := len(g.envs)
	if n == 0 {
		return nil
	}
	if workers <= 0 || workers > n {
		workers = n
	}
	if g.dist == nil {
		g.computeDist()
	}

	type job struct {
		env    *Env
		target Time
	}
	var wg sync.WaitGroup
	var jobs chan job
	if workers > 1 {
		jobs = make(chan job)
		defer close(jobs)
		for w := 0; w < workers; w++ {
			go func() {
				for j := range jobs {
					j.env.runWindow(j.target)
					wg.Done()
				}
			}()
		}
	}

	next := make([]Time, n)
	has := make([]bool, n)
	hor := make([]Time, n)
	for {
		idle := true
		for i, e := range g.envs {
			next[i], has[i] = e.NextEventTime()
			if has[i] && next[i] <= limit {
				idle = false
			}
		}
		if idle {
			break
		}
		g.stats.Rounds++
		g.horizons(next, has, hor)
		ran := 0
		for i, e := range g.envs {
			if !has[i] {
				continue
			}
			target := limit
			if hor[i] != MaxTime && hor[i]-1 < target {
				target = hor[i] - 1
			}
			if next[i] > target {
				continue
			}
			g.stats.Windows++
			ran++
			if workers > 1 {
				wg.Add(1)
				jobs <- job{e, target}
			} else {
				e.runWindow(target)
			}
		}
		if workers > 1 {
			wg.Wait()
		}
		if ran == 0 {
			// Unreachable: the partition holding the globally earliest
			// event always has a horizon strictly beyond it (links have
			// positive latency). Kept as a livelock guard.
			break
		}
		g.deliver()
	}

	remaining := false
	for _, e := range g.envs {
		if _, ok := e.NextEventTime(); ok {
			remaining = true
			break
		}
	}
	if remaining {
		// Every pending event lies beyond the limit: align the clocks and
		// leave the events queued, exactly like the serial RunUntil.
		for _, e := range g.envs {
			e.advanceTo(limit)
		}
		g.started = false
		return nil
	}
	g.started = false
	return g.deadlock()
}

// deadlock builds the per-partition diagnostic error, or returns nil when
// no non-daemon proc is stuck.
func (g *Group) deadlock() error {
	n := len(g.envs)
	pending := make([]int, n)
	for _, l := range g.links {
		pending[l.dst] += l.Inbox.Len()
	}
	var (
		states []PartitionState
		all    []string
		at     Time
	)
	for i, e := range g.envs {
		parked, daemons := e.blockedState()
		if e.now > at {
			at = e.now
		}
		states = append(states, PartitionState{
			Name: g.names[i], Now: e.now,
			Parked: parked, Daemons: daemons, Pending: pending[i],
		})
		for _, name := range parked {
			all = append(all, g.names[i]+"/"+name)
		}
	}
	if len(all) == 0 {
		return nil
	}
	sort.Strings(all)
	return DeadlockError{Time: at, Blocked: all, Partitions: states}
}

// Shutdown force-terminates every partition's remaining procs, releasing
// their goroutines. The group must not be used afterwards.
func (g *Group) Shutdown() {
	for _, e := range g.envs {
		e.Shutdown()
	}
}

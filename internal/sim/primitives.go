package sim

// Queue is an unbounded FIFO channel between simulation processes. Push
// never blocks; Pop blocks until a value is available. The zero Queue is not
// ready for use; create one with NewQueue.
type Queue[T any] struct {
	env     *Env
	buf     []T
	waiters []queueWaiter[T]
}

type queueWaiter[T any] struct {
	tok  *wakeToken
	slot *T
	got  *bool
}

// NewQueue returns an empty queue bound to env.
func NewQueue[T any](env *Env) *Queue[T] {
	return &Queue[T]{env: env}
}

// Len returns the number of buffered values.
func (q *Queue[T]) Len() int { return len(q.buf) }

// Push enqueues v, waking the oldest waiting Pop if there is one. It may be
// called from any running process (or before Run).
func (q *Queue[T]) Push(v T) {
	for len(q.waiters) > 0 {
		w := q.waiters[0]
		q.waiters = q.waiters[1:]
		if w.tok.spent {
			q.env.dropRef(w.tok)
			continue
		}
		*w.slot = v
		*w.got = true
		q.env.schedule(w.tok, q.env.now)
		q.env.dropRef(w.tok)
		return
	}
	q.buf = append(q.buf, v)
}

// Pop blocks p until a value is available and returns it.
func (q *Queue[T]) Pop(p *Proc) T {
	v, _ := q.pop(p, -1)
	return v
}

// PopTimeout blocks p until a value is available or d elapses. ok reports
// whether a value was received.
func (q *Queue[T]) PopTimeout(p *Proc, d Duration) (v T, ok bool) {
	return q.pop(p, d)
}

// TryPop returns a buffered value without blocking.
func (q *Queue[T]) TryPop() (v T, ok bool) {
	if len(q.buf) == 0 {
		return v, false
	}
	v = q.buf[0]
	q.buf = q.buf[1:]
	return v, true
}

func (q *Queue[T]) pop(p *Proc, timeout Duration) (v T, ok bool) {
	if len(q.buf) > 0 {
		v = q.buf[0]
		q.buf = q.buf[1:]
		return v, true
	}
	tok := p.newToken()
	tok.refs++
	got := false
	q.waiters = append(q.waiters, queueWaiter[T]{tok: tok, slot: &v, got: &got})
	if timeout >= 0 {
		q.env.schedule(tok, q.env.now.Add(timeout))
	}
	p.park()
	return v, got
}

// Semaphore is a counted, FIFO-fair semaphore.
type Semaphore struct {
	env     *Env
	avail   int
	waiters []semWaiter
}

type semWaiter struct {
	tok *wakeToken
	n   int
}

// NewSemaphore returns a semaphore with n initial permits.
func NewSemaphore(env *Env, n int) *Semaphore {
	return &Semaphore{env: env, avail: n}
}

// Available returns the current number of free permits.
func (s *Semaphore) Available() int { return s.avail }

// Acquire blocks p until n permits are available and takes them. Waiters are
// served strictly in arrival order (no barging past a blocked head-of-line).
func (s *Semaphore) Acquire(p *Proc, n int) {
	if s.avail >= n && len(s.waiters) == 0 {
		s.avail -= n
		return
	}
	tok := p.newToken()
	tok.refs++
	s.waiters = append(s.waiters, semWaiter{tok: tok, n: n})
	p.park()
}

// TryAcquire takes n permits if immediately available.
func (s *Semaphore) TryAcquire(n int) bool {
	if s.avail >= n && len(s.waiters) == 0 {
		s.avail -= n
		return true
	}
	return false
}

// Release returns n permits and grants as many head-of-line waiters as fit.
func (s *Semaphore) Release(n int) {
	s.avail += n
	for len(s.waiters) > 0 {
		w := s.waiters[0]
		if w.tok.spent {
			s.waiters = s.waiters[1:]
			s.env.dropRef(w.tok)
			continue
		}
		if s.avail < w.n {
			return
		}
		s.waiters = s.waiters[1:]
		s.avail -= w.n
		s.env.schedule(w.tok, s.env.now)
		s.env.dropRef(w.tok)
	}
}

// Event is a one-shot broadcast: processes Wait until Fire is called, after
// which Wait returns immediately forever.
type Event struct {
	env     *Env
	fired   bool
	waiters []eventWaiter
}

type eventWaiter struct {
	tok   *wakeToken
	fired *bool
}

// NewEvent returns an unfired event bound to env.
func NewEvent(env *Env) *Event { return &Event{env: env} }

// Fired reports whether the event has fired.
func (ev *Event) Fired() bool { return ev.fired }

// Fire wakes all current and future waiters. Firing twice is a no-op.
func (ev *Event) Fire() {
	if ev.fired {
		return
	}
	ev.fired = true
	for _, w := range ev.waiters {
		if w.tok.spent {
			ev.env.dropRef(w.tok)
			continue
		}
		*w.fired = true
		ev.env.schedule(w.tok, ev.env.now)
		ev.env.dropRef(w.tok)
	}
	ev.waiters = nil
}

// Wait blocks p until the event fires.
func (ev *Event) Wait(p *Proc) {
	if ev.fired {
		return
	}
	tok := p.newToken()
	tok.refs++
	fired := false
	ev.waiters = append(ev.waiters, eventWaiter{tok: tok, fired: &fired})
	p.park()
}

// WaitTimeout blocks p until the event fires or d elapses; it reports
// whether the event fired (before or at the wakeup instant).
func (ev *Event) WaitTimeout(p *Proc, d Duration) bool {
	if ev.fired {
		return true
	}
	tok := p.newToken()
	tok.refs++
	fired := false
	ev.waiters = append(ev.waiters, eventWaiter{tok: tok, fired: &fired})
	ev.env.schedule(tok, ev.env.now.Add(d))
	p.park()
	return fired
}

// Cond is a broadcast-only condition variable for re-check loops:
//
//	for !pred() { cond.Wait(p) }
//
// Broadcast wakes everyone currently waiting; there is no Signal because
// deterministic fairness is easier to reason about with broadcast + re-check.
type Cond struct {
	env     *Env
	waiters []*wakeToken
}

// NewCond returns a condition variable bound to env.
func NewCond(env *Env) *Cond { return &Cond{env: env} }

// Wait parks p until the next Broadcast.
func (c *Cond) Wait(p *Proc) {
	tok := p.newToken()
	tok.refs++
	c.waiters = append(c.waiters, tok)
	p.park()
}

// Broadcast wakes every process currently in Wait.
func (c *Cond) Broadcast() {
	for _, tok := range c.waiters {
		if !tok.spent {
			c.env.schedule(tok, c.env.now)
		}
		c.env.dropRef(tok)
	}
	c.waiters = nil
}

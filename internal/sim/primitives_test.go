package sim

import "testing"

func TestQueuePushPop(t *testing.T) {
	env := NewEnv(1)
	q := NewQueue[int](env)
	var got []int
	env.Spawn("producer", func(p *Proc) {
		for i := 1; i <= 3; i++ {
			p.Wait(Millisecond)
			q.Push(i)
		}
	})
	env.Spawn("consumer", func(p *Proc) {
		for i := 0; i < 3; i++ {
			got = append(got, q.Pop(p))
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range []int{1, 2, 3} {
		if got[i] != v {
			t.Fatalf("got=%v", got)
		}
	}
}

func TestQueueBufferedBeforePop(t *testing.T) {
	env := NewEnv(1)
	q := NewQueue[string](env)
	q.Push("a")
	q.Push("b")
	if q.Len() != 2 {
		t.Fatalf("len=%d", q.Len())
	}
	var got []string
	env.Spawn("c", func(p *Proc) {
		got = append(got, q.Pop(p), q.Pop(p))
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if got[0] != "a" || got[1] != "b" {
		t.Fatalf("got=%v", got)
	}
}

func TestQueueMultipleWaitersFIFO(t *testing.T) {
	env := NewEnv(1)
	q := NewQueue[int](env)
	var order []int
	for i := 0; i < 3; i++ {
		id := i
		env.Spawn("w", func(p *Proc) {
			p.Wait(Duration(id) * Microsecond) // deterministic arrival order
			v := q.Pop(p)
			order = append(order, id*100+v)
		})
	}
	env.Spawn("pusher", func(p *Proc) {
		p.Wait(Millisecond)
		q.Push(1)
		q.Push(2)
		q.Push(3)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 102, 203} // waiter 0 gets value 1, etc.
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order=%v want=%v", order, want)
		}
	}
}

func TestQueuePopTimeout(t *testing.T) {
	env := NewEnv(1)
	q := NewQueue[int](env)
	var firstOK, secondOK bool
	var second int
	env.Spawn("c", func(p *Proc) {
		_, firstOK = q.PopTimeout(p, Millisecond)
		second, secondOK = q.PopTimeout(p, 10*Millisecond)
	})
	env.Spawn("late", func(p *Proc) {
		p.Wait(5 * Millisecond)
		q.Push(99)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if firstOK {
		t.Fatal("first pop should have timed out")
	}
	if !secondOK || second != 99 {
		t.Fatalf("second=%d ok=%v", second, secondOK)
	}
}

func TestQueueTimedOutWaiterSkipped(t *testing.T) {
	env := NewEnv(1)
	q := NewQueue[int](env)
	got := -1
	env.Spawn("timeouter", func(p *Proc) {
		if _, ok := q.PopTimeout(p, Millisecond); ok {
			t.Error("should time out")
		}
	})
	env.Spawn("real", func(p *Proc) {
		p.Wait(2 * Millisecond)
		got = q.Pop(p)
	})
	env.Spawn("pusher", func(p *Proc) {
		p.Wait(3 * Millisecond)
		q.Push(7) // must skip the spent timeout waiter
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 7 {
		t.Fatalf("got=%d", got)
	}
}

func TestSemaphoreLimitsConcurrency(t *testing.T) {
	env := NewEnv(1)
	sem := NewSemaphore(env, 2)
	inside, maxInside := 0, 0
	for i := 0; i < 6; i++ {
		env.Spawn("w", func(p *Proc) {
			sem.Acquire(p, 1)
			inside++
			if inside > maxInside {
				maxInside = inside
			}
			p.Wait(Millisecond)
			inside--
			sem.Release(1)
		})
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if maxInside != 2 {
		t.Fatalf("maxInside=%d want 2", maxInside)
	}
	if env.Now() != Time(3*Millisecond) {
		t.Fatalf("now=%v want 3ms", env.Now())
	}
}

func TestSemaphoreFIFONoBarging(t *testing.T) {
	env := NewEnv(1)
	sem := NewSemaphore(env, 0)
	var order []int
	for i := 0; i < 3; i++ {
		id := i
		env.Spawn("w", func(p *Proc) {
			p.Wait(Duration(id) * Microsecond)
			sem.Acquire(p, 1)
			order = append(order, id)
		})
	}
	env.Spawn("rel", func(p *Proc) {
		p.Wait(Millisecond)
		sem.Release(3)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range order {
		if order[i] != i {
			t.Fatalf("order=%v", order)
		}
	}
}

func TestSemaphoreMultiPermit(t *testing.T) {
	env := NewEnv(1)
	sem := NewSemaphore(env, 3)
	var acquired bool
	env.Spawn("big", func(p *Proc) {
		sem.Acquire(p, 3)
		acquired = true
		sem.Release(3)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if !acquired || sem.Available() != 3 {
		t.Fatalf("acquired=%v avail=%d", acquired, sem.Available())
	}
}

func TestTryAcquire(t *testing.T) {
	env := NewEnv(1)
	sem := NewSemaphore(env, 1)
	if !sem.TryAcquire(1) {
		t.Fatal("first TryAcquire should succeed")
	}
	if sem.TryAcquire(1) {
		t.Fatal("second TryAcquire should fail")
	}
	sem.Release(1)
	if !sem.TryAcquire(1) {
		t.Fatal("TryAcquire after release should succeed")
	}
}

func TestEventBroadcast(t *testing.T) {
	env := NewEnv(1)
	ev := NewEvent(env)
	woken := 0
	for i := 0; i < 4; i++ {
		env.Spawn("w", func(p *Proc) {
			ev.Wait(p)
			woken++
		})
	}
	env.Spawn("firer", func(p *Proc) {
		p.Wait(Millisecond)
		ev.Fire()
		ev.Fire() // double-fire is a no-op
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if woken != 4 {
		t.Fatalf("woken=%d", woken)
	}
}

func TestEventWaitAfterFireReturnsImmediately(t *testing.T) {
	env := NewEnv(1)
	ev := NewEvent(env)
	ev.Fire()
	var at Time
	env.Spawn("w", func(p *Proc) {
		p.Wait(Millisecond)
		ev.Wait(p)
		at = p.Now()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if at != Time(Millisecond) {
		t.Fatalf("at=%v", at)
	}
}

func TestEventWaitTimeout(t *testing.T) {
	env := NewEnv(1)
	ev := NewEvent(env)
	var timedOut, fired bool
	env.Spawn("w", func(p *Proc) {
		timedOut = !ev.WaitTimeout(p, Millisecond)
		fired = ev.WaitTimeout(p, 10*Millisecond)
	})
	env.Spawn("f", func(p *Proc) {
		p.Wait(5 * Millisecond)
		ev.Fire()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if !timedOut || !fired {
		t.Fatalf("timedOut=%v fired=%v", timedOut, fired)
	}
}

func TestCondBroadcastRecheckLoop(t *testing.T) {
	env := NewEnv(1)
	cond := NewCond(env)
	value := 0
	var observed int
	env.Spawn("waiter", func(p *Proc) {
		for value < 3 {
			cond.Wait(p)
		}
		observed = value
	})
	env.Spawn("incr", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Wait(Millisecond)
			value++
			cond.Broadcast()
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if observed != 3 {
		t.Fatalf("observed=%d", observed)
	}
}

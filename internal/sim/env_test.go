package sim

import (
	"fmt"
	"testing"
)

func TestWaitAdvancesClock(t *testing.T) {
	env := NewEnv(1)
	var end Time
	env.Spawn("sleeper", func(p *Proc) {
		p.Wait(5 * Millisecond)
		end = p.Now()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if end != Time(5*Millisecond) {
		t.Fatalf("end = %v, want 5ms", end)
	}
}

func TestWaitZeroAndNegative(t *testing.T) {
	env := NewEnv(1)
	ran := false
	env.Spawn("p", func(p *Proc) {
		p.Wait(0)
		p.Wait(-3)
		p.Yield()
		ran = true
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran || env.Now() != 0 {
		t.Fatalf("ran=%v now=%v", ran, env.Now())
	}
}

func TestEventOrderingDeterministic(t *testing.T) {
	run := func() []string {
		env := NewEnv(7)
		var order []string
		for i := 0; i < 5; i++ {
			name := fmt.Sprintf("p%d", i)
			d := Duration((5 - i)) * Millisecond
			env.Spawn(name, func(p *Proc) {
				p.Wait(d)
				order = append(order, p.Name())
			})
		}
		if err := env.Run(); err != nil {
			t.Fatal(err)
		}
		return order
	}
	a, b := run(), run()
	want := []string{"p4", "p3", "p2", "p1", "p0"}
	for i := range want {
		if a[i] != want[i] || b[i] != want[i] {
			t.Fatalf("order a=%v b=%v want=%v", a, b, want)
		}
	}
}

func TestSameInstantFIFO(t *testing.T) {
	env := NewEnv(1)
	var order []string
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("p%d", i)
		env.Spawn(name, func(p *Proc) {
			p.Wait(Millisecond) // all wake at the same instant
			order = append(order, p.Name())
		})
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"p0", "p1", "p2", "p3"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order=%v want=%v", order, want)
		}
	}
}

func TestSpawnFromProcess(t *testing.T) {
	env := NewEnv(1)
	var childTime Time
	env.Spawn("parent", func(p *Proc) {
		p.Wait(2 * Millisecond)
		p.env.Spawn("child", func(c *Proc) {
			c.Wait(Millisecond)
			childTime = c.Now()
		})
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if childTime != Time(3*Millisecond) {
		t.Fatalf("childTime=%v want 3ms", childTime)
	}
}

func TestRunUntilStopsAtLimit(t *testing.T) {
	env := NewEnv(1)
	ticks := 0
	env.Spawn("ticker", func(p *Proc) {
		for {
			p.Wait(Second)
			ticks++
		}
	})
	if err := env.RunUntil(Time(4*Second + Millisecond)); err != nil {
		t.Fatal(err)
	}
	if ticks != 4 {
		t.Fatalf("ticks=%d want 4", ticks)
	}
	if env.Now() != Time(4*Second+Millisecond) {
		t.Fatalf("now=%v", env.Now())
	}
	env.Shutdown()
	if env.LiveProcs() != 0 {
		t.Fatalf("live=%d after shutdown", env.LiveProcs())
	}
}

func TestDeadlockDetection(t *testing.T) {
	env := NewEnv(1)
	ev := NewEvent(env)
	env.Spawn("stuck", func(p *Proc) {
		ev.Wait(p) // never fired
	})
	err := env.Run()
	de, ok := err.(DeadlockError)
	if !ok {
		t.Fatalf("err=%v, want DeadlockError", err)
	}
	if len(de.Blocked) != 1 || de.Blocked[0] != "stuck" {
		t.Fatalf("blocked=%v", de.Blocked)
	}
	env.Shutdown()
}

func TestDeterministicRandStream(t *testing.T) {
	seq := func(seed int64) []int64 {
		env := NewEnv(seed)
		var out []int64
		env.Spawn("r", func(p *Proc) {
			for i := 0; i < 8; i++ {
				out = append(out, env.Rand().Int63())
			}
		})
		if err := env.Run(); err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b, c := seq(42), seq(42), seq(43)
	same, diff := true, false
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
		if a[i] != c[i] {
			diff = true
		}
	}
	if !same {
		t.Fatal("same seed produced different streams")
	}
	if !diff {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestWaitUntilPastIsNoop(t *testing.T) {
	env := NewEnv(1)
	env.Spawn("p", func(p *Proc) {
		p.Wait(5 * Millisecond)
		p.WaitUntil(Time(Millisecond)) // in the past
		if p.Now() != Time(5*Millisecond) {
			t.Errorf("now=%v", p.Now())
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestManyProcessesComplete(t *testing.T) {
	env := NewEnv(3)
	const n = 500
	done := 0
	for i := 0; i < n; i++ {
		d := Duration(i%17) * Microsecond
		env.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
			for j := 0; j < 5; j++ {
				p.Wait(d)
			}
			done++
		})
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if done != n {
		t.Fatalf("done=%d want %d", done, n)
	}
}

// TestQuickKernelDeterminism: a randomized mesh of processes exchanging
// values through queues with CPU contention produces a bit-identical event
// trace on every run with the same seed.
func TestQuickKernelDeterminism(t *testing.T) {
	trace := func(seed int64) []string {
		env := NewEnv(seed)
		cpu := NewCPU(env, "c", 2, 1.0, 100)
		queues := make([]*Queue[int], 4)
		for i := range queues {
			queues[i] = NewQueue[int](env)
		}
		var log []string
		for i := 0; i < 6; i++ {
			id := i
			th := NewThread(fmt.Sprintf("t%d", i), "w")
			env.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
				r := env.Rand()
				for step := 0; step < 20; step++ {
					cpu.Exec(p, th, int64(100+r.Intn(500)))
					q := queues[r.Intn(len(queues))]
					if r.Intn(2) == 0 {
						q.Push(id*100 + step)
					} else if v, ok := q.TryPop(); ok {
						log = append(log, fmt.Sprintf("%d:%d@%d", id, v, p.Now()))
					}
					p.Wait(Duration(r.Intn(1000)))
				}
				log = append(log, fmt.Sprintf("done%d@%d", id, p.Now()))
			})
		}
		if err := env.RunUntil(MaxTime); err != nil {
			t.Fatal(err)
		}
		env.Shutdown()
		return log
	}
	for seed := int64(1); seed <= 3; seed++ {
		a, b := trace(seed), trace(seed)
		if len(a) != len(b) {
			t.Fatalf("seed %d: trace lengths differ: %d vs %d", seed, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("seed %d: traces diverge at %d: %q vs %q", seed, i, a[i], b[i])
			}
		}
	}
	// Different seeds should differ (sanity that the trace captures anything).
	a, b := trace(1), trace(2)
	same := len(a) == len(b)
	if same {
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

// Package rpcchan implements the lightweight control-plane RPC channel of
// DoCeph (paper §3.2): a persistent socket between the DPU and the host
// carrying small serialized requests — each framed as a header with the
// operation type, a unique request id and the payload length — dispatched
// by an event-driven server loop on the receiving side. It is deliberately
// cheap but not free: every message pays syscall, copy and wakeup costs on
// both CPUs, which is why bulk data does NOT belong on this path.
package rpcchan

import (
	"fmt"

	"doceph/internal/sim"
	"doceph/internal/wire"
)

// HeaderBytes is the frame header size (op + request id + length).
const HeaderBytes = 16

// Config models one endpoint's CPU costs and the link between the two.
type Config struct {
	// Latency is the one-way socket latency (kernel path over PCIe/host
	// interface).
	Latency sim.Duration
	// BytesPerSec is the socket throughput (this is a control channel; the
	// default is deliberately modest).
	BytesPerSec float64
	// FixedCycles is charged per message on the processing endpoint.
	FixedCycles int64
	// PerByteCycles is charged per payload byte (serialize + copy).
	PerByteCycles float64
	// SwitchesPerMsg records voluntary context switches per message.
	SwitchesPerMsg int64
}

// DefaultConfig returns control-channel defaults (~25 us latency, 2 GB/s).
func DefaultConfig() Config {
	return Config{
		Latency:        25 * sim.Microsecond,
		BytesPerSec:    2e9,
		FixedCycles:    10_000,
		PerByteCycles:  0.8,
		SwitchesPerMsg: 2,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.Latency == 0 {
		c.Latency = d.Latency
	}
	if c.BytesPerSec == 0 {
		c.BytesPerSec = d.BytesPerSec
	}
	if c.FixedCycles == 0 {
		c.FixedCycles = d.FixedCycles
	}
	if c.PerByteCycles == 0 {
		c.PerByteCycles = d.PerByteCycles
	}
	if c.SwitchesPerMsg == 0 {
		c.SwitchesPerMsg = d.SwitchesPerMsg
	}
	return c
}

// Request is a decoded inbound RPC.
type Request struct {
	Op      uint16
	ReqID   uint64
	Payload *wire.Bufferlist
}

// Handler services one request on the endpoint's server loop. Respond may
// be called inline or later from a spawned process (for handlers that block
// on storage); it must be called exactly once per request.
type Handler func(p *sim.Proc, req *Request, respond func(payload *wire.Bufferlist, errCode uint16))

// Stats counts endpoint traffic.
type Stats struct {
	CallsSent   int64
	CallsServed int64
	Notifies    int64
	BytesSent   int64
	BytesRecv   int64
}

// Endpoint is one side of the channel.
type Endpoint struct {
	env  *sim.Env
	name string
	cpu  *sim.CPU
	th   *sim.Thread
	cfg  Config

	peer     *Endpoint
	inq      *sim.Queue[envelope]
	handlers map[uint16]Handler
	pending  map[uint64]*pendingCall
	nextID   uint64
	// sendFree is the busy-until time of this endpoint's outbound socket
	// direction.
	sendFree sim.Time

	stats Stats
}

type envelope struct {
	req     bool
	notify  bool
	op      uint16
	reqID   uint64
	errCode uint16
	payload *wire.Bufferlist
	bytes   int64
}

type pendingCall struct {
	done    *sim.Event
	payload *wire.Bufferlist
	errCode uint16
}

// Response error codes: 0 is success; anything else is surfaced to the
// caller as a CallError.
type CallError struct{ Code uint16 }

func (e CallError) Error() string { return fmt.Sprintf("rpcchan: remote error code %d", e.Code) }

// New wires two endpoints together. Each endpoint charges its work to its
// own CPU under the given thread (the paper's taxonomy: the proxy thread on
// the DPU, the RPC-server thread on the host).
func New(env *sim.Env, nameA string, cpuA *sim.CPU, thA *sim.Thread,
	nameB string, cpuB *sim.CPU, thB *sim.Thread, cfg Config) (*Endpoint, *Endpoint) {
	cfg = cfg.withDefaults()
	a := newEndpoint(env, nameA, cpuA, thA, cfg)
	b := newEndpoint(env, nameB, cpuB, thB, cfg)
	a.peer, b.peer = b, a
	return a, b
}

func newEndpoint(env *sim.Env, name string, cpu *sim.CPU, th *sim.Thread, cfg Config) *Endpoint {
	e := &Endpoint{
		env: env, name: name, cpu: cpu, th: th, cfg: cfg,
		inq:      sim.NewQueue[envelope](env),
		handlers: make(map[uint16]Handler),
		pending:  make(map[uint64]*pendingCall),
	}
	env.SpawnDaemon("rpc-server:"+name, func(p *sim.Proc) { e.serve(p) })
	return e
}

// Stats returns a copy of the endpoint counters.
func (e *Endpoint) Stats() Stats { return e.stats }

// Handle registers a handler for op.
func (e *Endpoint) Handle(op uint16, h Handler) { e.handlers[op] = h }

// Call sends a request and blocks p until the response arrives, returning
// the response payload.
func (e *Endpoint) Call(p *sim.Proc, op uint16, payload *wire.Bufferlist) (*wire.Bufferlist, error) {
	e.nextID++
	id := e.nextID
	pc := &pendingCall{done: sim.NewEvent(e.env)}
	e.pending[id] = pc
	e.send(p, envelope{req: true, op: op, reqID: id, payload: payload})
	e.stats.CallsSent++
	pc.done.Wait(p)
	if pc.errCode != 0 {
		return nil, CallError{Code: pc.errCode}
	}
	return pc.payload, nil
}

// Notify sends a one-way message (no response) processed by the peer's
// handler for op; the handler's respond function becomes a no-op.
func (e *Endpoint) Notify(p *sim.Proc, op uint16, payload *wire.Bufferlist) {
	e.nextID++
	e.send(p, envelope{req: true, notify: true, op: op, reqID: e.nextID, payload: payload})
	e.stats.Notifies++
}

// send pays the sender-side CPU cost and models socket serialization +
// latency with a busy-until outbound direction, then delivers into the
// peer's input queue via a courier process (non-blocking for the caller
// beyond the CPU cost, like a buffered socket write).
func (e *Endpoint) send(p *sim.Proc, env envelope) {
	env.bytes = HeaderBytes
	if env.payload != nil {
		env.bytes += int64(env.payload.Length())
	}
	e.cpu.Exec(p, e.th, e.cfg.FixedCycles+int64(float64(env.bytes)*e.cfg.PerByteCycles))
	e.cpu.NoteSwitches(e.th, e.cfg.SwitchesPerMsg)
	e.stats.BytesSent += env.bytes

	ser := sim.Duration(float64(env.bytes) / e.cfg.BytesPerSec * float64(sim.Second))
	start := e.env.Now()
	if e.sendFree > start {
		start = e.sendFree
	}
	arrive := start.Add(ser + e.cfg.Latency)
	e.sendFree = start.Add(ser)
	peer := e.peer
	e.env.Spawn(fmt.Sprintf("rpc-wire:%s", e.name), func(cp *sim.Proc) {
		cp.WaitUntil(arrive)
		peer.inq.Push(env)
	})
}

// serve is the endpoint's event-driven receive loop.
func (e *Endpoint) serve(p *sim.Proc) {
	p.SetThread(e.th)
	for {
		env := e.inq.Pop(p)
		e.cpu.Exec(p, e.th, e.cfg.FixedCycles+int64(float64(env.bytes)*e.cfg.PerByteCycles))
		e.cpu.NoteSwitches(e.th, e.cfg.SwitchesPerMsg)
		e.stats.BytesRecv += env.bytes
		if env.req {
			e.stats.CallsServed++
			h, ok := e.handlers[env.op]
			if !ok {
				if !env.notify {
					e.send(p, envelope{reqID: env.reqID, errCode: 0xFFFF})
				}
				continue
			}
			id := env.reqID
			isNotify := env.notify
			responded := false
			h(p, &Request{Op: env.op, ReqID: id, Payload: env.payload},
				func(payload *wire.Bufferlist, errCode uint16) {
					if responded {
						panic("rpcchan: respond called twice for req " + fmt.Sprint(id))
					}
					responded = true
					if isNotify {
						return
					}
					// The responder may be a spawned completion process;
					// charge the response send to the server thread via the
					// current proc.
					e.sendFromAny(payload, errCode, id)
				})
			continue
		}
		// Response path.
		if pc, ok := e.pending[env.reqID]; ok {
			pc.payload = env.payload
			pc.errCode = env.errCode
			pc.done.Fire()
			delete(e.pending, env.reqID)
		}
	}
}

// sendFromAny sends a response envelope on behalf of whatever process is
// running; CPU cost is charged by a courier on the endpoint's thread.
func (e *Endpoint) sendFromAny(payload *wire.Bufferlist, errCode uint16, reqID uint64) {
	env := envelope{reqID: reqID, errCode: errCode, payload: payload}
	env.bytes = HeaderBytes
	if payload != nil {
		env.bytes += int64(payload.Length())
	}
	e.stats.BytesSent += env.bytes
	peer := e.peer
	e.env.Spawn(fmt.Sprintf("rpc-resp:%s/%d", e.name, reqID), func(cp *sim.Proc) {
		e.cpu.Exec(cp, e.th, e.cfg.FixedCycles+int64(float64(env.bytes)*e.cfg.PerByteCycles))
		e.cpu.NoteSwitches(e.th, e.cfg.SwitchesPerMsg)
		ser := sim.Duration(float64(env.bytes) / e.cfg.BytesPerSec * float64(sim.Second))
		start := cp.Now()
		if e.sendFree > start {
			start = e.sendFree
		}
		arrive := start.Add(ser + e.cfg.Latency)
		e.sendFree = start.Add(ser)
		cp.WaitUntil(arrive)
		peer.inq.Push(env)
	})
}

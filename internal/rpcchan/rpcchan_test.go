package rpcchan

import (
	"errors"
	"testing"

	"doceph/internal/sim"
	"doceph/internal/wire"
)

type rpcRig struct {
	env       *sim.Env
	dpuCPU    *sim.CPU
	hostCPU   *sim.CPU
	dpu, host *Endpoint
}

func newRPCRig(cfg Config) *rpcRig {
	env := sim.NewEnv(1)
	r := &rpcRig{
		env:     env,
		dpuCPU:  sim.NewCPU(env, "arm", 8, 2.0, 2000),
		hostCPU: sim.NewCPU(env, "host", 8, 3.7, 2000),
	}
	r.dpu, r.host = New(env,
		"dpu", r.dpuCPU, sim.NewThread("proxy-rpc", "proxy"),
		"host", r.hostCPU, sim.NewThread("host-rpc", "rpc-server"), cfg)
	return r
}

func (r *rpcRig) run(t *testing.T, body func(p *sim.Proc)) {
	t.Helper()
	done := false
	r.env.Spawn("body", func(p *sim.Proc) {
		p.SetThread(sim.NewThread("dpu-caller", "proxy"))
		body(p)
		done = true
	})
	if err := r.env.RunUntil(sim.Time(60 * sim.Second)); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("body did not finish")
	}
	r.env.Shutdown()
}

func TestCallRoundTrip(t *testing.T) {
	r := newRPCRig(Config{})
	r.host.Handle(1, func(p *sim.Proc, req *Request, respond func(*wire.Bufferlist, uint16)) {
		respond(wire.FromBytes(append([]byte("echo:"), req.Payload.Bytes()...)), 0)
	})
	r.run(t, func(p *sim.Proc) {
		resp, err := r.dpu.Call(p, 1, wire.FromBytes([]byte("hello")))
		if err != nil {
			t.Fatal(err)
		}
		if string(resp.Bytes()) != "echo:hello" {
			t.Fatalf("resp=%q", resp.Bytes())
		}
	})
}

func TestCallsMatchConcurrently(t *testing.T) {
	r := newRPCRig(Config{})
	r.host.Handle(2, func(p *sim.Proc, req *Request, respond func(*wire.Bufferlist, uint16)) {
		// Respond asynchronously with a delay inversely ordered to arrival,
		// forcing out-of-order responses.
		payload := req.Payload.Clone()
		d := sim.Duration(100-payload.Bytes()[0]) * sim.Millisecond
		p.Env().Spawn("responder", func(cp *sim.Proc) {
			cp.Wait(d)
			respond(payload, 0)
		})
	})
	results := make([]byte, 3)
	for i := 0; i < 3; i++ {
		idx := i
		r.env.Spawn("caller", func(p *sim.Proc) {
			p.SetThread(sim.NewThread("c", "proxy"))
			resp, err := r.dpu.Call(p, 2, wire.FromBytes([]byte{byte(idx)}))
			if err != nil {
				t.Errorf("call %d: %v", idx, err)
				return
			}
			results[idx] = resp.Bytes()[0]
		})
	}
	if err := r.env.RunUntil(sim.Time(60 * sim.Second)); err != nil {
		t.Fatal(err)
	}
	r.env.Shutdown()
	for i, v := range results {
		if v != byte(i) {
			t.Fatalf("results=%v", results)
		}
	}
}

func TestRemoteErrorCode(t *testing.T) {
	r := newRPCRig(Config{})
	r.host.Handle(3, func(p *sim.Proc, req *Request, respond func(*wire.Bufferlist, uint16)) {
		respond(nil, 42)
	})
	r.run(t, func(p *sim.Proc) {
		_, err := r.dpu.Call(p, 3, nil)
		var ce CallError
		if !errors.As(err, &ce) || ce.Code != 42 {
			t.Fatalf("err=%v", err)
		}
	})
}

func TestUnknownOpReturnsError(t *testing.T) {
	r := newRPCRig(Config{})
	r.run(t, func(p *sim.Proc) {
		_, err := r.dpu.Call(p, 99, nil)
		var ce CallError
		if !errors.As(err, &ce) || ce.Code != 0xFFFF {
			t.Fatalf("err=%v", err)
		}
	})
}

func TestNotifyDelivered(t *testing.T) {
	r := newRPCRig(Config{})
	var got []byte
	r.host.Handle(4, func(p *sim.Proc, req *Request, respond func(*wire.Bufferlist, uint16)) {
		got = req.Payload.Bytes()
		respond(nil, 0) // no-op for notify
	})
	r.run(t, func(p *sim.Proc) {
		r.dpu.Notify(p, 4, wire.FromBytes([]byte("fire-and-forget")))
		p.Wait(sim.Second)
		if string(got) != "fire-and-forget" {
			t.Fatalf("got=%q", got)
		}
	})
}

func TestCPUChargedBothSides(t *testing.T) {
	r := newRPCRig(Config{})
	r.host.Handle(5, func(p *sim.Proc, req *Request, respond func(*wire.Bufferlist, uint16)) {
		respond(nil, 0)
	})
	r.run(t, func(p *sim.Proc) {
		if _, err := r.dpu.Call(p, 5, wire.FromBytes(make([]byte, 10_000))); err != nil {
			t.Fatal(err)
		}
	})
	if r.hostCPU.Stats().BusyByCat["rpc-server"] <= 0 {
		t.Fatal("host rpc-server CPU not charged")
	}
	if r.dpuCPU.Stats().BusyByCat["proxy"] <= 0 {
		t.Fatal("dpu proxy CPU not charged")
	}
}

func TestLatencyPaidOnWire(t *testing.T) {
	r := newRPCRig(Config{Latency: 100 * sim.Microsecond})
	r.host.Handle(6, func(p *sim.Proc, req *Request, respond func(*wire.Bufferlist, uint16)) {
		respond(nil, 0)
	})
	r.run(t, func(p *sim.Proc) {
		start := p.Now()
		if _, err := r.dpu.Call(p, 6, nil); err != nil {
			t.Fatal(err)
		}
		if p.Now().Sub(start) < 200*sim.Microsecond {
			t.Fatalf("rtt=%v, want >= 2x latency", p.Now().Sub(start))
		}
	})
}

func TestStatsCounters(t *testing.T) {
	r := newRPCRig(Config{})
	r.host.Handle(7, func(p *sim.Proc, req *Request, respond func(*wire.Bufferlist, uint16)) {
		respond(nil, 0)
	})
	r.run(t, func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			if _, err := r.dpu.Call(p, 7, wire.FromBytes(make([]byte, 100))); err != nil {
				t.Fatal(err)
			}
		}
	})
	if r.dpu.Stats().CallsSent != 3 || r.host.Stats().CallsServed != 3 {
		t.Fatalf("dpu=%+v host=%+v", r.dpu.Stats(), r.host.Stats())
	}
	if r.dpu.Stats().BytesSent == 0 || r.host.Stats().BytesRecv < r.dpu.Stats().BytesSent {
		t.Fatalf("bytes: %+v / %+v", r.dpu.Stats(), r.host.Stats())
	}
}

// Package radosbench reimplements the RADOS bench workload generator the
// paper evaluates with (§5.1): a closed-loop benchmark in which a fixed
// number of concurrent client threads issue fixed-size object operations
// for a fixed duration, reporting average latency, IOPS and throughput plus
// per-second samples (rados bench's built-in instrumentation).
package radosbench

import (
	"fmt"
	"sort"
	"sync"

	"doceph/internal/rados"
	"doceph/internal/sim"
	"doceph/internal/wire"
)

// payloadCache memoizes the benchmark payload per object size. The fill
// pattern is a pure function of the byte index (seed-independent), and the
// data plane never mutates payload segments (Bufferlist aliasing contract),
// so one immutable buffer per size serves every run in the process — a
// benchmark sweep stops re-generating megabytes of pattern data per
// scenario.
var payloadCache = struct {
	sync.Mutex
	bySize map[int64]*wire.Bufferlist
}{bySize: make(map[int64]*wire.Bufferlist)}

// benchPayload returns the shared, immutable payload for the given size.
func benchPayload(size int64) *wire.Bufferlist {
	payloadCache.Lock()
	defer payloadCache.Unlock()
	if bl, ok := payloadCache.bySize[size]; ok {
		return bl
	}
	b := wire.GetBuffer(int(size))[:size]
	for i := range b {
		b[i] = byte(i * 2654435761)
	}
	bl := wire.FromBytes(b)
	payloadCache.bySize[size] = bl
	return bl
}

// Payload returns the shared, immutable benchmark payload used for writes
// of the given size, so tests can verify stored content op-for-op.
func Payload(size int64) *wire.Bufferlist { return benchPayload(size) }

// Op selects the workload pattern.
type Op int

// Workload patterns.
const (
	Write Op = iota
	Read
	// Mixed interleaves reads and writes per ReadPercent.
	Mixed
)

// Config describes one benchmark run.
type Config struct {
	// Threads is the number of concurrent client workers (-t; paper: 16).
	Threads int
	// ObjectBytes is the request size (paper: 1/4/8/16 MB).
	ObjectBytes int64
	// Duration is the measured interval after warmup. Ignored when
	// OpsPerThread is set.
	Duration sim.Duration
	// OpsPerThread switches the run from fixed-duration to fixed-work:
	// each worker issues exactly this many operations and the run ends
	// when the last one completes. The op set (object names, sizes,
	// read/write split) then depends only on the config — not on timing —
	// which is what lets metamorphic tests compare two runs of the same
	// workload under different transports op-for-op.
	OpsPerThread int
	// QueueDepth is the number of outstanding operations each worker
	// keeps in flight (closed loop). The default (0 or 1) is the classic
	// rados-bench shape: one op per thread at a time. Higher depths spawn
	// that many issue slots per worker sharing one op-index counter, so
	// the op set (names, sizes, read/write split) is still a pure
	// function of the config; only which slot carries which index depends
	// on scheduling, and the simulation schedules deterministically.
	QueueDepth int
	// Warmup is discarded from all statistics; stats windows on the
	// cluster should be reset at its end via OnWarmupEnd.
	Warmup sim.Duration
	// Op is the workload pattern. Read and Mixed prepopulate first.
	Op Op
	// ReadPercent is the read share of a Mixed workload (default 70).
	ReadPercent int
	// PrepopulateObjects writes this many objects before the measured
	// phase (read and mixed workloads).
	PrepopulateObjects int
	// Prefix names the benchmark objects.
	Prefix string
	// Popularity skews read-target selection over the prepopulated set:
	// prepop object i is popularity rank i (rank 0 hottest). The zero value
	// (PopNone) keeps the historical uniform (worker, index) stride. Draws
	// are pure functions of (PopSeed, worker, op index), so fixed-work runs
	// stay comparable op-for-op.
	Popularity Popularity
	// PopSeed seeds the popularity draws (default 1).
	PopSeed int64
	// OnWarmupEnd is invoked at the warmup/measurement boundary (reset
	// cluster CPU windows here).
	OnWarmupEnd func()
}

func (c Config) withDefaults() Config {
	if c.Threads == 0 {
		c.Threads = 16
	}
	if c.ObjectBytes == 0 {
		c.ObjectBytes = 4 << 20
	}
	if c.Duration == 0 {
		c.Duration = 60 * sim.Second
	}
	if c.Prefix == "" {
		c.Prefix = "benchmark_data"
	}
	if c.Op == Mixed && c.ReadPercent == 0 {
		c.ReadPercent = 70
	}
	if c.Popularity.Kind != PopNone && c.PopSeed == 0 {
		c.PopSeed = 1
	}
	return c
}

// ClassStats carries per-op-class (read or write) metrics over the
// measured window.
type ClassStats struct {
	Ops        int64
	Bytes      int64
	AvgLatency sim.Duration
	MinLatency sim.Duration
	MaxLatency sim.Duration
	P50        sim.Duration
	P99        sim.Duration
}

// IOPS returns the class's completed operations per second over window.
func (c ClassStats) IOPS(window sim.Duration) float64 {
	if window <= 0 {
		return 0
	}
	return float64(c.Ops) / window.Seconds()
}

// ThroughputBps returns the class's bytes per second over window.
func (c ClassStats) ThroughputBps(window sim.Duration) float64 {
	if window <= 0 {
		return 0
	}
	return float64(c.Bytes) / window.Seconds()
}

func classStats(lats []sim.Duration, ops, bytes int64) ClassStats {
	cs := ClassStats{Ops: ops, Bytes: bytes}
	if len(lats) == 0 {
		return cs
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	var sum sim.Duration
	for _, l := range lats {
		sum += l
	}
	cs.AvgLatency = sum / sim.Duration(len(lats))
	cs.MinLatency = lats[0]
	cs.MaxLatency = lats[len(lats)-1]
	cs.P50 = lats[len(lats)/2]
	cs.P99 = lats[len(lats)*99/100]
	return cs
}

// SecondSample is one per-second instrumentation row.
type SecondSample struct {
	Second int
	Ops    int64
	Bytes  int64
	AvgLat sim.Duration
}

// Result carries the run's metrics over the measured window.
type Result struct {
	Op          Op
	ObjectBytes int64
	Threads     int
	Window      sim.Duration

	Ops        int64
	Bytes      int64
	AvgLatency sim.Duration
	MinLatency sim.Duration
	MaxLatency sim.Duration
	P50        sim.Duration
	P99        sim.Duration

	// ReadStats/WriteStats split the window's metrics by op class, so
	// mixed workloads report per-class latency percentiles and IOPS.
	ReadStats  ClassStats
	WriteStats ClassStats

	PerSecond []SecondSample
}

// IOPS returns completed operations per second.
func (r Result) IOPS() float64 {
	if r.Window <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Window.Seconds()
}

// ThroughputBps returns bytes per second.
func (r Result) ThroughputBps() float64 {
	if r.Window <= 0 {
		return 0
	}
	return float64(r.Bytes) / r.Window.Seconds()
}

func (r Result) String() string {
	return fmt.Sprintf("%d threads x %d B: %d ops in %v -> %.1f IOPS, %.1f MB/s, avg lat %.4fs",
		r.Threads, r.ObjectBytes, r.Ops, r.Window, r.IOPS(),
		r.ThroughputBps()/1e6, r.AvgLatency.Seconds())
}

// Run executes the benchmark against client inside env. It must be called
// before env is driven; it spawns the workers and a controller, drives the
// environment itself until the measured window ends, and returns the
// result. The environment can be reused (Shutdown is left to the caller).
func Run(env *sim.Env, client *rados.Client, cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	res := Result{Op: cfg.Op, ObjectBytes: cfg.ObjectBytes, Threads: cfg.Threads}

	// One shared payload: segments are shared zero-copy by every write, so
	// memory stays O(ObjectBytes), not O(total data written). The pattern
	// is deterministic per size, so it is memoized across runs too.
	payload := benchPayload(cfg.ObjectBytes)

	qd := cfg.QueueDepth
	if qd < 1 {
		qd = 1
	}

	var popGen *PopGen
	if cfg.Popularity.Kind != PopNone {
		n := cfg.PrepopulateObjects
		if n == 0 {
			n = cfg.Threads * 4
		}
		var err error
		if popGen, err = NewPopGen(cfg.Popularity, n); err != nil {
			return res, err
		}
	}

	var (
		measuring    bool
		stopped      bool
		measureStart sim.Time
		lats         []sim.Duration
		readLats     []sim.Duration
		writeLats    []sim.Duration
		perSecOps    []int64
		perSecBy     []int64
		perSecLat    []sim.Duration
		benchErr     error
		workersLeft  = cfg.Threads * qd
		lastEnd      sim.Time
	)
	record := func(start, end sim.Time, bytes int64, read bool) {
		if !measuring || stopped {
			return
		}
		lat := end.Sub(start)
		lats = append(lats, lat)
		res.Ops++
		res.Bytes += bytes
		if read {
			readLats = append(readLats, lat)
			res.ReadStats.Ops++
			res.ReadStats.Bytes += bytes
		} else {
			writeLats = append(writeLats, lat)
			res.WriteStats.Ops++
			res.WriteStats.Bytes += bytes
		}
		sec := int(end.Sub(measureStart) / sim.Duration(sim.Second))
		for len(perSecOps) <= sec {
			perSecOps = append(perSecOps, 0)
			perSecBy = append(perSecBy, 0)
			perSecLat = append(perSecLat, 0)
		}
		perSecOps[sec]++
		perSecBy[sec] += bytes
		perSecLat[sec] += lat
	}

	prepopDone := sim.NewEvent(env)
	if cfg.Op == Read || cfg.Op == Mixed {
		env.Spawn("bench-prepop", func(p *sim.Proc) {
			p.SetThread(sim.NewThread("bench-prepop", rados.ThreadCat))
			n := cfg.PrepopulateObjects
			if n == 0 {
				n = cfg.Threads * 4
			}
			for i := 0; i < n; i++ {
				obj := fmt.Sprintf("%s_prepop_%d", cfg.Prefix, i)
				if err := client.Write(p, obj, payload); err != nil {
					benchErr = fmt.Errorf("radosbench: prepopulate %s: %w", obj, err)
					break
				}
			}
			prepopDone.Fire()
		})
	} else {
		prepopDone.Fire()
	}

	for w := 0; w < cfg.Threads; w++ {
		worker := w
		// All of a worker's issue slots share one op-index counter, so the
		// op set is a function of (worker, index) regardless of depth. The
		// event loop is cooperative, so the counter needs no locking.
		next := 0
		for q := 0; q < qd; q++ {
			procName := fmt.Sprintf("bench-worker-%d", worker)
			threadName := fmt.Sprintf("bench-%d", worker)
			if q > 0 {
				procName = fmt.Sprintf("bench-worker-%d-q%d", worker, q)
				threadName = fmt.Sprintf("bench-%d.%d", worker, q)
			}
			env.Spawn(procName, func(p *sim.Proc) {
				p.SetThread(sim.NewThread(threadName, rados.ThreadCat))
				prepopDone.Wait(p)
				nPrepop := cfg.PrepopulateObjects
				if nPrepop == 0 {
					nPrepop = cfg.Threads * 4
				}
				for benchErr == nil {
					i := next
					if cfg.OpsPerThread > 0 {
						if i >= cfg.OpsPerThread {
							break
						}
					} else if stopped {
						break
					}
					next++
					start := p.Now()
					var err error
					var bytes int64
					doRead := cfg.Op == Read
					if cfg.Op == Mixed {
						if cfg.OpsPerThread > 0 {
							// Fixed-work runs derive the read/write split from
							// (worker, i) so the op set is identical no matter
							// how the transport schedules the workers.
							doRead = (worker*7919+i*104729)%100 < cfg.ReadPercent
						} else {
							doRead = env.Rand().Intn(100) < cfg.ReadPercent
						}
					}
					if !doRead {
						obj := fmt.Sprintf("%s_w%d_%d", cfg.Prefix, worker, i)
						err = client.Write(p, obj, payload)
						bytes = cfg.ObjectBytes
					} else {
						idx := (worker*7919 + i) % nPrepop
						if popGen != nil {
							idx = popGen.Pick(cfg.PopSeed,
								uint64(worker)<<32|uint64(uint32(i)))
						}
						obj := fmt.Sprintf("%s_prepop_%d", cfg.Prefix, idx)
						var bl *wire.Bufferlist
						bl, err = client.Read(p, obj, 0, 0)
						if err == nil {
							bytes = int64(bl.Length())
						}
					}
					if err != nil {
						benchErr = fmt.Errorf("radosbench: worker %d: %w", worker, err)
						return
					}
					record(start, p.Now(), bytes, doRead)
				}
				if cfg.OpsPerThread > 0 {
					workersLeft--
					if workersLeft == 0 {
						lastEnd = p.Now()
						stopped = true
					}
				}
			})
		}
	}

	// Controller: flips the measurement window.
	env.Spawn("bench-controller", func(p *sim.Proc) {
		prepopDone.Wait(p)
		p.Wait(cfg.Warmup)
		measuring = true
		measureStart = p.Now()
		if cfg.OnWarmupEnd != nil {
			cfg.OnWarmupEnd()
		}
		if cfg.OpsPerThread > 0 {
			return // fixed-work runs end when the last worker finishes
		}
		p.Wait(cfg.Duration)
		stopped = true
	})

	// Drive in chunks until the controller stops the run (prepopulation
	// shifts the end instant, so poll rather than precompute).
	for !stopped && benchErr == nil {
		if err := env.RunUntil(env.Now().Add(sim.Second)); err != nil {
			return res, err
		}
	}
	if benchErr != nil {
		return res, benchErr
	}

	if cfg.OpsPerThread > 0 {
		res.Window = lastEnd.Sub(measureStart)
	} else {
		res.Window = cfg.Duration
	}
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		var sum sim.Duration
		for _, l := range lats {
			sum += l
		}
		res.AvgLatency = sum / sim.Duration(len(lats))
		res.MinLatency = lats[0]
		res.MaxLatency = lats[len(lats)-1]
		res.P50 = lats[len(lats)/2]
		res.P99 = lats[len(lats)*99/100]
	}
	res.ReadStats = classStats(readLats, res.ReadStats.Ops, res.ReadStats.Bytes)
	res.WriteStats = classStats(writeLats, res.WriteStats.Ops, res.WriteStats.Bytes)
	for s := range perSecOps {
		smp := SecondSample{Second: s, Ops: perSecOps[s], Bytes: perSecBy[s]}
		if perSecOps[s] > 0 {
			smp.AvgLat = perSecLat[s] / sim.Duration(perSecOps[s])
		}
		res.PerSecond = append(res.PerSecond, smp)
	}
	return res, nil
}

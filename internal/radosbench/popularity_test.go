package radosbench

import (
	"math"
	"sort"
	"testing"
)

func TestParsePopKind(t *testing.T) {
	cases := map[string]PopKind{"": PopNone, "none": PopNone, "uniform": PopUniform, "zipf": PopZipf, "hotspot": PopHotspot}
	for s, want := range cases {
		got, err := ParsePopKind(s)
		if err != nil || got != want {
			t.Fatalf("ParsePopKind(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParsePopKind("pareto"); err == nil {
		t.Fatalf("unknown kind accepted")
	}
}

func TestPopularityValidate(t *testing.T) {
	bad := []Popularity{
		{Kind: PopZipf, ZipfS: -1},
		{Kind: PopHotspot, HotObjects: -3},
		{Kind: PopHotspot, HotFraction: 1.5},
		{Kind: PopUniform, Objects: -1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("case %d: invalid popularity accepted: %+v", i, p)
		}
	}
	if err := (Popularity{Kind: PopZipf}).Validate(); err != nil {
		t.Fatalf("defaulted zipf rejected: %v", err)
	}
	if _, err := NewPopGen(Popularity{Kind: PopNone}, 10); err == nil {
		t.Fatalf("PopNone generator constructed")
	}
	if _, err := NewPopGen(Popularity{Kind: PopUniform}, 0); err == nil {
		t.Fatalf("empty catalog accepted")
	}
}

// TestPopGenSeededDeterminism: same (model, seed, stream) → same rank, and
// the generator is stateless — interleaving or reordering draws cannot
// change any individual draw. This is the property the parallel kernel's
// bit-identical guarantee rests on.
func TestPopGenSeededDeterminism(t *testing.T) {
	for _, p := range []Popularity{{Kind: PopUniform}, {Kind: PopZipf, ZipfS: 1.1}, {Kind: PopHotspot, HotObjects: 8, HotFraction: 0.9}} {
		g1, err := NewPopGen(p, 1024)
		if err != nil {
			t.Fatalf("%v: %v", p.Kind, err)
		}
		g2, err := NewPopGen(p, 1024)
		if err != nil {
			t.Fatalf("%v: %v", p.Kind, err)
		}
		const n = 4096
		forward := make([]int, n)
		for i := 0; i < n; i++ {
			forward[i] = g1.Pick(42, uint64(i))
		}
		// Replay backwards on an independent generator instance.
		for i := n - 1; i >= 0; i-- {
			if got := g2.Pick(42, uint64(i)); got != forward[i] {
				t.Fatalf("%v: stream %d drew %d backwards, %d forwards", p.Kind, i, got, forward[i])
			}
		}
		// A different seed must produce a different sequence.
		same := 0
		for i := 0; i < n; i++ {
			if g1.Pick(43, uint64(i)) == forward[i] {
				same++
			}
		}
		if same == n {
			t.Fatalf("%v: seeds 42 and 43 produced identical sequences", p.Kind)
		}
	}
}

// TestZipfRankFrequencySlope: fit the empirical log(freq) vs log(rank+1)
// slope over the head of the distribution and require it within tolerance
// of -s for several exponents.
func TestZipfRankFrequencySlope(t *testing.T) {
	for _, s := range []float64{0.8, 1.1, 1.4} {
		g, err := NewPopGen(Popularity{Kind: PopZipf, ZipfS: s}, 512)
		if err != nil {
			t.Fatalf("s=%g: %v", s, err)
		}
		counts := make([]float64, g.N())
		const draws = 400000
		for i := 0; i < draws; i++ {
			counts[g.Pick(7, uint64(i))]++
		}
		// Empirical frequencies are already in rank order by construction
		// (rank 0 hottest), but sort defensively: the fit wants the
		// rank-frequency curve, not the identity ordering.
		sort.Sort(sort.Reverse(sort.Float64Slice(counts)))
		// Least-squares slope over the head (ranks 0..63), where counts are
		// large enough for sampling noise to be small.
		var sx, sy, sxx, sxy float64
		n := 0.0
		for r := 0; r < 64; r++ {
			if counts[r] == 0 {
				t.Fatalf("s=%g: head rank %d drew zero times in %d draws", s, r, draws)
			}
			x, y := math.Log(float64(r+1)), math.Log(counts[r])
			sx, sy, sxx, sxy = sx+x, sy+y, sxx+x*x, sxy+x*y
			n++
		}
		slope := (n*sxy - sx*sy) / (n*sxx - sx*sx)
		if math.Abs(slope+s) > 0.05 {
			t.Fatalf("s=%g: empirical rank-frequency slope %.4f, want %.4f ± 0.05", s, slope, -s)
		}
	}
}

// TestHotspotMass: the N-hot mode must put HotFraction of the draws on the
// configured hot set, within sampling tolerance, and spread the hot mass
// roughly uniformly inside the set.
func TestHotspotMass(t *testing.T) {
	for _, tc := range []struct {
		hot  int
		frac float64
	}{{8, 0.9}, {16, 0.5}, {4, 0.99}} {
		g, err := NewPopGen(Popularity{Kind: PopHotspot, HotObjects: tc.hot, HotFraction: tc.frac}, 1024)
		if err != nil {
			t.Fatalf("hot=%d: %v", tc.hot, err)
		}
		const draws = 200000
		hotDraws := 0
		perRank := make([]int, tc.hot)
		for i := 0; i < draws; i++ {
			r := g.Pick(11, uint64(i))
			if r < tc.hot {
				hotDraws++
				perRank[r]++
			}
		}
		got := float64(hotDraws) / draws
		if math.Abs(got-tc.frac) > 0.01 {
			t.Fatalf("hot=%d frac=%g: hot-set mass %.4f, want %.4f ± 0.01", tc.hot, tc.frac, got, tc.frac)
		}
		want := float64(hotDraws) / float64(tc.hot)
		for r, c := range perRank {
			if math.Abs(float64(c)-want) > 0.15*want {
				t.Fatalf("hot=%d: rank %d drew %d times, want ≈%.0f (±15%%)", tc.hot, r, c, want)
			}
		}
	}
}

// TestHotspotDegenerateCoversCatalog: a hot set at least as large as the
// catalog degrades to uniform rather than dividing by zero.
func TestHotspotDegenerateCoversCatalog(t *testing.T) {
	g, err := NewPopGen(Popularity{Kind: PopHotspot, HotObjects: 64, HotFraction: 0.9}, 16)
	if err != nil {
		t.Fatalf("%v", err)
	}
	counts := make([]int, 16)
	const draws = 64000
	for i := 0; i < draws; i++ {
		counts[g.Pick(3, uint64(i))]++
	}
	want := float64(draws) / 16
	for r, c := range counts {
		if math.Abs(float64(c)-want) > 0.15*want {
			t.Fatalf("rank %d drew %d times, want ≈%.0f", r, c, want)
		}
	}
}

// TestUniformHashIsUniform: coarse goodness-of-fit on UnitHash — 64 equal
// bins, each within 10% of the expected count, and the full [0,1) range hit.
func TestUniformHashIsUniform(t *testing.T) {
	const bins, draws = 64, 640000
	counts := make([]int, bins)
	minU, maxU := 1.0, 0.0
	for i := 0; i < draws; i++ {
		u := UnitHash(99, uint64(i))
		if u < 0 || u >= 1 {
			t.Fatalf("UnitHash out of [0,1): %g", u)
		}
		if u < minU {
			minU = u
		}
		if u > maxU {
			maxU = u
		}
		counts[int(u*bins)]++
	}
	want := float64(draws) / bins
	for b, c := range counts {
		if math.Abs(float64(c)-want) > 0.1*want {
			t.Fatalf("bin %d has %d draws, want ≈%.0f (±10%%)", b, c, want)
		}
	}
	if minU > 0.001 || maxU < 0.999 {
		t.Fatalf("UnitHash range [%g, %g] does not cover [0,1)", minU, maxU)
	}
}

func TestRankEdgeCases(t *testing.T) {
	g, err := NewPopGen(Popularity{Kind: PopUniform}, 4)
	if err != nil {
		t.Fatalf("%v", err)
	}
	if r := g.Rank(0); r != 0 {
		t.Fatalf("Rank(0) = %d, want 0", r)
	}
	if r := g.Rank(math.Nextafter(1, 0)); r != 3 {
		t.Fatalf("Rank(1-ε) = %d, want 3", r)
	}
	if g.N() != 4 {
		t.Fatalf("N() = %d", g.N())
	}
}

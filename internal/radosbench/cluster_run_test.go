// External test package: these tests drive radosbench against a real
// cluster, and cluster itself imports radosbench (scale-out popularity
// config), so an in-package test would be an import cycle.
package radosbench_test

import (
	"testing"

	"doceph/internal/cluster"
	"doceph/internal/radosbench"
	"doceph/internal/sim"
)

// TestRunSmallWrite drives a short real write workload through a baseline
// cluster and checks the accumulated stats are internally consistent.
func TestRunSmallWrite(t *testing.T) {
	cl := cluster.New(cluster.Config{Mode: cluster.Baseline, Seed: 7})
	defer cl.Shutdown()
	res, err := radosbench.Run(cl.Env, cl.Client, radosbench.Config{
		Op:          radosbench.Write,
		Threads:     2,
		ObjectBytes: 256 << 10,
		Duration:    sim.Second,
		Warmup:      100 * sim.Millisecond,
		OnWarmupEnd: cl.ResetHostStats,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops <= 0 {
		t.Fatal("no ops completed")
	}
	if res.Bytes != res.Ops*(256<<10) {
		t.Errorf("bytes = %d, want ops*size = %d", res.Bytes, res.Ops*(256<<10))
	}
	if res.Window <= 0 {
		t.Errorf("window = %v", res.Window)
	}
	if !(res.MinLatency <= res.P50 && res.P50 <= res.P99 && res.P99 <= res.MaxLatency) {
		t.Errorf("latency ordering violated: min %v, p50 %v, p99 %v, max %v",
			res.MinLatency, res.P50, res.P99, res.MaxLatency)
	}
	if res.AvgLatency < res.MinLatency || res.AvgLatency > res.MaxLatency {
		t.Errorf("avg latency %v outside [min, max]", res.AvgLatency)
	}
	if res.IOPS() <= 0 || res.ThroughputBps() <= 0 {
		t.Errorf("derived rates empty: %v", res)
	}
}

// TestRunFixedWork pins the OpsPerThread contract: exactly Threads *
// OpsPerThread operations complete regardless of timing, and the window is
// measured rather than configured.
func TestRunFixedWork(t *testing.T) {
	cl := cluster.New(cluster.Config{Mode: cluster.Baseline, Seed: 7})
	defer cl.Shutdown()
	res, err := radosbench.Run(cl.Env, cl.Client, radosbench.Config{
		Op:           radosbench.Write,
		Threads:      3,
		ObjectBytes:  64 << 10,
		OpsPerThread: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(3 * 5); res.Ops != want {
		t.Fatalf("ops = %d, want %d", res.Ops, want)
	}
	if res.Bytes != res.Ops*(64<<10) {
		t.Errorf("bytes = %d, want %d", res.Bytes, res.Ops*(64<<10))
	}
	if res.Window <= 0 {
		t.Errorf("window = %v", res.Window)
	}
}

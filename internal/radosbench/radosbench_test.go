package radosbench

import (
	"testing"

	"doceph/internal/cluster"
	"doceph/internal/sim"
)

// TestBenchPayloadMemoized pins the payload cache contract: one immutable
// buffer per size, aliased across calls, with the documented deterministic
// fill pattern.
func TestBenchPayloadMemoized(t *testing.T) {
	a := benchPayload(4096)
	if got := a.Length(); got != 4096 {
		t.Fatalf("payload length = %d, want 4096", got)
	}
	if b := benchPayload(4096); b != a {
		t.Error("repeated size must return the same aliased Bufferlist")
	}
	if c := benchPayload(8192); c == a || c.Length() != 8192 {
		t.Errorf("distinct size must get its own buffer (len %d)", c.Length())
	}
	raw := a.Bytes()
	for _, i := range []int{0, 1, 255, 4095} {
		if want := byte(i * 2654435761); raw[i] != want {
			t.Errorf("payload[%d] = %#x, want %#x (fill must stay a pure function of the index)", i, raw[i], want)
		}
	}
}

func TestResultDerivedRates(t *testing.T) {
	r := Result{Ops: 10, Bytes: 100 << 20, Window: 2 * sim.Second}
	if got := r.IOPS(); got != 5 {
		t.Errorf("IOPS = %v, want 5", got)
	}
	if got := r.ThroughputBps(); got != float64(50<<20) {
		t.Errorf("throughput = %v, want %v", got, float64(50<<20))
	}
	// A zero or negative window must not divide by zero.
	for _, w := range []sim.Duration{0, -sim.Second} {
		r.Window = w
		if r.IOPS() != 0 || r.ThroughputBps() != 0 {
			t.Errorf("window %v: rates must be 0", w)
		}
	}
}

// TestRunSmallWrite drives a short real write workload through a baseline
// cluster and checks the accumulated stats are internally consistent.
func TestRunSmallWrite(t *testing.T) {
	cl := cluster.New(cluster.Config{Mode: cluster.Baseline, Seed: 7})
	defer cl.Shutdown()
	res, err := Run(cl.Env, cl.Client, Config{
		Op:          Write,
		Threads:     2,
		ObjectBytes: 256 << 10,
		Duration:    sim.Second,
		Warmup:      100 * sim.Millisecond,
		OnWarmupEnd: cl.ResetHostStats,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops <= 0 {
		t.Fatal("no ops completed")
	}
	if res.Bytes != res.Ops*(256<<10) {
		t.Errorf("bytes = %d, want ops*size = %d", res.Bytes, res.Ops*(256<<10))
	}
	if res.Window <= 0 {
		t.Errorf("window = %v", res.Window)
	}
	if !(res.MinLatency <= res.P50 && res.P50 <= res.P99 && res.P99 <= res.MaxLatency) {
		t.Errorf("latency ordering violated: min %v, p50 %v, p99 %v, max %v",
			res.MinLatency, res.P50, res.P99, res.MaxLatency)
	}
	if res.AvgLatency < res.MinLatency || res.AvgLatency > res.MaxLatency {
		t.Errorf("avg latency %v outside [min, max]", res.AvgLatency)
	}
	if res.IOPS() <= 0 || res.ThroughputBps() <= 0 {
		t.Errorf("derived rates empty: %v", res)
	}
}

// TestRunFixedWork pins the OpsPerThread contract: exactly Threads *
// OpsPerThread operations complete regardless of timing, and the window is
// measured rather than configured.
func TestRunFixedWork(t *testing.T) {
	cl := cluster.New(cluster.Config{Mode: cluster.Baseline, Seed: 7})
	defer cl.Shutdown()
	res, err := Run(cl.Env, cl.Client, Config{
		Op:           Write,
		Threads:      3,
		ObjectBytes:  64 << 10,
		OpsPerThread: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(3 * 5); res.Ops != want {
		t.Fatalf("ops = %d, want %d", res.Ops, want)
	}
	if res.Bytes != res.Ops*(64<<10) {
		t.Errorf("bytes = %d, want %d", res.Bytes, res.Ops*(64<<10))
	}
	if res.Window <= 0 {
		t.Errorf("window = %v", res.Window)
	}
}

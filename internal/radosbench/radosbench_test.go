package radosbench

import (
	"testing"

	"doceph/internal/sim"
)

// TestBenchPayloadMemoized pins the payload cache contract: one immutable
// buffer per size, aliased across calls, with the documented deterministic
// fill pattern.
func TestBenchPayloadMemoized(t *testing.T) {
	a := benchPayload(4096)
	if got := a.Length(); got != 4096 {
		t.Fatalf("payload length = %d, want 4096", got)
	}
	if b := benchPayload(4096); b != a {
		t.Error("repeated size must return the same aliased Bufferlist")
	}
	if c := benchPayload(8192); c == a || c.Length() != 8192 {
		t.Errorf("distinct size must get its own buffer (len %d)", c.Length())
	}
	raw := a.Bytes()
	for _, i := range []int{0, 1, 255, 4095} {
		if want := byte(i * 2654435761); raw[i] != want {
			t.Errorf("payload[%d] = %#x, want %#x (fill must stay a pure function of the index)", i, raw[i], want)
		}
	}
}

func TestResultDerivedRates(t *testing.T) {
	r := Result{Ops: 10, Bytes: 100 << 20, Window: 2 * sim.Second}
	if got := r.IOPS(); got != 5 {
		t.Errorf("IOPS = %v, want 5", got)
	}
	if got := r.ThroughputBps(); got != float64(50<<20) {
		t.Errorf("throughput = %v, want %v", got, float64(50<<20))
	}
	// A zero or negative window must not divide by zero.
	for _, w := range []sim.Duration{0, -sim.Second} {
		r.Window = w
		if r.IOPS() != 0 || r.ThroughputBps() != 0 {
			t.Errorf("window %v: rates must be 0", w)
		}
	}
}

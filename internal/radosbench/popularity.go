// Object-popularity models for skewed workloads: a seeded Zipf(s)
// rank-frequency generator and an N-hot-objects mode. Both are pure
// functions of (configuration, seed, stream position) — no generator state
// advances between draws — so an op's target object depends only on which
// op it is, never on scheduling. That is the property that lets the
// partitioned parallel kernel run skewed workloads bit-identically at any
// worker count, and what the statistical tests in popularity_test.go pin.
package radosbench

import (
	"fmt"
	"math"
	"sort"
)

// PopKind selects the object-popularity model.
type PopKind int

// Popularity kinds. PopNone (the zero value) means "no popularity model":
// harnesses keep their historical object-selection behaviour.
const (
	PopNone PopKind = iota
	// PopUniform draws objects uniformly from the catalog — the control
	// arm skewed runs are compared against.
	PopUniform
	// PopZipf draws rank r with probability proportional to 1/(r+1)^s.
	PopZipf
	// PopHotspot puts HotFraction of the mass uniformly on the HotObjects
	// hottest ranks and the remainder uniformly on the rest.
	PopHotspot
)

func (k PopKind) String() string {
	switch k {
	case PopUniform:
		return "uniform"
	case PopZipf:
		return "zipf"
	case PopHotspot:
		return "hotspot"
	default:
		return "none"
	}
}

// ParsePopKind maps the experiment-flag spelling onto a kind.
func ParsePopKind(s string) (PopKind, error) {
	switch s {
	case "", "none":
		return PopNone, nil
	case "uniform":
		return PopUniform, nil
	case "zipf":
		return PopZipf, nil
	case "hotspot":
		return PopHotspot, nil
	default:
		return PopNone, fmt.Errorf("radosbench: unknown popularity kind %q (want none, uniform, zipf or hotspot)", s)
	}
}

// Popularity configures an object-popularity model. The zero value (PopNone)
// disables it.
type Popularity struct {
	Kind PopKind
	// Objects is the catalog size the model draws from. Harnesses that
	// know their own catalog (radosbench's prepopulated set, a rack's
	// share of a global catalog) size the generator themselves and ignore
	// this field.
	Objects int
	// ZipfS is the Zipf exponent s (the magnitude of the rank-frequency
	// log-log slope; default 1.1).
	ZipfS float64
	// HotObjects is the hot-set size of the N-hot mode (default 8).
	HotObjects int
	// HotFraction is the probability mass on the hot set (default 0.9).
	HotFraction float64
}

// WithDefaults fills zero fields with the model defaults.
func (p Popularity) WithDefaults() Popularity {
	if p.ZipfS == 0 {
		p.ZipfS = 1.1
	}
	if p.HotObjects == 0 {
		p.HotObjects = 8
	}
	if p.HotFraction == 0 {
		p.HotFraction = 0.9
	}
	return p
}

// Validate rejects shapes the generator cannot honour.
func (p Popularity) Validate() error {
	p = p.WithDefaults()
	switch p.Kind {
	case PopNone, PopUniform, PopZipf, PopHotspot:
	default:
		return fmt.Errorf("radosbench: unknown popularity kind %d", p.Kind)
	}
	if p.Objects < 0 {
		return fmt.Errorf("radosbench: popularity objects must be non-negative, got %d", p.Objects)
	}
	if p.Kind == PopZipf && p.ZipfS <= 0 {
		return fmt.Errorf("radosbench: zipf exponent must be positive, got %g", p.ZipfS)
	}
	if p.Kind == PopHotspot {
		if p.HotObjects <= 0 {
			return fmt.Errorf("radosbench: hotspot needs a positive hot-set size, got %d", p.HotObjects)
		}
		if p.HotFraction <= 0 || p.HotFraction > 1 {
			return fmt.Errorf("radosbench: hot fraction %g out of (0,1]", p.HotFraction)
		}
	}
	return nil
}

// PopGen maps uniform variates onto object ranks under a Popularity model
// over a catalog of n objects. Construction is O(n); each draw is a binary
// search over the precomputed cumulative mass. A PopGen is immutable after
// construction and safe for concurrent use.
type PopGen struct {
	p   Popularity
	n   int
	cum []float64
}

// NewPopGen builds a generator over a catalog of n objects. Rank 0 is the
// hottest object.
func NewPopGen(p Popularity, n int) (*PopGen, error) {
	p = p.WithDefaults()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if p.Kind == PopNone {
		return nil, fmt.Errorf("radosbench: PopNone has no generator")
	}
	if n <= 0 {
		return nil, fmt.Errorf("radosbench: popularity catalog must be non-empty, got %d", n)
	}
	g := &PopGen{p: p, n: n, cum: make([]float64, n)}
	sum := 0.0
	for r := 0; r < n; r++ {
		sum += g.weight(r)
		g.cum[r] = sum
	}
	return g, nil
}

// weight is rank r's unnormalized probability mass.
func (g *PopGen) weight(r int) float64 {
	switch g.p.Kind {
	case PopZipf:
		return math.Pow(float64(r+1), -g.p.ZipfS)
	case PopHotspot:
		hot := g.p.HotObjects
		if hot >= g.n {
			return 1 // a hot set covering the catalog is uniform
		}
		if r < hot {
			return g.p.HotFraction / float64(hot)
		}
		return (1 - g.p.HotFraction) / float64(g.n-hot)
	default: // PopUniform
		return 1
	}
}

// N returns the catalog size.
func (g *PopGen) N() int { return g.n }

// Rank maps a uniform variate u in [0,1) onto an object rank: the smallest
// rank whose cumulative mass exceeds u's share of the total.
func (g *PopGen) Rank(u float64) int {
	target := u * g.cum[g.n-1]
	r := sort.SearchFloat64s(g.cum, target)
	// SearchFloat64s finds the first cum >= target; an exact hit belongs to
	// the next rank (cum[r] is the *inclusive* upper edge of rank r).
	if r < g.n-1 && g.cum[r] == target {
		r++
	}
	if r >= g.n {
		r = g.n - 1
	}
	return r
}

// Pick returns the object rank for stream position stream under seed: a
// pure function of (model, seed, stream), which is what makes skewed
// workloads schedulable on the parallel kernel without losing determinism.
func (g *PopGen) Pick(seed int64, stream uint64) int {
	return g.Rank(UnitHash(seed, stream))
}

// UnitHash maps (seed, stream) onto a uniform variate in [0,1) with a
// splitmix64-style finalizer. Streams should encode the draw's identity
// (worker id, op index, ...) so distinct draws get independent variates.
func UnitHash(seed int64, stream uint64) float64 {
	x := stream + uint64(seed)*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}

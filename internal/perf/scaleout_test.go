package perf

import (
	"strings"
	"testing"

	"doceph/internal/cluster"
)

func tinyScaleOut(name string, workers int) Scenario {
	return Scenario{
		Name: name, Mode: cluster.DoCeph, ObjectBytes: 64 << 10,
		Threads: 2, DurationSec: 1, WarmupSec: 0, Seed: 3,
		ScaleOutPods: 2, OSDsPerPod: 2, SimWorkers: workers,
	}
}

func TestScaleOutScenarioValidate(t *testing.T) {
	if err := tinyScaleOut("so@w2", 2).Validate(); err != nil {
		t.Fatalf("valid scale-out scenario rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Scenario)
		wants  string
	}{
		{"negative pods", func(sc *Scenario) { sc.ScaleOutPods = -1 }, "scale-out knobs"},
		{"workers without pods", func(sc *Scenario) { sc.ScaleOutPods = 0; sc.OSDsPerPod = 0 }, "scaleout_pods"},
		{"transport knobs", func(sc *Scenario) { sc.DMAQueues = 4 }, "default transport"},
		{"degraded", func(sc *Scenario) { sc.Degraded = true }, "default transport"},
	}
	for _, tc := range cases {
		sc := tinyScaleOut("so@w2", 2)
		tc.mutate(&sc)
		err := sc.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.wants) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.wants)
		}
	}
}

func TestRunScenarioScaleOut(t *testing.T) {
	m, err := RunScenario(tinyScaleOut("so@w2", 2))
	if err != nil {
		t.Fatal(err)
	}
	if m.Ops == 0 || m.SimEvents == 0 || m.EventsPerSec <= 0 {
		t.Fatalf("degenerate measurement: %+v", m)
	}
	if m.AllocsPerOp <= 0 {
		t.Fatalf("allocs/op not attributed: %+v", m)
	}
}

func TestDefaultAndSmokeSweepsCarryScaleOutRows(t *testing.T) {
	for _, sweep := range [][]Scenario{DefaultSweep(), SmokeSweep()} {
		var found []string
		for _, sc := range sweep {
			if err := sc.Validate(); err != nil {
				t.Fatal(err)
			}
			if sc.ScaleOutPods > 0 {
				if n := sc.ScaleOutPods * sc.OSDsPerPod; n != 32 && n != 128 {
					t.Fatalf("%s: %dx%d OSDs, want 32 or 128", sc.Name, sc.ScaleOutPods, sc.OSDsPerPod)
				}
				found = append(found, sc.Name)
			}
		}
		if len(found) < 4 || !strings.HasSuffix(found[0], "@w1") {
			t.Fatalf("scale-out rows missing or unsorted: %v", found)
		}
		var got128 bool
		for _, name := range found {
			if strings.Contains(name, "128osd") {
				got128 = true
			}
		}
		if !got128 {
			t.Fatalf("128-OSD rows missing: %v", found)
		}
	}
}

func TestScaleOutWorkerRows(t *testing.T) {
	rows := ScaleOutWorkerRows(DefaultSweep(), []int{1, 2, 8})
	var got []string
	for _, sc := range rows {
		if sc.ScaleOutPods > 0 {
			got = append(got, sc.Name)
			if sc.SimWorkers != 1 && sc.SimWorkers != 2 && sc.SimWorkers != 8 {
				t.Fatalf("%s: workers=%d", sc.Name, sc.SimWorkers)
			}
		}
	}
	want := []string{
		"doceph-scaleout-32osd@w1", "doceph-scaleout-32osd@w2", "doceph-scaleout-32osd@w8",
		"doceph-scaleout-128osd@w1", "doceph-scaleout-128osd@w2", "doceph-scaleout-128osd@w8",
	}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("got %v want %v", got, want)
	}
	// Non-scale-out rows pass through in place.
	if rows[0].Name != DefaultSweep()[0].Name {
		t.Fatalf("leading row moved: %s", rows[0].Name)
	}
}

func speedupReport(serialEPS, wideEPS float64, wideWorkers int, events uint64) Report {
	return Report{Scenarios: []Measurement{
		{Name: "so@w1", EventsPerSec: serialEPS, SimEvents: events, Ops: 10},
		{Name: "so@w" + string(rune('0'+wideWorkers)), EventsPerSec: wideEPS, SimEvents: events, Ops: 10},
	}}
}

func TestGuardParallelSpeedup(t *testing.T) {
	// 8 cores, 8 workers: the nominal 3x floor is enforced.
	if sum, err := guardParallelSpeedup(speedupReport(100, 350, 8, 5), 3.0, 8); err != nil {
		t.Fatalf("3.5x at 8 cores failed: %v (%s)", err, sum)
	}
	if _, err := guardParallelSpeedup(speedupReport(100, 120, 8, 5), 3.0, 8); err == nil {
		t.Fatal("1.2x at 8 cores passed a 3x floor")
	}
	// 4 cores: floor scales to 0.45*4 = 1.8x.
	if _, err := guardParallelSpeedup(speedupReport(100, 200, 8, 5), 3.0, 4); err != nil {
		t.Fatal("2.0x at 4 cores should clear the scaled 1.8x floor")
	}
	if _, err := guardParallelSpeedup(speedupReport(100, 150, 8, 5), 3.0, 4); err == nil {
		t.Fatal("1.5x at 4 cores passed the scaled 1.8x floor")
	}
	// 1 core: unenforceable, skipped with the reason in the summary.
	sum, err := guardParallelSpeedup(speedupReport(100, 101, 8, 5), 3.0, 1)
	if err != nil {
		t.Fatalf("single-core guard errored: %v", err)
	}
	if !strings.Contains(sum, "cannot show parallel speedup") {
		t.Fatalf("skip reason missing: %q", sum)
	}
	// No @wN rows at all: nothing to compare.
	if sum, err := guardParallelSpeedup(Report{Scenarios: []Measurement{{Name: "doceph-1M"}}}, 3.0, 8); err != nil || !strings.Contains(sum, "no @wN") {
		t.Fatalf("sum=%q err=%v", sum, err)
	}
}

func TestGuardParallelSpeedupCatchesDeterminismDrift(t *testing.T) {
	rep := speedupReport(100, 400, 8, 5)
	rep.Scenarios[1].SimEvents = 6 // differs from the serial row
	_, err := guardParallelSpeedup(rep, 3.0, 8)
	if err == nil || !strings.Contains(err.Error(), "determinism violation") {
		t.Fatalf("err=%v", err)
	}
	// Even on a single core — determinism is wall-clock independent.
	if _, err := guardParallelSpeedup(rep, 3.0, 1); err == nil {
		t.Fatal("single-core run skipped the determinism cross-check")
	}
}

// Package perf measures the wall-clock throughput of the simulator itself:
// events/sec through the DES kernel, wall-clock ns per completed benchmark
// op and heap allocations per op, over a small fixed radosbench sweep. The
// numbers feed BENCH_sim.json (via cmd/simbench) so the perf trajectory of
// the simulator is tracked across PRs — simulated results are asserted
// bit-identical separately by the golden-determinism test.
package perf

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"doceph/internal/cluster"
	"doceph/internal/radosbench"
	"doceph/internal/sim"
)

// Scenario is one cell of the sweep: a cluster mode and workload shape run
// at a fixed seed. The transport knobs (queues, shards, lanes, batching)
// default to the serial shape; the multi-queue scenario sets all four.
type Scenario struct {
	Name        string       `json:"name"`
	Mode        cluster.Mode `json:"mode"`
	ObjectBytes int64        `json:"object_bytes"`
	Threads     int          `json:"threads"`
	DurationSec int          `json:"duration_sec"`
	WarmupSec   int          `json:"warmup_sec"`
	Seed        int64        `json:"seed"`

	// DMAQueues / OpShards / MsgrLanes / Batch reshape the DoCeph transport
	// (multi-queue DMA engine, sharded OSD dispatch, messenger lanes,
	// adaptive batching). Zero/false keeps the serial defaults.
	DMAQueues int  `json:"dma_queues,omitempty"`
	OpShards  int  `json:"op_shards,omitempty"`
	MsgrLanes int  `json:"msgr_lanes,omitempty"`
	Batch     bool `json:"batch,omitempty"`

	// Op selects the workload pattern: "" or "write" (default), "read", or
	// "mixed" with ReadPercent as the read share. Read and mixed scenarios
	// prepopulate their read targets before the measured window.
	Op          string `json:"op,omitempty"`
	ReadPercent int    `json:"read_percent,omitempty"`

	// ScaleOutPods > 0 switches the scenario from the single-cluster
	// radosbench harness to the partitioned scale-out assembly
	// (cluster.NewScaleOut): ScaleOutPods racks of OSDsPerPod OSDs each,
	// executed by the conservative parallel kernel on SimWorkers worker
	// goroutines (0 or 1 = serial barrier loop). The simulated result is
	// bit-identical across SimWorkers; only the wall-clock side may move.
	ScaleOutPods int `json:"scaleout_pods,omitempty"`
	OSDsPerPod   int `json:"osds_per_pod,omitempty"`
	SimWorkers   int `json:"sim_workers,omitempty"`

	// Workload selects the scale-out object-popularity model ("uniform",
	// "zipf" or "hotspot"; "" keeps the legacy per-thread stride). With a
	// workload set, ReadPercent mixes catalog reads in and BalanceReads
	// spreads them across rack-local acting sets. Scale-out only.
	Workload     string `json:"workload,omitempty"`
	BalanceReads bool   `json:"balance_reads,omitempty"`

	// Stream turns on the flow-controlled chunk-pipelined data plane: large
	// writes travel as credit-windowed chunk frames and the OSDs ingest them
	// incrementally instead of reassembling one monolithic op. Keeps the
	// streaming path (pump procs, per-chunk transactions, credit-on-commit)
	// on the perf radar.
	Stream bool `json:"stream,omitempty"`

	// Degraded runs the scenario through the self-healing write path:
	// osd.1 is administratively down when the workload starts (min_size=1
	// accepts the degraded writes) and rejoins halfway through the
	// measured window, so the second half is backfill under the recovery
	// QoS knobs. This keeps the degraded ledger, recovery pacing and
	// op-queue backoff on the perf radar, not just the clean path.
	Degraded bool `json:"degraded,omitempty"`
}

// DefaultSweep is the radosbench sweep `make bench` runs: both deployment
// modes at two paper object sizes, plus the batched multi-queue small-op
// shape so the parallel transport paths are tracked like the serial ones.
// Small enough to finish in seconds of wall clock, large enough that the
// kernel and data plane dominate.
func DefaultSweep() []Scenario {
	return []Scenario{
		{Name: "baseline-1M", Mode: cluster.Baseline, ObjectBytes: 1 << 20, Threads: 16, DurationSec: 3, WarmupSec: 1, Seed: 42},
		{Name: "baseline-4M", Mode: cluster.Baseline, ObjectBytes: 4 << 20, Threads: 16, DurationSec: 3, WarmupSec: 1, Seed: 42},
		{Name: "doceph-1M", Mode: cluster.DoCeph, ObjectBytes: 1 << 20, Threads: 16, DurationSec: 3, WarmupSec: 1, Seed: 42},
		{Name: "doceph-4M", Mode: cluster.DoCeph, ObjectBytes: 4 << 20, Threads: 16, DurationSec: 3, WarmupSec: 1, Seed: 42},
		{Name: "doceph-mq4-64K", Mode: cluster.DoCeph, ObjectBytes: 64 << 10, Threads: 16, DurationSec: 3, WarmupSec: 1, Seed: 42,
			DMAQueues: 4, OpShards: 4, MsgrLanes: 4, Batch: true},
		{Name: "doceph-degraded-4K", Mode: cluster.DoCeph, ObjectBytes: 4 << 10, Threads: 16, DurationSec: 3, WarmupSec: 1, Seed: 42,
			Degraded: true},
		{Name: "doceph-read-4K", Mode: cluster.DoCeph, ObjectBytes: 4 << 10, Threads: 16, DurationSec: 3, WarmupSec: 1, Seed: 42,
			Op: "read"},
		{Name: "doceph-mix70-4K", Mode: cluster.DoCeph, ObjectBytes: 4 << 10, Threads: 16, DurationSec: 3, WarmupSec: 1, Seed: 42,
			Op: "mixed", ReadPercent: 70},
		{Name: "doceph-stream-16M", Mode: cluster.DoCeph, ObjectBytes: 16 << 20, Threads: 4, DurationSec: 3, WarmupSec: 1, Seed: 42,
			Stream: true},
		scaleOut32("doceph-scaleout-32osd", 1, 2),
		scaleOut32("doceph-scaleout-32osd", 8, 2),
		scaleOut128("doceph-scaleout-128osd", 1, 1),
		scaleOut128("doceph-scaleout-128osd", 8, 1),
	}
}

// scaleOut32 is the 32-OSD partitioned scenario at a given worker count.
// The name carries the worker suffix so BENCH_sim.json keeps one row per
// scale and perf.Guard can pin per-scale floors.
func scaleOut32(base string, workers, durationSec int) Scenario {
	return Scenario{
		Name:         fmt.Sprintf("%s@w%d", base, workers),
		Mode:         cluster.DoCeph,
		ObjectBytes:  256 << 10,
		Threads:      4,
		DurationSec:  durationSec,
		WarmupSec:    1,
		Seed:         42,
		ScaleOutPods: 8,
		OSDsPerPod:   4,
		SimWorkers:   workers,
	}
}

// scaleOut128 is the 128-OSD (16 racks x 8 OSDs) partitioned scenario: a
// Zipf-skewed 70/30 read mix with replica-read balancing on, so the rows
// track the parallel kernel under the hot-PG shape production fears rather
// than a uniform write flood.
func scaleOut128(base string, workers, durationSec int) Scenario {
	return Scenario{
		Name:         fmt.Sprintf("%s@w%d", base, workers),
		Mode:         cluster.DoCeph,
		ObjectBytes:  64 << 10,
		Threads:      2,
		DurationSec:  durationSec,
		WarmupSec:    1,
		Seed:         42,
		ScaleOutPods: 16,
		OSDsPerPod:   8,
		SimWorkers:   workers,
		Workload:     "zipf",
		ReadPercent:  70,
		BalanceReads: true,
	}
}

// ScaleOutWorkerRows rebuilds the scale-out rows of a sweep for an explicit
// worker-count list (the simbench -sim-workers knob): every scenario whose
// ScaleOutPods is set is replaced by one copy per requested count, renamed
// with the matching @wN suffix. Non-scale-out rows pass through untouched.
func ScaleOutWorkerRows(sweep []Scenario, workers []int) []Scenario {
	out := make([]Scenario, 0, len(sweep))
	seen := make(map[string]bool)
	for _, sc := range sweep {
		if sc.ScaleOutPods <= 0 {
			out = append(out, sc)
			continue
		}
		base := scaleOutBase(sc.Name)
		if seen[base] {
			continue
		}
		seen[base] = true
		for _, w := range workers {
			row := sc
			row.SimWorkers = w
			row.Name = fmt.Sprintf("%s@w%d", base, w)
			out = append(out, row)
		}
	}
	return out
}

// scaleOutBase strips the "@wN" worker suffix from a scenario name.
func scaleOutBase(name string) string {
	if i := strings.LastIndex(name, "@w"); i >= 0 {
		return name[:i]
	}
	return name
}

// SmokeSweep is the short variant wired into `make all`: one scenario per
// mode plus the multi-queue shape, enough to catch a gross perf or
// determinism regression fast.
func SmokeSweep() []Scenario {
	return []Scenario{
		{Name: "baseline-1M", Mode: cluster.Baseline, ObjectBytes: 1 << 20, Threads: 8, DurationSec: 2, WarmupSec: 1, Seed: 42},
		{Name: "doceph-1M", Mode: cluster.DoCeph, ObjectBytes: 1 << 20, Threads: 8, DurationSec: 2, WarmupSec: 1, Seed: 42},
		{Name: "doceph-mq4-64K", Mode: cluster.DoCeph, ObjectBytes: 64 << 10, Threads: 8, DurationSec: 2, WarmupSec: 1, Seed: 42,
			DMAQueues: 4, OpShards: 4, MsgrLanes: 4, Batch: true},
		{Name: "doceph-degraded-4K", Mode: cluster.DoCeph, ObjectBytes: 4 << 10, Threads: 8, DurationSec: 2, WarmupSec: 1, Seed: 42,
			Degraded: true},
		{Name: "doceph-read-4K", Mode: cluster.DoCeph, ObjectBytes: 4 << 10, Threads: 8, DurationSec: 2, WarmupSec: 1, Seed: 42,
			Op: "read"},
		{Name: "doceph-mix70-4K", Mode: cluster.DoCeph, ObjectBytes: 4 << 10, Threads: 8, DurationSec: 2, WarmupSec: 1, Seed: 42,
			Op: "mixed", ReadPercent: 70},
		{Name: "doceph-stream-16M", Mode: cluster.DoCeph, ObjectBytes: 16 << 20, Threads: 4, DurationSec: 2, WarmupSec: 1, Seed: 42,
			Stream: true},
		scaleOut32("doceph-scaleout-32osd", 1, 1),
		scaleOut32("doceph-scaleout-32osd", 4, 1),
		scaleOut128("doceph-scaleout-128osd", 1, 1),
		scaleOut128("doceph-scaleout-128osd", 4, 1),
	}
}

// Measurement is the outcome of one scenario.
type Measurement struct {
	Name string `json:"name"`

	// Simulated-side results (sanity only; bit-exactness is the golden
	// test's job).
	Ops       int64  `json:"ops"`
	SimEvents uint64 `json:"sim_events"`

	// Wall-clock-side results.
	WallNs       int64   `json:"wall_ns"`
	EventsPerSec float64 `json:"events_per_sec"`
	NsPerOp      float64 `json:"ns_per_op"`
	AllocsPerOp  float64 `json:"allocs_per_op"`
	BytesPerOp   float64 `json:"bytes_per_op"`
}

// Report aggregates a sweep.
type Report struct {
	Scenarios []Measurement `json:"scenarios"`

	// Aggregates across the sweep: total events over total wall time, and
	// total allocations over total completed ops — the two numbers the
	// acceptance gate compares.
	EventsPerSec float64 `json:"events_per_sec"`
	AllocsPerOp  float64 `json:"allocs_per_op"`
	NsPerOp      float64 `json:"ns_per_op"`
}

// Validate rejects scenario shapes that would silently fall back to
// radosbench defaults or produce a meaningless measurement window. Perf
// numbers must come from the configured workload, not from defaulting.
func (sc Scenario) Validate() error {
	if sc.Name == "" {
		return fmt.Errorf("perf: scenario has no name")
	}
	if sc.Threads <= 0 {
		return fmt.Errorf("perf: scenario %q: threads must be positive, got %d", sc.Name, sc.Threads)
	}
	if sc.ObjectBytes <= 0 {
		return fmt.Errorf("perf: scenario %q: object_bytes must be positive, got %d", sc.Name, sc.ObjectBytes)
	}
	if sc.DurationSec <= 0 {
		return fmt.Errorf("perf: scenario %q: duration_sec must be positive, got %d", sc.Name, sc.DurationSec)
	}
	if sc.WarmupSec < 0 {
		return fmt.Errorf("perf: scenario %q: warmup_sec must be non-negative, got %d", sc.Name, sc.WarmupSec)
	}
	if sc.DMAQueues < 0 || sc.OpShards < 0 || sc.MsgrLanes < 0 {
		return fmt.Errorf("perf: scenario %q: transport knobs must be non-negative", sc.Name)
	}
	if sc.ScaleOutPods < 0 || sc.OSDsPerPod < 0 || sc.SimWorkers < 0 {
		return fmt.Errorf("perf: scenario %q: scale-out knobs must be non-negative", sc.Name)
	}
	if sc.ScaleOutPods == 0 && (sc.OSDsPerPod > 0 || sc.SimWorkers > 0) {
		return fmt.Errorf("perf: scenario %q: osds_per_pod/sim_workers need scaleout_pods > 0", sc.Name)
	}
	if sc.ScaleOutPods > 0 && (sc.DMAQueues > 0 || sc.OpShards > 0 || sc.MsgrLanes > 0 || sc.Batch || sc.Degraded || sc.Stream) {
		return fmt.Errorf("perf: scenario %q: scale-out racks run the default transport; drop the transport/degraded/stream knobs", sc.Name)
	}
	if sc.Stream && sc.ObjectBytes <= 2<<20 {
		return fmt.Errorf("perf: scenario %q: streaming needs objects above one chunk (2MB), got %d bytes", sc.Name, sc.ObjectBytes)
	}
	switch sc.Op {
	case "", "write", "read", "mixed":
	default:
		return fmt.Errorf("perf: scenario %q: unknown op %q (want write, read or mixed)", sc.Name, sc.Op)
	}
	if sc.ReadPercent < 0 || sc.ReadPercent > 100 {
		return fmt.Errorf("perf: scenario %q: read_percent %d out of range", sc.Name, sc.ReadPercent)
	}
	if sc.ReadPercent > 0 && sc.Op != "mixed" && sc.ScaleOutPods == 0 {
		return fmt.Errorf("perf: scenario %q: read_percent needs op \"mixed\"", sc.Name)
	}
	if sc.ScaleOutPods > 0 && sc.Op != "" {
		return fmt.Errorf("perf: scenario %q: scale-out racks run the write workload; drop op", sc.Name)
	}
	if _, err := radosbench.ParsePopKind(sc.Workload); err != nil {
		return fmt.Errorf("perf: scenario %q: %v", sc.Name, err)
	}
	if (sc.Workload != "" || sc.BalanceReads) && sc.ScaleOutPods == 0 {
		return fmt.Errorf("perf: scenario %q: workload/balance_reads need scaleout_pods > 0", sc.Name)
	}
	return nil
}

// opPattern maps the scenario's op string onto the radosbench pattern.
func (sc Scenario) opPattern() radosbench.Op {
	switch sc.Op {
	case "read":
		return radosbench.Read
	case "mixed":
		return radosbench.Mixed
	default:
		return radosbench.Write
	}
}

// clusterConfig maps the scenario onto the cluster, including the
// multi-queue transport knobs.
func (sc Scenario) clusterConfig() cluster.Config {
	cfg := cluster.Config{Mode: sc.Mode, Seed: sc.Seed}
	cfg.Bridge.Engine.Queues = sc.DMAQueues
	cfg.Bridge.Batch.Enable = sc.Batch
	cfg.OSD.OpShards = sc.OpShards
	cfg.Messenger.Lanes = sc.MsgrLanes
	cfg.Messenger.Stream.Enable = sc.Stream
	if sc.Degraded {
		// Same shape the selfheal experiment defaults to: accept writes at
		// one replica, backfill two PGs at a time under a 64 MB/s bucket,
		// and back off when the foreground queue is four deep.
		cfg.MinSize = 1
		cfg.OSD.RecoveryMaxPGs = 2
		cfg.OSD.RecoveryBps = 64e6
		cfg.OSD.RecoveryBackoffDepth = 4
	}
	return cfg
}

// RunScenario builds a fresh cluster, runs the workload and measures the
// simulator's wall-clock cost. It is deliberately coarse (one GC fence
// before, ReadMemStats deltas around the run) — the point is trajectory
// tracking, not nanosecond benchmarking.
func RunScenario(sc Scenario) (Measurement, error) {
	if err := sc.Validate(); err != nil {
		return Measurement{}, err
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	m, err := runScenario(sc)
	runtime.ReadMemStats(&after)
	if err != nil {
		return Measurement{}, err
	}
	if m.Ops > 0 {
		m.AllocsPerOp = float64(after.Mallocs-before.Mallocs) / float64(m.Ops)
		m.BytesPerOp = float64(after.TotalAlloc-before.TotalAlloc) / float64(m.Ops)
	}
	return m, nil
}

// runScenario is the measurement core without the allocation accounting:
// heap counters are process-global, so under the parallel sweep they are
// read once around the whole sweep instead of around each scenario.
func runScenario(sc Scenario) (Measurement, error) {
	if sc.ScaleOutPods > 0 {
		return runScaleOut(sc)
	}
	cl := cluster.New(sc.clusterConfig())
	defer cl.Shutdown()

	if sc.Degraded {
		// Take osd.1 down administratively at t=0 — the heartbeat grace
		// (5 s) would outlast the whole scenario — and rejoin it halfway
		// through the measured window so the tail runs real backfill under
		// the QoS knobs while the bench clients keep writing.
		rejoin := sim.Duration(sc.WarmupSec)*sim.Second +
			sim.Duration(sc.DurationSec)*sim.Second/2
		cl.Env.Spawn("degrade", func(p *sim.Proc) {
			cl.Nodes[1].OSD.Fail()
			cl.Mon.MarkDown(1)
			p.Wait(rejoin)
			cl.Nodes[1].OSD.Recover()
			cl.Mon.MarkUp(1)
		})
	}

	cfg := radosbench.Config{
		Threads:     sc.Threads,
		ObjectBytes: sc.ObjectBytes,
		Duration:    sim.Duration(sc.DurationSec) * sim.Second,
		Warmup:      sim.Duration(sc.WarmupSec) * sim.Second,
		Op:          sc.opPattern(),
		ReadPercent: sc.ReadPercent,
		OnWarmupEnd: cl.ResetHostStats,
	}
	start := time.Now()
	res, err := radosbench.Run(cl.Env, cl.Client, cfg)
	wall := time.Since(start)
	if err != nil {
		return Measurement{}, err
	}
	if sc.Degraded {
		// The measurement is only meaningful if the degraded machinery
		// actually ran — a regression that stopped it from engaging would
		// otherwise quietly benchmark the clean path under this name.
		var degraded, backfilled int64
		for _, n := range cl.Nodes {
			st := n.OSD.Stats()
			degraded += st.DegradedWrites
			backfilled += st.PGsBackfilled
		}
		if degraded == 0 || backfilled == 0 {
			return Measurement{}, fmt.Errorf(
				"perf: scenario %q: degraded path did not engage (degraded_writes=%d pgs_backfilled=%d)",
				sc.Name, degraded, backfilled)
		}
	}
	if sc.Stream {
		// Same guard for the streaming row: a regression that fell back to
		// store-and-forward would benchmark the monolithic path here.
		var streamed int64
		for _, n := range cl.Nodes {
			streamed += n.OSD.Stats().StreamWrites
		}
		if streamed == 0 {
			return Measurement{}, fmt.Errorf(
				"perf: scenario %q: streaming path did not engage (stream_writes=0)", sc.Name)
		}
	}
	m := Measurement{
		Name:      sc.Name,
		Ops:       res.Ops,
		SimEvents: cl.Env.Events(),
		WallNs:    wall.Nanoseconds(),
	}
	if wall > 0 {
		m.EventsPerSec = float64(m.SimEvents) / wall.Seconds()
	}
	if res.Ops > 0 {
		m.NsPerOp = float64(wall.Nanoseconds()) / float64(res.Ops)
	}
	return m, nil
}

// runScaleOut measures one partitioned scale-out cell. The simulated side
// (ops, events) is a pure function of the scenario minus SimWorkers; the
// wall-clock side is what the per-worker-count rows exist to compare.
func runScaleOut(sc Scenario) (Measurement, error) {
	kind, err := radosbench.ParsePopKind(sc.Workload)
	if err != nil {
		return Measurement{}, fmt.Errorf("perf: scenario %q: %v", sc.Name, err)
	}
	so := cluster.NewScaleOut(cluster.ScaleOutConfig{
		Pods:         sc.ScaleOutPods,
		OSDsPerPod:   sc.OSDsPerPod,
		Mode:         sc.Mode,
		Seed:         sc.Seed,
		Threads:      sc.Threads,
		ObjectBytes:  sc.ObjectBytes,
		ReadPercent:  sc.ReadPercent,
		Duration:     sim.Duration(sc.DurationSec) * sim.Second,
		Warmup:       sim.Duration(sc.WarmupSec) * sim.Second,
		Popularity:   radosbench.Popularity{Kind: kind},
		BalanceReads: sc.BalanceReads,
		// Popularity rows collect the imbalance arrays so the engagement
		// self-check below can prove the skewed path actually ran.
		CollectImbalance: kind != radosbench.PopNone,
	})
	defer so.Shutdown()
	start := time.Now()
	res, err := so.Run(sc.SimWorkers)
	wall := time.Since(start)
	if err != nil {
		return Measurement{}, err
	}
	if res.Delivered == 0 {
		// A scale-out row with no cross-partition traffic would be
		// benchmarking independent serial runs under a parallel-kernel name.
		return Measurement{}, fmt.Errorf("perf: scenario %q: no cross-partition messages delivered", sc.Name)
	}
	if kind != radosbench.PopNone {
		// Same guard for the skewed path: a regression that silently fell
		// back to the legacy stride would benchmark the wrong workload
		// under this row's name.
		im := ComputeImbalance(res)
		if im.MaxMeanOSDShare == 0 {
			return Measurement{}, fmt.Errorf("perf: scenario %q: no per-OSD ops collected", sc.Name)
		}
		if sc.BalanceReads && im.BalancedReadShare == 0 {
			return Measurement{}, fmt.Errorf("perf: scenario %q: balance-reads did not engage", sc.Name)
		}
	}
	m := Measurement{
		Name:      sc.Name,
		Ops:       res.TotalOps,
		SimEvents: res.Events,
		WallNs:    wall.Nanoseconds(),
	}
	if wall > 0 {
		m.EventsPerSec = float64(m.SimEvents) / wall.Seconds()
	}
	if res.TotalOps > 0 {
		m.NsPerOp = float64(wall.Nanoseconds()) / float64(res.TotalOps)
	}
	return m, nil
}

// RunSweep runs the sweep on one worker goroutine per spare core (capped at
// the scenario count) and aggregates. Results are returned in sweep order
// regardless of completion order, and the simulated numbers are identical
// to a serial run — each scenario is its own isolated simulation.
func RunSweep(sweep []Scenario) (Report, error) {
	return RunSweepWorkers(sweep, 0)
}

// RunSweepWorkers is RunSweep with an explicit worker count (0 means
// GOMAXPROCS). With one worker the sweep runs serially and per-scenario
// allocation counters are filled in; with more, per-scenario AllocsPerOp
// and BytesPerOp are left zero (heap counters are process-global and
// cannot be attributed across concurrent scenarios) and only the
// sweep-level aggregate is measured, from one counter delta around the
// whole sweep.
func RunSweepWorkers(sweep []Scenario, workers int) (Report, error) {
	var rep Report
	for _, sc := range sweep {
		if err := sc.Validate(); err != nil {
			return rep, err
		}
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(sweep) {
		workers = len(sweep)
	}

	measurements := make([]Measurement, len(sweep))
	errs := make([]error, len(sweep))
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	if workers <= 1 {
		for i, sc := range sweep {
			// Serial sweep: the counter delta around each scenario is
			// attributable to it alone.
			var b, a runtime.MemStats
			runtime.ReadMemStats(&b)
			measurements[i], errs[i] = runScenario(sc)
			runtime.ReadMemStats(&a)
			if ops := measurements[i].Ops; errs[i] == nil && ops > 0 {
				measurements[i].AllocsPerOp = float64(a.Mallocs-b.Mallocs) / float64(ops)
				measurements[i].BytesPerOp = float64(a.TotalAlloc-b.TotalAlloc) / float64(ops)
			}
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(sweep) {
						return
					}
					measurements[i], errs[i] = runScenario(sweep[i])
				}
			}()
		}
		wg.Wait()
	}
	runtime.ReadMemStats(&after)

	var totalEvents uint64
	var totalWallNs, totalOps int64
	for i, m := range measurements {
		if errs[i] != nil {
			return rep, errs[i]
		}
		totalEvents += m.SimEvents
		totalWallNs += m.WallNs
		totalOps += m.Ops
	}
	rep.Scenarios = measurements
	if totalWallNs > 0 {
		rep.EventsPerSec = float64(totalEvents) / (float64(totalWallNs) / 1e9)
	}
	if totalOps > 0 {
		if workers <= 1 {
			// Keep the serial aggregate the exact op-weighted mean of the
			// per-scenario rows.
			var totalAllocs float64
			for _, m := range measurements {
				totalAllocs += m.AllocsPerOp * float64(m.Ops)
			}
			rep.AllocsPerOp = totalAllocs / float64(totalOps)
		} else {
			rep.AllocsPerOp = float64(after.Mallocs-before.Mallocs) / float64(totalOps)
		}
		rep.NsPerOp = float64(totalWallNs) / float64(totalOps)
	}
	return rep, nil
}

// Package perf measures the wall-clock throughput of the simulator itself:
// events/sec through the DES kernel, wall-clock ns per completed benchmark
// op and heap allocations per op, over a small fixed radosbench sweep. The
// numbers feed BENCH_sim.json (via cmd/simbench) so the perf trajectory of
// the simulator is tracked across PRs — simulated results are asserted
// bit-identical separately by the golden-determinism test.
package perf

import (
	"fmt"
	"runtime"
	"time"

	"doceph/internal/cluster"
	"doceph/internal/radosbench"
	"doceph/internal/sim"
)

// Scenario is one cell of the sweep: a cluster mode and workload shape run
// at a fixed seed.
type Scenario struct {
	Name        string       `json:"name"`
	Mode        cluster.Mode `json:"mode"`
	ObjectBytes int64        `json:"object_bytes"`
	Threads     int          `json:"threads"`
	DurationSec int          `json:"duration_sec"`
	WarmupSec   int          `json:"warmup_sec"`
	Seed        int64        `json:"seed"`
}

// DefaultSweep is the radosbench sweep `make bench` runs: both deployment
// modes at two paper object sizes. Small enough to finish in seconds of
// wall clock, large enough that the kernel and data plane dominate.
func DefaultSweep() []Scenario {
	return []Scenario{
		{Name: "baseline-1M", Mode: cluster.Baseline, ObjectBytes: 1 << 20, Threads: 16, DurationSec: 3, WarmupSec: 1, Seed: 42},
		{Name: "baseline-4M", Mode: cluster.Baseline, ObjectBytes: 4 << 20, Threads: 16, DurationSec: 3, WarmupSec: 1, Seed: 42},
		{Name: "doceph-1M", Mode: cluster.DoCeph, ObjectBytes: 1 << 20, Threads: 16, DurationSec: 3, WarmupSec: 1, Seed: 42},
		{Name: "doceph-4M", Mode: cluster.DoCeph, ObjectBytes: 4 << 20, Threads: 16, DurationSec: 3, WarmupSec: 1, Seed: 42},
	}
}

// SmokeSweep is the short variant wired into `make all`: one scenario per
// mode, enough to catch a gross perf or determinism regression fast.
func SmokeSweep() []Scenario {
	return []Scenario{
		{Name: "baseline-1M", Mode: cluster.Baseline, ObjectBytes: 1 << 20, Threads: 8, DurationSec: 2, WarmupSec: 1, Seed: 42},
		{Name: "doceph-1M", Mode: cluster.DoCeph, ObjectBytes: 1 << 20, Threads: 8, DurationSec: 2, WarmupSec: 1, Seed: 42},
	}
}

// Measurement is the outcome of one scenario.
type Measurement struct {
	Name string `json:"name"`

	// Simulated-side results (sanity only; bit-exactness is the golden
	// test's job).
	Ops       int64  `json:"ops"`
	SimEvents uint64 `json:"sim_events"`

	// Wall-clock-side results.
	WallNs       int64   `json:"wall_ns"`
	EventsPerSec float64 `json:"events_per_sec"`
	NsPerOp      float64 `json:"ns_per_op"`
	AllocsPerOp  float64 `json:"allocs_per_op"`
	BytesPerOp   float64 `json:"bytes_per_op"`
}

// Report aggregates a sweep.
type Report struct {
	Scenarios []Measurement `json:"scenarios"`

	// Aggregates across the sweep: total events over total wall time, and
	// total allocations over total completed ops — the two numbers the
	// acceptance gate compares.
	EventsPerSec float64 `json:"events_per_sec"`
	AllocsPerOp  float64 `json:"allocs_per_op"`
	NsPerOp      float64 `json:"ns_per_op"`
}

// Validate rejects scenario shapes that would silently fall back to
// radosbench defaults or produce a meaningless measurement window. Perf
// numbers must come from the configured workload, not from defaulting.
func (sc Scenario) Validate() error {
	if sc.Name == "" {
		return fmt.Errorf("perf: scenario has no name")
	}
	if sc.Threads <= 0 {
		return fmt.Errorf("perf: scenario %q: threads must be positive, got %d", sc.Name, sc.Threads)
	}
	if sc.ObjectBytes <= 0 {
		return fmt.Errorf("perf: scenario %q: object_bytes must be positive, got %d", sc.Name, sc.ObjectBytes)
	}
	if sc.DurationSec <= 0 {
		return fmt.Errorf("perf: scenario %q: duration_sec must be positive, got %d", sc.Name, sc.DurationSec)
	}
	if sc.WarmupSec < 0 {
		return fmt.Errorf("perf: scenario %q: warmup_sec must be non-negative, got %d", sc.Name, sc.WarmupSec)
	}
	return nil
}

// RunScenario builds a fresh cluster, runs the workload and measures the
// simulator's wall-clock cost. It is deliberately coarse (one GC fence
// before, ReadMemStats deltas around the run) — the point is trajectory
// tracking, not nanosecond benchmarking.
func RunScenario(sc Scenario) (Measurement, error) {
	if err := sc.Validate(); err != nil {
		return Measurement{}, err
	}
	cl := cluster.New(cluster.Config{Mode: sc.Mode, Seed: sc.Seed})
	defer cl.Shutdown()

	cfg := radosbench.Config{
		Threads:     sc.Threads,
		ObjectBytes: sc.ObjectBytes,
		Duration:    sim.Duration(sc.DurationSec) * sim.Second,
		Warmup:      sim.Duration(sc.WarmupSec) * sim.Second,
		OnWarmupEnd: cl.ResetHostStats,
	}

	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()

	res, err := radosbench.Run(cl.Env, cl.Client, cfg)

	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	if err != nil {
		return Measurement{}, err
	}

	m := Measurement{
		Name:      sc.Name,
		Ops:       res.Ops,
		SimEvents: cl.Env.Events(),
		WallNs:    wall.Nanoseconds(),
	}
	if wall > 0 {
		m.EventsPerSec = float64(m.SimEvents) / wall.Seconds()
	}
	if res.Ops > 0 {
		m.NsPerOp = float64(wall.Nanoseconds()) / float64(res.Ops)
		m.AllocsPerOp = float64(after.Mallocs-before.Mallocs) / float64(res.Ops)
		m.BytesPerOp = float64(after.TotalAlloc-before.TotalAlloc) / float64(res.Ops)
	}
	return m, nil
}

// RunSweep runs every scenario and aggregates.
func RunSweep(sweep []Scenario) (Report, error) {
	var rep Report
	var totalEvents uint64
	var totalWallNs, totalOps int64
	var totalAllocs float64
	for _, sc := range sweep {
		m, err := RunScenario(sc)
		if err != nil {
			return rep, err
		}
		rep.Scenarios = append(rep.Scenarios, m)
		totalEvents += m.SimEvents
		totalWallNs += m.WallNs
		totalOps += m.Ops
		totalAllocs += m.AllocsPerOp * float64(m.Ops)
	}
	if totalWallNs > 0 {
		rep.EventsPerSec = float64(totalEvents) / (float64(totalWallNs) / 1e9)
	}
	if totalOps > 0 {
		rep.AllocsPerOp = totalAllocs / float64(totalOps)
		rep.NsPerOp = float64(totalWallNs) / float64(totalOps)
	}
	return rep, nil
}

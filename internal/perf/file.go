package perf

import (
	"encoding/json"
	"fmt"
	"os"
)

// File is the on-disk schema of BENCH_sim.json: a pre-optimization
// baseline recorded once, the most recent run, and their ratios.
type File struct {
	// Baseline is the pre-optimization reference (recorded with
	// -rebaseline, then left alone so speedups stay comparable).
	Baseline *Report `json:"baseline,omitempty"`
	// Current is the most recent run.
	Current *Report `json:"current,omitempty"`

	// SpeedupEventsPerSec is Current/Baseline events/sec (higher is better).
	SpeedupEventsPerSec float64 `json:"speedup_events_per_sec,omitempty"`
	// AllocsPerOpRatio is Current/Baseline allocs/op (lower is better).
	AllocsPerOpRatio float64 `json:"allocs_per_op_ratio,omitempty"`
}

// Guard compares a fresh (tracing-disabled) run against the recorded
// current numbers in the bench file and errors if events/sec collapsed
// below minRatio of the record, or — when maxAllocsRatio > 0 — if allocs/op
// grew above maxAllocsRatio times the record. The same two gates are then
// applied per scenario (matched by name), so a regression confined to one
// transport shape — the multi-queue scenario regressing while the big
// serial transfers hide it in the aggregate — still fails. The loose ratios
// absorb machine-to-machine and smoke-vs-full sweep variance; the guard
// exists to catch gross regressions: instrumentation hooks that stopped
// being free when disabled, or a queueing layer that silently reintroduced
// per-op allocations the zero-copy data plane had eliminated. A missing
// file, record or scenario is not an error (nothing to compare), and
// zero-valued fields on either side are skipped (the parallel sweep does
// not attribute per-scenario allocations).
func Guard(path string, rep Report, minRatio, maxAllocsRatio float64) error {
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	var f File
	if err := json.Unmarshal(raw, &f); err != nil {
		return fmt.Errorf("parse %s: %w", path, err)
	}
	if f.Current == nil || f.Current.EventsPerSec <= 0 {
		return nil
	}
	if rep.EventsPerSec < f.Current.EventsPerSec*minRatio {
		return fmt.Errorf("perf regression: %.0f events/s is below %.0f%% of the recorded %.0f (see %s)",
			rep.EventsPerSec, minRatio*100, f.Current.EventsPerSec, path)
	}
	if maxAllocsRatio > 0 && f.Current.AllocsPerOp > 0 &&
		rep.AllocsPerOp > f.Current.AllocsPerOp*maxAllocsRatio {
		return fmt.Errorf("alloc regression: %.1f allocs/op is above %.1fx the recorded %.1f (see %s)",
			rep.AllocsPerOp, maxAllocsRatio, f.Current.AllocsPerOp, path)
	}
	recorded := make(map[string]Measurement, len(f.Current.Scenarios))
	for _, m := range f.Current.Scenarios {
		recorded[m.Name] = m
	}
	for _, m := range rep.Scenarios {
		rec, ok := recorded[m.Name]
		if !ok {
			continue
		}
		if rec.EventsPerSec > 0 && m.EventsPerSec > 0 &&
			m.EventsPerSec < rec.EventsPerSec*minRatio {
			return fmt.Errorf("perf regression in %s: %.0f events/s is below %.0f%% of the recorded %.0f (see %s)",
				m.Name, m.EventsPerSec, minRatio*100, rec.EventsPerSec, path)
		}
		if maxAllocsRatio > 0 && rec.AllocsPerOp > 0 && m.AllocsPerOp > 0 &&
			m.AllocsPerOp > rec.AllocsPerOp*maxAllocsRatio {
			return fmt.Errorf("alloc regression in %s: %.1f allocs/op is above %.1fx the recorded %.1f (see %s)",
				m.Name, m.AllocsPerOp, maxAllocsRatio, rec.AllocsPerOp, path)
		}
	}
	return nil
}

// UpdateFile folds rep into the bench file at path and rewrites it. A
// missing file starts fresh (the first run becomes its own baseline); a
// present but unparsable file is an error and the file is left untouched —
// the bench gate must fail loudly rather than silently clobber history
// with a partial record.
func UpdateFile(path string, rep Report, rebaseline bool) (File, error) {
	var f File
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &f); err != nil {
			return File{}, fmt.Errorf("parse %s: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return File{}, err
	}
	f.Current = &rep
	if rebaseline || f.Baseline == nil {
		f.Baseline = &rep
	}
	if f.Baseline.EventsPerSec > 0 {
		f.SpeedupEventsPerSec = f.Current.EventsPerSec / f.Baseline.EventsPerSec
	}
	if f.Baseline.AllocsPerOp > 0 {
		f.AllocsPerOpRatio = f.Current.AllocsPerOp / f.Baseline.AllocsPerOp
	}
	raw, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return File{}, err
	}
	if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
		return File{}, err
	}
	return f, nil
}

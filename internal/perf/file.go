package perf

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// File is the on-disk schema of BENCH_sim.json: a pre-optimization
// baseline recorded once, the most recent run, and their ratios.
type File struct {
	// Baseline is the pre-optimization reference (recorded with
	// -rebaseline, then left alone so speedups stay comparable).
	Baseline *Report `json:"baseline,omitempty"`
	// Current is the most recent run.
	Current *Report `json:"current,omitempty"`

	// SpeedupEventsPerSec is Current/Baseline events/sec (higher is better).
	SpeedupEventsPerSec float64 `json:"speedup_events_per_sec,omitempty"`
	// AllocsPerOpRatio is Current/Baseline allocs/op (lower is better).
	AllocsPerOpRatio float64 `json:"allocs_per_op_ratio,omitempty"`
}

// Guard compares a fresh (tracing-disabled) run against the recorded
// current numbers in the bench file and errors if events/sec collapsed
// below minRatio of the record, or — when maxAllocsRatio > 0 — if allocs/op
// grew above maxAllocsRatio times the record. The same two gates are then
// applied per scenario (matched by name), so a regression confined to one
// transport shape — the multi-queue scenario regressing while the big
// serial transfers hide it in the aggregate — still fails. The loose ratios
// absorb machine-to-machine and smoke-vs-full sweep variance; the guard
// exists to catch gross regressions: instrumentation hooks that stopped
// being free when disabled, or a queueing layer that silently reintroduced
// per-op allocations the zero-copy data plane had eliminated. A missing
// file, record or scenario is not an error (nothing to compare), and
// zero-valued fields on either side are skipped (the parallel sweep does
// not attribute per-scenario allocations).
func Guard(path string, rep Report, minRatio, maxAllocsRatio float64) error {
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	var f File
	if err := json.Unmarshal(raw, &f); err != nil {
		return fmt.Errorf("parse %s: %w", path, err)
	}
	if f.Current == nil || f.Current.EventsPerSec <= 0 {
		return nil
	}
	if rep.EventsPerSec < f.Current.EventsPerSec*minRatio {
		return fmt.Errorf("perf regression: %.0f events/s is below %.0f%% of the recorded %.0f (see %s)",
			rep.EventsPerSec, minRatio*100, f.Current.EventsPerSec, path)
	}
	if maxAllocsRatio > 0 && f.Current.AllocsPerOp > 0 &&
		rep.AllocsPerOp > f.Current.AllocsPerOp*maxAllocsRatio {
		return fmt.Errorf("alloc regression: %.1f allocs/op is above %.1fx the recorded %.1f (see %s)",
			rep.AllocsPerOp, maxAllocsRatio, f.Current.AllocsPerOp, path)
	}
	recorded := make(map[string]Measurement, len(f.Current.Scenarios))
	for _, m := range f.Current.Scenarios {
		recorded[m.Name] = m
	}
	for _, m := range rep.Scenarios {
		rec, ok := recorded[m.Name]
		if !ok {
			continue
		}
		if rec.EventsPerSec > 0 && m.EventsPerSec > 0 &&
			m.EventsPerSec < rec.EventsPerSec*minRatio {
			return fmt.Errorf("perf regression in %s: %.0f events/s is below %.0f%% of the recorded %.0f (see %s)",
				m.Name, m.EventsPerSec, minRatio*100, rec.EventsPerSec, path)
		}
		if maxAllocsRatio > 0 && rec.AllocsPerOp > 0 && m.AllocsPerOp > 0 &&
			m.AllocsPerOp > rec.AllocsPerOp*maxAllocsRatio {
			return fmt.Errorf("alloc regression in %s: %.1f allocs/op is above %.1fx the recorded %.1f (see %s)",
				m.Name, m.AllocsPerOp, maxAllocsRatio, rec.AllocsPerOp, path)
		}
	}
	return nil
}

// GuardParallelSpeedup checks that the partitioned kernel actually scales:
// for every scenario family with "@wN" worker-suffixed rows it compares the
// serial row (@w1) against the widest one and requires
// events/s(widest) >= floor * events/s(serial). The nominal floor
// (minSpeedup, e.g. 3.0 for the 32-OSD acceptance target) is scaled down to
// what the host can physically show — min(cores, N) hardware lanes can
// yield at most that much speedup, so the enforced floor is
// min(minSpeedup, speedupPerLane*lanes) — and the check is skipped
// entirely (with the reason in the returned summary) when the scaled floor
// drops below the measurement noise floor, as on a single-core host where
// parallel wall-clock speedup does not exist. Simulated fields must be
// bit-identical across the rows of a family regardless of wall clock; that
// is enforced unconditionally.
func GuardParallelSpeedup(rep Report, minSpeedup float64) (string, error) {
	return guardParallelSpeedup(rep, minSpeedup, runtime.NumCPU())
}

// speedupPerLane is the fraction of linear scaling the guard demands per
// usable hardware lane: generous enough to absorb barrier overhead and
// shared-memory contention, tight enough that a serialized "parallel"
// kernel (speedup ~1.0) always fails on a multi-core host.
const speedupPerLane = 0.45

func guardParallelSpeedup(rep Report, minSpeedup float64, cores int) (string, error) {
	type row struct {
		workers int
		m       Measurement
	}
	families := make(map[string][]row)
	for _, m := range rep.Scenarios {
		i := strings.LastIndex(m.Name, "@w")
		if i < 0 {
			continue
		}
		n, err := strconv.Atoi(m.Name[i+2:])
		if err != nil || n <= 0 {
			continue
		}
		base := m.Name[:i]
		families[base] = append(families[base], row{workers: n, m: m})
	}
	if len(families) == 0 {
		return "parallel-speedup: no @wN scenario rows to compare", nil
	}
	names := make([]string, 0, len(families))
	for base := range families {
		names = append(names, base)
	}
	sort.Strings(names)

	var sum strings.Builder
	for _, base := range names {
		rows := families[base]
		sort.Slice(rows, func(i, j int) bool { return rows[i].workers < rows[j].workers })
		serial, widest := rows[0], rows[len(rows)-1]
		// Worker count must not leak into the simulation itself.
		for _, r := range rows[1:] {
			if r.m.SimEvents != serial.m.SimEvents || r.m.Ops != serial.m.Ops {
				return sum.String(), fmt.Errorf(
					"parallel-speedup: determinism violation in %s: @w%d ran %d events/%d ops, @w%d ran %d/%d — worker count leaked into the simulation",
					base, serial.workers, serial.m.SimEvents, serial.m.Ops,
					r.workers, r.m.SimEvents, r.m.Ops)
			}
		}
		if serial.workers != 1 || widest.workers <= serial.workers {
			fmt.Fprintf(&sum, "parallel-speedup %s: skipped (need @w1 plus a wider row, have %d row(s))\n", base, len(rows))
			continue
		}
		if serial.m.EventsPerSec <= 0 || widest.m.EventsPerSec <= 0 {
			fmt.Fprintf(&sum, "parallel-speedup %s: skipped (missing events/s)\n", base)
			continue
		}
		speedup := widest.m.EventsPerSec / serial.m.EventsPerSec
		lanes := cores
		if widest.workers < lanes {
			lanes = widest.workers
		}
		floor := speedupPerLane * float64(lanes)
		if minSpeedup < floor {
			floor = minSpeedup
		}
		if floor < 1.05 {
			fmt.Fprintf(&sum, "parallel-speedup %s: %.2fx at w%d (informational; %d core(s) cannot show parallel speedup, floor %.2f < 1.05 not enforced)\n",
				base, speedup, widest.workers, cores, floor)
			continue
		}
		if speedup < floor {
			return sum.String(), fmt.Errorf(
				"parallel-speedup: %s ran %.2fx at w%d vs w1, below the %.2fx floor (nominal %.2fx scaled to %d core(s))",
				base, speedup, widest.workers, floor, minSpeedup, cores)
		}
		fmt.Fprintf(&sum, "parallel-speedup %s: %.2fx at w%d (floor %.2fx on %d core(s)) ok\n",
			base, speedup, widest.workers, floor, cores)
	}
	return strings.TrimRight(sum.String(), "\n"), nil
}

// UpdateFile folds rep into the bench file at path and rewrites it. A
// missing file starts fresh (the first run becomes its own baseline); a
// present but unparsable file is an error and the file is left untouched —
// the bench gate must fail loudly rather than silently clobber history
// with a partial record.
func UpdateFile(path string, rep Report, rebaseline bool) (File, error) {
	var f File
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &f); err != nil {
			return File{}, fmt.Errorf("parse %s: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return File{}, err
	}
	f.Current = &rep
	if rebaseline || f.Baseline == nil {
		f.Baseline = &rep
	}
	if f.Baseline.EventsPerSec > 0 {
		f.SpeedupEventsPerSec = f.Current.EventsPerSec / f.Baseline.EventsPerSec
	}
	if f.Baseline.AllocsPerOp > 0 {
		f.AllocsPerOpRatio = f.Current.AllocsPerOp / f.Baseline.AllocsPerOp
	}
	raw, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return File{}, err
	}
	if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
		return File{}, err
	}
	return f, nil
}

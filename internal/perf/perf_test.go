package perf

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"doceph/internal/cluster"
)

func validScenario() Scenario {
	return Scenario{Name: "t", Mode: cluster.Baseline, ObjectBytes: 64 << 10,
		Threads: 2, DurationSec: 1, WarmupSec: 0, Seed: 1}
}

func TestScenarioValidate(t *testing.T) {
	if err := validScenario().Validate(); err != nil {
		t.Fatalf("valid scenario rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Scenario)
		wants  string
	}{
		{"no name", func(sc *Scenario) { sc.Name = "" }, "no name"},
		{"zero threads", func(sc *Scenario) { sc.Threads = 0 }, "threads"},
		{"negative threads", func(sc *Scenario) { sc.Threads = -4 }, "threads"},
		{"zero object bytes", func(sc *Scenario) { sc.ObjectBytes = 0 }, "object_bytes"},
		{"zero duration", func(sc *Scenario) { sc.DurationSec = 0 }, "duration_sec"},
		{"negative warmup", func(sc *Scenario) { sc.WarmupSec = -1 }, "warmup_sec"},
	}
	for _, tc := range cases {
		sc := validScenario()
		tc.mutate(&sc)
		err := sc.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.wants) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.wants)
		}
		// RunScenario must refuse too, without spinning up a cluster.
		if _, err := RunScenario(sc); err == nil {
			t.Errorf("%s: RunScenario accepted an invalid scenario", tc.name)
		}
	}
}

// TestRunSweepStopsOnError is the regression for the bench gate: a sweep
// containing a broken scenario must return an error, not a partial report
// that then gets written to BENCH_sim.json.
func TestRunSweepStopsOnError(t *testing.T) {
	bad := validScenario()
	bad.Threads = 0
	if _, err := RunSweep([]Scenario{bad, validScenario()}); err == nil {
		t.Fatal("sweep with a broken scenario returned nil error")
	}
}

// TestRunScenarioAccumulates runs one tiny real scenario and checks that
// every stat field is populated and internally consistent.
func TestRunScenarioAccumulates(t *testing.T) {
	m, err := RunScenario(validScenario())
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "t" {
		t.Errorf("name = %q", m.Name)
	}
	if m.Ops <= 0 || m.SimEvents == 0 || m.WallNs <= 0 {
		t.Fatalf("empty measurement: %+v", m)
	}
	if m.EventsPerSec <= 0 || m.NsPerOp <= 0 {
		t.Errorf("rates not derived: %+v", m)
	}
	wantNsPerOp := float64(m.WallNs) / float64(m.Ops)
	if math.Abs(m.NsPerOp-wantNsPerOp) > 1e-9*wantNsPerOp {
		t.Errorf("ns/op = %v, want %v", m.NsPerOp, wantNsPerOp)
	}
}

// TestRunScenarioDegraded pins the self-healing perf shape: runScenario's
// engagement check errors out unless the crash/rejoin schedule produced
// degraded writes and real backfill, so a passing run proves the scenario
// measures the recovery path, not a silently clean one.
func TestRunScenarioDegraded(t *testing.T) {
	sc := Scenario{Name: "degraded", Mode: cluster.DoCeph, ObjectBytes: 4 << 10,
		Threads: 4, DurationSec: 2, WarmupSec: 1, Seed: 1, Degraded: true}
	m, err := RunScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	if m.Ops <= 0 {
		t.Fatalf("no ops completed under the degraded schedule: %+v", m)
	}
}

// TestRunSweepAggregation recomputes the sweep totals from the per-scenario
// rows to pin the aggregation arithmetic.
func TestRunSweepAggregation(t *testing.T) {
	a := validScenario()
	b := validScenario()
	b.Name = "t2"
	b.Mode = cluster.DoCeph
	rep, err := RunSweepWorkers([]Scenario{a, b}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Scenarios) != 2 {
		t.Fatalf("got %d rows, want 2", len(rep.Scenarios))
	}
	var events uint64
	var wallNs, ops int64
	var allocs float64
	for _, m := range rep.Scenarios {
		events += m.SimEvents
		wallNs += m.WallNs
		ops += m.Ops
		allocs += m.AllocsPerOp * float64(m.Ops)
	}
	approx := func(got, want float64) bool {
		return math.Abs(got-want) <= 1e-9*math.Abs(want)
	}
	if !approx(rep.EventsPerSec, float64(events)/(float64(wallNs)/1e9)) {
		t.Errorf("events/s = %v", rep.EventsPerSec)
	}
	if !approx(rep.NsPerOp, float64(wallNs)/float64(ops)) {
		t.Errorf("ns/op = %v", rep.NsPerOp)
	}
	if !approx(rep.AllocsPerOp, allocs/float64(ops)) {
		t.Errorf("allocs/op = %v", rep.AllocsPerOp)
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	rep := Report{
		Scenarios: []Measurement{{
			Name: "x", Ops: 10, SimEvents: 1000, WallNs: 5000,
			EventsPerSec: 2e8, NsPerOp: 500, AllocsPerOp: 1.5, BytesPerOp: 64,
		}},
		EventsPerSec: 2e8, AllocsPerOp: 1.5, NsPerOp: 500,
	}
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var got Report
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, rep) {
		t.Errorf("round trip changed the report:\n got  %+v\n want %+v", got, rep)
	}
}

func TestUpdateFileLifecycle(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")

	// First run on a missing file: becomes its own baseline, ratios 1.0.
	first := Report{EventsPerSec: 100, AllocsPerOp: 4, NsPerOp: 10}
	f, err := UpdateFile(path, first, false)
	if err != nil {
		t.Fatal(err)
	}
	if f.Baseline == nil || f.Baseline.EventsPerSec != 100 {
		t.Fatalf("first run did not self-baseline: %+v", f)
	}
	if f.SpeedupEventsPerSec != 1 || f.AllocsPerOpRatio != 1 {
		t.Errorf("self-comparison ratios = %v, %v, want 1, 1",
			f.SpeedupEventsPerSec, f.AllocsPerOpRatio)
	}

	// Second run: baseline sticks, current and ratios move.
	second := Report{EventsPerSec: 200, AllocsPerOp: 2, NsPerOp: 5}
	f, err = UpdateFile(path, second, false)
	if err != nil {
		t.Fatal(err)
	}
	if f.Baseline.EventsPerSec != 100 || f.Current.EventsPerSec != 200 {
		t.Fatalf("baseline did not stick: %+v", f)
	}
	if f.SpeedupEventsPerSec != 2 || f.AllocsPerOpRatio != 0.5 {
		t.Errorf("ratios = %v, %v, want 2, 0.5",
			f.SpeedupEventsPerSec, f.AllocsPerOpRatio)
	}

	// Rebaseline: baseline jumps to the new run.
	f, err = UpdateFile(path, second, true)
	if err != nil {
		t.Fatal(err)
	}
	if f.Baseline.EventsPerSec != 200 || f.SpeedupEventsPerSec != 1 {
		t.Errorf("rebaseline did not take: %+v", f)
	}

	// The file must survive a reload round trip.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var reload File
	if err := json.Unmarshal(raw, &reload); err != nil {
		t.Fatal(err)
	}
	if reload.Baseline.EventsPerSec != 200 || reload.Current.EventsPerSec != 200 {
		t.Errorf("reloaded file diverged: %+v", reload)
	}
}

func TestGuard(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")

	// Nothing recorded yet: nothing to compare.
	if err := Guard(path, Report{EventsPerSec: 1}, 0.3, 2); err != nil {
		t.Errorf("missing file must pass: %v", err)
	}

	if _, err := UpdateFile(path, Report{EventsPerSec: 1000, AllocsPerOp: 50}, false); err != nil {
		t.Fatal(err)
	}
	if err := Guard(path, Report{EventsPerSec: 400, AllocsPerOp: 60}, 0.3, 2); err != nil {
		t.Errorf("run above the floor rejected: %v", err)
	}
	err := Guard(path, Report{EventsPerSec: 200}, 0.3, 2)
	if err == nil || !strings.Contains(err.Error(), "perf regression") {
		t.Errorf("collapsed run accepted: %v", err)
	}

	// The allocs/op ceiling: events/sec fine, allocations ballooned.
	err = Guard(path, Report{EventsPerSec: 1000, AllocsPerOp: 150}, 0.3, 2)
	if err == nil || !strings.Contains(err.Error(), "alloc regression") {
		t.Errorf("alloc blow-up accepted: %v", err)
	}
	// Ceiling disabled with maxAllocsRatio 0.
	if err := Guard(path, Report{EventsPerSec: 1000, AllocsPerOp: 150}, 0.3, 0); err != nil {
		t.Errorf("disabled alloc ceiling must pass: %v", err)
	}

	if err := os.WriteFile(path, []byte("{bad"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := Guard(path, Report{EventsPerSec: 1000}, 0.3, 2); err == nil {
		t.Error("corrupt guard file must error, not silently pass")
	}
}

// TestUpdateFileRefusesCorruptHistory is the no-partial-JSON regression:
// if the existing bench file cannot be parsed, UpdateFile must error and
// leave the file byte-identical instead of overwriting history.
func TestUpdateFileRefusesCorruptHistory(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	corrupt := []byte(`{"baseline": {truncated`)
	if err := os.WriteFile(path, corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := UpdateFile(path, Report{EventsPerSec: 1}, false); err == nil {
		t.Fatal("UpdateFile accepted a corrupt history file")
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(after) != string(corrupt) {
		t.Error("UpdateFile modified the file despite erroring")
	}
}

// TestRunSweepParallelMatchesSerial pins the parallel runner's contract:
// simulated results (ops, kernel events) are bit-identical to a serial run
// — each scenario is an isolated simulation — and rows come back in sweep
// order. Per-scenario allocation attribution is a serial-only feature; the
// parallel sweep must leave those fields zero and still fill the aggregate.
func TestRunSweepParallelMatchesSerial(t *testing.T) {
	a := validScenario()
	b := validScenario()
	b.Name = "t-mq"
	b.Mode = cluster.DoCeph
	b.DMAQueues = 2
	b.OpShards = 2
	b.MsgrLanes = 2
	b.Batch = true
	sweep := []Scenario{a, b}
	serial, err := RunSweepWorkers(sweep, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunSweepWorkers(sweep, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(par.Scenarios) != 2 || par.Scenarios[0].Name != "t" || par.Scenarios[1].Name != "t-mq" {
		t.Fatalf("parallel rows out of order: %+v", par.Scenarios)
	}
	for i := range sweep {
		s, p := serial.Scenarios[i], par.Scenarios[i]
		if s.Ops != p.Ops || s.SimEvents != p.SimEvents {
			t.Errorf("%s: simulated results changed under parallelism: ops %d/%d events %d/%d",
				s.Name, s.Ops, p.Ops, s.SimEvents, p.SimEvents)
		}
		if p.AllocsPerOp != 0 || p.BytesPerOp != 0 {
			t.Errorf("%s: parallel sweep attributed per-scenario allocations: %+v", p.Name, p)
		}
		if s.AllocsPerOp <= 0 {
			t.Errorf("%s: serial sweep did not attribute allocations", s.Name)
		}
	}
	if par.AllocsPerOp <= 0 {
		t.Errorf("parallel aggregate allocs/op not measured: %+v", par)
	}
}

// TestGuardPerScenario: a collapse confined to one scenario must fail the
// guard even when the aggregate stays healthy, and unmeasured (zero)
// alloc fields must be skipped rather than compared.
func TestGuardPerScenario(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	rec := Report{
		EventsPerSec: 1000, AllocsPerOp: 50,
		Scenarios: []Measurement{
			{Name: "big", EventsPerSec: 900, AllocsPerOp: 40},
			{Name: "mq", EventsPerSec: 800, AllocsPerOp: 60},
		},
	}
	if _, err := UpdateFile(path, rec, false); err != nil {
		t.Fatal(err)
	}
	healthy := Report{
		EventsPerSec: 950, AllocsPerOp: 55,
		Scenarios: []Measurement{
			{Name: "big", EventsPerSec: 850, AllocsPerOp: 45},
			{Name: "mq", EventsPerSec: 700, AllocsPerOp: 65},
		},
	}
	if err := Guard(path, healthy, 0.3, 2); err != nil {
		t.Errorf("healthy per-scenario run rejected: %v", err)
	}
	collapsed := healthy
	collapsed.Scenarios = []Measurement{
		{Name: "big", EventsPerSec: 850, AllocsPerOp: 45},
		{Name: "mq", EventsPerSec: 100, AllocsPerOp: 65},
	}
	err := Guard(path, collapsed, 0.3, 2)
	if err == nil || !strings.Contains(err.Error(), "mq") {
		t.Errorf("per-scenario collapse accepted: %v", err)
	}
	bloated := healthy
	bloated.Scenarios = []Measurement{
		{Name: "big", EventsPerSec: 850, AllocsPerOp: 45},
		{Name: "mq", EventsPerSec: 700, AllocsPerOp: 200},
	}
	err = Guard(path, bloated, 0.3, 2)
	if err == nil || !strings.Contains(err.Error(), "mq") {
		t.Errorf("per-scenario alloc blow-up accepted: %v", err)
	}
	// Zero on either side (parallel sweep, unknown scenario): skipped.
	unmeasured := healthy
	unmeasured.Scenarios = []Measurement{
		{Name: "big", EventsPerSec: 850},
		{Name: "new-scenario", EventsPerSec: 1, AllocsPerOp: 999},
	}
	if err := Guard(path, unmeasured, 0.3, 2); err != nil {
		t.Errorf("unmeasured fields compared: %v", err)
	}
}

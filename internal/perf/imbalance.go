// Load-imbalance metrics for the scale-out assembly: the cluster layer
// exports raw per-OSD/per-PG op counts and queue-depth samples
// (cluster.ScaleOutResult, CollectImbalance) and this file turns them into
// the figures the experiments table reports — max/mean op share, p99:p50
// queue depth, hot-primary read share. Kept here rather than in cluster so
// the metric definitions live next to the harness that publishes them.
package perf

import (
	"fmt"
	"sort"

	"doceph/internal/cluster"
)

// Imbalance summarizes how evenly a scale-out run spread its load.
type Imbalance struct {
	// MaxMeanOSDShare is the hottest OSD's served-op count over the mean
	// (1.0 = perfectly even).
	MaxMeanOSDShare float64 `json:"max_mean_osd_share"`
	// MaxMeanPGShare is the same ratio over PGs.
	MaxMeanPGShare float64 `json:"max_mean_pg_share"`
	// QueueDepthP99P50 is the p99:p50 ratio over the pooled per-tick OSD
	// queue-depth samples (p50 floored at 1 — idle clusters sit at 0).
	QueueDepthP99P50 float64 `json:"queue_depth_p99_p50"`
	// HotReadShare is the hottest OSD's share of all served reads — the
	// number replica-read balancing exists to flatten.
	HotReadShare float64 `json:"hot_read_share"`
	// BalancedReadShare is the fraction of reads served by non-primary
	// acting-set members (0 with balancing off).
	BalancedReadShare float64 `json:"balanced_read_share"`
}

func (im Imbalance) String() string {
	return fmt.Sprintf("osd max/mean %.2f, pg max/mean %.2f, qd p99:p50 %.2f, hot-read share %.3f, balanced %.3f",
		im.MaxMeanOSDShare, im.MaxMeanPGShare, im.QueueDepthP99P50, im.HotReadShare, im.BalancedReadShare)
}

// MaxMeanRatio returns max(xs)/mean(xs), or 0 when the series is empty or
// sums to zero.
func MaxMeanRatio(xs []int64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, max int64
	for _, x := range xs {
		sum += x
		if x > max {
			max = x
		}
	}
	if sum == 0 {
		return 0
	}
	mean := float64(sum) / float64(len(xs))
	return float64(max) / mean
}

// P99P50 returns the p99:p50 ratio of the samples under nearest-rank
// percentiles (the same indexing radosbench's latency stats use), with the
// p50 floored at 1 so an idle median doesn't divide by zero. Returns 0 for
// an empty series.
func P99P50(samples []int64) float64 {
	if len(samples) == 0 {
		return 0
	}
	s := make([]int64, len(samples))
	copy(s, samples)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	p50, p99 := s[len(s)/2], s[len(s)*99/100]
	if p50 < 1 {
		p50 = 1
	}
	return float64(p99) / float64(p50)
}

// HotReadShare returns the hottest OSD's fraction of all served reads, or 0
// when no reads were served.
func HotReadShare(reads []int64) float64 {
	var sum, max int64
	for _, r := range reads {
		sum += r
		if r > max {
			max = r
		}
	}
	if sum == 0 {
		return 0
	}
	return float64(max) / float64(sum)
}

// ComputeImbalance derives the imbalance figures from a scale-out result
// collected with CollectImbalance.
func ComputeImbalance(res cluster.ScaleOutResult) Imbalance {
	im := Imbalance{
		MaxMeanOSDShare:  MaxMeanRatio(res.OSDOps),
		MaxMeanPGShare:   MaxMeanRatio(res.PGOps),
		QueueDepthP99P50: P99P50(res.QueueDepthSamples),
		HotReadShare:     HotReadShare(res.OSDReads),
	}
	var reads, balanced int64
	for _, r := range res.OSDReads {
		reads += r
	}
	for _, b := range res.OSDBalancedReads {
		balanced += b
	}
	if reads > 0 {
		im.BalancedReadShare = float64(balanced) / float64(reads)
	}
	return im
}

package perf

import (
	"math"
	"testing"

	"doceph/internal/cluster"
	"doceph/internal/radosbench"
	"doceph/internal/sim"
)

func almost(got, want float64) bool { return math.Abs(got-want) < 1e-9 }

func TestMaxMeanRatio(t *testing.T) {
	cases := []struct {
		name string
		xs   []int64
		want float64
	}{
		{"empty", nil, 0},
		{"all zero", []int64{0, 0, 0}, 0},
		{"uniform", []int64{5, 5, 5, 5}, 1.0},
		{"one hot", []int64{10, 1, 1, 0}, 10.0 / 3.0},
		{"single element", []int64{7}, 1.0},
		{"half idle", []int64{4, 0, 4, 0}, 2.0},
	}
	for _, tc := range cases {
		if got := MaxMeanRatio(tc.xs); !almost(got, tc.want) {
			t.Errorf("%s: MaxMeanRatio = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestP99P50(t *testing.T) {
	// 98 samples at depth 1, two spikes at 50: nearest-rank p50 = 1,
	// p99 = sorted[99] = 50.
	spiky := make([]int64, 100)
	for i := range spiky {
		spiky[i] = 1
	}
	spiky[13], spiky[77] = 50, 50
	// 1..100: p50 = sorted[50] = 51, p99 = sorted[99] = 100.
	ramp := make([]int64, 100)
	for i := range ramp {
		ramp[i] = int64(i + 1)
	}
	cases := []struct {
		name    string
		samples []int64
		want    float64
	}{
		{"empty", nil, 0},
		{"all idle", []int64{0, 0, 0, 0}, 0},
		{"idle median floors at 1", []int64{0, 0, 0, 8}, 8},
		{"flat", []int64{3, 3, 3, 3}, 1.0},
		{"spiky tail", spiky, 50.0},
		{"ramp", ramp, 100.0 / 51.0},
	}
	for _, tc := range cases {
		if got := P99P50(tc.samples); !almost(got, tc.want) {
			t.Errorf("%s: P99P50 = %v, want %v", tc.name, got, tc.want)
		}
	}
	// The input slice must not be reordered.
	in := []int64{9, 1, 5}
	P99P50(in)
	if in[0] != 9 || in[1] != 1 || in[2] != 5 {
		t.Fatalf("P99P50 mutated its input: %v", in)
	}
}

func TestHotReadShare(t *testing.T) {
	cases := []struct {
		name  string
		reads []int64
		want  float64
	}{
		{"empty", nil, 0},
		{"no reads", []int64{0, 0}, 0},
		{"hot primary", []int64{30, 10, 10}, 0.6},
		{"even", []int64{5, 5, 5, 5}, 0.25},
	}
	for _, tc := range cases {
		if got := HotReadShare(tc.reads); !almost(got, tc.want) {
			t.Errorf("%s: HotReadShare = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestComputeImbalanceSynthetic(t *testing.T) {
	res := cluster.ScaleOutResult{
		OSDOps:            []int64{90, 10, 10, 10}, // max 90, mean 30
		PGOps:             []int64{40, 0, 0, 0},    // max 40, mean 10
		OSDReads:          []int64{60, 20, 20, 0},  // hottest 0.6 of 100
		OSDBalancedReads:  []int64{0, 20, 20, 0},   // 40 of 100 reads balanced
		QueueDepthSamples: []int64{0, 0, 1, 12},    // p50 floored at 1, p99 = 12
	}
	im := ComputeImbalance(res)
	if !almost(im.MaxMeanOSDShare, 3.0) {
		t.Errorf("MaxMeanOSDShare = %v, want 3", im.MaxMeanOSDShare)
	}
	if !almost(im.MaxMeanPGShare, 4.0) {
		t.Errorf("MaxMeanPGShare = %v, want 4", im.MaxMeanPGShare)
	}
	if !almost(im.QueueDepthP99P50, 12.0) {
		t.Errorf("QueueDepthP99P50 = %v, want 12", im.QueueDepthP99P50)
	}
	if !almost(im.HotReadShare, 0.6) {
		t.Errorf("HotReadShare = %v, want 0.6", im.HotReadShare)
	}
	if !almost(im.BalancedReadShare, 0.4) {
		t.Errorf("BalancedReadShare = %v, want 0.4", im.BalancedReadShare)
	}
	// Empty result: everything zero, nothing panics.
	if im := ComputeImbalance(cluster.ScaleOutResult{}); im != (Imbalance{}) {
		t.Errorf("empty result: %+v", im)
	}
}

// TestBalanceReadsFlattenHotPrimary runs the Zipf arm of the scale-out
// fixture with replica-read balancing off and then on: balancing must serve
// a real fraction of reads from secondaries and measurably lower the hottest
// OSD's read share. This is the end-to-end claim behind the balance column
// in the 128-OSD experiment, checked on a cluster small enough for CI.
// The replica is picked by a stable per-object hash, so balancing spreads
// load across objects, not within one object — on a 2-rack fixture the Zipf
// head can collide onto one replica and the max share goes the wrong way. A
// 4x4 cluster has enough objects per rack for the averaging to win at every
// seed tried; the test pins several to keep the claim from being one lucky
// draw.
func TestBalanceReadsFlattenHotPrimary(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		run := func(balance bool) Imbalance {
			so := cluster.NewScaleOut(cluster.ScaleOutConfig{
				Pods:             4,
				OSDsPerPod:       4,
				Mode:             cluster.DoCeph,
				Seed:             seed,
				Threads:          2,
				ObjectBytes:      64 << 10,
				ReadPercent:      70,
				Duration:         300 * sim.Millisecond,
				Warmup:           50 * sim.Millisecond,
				Popularity:       radosbench.Popularity{Kind: radosbench.PopZipf},
				BalanceReads:     balance,
				CollectImbalance: true,
			})
			defer so.Shutdown()
			res, err := so.Run(2)
			if err != nil {
				t.Fatal(err)
			}
			return ComputeImbalance(res)
		}
		off, on := run(false), run(true)
		if off.BalancedReadShare != 0 {
			t.Fatalf("seed=%d: balancing off but BalancedReadShare = %v", seed, off.BalancedReadShare)
		}
		if on.BalancedReadShare <= 0.1 {
			t.Fatalf("seed=%d: balancing on but BalancedReadShare = %v, want > 0.1", seed, on.BalancedReadShare)
		}
		if off.HotReadShare == 0 || on.HotReadShare >= off.HotReadShare {
			t.Fatalf("seed=%d: hot-read share did not drop: off %v, on %v", seed, off.HotReadShare, on.HotReadShare)
		}
	}
}

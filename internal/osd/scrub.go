package osd

import (
	"fmt"

	"doceph/internal/cephmsg"
	"doceph/internal/sim"
)

// Scrubbing: the self-healing mechanism the paper's §1 credits Ceph with.
// At every ScrubInterval the primary of each PG deep-scrubs it: it reads
// each object locally, asks every replica for a content digest (CRC32C +
// size), and on divergence repairs the replica by force-pushing its own
// authoritative copy through the recovery path. Scrub traffic rides the
// messenger like everything else, so in DoCeph mode it too runs on the DPU.

// scrubLoop is the per-OSD background scrubber (enabled when
// Config.ScrubInterval > 0).
func (o *OSD) scrubLoop(p *sim.Proc) {
	th := sim.NewThread("scrub@"+o.name, ThreadCat)
	p.SetThread(th)
	for {
		p.Wait(o.cfg.ScrubInterval)
		if o.failed {
			continue
		}
		for pg := uint32(0); pg < o.curMap.PGCount; pg++ {
			acting := o.curMap.ActingSet(pg)
			if len(acting) == 0 || acting[0] != o.id || !o.created[pg] {
				continue
			}
			o.scrubPG(p, pg, acting[1:])
		}
	}
}

// scrubPG deep-scrubs one placement group against its replicas.
func (o *OSD) scrubPG(p *sim.Proc, pg uint32, replicas []int32) {
	names, err := o.store.List(p, pgColl(pg))
	if err != nil {
		return
	}
	for _, obj := range names {
		if o.failed {
			return
		}
		lock := o.pgLock(pg)
		lock.Acquire(p, 1)
		bl, rerr := o.store.Read(p, pgColl(pg), obj, 0, 0)
		lock.Release(1)
		if rerr != nil {
			continue // deleted under us
		}
		localCRC := bl.CRC32C()
		localSize := uint64(bl.Length())
		o.stats.ObjectsScrubbed++
		for _, rep := range replicas {
			o.nextPushTid++
			tid := o.nextPushTid
			sc := &scrubCall{done: sim.NewEvent(o.env)}
			o.scrubPending[tid] = sc
			o.msgr.Send(Name(rep), &cephmsg.MScrub{Tid: tid, PGID: pg, Object: obj})
			if !sc.done.WaitTimeout(p, 30*sim.Second) {
				delete(o.scrubPending, tid)
				continue // replica unreachable; failure detection handles it
			}
			if sc.reply.Exists && sc.reply.CRC == localCRC && sc.reply.Size == localSize {
				continue
			}
			// Inconsistency: repair with the primary's copy.
			o.stats.ScrubErrors++
			o.nextPushTid++
			rtid := o.nextPushTid
			ack := sim.NewEvent(o.env)
			o.pushPending[rtid] = ack
			o.msgr.Send(Name(rep), &cephmsg.MPGPush{
				Tid: rtid, Epoch: o.curMap.Epoch, PGID: pg, Object: obj,
				Force: true, Data: bl,
			})
			if ack.WaitTimeout(p, 30*sim.Second) {
				o.stats.ScrubRepairs++
			} else {
				delete(o.pushPending, rtid)
			}
		}
		p.Wait(o.cfg.RecoveryDelay) // scrub is throttled like recovery
	}
}

type scrubCall struct {
	done  *sim.Event
	reply *cephmsg.MScrubReply
}

// handleScrub serves a digest request on a replica (tp_osd_tp context: it
// reads the object from the backing store).
func (o *OSD) handleScrub(p *sim.Proc, src string, m *cephmsg.MScrub) {
	reply := &cephmsg.MScrubReply{Tid: m.Tid, PGID: m.PGID, Object: m.Object}
	lock := o.pgLock(m.PGID)
	lock.Acquire(p, 1)
	bl, err := o.store.Read(p, pgColl(m.PGID), m.Object, 0, 0)
	lock.Release(1)
	if err == nil {
		reply.Exists = true
		reply.CRC = bl.CRC32C()
		reply.Size = uint64(bl.Length())
	}
	o.stats.ScrubsServed++
	o.msgr.Send(src, reply)
}

// handleScrubReply completes a pending digest request (msgr-worker context).
func (o *OSD) handleScrubReply(m *cephmsg.MScrubReply) {
	if sc, ok := o.scrubPending[m.Tid]; ok {
		sc.reply = m
		sc.done.Fire()
		delete(o.scrubPending, m.Tid)
	}
}

// ScrubNow triggers an immediate scrub pass of every PG this OSD leads
// (administrative hook used by tests and examples). It returns right away;
// the returned event fires once the whole pass has completed.
func (o *OSD) ScrubNow() *sim.Event {
	done := sim.NewEvent(o.env)
	o.env.Spawn(fmt.Sprintf("scrub-now@%s", o.name), func(p *sim.Proc) {
		th := sim.NewThread("scrub@"+o.name, ThreadCat)
		p.SetThread(th)
		for pg := uint32(0); pg < o.curMap.PGCount; pg++ {
			acting := o.curMap.ActingSet(pg)
			if len(acting) == 0 || acting[0] != o.id || !o.created[pg] {
				continue
			}
			o.scrubPG(p, pg, acting[1:])
		}
		done.Fire()
	})
	return done
}

// Streaming write ingest: the OSD registers as the messenger's StreamSink
// so large writes arrive chunk by chunk instead of as one reassembled
// message. A dedicated ingest process per stream commits each chunk to the
// object store and forwards it down the replica fan-out as it arrives —
// replication and BlueStore ingest start on the first chunk, not after the
// whole object has landed — and flow-control credits are returned only
// when a chunk's local commit is durable, so in-flight data at this hop is
// bounded by the sender's credit window.
//
// Ingest runs on dedicated processes rather than tp_osd_tp workers on
// purpose: a worker blocked on a replica's credit window while that
// replica's own workers wait on credits from us would deadlock the pool;
// per-stream processes keep the worker pool free for regular ops.

package osd

import (
	"fmt"

	"doceph/internal/cephmsg"
	"doceph/internal/messenger"
	"doceph/internal/objstore"
	"doceph/internal/sim"
	"doceph/internal/trace"
	"doceph/internal/wire"
)

// OpenStream implements messenger.StreamSink: accept incoming write
// streams (client ops on the primary, rep-ops on replicas) for incremental
// ingest. Anything else falls back to messenger-side reassembly. Runs on a
// msgr-worker thread, so it only spawns and returns.
func (o *OSD) OpenStream(src string, in *messenger.InStream) bool {
	if o.failed {
		return false // reassembly path dispatches into the dead-socket drop
	}
	open := in.Open()
	switch m := open.Inner.(type) {
	case *cephmsg.MOSDOp:
		if m.Op != cephmsg.OpWrite {
			return false
		}
		name := fmt.Sprintf("stream-ingest:%s:%d", o.name, open.StreamID)
		o.env.Spawn(name, func(p *sim.Proc) {
			p.SetThread(sim.NewThread(name, ThreadCat))
			o.ingestClientStream(p, src, m, in)
		})
		return true
	case *cephmsg.MRepOp:
		if m.Op != cephmsg.OpWrite {
			return false
		}
		name := fmt.Sprintf("rep-stream-ingest:%s:%d", o.name, open.StreamID)
		o.env.Spawn(name, func(p *sim.Proc) {
			p.SetThread(sim.NewThread(name, ThreadCat))
			o.ingestRepStream(p, src, m, in)
		})
		return true
	}
	return false
}

// drainStream consumes and discards the rest of a stream, crediting every
// chunk so the sender finishes promptly (used when the op is rejected
// before ingest starts).
func (o *OSD) drainStream(p *sim.Proc, in *messenger.InStream) {
	for {
		_, done, aborted := in.Next(p)
		if done || aborted {
			return
		}
		in.Credit(1)
	}
}

// ingestChunk commits one arriving chunk: a per-chunk transaction against
// the backing store under the PG lock, with a stream.stage span open until
// the commit is durable, at which point the chunk's flow-control credit
// goes back upstream. Returns the store result for the end-of-stream
// barrier.
func (o *OSD) ingestChunk(p *sim.Proc, in *messenger.InStream, sp trace.SpanID,
	pg uint32, object string, off uint64, chunk *wire.Bufferlist,
	completer string) *objstore.Result {
	n := int64(chunk.Length())
	var csp trace.SpanID
	if sp != 0 {
		csp = o.tr.Start(sp, 0, trace.StageStreamStage, object)
		o.tr.AddBytes(csp, n)
	}
	lock := o.pgLock(pg)
	lock.Acquire(p, 1)
	txn := (&objstore.Transaction{}).Write(pgColl(pg), object, off, chunk)
	// Chunks of one stream reuse the pre-registered staging regions, so
	// the DPU's DMA engine amortizes descriptor setup across them.
	txn.StreamReuse = true
	o.ensureColl(pg, txn)
	if csp != 0 {
		txn.TraceCtx = uint64(csp)
	}
	res := o.store.QueueTransaction(p, txn)
	lock.Release(1)
	o.env.Spawn(completer, func(cp *sim.Proc) {
		cp.SetThread(o.thFin)
		res.Done.Wait(cp)
		o.tr.Finish(csp)
		in.Credit(1)
	})
	return res
}

// ingestClientStream is the primary's per-stream ingest: admission checks,
// chunk-granular local commit + replica fan-out, and the single client
// reply once everything is durable.
func (o *OSD) ingestClientStream(p *sim.Proc, src string, m *cephmsg.MOSDOp,
	in *messenger.InStream) {
	o.ready.Wait(p)
	open := in.Open()
	var sp trace.SpanID
	if o.tr.Enabled() && m.TraceCtx != 0 {
		sp = o.tr.Start(trace.SpanID(m.TraceCtx), 0, trace.StageOSDOp, m.Object)
	}
	o.tr.AddCPU(sp, o.cpu.Name(), o.cpu.ExecSelf(p, o.cfg.OpPrepCycles))
	pg := o.curMap.PGForObject(m.Object)
	acting := o.curMap.ActingSet(pg)
	reject := cephmsg.ResOK
	if len(acting) == 0 || acting[0] != o.id {
		o.stats.WrongPrimary++
		reject = cephmsg.ResNotPrimary
	} else if ms := o.curMap.MinSize; ms > 0 && len(acting) < ms {
		o.stats.NoQuorumRejects++
		reject = cephmsg.ResNoQuorum
	}
	if reject != cephmsg.ResOK {
		o.drainStream(p, in)
		o.msgr.Send(src, &cephmsg.MOSDOpReply{
			Tid: m.Tid, Object: m.Object, Op: m.Op, Result: reject,
			TraceCtx: m.TraceCtx,
		})
		o.tr.Finish(sp)
		return
	}
	if ms := o.curMap.MinSize; ms > 0 && len(acting) < o.curMap.Replicas {
		o.stats.DegradedWrites++
		o.degraded[pg]++
	}
	o.pgOps[pg]++
	o.stats.StreamWrites++

	// Open one forwarding stream per secondary before the first chunk, so
	// replica ingest overlaps the client transfer. The pending entries
	// carry no resendable message (msg nil): a stream cannot be replayed
	// verbatim, so the watchdog's timeout rounds alone bound the wait.
	var repSp trace.SpanID
	if sp != 0 {
		repSp = o.tr.Start(sp, 0, trace.StageReplication, m.Object)
	}
	pend := &pendingRep{needed: len(acting) - 1, ev: sim.NewEvent(o.env)}
	if pend.needed <= 0 {
		pend.ev.Fire()
	}
	reps := make([]*messenger.OutStream, 0, len(acting)-1)
	tids := make([]uint64, 0, len(acting)-1)
	for _, sec := range acting[1:] {
		o.tr.AddCPU(repSp, o.cpu.Name(), o.cpu.ExecSelf(p, o.cfg.RepPrepCycles))
		o.nextTid++
		tid := o.nextTid
		rm := &cephmsg.MRepOp{
			Tid: tid, Epoch: o.curMap.Epoch, PGID: pg, Object: m.Object,
			Op: cephmsg.OpWrite, Offset: m.Offset, TraceCtx: uint64(repSp),
		}
		o.pending[tid] = &repWait{target: sec, pend: pend}
		reps = append(reps, o.msgr.OpenStream(Name(sec), rm, open.Total))
		tids = append(tids, tid)
	}

	var results []*objstore.Result
	off := m.Offset
	var total int64
	aborted := false
	for {
		chunk, done, ab := in.Next(p)
		if done {
			break
		}
		if ab {
			aborted = true
			break
		}
		results = append(results, o.ingestChunk(p, in, sp, pg, m.Object, off,
			chunk, o.completerName))
		// Forward before accepting the next chunk; a saturated replica
		// window blocks here, propagating its backpressure to the client.
		for _, r := range reps {
			r.Write(p, chunk)
		}
		n := int64(chunk.Length())
		off += uint64(n)
		total += n
	}
	if aborted {
		for _, r := range reps {
			r.Abort(p)
		}
		for _, tid := range tids {
			o.completeRep(tid)
		}
		o.msgr.Send(src, &cephmsg.MOSDOpReply{
			Tid: m.Tid, Object: m.Object, Op: m.Op, Result: cephmsg.ResError,
			TraceCtx: m.TraceCtx,
		})
		o.tr.Finish(repSp)
		o.tr.Finish(sp)
		return
	}
	for _, r := range reps {
		r.Close(p)
	}
	anyErr := false
	for _, res := range results {
		res.Done.Wait(p)
		if res.Err != nil {
			anyErr = true
		}
	}
	repOK := o.awaitReplicas(p, pend, tids)
	o.tr.Finish(repSp)
	o.tr.AddCPU(sp, o.cpu.Name(), o.cpu.ExecSelf(p, o.cfg.FinishCycles))
	result := cephmsg.ResOK
	if anyErr || !repOK {
		result = cephmsg.ResError
	}
	o.stats.ClientWrites++
	o.stats.BytesWritten += total
	o.msgr.Send(src, &cephmsg.MOSDOpReply{
		Tid: m.Tid, Object: m.Object, Op: m.Op, Result: result,
		Version: uint64(p.Now()), TraceCtx: m.TraceCtx,
	})
	o.tr.Finish(sp)
}

// ingestRepStream is the replica's per-stream ingest: chunk-granular
// commit, one ack once the whole stream is durable.
func (o *OSD) ingestRepStream(p *sim.Proc, src string, m *cephmsg.MRepOp,
	in *messenger.InStream) {
	o.ready.Wait(p)
	var sp trace.SpanID
	if o.tr.Enabled() && m.TraceCtx != 0 {
		sp = o.tr.Start(trace.SpanID(m.TraceCtx), 0, trace.StageRepOp, m.Object)
	}
	o.tr.AddCPU(sp, o.cpu.Name(), o.cpu.ExecSelf(p, o.cfg.OpPrepCycles))
	var results []*objstore.Result
	off := m.Offset
	var total int64
	aborted := false
	for {
		chunk, done, ab := in.Next(p)
		if done {
			break
		}
		if ab {
			aborted = true
			break
		}
		results = append(results, o.ingestChunk(p, in, sp, m.PGID, m.Object, off,
			chunk, o.repCompleterName))
		n := int64(chunk.Length())
		off += uint64(n)
		total += n
	}
	for _, res := range results {
		res.Done.Wait(p)
	}
	o.stats.RepOpsServed++
	o.stats.BytesWritten += total
	o.tr.AddCPU(sp, o.cpu.Name(), o.cpu.ExecSelf(p, o.cfg.FinishCycles))
	if !aborted {
		// The primary aborts its wait on its own timeout if we never ack.
		o.msgr.Send(src, &cephmsg.MRepOpReply{Tid: m.Tid, PGID: m.PGID,
			TraceCtx: m.TraceCtx})
	}
	o.tr.Finish(sp)
}

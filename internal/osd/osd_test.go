package osd

import (
	"errors"
	"fmt"
	"testing"

	"doceph/internal/bluestore"
	"doceph/internal/cephmsg"
	"doceph/internal/crush"
	"doceph/internal/messenger"
	"doceph/internal/mon"
	"doceph/internal/osdmap"
	"doceph/internal/rados"
	"doceph/internal/sim"
	"doceph/internal/wire"
)

// testCluster wires a baseline mini-Ceph: one client node plus hosts storage
// nodes, each running one OSD + BlueStore on the host CPU (the paper's
// Baseline layout, §5.1).
type testCluster struct {
	env     *sim.Env
	mon     *mon.Monitor
	osds    []*OSD
	stores  []*bluestore.Store
	hostCPU []*sim.CPU
	client  *rados.Client
}

func newTestCluster(t *testing.T, hosts int, replicas int, wireEncode bool) *testCluster {
	t.Helper()
	return newTestClusterWith(t, hosts, replicas, wireEncode, Config{
		HeartbeatInterval: sim.Second, Monitor: "mon.0",
	})
}

func newTestClusterCfg(t *testing.T, hosts int, replicas int, ocfg Config) *testCluster {
	t.Helper()
	return newTestClusterWith(t, hosts, replicas, false, ocfg)
}

func newTestClusterWith(t *testing.T, hosts int, replicas int, wireEncode bool, ocfg Config) *testCluster {
	t.Helper()
	return newTestClusterFull(t, hosts, replicas, 0, wireEncode, ocfg)
}

// newTestClusterFull additionally sets the map's min_size write-quorum floor
// (0 keeps the gate off, the legacy shape every other test uses).
func newTestClusterFull(t *testing.T, hosts, replicas, minSize int, wireEncode bool, ocfg Config) *testCluster {
	t.Helper()
	return newTestClusterMsgr(t, hosts, replicas, minSize, messenger.Config{WireEncode: wireEncode}, ocfg)
}

// newTestClusterMsgr exposes the full messenger config — the streaming
// tests need the chunk-pipelined transport with a small chunk size.
func newTestClusterMsgr(t *testing.T, hosts, replicas, minSize int, mcfg messenger.Config, ocfg Config) *testCluster {
	t.Helper()
	env := sim.NewEnv(7)
	fabric := sim.NewFabric(env, "eth100g", 5*sim.Microsecond)
	reg := messenger.NewRegistry()

	crushMap := crush.BuildUniform(hosts, 1, 1.0)
	baseMap := osdmap.New(crushMap, 64, replicas)
	baseMap.MinSize = minSize

	fabric.AddNode("client-node", 12.5e9)
	clientCPU := sim.NewCPU(env, "client-cpu", 16, 3.0, 2000)

	// Monitor lives on the first storage node.
	tc := &testCluster{env: env}
	for h := 0; h < hosts; h++ {
		node := fmt.Sprintf("node%d", h)
		fabric.AddNode(node, 12.5e9)
		cpu := sim.NewCPU(env, "host-cpu"+node, 48, 3.7, 2000)
		disk := sim.NewDisk(env, "ssd"+node, 530e6, 560e6, 30*sim.Microsecond)
		tc.hostCPU = append(tc.hostCPU, cpu)
		if h == 0 {
			mmsgr := messenger.New(env, reg, fabric, cpu, "mon.0", node, mcfg)
			tc.mon = mon.New(env, cpu, mmsgr, baseMap.Next(), mon.Config{})
		}
		store := bluestore.New(env, fmt.Sprintf("bs%d", h), cpu, disk, bluestore.Config{})
		tc.stores = append(tc.stores, store)
		omsgr := messenger.New(env, reg, fabric, cpu, Name(int32(h)), node, mcfg)
		o := New(env, cpu, int32(h), omsgr, store, baseMap, ocfg)
		tc.osds = append(tc.osds, o)
		tc.mon.Subscribe(Name(int32(h)))
	}
	cmsgr := messenger.New(env, reg, fabric, clientCPU, "client.0", "client-node", mcfg)
	tc.client = rados.New(env, clientCPU, cmsgr, baseMap, rados.Config{})
	tc.mon.Subscribe("client.0")
	return tc
}

func (tc *testCluster) run(t *testing.T, body func(p *sim.Proc)) {
	t.Helper()
	done := false
	tc.env.Spawn("test-body", func(p *sim.Proc) {
		p.SetThread(sim.NewThread("tester", "client"))
		body(p)
		done = true
	})
	err := tc.env.RunUntil(sim.Time(10 * 60 * sim.Second))
	if !done {
		t.Fatalf("test body did not finish: %v", err)
	}
	tc.env.Shutdown()
}

func payload(n int, seed byte) *wire.Bufferlist {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(int(seed) + i*131)
	}
	return wire.FromBytes(b)
}

func TestWriteReadThroughCluster(t *testing.T) {
	tc := newTestCluster(t, 2, 2, true)
	tc.run(t, func(p *sim.Proc) {
		data := payload(200_000, 3)
		if err := tc.client.Write(p, "obj-1", data); err != nil {
			t.Fatalf("write: %v", err)
		}
		got, err := tc.client.Read(p, "obj-1", 0, 0)
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		if !got.Equal(data) {
			t.Fatal("read-back mismatch")
		}
	})
}

func TestReplicationToAllActingOSDs(t *testing.T) {
	tc := newTestCluster(t, 2, 2, false)
	tc.run(t, func(p *sim.Proc) {
		data := payload(100_000, 9)
		if err := tc.client.Write(p, "obj-rep", data); err != nil {
			t.Fatalf("write: %v", err)
		}
		// With 2 hosts and 2 replicas, both stores must hold the object.
		pg := tc.client.Map().PGForObject("obj-rep")
		coll := fmt.Sprintf("pg.%d", pg)
		for i, st := range tc.stores {
			bl, err := st.Read(p, coll, "obj-rep", 0, 0)
			if err != nil {
				t.Fatalf("store %d: %v", i, err)
			}
			if bl.CRC32C() != data.CRC32C() {
				t.Fatalf("store %d: content mismatch", i)
			}
		}
		primary := tc.client.Map().Primary(pg)
		secondary := 1 - primary
		if tc.osds[primary].Stats().ClientWrites != 1 {
			t.Fatal("primary did not count the client write")
		}
		if tc.osds[secondary].Stats().RepOpsServed != 1 {
			t.Fatal("secondary did not serve the rep op")
		}
	})
}

func TestWriteAckWaitsForReplicaDurability(t *testing.T) {
	tc := newTestCluster(t, 2, 2, false)
	tc.run(t, func(p *sim.Proc) {
		if err := tc.client.Write(p, "obj-ack", payload(50_000, 1)); err != nil {
			t.Fatal(err)
		}
		// At ack time both stores have committed the data (write-through).
		pg := tc.client.Map().PGForObject("obj-ack")
		coll := fmt.Sprintf("pg.%d", pg)
		for i, st := range tc.stores {
			if _, err := st.Stat(p, coll, "obj-ack"); err != nil {
				t.Fatalf("store %d not durable at ack: %v", i, err)
			}
		}
	})
}

func TestStatAndDelete(t *testing.T) {
	tc := newTestCluster(t, 2, 2, false)
	tc.run(t, func(p *sim.Proc) {
		if err := tc.client.Write(p, "obj-s", payload(12_345, 5)); err != nil {
			t.Fatal(err)
		}
		size, ver, err := tc.client.Stat(p, "obj-s")
		if err != nil || size != 12_345 || ver == 0 {
			t.Fatalf("stat size=%d ver=%d err=%v", size, ver, err)
		}
		if err := tc.client.Delete(p, "obj-s"); err != nil {
			t.Fatal(err)
		}
		if _, _, err := tc.client.Stat(p, "obj-s"); !errors.Is(err, rados.ErrNotFound) {
			t.Fatalf("err=%v", err)
		}
		if _, err := tc.client.Read(p, "obj-ghost", 0, 0); !errors.Is(err, rados.ErrNotFound) {
			t.Fatalf("err=%v", err)
		}
	})
}

func TestConcurrentClientsDistinctObjects(t *testing.T) {
	tc := newTestCluster(t, 2, 2, false)
	const n = 24
	oks := 0
	for i := 0; i < n; i++ {
		obj := fmt.Sprintf("obj-c%d", i)
		tc.env.Spawn("writer", func(p *sim.Proc) {
			p.SetThread(sim.NewThread("w", "client"))
			if err := tc.client.Write(p, obj, payload(64_000, byte(i))); err != nil {
				t.Errorf("%s: %v", obj, err)
				return
			}
			got, err := tc.client.Read(p, obj, 0, 0)
			if err != nil || got.Length() != 64_000 {
				t.Errorf("%s read: %v", obj, err)
				return
			}
			oks++
		})
	}
	if err := tc.env.RunUntil(sim.Time(10 * 60 * sim.Second)); err != nil {
		t.Fatal(err)
	}
	tc.env.Shutdown()
	if oks != n {
		t.Fatalf("oks=%d want %d", oks, n)
	}
}

func TestSequentialOverwritesLastWins(t *testing.T) {
	tc := newTestCluster(t, 2, 2, false)
	tc.run(t, func(p *sim.Proc) {
		for round := 0; round < 5; round++ {
			if err := tc.client.Write(p, "obj-ow", payload(10_000, byte(round))); err != nil {
				t.Fatal(err)
			}
		}
		got, err := tc.client.Read(p, "obj-ow", 0, 0)
		if err != nil || !got.Equal(payload(10_000, 4)) {
			t.Fatalf("read err=%v", err)
		}
	})
}

func TestOSDFailureDetectionAndFailover(t *testing.T) {
	tc := newTestCluster(t, 3, 2, false)
	tc.run(t, func(p *sim.Proc) {
		// Warm up: confirm traffic flows.
		if err := tc.client.Write(p, "pre-fail", payload(10_000, 1)); err != nil {
			t.Fatal(err)
		}
		victim := tc.osds[2]
		victim.Fail()
		// Heartbeat grace is 5 s; give detection + map propagation 15 s.
		p.Wait(15 * sim.Second)
		if tc.mon.EpochBumps() == 0 {
			t.Fatal("monitor never published a failure epoch")
		}
		if tc.client.Map().IsUp(2) {
			t.Fatal("client map still has osd.2 up")
		}
		// All placements now avoid the dead OSD and writes still succeed.
		for i := 0; i < 10; i++ {
			obj := fmt.Sprintf("post-fail-%d", i)
			if err := tc.client.Write(p, obj, payload(20_000, byte(i))); err != nil {
				t.Fatalf("%s: %v", obj, err)
			}
			pg := tc.client.Map().PGForObject(obj)
			for _, id := range tc.client.Map().ActingSet(pg) {
				if id == 2 {
					t.Fatal("new placement still uses failed OSD")
				}
			}
		}
	})
}

func TestHeartbeatsFlowBetweenOSDs(t *testing.T) {
	tc := newTestCluster(t, 2, 2, false)
	tc.run(t, func(p *sim.Proc) {
		p.Wait(10 * sim.Second)
		for i, o := range tc.osds {
			if len(o.lastSeen) == 0 {
				t.Fatalf("osd %d never heard a heartbeat", i)
			}
		}
	})
}

func TestWrongPrimaryRedirect(t *testing.T) {
	tc := newTestCluster(t, 2, 2, false)
	tc.run(t, func(p *sim.Proc) {
		// Find an object whose primary is osd.1, then aim it at osd.0 by
		// handing the client a stale map where osd.1 appears down.
		var obj string
		for i := 0; ; i++ {
			obj = fmt.Sprintf("probe-%d", i)
			pg := tc.client.Map().PGForObject(obj)
			if tc.client.Map().Primary(pg) == 1 {
				break
			}
		}
		// Write normally first so the real path works.
		if err := tc.client.Write(p, obj, payload(1000, 1)); err != nil {
			t.Fatal(err)
		}
		if tc.osds[0].Stats().WrongPrimary != 0 {
			t.Fatal("unexpected wrong-primary before the probe")
		}
	})
}

func TestOpShardsDefaultAndClamp(t *testing.T) {
	if got := (Config{}).withDefaults().OpShards; got != 1 {
		t.Fatalf("default OpShards=%d, want 1", got)
	}
	// More shards than workers would leave shards with no server; the
	// config clamps instead.
	if got := (Config{OpWorkers: 2, OpShards: 8}).withDefaults().OpShards; got != 2 {
		t.Fatalf("clamped OpShards=%d, want 2", got)
	}
	if got := (Config{OpWorkers: 8, OpShards: 4}).withDefaults().OpShards; got != 4 {
		t.Fatalf("OpShards=%d, want 4", got)
	}
}

func TestOpShardRoutesByPG(t *testing.T) {
	tc := newTestClusterCfg(t, 1, 1, Config{OpWorkers: 8, OpShards: 4})
	tc.run(t, func(p *sim.Proc) {
		o := tc.osds[0]
		if got := len(o.opqs); got != 4 {
			t.Fatalf("shards=%d, want 4", got)
		}
		// Every message type of one PG must ride the same shard: client op
		// (PG derived from the object), replication sub-op, PG push and
		// scrub all keyed by the PG id.
		for _, obj := range []string{"alpha", "beta", "gamma", "delta"} {
			pg := o.curMap.PGForObject(obj)
			want := int(pg % 4)
			if got := o.opShard(&cephmsg.MOSDOp{Object: obj}); got != want {
				t.Fatalf("%s: client op shard %d, want %d", obj, got, want)
			}
			for _, m := range []cephmsg.Message{
				&cephmsg.MRepOp{PGID: pg},
				&cephmsg.MPGPush{PGID: pg},
				&cephmsg.MScrub{PGID: pg},
			} {
				if got := o.opShard(m); got != want {
					t.Fatalf("%s: %T shard %d, want %d", obj, m, got, want)
				}
			}
		}
	})
}

func TestShardedDispatchPreservesSemantics(t *testing.T) {
	tc := newTestClusterCfg(t, 2, 2, Config{OpWorkers: 8, OpShards: 4})
	tc.run(t, func(p *sim.Proc) {
		// Concurrent writers across many PGs, then read everything back.
		const writers, objs = 4, 6
		done := 0
		for w := 0; w < writers; w++ {
			w := w
			tc.env.Spawn(fmt.Sprintf("writer%d", w), func(wp *sim.Proc) {
				wp.SetThread(sim.NewThread(fmt.Sprintf("writer%d", w), "client"))
				for i := 0; i < objs; i++ {
					obj := fmt.Sprintf("shard-obj-%d-%d", w, i)
					if err := tc.client.Write(wp, obj, payload(64<<10, byte(w*objs+i))); err != nil {
						t.Errorf("write %s: %v", obj, err)
					}
				}
				done++
			})
		}
		for done < writers {
			p.Wait(10 * sim.Millisecond)
		}
		for w := 0; w < writers; w++ {
			for i := 0; i < objs; i++ {
				obj := fmt.Sprintf("shard-obj-%d-%d", w, i)
				got, err := tc.client.Read(p, obj, 0, 0)
				if err != nil {
					t.Fatalf("read %s: %v", obj, err)
				}
				if !got.Equal(payload(64<<10, byte(w*objs+i))) {
					t.Fatalf("%s: read-back mismatch", obj)
				}
			}
		}
		// Per-PG ordering end to end: sequential overwrites of one object
		// must leave the last payload.
		for v := 0; v < 3; v++ {
			if err := tc.client.Write(p, "versioned", payload(32<<10, byte(100+v))); err != nil {
				t.Fatalf("overwrite %d: %v", v, err)
			}
		}
		got, err := tc.client.Read(p, "versioned", 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(payload(32<<10, 102)) {
			t.Fatal("overwrite order broken: stale payload read back")
		}
	})
}

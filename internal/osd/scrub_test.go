package osd

import (
	"fmt"
	"testing"

	"doceph/internal/objstore"
	"doceph/internal/sim"
)

// TestScrubDetectsAndRepairsBitRot: corrupt a replica's copy, run a scrub,
// verify the divergence is found and the replica repaired from the primary.
func TestScrubDetectsAndRepairsBitRot(t *testing.T) {
	tc := newTestCluster(t, 2, 2, false)
	tc.run(t, func(p *sim.Proc) {
		data := payload(50_000, 3)
		if err := tc.client.Write(p, "victim", data); err != nil {
			t.Fatal(err)
		}
		m := tc.client.Map()
		pg := m.PGForObject("victim")
		coll := fmt.Sprintf("pg.%d", pg)
		primary := m.Primary(pg)
		secondary := 1 - primary

		// Bit-rot on the secondary's copy.
		if err := tc.stores[secondary].CorruptObject(coll, "victim"); err != nil {
			t.Fatal(err)
		}
		bad, _ := tc.stores[secondary].Read(p, coll, "victim", 0, 0)
		if bad.CRC32C() == data.CRC32C() {
			t.Fatal("corruption did not take")
		}
		// Primary's copy must be unharmed (clone-before-corrupt).
		good, _ := tc.stores[primary].Read(p, coll, "victim", 0, 0)
		if good.CRC32C() != data.CRC32C() {
			t.Fatal("corruption leaked into the primary's shared buffers")
		}

		tc.osds[primary].ScrubNow()
		p.Wait(30 * sim.Second)

		st := tc.osds[primary].Stats()
		if st.ScrubErrors != 1 || st.ScrubRepairs != 1 {
			t.Fatalf("scrub stats=%+v", st)
		}
		repaired, err := tc.stores[secondary].Read(p, coll, "victim", 0, 0)
		if err != nil || repaired.CRC32C() != data.CRC32C() {
			t.Fatalf("replica not repaired: %v", err)
		}
	})
}

// TestScrubCleanClusterFindsNothing: no corruption, no repairs.
func TestScrubCleanClusterFindsNothing(t *testing.T) {
	tc := newTestCluster(t, 2, 2, false)
	tc.run(t, func(p *sim.Proc) {
		for i := 0; i < 8; i++ {
			if err := tc.client.Write(p, fmt.Sprintf("obj-%d", i), payload(10_000, byte(i))); err != nil {
				t.Fatal(err)
			}
		}
		for _, o := range tc.osds {
			o.ScrubNow()
		}
		p.Wait(30 * sim.Second)
		var scrubbed, errs int64
		for _, o := range tc.osds {
			scrubbed += o.Stats().ObjectsScrubbed
			errs += o.Stats().ScrubErrors
		}
		if scrubbed < 8 {
			t.Fatalf("scrubbed=%d", scrubbed)
		}
		if errs != 0 {
			t.Fatalf("false positives: %d", errs)
		}
	})
}

// TestPeriodicScrubRuns: with ScrubInterval set, the background loop scrubs
// without manual triggering.
func TestPeriodicScrubRuns(t *testing.T) {
	tc := newTestClusterCfg(t, 2, 2, Config{
		HeartbeatInterval: sim.Second, Monitor: "mon.0",
		ScrubInterval: 5 * sim.Second,
	})
	tc.run(t, func(p *sim.Proc) {
		if err := tc.client.Write(p, "obj", payload(5_000, 1)); err != nil {
			t.Fatal(err)
		}
		p.Wait(12 * sim.Second)
		var scrubbed int64
		for _, o := range tc.osds {
			scrubbed += o.Stats().ObjectsScrubbed
		}
		if scrubbed == 0 {
			t.Fatal("periodic scrub never ran")
		}
	})
}

// TestScrubMissingReplicaObjectRepaired: a replica that silently lost an
// object (e.g. operator deleted it) gets it back.
func TestScrubMissingReplicaObjectRepaired(t *testing.T) {
	tc := newTestCluster(t, 2, 2, false)
	tc.run(t, func(p *sim.Proc) {
		data := payload(20_000, 7)
		if err := tc.client.Write(p, "lost", data); err != nil {
			t.Fatal(err)
		}
		m := tc.client.Map()
		pg := m.PGForObject("lost")
		coll := fmt.Sprintf("pg.%d", pg)
		primary := m.Primary(pg)
		secondary := 1 - primary

		// Remove the replica copy behind the OSD's back.
		res := tc.stores[secondary].QueueTransaction(p,
			(&objstore.Transaction{}).Remove(coll, "lost"))
		res.Done.Wait(p)
		if res.Err != nil {
			t.Fatal(res.Err)
		}

		tc.osds[primary].ScrubNow()
		p.Wait(30 * sim.Second)
		got, err := tc.stores[secondary].Read(p, coll, "lost", 0, 0)
		if err != nil || got.CRC32C() != data.CRC32C() {
			t.Fatalf("lost object not restored: %v", err)
		}
	})
}

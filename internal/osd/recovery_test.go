package osd

import (
	"fmt"
	"testing"

	"doceph/internal/sim"
)

// TestBackfillAfterRejoin: write objects with 3 OSDs, crash one, keep
// writing, bring it back — the surviving primaries must push both the old
// and the interim objects to the rejoined OSD wherever it re-enters an
// acting set.
func TestBackfillAfterRejoin(t *testing.T) {
	tc := newTestCluster(t, 3, 2, false)
	tc.run(t, func(p *sim.Proc) {
		var objs []string
		for i := 0; i < 20; i++ {
			obj := fmt.Sprintf("pre-%d", i)
			if err := tc.client.Write(p, obj, payload(8_000, byte(i))); err != nil {
				t.Fatal(err)
			}
			objs = append(objs, obj)
		}
		tc.osds[2].Fail()
		p.Wait(15 * sim.Second) // detection + new epoch
		if tc.client.Map().IsUp(2) {
			t.Fatal("osd.2 still up in client map")
		}
		for i := 0; i < 10; i++ {
			obj := fmt.Sprintf("mid-%d", i)
			if err := tc.client.Write(p, obj, payload(8_000, byte(100+i))); err != nil {
				t.Fatal(err)
			}
			objs = append(objs, obj)
		}
		// Rejoin: restart the daemon, then publish it up.
		tc.osds[2].Recover()
		tc.mon.MarkUp(2)
		p.Wait(30 * sim.Second) // map propagation + backfill
		if !tc.client.Map().IsUp(2) {
			t.Fatal("osd.2 not back up")
		}

		// Every object whose current acting set includes osd.2 must now be
		// present and intact in osd.2's store.
		m := tc.client.Map()
		checked := 0
		for i, obj := range objs {
			pg := m.PGForObject(obj)
			on2 := false
			for _, id := range m.ActingSet(pg) {
				on2 = on2 || id == 2
			}
			if !on2 {
				continue
			}
			checked++
			bl, err := tc.stores[2].Read(p, fmt.Sprintf("pg.%d", pg), obj, 0, 0)
			if err != nil {
				t.Fatalf("%s missing on rejoined osd: %v", obj, err)
			}
			seed := byte(i)
			if i >= 20 {
				seed = byte(100 + i - 20)
			}
			if bl.CRC32C() != payload(8_000, seed).CRC32C() {
				t.Fatalf("%s content mismatch on rejoined osd", obj)
			}
		}
		if checked == 0 {
			t.Fatal("no objects mapped to the rejoined OSD; test is vacuous")
		}
		recovered := int64(0)
		for _, o := range tc.osds {
			recovered += o.Stats().ObjectsRecovered
		}
		if recovered == 0 {
			t.Fatal("no recovery pushes recorded")
		}
		if tc.osds[2].Stats().PushesServed == 0 {
			t.Fatal("rejoined OSD served no pushes")
		}
	})
}

// TestBackfillSkipsNewerObjects: an object written during the recovery
// window must not be clobbered by a stale push.
func TestBackfillSkipsNewerObjects(t *testing.T) {
	tc := newTestCluster(t, 3, 2, false)
	tc.run(t, func(p *sim.Proc) {
		if err := tc.client.Write(p, "contested", payload(4_000, 1)); err != nil {
			t.Fatal(err)
		}
		tc.osds[2].Fail()
		p.Wait(15 * sim.Second)
		tc.osds[2].Recover()
		tc.mon.MarkUp(2)
		// Immediately overwrite while backfill may be in flight.
		if err := tc.client.Write(p, "contested", payload(4_000, 9)); err != nil {
			t.Fatal(err)
		}
		p.Wait(20 * sim.Second)
		m := tc.client.Map()
		pg := m.PGForObject("contested")
		for _, id := range m.ActingSet(pg) {
			bl, err := tc.stores[id].Read(p, fmt.Sprintf("pg.%d", pg), "contested", 0, 0)
			if err != nil {
				t.Fatalf("osd.%d: %v", id, err)
			}
			if bl.CRC32C() != payload(4_000, 9).CRC32C() {
				t.Fatalf("osd.%d holds a stale copy", id)
			}
		}
	})
}

// TestPickBackfill pins the pusher-selection contract at the edges: no
// surviving replica yields no pusher (never a panic or a bogus push from an
// empty OSD), a crashed candidate is skipped because it is absent from the
// new acting set, and fully-overlapping sets produce no work.
func TestPickBackfill(t *testing.T) {
	cases := []struct {
		name        string
		oldSet, new []int32
		pusher      int32
		targets     []int32
	}{
		{"steady state", []int32{0, 1}, []int32{0, 1}, 0, nil},
		{"one newcomer", []int32{0, 1}, []int32{0, 2}, 0, []int32{2}},
		{"pusher is first survivor", []int32{3, 1}, []int32{1, 2}, 1, []int32{2}},
		{"crashed first member skipped", []int32{0, 1}, []int32{1, 2}, 1, []int32{2}},
		{"no surviving member", []int32{0, 1}, []int32{2, 3}, -1, nil},
		{"old set empty", nil, []int32{0, 1}, -1, nil},
		{"new set empty", []int32{0, 1}, nil, -1, nil},
		{"all newcomers but pusher", []int32{2}, []int32{0, 1, 2}, 2, []int32{0, 1}},
	}
	for _, c := range cases {
		pusher, targets := pickBackfill(c.oldSet, c.new)
		if pusher != c.pusher {
			t.Errorf("%s: pusher = %d, want %d", c.name, pusher, c.pusher)
		}
		if fmt.Sprint(targets) != fmt.Sprint(c.targets) {
			t.Errorf("%s: targets = %v, want %v", c.name, targets, c.targets)
		}
	}
	// "Pusher is first survivor" holds even when a later old member also
	// survives: 3 is gone, 1 survives and pushes, 0 does not.
	if p, _ := pickBackfill([]int32{3, 1, 0}, []int32{1, 0, 2}); p != 1 {
		t.Errorf("first-survivor tie-break: pusher = %d, want 1", p)
	}
}

// TestBackfillPusherCrashMidRecovery: the designated pusher dies while
// streaming. Pushes stop without wedging the cluster, the next map change
// re-runs pusher selection among the survivors, and once everyone is back
// every object converges onto its full acting set.
func TestBackfillPusherCrashMidRecovery(t *testing.T) {
	tc := newTestClusterCfg(t, 3, 2, Config{
		HeartbeatInterval: sim.Second, Monitor: "mon.0",
		RecoveryDelay: 50 * sim.Millisecond, // slow the stream so the crash lands mid-backfill
	})
	tc.run(t, func(p *sim.Proc) {
		var objs []string
		for i := 0; i < 30; i++ {
			obj := fmt.Sprintf("pc-%d", i)
			if err := tc.client.Write(p, obj, payload(8_000, byte(i))); err != nil {
				t.Fatal(err)
			}
			objs = append(objs, obj)
		}
		tc.osds[2].Fail()
		p.Wait(15 * sim.Second)
		tc.osds[2].Recover()
		tc.mon.MarkUp(2)
		p.Wait(500 * sim.Millisecond) // backfill under way
		tc.osds[0].Fail()             // kill one of the pushers mid-stream
		p.Wait(15 * sim.Second)
		tc.osds[0].Recover()
		tc.mon.MarkUp(0)
		p.Wait(40 * sim.Second)
		m := tc.client.Map()
		for i, obj := range objs {
			pg := m.PGForObject(obj)
			for _, id := range m.ActingSet(pg) {
				bl, err := tc.stores[id].Read(p, fmt.Sprintf("pg.%d", pg), obj, 0, 0)
				if err != nil {
					t.Fatalf("%s missing on osd.%d after pusher crash: %v", obj, id, err)
				}
				if bl.CRC32C() != payload(8_000, byte(i)).CRC32C() {
					t.Fatalf("%s corrupt on osd.%d", obj, id)
				}
			}
		}
	})
}

// TestRecoveryQoSPacesAndYields: with reservations, byte pacing and the
// op-queue watermark all on, backfill still converges — and each mechanism
// leaves its fingerprint in the stats.
func TestRecoveryQoSPacesAndYields(t *testing.T) {
	tc := newTestClusterCfg(t, 3, 2, Config{
		HeartbeatInterval: sim.Second, Monitor: "mon.0",
		OpWorkers:            1, // let the op queue actually build up
		RecoveryMaxPGs:       1,
		RecoveryBps:          64e3, // 64 KB/s (and 64 KB burst) under ~120 KB per pusher
		RecoveryBackoffDepth: 1,
	})
	tc.run(t, func(p *sim.Proc) {
		var objs []string
		for i := 0; i < 30; i++ {
			obj := fmt.Sprintf("qos-%d", i)
			if err := tc.client.Write(p, obj, payload(8_000, byte(i))); err != nil {
				t.Fatal(err)
			}
			objs = append(objs, obj)
		}
		tc.osds[2].Fail()
		p.Wait(15 * sim.Second)
		tc.osds[2].Recover()
		tc.mon.MarkUp(2)
		// Foreground load during the recovery window: writers hammering a
		// single-worker OSD keep the op queues non-empty so the watermark
		// backoff has something to yield to.
		stop := false
		for w := 0; w < 2; w++ {
			wid := w
			tc.env.Spawn(fmt.Sprintf("fg-writer-%d", wid), func(wp *sim.Proc) {
				wp.SetThread(sim.NewThread(fmt.Sprintf("fg-%d", wid), "client"))
				for i := 0; !stop; i++ {
					obj := fmt.Sprintf("fg-%d-%d", wid, i)
					if err := tc.client.Write(wp, obj, payload(8_000, byte(i))); err != nil {
						return
					}
				}
			})
		}
		p.Wait(20 * sim.Second)
		stop = true
		p.Wait(10 * sim.Second)

		var s Stats
		for _, o := range tc.osds {
			os := o.Stats()
			s.PGsBackfilled += os.PGsBackfilled
			s.RecoveryBytes += os.RecoveryBytes
			s.RecoveryThrottle += os.RecoveryThrottle
			s.RecoveryBackoffs += os.RecoveryBackoffs
			s.ObjectsRecovered += os.ObjectsRecovered
		}
		if s.ObjectsRecovered == 0 {
			t.Fatal("recovery never ran")
		}
		if s.PGsBackfilled == 0 {
			t.Fatal("no backfill reservations recorded")
		}
		if s.RecoveryBytes == 0 {
			t.Fatal("no recovery bytes accounted")
		}
		if s.RecoveryThrottle == 0 {
			t.Fatal("token bucket never throttled despite 64 KB/s cap")
		}
		if s.RecoveryBackoffs == 0 {
			t.Fatal("watermark backoff never fired despite foreground load")
		}
		// QoS must not compromise convergence: the pre-crash objects are
		// whole on the rejoined OSD wherever it serves them.
		m := tc.client.Map()
		checked := 0
		for i, obj := range objs {
			pg := m.PGForObject(obj)
			on2 := false
			for _, id := range m.ActingSet(pg) {
				on2 = on2 || id == 2
			}
			if !on2 {
				continue
			}
			checked++
			bl, err := tc.stores[2].Read(p, fmt.Sprintf("pg.%d", pg), obj, 0, 0)
			if err != nil {
				t.Fatalf("%s missing on rejoined osd under QoS: %v", obj, err)
			}
			if bl.CRC32C() != payload(8_000, byte(i)).CRC32C() {
				t.Fatalf("%s corrupt on rejoined osd", obj)
			}
		}
		if checked == 0 {
			t.Fatal("no objects mapped to the rejoined OSD; test is vacuous")
		}
	})
}

// TestRecoveryDisabled: with DisableRecovery nothing is pushed.
func TestRecoveryDisabled(t *testing.T) {
	tc := newTestClusterCfg(t, 3, 2, Config{
		HeartbeatInterval: sim.Second, Monitor: "mon.0", DisableRecovery: true,
	})
	tc.run(t, func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			if err := tc.client.Write(p, fmt.Sprintf("o-%d", i), payload(4_000, byte(i))); err != nil {
				t.Fatal(err)
			}
		}
		tc.osds[2].Fail()
		p.Wait(15 * sim.Second)
		tc.osds[2].Recover()
		tc.mon.MarkUp(2)
		p.Wait(20 * sim.Second)
		for _, o := range tc.osds {
			if o.Stats().ObjectsRecovered != 0 {
				t.Fatal("recovery ran despite DisableRecovery")
			}
		}
	})
}

// TestRecoveryAndScrubWithWireEncoding runs the rejoin + scrub flows with
// real message serialization, proving MPGPush/MPGPushAck/MScrub/MScrubReply
// survive their codecs end to end.
func TestRecoveryAndScrubWithWireEncoding(t *testing.T) {
	tc := newTestClusterWith(t, 3, 2, true, Config{
		HeartbeatInterval: sim.Second, Monitor: "mon.0",
	})
	tc.run(t, func(p *sim.Proc) {
		for i := 0; i < 6; i++ {
			if err := tc.client.Write(p, fmt.Sprintf("we-%d", i), payload(30_000, byte(i))); err != nil {
				t.Fatal(err)
			}
		}
		tc.osds[2].Fail()
		p.Wait(15 * sim.Second)
		tc.osds[2].Recover()
		tc.mon.MarkUp(2)
		p.Wait(25 * sim.Second)
		var recovered int64
		for _, o := range tc.osds {
			recovered += o.Stats().ObjectsRecovered
		}
		if recovered == 0 {
			t.Fatal("no recovery over encoded wire")
		}
		// Scrub over the encoded wire too.
		for _, o := range tc.osds {
			o.ScrubNow()
		}
		p.Wait(20 * sim.Second)
		var scrubbed int64
		for _, o := range tc.osds {
			scrubbed += o.Stats().ObjectsScrubbed
		}
		if scrubbed == 0 {
			t.Fatal("no scrubs over encoded wire")
		}
	})
}

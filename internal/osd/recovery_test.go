package osd

import (
	"fmt"
	"testing"

	"doceph/internal/sim"
)

// TestBackfillAfterRejoin: write objects with 3 OSDs, crash one, keep
// writing, bring it back — the surviving primaries must push both the old
// and the interim objects to the rejoined OSD wherever it re-enters an
// acting set.
func TestBackfillAfterRejoin(t *testing.T) {
	tc := newTestCluster(t, 3, 2, false)
	tc.run(t, func(p *sim.Proc) {
		var objs []string
		for i := 0; i < 20; i++ {
			obj := fmt.Sprintf("pre-%d", i)
			if err := tc.client.Write(p, obj, payload(8_000, byte(i))); err != nil {
				t.Fatal(err)
			}
			objs = append(objs, obj)
		}
		tc.osds[2].Fail()
		p.Wait(15 * sim.Second) // detection + new epoch
		if tc.client.Map().IsUp(2) {
			t.Fatal("osd.2 still up in client map")
		}
		for i := 0; i < 10; i++ {
			obj := fmt.Sprintf("mid-%d", i)
			if err := tc.client.Write(p, obj, payload(8_000, byte(100+i))); err != nil {
				t.Fatal(err)
			}
			objs = append(objs, obj)
		}
		// Rejoin: restart the daemon, then publish it up.
		tc.osds[2].Recover()
		tc.mon.MarkUp(2)
		p.Wait(30 * sim.Second) // map propagation + backfill
		if !tc.client.Map().IsUp(2) {
			t.Fatal("osd.2 not back up")
		}

		// Every object whose current acting set includes osd.2 must now be
		// present and intact in osd.2's store.
		m := tc.client.Map()
		checked := 0
		for i, obj := range objs {
			pg := m.PGForObject(obj)
			on2 := false
			for _, id := range m.ActingSet(pg) {
				on2 = on2 || id == 2
			}
			if !on2 {
				continue
			}
			checked++
			bl, err := tc.stores[2].Read(p, fmt.Sprintf("pg.%d", pg), obj, 0, 0)
			if err != nil {
				t.Fatalf("%s missing on rejoined osd: %v", obj, err)
			}
			seed := byte(i)
			if i >= 20 {
				seed = byte(100 + i - 20)
			}
			if bl.CRC32C() != payload(8_000, seed).CRC32C() {
				t.Fatalf("%s content mismatch on rejoined osd", obj)
			}
		}
		if checked == 0 {
			t.Fatal("no objects mapped to the rejoined OSD; test is vacuous")
		}
		recovered := int64(0)
		for _, o := range tc.osds {
			recovered += o.Stats().ObjectsRecovered
		}
		if recovered == 0 {
			t.Fatal("no recovery pushes recorded")
		}
		if tc.osds[2].Stats().PushesServed == 0 {
			t.Fatal("rejoined OSD served no pushes")
		}
	})
}

// TestBackfillSkipsNewerObjects: an object written during the recovery
// window must not be clobbered by a stale push.
func TestBackfillSkipsNewerObjects(t *testing.T) {
	tc := newTestCluster(t, 3, 2, false)
	tc.run(t, func(p *sim.Proc) {
		if err := tc.client.Write(p, "contested", payload(4_000, 1)); err != nil {
			t.Fatal(err)
		}
		tc.osds[2].Fail()
		p.Wait(15 * sim.Second)
		tc.osds[2].Recover()
		tc.mon.MarkUp(2)
		// Immediately overwrite while backfill may be in flight.
		if err := tc.client.Write(p, "contested", payload(4_000, 9)); err != nil {
			t.Fatal(err)
		}
		p.Wait(20 * sim.Second)
		m := tc.client.Map()
		pg := m.PGForObject("contested")
		for _, id := range m.ActingSet(pg) {
			bl, err := tc.stores[id].Read(p, fmt.Sprintf("pg.%d", pg), "contested", 0, 0)
			if err != nil {
				t.Fatalf("osd.%d: %v", id, err)
			}
			if bl.CRC32C() != payload(4_000, 9).CRC32C() {
				t.Fatalf("osd.%d holds a stale copy", id)
			}
		}
	})
}

// TestRecoveryDisabled: with DisableRecovery nothing is pushed.
func TestRecoveryDisabled(t *testing.T) {
	tc := newTestClusterCfg(t, 3, 2, Config{
		HeartbeatInterval: sim.Second, Monitor: "mon.0", DisableRecovery: true,
	})
	tc.run(t, func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			if err := tc.client.Write(p, fmt.Sprintf("o-%d", i), payload(4_000, byte(i))); err != nil {
				t.Fatal(err)
			}
		}
		tc.osds[2].Fail()
		p.Wait(15 * sim.Second)
		tc.osds[2].Recover()
		tc.mon.MarkUp(2)
		p.Wait(20 * sim.Second)
		for _, o := range tc.osds {
			if o.Stats().ObjectsRecovered != 0 {
				t.Fatal("recovery ran despite DisableRecovery")
			}
		}
	})
}

// TestRecoveryAndScrubWithWireEncoding runs the rejoin + scrub flows with
// real message serialization, proving MPGPush/MPGPushAck/MScrub/MScrubReply
// survive their codecs end to end.
func TestRecoveryAndScrubWithWireEncoding(t *testing.T) {
	tc := newTestClusterWith(t, 3, 2, true, Config{
		HeartbeatInterval: sim.Second, Monitor: "mon.0",
	})
	tc.run(t, func(p *sim.Proc) {
		for i := 0; i < 6; i++ {
			if err := tc.client.Write(p, fmt.Sprintf("we-%d", i), payload(30_000, byte(i))); err != nil {
				t.Fatal(err)
			}
		}
		tc.osds[2].Fail()
		p.Wait(15 * sim.Second)
		tc.osds[2].Recover()
		tc.mon.MarkUp(2)
		p.Wait(25 * sim.Second)
		var recovered int64
		for _, o := range tc.osds {
			recovered += o.Stats().ObjectsRecovered
		}
		if recovered == 0 {
			t.Fatal("no recovery over encoded wire")
		}
		// Scrub over the encoded wire too.
		for _, o := range tc.osds {
			o.ScrubNow()
		}
		p.Wait(20 * sim.Second)
		var scrubbed int64
		for _, o := range tc.osds {
			scrubbed += o.Stats().ObjectsScrubbed
		}
		if scrubbed == 0 {
			t.Fatal("no scrubs over encoded wire")
		}
	})
}

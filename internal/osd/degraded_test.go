package osd

import (
	"errors"
	"fmt"
	"testing"

	"doceph/internal/rados"
	"doceph/internal/sim"
)

// degradedCfg is the OSD config shared by the min_size tests: heartbeats on
// so the monitor learns about crashes.
func degradedCfg() Config {
	return Config{HeartbeatInterval: sim.Second, Monitor: "mon.0"}
}

// TestDegradedWritesAcceptedAtMinSize: 2 hosts, replicas=2, min_size=1. With
// one OSD down every PG's acting set shrinks to a single member — still at
// min_size, so writes proceed degraded, the primary ledgers them per PG, and
// a rejoin heals the ledger while recovery re-replicates the objects.
func TestDegradedWritesAcceptedAtMinSize(t *testing.T) {
	tc := newTestClusterFull(t, 2, 2, 1, false, degradedCfg())
	tc.run(t, func(p *sim.Proc) {
		if err := tc.client.Write(p, "pre", payload(8_000, 1)); err != nil {
			t.Fatal(err)
		}
		if got := tc.osds[0].Stats().DegradedWrites; got != 0 {
			t.Fatalf("healthy write counted as degraded (%d)", got)
		}
		tc.osds[1].Fail()
		p.Wait(15 * sim.Second) // detection + new epoch
		if tc.client.Map().IsUp(1) {
			t.Fatal("osd.1 still up in client map")
		}
		var objs []string
		for i := 0; i < 8; i++ {
			obj := fmt.Sprintf("deg-%d", i)
			if err := tc.client.Write(p, obj, payload(8_000, byte(10+i))); err != nil {
				t.Fatalf("degraded write %s: %v", obj, err)
			}
			objs = append(objs, obj)
		}
		s := tc.osds[0].Stats()
		if s.DegradedWrites != 8 {
			t.Fatalf("DegradedWrites = %d, want 8", s.DegradedWrites)
		}
		if s.NoQuorumRejects != 0 {
			t.Fatalf("writes rejected at min_size: %d", s.NoQuorumRejects)
		}
		ledger := tc.osds[0].DegradedLedger()
		var ledgered int64
		for _, n := range ledger {
			ledgered += n
		}
		if ledgered != 8 {
			t.Fatalf("ledger total = %d (%v), want 8", ledgered, ledger)
		}

		// Rejoin: the ledger heals and recovery restores full replication.
		tc.osds[1].Recover()
		tc.mon.MarkUp(1)
		p.Wait(30 * sim.Second)
		if n := len(tc.osds[0].DegradedLedger()); n != 0 {
			t.Fatalf("%d PGs still ledgered after rejoin", n)
		}
		if tc.osds[0].Stats().DegradedPGsHealed == 0 {
			t.Fatal("no healed PGs recorded")
		}
		m := tc.client.Map()
		for i, obj := range objs {
			pg := m.PGForObject(obj)
			bl, err := tc.stores[1].Read(p, fmt.Sprintf("pg.%d", pg), obj, 0, 0)
			if err != nil {
				t.Fatalf("%s not recovered onto osd.1: %v", obj, err)
			}
			if bl.CRC32C() != payload(8_000, byte(10+i)).CRC32C() {
				t.Fatalf("%s content mismatch after recovery", obj)
			}
		}
	})
}

// TestWritesRejectedBelowMinSize: with min_size equal to the replication
// factor, losing a replica drops the acting set below quorum — mutations
// bounce with ResNoQuorum, the client surfaces ErrNoQuorum after its retry
// budget, and reads keep working. Quorum restored, the same write succeeds.
func TestWritesRejectedBelowMinSize(t *testing.T) {
	tc := newTestClusterFull(t, 2, 2, 2, false, degradedCfg())
	tc.run(t, func(p *sim.Proc) {
		if err := tc.client.Write(p, "obj", payload(6_000, 3)); err != nil {
			t.Fatal(err)
		}
		tc.osds[1].Fail()
		p.Wait(15 * sim.Second)
		err := tc.client.Write(p, "obj", payload(6_000, 4))
		if !errors.Is(err, rados.ErrNoQuorum) {
			t.Fatalf("write below min_size: err = %v, want ErrNoQuorum", err)
		}
		if tc.osds[0].Stats().NoQuorumRejects == 0 {
			t.Fatal("primary recorded no quorum rejections")
		}
		if tc.osds[0].Stats().DegradedWrites != 0 {
			t.Fatal("rejected write also counted as degraded")
		}
		if tc.client.Stats().NoQuorumWaits == 0 {
			t.Fatal("client recorded no quorum waits")
		}
		// Reads are unaffected: durability, not availability, is gated.
		if _, err := tc.client.Read(p, "obj", 0, 0); err != nil {
			t.Fatalf("read during quorum loss: %v", err)
		}
		tc.osds[1].Recover()
		tc.mon.MarkUp(1)
		p.Wait(15 * sim.Second)
		if err := tc.client.Write(p, "obj", payload(6_000, 5)); err != nil {
			t.Fatalf("write after quorum restored: %v", err)
		}
		m := tc.client.Map()
		pg := m.PGForObject("obj")
		for _, id := range m.ActingSet(pg) {
			bl, err := tc.stores[id].Read(p, fmt.Sprintf("pg.%d", pg), "obj", 0, 0)
			if err != nil {
				t.Fatalf("osd.%d: %v", id, err)
			}
			if bl.CRC32C() != payload(6_000, 5).CRC32C() {
				t.Fatalf("osd.%d holds stale content", id)
			}
		}
	})
}

// TestMinSizeZeroKeepsLegacyBehaviour: with the gate off (the default), a
// write into a shrunken acting set neither ledgers nor rejects — byte-for-
// byte the seed behaviour.
func TestMinSizeZeroKeepsLegacyBehaviour(t *testing.T) {
	tc := newTestCluster(t, 2, 2, false)
	tc.run(t, func(p *sim.Proc) {
		tc.osds[1].Fail()
		p.Wait(15 * sim.Second)
		if err := tc.client.Write(p, "legacy", payload(4_000, 7)); err != nil {
			t.Fatal(err)
		}
		s := tc.osds[0].Stats()
		if s.DegradedWrites != 0 || s.NoQuorumRejects != 0 {
			t.Fatalf("min_size bookkeeping active while disabled: %+v", s)
		}
		if len(tc.osds[0].DegradedLedger()) != 0 {
			t.Fatal("ledger populated while gate disabled")
		}
	})
}

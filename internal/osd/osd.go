// Package osd implements the Object Storage Daemon: the request pipeline of
// Figure 2 in the paper. Client ops arrive via the messenger (steps 1-2),
// are queued to the op work queue (3), picked up by tp_osd_tp worker threads
// (4), applied to the backing ObjectStore (5), replicated to secondary OSDs
// through the messenger (6-8), and acknowledged to the client once the local
// commit and every replica ack have landed (9), preserving Ceph's
// write-through semantics.
//
// The same OSD code runs in both deployments the paper compares: on the
// host CPU with a local BlueStore (Baseline) and on the DPU's ARM cores with
// a ProxyObjectStore backend (DoCeph) — the store is just the pluggable
// objstore.Store interface.
package osd

import (
	"fmt"
	"sort"

	"doceph/internal/cephmsg"
	"doceph/internal/messenger"
	"doceph/internal/objstore"
	"doceph/internal/osdmap"
	"doceph/internal/sim"
	"doceph/internal/trace"
	"doceph/internal/wire"
)

// ThreadCat is the accounting category for OSD worker threads, matching the
// paper's "tp_osd_tp" perf pattern.
const ThreadCat = "tp_osd_tp"

// Config carries OSD tunables and the op-path CPU cost model.
type Config struct {
	// OpWorkers is the tp_osd_tp worker-pool size.
	OpWorkers int
	// OpShards is the number of op-queue shards (Ceph's osd_op_num_shards):
	// PGs hash to shards, each shard is one FIFO queue, and the worker pool
	// is divided among them — so ops of one PG stay strictly ordered within
	// their shard while independent PGs dispatch in parallel. Default 1
	// keeps the single shared queue; clamped to OpWorkers.
	OpShards int
	// OpPrepCycles is charged per client op (decode context, PG mapping,
	// op tracking).
	OpPrepCycles int64
	// RepPrepCycles is charged per generated replication sub-op.
	RepPrepCycles int64
	// FinishCycles is charged per completed op (commit callbacks, reply
	// construction).
	FinishCycles int64
	// HeartbeatInterval spaces peer pings; zero disables heartbeats.
	HeartbeatInterval sim.Duration
	// HeartbeatGrace is the silence threshold after which a peer is
	// reported to the monitor.
	HeartbeatGrace sim.Duration
	// Monitor is the entity name failures are reported to ("" disables
	// reporting).
	Monitor string
	// DisableRecovery turns off backfill on map changes.
	DisableRecovery bool
	// RecoveryDelay throttles backfill between objects so recovery does
	// not starve client I/O.
	RecoveryDelay sim.Duration
	// RecoveryMaxPGs caps how many PGs this OSD backfills concurrently
	// (Ceph's osd_max_backfills reservation). Zero removes the cap (legacy
	// behaviour: every eligible PG starts at once).
	RecoveryMaxPGs int
	// RecoveryBps token-bucket-paces pushed payload bytes per second across
	// all of this OSD's backfills (Ceph's osd_recovery_max_active byte
	// analogue). Zero disables pacing.
	RecoveryBps float64
	// RecoveryBackoffDepth is the foreground op-queue watermark: while the
	// OSD's op queues hold at least this many waiting client ops, backfill
	// pauses in RecoveryBackoff steps. Zero disables the backoff.
	RecoveryBackoffDepth int
	// RecoveryBackoff is the pause between watermark re-checks (defaulted
	// only when RecoveryBackoffDepth is set).
	RecoveryBackoff sim.Duration
	// ScrubInterval spaces periodic deep scrubs; zero disables scrubbing.
	ScrubInterval sim.Duration
	// RepOpTimeout bounds how long the primary waits for replica acks
	// before resending the outstanding MRepOps (negative disables the
	// watchdog; zero takes the default).
	RepOpTimeout sim.Duration
	// MaxRepRetries bounds resends; past it the write aborts with a typed
	// error to the client rather than hanging.
	MaxRepRetries int
}

// DefaultConfig returns the OSD defaults used by the experiments.
func DefaultConfig() Config {
	return Config{
		OpWorkers:         8,
		OpPrepCycles:      300_000,
		RepPrepCycles:     150_000,
		FinishCycles:      200_000,
		HeartbeatInterval: sim.Second,
		HeartbeatGrace:    5 * sim.Second,
		RecoveryDelay:     2 * sim.Millisecond,
		RepOpTimeout:      15 * sim.Second,
		MaxRepRetries:     3,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.OpWorkers == 0 {
		c.OpWorkers = d.OpWorkers
	}
	if c.OpShards == 0 {
		c.OpShards = 1
	}
	if c.OpShards > c.OpWorkers {
		c.OpShards = c.OpWorkers
	}
	if c.OpPrepCycles == 0 {
		c.OpPrepCycles = d.OpPrepCycles
	}
	if c.RepPrepCycles == 0 {
		c.RepPrepCycles = d.RepPrepCycles
	}
	if c.FinishCycles == 0 {
		c.FinishCycles = d.FinishCycles
	}
	if c.HeartbeatGrace == 0 {
		c.HeartbeatGrace = d.HeartbeatGrace
	}
	if c.RecoveryDelay == 0 {
		c.RecoveryDelay = d.RecoveryDelay
	}
	if c.RepOpTimeout == 0 {
		c.RepOpTimeout = d.RepOpTimeout
	}
	if c.MaxRepRetries == 0 {
		c.MaxRepRetries = d.MaxRepRetries
	}
	if c.RecoveryBackoffDepth > 0 && c.RecoveryBackoff == 0 {
		c.RecoveryBackoff = 5 * sim.Millisecond
	}
	return c
}

// Stats counts per-OSD activity.
type Stats struct {
	ClientWrites     int64
	ClientReads      int64
	ClientStats      int64
	ClientDeletes    int64
	RepOpsServed     int64
	RepRetries       int64
	RepAborts        int64
	WrongPrimary     int64
	ObjectsRecovered int64
	PushesServed     int64
	ObjectsScrubbed  int64
	ScrubsServed     int64
	ScrubErrors      int64
	ScrubRepairs     int64
	BytesWritten     int64
	BytesRead        int64
	FailureReports   int64
	// DegradedWrites counts mutations accepted while the PG's acting set was
	// below the replication factor but at or above min_size.
	DegradedWrites int64
	// NoQuorumRejects counts mutations bounced with ResNoQuorum because the
	// acting set fell below min_size.
	NoQuorumRejects int64
	// DegradedPGsHealed counts PGs whose degraded-write ledger entry was
	// retired when a map change restored the full acting set.
	DegradedPGsHealed int64
	// PGsBackfilled counts backfill reservations this OSD ran as pusher.
	PGsBackfilled int64
	// RecoveryBytes is the payload volume pushed to backfill targets.
	RecoveryBytes int64
	// RecoveryThrottle is virtual time backfill spent blocked in the
	// RecoveryBps token bucket.
	RecoveryThrottle sim.Duration
	// RecoveryBackoffs counts watermark pauses taken because foreground op
	// queues were at or above RecoveryBackoffDepth.
	RecoveryBackoffs int64
	// BalancedReads counts balance-flagged reads this OSD served as a
	// non-primary acting-set member.
	BalancedReads int64
	// StreamWrites counts client writes ingested via the streaming data
	// plane (chunk-pipelined) rather than as one reassembled MOSDOp.
	StreamWrites int64
}

// OSD is one object storage daemon instance.
type OSD struct {
	env  *sim.Env
	cpu  *sim.CPU
	cfg  Config
	id   int32
	name string
	// completerName/repCompleterName are the precomputed proc names for the
	// per-op completion goroutines, spawned on every write — building them
	// with Sprintf per op was a measurable allocation cost.
	completerName    string
	repCompleterName string
	msgr             *messenger.Messenger
	store            objstore.Store

	curMap *osdmap.Map
	// opqs are the op-queue shards (one with OpShards=1, the seed shape);
	// dispatch routes by PG so per-PG ordering holds within a shard.
	opqs    []*sim.Queue[opItem]
	pgLocks map[uint32]*sim.Semaphore
	created map[uint32]bool
	// degraded ledgers writes accepted below full replication, per PG, so
	// operators can see which PGs owe backfill work. Entries are retired by
	// applyMap once the acting set is whole again (the existing push path
	// re-replicates the objects). Only populated when the map's MinSize gate
	// is active.
	degraded map[uint32]int64
	// recovSem is the backfill reservation semaphore (nil without
	// RecoveryMaxPGs). recovTokens/recovLast are the RecoveryBps token
	// bucket — shared across this OSD's concurrent backfills so the cap is
	// per OSD, not per PG.
	recovSem    *sim.Semaphore
	recovTokens float64
	recovLast   sim.Time

	nextTid uint64
	// pending records each outstanding rep-op: which replica it waits on
	// (so a map change that removes that replica can complete the wait —
	// Ceph re-peers; we continue degraded rather than hang the client) and
	// the message itself (so the watchdog can resend it verbatim).
	pending      map[uint64]*repWait
	nextPushTid  uint64
	pushPending  map[uint64]*sim.Event
	scrubPending map[uint64]*scrubCall
	thFin        *sim.Thread
	lastSeen     map[int32]sim.Time
	reported     map[int32]bool

	// ready gates op processing until PG collections are instantiated.
	ready  *sim.Event
	failed bool
	stats  Stats
	// pgOps counts client ops served per PG (including balanced reads),
	// the raw material for the scale-out load-imbalance metrics. Pure
	// bookkeeping: it adds no events and never alters simulated timing.
	pgOps map[uint32]int64
	tr    *trace.Tracer
}

type opItem struct {
	src string
	msg cephmsg.Message
	// span/enq carry the op's trace stage across the op queue (zero when
	// tracing is off or the message has no context).
	span trace.SpanID
	enq  sim.Time
}

type pendingRep struct {
	needed int
	ev     *sim.Event
}

// repWait is one outstanding replica acknowledgment.
type repWait struct {
	target int32
	msg    *cephmsg.MRepOp
	pend   *pendingRep
}

// osdNames caches entity names for the small OSD ids every realistic
// cluster uses, keeping Name (called per message send) allocation-free.
var osdNames = func() [256]string {
	var a [256]string
	for i := range a {
		a[i] = fmt.Sprintf("osd.%d", i)
	}
	return a
}()

// Name returns the OSD's entity name, "osd.<id>".
func Name(id int32) string {
	if id >= 0 && int(id) < len(osdNames) {
		return osdNames[id]
	}
	return fmt.Sprintf("osd.%d", id)
}

// New creates an OSD with the given identity, messenger and backing store,
// spawns its tp_osd_tp workers and heartbeat loop, and installs its
// dispatcher on msgr.
func New(env *sim.Env, cpu *sim.CPU, id int32, msgr *messenger.Messenger,
	store objstore.Store, m *osdmap.Map, cfg Config) *OSD {
	o := &OSD{
		env: env, cpu: cpu, cfg: cfg.withDefaults(), id: id, name: Name(id),
		msgr: msgr, store: store, curMap: m,
		pgLocks:      make(map[uint32]*sim.Semaphore),
		created:      make(map[uint32]bool),
		degraded:     make(map[uint32]int64),
		pending:      make(map[uint64]*repWait),
		pushPending:  make(map[uint64]*sim.Event),
		scrubPending: make(map[uint64]*scrubCall),
		thFin:        sim.NewThread(fmt.Sprintf("fn_osd-%d", id), ThreadCat),
		lastSeen:     make(map[int32]sim.Time),
		reported:     make(map[int32]bool),
		pgOps:        make(map[uint32]int64),
	}
	o.completerName = "completer:" + o.name
	o.repCompleterName = "rep-completer:" + o.name
	if o.cfg.RecoveryMaxPGs > 0 {
		o.recovSem = sim.NewSemaphore(env, o.cfg.RecoveryMaxPGs)
	}
	o.ready = sim.NewEvent(env)
	msgr.SetDispatcher(o.dispatch)
	msgr.SetStreamSink(o)
	o.opqs = make([]*sim.Queue[opItem], o.cfg.OpShards)
	for i := range o.opqs {
		o.opqs[i] = sim.NewQueue[opItem](env)
	}
	for i := 0; i < o.cfg.OpWorkers; i++ {
		th := sim.NewThread(fmt.Sprintf("tp_osd_tp-%d@%s", i, o.name), ThreadCat)
		q := o.opqs[i%len(o.opqs)]
		env.SpawnDaemon(th.Name, func(p *sim.Proc) {
			p.SetThread(th)
			o.workerLoop(p, q)
		})
	}
	if o.cfg.HeartbeatInterval > 0 {
		env.SpawnDaemon("hb@"+o.name, func(p *sim.Proc) { o.heartbeatLoop(p) })
	}
	if o.cfg.ScrubInterval > 0 {
		env.SpawnDaemon("scrub@"+o.name, func(p *sim.Proc) { o.scrubLoop(p) })
	}
	env.Spawn("pg-init@"+o.name, func(p *sim.Proc) { o.createPGs(p) })
	return o
}

// createPGs instantiates the collections of every PG this OSD serves, as
// Ceph does during PG creation/peering before accepting I/O. ensureColl
// remains as the lazy path for PGs acquired later through map changes.
func (o *OSD) createPGs(p *sim.Proc) {
	p.SetThread(o.thFin)
	txn := &objstore.Transaction{}
	for pg := uint32(0); pg < o.curMap.PGCount; pg++ {
		for _, id := range o.curMap.ActingSet(pg) {
			if id == o.id {
				txn.MkColl(pgColl(pg))
				o.created[pg] = true
				break
			}
		}
	}
	if len(txn.Ops) == 0 {
		o.ready.Fire()
		return
	}
	res := o.store.QueueTransaction(p, txn)
	res.Done.Wait(p)
	if res.Err != nil {
		panic(fmt.Sprintf("osd %s: PG collection init failed: %v", o.name, res.Err))
	}
	o.ready.Fire()
}

// ID returns the OSD id.
func (o *OSD) ID() int32 { return o.id }

// Fail simulates a daemon crash: all subsequent inbound traffic is dropped
// and heartbeats stop, so peers detect the silence and report it.
func (o *OSD) Fail() { o.failed = true }

// Recover restarts a failed daemon (its store content is intact, as after a
// process restart); peers re-integrate it once the monitor marks it up and
// backfill refreshes anything it missed. The heartbeat ledger is reset: a
// freshly started daemon has no grounds to report peers it has not heard
// from yet.
func (o *OSD) Recover() {
	o.failed = false
	o.lastSeen = make(map[int32]sim.Time)
	o.reported = make(map[int32]bool)
	// Announce the restart (Ceph's MOSDBoot): the daemon may have been
	// marked down while it was dead — it missed that broadcast — and the
	// monitor will not learn it is back any other way.
	if o.cfg.Monitor != "" {
		o.msgr.Send(o.cfg.Monitor, &cephmsg.MOSDBoot{OSD: o.id, Epoch: o.curMap.Epoch})
	}
}

// Failed reports whether Fail was called.
func (o *OSD) Failed() bool { return o.failed }

// SetTracer enables op-path tracing on this OSD (nil disables).
func (o *OSD) SetTracer(tr *trace.Tracer) { o.tr = tr }

// Stats returns a copy of the activity counters.
func (o *OSD) Stats() Stats { return o.stats }

// PGOps returns a copy of the per-PG served-op counters (client ops this
// OSD actually executed, balanced reads included; bounced ops are not).
func (o *OSD) PGOps() map[uint32]int64 {
	out := make(map[uint32]int64, len(o.pgOps))
	for pg, n := range o.pgOps {
		out[pg] = n
	}
	return out
}

// QueueDepth returns the ops currently waiting in the op-queue shards — a
// point-in-time backlog sample for queue-depth imbalance metrics.
func (o *OSD) QueueDepth() int {
	n := 0
	for _, q := range o.opqs {
		n += q.Len()
	}
	return n
}

// Map returns the OSD's current cluster map.
func (o *OSD) Map() *osdmap.Map { return o.curMap }

// dispatch runs on msgr-worker threads: heavy ops go to the op queue, light
// control traffic is handled inline (Ceph's fast dispatch).
func (o *OSD) dispatch(p *sim.Proc, src string, m cephmsg.Message) {
	if o.failed {
		return // a crashed daemon: frames arrive at a dead socket
	}
	switch msg := m.(type) {
	case *cephmsg.MOSDOp, *cephmsg.MRepOp, *cephmsg.MPGPush, *cephmsg.MScrub:
		it := opItem{src: src, msg: m}
		if o.tr.Enabled() {
			if ctx := cephmsg.TraceContext(m); ctx != 0 {
				// The OSD stage span opens at enqueue so op-queue wait is
				// part of its latency (attributed via AddQueueWait at pop).
				switch mm := m.(type) {
				case *cephmsg.MOSDOp:
					it.span = o.tr.Start(trace.SpanID(ctx), 0, trace.StageOSDOp, mm.Object)
				case *cephmsg.MRepOp:
					it.span = o.tr.Start(trace.SpanID(ctx), 0, trace.StageRepOp, mm.Object)
				}
				it.enq = o.env.Now()
			}
		}
		o.opqs[o.opShard(m)].Push(it)
	case *cephmsg.MPGPushAck:
		o.handlePGPushAck(msg)
	case *cephmsg.MScrubReply:
		o.handleScrubReply(msg)
	case *cephmsg.MRepOpReply:
		o.completeRep(msg.Tid)
	case *cephmsg.MPing:
		o.msgr.Send(src, &cephmsg.MPingReply{Src: o.name, Stamp: msg.Stamp})
	case *cephmsg.MGetStats:
		o.msgr.Send(src, o.statsReply(msg.Tid))
	case *cephmsg.MPingReply:
		if id, ok := parseOSD(src); ok {
			o.lastSeen[id] = p.Now()
		}
	case *cephmsg.MOSDMap:
		o.applyMap(p.Now(), msg)
	}
}

// opShard maps a heavy op to its queue shard by PG, so every op of a PG
// rides the same FIFO shard (Ceph's osd_op_num_shards hashing).
func (o *OSD) opShard(m cephmsg.Message) int {
	if len(o.opqs) == 1 {
		return 0
	}
	var pg uint32
	switch mm := m.(type) {
	case *cephmsg.MOSDOp:
		pg = o.curMap.PGForObject(mm.Object)
	case *cephmsg.MRepOp:
		pg = mm.PGID
	case *cephmsg.MPGPush:
		pg = mm.PGID
	case *cephmsg.MScrub:
		pg = mm.PGID
	}
	return int(pg % uint32(len(o.opqs)))
}

// workerLoop is one tp_osd_tp thread serving one queue shard. Workers
// start serving once the PG collections exist (Ceph: a PG serves I/O only
// after creation/peering).
func (o *OSD) workerLoop(p *sim.Proc, q *sim.Queue[opItem]) {
	o.ready.Wait(p)
	for {
		it := q.Pop(p)
		if it.span != 0 {
			o.tr.AddQueueWait(it.span, p.Now().Sub(it.enq))
		}
		switch m := it.msg.(type) {
		case *cephmsg.MOSDOp:
			o.handleClientOp(p, it.src, m, it.span)
		case *cephmsg.MRepOp:
			o.handleRepOp(p, it.src, m, it.span)
		case *cephmsg.MPGPush:
			o.handlePGPush(p, it.src, m)
		case *cephmsg.MScrub:
			o.handleScrub(p, it.src, m)
		}
	}
}

// completeRep counts one replica acknowledgment (or abandonment). The tid
// is retired immediately so a late reply from a falsely-reported replica
// cannot be counted twice.
func (o *OSD) completeRep(tid uint64) {
	w, ok := o.pending[tid]
	if !ok {
		return
	}
	delete(o.pending, tid)
	w.pend.needed--
	if w.pend.needed <= 0 {
		w.pend.ev.Fire()
	}
}

// sendRepOps fans a replicated mutation out to the secondaries and returns
// the shared pendingRep plus the tids to watch. mk builds the sub-op for one
// secondary; the assigned tid is stamped in afterwards.
func (o *OSD) sendRepOps(p *sim.Proc, acting []int32, repSp trace.SpanID,
	mk func(sec int32) *cephmsg.MRepOp) (*pendingRep, []uint64) {
	pend := &pendingRep{needed: len(acting) - 1, ev: sim.NewEvent(o.env)}
	if pend.needed <= 0 {
		pend.ev.Fire()
		return pend, nil
	}
	tids := make([]uint64, 0, len(acting)-1)
	for _, sec := range acting[1:] {
		o.tr.AddCPU(repSp, o.cpu.Name(), o.cpu.ExecSelf(p, o.cfg.RepPrepCycles))
		o.nextTid++
		tid := o.nextTid
		msg := mk(sec)
		msg.Tid = tid
		o.pending[tid] = &repWait{target: sec, msg: msg, pend: pend}
		o.msgr.Send(Name(sec), msg)
		tids = append(tids, tid)
	}
	return pend, tids
}

// awaitReplicas blocks the completer until every replica ack has landed (or
// been abandoned by a map change). With the watchdog armed, acks that miss
// RepOpTimeout trigger a resend of the still-outstanding sub-ops — resends
// are idempotent under their stable tids — and after MaxRepRetries rounds
// the op aborts cleanly (returns false) instead of hanging the client.
func (o *OSD) awaitReplicas(cp *sim.Proc, pend *pendingRep, tids []uint64) bool {
	if o.cfg.RepOpTimeout <= 0 {
		pend.ev.Wait(cp)
		return true
	}
	for try := 0; ; try++ {
		if pend.ev.WaitTimeout(cp, o.cfg.RepOpTimeout) {
			return true
		}
		if try >= o.cfg.MaxRepRetries {
			o.stats.RepAborts++
			for _, tid := range tids {
				o.completeRep(tid)
			}
			return false
		}
		o.stats.RepRetries++
		for _, tid := range tids {
			w, ok := o.pending[tid]
			if !ok {
				continue
			}
			if !o.curMap.IsUp(w.target) {
				// The map already dropped this replica but the abandon path
				// raced with us; finish the wait degraded.
				o.completeRep(tid)
				continue
			}
			if w.msg == nil {
				// Streamed rep-op: the chunk stream cannot be replayed
				// verbatim, so timeout rounds only bound the wait.
				continue
			}
			o.msgr.Send(Name(w.target), w.msg)
		}
	}
}

func (o *OSD) pgLock(pg uint32) *sim.Semaphore {
	l, ok := o.pgLocks[pg]
	if !ok {
		l = sim.NewSemaphore(o.env, 1)
		o.pgLocks[pg] = l
	}
	return l
}

// pgCollNames caches collection names for the PG counts in realistic use;
// pgColl sits on every I/O hot path (lock, transaction, replica txn).
var pgCollNames = func() [1024]string {
	var a [1024]string
	for i := range a {
		a[i] = fmt.Sprintf("pg.%d", i)
	}
	return a
}()

func pgColl(pg uint32) string {
	if pg < uint32(len(pgCollNames)) {
		return pgCollNames[pg]
	}
	return fmt.Sprintf("pg.%d", pg)
}

// ensureColl lazily creates a PG's collection in the backing store within
// the caller's transaction.
func (o *OSD) ensureColl(pg uint32, txn *objstore.Transaction) {
	if !o.created[pg] {
		// Prepend so the collection exists before the first write applies.
		withColl := (&objstore.Transaction{}).MkColl(pgColl(pg))
		withColl.Ops = append(withColl.Ops, txn.Ops...)
		txn.Ops = withColl.Ops
		o.created[pg] = true
	}
}

func (o *OSD) handleClientOp(p *sim.Proc, src string, m *cephmsg.MOSDOp, sp trace.SpanID) {
	o.tr.AddCPU(sp, o.cpu.Name(), o.cpu.ExecSelf(p, o.cfg.OpPrepCycles))
	pg := o.curMap.PGForObject(m.Object)
	acting := o.curMap.ActingSet(pg)
	if len(acting) == 0 || acting[0] != o.id {
		// Balance-flagged reads may be served by any acting-set member
		// (Ceph's CEPH_OSD_FLAG_BALANCE_READS); everything else — and any
		// read we are not acting for — bounces back to the primary.
		if m.Op == cephmsg.OpRead && m.Flags&cephmsg.FlagBalanceReads != 0 &&
			actingMember(acting, o.id) {
			o.stats.BalancedReads++
			o.pgOps[pg]++
			o.handleRead(p, src, m, pg, sp)
			return
		}
		o.stats.WrongPrimary++
		o.reply(&wrongPrimaryReply{src: src, m: m})
		o.tr.Finish(sp)
		return
	}
	// min_size write-quorum gate (off when MinSize is zero): mutations need
	// at least MinSize acting members; between MinSize and Replicas they
	// proceed degraded and the PG is ledgered for later healing.
	if ms := o.curMap.MinSize; ms > 0 && mutates(m.Op) {
		if len(acting) < ms {
			o.stats.NoQuorumRejects++
			o.msgr.Send(src, &cephmsg.MOSDOpReply{
				Tid: m.Tid, Object: m.Object, Op: m.Op,
				Result: cephmsg.ResNoQuorum, TraceCtx: m.TraceCtx,
			})
			o.tr.Finish(sp)
			return
		}
		if len(acting) < o.curMap.Replicas {
			o.stats.DegradedWrites++
			o.degraded[pg]++
		}
	}
	o.pgOps[pg]++
	switch m.Op {
	case cephmsg.OpWrite:
		o.handleWrite(p, src, m, pg, acting, sp)
	case cephmsg.OpDelete:
		o.handleDelete(p, src, m, pg, acting, sp)
	case cephmsg.OpRead:
		o.handleRead(p, src, m, pg, sp)
	case cephmsg.OpStat:
		o.handleStat(p, src, m, pg, sp)
	case cephmsg.OpOmapSet, cephmsg.OpOmapRm:
		o.handleOmapWrite(p, src, m, pg, acting, sp)
	case cephmsg.OpOmapGet, cephmsg.OpOmapKeys:
		o.handleOmapRead(p, src, m, pg, sp)
	}
}

// actingMember reports whether id serves in the acting set.
func actingMember(acting []int32, id int32) bool {
	for _, a := range acting {
		if a == id {
			return true
		}
	}
	return false
}

// mutates reports whether a client op alters replicated state and is
// therefore subject to the min_size write-quorum gate.
func mutates(op cephmsg.Op) bool {
	switch op {
	case cephmsg.OpWrite, cephmsg.OpDelete, cephmsg.OpOmapSet, cephmsg.OpOmapRm:
		return true
	}
	return false
}

// omapTxn builds the replicated mutation for a client omap op. Touch makes
// the op self-sufficient: setting an index entry implicitly creates the
// index object, as librados' omap ops do.
func omapTxn(pg uint32, m *cephmsg.MOSDOp) *objstore.Transaction {
	txn := (&objstore.Transaction{}).Touch(pgColl(pg), m.Object)
	if m.Op == cephmsg.OpOmapRm {
		return txn.OmapRm(pgColl(pg), m.Object, m.Key)
	}
	var val []byte
	if m.Data != nil {
		// Shared, not copied: the client's payload segment travels into the
		// omap store as-is (producers follow the Bufferlist aliasing
		// contract and never reuse payload slices).
		val = m.Data.ContiguousBytes()
	}
	return txn.OmapSet(pgColl(pg), m.Object, m.Key, val)
}

// handleOmapWrite applies and replicates an omap mutation with the same
// durability contract as object writes.
func (o *OSD) handleOmapWrite(p *sim.Proc, src string, m *cephmsg.MOSDOp, pg uint32, acting []int32, sp trace.SpanID) {
	lock := o.pgLock(pg)
	lock.Acquire(p, 1)
	txn := omapTxn(pg, m)
	o.ensureColl(pg, txn)
	var commitSp, repSp trace.SpanID
	if sp != 0 {
		commitSp = o.tr.Start(sp, 0, trace.StageCommit, m.Object)
		txn.TraceCtx = uint64(commitSp)
	}
	res := o.store.QueueTransaction(p, txn)
	if sp != 0 {
		repSp = o.tr.Start(sp, 0, trace.StageReplication, m.Object)
	}
	pend, tids := o.sendRepOps(p, acting, repSp, func(sec int32) *cephmsg.MRepOp {
		return &cephmsg.MRepOp{
			Epoch: o.curMap.Epoch, PGID: pg, Object: m.Object,
			Op: m.Op, Key: m.Key, Data: m.Data, TraceCtx: uint64(repSp),
		}
	})
	lock.Release(1)
	o.stats.ClientWrites++
	o.env.Spawn(o.completerName, func(cp *sim.Proc) {
		cp.SetThread(o.thFin)
		res.Done.Wait(cp)
		o.tr.Finish(commitSp)
		repOK := o.awaitReplicas(cp, pend, tids)
		o.tr.Finish(repSp)
		o.tr.AddCPU(sp, o.cpu.Name(), o.cpu.Exec(cp, o.thFin, o.cfg.FinishCycles))
		result := cephmsg.ResOK
		if res.Err != nil || !repOK {
			result = cephmsg.ResError
		}
		o.msgr.Send(src, &cephmsg.MOSDOpReply{
			Tid: m.Tid, Object: m.Object, Op: m.Op, Result: result,
			TraceCtx: m.TraceCtx,
		})
		o.tr.Finish(sp)
	})
}

// handleOmapRead serves omap get/keys from the local (primary) store.
func (o *OSD) handleOmapRead(p *sim.Proc, src string, m *cephmsg.MOSDOp, pg uint32, sp trace.SpanID) {
	reply := &cephmsg.MOSDOpReply{Tid: m.Tid, Object: m.Object, Op: m.Op, TraceCtx: m.TraceCtx}
	lock := o.pgLock(pg)
	lock.Acquire(p, 1)
	switch m.Op {
	case cephmsg.OpOmapGet:
		v, err := o.store.OmapGet(p, pgColl(pg), m.Object, m.Key)
		if err != nil {
			reply.Result = cephmsg.ResNotFound
		} else {
			reply.Data = wire.FromBytes(v)
		}
	case cephmsg.OpOmapKeys:
		keys, err := o.store.OmapKeys(p, pgColl(pg), m.Object)
		if err != nil {
			reply.Result = cephmsg.ResNotFound
		} else {
			e := wire.NewEncoder(64)
			e.U32(uint32(len(keys)))
			for _, k := range keys {
				e.String(k)
			}
			reply.Data = e.Bufferlist()
		}
	}
	lock.Release(1)
	o.stats.ClientReads++
	o.msgr.Send(src, reply)
	o.tr.Finish(sp)
}

type wrongPrimaryReply struct {
	src string
	m   *cephmsg.MOSDOp
}

func (o *OSD) reply(w *wrongPrimaryReply) {
	o.msgr.Send(w.src, &cephmsg.MOSDOpReply{
		Tid: w.m.Tid, Object: w.m.Object, Op: w.m.Op,
		Result: cephmsg.ResNotPrimary, TraceCtx: w.m.TraceCtx,
	})
}

// handleWrite implements the replicated write path: local commit via the
// ObjectStore plus one MRepOp per secondary; the client ack is withheld
// until every part is durable.
func (o *OSD) handleWrite(p *sim.Proc, src string, m *cephmsg.MOSDOp, pg uint32, acting []int32, sp trace.SpanID) {
	lock := o.pgLock(pg)
	lock.Acquire(p, 1)
	txn := (&objstore.Transaction{}).Write(pgColl(pg), m.Object, m.Offset, m.Data)
	o.ensureColl(pg, txn)
	var commitSp, repSp trace.SpanID
	if sp != 0 {
		commitSp = o.tr.Start(sp, 0, trace.StageCommit, m.Object)
		txn.TraceCtx = uint64(commitSp)
		o.tr.AddBytes(commitSp, txn.DataBytes())
	}
	res := o.store.QueueTransaction(p, txn)
	if sp != 0 {
		repSp = o.tr.Start(sp, 0, trace.StageReplication, m.Object)
	}
	pend, tids := o.sendRepOps(p, acting, repSp, func(sec int32) *cephmsg.MRepOp {
		return &cephmsg.MRepOp{
			Epoch: o.curMap.Epoch, PGID: pg, Object: m.Object,
			Op: cephmsg.OpWrite, Offset: m.Offset, Data: m.Data,
			TraceCtx: uint64(repSp),
		}
	})
	lock.Release(1)
	o.stats.ClientWrites++
	o.stats.BytesWritten += int64(m.Data.Length())
	o.env.Spawn(o.completerName, func(cp *sim.Proc) {
		cp.SetThread(o.thFin)
		res.Done.Wait(cp)
		o.tr.Finish(commitSp)
		repOK := o.awaitReplicas(cp, pend, tids)
		o.tr.Finish(repSp)
		o.tr.AddCPU(sp, o.cpu.Name(), o.cpu.Exec(cp, o.thFin, o.cfg.FinishCycles))
		result := cephmsg.ResOK
		if res.Err != nil || !repOK {
			result = cephmsg.ResError
		}
		o.msgr.Send(src, &cephmsg.MOSDOpReply{
			Tid: m.Tid, Object: m.Object, Op: m.Op, Result: result,
			Version: uint64(cp.Now()), TraceCtx: m.TraceCtx,
		})
		o.tr.Finish(sp)
	})
}

func (o *OSD) handleDelete(p *sim.Proc, src string, m *cephmsg.MOSDOp, pg uint32, acting []int32, sp trace.SpanID) {
	lock := o.pgLock(pg)
	lock.Acquire(p, 1)
	txn := (&objstore.Transaction{}).Remove(pgColl(pg), m.Object)
	var commitSp, repSp trace.SpanID
	if sp != 0 {
		commitSp = o.tr.Start(sp, 0, trace.StageCommit, m.Object)
		txn.TraceCtx = uint64(commitSp)
	}
	res := o.store.QueueTransaction(p, txn)
	if sp != 0 {
		repSp = o.tr.Start(sp, 0, trace.StageReplication, m.Object)
	}
	pend, tids := o.sendRepOps(p, acting, repSp, func(sec int32) *cephmsg.MRepOp {
		return &cephmsg.MRepOp{
			Epoch: o.curMap.Epoch, PGID: pg, Object: m.Object,
			Op: cephmsg.OpDelete, TraceCtx: uint64(repSp),
		}
	})
	lock.Release(1)
	o.stats.ClientDeletes++
	o.env.Spawn(o.completerName, func(cp *sim.Proc) {
		cp.SetThread(o.thFin)
		res.Done.Wait(cp)
		o.tr.Finish(commitSp)
		repOK := o.awaitReplicas(cp, pend, tids)
		o.tr.Finish(repSp)
		o.tr.AddCPU(sp, o.cpu.Name(), o.cpu.Exec(cp, o.thFin, o.cfg.FinishCycles))
		result := cephmsg.ResOK
		if res.Err != nil {
			result = cephmsg.ResNotFound
		} else if !repOK {
			result = cephmsg.ResError
		}
		o.msgr.Send(src, &cephmsg.MOSDOpReply{
			Tid: m.Tid, Object: m.Object, Op: m.Op, Result: result,
			TraceCtx: m.TraceCtx,
		})
		o.tr.Finish(sp)
	})
}

func (o *OSD) handleRead(p *sim.Proc, src string, m *cephmsg.MOSDOp, pg uint32, sp trace.SpanID) {
	lock := o.pgLock(pg)
	lock.Acquire(p, 1)
	var commitSp trace.SpanID
	if sp != 0 {
		commitSp = o.tr.Start(sp, 0, trace.StageCommit, m.Object)
	}
	bl, err := o.store.Read(p, pgColl(pg), m.Object, m.Offset, m.Length)
	o.tr.Finish(commitSp)
	lock.Release(1)
	reply := &cephmsg.MOSDOpReply{Tid: m.Tid, Object: m.Object, Op: m.Op, TraceCtx: m.TraceCtx}
	if err != nil {
		reply.Result = cephmsg.ResNotFound
	} else {
		reply.Data = bl
		o.stats.BytesRead += int64(bl.Length())
		o.tr.AddBytes(commitSp, int64(bl.Length()))
	}
	o.stats.ClientReads++
	o.tr.AddCPU(sp, o.cpu.Name(), o.cpu.ExecSelf(p, o.cfg.FinishCycles))
	o.msgr.Send(src, reply)
	o.tr.Finish(sp)
}

func (o *OSD) handleStat(p *sim.Proc, src string, m *cephmsg.MOSDOp, pg uint32, sp trace.SpanID) {
	st, err := o.store.Stat(p, pgColl(pg), m.Object)
	reply := &cephmsg.MOSDOpReply{Tid: m.Tid, Object: m.Object, Op: m.Op, TraceCtx: m.TraceCtx}
	if err != nil {
		reply.Result = cephmsg.ResNotFound
	} else {
		reply.Size = st.Size
		reply.Version = st.Version
	}
	o.stats.ClientStats++
	o.msgr.Send(src, reply)
	o.tr.Finish(sp)
}

// handleRepOp applies a replicated sub-op on a secondary and acks once
// durable.
func (o *OSD) handleRepOp(p *sim.Proc, src string, m *cephmsg.MRepOp, sp trace.SpanID) {
	o.tr.AddCPU(sp, o.cpu.Name(), o.cpu.ExecSelf(p, o.cfg.OpPrepCycles))
	lock := o.pgLock(m.PGID)
	lock.Acquire(p, 1)
	var txn *objstore.Transaction
	switch m.Op {
	case cephmsg.OpDelete:
		txn = (&objstore.Transaction{}).Remove(pgColl(m.PGID), m.Object)
	case cephmsg.OpOmapSet:
		var val []byte
		if m.Data != nil {
			// Shared per the Bufferlist aliasing contract, as on the
			// primary's omapTxn path.
			val = m.Data.ContiguousBytes()
		}
		txn = (&objstore.Transaction{}).Touch(pgColl(m.PGID), m.Object).
			OmapSet(pgColl(m.PGID), m.Object, m.Key, val)
	case cephmsg.OpOmapRm:
		txn = (&objstore.Transaction{}).Touch(pgColl(m.PGID), m.Object).
			OmapRm(pgColl(m.PGID), m.Object, m.Key)
	default:
		txn = (&objstore.Transaction{}).Write(pgColl(m.PGID), m.Object, m.Offset, m.Data)
	}
	o.ensureColl(m.PGID, txn)
	var commitSp trace.SpanID
	if sp != 0 {
		commitSp = o.tr.Start(sp, 0, trace.StageCommit, m.Object)
		txn.TraceCtx = uint64(commitSp)
		o.tr.AddBytes(commitSp, txn.DataBytes())
	}
	res := o.store.QueueTransaction(p, txn)
	lock.Release(1)
	o.stats.RepOpsServed++
	if m.Data != nil {
		o.stats.BytesWritten += int64(m.Data.Length())
	}
	o.env.Spawn(o.repCompleterName, func(cp *sim.Proc) {
		cp.SetThread(o.thFin)
		res.Done.Wait(cp)
		o.tr.Finish(commitSp)
		o.tr.AddCPU(sp, o.cpu.Name(), o.cpu.Exec(cp, o.thFin, o.cfg.FinishCycles))
		// The ack parents to the primary's replication span, which is
		// still open until every replica has answered.
		o.msgr.Send(src, &cephmsg.MRepOpReply{Tid: m.Tid, PGID: m.PGID, TraceCtx: m.TraceCtx})
		o.tr.Finish(sp)
	})
}

// heartbeatLoop pings peer OSDs and reports prolonged silence to the
// monitor.
func (o *OSD) heartbeatLoop(p *sim.Proc) {
	th := sim.NewThread("osd_hb@"+o.name, ThreadCat)
	p.SetThread(th)
	for {
		p.Wait(o.cfg.HeartbeatInterval)
		if o.failed {
			continue
		}
		o.cpu.Exec(p, th, 5_000)
		now := p.Now()
		for _, peer := range o.curMap.UpOSDs() {
			if peer == o.id {
				continue
			}
			if _, seen := o.lastSeen[peer]; !seen {
				o.lastSeen[peer] = now
			}
			o.msgr.Send(Name(peer), &cephmsg.MPing{Src: o.name, Stamp: int64(now)})
			if o.cfg.Monitor != "" && !o.reported[peer] &&
				now.Sub(o.lastSeen[peer]) > o.cfg.HeartbeatGrace {
				o.reported[peer] = true
				o.stats.FailureReports++
				o.msgr.Send(o.cfg.Monitor, &cephmsg.MOSDFailure{
					Reporter: o.name, Failed: peer, Epoch: o.curMap.Epoch,
				})
			}
		}
	}
}

// applyMap installs a newer cluster map.
func (o *OSD) applyMap(now sim.Time, m *cephmsg.MOSDMap) {
	if m.Epoch <= o.curMap.Epoch {
		return
	}
	next := o.curMap.Next()
	next.Epoch = m.Epoch
	up := make(map[int32]bool, len(m.Up))
	for _, id := range m.Up {
		up[id] = true
	}
	for _, dev := range next.Crush.Devices() {
		id := int32(dev)
		if up[id] {
			next.MarkUp(id)
		} else {
			next.MarkDown(id)
		}
	}
	old := o.curMap
	o.curMap = next
	for id := range o.reported {
		if up[id] {
			delete(o.reported, id)
		}
	}
	// A peer transitioning down->up gets a fresh heartbeat grace window;
	// its lastSeen timestamp predates its crash and would otherwise
	// trigger an instant (false) re-report.
	for id := range up {
		if !old.IsUp(id) {
			o.lastSeen[id] = now
		}
	}
	// Self-defense (Ceph: an OSD that sees itself marked down re-boots):
	// the monitor acted on silence observed across a crash window that has
	// since ended. A live daemon protests; a genuinely dead one cannot.
	if !next.IsUp(o.id) && !o.failed && o.cfg.Monitor != "" {
		o.msgr.Send(o.cfg.Monitor, &cephmsg.MOSDBoot{OSD: o.id, Epoch: next.Epoch})
	}
	// Abandon rep-op waits on replicas the new map removed: the write
	// continues degraded on the surviving acting set instead of hanging
	// the client until its timeout. Completion fires events that wake
	// blocked writers, so the order must not follow map iteration — two
	// runs would wake them differently and diverge.
	var stale []uint64
	for tid, w := range o.pending {
		if !next.IsUp(w.target) {
			stale = append(stale, tid)
		}
	}
	sort.Slice(stale, func(i, j int) bool { return stale[i] < stale[j] })
	for _, tid := range stale {
		o.completeRep(tid)
	}
	// Retire degraded-write ledger entries for PGs whose acting set is whole
	// again: recovery (startRecovery below) pushes the missing objects, so
	// once placement is restored the PG no longer owes degraded debt.
	for pg := range o.degraded {
		if len(next.ActingSet(pg)) >= next.Replicas {
			delete(o.degraded, pg)
			o.stats.DegradedPGsHealed++
		}
	}
	o.startRecovery(old, next)
}

// DegradedLedger snapshots the per-PG count of writes accepted below full
// replication that have not yet been healed by a map change.
func (o *OSD) DegradedLedger() map[uint32]int64 {
	out := make(map[uint32]int64, len(o.degraded))
	for pg, n := range o.degraded {
		out[pg] = n
	}
	return out
}

// statsReply snapshots the OSD's counters for the manager.
func (o *OSD) statsReply(tid uint64) *cephmsg.MStatsReply {
	s := o.stats
	r := &cephmsg.MStatsReply{
		Tid:    tid,
		Source: o.name,
		Keys: []string{
			"client_writes", "client_reads", "client_stats", "client_deletes",
			"rep_ops", "rep_retries", "rep_aborts",
			"wrong_primary", "bytes_written", "bytes_read",
			"failure_reports", "objects_recovered", "pushes_served",
			"objects_scrubbed", "scrubs_served", "scrub_errors", "scrub_repairs",
			"map_epoch",
		},
		Values: []int64{
			s.ClientWrites, s.ClientReads, s.ClientStats, s.ClientDeletes,
			s.RepOpsServed, s.RepRetries, s.RepAborts,
			s.WrongPrimary, s.BytesWritten, s.BytesRead,
			s.FailureReports, s.ObjectsRecovered, s.PushesServed,
			s.ObjectsScrubbed, s.ScrubsServed, s.ScrubErrors, s.ScrubRepairs,
			int64(o.curMap.Epoch),
		},
	}
	// Self-healing counters are appended only when the min_size gate is on:
	// the mgr polls stats on the virtual clock, so growing the baseline
	// reply would perturb golden CPU accounting.
	if o.curMap.MinSize > 0 {
		r.Keys = append(r.Keys,
			"degraded_writes", "no_quorum_rejects", "degraded_pgs_healed")
		r.Values = append(r.Values,
			s.DegradedWrites, s.NoQuorumRejects, s.DegradedPGsHealed)
	}
	if o.cfg.RecoveryMaxPGs > 0 || o.cfg.RecoveryBps > 0 || o.cfg.RecoveryBackoffDepth > 0 {
		r.Keys = append(r.Keys,
			"pgs_backfilled", "recovery_bytes", "recovery_throttle_ns", "recovery_backoffs")
		r.Values = append(r.Values,
			s.PGsBackfilled, s.RecoveryBytes, int64(s.RecoveryThrottle), s.RecoveryBackoffs)
	}
	// Balanced-read serving is appended only once a flagged read has
	// actually arrived, for the same golden-safety reason as above.
	if s.BalancedReads > 0 {
		r.Keys = append(r.Keys, "balanced_reads")
		r.Values = append(r.Values, s.BalancedReads)
	}
	// Streamed writes likewise appear only once one has been ingested.
	if s.StreamWrites > 0 {
		r.Keys = append(r.Keys, "stream_writes")
		r.Values = append(r.Values, s.StreamWrites)
	}
	return r
}

func parseOSD(entity string) (int32, bool) {
	var id int32
	if n, err := fmt.Sscanf(entity, "osd.%d", &id); err == nil && n == 1 {
		return id, true
	}
	return 0, false
}

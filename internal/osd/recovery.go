package osd

import (
	"fmt"

	"doceph/internal/cephmsg"
	"doceph/internal/objstore"
	"doceph/internal/osdmap"
	"doceph/internal/sim"
)

// Recovery/backfill: when a map change brings a new OSD into a PG's acting
// set (a rejoined daemon or a rebalance), the surviving replica with the
// data pushes every object of that PG to the newcomers. This is the
// "recovery and rebalancing" coordination traffic the paper's introduction
// attributes to the messenger layer — and in DoCeph mode it exercises the
// full proxy data path in both directions (List/Read on the source, write
// transactions on the target).
//
// Ordering safety: a backfill target only applies a pushed object it does
// not already hold. New writes during recovery land on the target through
// the normal replication path, so an existing object is always at least as
// new as the pushed copy.

// startRecovery is invoked from applyMap with both epochs; it diffs the
// acting sets and spawns backfill work for every PG where this OSD is the
// designated pusher: the first member of the old acting set that survives
// into the new one.
func (o *OSD) startRecovery(oldMap, newMap *osdmap.Map) {
	if o.cfg.DisableRecovery {
		return
	}
	for pg := uint32(0); pg < newMap.PGCount; pg++ {
		oldSet := oldMap.ActingSet(pg)
		newSet := newMap.ActingSet(pg)
		pusher := int32(-1)
		inNew := make(map[int32]bool, len(newSet))
		for _, id := range newSet {
			inNew[id] = true
		}
		for _, id := range oldSet {
			if inNew[id] {
				pusher = id
				break
			}
		}
		if pusher != o.id {
			continue
		}
		inOld := make(map[int32]bool, len(oldSet))
		for _, id := range oldSet {
			inOld[id] = true
		}
		var targets []int32
		for _, id := range newSet {
			if !inOld[id] && id != o.id {
				targets = append(targets, id)
			}
		}
		if len(targets) == 0 {
			continue
		}
		pgID := pg
		o.env.Spawn(fmt.Sprintf("recovery:%s/pg%d", o.name, pgID), func(p *sim.Proc) {
			o.backfillPG(p, pgID, targets)
		})
	}
}

// backfillPG streams every object of pg to the targets, throttled so
// recovery does not starve client I/O (Ceph's recovery throttling).
func (o *OSD) backfillPG(p *sim.Proc, pg uint32, targets []int32) {
	th := sim.NewThread(fmt.Sprintf("recovery@%s", o.name), ThreadCat)
	p.SetThread(th)
	names, err := o.store.List(p, pgColl(pg))
	if err != nil {
		return // nothing local for this PG
	}
	for _, obj := range names {
		if o.failed {
			return
		}
		lock := o.pgLock(pg)
		lock.Acquire(p, 1)
		bl, rerr := o.store.Read(p, pgColl(pg), obj, 0, 0)
		st, serr := o.store.Stat(p, pgColl(pg), obj)
		// Recovery must carry the object map too (bucket indexes live
		// there); a data-only push would silently lose it.
		omapKeys, _ := o.store.OmapKeys(p, pgColl(pg), obj)
		omapVals := make([][]byte, 0, len(omapKeys))
		for _, k := range omapKeys {
			v, gerr := o.store.OmapGet(p, pgColl(pg), obj, k)
			if gerr != nil {
				v = nil
			}
			omapVals = append(omapVals, v)
		}
		lock.Release(1)
		if rerr != nil || serr != nil {
			continue // deleted while we were backfilling
		}
		for _, target := range targets {
			o.cpu.Exec(p, th, o.cfg.RepPrepCycles)
			o.nextPushTid++
			tid := o.nextPushTid
			ack := sim.NewEvent(o.env)
			o.pushPending[tid] = ack
			o.msgr.Send(Name(target), &cephmsg.MPGPush{
				Tid: tid, Epoch: o.curMap.Epoch, PGID: pg, Object: obj,
				Version: st.Version, Data: bl,
				OmapKeys: omapKeys, OmapVals: omapVals,
			})
			if !ack.WaitTimeout(p, 30*sim.Second) {
				// Target died mid-backfill; a future map change restarts it.
				delete(o.pushPending, tid)
				return
			}
			o.stats.ObjectsRecovered++
		}
		p.Wait(o.cfg.RecoveryDelay)
	}
}

// handlePGPush applies a pushed object on the backfill target (tp_osd_tp
// worker context).
func (o *OSD) handlePGPush(p *sim.Proc, src string, m *cephmsg.MPGPush) {
	o.cpu.ExecSelf(p, o.cfg.OpPrepCycles)
	lock := o.pgLock(m.PGID)
	lock.Acquire(p, 1)
	if !m.Force && o.store.Exists(p, pgColl(m.PGID), m.Object) {
		// A newer copy arrived through the client replication path.
		lock.Release(1)
		o.msgr.Send(src, &cephmsg.MPGPushAck{Tid: m.Tid, PGID: m.PGID, Object: m.Object})
		return
	}
	txn := (&objstore.Transaction{}).Write(pgColl(m.PGID), m.Object, 0, m.Data)
	for i := range m.OmapKeys {
		txn.OmapSet(pgColl(m.PGID), m.Object, m.OmapKeys[i], m.OmapVals[i])
	}
	o.ensureColl(m.PGID, txn)
	res := o.store.QueueTransaction(p, txn)
	lock.Release(1)
	o.stats.PushesServed++
	o.env.Spawn(fmt.Sprintf("push-completer:%s/%d", o.name, m.Tid), func(cp *sim.Proc) {
		cp.SetThread(o.thFin)
		res.Done.Wait(cp)
		o.cpu.Exec(cp, o.thFin, o.cfg.FinishCycles)
		result := cephmsg.ResOK
		if res.Err != nil {
			result = cephmsg.ResError
		}
		o.msgr.Send(src, &cephmsg.MPGPushAck{
			Tid: m.Tid, PGID: m.PGID, Object: m.Object, Result: result,
		})
	})
}

// handlePGPushAck completes one in-flight push (msgr-worker context).
func (o *OSD) handlePGPushAck(m *cephmsg.MPGPushAck) {
	if ev, ok := o.pushPending[m.Tid]; ok {
		ev.Fire()
		delete(o.pushPending, m.Tid)
	}
}

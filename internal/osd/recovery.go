package osd

import (
	"fmt"

	"doceph/internal/cephmsg"
	"doceph/internal/objstore"
	"doceph/internal/osdmap"
	"doceph/internal/sim"
	"doceph/internal/trace"
)

// Recovery/backfill: when a map change brings a new OSD into a PG's acting
// set (a rejoined daemon or a rebalance), the surviving replica with the
// data pushes every object of that PG to the newcomers. This is the
// "recovery and rebalancing" coordination traffic the paper's introduction
// attributes to the messenger layer — and in DoCeph mode it exercises the
// full proxy data path in both directions (List/Read on the source, write
// transactions on the target).
//
// Ordering safety: a backfill target only applies a pushed object it does
// not already hold. New writes during recovery land on the target through
// the normal replication path, so an existing object is always at least as
// new as the pushed copy.

// pickBackfill resolves one PG's acting-set transition into the designated
// pusher — the first member of the old set that survives into the new one,
// or -1 when no replica survives (the PG's data is unavailable until a
// holder rejoins; a later map change re-evaluates) — and the push targets:
// new members that do not hold the data. A crashed pusher candidate is never
// selected because a down OSD is absent from the new acting set.
func pickBackfill(oldSet, newSet []int32) (pusher int32, targets []int32) {
	pusher = -1
	inNew := make(map[int32]bool, len(newSet))
	for _, id := range newSet {
		inNew[id] = true
	}
	for _, id := range oldSet {
		if inNew[id] {
			pusher = id
			break
		}
	}
	if pusher == -1 {
		return -1, nil
	}
	inOld := make(map[int32]bool, len(oldSet))
	for _, id := range oldSet {
		inOld[id] = true
	}
	for _, id := range newSet {
		if !inOld[id] && id != pusher {
			targets = append(targets, id)
		}
	}
	return pusher, targets
}

// startRecovery is invoked from applyMap with both epochs; it diffs the
// acting sets and spawns backfill work for every PG where this OSD is the
// designated pusher.
func (o *OSD) startRecovery(oldMap, newMap *osdmap.Map) {
	if o.cfg.DisableRecovery {
		return
	}
	for pg := uint32(0); pg < newMap.PGCount; pg++ {
		pusher, targets := pickBackfill(oldMap.ActingSet(pg), newMap.ActingSet(pg))
		if pusher != o.id || len(targets) == 0 {
			continue
		}
		pgID := pg
		o.env.Spawn(fmt.Sprintf("recovery:%s/pg%d", o.name, pgID), func(p *sim.Proc) {
			o.backfillPG(p, pgID, targets)
		})
	}
}

// recoveryBackoff pauses backfill while the foreground op queues sit at or
// above the configured watermark, so client I/O drains first (the
// client-I/O-aware half of recovery QoS). No-op when the knob is off.
func (o *OSD) recoveryBackoff(p *sim.Proc, sp trace.SpanID) {
	wm := o.cfg.RecoveryBackoffDepth
	if wm <= 0 {
		return
	}
	for !o.failed {
		depth := 0
		for _, q := range o.opqs {
			depth += q.Len()
		}
		if depth < wm {
			return
		}
		o.stats.RecoveryBackoffs++
		o.tr.AddQueueWait(sp, o.cfg.RecoveryBackoff)
		p.Wait(o.cfg.RecoveryBackoff)
	}
}

// recoveryPace charges bytes against the per-OSD RecoveryBps token bucket
// and blocks until the debt is repaid. The bucket holds at most one second
// of burst; a negative balance is worked off on the virtual clock, which
// keeps long backfills at the configured average rate deterministically.
func (o *OSD) recoveryPace(p *sim.Proc, bytes int64, sp trace.SpanID) {
	rate := o.cfg.RecoveryBps
	if rate <= 0 || bytes <= 0 {
		return
	}
	now := p.Now()
	o.recovTokens += float64(now.Sub(o.recovLast)) / float64(sim.Second) * rate
	if o.recovTokens > rate { // burst cap: one second of tokens
		o.recovTokens = rate
	}
	o.recovLast = now
	o.recovTokens -= float64(bytes)
	if o.recovTokens < 0 {
		wait := sim.Duration(-o.recovTokens / rate * float64(sim.Second))
		if wait > 0 {
			o.stats.RecoveryThrottle += wait
			o.tr.AddQueueWait(sp, wait)
			p.Wait(wait)
		}
	}
}

// backfillPG streams every object of pg to the targets, throttled so
// recovery does not starve client I/O (Ceph's recovery throttling).
func (o *OSD) backfillPG(p *sim.Proc, pg uint32, targets []int32) {
	th := sim.NewThread(fmt.Sprintf("recovery@%s", o.name), ThreadCat)
	p.SetThread(th)
	if o.recovSem != nil {
		// Backfill reservation: at most RecoveryMaxPGs PGs stream at once;
		// the rest queue here until a slot frees.
		o.recovSem.Acquire(p, 1)
		defer o.recovSem.Release(1)
	}
	o.stats.PGsBackfilled++
	sp := o.tr.Start(0, 0, trace.StageRecovery, pgColl(pg))
	defer o.tr.Finish(sp)
	names, err := o.store.List(p, pgColl(pg))
	if err != nil {
		return // nothing local for this PG
	}
	for _, obj := range names {
		if o.failed {
			return
		}
		o.recoveryBackoff(p, sp)
		if o.failed {
			return
		}
		lock := o.pgLock(pg)
		lock.Acquire(p, 1)
		bl, rerr := o.store.Read(p, pgColl(pg), obj, 0, 0)
		st, serr := o.store.Stat(p, pgColl(pg), obj)
		// Recovery must carry the object map too (bucket indexes live
		// there); a data-only push would silently lose it.
		omapKeys, _ := o.store.OmapKeys(p, pgColl(pg), obj)
		omapVals := make([][]byte, 0, len(omapKeys))
		for _, k := range omapKeys {
			v, gerr := o.store.OmapGet(p, pgColl(pg), obj, k)
			if gerr != nil {
				v = nil
			}
			omapVals = append(omapVals, v)
		}
		lock.Release(1)
		if rerr != nil || serr != nil {
			continue // deleted while we were backfilling
		}
		for _, target := range targets {
			pushBytes := int64(bl.Length())
			o.recoveryPace(p, pushBytes, sp)
			if o.failed {
				return
			}
			pushSp := o.tr.Start(sp, 0, trace.StageRecoveryPush, obj)
			o.tr.AddBytes(pushSp, pushBytes)
			o.cpu.Exec(p, th, o.cfg.RepPrepCycles)
			o.nextPushTid++
			tid := o.nextPushTid
			ack := sim.NewEvent(o.env)
			o.pushPending[tid] = ack
			o.msgr.Send(Name(target), &cephmsg.MPGPush{
				Tid: tid, Epoch: o.curMap.Epoch, PGID: pg, Object: obj,
				Version: st.Version, Data: bl,
				OmapKeys: omapKeys, OmapVals: omapVals,
			})
			if !ack.WaitTimeout(p, 30*sim.Second) {
				// Target died mid-backfill; a future map change restarts it.
				delete(o.pushPending, tid)
				o.tr.Finish(pushSp)
				return
			}
			o.stats.ObjectsRecovered++
			o.stats.RecoveryBytes += pushBytes
			o.tr.Finish(pushSp)
		}
		p.Wait(o.cfg.RecoveryDelay)
	}
}

// handlePGPush applies a pushed object on the backfill target (tp_osd_tp
// worker context).
func (o *OSD) handlePGPush(p *sim.Proc, src string, m *cephmsg.MPGPush) {
	o.cpu.ExecSelf(p, o.cfg.OpPrepCycles)
	lock := o.pgLock(m.PGID)
	lock.Acquire(p, 1)
	if !m.Force && o.store.Exists(p, pgColl(m.PGID), m.Object) {
		// A newer copy arrived through the client replication path.
		lock.Release(1)
		o.msgr.Send(src, &cephmsg.MPGPushAck{Tid: m.Tid, PGID: m.PGID, Object: m.Object})
		return
	}
	txn := (&objstore.Transaction{}).Write(pgColl(m.PGID), m.Object, 0, m.Data)
	for i := range m.OmapKeys {
		txn.OmapSet(pgColl(m.PGID), m.Object, m.OmapKeys[i], m.OmapVals[i])
	}
	o.ensureColl(m.PGID, txn)
	res := o.store.QueueTransaction(p, txn)
	lock.Release(1)
	o.stats.PushesServed++
	o.env.Spawn(fmt.Sprintf("push-completer:%s/%d", o.name, m.Tid), func(cp *sim.Proc) {
		cp.SetThread(o.thFin)
		res.Done.Wait(cp)
		o.cpu.Exec(cp, o.thFin, o.cfg.FinishCycles)
		result := cephmsg.ResOK
		if res.Err != nil {
			result = cephmsg.ResError
		}
		o.msgr.Send(src, &cephmsg.MPGPushAck{
			Tid: m.Tid, PGID: m.PGID, Object: m.Object, Result: result,
		})
	})
}

// handlePGPushAck completes one in-flight push (msgr-worker context).
func (o *OSD) handlePGPushAck(m *cephmsg.MPGPushAck) {
	if ev, ok := o.pushPending[m.Tid]; ok {
		ev.Fire()
		delete(o.pushPending, m.Tid)
	}
}

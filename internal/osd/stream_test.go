package osd

import (
	"errors"
	"fmt"
	"testing"

	"doceph/internal/messenger"
	"doceph/internal/rados"
	"doceph/internal/sim"
)

// streamMsgrCfg enables the chunk-pipelined transport with a test-sized
// chunk so modest payloads exercise multi-chunk streams.
func streamMsgrCfg(wireEncode bool, chunk int64, window int) messenger.Config {
	cfg := messenger.Config{WireEncode: wireEncode}
	cfg.Stream.Enable = true
	cfg.Stream.ChunkBytes = chunk
	cfg.Stream.Window = window
	return cfg
}

func defaultOSDCfg() Config {
	return Config{HeartbeatInterval: sim.Second, Monitor: "mon.0"}
}

// TestStreamedWriteReplicatesAndReadsBack drives multi-chunk writes through
// the streaming ingest path end to end: the primary must count them as
// streamed, fan the chunks out to the replica as a stream, and every acting
// store must hold the full object bytes.
func TestStreamedWriteReplicatesAndReadsBack(t *testing.T) {
	for _, wireEncode := range []bool{false, true} {
		t.Run(fmt.Sprintf("wire=%v", wireEncode), func(t *testing.T) {
			tc := newTestClusterMsgr(t, 2, 2, 0, streamMsgrCfg(wireEncode, 64<<10, 2), defaultOSDCfg())
			tc.run(t, func(p *sim.Proc) {
				data := payload(300_000, 7) // 5 chunks at 64KB
				for i := 0; i < 3; i++ {
					obj := fmt.Sprintf("stream-obj-%d", i)
					if err := tc.client.Write(p, obj, data); err != nil {
						t.Fatalf("write %s: %v", obj, err)
					}
					got, err := tc.client.Read(p, obj, 0, 0)
					if err != nil || !got.Equal(data) {
						t.Fatalf("read-back %s: err=%v", obj, err)
					}
					m := tc.client.Map()
					pg := m.PGForObject(obj)
					for _, id := range m.ActingSet(pg) {
						bl, err := tc.stores[id].Read(p, fmt.Sprintf("pg.%d", pg), obj, 0, 0)
						if err != nil || bl.CRC32C() != data.CRC32C() {
							t.Fatalf("osd.%d %s: err=%v", id, obj, err)
						}
					}
				}
				var streamed, reps int64
				for _, o := range tc.osds {
					streamed += o.Stats().StreamWrites
					reps += o.Stats().RepOpsServed
				}
				if streamed != 3 {
					t.Fatalf("stream_writes=%d, want 3", streamed)
				}
				if reps != 3 {
					t.Fatalf("rep_ops_served=%d, want 3", reps)
				}
			})
		})
	}
}

// TestStreamedOverwriteLastWins pins ordering through the per-chunk
// transaction path: sequential streamed overwrites of one object must leave
// the last payload, on the primary and the replica alike.
func TestStreamedOverwriteLastWins(t *testing.T) {
	tc := newTestClusterMsgr(t, 2, 2, 0, streamMsgrCfg(false, 32<<10, 4), defaultOSDCfg())
	tc.run(t, func(p *sim.Proc) {
		var last byte
		for seed := byte(1); seed <= 4; seed++ {
			if err := tc.client.Write(p, "hot", payload(200_000, seed)); err != nil {
				t.Fatalf("write %d: %v", seed, err)
			}
			last = seed
		}
		want := payload(200_000, last)
		m := tc.client.Map()
		pg := m.PGForObject("hot")
		for _, id := range m.ActingSet(pg) {
			bl, err := tc.stores[id].Read(p, fmt.Sprintf("pg.%d", pg), "hot", 0, 0)
			if err != nil || bl.CRC32C() != want.CRC32C() {
				t.Fatalf("osd.%d: stale content after overwrites (err=%v)", id, err)
			}
		}
	})
}

// TestStreamedWriteBelowMinSizeRejected exercises the streaming reject
// path: the primary must drain and credit the whole stream (so the client
// pump finishes) and then reply with the quorum error — no partial object
// may land.
func TestStreamedWriteBelowMinSizeRejected(t *testing.T) {
	ocfg := defaultOSDCfg()
	ocfg.RecoveryMaxPGs = 1
	tc := newTestClusterMsgr(t, 2, 2, 2, streamMsgrCfg(false, 64<<10, 2), ocfg)
	tc.run(t, func(p *sim.Proc) {
		if err := tc.client.Write(p, "obj", payload(200_000, 3)); err != nil {
			t.Fatal(err)
		}
		tc.osds[1].Fail()
		p.Wait(15 * sim.Second)
		err := tc.client.Write(p, "obj", payload(200_000, 4))
		if !errors.Is(err, rados.ErrNoQuorum) {
			t.Fatalf("streamed write below min_size: err = %v, want ErrNoQuorum", err)
		}
		if tc.osds[0].Stats().NoQuorumRejects == 0 {
			t.Fatal("primary recorded no quorum rejections")
		}
		// The rejected stream must not have mutated the object.
		m := tc.client.Map()
		pg := m.PGForObject("obj")
		bl, err := tc.stores[0].Read(p, fmt.Sprintf("pg.%d", pg), "obj", 0, 0)
		if err != nil || bl.CRC32C() != payload(200_000, 3).CRC32C() {
			t.Fatalf("rejected stream left partial content (err=%v)", err)
		}
	})
}

// TestStreamedSmallWriteBypasses: one-chunk payloads must use the plain
// store-and-forward path even with streaming on.
func TestStreamedSmallWriteBypasses(t *testing.T) {
	tc := newTestClusterMsgr(t, 2, 2, 0, streamMsgrCfg(false, 64<<10, 2), defaultOSDCfg())
	tc.run(t, func(p *sim.Proc) {
		if err := tc.client.Write(p, "small", payload(10_000, 9)); err != nil {
			t.Fatal(err)
		}
		for _, o := range tc.osds {
			if n := o.Stats().StreamWrites; n != 0 {
				t.Fatalf("%d writes streamed below the chunk size", n)
			}
		}
	})
}

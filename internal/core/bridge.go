package core

import (
	"doceph/internal/doca"
	"doceph/internal/dpu"
	"doceph/internal/objstore"
	"doceph/internal/rpcchan"
	"doceph/internal/sim"
)

// Bridge bundles the complete DPU <-> host complex of one DoCeph node: the
// control-plane RPC channel, the two DMA engines with their staging
// regions, the DPU-side Proxy and the host-side server. It is the unit the
// cluster assembler instantiates per storage node.
type Bridge struct {
	Proxy   *Proxy
	Host    *HostServer
	EngUp   *doca.Engine
	EngDown *doca.Engine
	CC      *doca.CommChannel
	RPCDPU  *rpcchan.Endpoint
	RPCHost *rpcchan.Endpoint
}

// BridgeConfig aggregates the per-layer configurations (zero values take
// each layer's defaults).
type BridgeConfig struct {
	Proxy ProxyConfig
	Host  HostConfig
	RPC   rpcchan.Config
	// Engine configures both DMA directions.
	Engine doca.EngineConfig
	Comm   doca.CommChannelConfig
	// Batch enables adaptive small-op batching on both sides of the bridge
	// (proxy coalescing + host notify coalescing). Off by default.
	Batch BatchConfig
	// Breaker enables the per-bridge DPU health circuit breaker with
	// host-path failover. Off by default.
	Breaker dpu.BreakerConfig
	// ReadCache enables the DPU-side object read cache on the proxy. Off
	// by default.
	ReadCache dpu.ReadCacheConfig
}

// NewBridge wires a DPU to a host CPU + local store and returns the
// assembled complex. The Proxy implements objstore.Store and is what the
// DPU-resident OSD should be given as its backend.
func NewBridge(env *sim.Env, dev *dpu.DPU, hostCPU *sim.CPU,
	store objstore.Store, cfg BridgeConfig) *Bridge {
	if cfg.Batch.Enable {
		cfg.Proxy.Batch = cfg.Batch
		cfg.Host.Batch = cfg.Batch
	}
	if cfg.Breaker.Enable {
		cfg.Proxy.Breaker = cfg.Breaker
	}
	if cfg.ReadCache.Enable {
		cfg.Proxy.ReadCache = cfg.ReadCache
	}
	thRPCHost := sim.NewThread("host-rpc@"+dev.Name, RPCServerThreadCat)
	thRPCDPU := sim.NewThread("proxy-rpc@"+dev.Name, ProxyThreadCat)
	rpcDPU, rpcHost := rpcchan.New(env,
		"dpu:"+dev.Name, dev.CPU, thRPCDPU,
		"host:"+dev.Name, hostCPU, thRPCHost, cfg.RPC)
	engUp := doca.NewEngine(env, dev.Name+"-up", cfg.Engine)
	engDown := doca.NewEngine(env, dev.Name+"-down", cfg.Engine)
	cc := doca.NewCommChannel(env, dev.CPU, hostCPU, thRPCHost, cfg.Comm)
	dpuMR := doca.NewMemRegion(dev.Name+"-staging-mr", dev.Buffers.BufferBytes()*int64(dev.Buffers.Capacity()))
	hostMR := doca.NewMemRegion(dev.Name+"-host-mr", 1<<30)

	host := NewHostServer(env, hostCPU, store, rpcHost, engUp, engDown, dpuMR, hostMR, cfg.Host)
	proxy := NewProxy(env, dev, rpcDPU, cc, engUp, engDown, dpuMR, hostMR, cfg.Proxy)
	return &Bridge{
		Proxy: proxy, Host: host,
		EngUp: engUp, EngDown: engDown, CC: cc,
		RPCDPU: rpcDPU, RPCHost: rpcHost,
	}
}

// compile-time check: the proxy is a drop-in ObjectStore backend.
var _ objstore.Store = (*Proxy)(nil)

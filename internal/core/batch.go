package core

import (
	"fmt"

	"doceph/internal/doca"
	"doceph/internal/rpcchan"
	"doceph/internal/sim"
	"doceph/internal/trace"
	"doceph/internal/wire"
)

// BatchConfig tunes adaptive small-op batching in the DPU data path. Every
// op pays a fixed DMA cost (descriptor setup + doorbell, ~1.6 ms on the
// emulated engine) and a fixed control-RPC cost for its commit
// notification; at small object sizes these fixed costs dominate and DoCeph
// trails the baseline in IOPS (the paper's Figure 10). Batching amortizes
// them: the proxy coalesces queued outbound transactions into a single DMA
// transfer (one staging pass, one doorbell) and the host coalesces commit
// notifications into batched RPCs.
//
// Off by default: with Enable false no daemon is spawned and no code path
// changes, so existing golden runs stay bit-identical.
type BatchConfig struct {
	// Enable turns batching on. All other fields take defaults when zero.
	Enable bool
	// MaxBatchBytes caps the coalesced payload of one batch frame and is
	// the flush byte threshold. Clamped to fit one staging buffer and one
	// engine transfer (~2 MB) including frame overhead.
	MaxBatchBytes int64
	// MaxOpBytes is the eligibility cutoff: transactions serializing
	// larger than this bypass the batcher and use the segmented per-op
	// path (clamped to MaxBatchBytes).
	MaxOpBytes int64
	// MaxOps caps the number of ops coalesced into one frame.
	MaxOps int
	// MaxDelay bounds how long the oldest queued op may wait before the
	// batch is force-flushed (virtual-time timer).
	MaxDelay sim.Duration
	// IdleDelay is the adaptive gap: if no new op arrives within it, the
	// queue is considered idle and flushes immediately rather than holding
	// ops for stragglers.
	IdleDelay sim.Duration
	// NotifyMax caps commit notifications coalesced into one host->DPU
	// opTxnDoneBatch RPC.
	NotifyMax int
}

// DefaultBatchConfig returns the batching defaults used when Enable is set.
func DefaultBatchConfig() BatchConfig {
	return BatchConfig{
		MaxBatchBytes: 1 << 20,
		MaxOpBytes:    256 << 10,
		MaxOps:        256,
		MaxDelay:      400 * sim.Microsecond,
		IdleDelay:     40 * sim.Microsecond,
		NotifyMax:     32,
	}
}

func (c BatchConfig) withDefaults() BatchConfig {
	if !c.Enable {
		// Disabled: keep the zero value so nothing downstream changes.
		return c
	}
	d := DefaultBatchConfig()
	if c.MaxBatchBytes == 0 {
		c.MaxBatchBytes = d.MaxBatchBytes
	}
	if c.MaxOpBytes == 0 {
		c.MaxOpBytes = d.MaxOpBytes
	}
	if c.MaxOps <= 0 || c.MaxOps > maxBatchOps {
		c.MaxOps = d.MaxOps
	}
	if c.MaxDelay == 0 {
		c.MaxDelay = d.MaxDelay
	}
	if c.IdleDelay == 0 {
		c.IdleDelay = d.IdleDelay
	}
	if c.NotifyMax <= 0 || c.NotifyMax > maxBatchOps {
		c.NotifyMax = d.NotifyMax
	}
	if c.MaxOpBytes > c.MaxBatchBytes {
		c.MaxOpBytes = c.MaxBatchBytes
	}
	return c
}

// batchOp is one transaction waiting in the proxy's batch queue.
type batchOp struct {
	reqID   uint64
	txnSeq  uint64
	payload *wire.Bufferlist
	ctx     trace.SpanID
	enq     sim.Time
}

// enqueueBatch files an eligible transaction with the batcher; the batch
// daemon ships it. Completion still arrives per op via pendingTxns.
func (px *Proxy) enqueueBatch(p *sim.Proc, op *batchOp) {
	op.enq = p.Now()
	px.batchQ = append(px.batchQ, op)
	px.batchBytes += int64(op.payload.Length())
	px.batchSeq++
	px.batchCond.Broadcast()
}

// batchLoop is the adaptive flush daemon (spawned only when batching is
// enabled). It accumulates queued ops and flushes on the first of: the byte
// threshold is reached, an IdleDelay gap passes with no new arrival, or the
// oldest op has waited MaxDelay.
func (px *Proxy) batchLoop(p *sim.Proc) {
	p.SetThread(px.thBatch)
	cfg := px.cfg.Batch
	for {
		for len(px.batchQ) == 0 {
			px.batchCond.Wait(p)
		}
		deadline := px.batchQ[0].enq.Add(cfg.MaxDelay)
		reason := &px.stats.BatchFlushBytes
		for px.batchBytes < cfg.MaxBatchBytes && len(px.batchQ) < cfg.MaxOps {
			rem := deadline.Sub(p.Now())
			if rem <= 0 {
				reason = &px.stats.BatchFlushDelay
				break
			}
			wait := cfg.IdleDelay
			if rem < wait {
				wait = rem
			}
			before := px.batchSeq
			p.Wait(wait)
			if px.batchSeq == before {
				reason = &px.stats.BatchFlushIdle
				break
			}
		}
		// Backpressure: with every DMA queue already serving a frame the
		// engine could not start another anyway, so keep accumulating
		// instead of queueing single-op frames behind them. This is what
		// makes the batch size track the instantaneous queue depth under
		// load; with a multi-queue engine, up to NumQueues frames overlap.
		for px.batchInflight >= px.engUp.NumQueues() {
			px.batchCond.Wait(p)
		}
		*reason++
		px.flushBatch(p)
	}
}

// flushBatch ships the head of the batch queue as one frame: a single
// staging pass into one DMA buffer and a single engine doorbell, with
// per-op batch.stage/batch.dma spans for attribution. During cooldown (or
// after a DMA error) the whole frame rides ONE control-plane call instead
// of per-op RPCs — the batched-submit half of the control-plane coalescing.
func (px *Proxy) flushBatch(p *sim.Proc) {
	cfg := px.cfg.Batch
	take := make([]*batchOp, 0, len(px.batchQ))
	var bytes int64
	for len(px.batchQ) > 0 {
		op := px.batchQ[0]
		n := int64(op.payload.Length())
		if len(take) > 0 && (bytes+n > cfg.MaxBatchBytes || len(take) >= cfg.MaxOps) {
			break
		}
		take = append(take, op)
		bytes += n
		px.batchQ = px.batchQ[1:]
	}
	px.batchBytes -= bytes
	px.stats.BatchFlushes++
	px.stats.BatchedTxns += int64(len(take))

	if !px.dmaAllowed(p) {
		px.stats.FallbackTxns += int64(len(take))
		px.shipBatchViaRPC(p, take)
		return
	}
	px.stats.DataPlaneTxns += int64(len(take))

	// One staging pass: the whole frame is memcpy'd into a single
	// DMA-capable buffer. The per-op copy cost is unchanged (staging is
	// linear in bytes); what the batch removes is the per-op setup.
	px.dev.Buffers.Acquire(p)
	px.noteStage(bytes)
	px.ensureRegions(p)
	for _, op := range take {
		n := int64(op.payload.Length())
		var sp trace.SpanID
		if op.ctx != 0 {
			sp = px.tr.Start(op.ctx, 0, trace.StageBatchStage, px.dev.Name)
			// Queue wait covers batch-queue residency plus the staging-
			// buffer wait, both inherited from the flush instant.
			px.tr.AddQueueWait(sp, p.Now().Sub(op.enq))
			px.tr.AddBytes(sp, n)
		}
		px.tr.AddCPU(sp, px.dev.CPU.Name(),
			px.dev.CPU.Exec(p, px.thBatch, int64(float64(n)*px.cfg.StageCyclesPerByte)))
		px.tr.Finish(sp)
	}
	frame := encodeBatchFrame(take)
	wireBytes := int64(frame.Length())
	if px.comp != nil {
		wireBytes = px.comp.Compress(p, px.dev.CPU, wireBytes)
	}
	px.nextReq++
	batchID := px.nextReq
	dmaStage := trace.StageBatchDMA
	qpin := 0
	if px.engUp.NumQueues() > 1 {
		// JSQ: claim the shallowest queue now so the frame never queues
		// behind a busy queue while a sibling sits idle. The reservation
		// also fixes the per-queue trace stage and the notify shard the
		// host will use for this frame's commit notifications.
		qidx := px.engUp.ReserveQueue()
		qpin = qidx + 1
		dmaStage = trace.StageBatchDMAQueue(qidx)
	}
	ctxs := make([]uint64, len(take))
	spans := make([]trace.SpanID, len(take))
	for i, op := range take {
		ctxs[i] = uint64(op.ctx)
		if op.ctx != 0 {
			spans[i] = px.tr.Start(op.ctx, 0, dmaStage, px.dev.Name)
			px.tr.AddBytes(spans[i], int64(op.payload.Length()))
		}
	}
	// Batch frames always move from the pre-registered staging pool into
	// the fixed host region: consecutive frames on a queue reuse the
	// established MRs/descriptors instead of a full setup (§3.3).
	t := &doca.Transfer{
		ReqID: batchID, TotalSegs: 1, Bytes: wireBytes, Data: frame, Ops: len(take),
		Src: px.dpuMR, Dst: px.hostMR, ReuseSetup: true, Queue: qpin,
		Tag: segHeader{kind: segTxnBatch, reqID: batchID, total: 1, batchCtxs: ctxs},
	}
	dmaStart := p.Now()
	px.batchInflight++
	if err := px.engUp.Submit(p, px.dev.CPU, t); err != nil {
		px.batchInflight--
		for _, sp := range spans {
			px.tr.Finish(sp)
		}
		px.dev.Buffers.Release()
		px.noteUnstage(bytes)
		px.enterCooldown(p)
		px.stats.FallbackSegments += int64(len(take))
		px.shipBatchViaRPC(p, take)
		return
	}
	// Settle accounting when the engine finishes; the batcher keeps
	// accumulating the next batch meanwhile (staging/transfer overlap).
	px.env.Spawn(fmt.Sprintf("proxy-batch-dma:%d", batchID), func(sp *sim.Proc) {
		sp.SetThread(px.thBatch)
		t.Done.Wait(sp)
		px.batchInflight--
		px.batchCond.Broadcast()
		for _, s := range spans {
			px.tr.Finish(s)
		}
		px.dev.Buffers.Release()
		px.noteUnstage(bytes)
		px.breakdown.DMA += t.CopyTime()
		if w := t.CompletedAt.Sub(dmaStart) - t.CopyTime(); w > 0 {
			px.breakdown.DMAWait += w
			if t.Err == nil {
				px.noteDMAWait(sp, w)
			}
		}
		if t.Err != nil {
			px.enterCooldown(sp)
			px.stats.FallbackSegments += int64(len(take))
			px.shipBatchViaRPC(sp, take)
		}
	})
}

// shipBatchViaRPC sends a whole batch frame over the control plane as one
// call (cooldown and post-error fallback).
func (px *Proxy) shipBatchViaRPC(p *sim.Proc, ops []*batchOp) {
	if _, err := px.rpc.Call(p, opBatchFallback, encodeBatchFrame(ops)); err != nil {
		panic(fmt.Sprintf("core: batch RPC fallback failed: %v", err))
	}
}

// onTxnDoneBatch handles a coalesced host commit notification: one RPC
// completing many transactions.
func (px *Proxy) onTxnDoneBatch(p *sim.Proc, req *rpcchan.Request,
	respond func(*wire.Bufferlist, uint16)) {
	respond(nil, 0) // notify: no-op
	entries, err := decodeTxnDoneBatch(req.Payload)
	if err != nil {
		panic("core: corrupt batched txn-done notification")
	}
	for _, en := range entries {
		if pt, ok := px.pendingTxns[en.reqID]; ok {
			pt.code = en.code
			pt.hostWriteNano = en.hostNanos
			pt.done.Fire()
		}
	}
}

// notifyLoop is one host-side completion batcher shard (spawned only when
// batching is enabled, one per DMA queue): it drains queued commit
// notifications into opTxnDoneBatch RPCs using the same adaptive
// idle/max-delay policy as the proxy batcher.
func (hs *HostServer) notifyLoop(p *sim.Proc, sh *notifyShard) {
	p.SetThread(hs.thPoll)
	cfg := hs.cfg.Batch
	// lastN is the size of the previous coalesced RPC. When it was a single
	// entry the shard is in a low-rate regime: waiting IdleDelay for a
	// companion almost never finds one and just adds latency to the commit
	// ack, so flush immediately. The first multi-entry flush (completions
	// arrived back-to-back during the RPC) switches back to accumulating.
	lastN := 0
	for {
		for len(sh.q) == 0 {
			sh.cond.Wait(p)
		}
		deadline := p.Now().Add(cfg.MaxDelay)
		for lastN > 1 && len(sh.q) < cfg.NotifyMax {
			rem := deadline.Sub(p.Now())
			if rem <= 0 {
				break
			}
			wait := cfg.IdleDelay
			if rem < wait {
				wait = rem
			}
			before := len(sh.q)
			p.Wait(wait)
			if len(sh.q) == before {
				break
			}
		}
		n := len(sh.q)
		if n > cfg.NotifyMax {
			n = cfg.NotifyMax
		}
		lastN = n
		frame := encodeTxnDoneBatch(sh.q[:n])
		sh.q = sh.q[n:]
		hs.stats.NotifyBatches++
		hs.rpc.Notify(p, opTxnDoneBatch, frame)
	}
}

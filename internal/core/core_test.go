package core

import (
	"errors"
	"testing"

	"doceph/internal/bluestore"
	"doceph/internal/dpu"
	"doceph/internal/objstore"
	"doceph/internal/sim"
	"doceph/internal/wire"
)

type coreRig struct {
	env     *sim.Env
	hostCPU *sim.CPU
	dev     *dpu.DPU
	store   *bluestore.Store
	bridge  *Bridge
}

func newCoreRig(cfg BridgeConfig) *coreRig {
	env := sim.NewEnv(11)
	r := &coreRig{env: env}
	r.hostCPU = sim.NewCPU(env, "host", 48, 3.7, 2000)
	disk := sim.NewDisk(env, "ssd", 530e6, 560e6, 30*sim.Microsecond)
	r.store = bluestore.New(env, "bs", r.hostCPU, disk, bluestore.Config{})
	r.dev = dpu.New(env, "bf3", dpu.Config{})
	r.bridge = NewBridge(env, r.dev, r.hostCPU, r.store, cfg)
	return r
}

func (r *coreRig) run(t *testing.T, body func(p *sim.Proc)) {
	t.Helper()
	done := false
	r.env.Spawn("body", func(p *sim.Proc) {
		p.SetThread(sim.NewThread("dpu-osd-worker", "tp_osd_tp"))
		body(p)
		done = true
	})
	err := r.env.RunUntil(sim.Time(5 * 60 * sim.Second))
	if !done {
		t.Fatalf("body did not finish: %v", err)
	}
	r.env.Shutdown()
}

func seeded(n int, seed byte) *wire.Bufferlist {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(int(seed) + i*17)
	}
	return wire.FromBytes(b)
}

func commitP(t *testing.T, p *sim.Proc, px *Proxy, txn *objstore.Transaction) error {
	t.Helper()
	res := px.QueueTransaction(p, txn)
	res.Done.Wait(p)
	return res.Err
}

func TestProxyWriteThroughDMA(t *testing.T) {
	r := newCoreRig(BridgeConfig{})
	r.run(t, func(p *sim.Proc) {
		px := r.bridge.Proxy
		data := seeded(300_000, 1)
		txn := (&objstore.Transaction{}).MkColl("pg.0").Write("pg.0", "obj", 0, data)
		if err := commitP(t, p, px, txn); err != nil {
			t.Fatalf("commit: %v", err)
		}
		// Verify the data really landed in the host BlueStore.
		got, err := r.store.Read(p, "pg.0", "obj", 0, 0)
		if err != nil || got.CRC32C() != data.CRC32C() {
			t.Fatalf("host content mismatch err=%v", err)
		}
		if px.Stats().DataPlaneTxns != 1 || px.Stats().FallbackTxns != 0 {
			t.Fatalf("stats=%+v", px.Stats())
		}
	})
}

func TestProxyLargeWriteSegmentedAt2MB(t *testing.T) {
	r := newCoreRig(BridgeConfig{})
	r.run(t, func(p *sim.Proc) {
		px := r.bridge.Proxy
		const size = 5 << 20 // 5 MiB -> 3 segments
		data := seeded(size, 2)
		txn := (&objstore.Transaction{}).MkColl("pg.1").Write("pg.1", "big", 0, data)
		if err := commitP(t, p, px, txn); err != nil {
			t.Fatal(err)
		}
		if n := r.bridge.EngUp.Stats().Transfers; n != 3 {
			t.Fatalf("transfers=%d want 3 (2MB segmentation)", n)
		}
		if n := r.bridge.Host.Stats().SegmentsViaDMA; n != 3 {
			t.Fatalf("host segments=%d", n)
		}
		got, err := r.store.Read(p, "pg.1", "big", 0, 0)
		if err != nil || got.Length() != size || got.CRC32C() != data.CRC32C() {
			t.Fatalf("content mismatch err=%v len=%d", err, got.Length())
		}
	})
}

func TestWriteThroughSemantics(t *testing.T) {
	r := newCoreRig(BridgeConfig{})
	r.run(t, func(p *sim.Proc) {
		px := r.bridge.Proxy
		txn := (&objstore.Transaction{}).MkColl("pg.2").Write("pg.2", "o", 0, seeded(100_000, 3))
		res := px.QueueTransaction(p, txn)
		res.Done.Wait(p)
		// At Done time the host BlueStore must already be durable.
		if _, err := r.store.Stat(p, "pg.2", "o"); err != nil {
			t.Fatalf("not durable at ack: %v", err)
		}
		if r.bridge.Host.Stats().TxnsCommitted != 1 {
			t.Fatal("host commit not counted")
		}
	})
}

func TestControlPlaneStatExistsList(t *testing.T) {
	r := newCoreRig(BridgeConfig{})
	r.run(t, func(p *sim.Proc) {
		px := r.bridge.Proxy
		txn := (&objstore.Transaction{}).MkColl("pg.3").
			Write("pg.3", "a", 0, seeded(12_000, 4)).
			Touch("pg.3", "b")
		if err := commitP(t, p, px, txn); err != nil {
			t.Fatal(err)
		}
		st, err := px.Stat(p, "pg.3", "a")
		if err != nil || st.Size != 12_000 {
			t.Fatalf("stat=%+v err=%v", st, err)
		}
		if !px.Exists(p, "pg.3", "b") || px.Exists(p, "pg.3", "ghost") {
			t.Fatal("exists wrong")
		}
		names, err := px.List(p, "pg.3")
		if err != nil || len(names) != 2 || names[0] != "a" || names[1] != "b" {
			t.Fatalf("list=%v err=%v", names, err)
		}
		if _, err := px.Stat(p, "pg.3", "ghost"); !errors.Is(err, objstore.ErrNotFound) {
			t.Fatalf("err=%v", err)
		}
		if _, err := px.List(p, "nocoll"); !errors.Is(err, objstore.ErrNoCollection) {
			t.Fatalf("err=%v", err)
		}
		if px.Stats().ControlCalls < 5 {
			t.Fatalf("control calls=%d", px.Stats().ControlCalls)
		}
		// Control traffic must not touch the DMA engine.
		if r.bridge.EngUp.Stats().Transfers != 1 { // just the txn's 1 segment
			t.Fatalf("unexpected DMA transfers: %d", r.bridge.EngUp.Stats().Transfers)
		}
	})
}

func TestReadPathViaDMA(t *testing.T) {
	r := newCoreRig(BridgeConfig{})
	r.run(t, func(p *sim.Proc) {
		px := r.bridge.Proxy
		const size = 5 << 20
		data := seeded(size, 5)
		if err := commitP(t, p, px,
			(&objstore.Transaction{}).MkColl("pg.4").Write("pg.4", "r", 0, data)); err != nil {
			t.Fatal(err)
		}
		got, err := px.Read(p, "pg.4", "r", 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		if got.Length() != size || got.CRC32C() != data.CRC32C() {
			t.Fatalf("read mismatch len=%d", got.Length())
		}
		// Read request descriptor went up; 3 data segments came down.
		if n := r.bridge.EngDown.Stats().Transfers; n != 3 {
			t.Fatalf("down transfers=%d want 3", n)
		}
		// Ranged read.
		part, err := px.Read(p, "pg.4", "r", 100, 500)
		if err != nil || !part.Equal(data.SubList(100, 500)) {
			t.Fatalf("ranged read err=%v", err)
		}
		if _, err := px.Read(p, "pg.4", "ghost", 0, 0); !errors.Is(err, objstore.ErrNotFound) {
			t.Fatalf("err=%v", err)
		}
	})
}

func TestDMAFailureFallsBackAndPreservesSegments(t *testing.T) {
	r := newCoreRig(BridgeConfig{})
	r.run(t, func(p *sim.Proc) {
		px := r.bridge.Proxy
		// Seed the collection first over a healthy path.
		if err := commitP(t, p, px, (&objstore.Transaction{}).MkColl("pg.5")); err != nil {
			t.Fatal(err)
		}
		const size = 6 << 20 // 3 segments
		data := seeded(size, 6)
		// Fail exactly one of the three data segments.
		r.bridge.EngUp.FailNext(1)
		err := commitP(t, p, px, (&objstore.Transaction{}).Write("pg.5", "f", 0, data))
		if err != nil {
			t.Fatalf("write should succeed via fallback: %v", err)
		}
		got, rerr := r.store.Read(p, "pg.5", "f", 0, 0)
		if rerr != nil || got.CRC32C() != data.CRC32C() {
			t.Fatalf("data corrupted after fallback: %v", rerr)
		}
		st := px.Stats()
		if st.FallbackSegments == 0 {
			t.Fatal("no segments fell back to RPC")
		}
		if st.FallbackSegments >= 3 {
			t.Fatalf("completed segments were resent: %d", st.FallbackSegments)
		}
		if st.CooldownEntries != 1 || px.DMAHealthy() {
			t.Fatalf("cooldown not entered: %+v healthy=%v", st, px.DMAHealthy())
		}
	})
}

func TestCooldownRoutesToRPCAndProbeRecovers(t *testing.T) {
	cfg := BridgeConfig{}
	cfg.Proxy.CooldownPeriod = 2 * sim.Second
	r := newCoreRig(cfg)
	r.run(t, func(p *sim.Proc) {
		px := r.bridge.Proxy
		if err := commitP(t, p, px, (&objstore.Transaction{}).MkColl("pg.6")); err != nil {
			t.Fatal(err)
		}
		r.bridge.EngUp.FailNext(1)
		if err := commitP(t, p, px,
			(&objstore.Transaction{}).Write("pg.6", "a", 0, seeded(100_000, 7))); err != nil {
			t.Fatal(err)
		}
		if px.DMAHealthy() {
			t.Fatal("expected cooldown")
		}
		// During cooldown all data-plane traffic uses RPC.
		before := r.bridge.EngUp.Stats().Transfers
		if err := commitP(t, p, px,
			(&objstore.Transaction{}).Write("pg.6", "b", 0, seeded(100_000, 8))); err != nil {
			t.Fatal(err)
		}
		if r.bridge.EngUp.Stats().Transfers != before {
			t.Fatal("DMA used during cooldown")
		}
		if px.Stats().FallbackTxns == 0 {
			t.Fatal("fallback txn not counted")
		}
		// After the cooldown expires a probe re-enables DMA.
		p.Wait(3 * sim.Second)
		if err := commitP(t, p, px,
			(&objstore.Transaction{}).Write("pg.6", "c", 0, seeded(100_000, 9))); err != nil {
			t.Fatal(err)
		}
		if !px.DMAHealthy() || px.Stats().Probes != 1 {
			t.Fatalf("probe recovery failed: %+v healthy=%v", px.Stats(), px.DMAHealthy())
		}
		// All three objects intact.
		for _, obj := range []string{"a", "b", "c"} {
			if _, err := r.store.Stat(p, "pg.6", obj); err != nil {
				t.Fatalf("%s: %v", obj, err)
			}
		}
	})
}

func TestFailedProbeExtendsCooldown(t *testing.T) {
	cfg := BridgeConfig{}
	cfg.Proxy.CooldownPeriod = sim.Second
	r := newCoreRig(cfg)
	r.run(t, func(p *sim.Proc) {
		px := r.bridge.Proxy
		if err := commitP(t, p, px, (&objstore.Transaction{}).MkColl("pg.7")); err != nil {
			t.Fatal(err)
		}
		r.bridge.EngUp.FailNext(1)
		if err := commitP(t, p, px,
			(&objstore.Transaction{}).Write("pg.7", "a", 0, seeded(50_000, 1))); err != nil {
			t.Fatal(err)
		}
		p.Wait(2 * sim.Second)
		r.bridge.EngUp.FailNext(1) // the probe itself fails
		if err := commitP(t, p, px,
			(&objstore.Transaction{}).Write("pg.7", "b", 0, seeded(50_000, 2))); err != nil {
			t.Fatal(err)
		}
		if px.DMAHealthy() {
			t.Fatal("probe failure should keep DMA disabled")
		}
		if px.Stats().ProbeFailures != 1 {
			t.Fatalf("stats=%+v", px.Stats())
		}
	})
}

func TestMRCacheAvoidsRenegotiation(t *testing.T) {
	r := newCoreRig(BridgeConfig{})
	r.run(t, func(p *sim.Proc) {
		px := r.bridge.Proxy
		txn := (&objstore.Transaction{}).MkColl("pg.8").Write("pg.8", "o", 0, seeded(5<<20, 3))
		if err := commitP(t, p, px, txn); err != nil {
			t.Fatal(err)
		}
		if err := commitP(t, p, px,
			(&objstore.Transaction{}).Write("pg.8", "o2", 0, seeded(5<<20, 4))); err != nil {
			t.Fatal(err)
		}
		// With the MR cache, both regions negotiate exactly once.
		if n := r.bridge.CC.Negotiations(); n != 2 {
			t.Fatalf("negotiations=%d want 2", n)
		}
	})
}

func TestNoMRCacheRenegotiatesPerSegment(t *testing.T) {
	cfg := BridgeConfig{}
	cfg.Proxy.DisableMRCache = true
	r := newCoreRig(cfg)
	r.run(t, func(p *sim.Proc) {
		px := r.bridge.Proxy
		txn := (&objstore.Transaction{}).MkColl("pg.9").Write("pg.9", "o", 0, seeded(5<<20, 5))
		if err := commitP(t, p, px, txn); err != nil {
			t.Fatal(err)
		}
		// 3 segments, each renegotiating, plus the initial pair.
		if n := r.bridge.CC.Negotiations(); n < 5 {
			t.Fatalf("negotiations=%d, want per-segment renegotiation", n)
		}
	})
}

func TestPipeliningOverlapsStagingAndTransfer(t *testing.T) {
	elapsed := func(pipeline bool) sim.Duration {
		cfg := BridgeConfig{}
		cfg.Proxy.DisablePipeline = !pipeline
		// Slow the DMA so overlap matters.
		cfg.Engine.BytesPerSec = 1e9
		r := newCoreRig(cfg)
		var d sim.Duration
		r.run(t, func(p *sim.Proc) {
			px := r.bridge.Proxy
			start := p.Now()
			res := px.QueueTransaction(p,
				(&objstore.Transaction{}).MkColl("pg").Write("pg", "o", 0, seeded(16<<20, 6)))
			res.Done.Wait(p)
			d = p.Now().Sub(start)
		})
		return d
	}
	with, without := elapsed(true), elapsed(false)
	if with >= without {
		t.Fatalf("pipelining did not help: with=%v without=%v", with, without)
	}
}

func TestBreakdownAccumulates(t *testing.T) {
	r := newCoreRig(BridgeConfig{})
	r.run(t, func(p *sim.Proc) {
		px := r.bridge.Proxy
		if err := commitP(t, p, px,
			(&objstore.Transaction{}).MkColl("pg").Write("pg", "o", 0, seeded(4<<20, 7))); err != nil {
			t.Fatal(err)
		}
		b := px.BreakdownSnapshot()
		if b.Requests != 1 || b.HostWrite <= 0 || b.DMA <= 0 {
			t.Fatalf("breakdown=%+v", b)
		}
		hw, dma, _ := b.Avg()
		if hw <= 0 || dma <= 0 {
			t.Fatalf("avg=%v %v", hw, dma)
		}
		px.ResetBreakdown()
		if px.BreakdownSnapshot().Requests != 0 {
			t.Fatal("reset failed")
		}
	})
}

func TestConcurrentProxyWrites(t *testing.T) {
	r := newCoreRig(BridgeConfig{})
	r.run(t, func(p *sim.Proc) {
		px := r.bridge.Proxy
		if err := commitP(t, p, px, (&objstore.Transaction{}).MkColl("pg")); err != nil {
			t.Fatal(err)
		}
		var results []*objstore.Result
		for i := 0; i < 16; i++ {
			obj := string(rune('a' + i))
			results = append(results, px.QueueTransaction(p,
				(&objstore.Transaction{}).Write("pg", obj, 0, seeded(3<<20, byte(i)))))
		}
		for _, res := range results {
			res.Done.Wait(p)
			if res.Err != nil {
				t.Fatal(res.Err)
			}
		}
		names, err := r.store.List(p, "pg")
		if err != nil || len(names) != 16 {
			t.Fatalf("names=%d err=%v", len(names), err)
		}
	})
}

func TestTransportCompressionShrinksDMABytes(t *testing.T) {
	cfg := BridgeConfig{}
	cfg.Proxy.EnableCompression = true
	r := newCoreRig(cfg)
	r.run(t, func(p *sim.Proc) {
		px := r.bridge.Proxy
		const size = 4 << 20
		data := seeded(size, 11)
		if err := commitP(t, p, px,
			(&objstore.Transaction{}).MkColl("pg.c").Write("pg.c", "o", 0, data)); err != nil {
			t.Fatal(err)
		}
		// The engine moved roughly half the original bytes (2:1 model).
		moved := r.bridge.EngUp.Stats().Bytes
		if moved > size*3/4 || moved < size/4 {
			t.Fatalf("engine moved %d of %d original bytes", moved, size)
		}
		ce := px.Compression()
		if ce == nil || ce.Ops() == 0 || ce.BytesIn() < size {
			t.Fatalf("accelerator unused: %+v", ce)
		}
		// Content still intact on the host (the simulation ships original
		// bytes; only timing is transformed).
		got, err := r.store.Read(p, "pg.c", "o", 0, 0)
		if err != nil || got.CRC32C() != data.CRC32C() {
			t.Fatalf("content mismatch err=%v", err)
		}
	})
}

func TestCompressionDisabledByDefault(t *testing.T) {
	r := newCoreRig(BridgeConfig{})
	r.run(t, func(p *sim.Proc) {
		if r.bridge.Proxy.Compression() != nil {
			t.Fatal("compression engine present without opt-in")
		}
	})
}

func TestProxyOmapOverControlPlane(t *testing.T) {
	r := newCoreRig(BridgeConfig{})
	r.run(t, func(p *sim.Proc) {
		px := r.bridge.Proxy
		txn := (&objstore.Transaction{}).MkColl("pg.m").
			Touch("pg.m", "o").
			OmapSet("pg.m", "o", "bucket-index", []byte("entry1"))
		if err := commitP(t, p, px, txn); err != nil {
			t.Fatal(err)
		}
		v, err := px.OmapGet(p, "pg.m", "o", "bucket-index")
		if err != nil || string(v) != "entry1" {
			t.Fatalf("get=%q err=%v", v, err)
		}
		keys, err := px.OmapKeys(p, "pg.m", "o")
		if err != nil || len(keys) != 1 || keys[0] != "bucket-index" {
			t.Fatalf("keys=%v err=%v", keys, err)
		}
		if _, err := px.OmapGet(p, "pg.m", "o", "ghost"); !errors.Is(err, objstore.ErrNotFound) {
			t.Fatalf("err=%v", err)
		}
		// Omap reads ride the control plane, not DMA.
		before := r.bridge.EngUp.Stats().Transfers
		_, _ = px.OmapKeys(p, "pg.m", "o")
		if r.bridge.EngUp.Stats().Transfers != before {
			t.Fatal("omap used the DMA path")
		}
	})
}

// TestProxyPeakStagingHighWater pins the staging-occupancy accounting: a
// single sub-segment write stages exactly its payload (the high-water mark
// equals the write size), and a segmented write never stages more than the
// whole object — segments are released as their DMA completes, so the mark
// is a true occupancy peak, not a cumulative byte counter.
func TestProxyPeakStagingHighWater(t *testing.T) {
	r := newCoreRig(BridgeConfig{})
	r.run(t, func(p *sim.Proc) {
		px := r.bridge.Proxy
		const n = 300_000
		txn := (&objstore.Transaction{}).MkColl("pg.9").Write("pg.9", "o", 0, seeded(n, 9))
		if err := commitP(t, p, px, txn); err != nil {
			t.Fatal(err)
		}
		// The staged segment carries the payload plus a few bytes of
		// encoded-transaction framing.
		if got := px.Stats().PeakStagingBytes; got < n || got > n+1024 {
			t.Errorf("peak staging after one %d-byte write = %d", n, got)
		}
	})

	r2 := newCoreRig(BridgeConfig{})
	r2.run(t, func(p *sim.Proc) {
		px := r2.bridge.Proxy
		const size = 5 << 20 // 3 DMA segments
		txn := (&objstore.Transaction{}).MkColl("pg.9").Write("pg.9", "big", 0, seeded(size, 10))
		if err := commitP(t, p, px, txn); err != nil {
			t.Fatal(err)
		}
		peak := px.Stats().PeakStagingBytes
		if peak < 2<<20 || peak > size+1024 {
			t.Errorf("segmented peak staging = %d, want within [one segment, object size] = [%d, %d]",
				peak, 2<<20, size)
		}
	})
}

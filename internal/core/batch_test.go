package core

import (
	"testing"

	"doceph/internal/objstore"
	"doceph/internal/sim"
)

func batchedRig(mut func(*BridgeConfig)) *coreRig {
	cfg := BridgeConfig{Batch: BatchConfig{Enable: true}}
	if mut != nil {
		mut(&cfg)
	}
	return newCoreRig(cfg)
}

func TestBatchedSmallWritesCoalesce(t *testing.T) {
	r := batchedRig(nil)
	r.run(t, func(p *sim.Proc) {
		px := r.bridge.Proxy
		if err := commitP(t, p, px, (&objstore.Transaction{}).MkColl("pg")); err != nil {
			t.Fatal(err)
		}
		base := r.bridge.EngUp.Stats().Transfers
		var results []*objstore.Result
		const n = 16
		for i := 0; i < n; i++ {
			obj := string(rune('a' + i))
			results = append(results, px.QueueTransaction(p,
				(&objstore.Transaction{}).Write("pg", obj, 0, seeded(16<<10, byte(i)))))
		}
		for _, res := range results {
			res.Done.Wait(p)
			if res.Err != nil {
				t.Fatal(res.Err)
			}
		}
		eng := r.bridge.EngUp.Stats()
		if got := eng.Transfers - base; got >= n {
			t.Fatalf("no coalescing: %d transfers for %d ops", got, n)
		}
		if eng.OpsMoved <= eng.Transfers {
			t.Fatalf("engine ops accounting: ops=%d transfers=%d", eng.OpsMoved, eng.Transfers)
		}
		st := px.Stats()
		if st.BatchedTxns < n || st.BatchFlushes == 0 || st.BatchFlushes >= st.BatchedTxns {
			t.Fatalf("batch stats=%+v", st)
		}
		hst := r.bridge.Host.Stats()
		if hst.BatchFrames == 0 || hst.BatchedOps < n {
			t.Fatalf("host batch stats=%+v", hst)
		}
		// Completion notifications were coalesced too.
		if hst.NotifyBatches == 0 || hst.NotifyBatches >= hst.TxnsCommitted {
			t.Fatalf("notify batching absent: %+v", hst)
		}
		// Every payload landed intact on the host.
		for i := 0; i < n; i++ {
			obj := string(rune('a' + i))
			got, err := r.store.Read(p, "pg", obj, 0, 0)
			if err != nil || got.CRC32C() != seeded(16<<10, byte(i)).CRC32C() {
				t.Fatalf("%s corrupted: %v", obj, err)
			}
		}
	})
}

func TestBatchLargeOpsBypassAndOrderingHolds(t *testing.T) {
	r := batchedRig(nil)
	r.run(t, func(p *sim.Proc) {
		px := r.bridge.Proxy
		if err := commitP(t, p, px, (&objstore.Transaction{}).MkColl("pg")); err != nil {
			t.Fatal(err)
		}
		// A small batched write followed immediately by a large segmented
		// write to the SAME object: the large one ships on the per-op path
		// right away, but the host must still commit in txnSeq order, so
		// the large write's content wins.
		small := px.QueueTransaction(p,
			(&objstore.Transaction{}).Write("pg", "o", 0, seeded(32<<10, 1)))
		big := seeded(5<<20, 2)
		large := px.QueueTransaction(p,
			(&objstore.Transaction{}).Write("pg", "o", 0, big))
		small.Done.Wait(p)
		large.Done.Wait(p)
		if small.Err != nil || large.Err != nil {
			t.Fatalf("errs: %v %v", small.Err, large.Err)
		}
		got, err := r.store.Read(p, "pg", "o", 0, 0)
		if err != nil || got.Length() != 5<<20 || got.CRC32C() != big.CRC32C() {
			t.Fatalf("commit order violated: len=%d err=%v", got.Length(), err)
		}
		// The large op never entered the batcher.
		if st := px.Stats(); st.BatchedTxns > 2 { // MkColl + small
			t.Fatalf("large op was batched: %+v", st)
		}
	})
}

func TestBatchFlushOnByteThreshold(t *testing.T) {
	r := batchedRig(func(cfg *BridgeConfig) {
		cfg.Batch.MaxBatchBytes = 64 << 10
	})
	r.run(t, func(p *sim.Proc) {
		px := r.bridge.Proxy
		if err := commitP(t, p, px, (&objstore.Transaction{}).MkColl("pg")); err != nil {
			t.Fatal(err)
		}
		var results []*objstore.Result
		for i := 0; i < 8; i++ {
			obj := string(rune('a' + i))
			results = append(results, px.QueueTransaction(p,
				(&objstore.Transaction{}).Write("pg", obj, 0, seeded(16<<10, byte(i)))))
		}
		for _, res := range results {
			res.Done.Wait(p)
		}
		st := px.Stats()
		if st.BatchFlushBytes == 0 {
			t.Fatalf("byte-threshold flush never fired: %+v", st)
		}
	})
}

func TestBatchIdleFlushBoundsSoloLatency(t *testing.T) {
	r := batchedRig(nil)
	r.run(t, func(p *sim.Proc) {
		px := r.bridge.Proxy
		if err := commitP(t, p, px, (&objstore.Transaction{}).MkColl("pg")); err != nil {
			t.Fatal(err)
		}
		start := p.Now()
		if err := commitP(t, p, px,
			(&objstore.Transaction{}).Write("pg", "solo", 0, seeded(8<<10, 3))); err != nil {
			t.Fatal(err)
		}
		lat := p.Now().Sub(start)
		// A lone op flushes after one idle gap, not after MaxDelay: its
		// added latency stays well under DMA setup + commit + MaxDelay.
		if lat > 10*sim.Millisecond {
			t.Fatalf("solo batched write took %v", lat)
		}
		if st := px.Stats(); st.BatchFlushIdle == 0 {
			t.Fatalf("idle flush never fired: %+v", st)
		}
	})
}

func TestBatchMaxDelayFlushUnderSteadyTrickle(t *testing.T) {
	r := batchedRig(func(cfg *BridgeConfig) {
		// Delay-only policy: the idle gap equals MaxDelay, so a steady
		// trickle of arrivals can only be cut off by the max-delay timer.
		cfg.Batch.IdleDelay = 400 * sim.Microsecond
		cfg.Batch.MaxDelay = 400 * sim.Microsecond
	})
	r.run(t, func(p *sim.Proc) {
		px := r.bridge.Proxy
		if err := commitP(t, p, px, (&objstore.Transaction{}).MkColl("pg")); err != nil {
			t.Fatal(err)
		}
		var results []*objstore.Result
		for i := 0; i < 12; i++ {
			obj := string(rune('a' + i))
			results = append(results, px.QueueTransaction(p,
				(&objstore.Transaction{}).Write("pg", obj, 0, seeded(4<<10, byte(i)))))
			p.Wait(50 * sim.Microsecond)
		}
		for _, res := range results {
			res.Done.Wait(p)
			if res.Err != nil {
				t.Fatal(res.Err)
			}
		}
		if st := px.Stats(); st.BatchFlushDelay == 0 {
			t.Fatalf("max-delay flush never fired: %+v", st)
		}
	})
}

func TestBatchDMAErrorFallsBackToBatchedRPC(t *testing.T) {
	r := batchedRig(nil)
	r.run(t, func(p *sim.Proc) {
		px := r.bridge.Proxy
		if err := commitP(t, p, px, (&objstore.Transaction{}).MkColl("pg")); err != nil {
			t.Fatal(err)
		}
		r.bridge.EngUp.FailNext(1)
		var results []*objstore.Result
		for i := 0; i < 4; i++ {
			obj := string(rune('a' + i))
			results = append(results, px.QueueTransaction(p,
				(&objstore.Transaction{}).Write("pg", obj, 0, seeded(16<<10, byte(i)))))
		}
		for _, res := range results {
			res.Done.Wait(p)
			if res.Err != nil {
				t.Fatalf("write should survive batch DMA failure: %v", res.Err)
			}
		}
		st := px.Stats()
		if st.CooldownEntries != 1 || px.DMAHealthy() {
			t.Fatalf("cooldown not entered: %+v healthy=%v", st, px.DMAHealthy())
		}
		if st.FallbackSegments == 0 {
			t.Fatalf("batch did not fall back: %+v", st)
		}
		// During cooldown further batches ride ONE control call per flush,
		// never the engine.
		before := r.bridge.EngUp.Stats().Transfers
		if err := commitP(t, p, px,
			(&objstore.Transaction{}).Write("pg", "z", 0, seeded(16<<10, 9))); err != nil {
			t.Fatal(err)
		}
		if r.bridge.EngUp.Stats().Transfers != before {
			t.Fatal("DMA used during cooldown")
		}
		if hst := r.bridge.Host.Stats(); hst.SegmentsViaRPC == 0 {
			t.Fatalf("no batched RPC fallback on host: %+v", hst)
		}
		// All five objects intact.
		for _, obj := range []string{"a", "b", "c", "d", "z"} {
			if _, err := r.store.Stat(p, "pg", obj); err != nil {
				t.Fatalf("%s: %v", obj, err)
			}
		}
	})
}

func TestBatchDisabledSpawnsNothing(t *testing.T) {
	r := newCoreRig(BridgeConfig{})
	r.run(t, func(p *sim.Proc) {
		px := r.bridge.Proxy
		if px.batchCond != nil || px.thBatch != nil {
			t.Fatal("batcher state exists with batching disabled")
		}
		if len(r.bridge.Host.notify) != 0 {
			t.Fatal("notify batcher exists with batching disabled")
		}
		if err := commitP(t, p, px,
			(&objstore.Transaction{}).MkColl("pg").Write("pg", "o", 0, seeded(8<<10, 1))); err != nil {
			t.Fatal(err)
		}
		st := px.Stats()
		if st.BatchedTxns != 0 || st.BatchFlushes != 0 {
			t.Fatalf("batch counters moved while disabled: %+v", st)
		}
	})
}

// Package core implements the paper's contribution: DoCeph's
// ProxyObjectStore (§3) — a transparent objstore.Store implementation that
// runs under the DPU-resident OSD and forwards every backend call to the
// host-resident BlueStore over two planes:
//
//   - Control plane: small metadata operations (stat, exists, list) as
//     lightweight RPCs over a persistent socket channel (package rpcchan).
//   - Data plane: bulk transaction payloads and read data over DOCA DMA
//     (package doca), segmented to the hardware's ~2 MB transfer limit and
//     pipelined so buffer staging overlaps in-flight transfers (§3.3,
//     Figure 4), with established memory regions reused instead of
//     renegotiated (MR cache).
//
// Robustness (§4): on a DMA error the completed segments are preserved and
// the remainder falls back to the RPC path; an atomic cooldown flag routes
// subsequent requests to RPC until a probe transfer proves the DMA path
// healthy again.
package core

import (
	"doceph/internal/objstore"
	"doceph/internal/sim"
	"doceph/internal/wire"
)

// RPC operation codes on the proxy <-> host channel.
const (
	opStat uint16 = iota + 1
	opExists
	opList
	// opSegFallback carries one transaction-payload segment over RPC (used
	// for whole requests during cooldown and for the remainder of a
	// partially-DMA'd request after an error).
	opSegFallback
	// opTxnDone notifies the DPU that a transaction committed on the host.
	opTxnDone
	// opReadFallback performs an entire read over RPC during cooldown.
	opReadFallback
	// opReadDone notifies the DPU that a read finished (error case or
	// zero-length; data segments arrive via DMA).
	opReadDone
	// opOmapGet / opOmapKeys serve the object-map metadata facility on the
	// control plane.
	opOmapGet
	opOmapKeys
	// opBatchFallback carries a whole batch frame (many coalesced small
	// transactions) over RPC in ONE call — the batched submit used during
	// cooldown and after a batch DMA error.
	opBatchFallback
	// opTxnDoneBatch notifies the DPU of many host commits in ONE RPC (the
	// batched complete).
	opTxnDoneBatch
)

// ErrFrame reports a malformed data-plane frame.
var ErrFrame = errFrame{}

type errFrame struct{}

func (errFrame) Error() string { return "core: malformed frame" }

// RPC error codes.
const (
	rcOK       uint16 = 0
	rcNotFound uint16 = 1
	rcNoColl   uint16 = 2
	rcIO       uint16 = 3
)

func errToCode(err error) uint16 {
	switch err {
	case nil:
		return rcOK
	case objstore.ErrNotFound:
		return rcNotFound
	case objstore.ErrNoCollection:
		return rcNoColl
	default:
		return rcIO
	}
}

func codeToErr(code uint16) error {
	switch code {
	case rcOK:
		return nil
	case rcNotFound:
		return objstore.ErrNotFound
	case rcNoColl:
		return objstore.ErrNoCollection
	default:
		return objstore.ErrProxyIO
	}
}

// segKind labels DMA transfers so each side's poller routes them.
type segKind uint8

const (
	segTxn      segKind = iota + 1 // DPU -> host: transaction payload
	segReadReq                     // DPU -> host: read request descriptor
	segReadData                    // host -> DPU: read response data
	segProbe                       // DPU -> host: cooldown health probe
	segTxnBatch                    // DPU -> host: batch frame of coalesced small transactions
)

// segHeader is the per-transfer tag: which request a segment belongs to and
// where it sits in that request. txnSeq is the per-proxy transaction
// sequence number used by the host to commit transactions in submission
// order even when the DMA and RPC paths race (per-PG ordering, which the
// baseline gets for free from its local ObjectStore, must survive the
// disaggregation).
type segHeader struct {
	kind   segKind
	reqID  uint64
	seg    int
	total  int
	txnSeq uint64
	// traceCtx rides the in-memory tag only (raw trace.SpanID); it is not
	// part of the wire header, so the RPC fallback path (encodeSegFallback)
	// drops it and fallback segments go untraced.
	traceCtx uint64
	// batchCtxs carries the per-op trace contexts of a segTxnBatch frame,
	// in frame entry order (in-memory only, like traceCtx).
	batchCtxs []uint64
}

// readReq is the read descriptor shipped to the host on the data plane.
type readReq struct {
	ReqID  uint64
	Coll   string
	Object string
	Off    uint64
	Length uint64
}

func (r *readReq) encode() *wire.Bufferlist {
	e := wire.NewEncoder(64)
	e.U64(r.ReqID)
	e.String(r.Coll)
	e.String(r.Object)
	e.U64(r.Off)
	e.U64(r.Length)
	return e.Bufferlist()
}

func decodeReadReq(bl *wire.Bufferlist) (*readReq, error) {
	d := wire.NewDecoderBL(bl)
	r := &readReq{ReqID: d.U64(), Coll: d.String(), Object: d.String(),
		Off: d.U64(), Length: d.U64()}
	return r, d.Err()
}

// segFallbackHeaderBytes is the fixed fallback frame header size.
const segFallbackHeaderBytes = 28

// encodeSegFallback frames one RPC-fallback segment; the payload rides as
// zero-copy segments after the fixed header.
func encodeSegFallback(reqID, txnSeq uint64, seg, total int, payload *wire.Bufferlist) *wire.Bufferlist {
	e := wire.NewEncoder(segFallbackHeaderBytes)
	e.U64(reqID)
	e.U64(txnSeq)
	e.U32(uint32(seg))
	e.U32(uint32(total))
	e.U32(uint32(payload.Length()))
	bl := e.Bufferlist()
	bl.AppendBufferlist(payload)
	return bl
}

func decodeSegFallback(bl *wire.Bufferlist) (reqID, txnSeq uint64, seg, total int, payload *wire.Bufferlist, err error) {
	if bl.Length() < segFallbackHeaderBytes {
		return 0, 0, 0, 0, nil, ErrFrame
	}
	d := wire.NewDecoder(bl.SubList(0, segFallbackHeaderBytes).Bytes())
	reqID = d.U64()
	txnSeq = d.U64()
	seg = int(d.U32())
	total = int(d.U32())
	n := int(d.U32())
	if segFallbackHeaderBytes+n > bl.Length() {
		return 0, 0, 0, 0, nil, ErrFrame
	}
	payload = bl.SubList(segFallbackHeaderBytes, n)
	return reqID, txnSeq, seg, total, payload, d.Err()
}

// encodeTxnDone frames the host -> DPU commit notification.
func encodeTxnDone(reqID uint64, code uint16, hostWriteNanos int64) *wire.Bufferlist {
	e := wire.NewEncoder(24)
	e.U64(reqID)
	e.U16(code)
	e.I64(hostWriteNanos)
	return e.Bufferlist()
}

func decodeTxnDone(bl *wire.Bufferlist) (reqID uint64, code uint16, hostWriteNanos int64, err error) {
	d := wire.NewDecoderBL(bl)
	reqID = d.U64()
	code = d.U16()
	hostWriteNanos = d.I64()
	return reqID, code, hostWriteNanos, d.Err()
}

// encodeReadDone frames the host -> DPU read-completion notification.
func encodeReadDone(reqID uint64, code uint16, totalSegs int) *wire.Bufferlist {
	e := wire.NewEncoder(16)
	e.U64(reqID)
	e.U16(code)
	e.U32(uint32(totalSegs))
	return e.Bufferlist()
}

func decodeReadDone(bl *wire.Bufferlist) (reqID uint64, code uint16, totalSegs int, err error) {
	d := wire.NewDecoderBL(bl)
	reqID = d.U64()
	code = d.U16()
	totalSegs = int(d.U32())
	return reqID, code, totalSegs, d.Err()
}

func encodeOmapRef(coll, obj, key string) *wire.Bufferlist {
	e := wire.NewEncoder(len(coll) + len(obj) + len(key) + 12)
	e.String(coll)
	e.String(obj)
	e.String(key)
	return e.Bufferlist()
}

func decodeOmapRef(bl *wire.Bufferlist) (coll, obj, key string, err error) {
	d := wire.NewDecoderBL(bl)
	coll = d.String()
	obj = d.String()
	key = d.String()
	return coll, obj, key, d.Err()
}

// encodeStatReq / decodeStatResp and friends: control-plane codecs.
func encodeObjRef(coll, obj string) *wire.Bufferlist {
	e := wire.NewEncoder(len(coll) + len(obj) + 8)
	e.String(coll)
	e.String(obj)
	return e.Bufferlist()
}

func decodeObjRef(bl *wire.Bufferlist) (coll, obj string, err error) {
	d := wire.NewDecoderBL(bl)
	coll = d.String()
	obj = d.String()
	return coll, obj, d.Err()
}

func encodeStatResp(st objstore.StatInfo) *wire.Bufferlist {
	e := wire.NewEncoder(24)
	e.U64(st.Size)
	e.U64(st.Version)
	e.I64(int64(st.Mtime))
	return e.Bufferlist()
}

func decodeStatResp(bl *wire.Bufferlist) (objstore.StatInfo, error) {
	d := wire.NewDecoderBL(bl)
	st := objstore.StatInfo{Size: d.U64(), Version: d.U64()}
	st.Mtime = sim.Time(d.I64())
	return st, d.Err()
}

func encodeList(names []string) *wire.Bufferlist {
	n := 8
	for _, s := range names {
		n += len(s) + 4
	}
	e := wire.NewEncoder(n)
	e.U32(uint32(len(names)))
	for _, s := range names {
		e.String(s)
	}
	return e.Bufferlist()
}

func decodeList(bl *wire.Bufferlist) ([]string, error) {
	d := wire.NewDecoderBL(bl)
	n := d.U32()
	out := make([]string, 0, n)
	for i := uint32(0); i < n && d.Err() == nil; i++ {
		out = append(out, d.String())
	}
	return out, d.Err()
}

package core

import (
	"testing"

	"doceph/internal/wire"
)

// frameBytes builds a valid frame over the given (reqID, txnSeq, payload)
// triples and returns its flat encoding.
func frameBytes(ops []*batchOp) []byte {
	return encodeBatchFrame(ops).Bytes()
}

func testOps(n int, payloadLen int) []*batchOp {
	ops := make([]*batchOp, 0, n)
	for i := 0; i < n; i++ {
		ops = append(ops, &batchOp{
			reqID:   uint64(100 + i),
			txnSeq:  uint64(200 + i),
			payload: seeded(payloadLen, byte(i)),
		})
	}
	return ops
}

// mqInterleavedOps builds the op mix a multi-queue flush produces when
// several requests are in flight at once: nreq requests round-robin through
// the frame, each contributing perReq ops with its own txnSeq progression
// and a payload size that differs per request.
func mqInterleavedOps(nreq, perReq int) []*batchOp {
	ops := make([]*batchOp, 0, nreq*perReq)
	seq := make([]uint64, nreq)
	for round := 0; round < perReq; round++ {
		for r := 0; r < nreq; r++ {
			seq[r]++
			ops = append(ops, &batchOp{
				reqID:   uint64(1 + r),
				txnSeq:  seq[r],
				payload: seeded(32<<r, byte(r*16+round)),
			})
		}
	}
	return ops
}

// mqQueueLocalOps builds a frame as one queue of a queues-wide engine would
// carry it under ReqID-hash steering: every ReqID is congruent to q mod
// queues, so the frame covers a strided slice of the request space.
func mqQueueLocalOps(queues, q, n int) []*batchOp {
	ops := make([]*batchOp, 0, n)
	for i := 0; i < n; i++ {
		ops = append(ops, &batchOp{
			reqID:   uint64(q + (i+1)*queues),
			txnSeq:  uint64(1 + i),
			payload: seeded(64+i*96, byte(q*32+i)),
		})
	}
	return ops
}

// segmentedBL rebuilds raw as a multi-segment Bufferlist so the decoder's
// cross-segment gather path is exercised too.
func segmentedBL(raw []byte, segLen int) *wire.Bufferlist {
	bl := &wire.Bufferlist{}
	for len(raw) > 0 {
		n := segLen
		if n > len(raw) {
			n = len(raw)
		}
		bl.AppendCopy(raw[:n])
		raw = raw[n:]
	}
	return bl
}

func TestBatchFrameRoundTrip(t *testing.T) {
	for _, tc := range []struct{ n, payloadLen int }{
		{1, 100}, {3, 4 << 10}, {maxBatchOps, 0}, {7, 1},
	} {
		ops := testOps(tc.n, tc.payloadLen)
		raw := frameBytes(ops)
		for _, segLen := range []int{len(raw) + 1, 13} {
			entries, err := decodeBatchFrame(segmentedBL(raw, segLen))
			if err != nil {
				t.Fatalf("n=%d seg=%d: %v", tc.n, segLen, err)
			}
			if len(entries) != tc.n {
				t.Fatalf("n=%d: decoded %d entries", tc.n, len(entries))
			}
			for i, en := range entries {
				if en.reqID != ops[i].reqID || en.txnSeq != ops[i].txnSeq ||
					!en.payload.Equal(ops[i].payload) {
					t.Fatalf("entry %d mismatch", i)
				}
			}
		}
	}
}

func TestBatchFrameZeroCopyEncode(t *testing.T) {
	ops := testOps(4, 8<<10)
	frame := encodeBatchFrame(ops)
	// The payload segments must be shared into the frame, not copied: the
	// frame has at least one segment per payload beyond the header scratch.
	if frame.Segments() < len(ops) {
		t.Fatalf("frame has %d segments for %d payloads — payloads were copied",
			frame.Segments(), len(ops))
	}
}

func TestDecodeBatchFrameRejectsMalformed(t *testing.T) {
	valid := frameBytes(testOps(2, 64))
	corrupt := func(mut func(b []byte)) []byte {
		b := append([]byte(nil), valid...)
		mut(b)
		return b
	}
	cases := map[string][]byte{
		"empty":          {},
		"short magic":    valid[:3],
		"bad magic":      corrupt(func(b []byte) { b[0] ^= 0xff }),
		"zero count":     corrupt(func(b []byte) { b[4], b[5], b[6], b[7] = 0, 0, 0, 0 }),
		"huge count":     corrupt(func(b []byte) { b[4], b[5], b[6], b[7] = 0xff, 0xff, 0xff, 0xff }),
		"count past end": corrupt(func(b []byte) { b[4] = 200 }),
		"truncated body": valid[:len(valid)-5],
		"payload len overflow": corrupt(func(b []byte) {
			// First entry's payloadLen field (offset 8+16).
			b[24], b[25], b[26], b[27] = 0xff, 0xff, 0xff, 0x7f
		}),
		"trailing garbage": append(append([]byte(nil), valid...), 0xde, 0xad),
	}
	for name, raw := range cases {
		for _, segLen := range []int{len(raw) + 1, 5} {
			if _, err := decodeBatchFrame(segmentedBL(raw, segLen)); err == nil {
				t.Errorf("%s (seg %d): decoded without error", name, segLen)
			}
		}
	}
	if _, err := decodeBatchFrame(nil); err == nil {
		t.Error("nil bufferlist decoded without error")
	}
}

func TestTxnDoneBatchRoundTrip(t *testing.T) {
	in := []txnDoneEntry{
		{reqID: 1, code: rcOK, hostNanos: 123456},
		{reqID: 99, code: rcIO, hostNanos: 0},
		{reqID: 7, code: rcNotFound, hostNanos: -1},
	}
	out, err := decodeTxnDoneBatch(encodeTxnDoneBatch(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("len=%d", len(out))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("entry %d: %+v != %+v", i, out[i], in[i])
		}
	}
	// Malformed variants error.
	raw := encodeTxnDoneBatch(in).Bytes()
	for name, bad := range map[string][]byte{
		"truncated": raw[:len(raw)-3],
		"empty":     {},
		"zero":      {0, 0, 0, 0},
		"huge":      {0xff, 0xff, 0xff, 0xff},
		"trailing":  append(append([]byte(nil), raw...), 1),
	} {
		if _, err := decodeTxnDoneBatch(wire.FromBytes(bad)); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

// FuzzDecodeBatchFrame asserts the host-side unpack's robustness contract:
// arbitrary corrupt or truncated frames must return an error — never panic
// — whether the frame arrives contiguous or scattered across tiny segments,
// and anything that decodes must re-encode to an equivalent frame.
// Run with: go test -fuzz=FuzzDecodeBatchFrame ./internal/core
func FuzzDecodeBatchFrame(f *testing.F) {
	// Seed corpus: 1-op frame, a max-fill frame, truncated and corrupt.
	f.Add(frameBytes(testOps(1, 64)))
	f.Add(frameBytes(testOps(8, 512)))
	f.Add(frameBytes(testOps(maxBatchOps, 0)))
	valid := frameBytes(testOps(2, 32))
	f.Add(valid[:len(valid)-7])
	bad := append([]byte(nil), valid...)
	bad[0] ^= 0xff
	f.Add(bad)
	f.Add([]byte{})
	f.Add([]byte{0x44, 0x43, 0x42, 0x46}) // magic only
	// Multi-queue interleavings. With queues > 1 the batcher drains per-queue
	// flushes whose op mixes look different from the serial stream: a frame
	// holds ops from several in-flight requests with interleaved txn
	// sequences and uneven payload sizes, or only the requests that steered
	// to one queue (ReqIDs congruent mod the queue count), and frames from
	// different queues land on the wire back to back.
	f.Add(frameBytes(mqInterleavedOps(4, 3)))
	f.Add(frameBytes(mqQueueLocalOps(4, 2, 6)))
	q0 := frameBytes(mqQueueLocalOps(4, 0, 3))
	q3 := frameBytes(mqQueueLocalOps(4, 3, 3))
	f.Add(append(append([]byte(nil), q0...), q3...)) // two queue flushes concatenated
	splice := append([]byte(nil), q0...)
	copy(splice[len(splice)/2:], q3) // queue frames torn mid-entry
	f.Add(splice)
	f.Fuzz(func(t *testing.T, raw []byte) {
		segLens := []int{len(raw) + 1, 7}
		if len(raw) < 4<<10 {
			// Byte-per-segment decode is O(len^2)-ish in segment count;
			// only worth it on small inputs.
			segLens = append(segLens, 1)
		}
		for _, segLen := range segLens {
			entries, err := decodeBatchFrame(segmentedBL(raw, segLen))
			if err != nil {
				continue
			}
			if len(entries) == 0 || len(entries) > maxBatchOps {
				t.Fatalf("accepted frame with %d entries", len(entries))
			}
			// Re-encode what decoded and check it decodes identically.
			ops := make([]*batchOp, 0, len(entries))
			var total int
			for _, en := range entries {
				total += en.payload.Length()
				ops = append(ops, &batchOp{reqID: en.reqID, txnSeq: en.txnSeq, payload: en.payload})
			}
			if total > len(raw) {
				t.Fatalf("payload bytes %d exceed input %d", total, len(raw))
			}
			again, err := decodeBatchFrame(encodeBatchFrame(ops))
			if err != nil {
				t.Fatalf("re-encoded frame failed to decode: %v", err)
			}
			if len(again) != len(entries) {
				t.Fatalf("re-encode changed entry count: %d != %d", len(again), len(entries))
			}
		}
	})
}

package core

import "doceph/internal/wire"

// Batch frame: the coalesced data-plane unit shipped by the proxy batcher.
// One frame carries many complete small transactions; the host unpacks it
// and dispatches each op individually (seg 0 of 1 into the ordered commit
// queue), so OSD semantics are unchanged.
//
// Layout (little-endian):
//
//	u32 magic "DCBF"
//	u32 count            (1..maxBatchOps)
//	count x {
//	    u64 reqID
//	    u64 txnSeq
//	    u32 payloadLen
//	    payloadLen bytes  (serialized transaction, zero-copy segments)
//	}
//
// The same frame rides the DMA data plane (segTxnBatch) and the control
// plane (opBatchFallback). The decoder is the trust boundary of the
// host-side unpack: every field is bounds-checked, malformed input returns
// ErrFrame and never panics (fuzzed by FuzzDecodeBatchFrame).

// batchFrameMagic is "DCBF" read little-endian.
const batchFrameMagic uint32 = 0x46424344

// maxBatchOps bounds ops per frame; the decoder rejects larger counts
// before allocating.
const maxBatchOps = 1024

// batchEntryHeaderBytes is the fixed per-entry header size.
const batchEntryHeaderBytes = 20

// batchFrameOverhead is the worst-case frame framing overhead for n ops.
func batchFrameOverhead(n int) int64 {
	return 8 + int64(n)*batchEntryHeaderBytes
}

// batchEntry is one unpacked transaction of a batch frame.
type batchEntry struct {
	reqID   uint64
	txnSeq  uint64
	payload *wire.Bufferlist
}

// encodeBatchFrame frames the ops; payloads ride as zero-copy segments
// spliced between the fixed headers (Bufferlist-assembly mode).
func encodeBatchFrame(ops []*batchOp) *wire.Bufferlist {
	e := wire.NewEncoderBL(make([]byte, 0, batchFrameOverhead(len(ops))))
	e.U32(batchFrameMagic)
	e.U32(uint32(len(ops)))
	for _, op := range ops {
		e.U64(op.reqID)
		e.U64(op.txnSeq)
		e.BufferlistField(op.payload)
	}
	return e.Bufferlist()
}

// decodeBatchFrame unpacks a batch frame, validating magic, count and every
// entry bound. Payloads are zero-copy views of bl's storage.
func decodeBatchFrame(bl *wire.Bufferlist) ([]batchEntry, error) {
	if bl == nil {
		return nil, ErrFrame
	}
	d := wire.NewDecoderBL(bl)
	if d.U32() != batchFrameMagic {
		return nil, ErrFrame
	}
	n := int(d.U32())
	if d.Err() != nil || n == 0 || n > maxBatchOps {
		return nil, ErrFrame
	}
	if int64(d.Remaining()) < int64(n)*batchEntryHeaderBytes {
		return nil, ErrFrame
	}
	out := make([]batchEntry, 0, n)
	for i := 0; i < n; i++ {
		en := batchEntry{reqID: d.U64(), txnSeq: d.U64()}
		en.payload = d.BufferlistField()
		if d.Err() != nil {
			return nil, ErrFrame
		}
		out = append(out, en)
	}
	if d.Remaining() != 0 {
		return nil, ErrFrame
	}
	return out, nil
}

// txnDoneEntry is one commit notification inside an opTxnDoneBatch RPC.
type txnDoneEntry struct {
	reqID     uint64
	code      uint16
	hostNanos int64
}

// encodeTxnDoneBatch frames coalesced host -> DPU commit notifications.
func encodeTxnDoneBatch(entries []txnDoneEntry) *wire.Bufferlist {
	e := wire.NewEncoder(4 + len(entries)*18)
	e.U32(uint32(len(entries)))
	for _, en := range entries {
		e.U64(en.reqID)
		e.U16(en.code)
		e.I64(en.hostNanos)
	}
	return e.Bufferlist()
}

func decodeTxnDoneBatch(bl *wire.Bufferlist) ([]txnDoneEntry, error) {
	d := wire.NewDecoderBL(bl)
	n := int(d.U32())
	if d.Err() != nil || n == 0 || n > maxBatchOps || d.Remaining() < n*18 {
		return nil, ErrFrame
	}
	out := make([]txnDoneEntry, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, txnDoneEntry{reqID: d.U64(), code: d.U16(), hostNanos: d.I64()})
	}
	if d.Err() != nil || d.Remaining() != 0 {
		return nil, ErrFrame
	}
	return out, nil
}

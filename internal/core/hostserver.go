package core

import (
	"fmt"

	"doceph/internal/doca"
	"doceph/internal/dpu"
	"doceph/internal/objstore"
	"doceph/internal/rpcchan"
	"doceph/internal/sim"
	"doceph/internal/trace"
	"doceph/internal/wire"
)

// Host-side accounting categories (the only Ceph work left on the host in
// DoCeph, §3.1: "the host runs only a BlueStore server").
const (
	// RPCServerThreadCat tags the control-plane socket listener.
	RPCServerThreadCat = "rpc-server"
	// DMAPollThreadCat tags the background DMA polling thread (§4: "a
	// background thread on the host continuously polls the DOCA DMA
	// engine").
	DMAPollThreadCat = "dma-poll"
)

// HostConfig tunes the host-side server.
type HostConfig struct {
	// PollInterval is the DMA completion polling period.
	PollInterval sim.Duration
	// PollIdleCycles is burned per empty poll iteration (the cost of
	// polling mode).
	PollIdleCycles int64
	// CompletionCycles is charged per harvested DMA completion.
	CompletionCycles int64
	// AssembleCyclesPerByte is charged when decoding an assembled
	// transaction payload before the BlueStore commit.
	AssembleCyclesPerByte float64
	// StageCyclesPerByte is charged per byte staged into a host read
	// buffer before the return DMA.
	StageCyclesPerByte float64
	// DecompressCyclesPerByte is charged (per original byte) when a
	// segment arrives transport-compressed; LZ4-class decompression.
	DecompressCyclesPerByte float64
	// ReadStagingBuffers / ReadStagingBufferBytes size the host-side
	// staging pool used by the read path (§3.3: "during reads, staging
	// buffers are positioned on the host side").
	ReadStagingBuffers     int
	ReadStagingBufferBytes int64
	// Batch configures adaptive batching; on the host side it enables the
	// coalesced commit-notification RPCs (usually set through
	// BridgeConfig.Batch).
	Batch BatchConfig
}

// DefaultHostConfig returns the host-server defaults.
func DefaultHostConfig() HostConfig {
	return HostConfig{
		PollInterval:            50 * sim.Microsecond,
		PollIdleCycles:          2_500,
		CompletionCycles:        3_000,
		AssembleCyclesPerByte:   0.02,
		StageCyclesPerByte:      0.5,
		DecompressCyclesPerByte: 0.3,
		ReadStagingBuffers:      64,
		ReadStagingBufferBytes:  2 << 20,
	}
}

func (c HostConfig) withDefaults() HostConfig {
	d := DefaultHostConfig()
	if c.PollInterval == 0 {
		c.PollInterval = d.PollInterval
	}
	if c.PollIdleCycles == 0 {
		c.PollIdleCycles = d.PollIdleCycles
	}
	if c.CompletionCycles == 0 {
		c.CompletionCycles = d.CompletionCycles
	}
	if c.AssembleCyclesPerByte == 0 {
		c.AssembleCyclesPerByte = d.AssembleCyclesPerByte
	}
	if c.StageCyclesPerByte == 0 {
		c.StageCyclesPerByte = d.StageCyclesPerByte
	}
	if c.DecompressCyclesPerByte == 0 {
		c.DecompressCyclesPerByte = d.DecompressCyclesPerByte
	}
	if c.ReadStagingBuffers == 0 {
		c.ReadStagingBuffers = d.ReadStagingBuffers
	}
	if c.ReadStagingBufferBytes == 0 {
		c.ReadStagingBufferBytes = d.ReadStagingBufferBytes
	}
	c.Batch = c.Batch.withDefaults()
	return c
}

// HostStats counts host-server activity.
type HostStats struct {
	TxnsCommitted   int64
	SegmentsViaDMA  int64
	SegmentsViaRPC  int64
	ReadsServed     int64
	ControlRequests int64
	PollIterations  int64

	// Batching counters (zero with batching disabled). FrameErrors counts
	// batch frames the decoder rejected.
	BatchFrames   int64
	BatchedOps    int64
	NotifyBatches int64
	FrameErrors   int64
}

// HostServer is the lightweight host-resident service: an event-driven RPC
// listener for the control plane and a polling thread for the DMA data
// plane, both feeding the local BlueStore.
type HostServer struct {
	env   *sim.Env
	cpu   *sim.CPU
	store objstore.Store
	cfg   HostConfig

	rpc     *rpcchan.Endpoint
	engUp   *doca.Engine
	engDown *doca.Engine
	dpuMR   *doca.MemRegion
	hostMR  *doca.MemRegion
	readBuf *dpu.BufferPool

	thPoll *sim.Thread
	tr     *trace.Tracer

	asm map[uint64]*assembly
	// Commit ordering: assembled transactions apply to BlueStore strictly
	// in the proxy's submission order (txnSeq), restoring the per-PG
	// ordering a local ObjectStore gives the baseline for free even when
	// DMA and RPC-fallback deliveries race.
	nextCommit uint64
	readyTxns  map[uint64]*readyTxn
	stats      HostStats

	// Notify coalescers (live only when cfg.Batch.Enable; see batch.go):
	// queued commit notifications awaiting a coalesced opTxnDoneBatch RPC,
	// one shard per DMA queue so the parallel completion streams don't
	// funnel through a single batcher.
	notify []*notifyShard
}

// notifyShard is one commit-notification coalescer (per DMA queue).
type notifyShard struct {
	cond *sim.Cond
	q    []txnDoneEntry
}

type readyTxn struct {
	reqID uint64
	// queue is the DMA queue index the transaction's frame rode; its commit
	// notification goes to the matching notify shard.
	queue int
	txn   *objstore.Transaction
	// silent suppresses the commit notification (the error was already
	// reported; the entry only keeps the sequence moving).
	silent bool
	// span is the host-commit span opened at assembly completion; ready is
	// that instant, so the commit-ordering delay lands as queue wait.
	span  trace.SpanID
	ready sim.Time
}

type assembly struct {
	segs    map[int]*wire.Bufferlist
	total   int
	started sim.Time
	// traceCtx is the first non-zero trace context seen on a segment tag
	// (RPC-fallback segments carry none).
	traceCtx uint64
}

// orderKey: transactions commit in txnSeq order starting at 1.

// NewHostServer builds the host side. rpcEnd is the host endpoint of the
// control channel; store is the local BlueStore.
func NewHostServer(env *sim.Env, hostCPU *sim.CPU, store objstore.Store,
	rpcEnd *rpcchan.Endpoint, engUp, engDown *doca.Engine,
	dpuMR, hostMR *doca.MemRegion, cfg HostConfig) *HostServer {
	hs := &HostServer{
		env: env, cpu: hostCPU, store: store, cfg: cfg.withDefaults(),
		rpc: rpcEnd, engUp: engUp, engDown: engDown,
		dpuMR: dpuMR, hostMR: hostMR,
		thPoll:     sim.NewThread("host-dma-poll", DMAPollThreadCat),
		asm:        make(map[uint64]*assembly),
		nextCommit: 1,
		readyTxns:  make(map[uint64]*readyTxn),
	}
	hs.readBuf = dpu.NewBufferPool(env, "host-read-staging",
		hs.cfg.ReadStagingBuffers, hs.cfg.ReadStagingBufferBytes)
	rpcEnd.Handle(opStat, hs.onStat)
	rpcEnd.Handle(opExists, hs.onExists)
	rpcEnd.Handle(opList, hs.onList)
	rpcEnd.Handle(opSegFallback, hs.onSegFallback)
	rpcEnd.Handle(opReadFallback, hs.onReadFallback)
	rpcEnd.Handle(opOmapGet, hs.onOmapGet)
	rpcEnd.Handle(opOmapKeys, hs.onOmapKeys)
	rpcEnd.Handle(opBatchFallback, hs.onBatchFallback)
	if hs.cfg.Batch.Enable {
		n := engUp.NumQueues()
		for i := 0; i < n; i++ {
			sh := &notifyShard{cond: sim.NewCond(env)}
			hs.notify = append(hs.notify, sh)
			name := "host-notify-batch"
			if n > 1 {
				name = fmt.Sprintf("host-notify-batch:q%d", i)
			}
			env.SpawnDaemon(name, func(p *sim.Proc) { hs.notifyLoop(p, sh) })
		}
	}
	// The polling thread's idle burn (PollIdleCycles every PollInterval) is
	// accounted analytically as a constant background load on one core.
	idleCores := float64(hs.cfg.PollIdleCycles) /
		(hs.cfg.PollInterval.Seconds() * hostCPU.FreqGHz * 1e9)
	hostCPU.SetBackgroundLoad(DMAPollThreadCat, idleCores)
	env.SpawnDaemon("host-dma-poll", func(p *sim.Proc) { hs.pollLoop(p) })
	return hs
}

// SetTracer attaches an op tracer. Host-commit spans open only for
// segments whose tags carry a trace context from the DPU side.
func (hs *HostServer) SetTracer(tr *trace.Tracer) { hs.tr = tr }

// Stats returns a copy of the host counters.
func (hs *HostServer) Stats() HostStats { return hs.stats }

// pollLoop is the background polling thread of §4: it harvests DMA
// completions and triggers the corresponding BlueStore handler, burning a
// small amount of CPU even when idle (the price of polling mode).
func (hs *HostServer) pollLoop(p *sim.Proc) {
	p.SetThread(hs.thPoll)
	for {
		t := hs.engUp.Completions().Pop(p)
		hs.stats.PollIterations++
		hs.cpu.Exec(p, hs.thPoll, hs.cfg.CompletionCycles)
		hdr, isSeg := t.Tag.(segHeader)
		if !isSeg || t.Err != nil {
			continue // probe traffic or failed transfer (DPU handles retry)
		}
		switch hdr.kind {
		case segTxn:
			hs.stats.SegmentsViaDMA++
			if t.Data != nil && t.Bytes < int64(t.Data.Length()) {
				// Transport-compressed segment: pay host-CPU decompression
				// over the original bytes.
				hs.cpu.Exec(p, hs.thPoll,
					int64(float64(t.Data.Length())*hs.cfg.DecompressCyclesPerByte))
			}
			hs.addSegment(p, hdr.reqID, hdr.txnSeq, hdr.seg, hdr.total, t.Data, hdr.traceCtx,
				hs.engUp.QueueFor(hdr.reqID))
		case segTxnBatch:
			hs.stats.BatchFrames++
			if t.Data != nil && t.Bytes < int64(t.Data.Length()) {
				hs.cpu.Exec(p, hs.thPoll,
					int64(float64(t.Data.Length())*hs.cfg.DecompressCyclesPerByte))
			}
			entries, err := decodeBatchFrame(t.Data)
			if err != nil {
				hs.stats.FrameErrors++
				continue
			}
			// Unpack and dispatch each op individually: every entry enters
			// the ordered commit queue as its own single-segment request, so
			// OSD/commit semantics are identical to the unbatched path.
			hs.stats.BatchedOps += int64(len(entries))
			// Route every op in the frame to the notify shard of the queue
			// the frame actually rode (JSQ-pinned or hash-steered).
			qidx := t.Queue - 1
			if qidx < 0 {
				qidx = hs.engUp.QueueFor(t.ReqID)
			}
			for i, en := range entries {
				var ctx uint64
				if i < len(hdr.batchCtxs) {
					ctx = hdr.batchCtxs[i]
				}
				hs.addSegment(p, en.reqID, en.txnSeq, 0, 1, en.payload, ctx, qidx)
			}
		case segReadReq:
			req, err := decodeReadReq(t.Data)
			if err != nil {
				panic("core: corrupt read request over DMA")
			}
			hs.serveRead(req)
		case segProbe:
			// Health probe: nothing to do.
		}
	}
}

// addSegment files one transaction segment (from either plane); once the
// request is complete its transaction joins the ordered commit queue.
func (hs *HostServer) addSegment(p *sim.Proc, reqID, txnSeq uint64, seg, total int, data *wire.Bufferlist, traceCtx uint64, queue int) {
	a, ok := hs.asm[reqID]
	if !ok {
		a = &assembly{segs: make(map[int]*wire.Bufferlist), started: p.Now()}
		hs.asm[reqID] = a
	}
	a.segs[seg] = data
	a.total = total
	if a.traceCtx == 0 {
		a.traceCtx = traceCtx
	}
	if len(a.segs) < total {
		return
	}
	delete(hs.asm, reqID)
	payload := &wire.Bufferlist{}
	for i := 0; i < total; i++ {
		payload.AppendBufferlist(a.segs[i])
	}
	var hostSp trace.SpanID
	if hs.tr.Enabled() && a.traceCtx != 0 {
		hostSp = hs.tr.Start(trace.SpanID(a.traceCtx), 0, trace.StageHostCommit, hs.cpu.Name())
		hs.tr.AddBytes(hostSp, int64(payload.Length()))
	}
	hs.tr.AddCPU(hostSp, hs.cpu.Name(),
		hs.cpu.ExecSelf(p, int64(float64(payload.Length())*hs.cfg.AssembleCyclesPerByte)))
	txn, err := objstore.DecodeTransactionBL(payload)
	if err != nil {
		// Report the failure but keep the commit sequence moving with an
		// empty transaction in this slot.
		hs.notifyTxnDone(reqID, rcIO, 0, queue)
		hs.readyTxns[txnSeq] = &readyTxn{reqID: reqID, queue: queue, txn: &objstore.Transaction{},
			silent: true, span: hostSp, ready: p.Now()}
	} else {
		// The host-commit span parents the local BlueStore's aio/kv spans.
		txn.TraceCtx = uint64(hostSp)
		hs.readyTxns[txnSeq] = &readyTxn{reqID: reqID, queue: queue, txn: txn, span: hostSp, ready: p.Now()}
	}
	for {
		rt, ok := hs.readyTxns[hs.nextCommit]
		if !ok {
			return
		}
		delete(hs.readyTxns, hs.nextCommit)
		hs.nextCommit++
		hs.commit(p, rt)
	}
}

func (hs *HostServer) commit(p *sim.Proc, rt *readyTxn) {
	start := p.Now()
	hs.tr.AddQueueWait(rt.span, p.Now().Sub(rt.ready))
	res := hs.store.QueueTransaction(p, rt.txn)
	reqID := rt.reqID
	silent := rt.silent
	span := rt.span
	hs.env.Spawn(fmt.Sprintf("host-commit:%d", reqID), func(cp *sim.Proc) {
		cp.SetThread(hs.thPoll)
		res.Done.Wait(cp)
		hs.tr.Finish(span)
		if silent {
			return
		}
		hs.stats.TxnsCommitted++
		// Report the backend's pure commit service time when available
		// (Table 3's "Host write"); fall back to the wall duration.
		hostWrite := res.ServiceTime
		if hostWrite <= 0 {
			hostWrite = cp.Now().Sub(start)
		}
		hs.notifyTxnDone(reqID, errToCode(unwrap(res.Err)), int64(hostWrite), rt.queue)
	})
}

func (hs *HostServer) notifyTxnDone(reqID uint64, code uint16, hostWriteNanos int64, queue int) {
	if len(hs.notify) > 0 {
		// Batching: queue for the notify coalescer of the DMA queue the
		// request's frame rode, which folds many completions into one
		// opTxnDoneBatch RPC.
		if queue < 0 || queue >= len(hs.notify) {
			queue = 0
		}
		sh := hs.notify[queue]
		sh.q = append(sh.q, txnDoneEntry{reqID: reqID, code: code, hostNanos: hostWriteNanos})
		sh.cond.Broadcast()
		return
	}
	hs.env.Spawn(fmt.Sprintf("host-notify:%d", reqID), func(p *sim.Proc) {
		p.SetThread(hs.thPoll)
		hs.rpc.Notify(p, opTxnDone, encodeTxnDone(reqID, code, hostWriteNanos))
	})
}

// onBatchFallback files a whole batch frame arriving over the control plane
// (the batched submit used during cooldown / after a batch DMA error).
func (hs *HostServer) onBatchFallback(p *sim.Proc, req *rpcchan.Request,
	respond func(*wire.Bufferlist, uint16)) {
	entries, err := decodeBatchFrame(req.Payload)
	if err != nil {
		hs.stats.FrameErrors++
		respond(nil, rcIO)
		return
	}
	respond(nil, rcOK) // receipt ack; durability is signalled per op
	hs.stats.SegmentsViaRPC += int64(len(entries))
	hs.stats.BatchedOps += int64(len(entries))
	for _, en := range entries {
		hs.addSegment(p, en.reqID, en.txnSeq, 0, 1, en.payload, 0,
			hs.engUp.QueueFor(en.reqID))
	}
}

// serveRead executes a read and DMAs the data back to the DPU in <=2 MB
// segments through host-side staging buffers.
func (hs *HostServer) serveRead(req *readReq) {
	hs.env.Spawn(fmt.Sprintf("host-read:%d", req.ReqID), func(p *sim.Proc) {
		p.SetThread(hs.thPoll)
		bl, err := hs.store.Read(p, req.Coll, req.Object, req.Off, req.Length)
		if err != nil || bl.Length() == 0 {
			total := 0
			hs.rpc.Notify(p, opReadDone, encodeReadDone(req.ReqID, errToCode(unwrap(err)), total))
			return
		}
		hs.stats.ReadsServed++
		segBytes := hs.readBuf.BufferBytes()
		if max := hs.engDown.Config().MaxTransferBytes; segBytes > max {
			segBytes = max
		}
		total := int((int64(bl.Length()) + segBytes - 1) / segBytes)
		for i := 0; i < total; i++ {
			off := int64(i) * segBytes
			n := int64(bl.Length()) - off
			if n > segBytes {
				n = segBytes
			}
			hs.readBuf.Acquire(p)
			hs.cpu.Exec(p, hs.thPoll, int64(float64(n)*hs.cfg.StageCyclesPerByte))
			t := &doca.Transfer{
				ReqID: req.ReqID, Seg: i, TotalSegs: total, Bytes: n,
				Data: bl.SubList(int(off), int(n)),
				Src:  hs.hostMR, Dst: hs.dpuMR,
				Tag: segHeader{kind: segReadData, reqID: req.ReqID, seg: i, total: total},
			}
			if err := hs.engDown.Submit(p, hs.cpu, t); err != nil {
				hs.readBuf.Release()
				hs.rpc.Notify(p, opReadDone, encodeReadDone(req.ReqID, rcIO, 0))
				return
			}
			buf := hs.readBuf
			hs.env.Spawn(fmt.Sprintf("host-read-seg:%d/%d", req.ReqID, i), func(sp *sim.Proc) {
				t.Done.Wait(sp)
				buf.Release()
			})
		}
	})
}

// Control-plane handlers: quick metadata services on the event-driven RPC
// loop (§3.2).

func (hs *HostServer) onStat(p *sim.Proc, req *rpcchan.Request,
	respond func(*wire.Bufferlist, uint16)) {
	hs.stats.ControlRequests++
	coll, obj, err := decodeObjRef(req.Payload)
	if err != nil {
		respond(nil, rcIO)
		return
	}
	st, serr := hs.store.Stat(p, coll, obj)
	if serr != nil {
		respond(nil, errToCode(unwrap(serr)))
		return
	}
	respond(encodeStatResp(st), rcOK)
}

func (hs *HostServer) onExists(p *sim.Proc, req *rpcchan.Request,
	respond func(*wire.Bufferlist, uint16)) {
	hs.stats.ControlRequests++
	coll, obj, err := decodeObjRef(req.Payload)
	if err != nil {
		respond(nil, rcIO)
		return
	}
	v := byte(0)
	if hs.store.Exists(p, coll, obj) {
		v = 1
	}
	respond(wire.FromBytes([]byte{v}), rcOK)
}

func (hs *HostServer) onList(p *sim.Proc, req *rpcchan.Request,
	respond func(*wire.Bufferlist, uint16)) {
	hs.stats.ControlRequests++
	coll, _, err := decodeObjRef(req.Payload)
	if err != nil {
		respond(nil, rcIO)
		return
	}
	names, lerr := hs.store.List(p, coll)
	if lerr != nil {
		respond(nil, errToCode(unwrap(lerr)))
		return
	}
	respond(encodeList(names), rcOK)
}

func (hs *HostServer) onOmapGet(p *sim.Proc, req *rpcchan.Request,
	respond func(*wire.Bufferlist, uint16)) {
	hs.stats.ControlRequests++
	coll, obj, key, err := decodeOmapRef(req.Payload)
	if err != nil {
		respond(nil, rcIO)
		return
	}
	v, gerr := hs.store.OmapGet(p, coll, obj, key)
	if gerr != nil {
		respond(nil, errToCode(unwrap(gerr)))
		return
	}
	respond(wire.FromBytes(v), rcOK)
}

func (hs *HostServer) onOmapKeys(p *sim.Proc, req *rpcchan.Request,
	respond func(*wire.Bufferlist, uint16)) {
	hs.stats.ControlRequests++
	coll, obj, err := decodeObjRef(req.Payload)
	if err != nil {
		respond(nil, rcIO)
		return
	}
	keys, kerr := hs.store.OmapKeys(p, coll, obj)
	if kerr != nil {
		respond(nil, errToCode(unwrap(kerr)))
		return
	}
	respond(encodeList(keys), rcOK)
}

// onSegFallback files a transaction segment arriving over the RPC path
// (cooldown or post-error fallback).
func (hs *HostServer) onSegFallback(p *sim.Proc, req *rpcchan.Request,
	respond func(*wire.Bufferlist, uint16)) {
	reqID, txnSeq, seg, total, payload, err := decodeSegFallback(req.Payload)
	if err != nil {
		respond(nil, rcIO)
		return
	}
	hs.stats.SegmentsViaRPC++
	respond(nil, rcOK) // receipt ack; durability is signalled via opTxnDone
	hs.addSegment(p, reqID, txnSeq, seg, total, payload, 0,
		hs.engUp.QueueFor(reqID))
}

// onReadFallback serves a whole read over RPC (cooldown path).
func (hs *HostServer) onReadFallback(p *sim.Proc, req *rpcchan.Request,
	respond func(*wire.Bufferlist, uint16)) {
	rr, err := decodeReadReq(req.Payload)
	if err != nil {
		respond(nil, rcIO)
		return
	}
	hs.env.Spawn(fmt.Sprintf("host-read-rpc:%d", rr.ReqID), func(rp *sim.Proc) {
		rp.SetThread(hs.thPoll)
		bl, rerr := hs.store.Read(rp, rr.Coll, rr.Object, rr.Off, rr.Length)
		if rerr != nil {
			respond(nil, errToCode(unwrap(rerr)))
			return
		}
		hs.stats.ReadsServed++
		respond(bl, rcOK)
	})
}

// unwrap maps wrapped backend errors onto the protocol's canonical set.
func unwrap(err error) error {
	switch {
	case err == nil:
		return nil
	case contains(err, objstore.ErrNotFound):
		return objstore.ErrNotFound
	case contains(err, objstore.ErrNoCollection):
		return objstore.ErrNoCollection
	default:
		return err
	}
}

func contains(err, target error) bool {
	for e := err; e != nil; {
		if e == target {
			return true
		}
		u, ok := e.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		e = u.Unwrap()
	}
	return false
}

package core

import (
	"fmt"

	"doceph/internal/doca"
	"doceph/internal/dpu"
	"doceph/internal/objstore"
	"doceph/internal/rpcchan"
	"doceph/internal/sim"
	"doceph/internal/trace"
	"doceph/internal/wire"
)

// ProxyThreadCat is the accounting category for the DPU-side proxy threads.
const ProxyThreadCat = "proxy"

// ProxyConfig tunes the DPU-side proxy. Zero values take defaults.
type ProxyConfig struct {
	// SerializeCyclesPerByte is charged on the DPU per transaction payload
	// byte when building the data-plane message.
	SerializeCyclesPerByte float64
	// StageCyclesPerByte is charged on the DPU per byte memcpy'd into a
	// DMA staging buffer.
	StageCyclesPerByte float64
	// DisableMRCache renegotiates memory regions per segment instead of
	// reusing established ones (the paper's motivating waste, §3.3); the
	// zero value keeps the cache on.
	DisableMRCache bool
	// DisablePipeline serializes stage->transfer->stage instead of
	// overlapping staging of segment k+1 with the transfer of segment k
	// (ablation); the zero value keeps pipelining on.
	DisablePipeline bool
	// CooldownPeriod is how long DMA stays disabled after a failure.
	CooldownPeriod sim.Duration
	// ProbeBytes is the size of the post-cooldown health-check transfer.
	ProbeBytes int64
	// ControlCallCycles is the DPU-side cost of issuing a control RPC.
	ControlCallCycles int64
	// EnableCompression routes each DMA segment through the DPU's hardware
	// compression engine before transfer: fewer bytes cross PCIe (less
	// engine time and DMA-wait) in exchange for accelerator time on the
	// DPU and decompression CPU on the host (extension; see ablations).
	EnableCompression bool
	// Batch configures adaptive small-op batching (off by default; usually
	// set through BridgeConfig.Batch).
	Batch BatchConfig
	// Breaker configures the DPU health circuit breaker (off by default;
	// usually set through BridgeConfig.Breaker). When enabled it replaces
	// the single-failure cooldown gate: isolated DMA errors below the
	// threshold keep the data plane on, a failure burst opens the breaker
	// and fails the session over to the host RPC path, and probe successes
	// re-enroll it.
	Breaker dpu.BreakerConfig
	// ReadCache configures the DPU-side object read cache (off by
	// default): hot full-object reads are answered from DPU DDR with DPU
	// CPU only — no PCIe crossing, no host CPU. Every mutation the proxy
	// ships invalidates its object's entry first, so cached content never
	// goes stale.
	ReadCache dpu.ReadCacheConfig
}

// DefaultProxyConfig returns the proxy defaults used in the experiments.
func DefaultProxyConfig() ProxyConfig {
	return ProxyConfig{
		SerializeCyclesPerByte: 0.25,
		StageCyclesPerByte:     0.5,
		CooldownPeriod:         5 * sim.Second,
		ProbeBytes:             64 << 10,
		ControlCallCycles:      10_000,
	}
}

func (c ProxyConfig) withDefaults() ProxyConfig {
	d := DefaultProxyConfig()
	if c.SerializeCyclesPerByte == 0 {
		c.SerializeCyclesPerByte = d.SerializeCyclesPerByte
	}
	if c.StageCyclesPerByte == 0 {
		c.StageCyclesPerByte = d.StageCyclesPerByte
	}
	if c.CooldownPeriod == 0 {
		c.CooldownPeriod = d.CooldownPeriod
	}
	if c.ProbeBytes == 0 {
		c.ProbeBytes = d.ProbeBytes
	}
	if c.ControlCallCycles == 0 {
		c.ControlCallCycles = d.ControlCallCycles
	}
	c.Batch = c.Batch.withDefaults()
	return c
}

// Breakdown is the per-phase latency accounting behind the paper's Table 3
// and Figure 9, accumulated over all completed write requests.
type Breakdown struct {
	Requests  int64
	HostWrite sim.Duration // host BlueStore submit -> commit
	DMA       sim.Duration // engine copy time across all segments
	DMAWait   sim.Duration // staging-buffer wait + engine queue wait
}

// Avg returns the average per-request phase durations.
func (b Breakdown) Avg() (hostWrite, dma, dmaWait sim.Duration) {
	if b.Requests == 0 {
		return 0, 0, 0
	}
	n := sim.Duration(b.Requests)
	return b.HostWrite / n, b.DMA / n, b.DMAWait / n
}

// ProxyStats counts proxy activity.
type ProxyStats struct {
	DataPlaneTxns    int64
	FallbackTxns     int64 // whole transactions routed over RPC (cooldown)
	FallbackSegments int64 // segments resent over RPC after DMA errors
	ControlCalls     int64
	Reads            int64
	ReadFallbacks    int64
	Probes           int64
	ProbeFailures    int64
	CooldownEntries  int64

	// Batching counters (all zero with batching disabled). Flush reasons
	// partition BatchFlushes: byte threshold, queue-idle gap, max-delay.
	BatchedTxns     int64
	BatchFlushes    int64
	BatchFlushBytes int64
	BatchFlushIdle  int64
	BatchFlushDelay int64

	// Read-cache counters (all zero with the cache disabled).
	ReadCacheHits          int64
	ReadCacheMisses        int64
	ReadCacheInvalidations int64

	// PeakStagingBytes is the high-water mark of payload bytes held in DMA
	// staging buffers at any one instant (per-segment buffers and batch
	// frames alike). With flow-controlled streaming the ceiling tracks
	// window x chunk, not object size — the bounded-memory claim the
	// streaming ablation checks.
	PeakStagingBytes int64
}

// Proxy is the DPU-side ProxyObjectStore. It implements objstore.Store, so
// the unmodified OSD uses it exactly like a local BlueStore (paper §3.1:
// "DoCeph leverages this modularity by overriding the ObjectStore
// interface").
type Proxy struct {
	env *sim.Env
	dev *dpu.DPU
	cfg ProxyConfig

	rpc     *rpcchan.Endpoint // DPU end of the control channel
	engUp   *doca.Engine      // DPU -> host
	engDown *doca.Engine      // host -> DPU
	comp    *doca.CompressionEngine
	cc      *doca.CommChannel
	dpuMR   *doca.MemRegion
	hostMR  *doca.MemRegion

	thProxy *sim.Thread
	tr      *trace.Tracer

	nextReq      uint64
	nextTxnSeq   uint64
	pendingTxns  map[uint64]*pendingTxn
	pendingReads map[uint64]*pendingRead

	// Batcher state (live only when cfg.Batch.Enable; see batch.go).
	thBatch    *sim.Thread
	batchCond  *sim.Cond
	batchQ     []*batchOp
	batchBytes int64
	// batchSeq counts arrivals; the flush loop compares it across an
	// IdleDelay sleep to detect a quiet queue.
	batchSeq uint64
	// batchInflight counts batch frames currently on the engine; the flush
	// loop accumulates while it is non-zero (backpressure).
	batchInflight int

	// cooldown state (paper §4): dmaHealthy gates the data plane; after
	// cooldownUntil passes, the next request probes before re-enabling.
	// With the circuit breaker enabled, br supersedes both fields.
	dmaHealthy    bool
	cooldownUntil sim.Time
	br            *dpu.Breaker

	// rcache serves hot reads from DPU DDR (nil with the cache disabled).
	rcache *dpu.ReadCache

	breakdown Breakdown
	stats     ProxyStats
	// stagingBytes is the current occupancy behind stats.PeakStagingBytes.
	stagingBytes int64
}

// noteStage/noteUnstage maintain the staging-buffer high-water mark around
// every Buffers.Acquire/Release pair. Single-threaded per proxy event, so
// plain arithmetic suffices.
func (px *Proxy) noteStage(n int64) {
	px.stagingBytes += n
	if px.stagingBytes > px.stats.PeakStagingBytes {
		px.stats.PeakStagingBytes = px.stagingBytes
	}
}

func (px *Proxy) noteUnstage(n int64) { px.stagingBytes -= n }

type pendingTxn struct {
	done          *sim.Event
	code          uint16
	hostWriteNano int64
}

type pendingRead struct {
	done  *sim.Event
	segs  map[int]*wire.Bufferlist
	total int
	code  uint16
}

// NewProxy builds the DPU-side proxy. rpcEnd is the DPU endpoint of the
// control channel; engUp/engDown are the DMA engines for the two
// directions; dpuMR/hostMR are the staging regions (negotiated lazily via
// cc, or per-segment when the MR cache is disabled).
func NewProxy(env *sim.Env, dev *dpu.DPU, rpcEnd *rpcchan.Endpoint,
	cc *doca.CommChannel, engUp, engDown *doca.Engine,
	dpuMR, hostMR *doca.MemRegion, cfg ProxyConfig) *Proxy {
	px := &Proxy{
		env: env, dev: dev, cfg: cfg.withDefaults(),
		rpc: rpcEnd, engUp: engUp, engDown: engDown, cc: cc,
		dpuMR: dpuMR, hostMR: hostMR,
		thProxy:      sim.NewThread("proxy@"+dev.Name, ProxyThreadCat),
		pendingTxns:  make(map[uint64]*pendingTxn),
		pendingReads: make(map[uint64]*pendingRead),
		dmaHealthy:   true,
	}
	if px.cfg.EnableCompression {
		px.comp = doca.NewCompressionEngine(env, doca.CompressionEngineConfig{})
	}
	if px.cfg.Breaker.Enable {
		px.br = dpu.NewBreaker(px.cfg.Breaker)
	}
	if px.cfg.ReadCache.Enable {
		px.rcache = dpu.NewReadCache(px.cfg.ReadCache)
	}
	rpcEnd.Handle(opTxnDone, px.onTxnDone)
	rpcEnd.Handle(opReadDone, px.onReadDone)
	rpcEnd.Handle(opTxnDoneBatch, px.onTxnDoneBatch)
	env.SpawnDaemon("dpu-dma-poll@"+dev.Name, func(p *sim.Proc) { px.downPollLoop(p) })
	if px.cfg.Batch.Enable {
		// Clamp the batch byte cap so a worst-case frame (payload + framing
		// overhead) fits one staging buffer and one engine transfer.
		lim := dev.Buffers.BufferBytes()
		if m := engUp.Config().MaxTransferBytes; m < lim {
			lim = m
		}
		lim -= batchFrameOverhead(px.cfg.Batch.MaxOps)
		if px.cfg.Batch.MaxBatchBytes > lim {
			px.cfg.Batch.MaxBatchBytes = lim
		}
		if px.cfg.Batch.MaxOpBytes > px.cfg.Batch.MaxBatchBytes {
			px.cfg.Batch.MaxOpBytes = px.cfg.Batch.MaxBatchBytes
		}
		px.thBatch = sim.NewThread("proxy-batch@"+dev.Name, ProxyThreadCat)
		px.batchCond = sim.NewCond(env)
		env.SpawnDaemon("proxy-batch@"+dev.Name, func(p *sim.Proc) { px.batchLoop(p) })
	}
	return px
}

// SetTracer attaches an op tracer. Only transactions carrying a TraceCtx
// produce spans; probe traffic and RPC-fallback segments stay untraced.
func (px *Proxy) SetTracer(tr *trace.Tracer) { px.tr = tr }

// Stats returns a copy of the proxy counters.
func (px *Proxy) Stats() ProxyStats {
	s := px.stats
	if px.rcache != nil {
		rs := px.rcache.Stats()
		s.ReadCacheHits = rs.Hits
		s.ReadCacheMisses = rs.Misses
		s.ReadCacheInvalidations = rs.Invalidations
	}
	return s
}

// ReadCache returns the DPU-side read cache, or nil when it is disabled.
func (px *Proxy) ReadCache() *dpu.ReadCache { return px.rcache }

// BreakdownSnapshot returns the accumulated latency breakdown.
func (px *Proxy) BreakdownSnapshot() Breakdown { return px.breakdown }

// ResetBreakdown clears the latency accounting (benchmark warmup).
func (px *Proxy) ResetBreakdown() { px.breakdown = Breakdown{} }

// DMAHealthy reports whether the data plane currently uses DMA.
func (px *Proxy) DMAHealthy() bool {
	if px.br != nil {
		return px.br.State() == dpu.BreakerClosed
	}
	return px.dmaHealthy
}

// Breaker returns the circuit breaker, or nil when it is disabled.
func (px *Proxy) Breaker() *dpu.Breaker { return px.br }

// Compression returns the DPU compression accelerator, or nil when
// transport compression is disabled.
func (px *Proxy) Compression() *doca.CompressionEngine { return px.comp }

// ensureRegions makes both regions usable for DMA: once per lifetime with
// the MR cache, per call without it.
func (px *Proxy) ensureRegions(p *sim.Proc) {
	if !px.cfg.DisableMRCache && px.dpuMR.Exported() && px.hostMR.Exported() {
		return
	}
	px.cc.Negotiate(p, px.dpuMR)
	px.cc.Negotiate(p, px.hostMR)
}

// dmaAllowed implements the cooldown gate: healthy -> yes; in cooldown ->
// no; cooldown expired -> run a probe transfer and decide. With the circuit
// breaker enabled the decision is delegated to its state machine instead.
func (px *Proxy) dmaAllowed(p *sim.Proc) bool {
	if px.br != nil {
		return px.breakerAllowed(p)
	}
	if px.dmaHealthy {
		return true
	}
	if p.Now() < px.cooldownUntil {
		return false
	}
	// Probe (paper §4: "a small test DMA transfer to determine whether the
	// DMA path can be safely reactivated").
	px.stats.Probes++
	px.ensureRegions(p)
	t := &doca.Transfer{Bytes: px.cfg.ProbeBytes, Src: px.dpuMR, Dst: px.hostMR,
		Tag: segHeader{kind: segProbe}}
	if err := px.engUp.Submit(p, px.dev.CPU, t); err != nil {
		px.enterCooldown(p)
		return false
	}
	t.Done.Wait(p)
	if t.Err != nil {
		px.stats.ProbeFailures++
		px.enterCooldown(p)
		return false
	}
	px.dmaHealthy = true
	return true
}

func (px *Proxy) enterCooldown(p *sim.Proc) {
	if px.br != nil {
		// Breaker mode: a single error is a data point, not a verdict —
		// DMA stays on until the failure rate crosses the threshold.
		px.br.RecordFailure(p.Now())
		return
	}
	if px.dmaHealthy {
		px.stats.CooldownEntries++
	}
	px.dmaHealthy = false
	px.cooldownUntil = p.Now().Add(px.cfg.CooldownPeriod)
}

// breakerAllowed asks the breaker what to do with this request, running the
// probe transfer itself when one is admitted (half-open re-enrollment).
func (px *Proxy) breakerAllowed(p *sim.Proc) bool {
	switch px.br.Decide(p.Now()) {
	case dpu.BreakerAllow:
		return true
	case dpu.BreakerProbe:
		px.stats.Probes++
		px.ensureRegions(p)
		t := &doca.Transfer{Bytes: px.cfg.ProbeBytes, Src: px.dpuMR, Dst: px.hostMR,
			Tag: segHeader{kind: segProbe}}
		err := px.engUp.Submit(p, px.dev.CPU, t)
		if err == nil {
			t.Done.Wait(p)
			err = t.Err
		}
		if err != nil {
			px.stats.ProbeFailures++
			px.br.RecordProbe(p.Now(), false)
			return false
		}
		px.br.RecordProbe(p.Now(), true)
		// The probe that completes the success streak closes the breaker
		// and its request rides DMA; earlier probes stay on the fallback.
		return px.br.State() == dpu.BreakerClosed
	default:
		return false
	}
}

// noteDMAWait feeds stall detection: a request whose non-copy wait exceeds
// the breaker's StallThreshold counts toward opening like an error.
func (px *Proxy) noteDMAWait(p *sim.Proc, wait sim.Duration) {
	if px.br == nil {
		return
	}
	if st := px.br.Config().StallThreshold; st > 0 && wait > st {
		px.br.RecordStall(p.Now())
	}
}

// QueueTransaction implements objstore.Store: the write data plane. The
// payload is serialized on the DPU, cut into <=2 MB segments, staged into
// DMA buffers and shipped to the host, where the BlueStore server commits
// it; Done fires only after the host acknowledges durability (preserving
// write-through semantics).
func (px *Proxy) QueueTransaction(p *sim.Proc, txn *objstore.Transaction) *objstore.Result {
	px.invalidateCached(txn)
	res := &objstore.Result{Done: sim.NewEvent(px.env)}
	ctx := trace.SpanID(txn.TraceCtx)
	if !px.tr.Enabled() {
		ctx = 0
	}
	// Serialize on the submitting DPU thread (tp_osd_tp on the DPU). The
	// frame references payload segments zero-copy; the CPU cost of the
	// memcpy a real implementation would do is still charged below.
	var serSp trace.SpanID
	if ctx != 0 {
		serSp = px.tr.Start(ctx, 0, trace.StageSerialize, px.dev.Name)
	}
	payload := txn.EncodeBL()
	serBusy := px.dev.CPU.ExecSelf(p, int64(float64(payload.Length())*px.cfg.SerializeCyclesPerByte))
	px.tr.AddCPU(serSp, px.dev.CPU.Name(), serBusy)
	px.tr.AddBytes(serSp, int64(payload.Length()))
	px.tr.Finish(serSp)

	px.nextReq++
	reqID := px.nextReq
	px.nextTxnSeq++
	txnSeq := px.nextTxnSeq
	pt := &pendingTxn{done: sim.NewEvent(px.env)}
	px.pendingTxns[reqID] = pt

	if px.cfg.Batch.Enable && int64(payload.Length()) <= px.cfg.Batch.MaxOpBytes {
		// Small op: hand it to the batcher, which ships it coalesced with
		// its neighbours; completion still arrives per op.
		px.enqueueBatch(p, &batchOp{reqID: reqID, txnSeq: txnSeq, payload: payload, ctx: ctx})
		px.env.Spawn(fmt.Sprintf("proxy-tx:%d", reqID), func(tp *sim.Proc) {
			tp.SetThread(px.thProxy)
			px.awaitTxn(tp, reqID, pt, res)
		})
		return res
	}

	useDMA := px.dmaAllowed(p)
	if useDMA {
		px.stats.DataPlaneTxns++
	} else {
		px.stats.FallbackTxns++
	}
	streamReuse := txn.StreamReuse
	px.env.Spawn(fmt.Sprintf("proxy-tx:%d", reqID), func(tp *sim.Proc) {
		tp.SetThread(px.thProxy)
		if useDMA {
			px.shipViaDMA(tp, reqID, txnSeq, payload, ctx, streamReuse)
		} else {
			px.shipViaRPC(tp, reqID, txnSeq, payload, 0)
		}
		px.awaitTxn(tp, reqID, pt, res)
	})
	return res
}

// invalidateCached drops read-cache entries for every object txn mutates,
// before the transaction ships — both the per-op and batched paths funnel
// through QueueTransaction, so no mutation can race a stale hit.
func (px *Proxy) invalidateCached(txn *objstore.Transaction) {
	if px.rcache == nil {
		return
	}
	for i := range txn.Ops {
		op := &txn.Ops[i]
		switch op.Code {
		case objstore.OpWrite, objstore.OpZero, objstore.OpTruncate, objstore.OpRemove:
			px.rcache.Invalidate(op.Collection, op.Object)
		case objstore.OpRmColl:
			px.rcache.InvalidateCollection(op.Collection)
		}
	}
}

// awaitTxn waits for the host commit notification and completes the
// caller's Result (shared tail of the batched and per-op paths).
func (px *Proxy) awaitTxn(tp *sim.Proc, reqID uint64, pt *pendingTxn, res *objstore.Result) {
	pt.done.Wait(tp)
	res.Err = codeToErr(pt.code)
	px.breakdown.Requests++
	px.breakdown.HostWrite += sim.Duration(pt.hostWriteNano)
	delete(px.pendingTxns, reqID)
	res.Done.Fire()
}

// shipViaDMA cuts payload into segments and pipelines stage+transfer. On a
// segment error the completed segments are preserved and the rest falls
// back to RPC (paper §4). ctx, when non-zero, parents per-segment
// dma-stage/dma spans and rides the segment tags to the host. streamReuse
// marks every segment as region-reusing (stream chunks move through the
// same pre-registered staging pool, like consecutive batch frames), so
// back-to-back chunks of a stream pay the amortized setup.
func (px *Proxy) shipViaDMA(p *sim.Proc, reqID, txnSeq uint64, payload *wire.Bufferlist, ctx trace.SpanID, streamReuse bool) {
	segBytes := px.dev.Buffers.BufferBytes()
	if max := px.engUp.Config().MaxTransferBytes; segBytes > max {
		segBytes = max
	}
	total := int((int64(payload.Length()) + segBytes - 1) / segBytes)
	if total == 0 {
		total = 1
	}
	px.ensureRegions(p)

	type segState struct {
		idx  int
		t    *doca.Transfer
		span trace.SpanID
	}
	inflight := make([]*segState, 0, total)
	failedFrom := -1
	// dmaStart..dmaEnd bounds the request's DMA phase on the wall clock;
	// DMA-wait is that span minus the actual copy time (Table 3's "waiting
	// time that occurs due to serial DMA transfers", including staging-
	// buffer waits).
	dmaStart := p.Now()
	var dmaEnd sim.Time
	var copySum sim.Duration
	for i := 0; i < total; i++ {
		off := int64(i) * segBytes
		n := int64(payload.Length()) - off
		if n > segBytes {
			n = segBytes
		}
		// Staging: wait for a free DMA-capable buffer, then memcpy.
		var stageSp trace.SpanID
		if ctx != 0 {
			stageSp = px.tr.Start(ctx, 0, trace.StageDMAStage, px.dev.Name)
		}
		acq := p.Now()
		px.dev.Buffers.Acquire(p)
		px.noteStage(n)
		px.tr.AddQueueWait(stageSp, p.Now().Sub(acq))
		px.tr.AddCPU(stageSp, px.dev.CPU.Name(),
			px.dev.CPU.Exec(p, px.thProxy, int64(float64(n)*px.cfg.StageCyclesPerByte)))
		if px.cfg.DisableMRCache {
			px.cc.Negotiate(p, px.hostMR)
		}
		var data *wire.Bufferlist
		if payload.Length() > 0 {
			data = payload.SubList(int(off), int(n))
		} else {
			data = &wire.Bufferlist{}
		}
		wireBytes := n
		if px.comp != nil {
			wireBytes = px.comp.Compress(p, px.dev.CPU, n)
		}
		px.tr.AddBytes(stageSp, n)
		px.tr.Finish(stageSp)
		var dmaSp trace.SpanID
		if ctx != 0 {
			dmaStage := trace.StageDMA
			if px.engUp.NumQueues() > 1 {
				dmaStage = trace.StageDMAQueue(px.engUp.QueueFor(reqID))
			}
			dmaSp = px.tr.Start(ctx, 0, dmaStage, px.dev.Name)
			px.tr.AddBytes(dmaSp, wireBytes)
		}
		t := &doca.Transfer{
			ReqID: reqID, Seg: i, TotalSegs: total, Bytes: wireBytes, Data: data,
			Src: px.dpuMR, Dst: px.hostMR, TraceCtx: uint64(ctx),
			ReuseSetup: streamReuse,
			Tag: segHeader{kind: segTxn, reqID: reqID, seg: i, total: total,
				txnSeq: txnSeq, traceCtx: uint64(ctx)},
		}
		if err := px.engUp.Submit(p, px.dev.CPU, t); err != nil {
			px.tr.Finish(dmaSp)
			px.dev.Buffers.Release()
			px.noteUnstage(n)
			failedFrom = i
			break
		}
		st := &segState{idx: i, t: t, span: dmaSp}
		inflight = append(inflight, st)
		if !px.cfg.DisablePipeline {
			// Release the buffer when the engine finishes with it; keep
			// staging the next segment meanwhile.
			px.env.Spawn(fmt.Sprintf("proxy-seg:%d/%d", reqID, i), func(sp *sim.Proc) {
				st.t.Done.Wait(sp)
				px.tr.Finish(st.span)
				px.dev.Buffers.Release()
				px.noteUnstage(n)
			})
		} else {
			t.Done.Wait(p)
			px.tr.Finish(dmaSp)
			px.dev.Buffers.Release()
			px.noteUnstage(n)
		}
	}
	// Collect completions and account DMA time.
	delivered := make([]bool, total)
	anyErr := failedFrom >= 0
	for _, st := range inflight {
		st.t.Done.Wait(p)
		copySum += st.t.CopyTime()
		if st.t.CompletedAt > dmaEnd {
			dmaEnd = st.t.CompletedAt
		}
		if st.t.Err != nil {
			anyErr = true
		} else {
			delivered[st.idx] = true
		}
	}
	px.breakdown.DMA += copySum
	if wait := dmaEnd.Sub(dmaStart) - copySum; wait > 0 {
		px.breakdown.DMAWait += wait
		if !anyErr {
			px.noteDMAWait(p, wait)
		}
	}
	if anyErr {
		// Preserve completed segments ("previously completed segments are
		// preserved to avoid redundant transmission", §4); resend only the
		// failed and never-attempted ones over RPC, then cool down.
		px.enterCooldown(p)
		for i := 0; i < total; i++ {
			if delivered[i] {
				continue
			}
			off := int64(i) * segBytes
			n := int64(payload.Length()) - off
			if n > segBytes {
				n = segBytes
			}
			px.stats.FallbackSegments++
			sub := payload.SubList(int(off), int(n))
			if _, err := px.rpc.Call(p, opSegFallback,
				encodeSegFallback(reqID, txnSeq, i, total, sub)); err != nil {
				// The control channel is the last resort; surface loudly.
				panic(fmt.Sprintf("core: RPC fallback failed for req %d: %v", reqID, err))
			}
		}
	}
}

// shipViaRPC sends payload segments over the control channel starting at
// segment fromSeg (0 = whole request, the cooldown path).
func (px *Proxy) shipViaRPC(p *sim.Proc, reqID, txnSeq uint64, payload *wire.Bufferlist, fromSeg int) {
	segBytes := px.dev.Buffers.BufferBytes()
	total := int((int64(payload.Length()) + segBytes - 1) / segBytes)
	if total == 0 {
		total = 1
	}
	for i := fromSeg; i < total; i++ {
		off := int64(i) * segBytes
		n := int64(payload.Length()) - off
		if n > segBytes {
			n = segBytes
		}
		var sub *wire.Bufferlist
		if payload.Length() > 0 {
			sub = payload.SubList(int(off), int(n))
		} else {
			sub = &wire.Bufferlist{}
		}
		if _, err := px.rpc.Call(p, opSegFallback,
			encodeSegFallback(reqID, txnSeq, i, total, sub)); err != nil {
			panic(fmt.Sprintf("core: RPC ship failed for req %d: %v", reqID, err))
		}
	}
}

// onTxnDone handles the host's commit notification.
func (px *Proxy) onTxnDone(p *sim.Proc, req *rpcchan.Request,
	respond func(*wire.Bufferlist, uint16)) {
	respond(nil, 0) // notify: no-op
	reqID, code, hostNanos, err := decodeTxnDone(req.Payload)
	if err != nil {
		panic("core: corrupt txn-done notification")
	}
	if pt, ok := px.pendingTxns[reqID]; ok {
		pt.code = code
		pt.hostWriteNano = hostNanos
		pt.done.Fire()
	}
}

// Read implements objstore.Store: the symmetric read data plane (§5.5).
// The request descriptor travels to the host via DMA; the host stages the
// object data and DMAs it back in <=2 MB segments which the DPU-side
// poller reassembles.
func (px *Proxy) Read(p *sim.Proc, coll, obj string, off, length uint64) (*wire.Bufferlist, error) {
	if px.rcache != nil {
		if bl, ok := px.rcache.Lookup(coll, obj, off, length); ok {
			// Served entirely from DPU DDR: DPU CPU for the lookup and
			// copy-out, no DMA descriptor, no host involvement at all.
			px.dev.CPU.ExecSelf(p, px.rcache.HitCost(int64(bl.Length())))
			return bl, nil
		}
	}
	px.nextReq++
	reqID := px.nextReq
	pr := &pendingRead{done: sim.NewEvent(px.env), segs: make(map[int]*wire.Bufferlist), total: -1}
	px.pendingReads[reqID] = pr
	defer delete(px.pendingReads, reqID)

	desc := (&readReq{ReqID: reqID, Coll: coll, Object: obj, Off: off, Length: length}).encode()
	if px.dmaAllowed(p) {
		px.stats.Reads++
		px.ensureRegions(p)
		t := &doca.Transfer{
			ReqID: reqID, TotalSegs: 1, Bytes: int64(desc.Length()), Data: desc,
			Src: px.dpuMR, Dst: px.hostMR,
			Tag: segHeader{kind: segReadReq, reqID: reqID, total: 1},
		}
		if err := px.engUp.Submit(p, px.dev.CPU, t); err != nil {
			return nil, err
		}
		t.Done.Wait(p)
		if t.Err != nil {
			px.enterCooldown(p)
			return px.readViaRPC(p, desc)
		}
		pr.done.Wait(p)
		if err := codeToErr(pr.code); err != nil {
			return nil, err
		}
		out := &wire.Bufferlist{}
		for i := 0; i < pr.total; i++ {
			out.AppendBufferlist(pr.segs[i])
		}
		px.cacheRead(coll, obj, off, length, out)
		return out, nil
	}
	bl, err := px.readViaRPC(p, desc)
	if err == nil {
		px.cacheRead(coll, obj, off, length, bl)
	}
	return bl, err
}

// cacheRead populates the read cache after a successful read. Only
// full-object reads (offset 0, length 0 = to EOF) reveal the object's
// complete content, so only those insert; ranged reads still hit against
// a previously cached full object.
func (px *Proxy) cacheRead(coll, obj string, off, length uint64, data *wire.Bufferlist) {
	if px.rcache == nil || off != 0 || length != 0 {
		return
	}
	px.rcache.Insert(coll, obj, data)
}

func (px *Proxy) readViaRPC(p *sim.Proc, desc *wire.Bufferlist) (*wire.Bufferlist, error) {
	px.stats.ReadFallbacks++
	resp, err := px.rpc.Call(p, opReadFallback, desc)
	if err != nil {
		if ce, ok := err.(rpcchan.CallError); ok {
			return nil, codeToErr(ce.Code)
		}
		return nil, err
	}
	return resp, nil
}

// downPollLoop is the DPU-side poller consuming host->DPU DMA completions
// (read data segments).
func (px *Proxy) downPollLoop(p *sim.Proc) {
	th := sim.NewThread("dpu-dma-poll", ProxyThreadCat)
	p.SetThread(th)
	for {
		t := px.engDown.Completions().Pop(p)
		hdr, ok := t.Tag.(segHeader)
		if !ok || hdr.kind != segReadData {
			continue
		}
		px.dev.CPU.Exec(p, th, 4_000)
		pr, ok := px.pendingReads[hdr.reqID]
		if !ok {
			continue
		}
		if t.Err != nil {
			pr.code = rcIO
			pr.done.Fire()
			continue
		}
		pr.segs[hdr.seg] = t.Data
		pr.total = hdr.total
		if len(pr.segs) == pr.total {
			pr.done.Fire()
		}
	}
}

// onReadDone handles the host's read-completion notification (errors and
// zero-length reads, which produce no data segments).
func (px *Proxy) onReadDone(p *sim.Proc, req *rpcchan.Request,
	respond func(*wire.Bufferlist, uint16)) {
	respond(nil, 0)
	reqID, code, total, err := decodeReadDone(req.Payload)
	if err != nil {
		panic("core: corrupt read-done notification")
	}
	pr, ok := px.pendingReads[reqID]
	if !ok {
		return
	}
	if code != rcOK || total == 0 {
		pr.code = code
		pr.total = 0
		pr.done.Fire()
	}
}

// Stat implements objstore.Store over the control plane.
func (px *Proxy) Stat(p *sim.Proc, coll, obj string) (objstore.StatInfo, error) {
	px.stats.ControlCalls++
	px.dev.CPU.ExecSelf(p, px.cfg.ControlCallCycles)
	resp, err := px.rpc.Call(p, opStat, encodeObjRef(coll, obj))
	if err != nil {
		if ce, ok := err.(rpcchan.CallError); ok {
			return objstore.StatInfo{}, codeToErr(ce.Code)
		}
		return objstore.StatInfo{}, err
	}
	return decodeStatResp(resp)
}

// Exists implements objstore.Store over the control plane.
func (px *Proxy) Exists(p *sim.Proc, coll, obj string) bool {
	px.stats.ControlCalls++
	px.dev.CPU.ExecSelf(p, px.cfg.ControlCallCycles)
	resp, err := px.rpc.Call(p, opExists, encodeObjRef(coll, obj))
	if err != nil {
		return false
	}
	return resp.Length() == 1 && resp.Bytes()[0] == 1
}

// OmapGet implements objstore.Store over the control plane.
func (px *Proxy) OmapGet(p *sim.Proc, coll, obj, key string) ([]byte, error) {
	px.stats.ControlCalls++
	px.dev.CPU.ExecSelf(p, px.cfg.ControlCallCycles)
	resp, err := px.rpc.Call(p, opOmapGet, encodeOmapRef(coll, obj, key))
	if err != nil {
		if ce, ok := err.(rpcchan.CallError); ok {
			return nil, codeToErr(ce.Code)
		}
		return nil, err
	}
	return resp.Bytes(), nil
}

// OmapKeys implements objstore.Store over the control plane.
func (px *Proxy) OmapKeys(p *sim.Proc, coll, obj string) ([]string, error) {
	px.stats.ControlCalls++
	px.dev.CPU.ExecSelf(p, px.cfg.ControlCallCycles)
	resp, err := px.rpc.Call(p, opOmapKeys, encodeObjRef(coll, obj))
	if err != nil {
		if ce, ok := err.(rpcchan.CallError); ok {
			return nil, codeToErr(ce.Code)
		}
		return nil, err
	}
	return decodeList(resp)
}

// List implements objstore.Store over the control plane.
func (px *Proxy) List(p *sim.Proc, coll string) ([]string, error) {
	px.stats.ControlCalls++
	px.dev.CPU.ExecSelf(p, px.cfg.ControlCallCycles)
	resp, err := px.rpc.Call(p, opList, encodeObjRef(coll, ""))
	if err != nil {
		if ce, ok := err.(rpcchan.CallError); ok {
			return nil, codeToErr(ce.Code)
		}
		return nil, err
	}
	return decodeList(resp)
}

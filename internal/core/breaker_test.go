package core

import (
	"fmt"
	"testing"

	"doceph/internal/dpu"
	"doceph/internal/objstore"
	"doceph/internal/sim"
)

func breakerRig(cfg dpu.BreakerConfig) *coreRig {
	cfg.Enable = true
	return newCoreRig(BridgeConfig{Breaker: cfg})
}

// TestBreakerToleratesIsolatedFailure: unlike the legacy cooldown, one DMA
// error below the threshold keeps the data plane on — the failed segment is
// resent over RPC but the very next write rides DMA again.
func TestBreakerToleratesIsolatedFailure(t *testing.T) {
	r := breakerRig(dpu.BreakerConfig{FailureThreshold: 3})
	r.run(t, func(p *sim.Proc) {
		px := r.bridge.Proxy
		r.bridge.EngUp.FailNext(1)
		data := seeded(100_000, 4)
		txn := (&objstore.Transaction{}).MkColl("pg.0").Write("pg.0", "o1", 0, data)
		if err := commitP(t, p, px, txn); err != nil {
			t.Fatalf("commit through fallback: %v", err)
		}
		if px.Stats().FallbackSegments == 0 {
			t.Fatal("failed segment not resent over RPC")
		}
		if !px.DMAHealthy() {
			t.Fatal("one failure below threshold tripped the breaker")
		}
		before := px.Stats().DataPlaneTxns
		txn2 := (&objstore.Transaction{}).Write("pg.0", "o2", 0, seeded(50_000, 5))
		if err := commitP(t, p, px, txn2); err != nil {
			t.Fatal(err)
		}
		if px.Stats().DataPlaneTxns != before+1 {
			t.Fatal("next write did not use DMA after isolated failure")
		}
	})
}

// TestBreakerOpensFailsOverAndReEnrolls drives the full open -> half-open ->
// closed arc through the data path: a failure burst opens the breaker and
// writes transparently fail over to the host RPC path (no errors surface to
// the caller); once the fault clears and OpenTimeout passes, probes re-close
// it and traffic returns to DMA.
func TestBreakerOpensFailsOverAndReEnrolls(t *testing.T) {
	r := breakerRig(dpu.BreakerConfig{
		Window: 10 * sim.Second, FailureThreshold: 2,
		OpenTimeout: 2 * sim.Second, ProbeInterval: 200 * sim.Millisecond, CloseProbes: 2,
	})
	r.run(t, func(p *sim.Proc) {
		px := r.bridge.Proxy
		// Seed the collection over a healthy path, then inject the fault.
		if err := commitP(t, p, px, (&objstore.Transaction{}).MkColl("pg.0")); err != nil {
			t.Fatal(err)
		}
		r.bridge.EngUp.SetFailProb(1)
		for i := 0; i < 4; i++ {
			txn := (&objstore.Transaction{}).
				Write("pg.0", fmt.Sprintf("f-%d", i), 0, seeded(60_000, byte(i)))
			if err := commitP(t, p, px, txn); err != nil {
				t.Fatalf("write %d failed despite failover: %v", i, err)
			}
		}
		br := px.Breaker()
		if br.State() != dpu.BreakerOpen {
			t.Fatalf("breaker %v after failure burst, want open", br.State())
		}
		if px.Stats().FallbackTxns == 0 {
			t.Fatal("no writes routed over the host path while open")
		}
		// Fault clears; after OpenTimeout the probes re-enroll the session.
		r.bridge.EngUp.SetFailProb(0)
		p.Wait(3 * sim.Second)
		for i := 0; i < 4; i++ {
			txn := (&objstore.Transaction{}).
				Write("pg.0", fmt.Sprintf("r-%d", i), 0, seeded(60_000, byte(10+i)))
			if err := commitP(t, p, px, txn); err != nil {
				t.Fatal(err)
			}
			p.Wait(300 * sim.Millisecond)
		}
		if br.State() != dpu.BreakerClosed {
			t.Fatalf("breaker %v after recovery probes, want closed", br.State())
		}
		s := br.Stats()
		if s.Opens == 0 || s.HalfOpens == 0 || s.Closes == 0 {
			t.Fatalf("missing transitions: %+v", s)
		}
		if s.ProbeSuccesses < 2 {
			t.Fatalf("probe successes %d, want >= CloseProbes", s.ProbeSuccesses)
		}
		// Closed again: traffic is back on DMA.
		before := px.Stats().DataPlaneTxns
		txn := (&objstore.Transaction{}).Write("pg.0", "post", 0, seeded(60_000, 99))
		if err := commitP(t, p, px, txn); err != nil {
			t.Fatal(err)
		}
		if px.Stats().DataPlaneTxns != before+1 {
			t.Fatal("re-enrolled session not using DMA")
		}
		// All objects written through every phase must be intact on the host.
		for i := 0; i < 4; i++ {
			for _, pfx := range []string{"f", "r"} {
				if _, err := r.store.Stat(p, "pg.0", fmt.Sprintf("%s-%d", pfx, i)); err != nil {
					t.Fatalf("%s-%d lost across failover: %v", pfx, i, err)
				}
			}
		}
	})
}

// TestBreakerDisabledKeepsLegacyCooldown: without the breaker the first
// failure still enters the legacy cooldown (golden-path behaviour).
func TestBreakerDisabledKeepsLegacyCooldown(t *testing.T) {
	r := newCoreRig(BridgeConfig{})
	r.run(t, func(p *sim.Proc) {
		px := r.bridge.Proxy
		if px.Breaker() != nil {
			t.Fatal("breaker constructed despite Enable=false")
		}
		r.bridge.EngUp.FailNext(1)
		txn := (&objstore.Transaction{}).MkColl("pg.0").Write("pg.0", "o", 0, seeded(60_000, 1))
		if err := commitP(t, p, px, txn); err != nil {
			t.Fatal(err)
		}
		if px.DMAHealthy() {
			t.Fatal("legacy cooldown not entered on first failure")
		}
		if px.Stats().CooldownEntries != 1 {
			t.Fatalf("cooldown entries = %d, want 1", px.Stats().CooldownEntries)
		}
	})
}

package rbd

import (
	"bytes"
	"errors"
	"testing"

	"doceph/internal/cluster"
	"doceph/internal/sim"
	"doceph/internal/wire"
)

func runOnCluster(t *testing.T, mode cluster.Mode, body func(p *sim.Proc, cl *cluster.Cluster)) {
	t.Helper()
	cl := cluster.New(cluster.Config{Mode: mode})
	done := false
	cl.Env.Spawn("rbd-test", func(p *sim.Proc) {
		p.SetThread(sim.NewThread("rbd-test", "client"))
		body(p, cl)
		done = true
	})
	err := cl.Env.RunUntil(sim.Time(10 * 60 * sim.Second))
	if !done {
		t.Fatalf("body did not finish: %v", err)
	}
	cl.Shutdown()
}

func pattern(n int, seed byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(int(seed) + i*37)
	}
	return b
}

func TestDeviceCreateOpenRemove(t *testing.T) {
	runOnCluster(t, cluster.Baseline, func(p *sim.Proc, cl *cluster.Cluster) {
		dev, err := Create(p, cl.Client, "d1", 8<<20, DeviceConfig{ObjectBytes: 1 << 20})
		if err != nil {
			t.Fatal(err)
		}
		if dev.Name() != "d1" || dev.Size() != 8<<20 || dev.ObjectBytes() != 1<<20 {
			t.Fatalf("geometry: %s %d/%d", dev.Name(), dev.Size(), dev.ObjectBytes())
		}
		if _, err := Create(p, cl.Client, "d1", 1<<20, DeviceConfig{}); !errors.Is(err, ErrExists) {
			t.Fatalf("duplicate create: %v", err)
		}
		re, err := Open(p, cl.Client, "d1", DeviceConfig{})
		if err != nil || re.Size() != 8<<20 {
			t.Fatalf("reopen: err=%v", err)
		}
		if err := Remove(p, cl.Client, "d1"); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(p, cl.Client, "d1", DeviceConfig{}); !errors.Is(err, ErrNotFound) {
			t.Fatalf("open after remove: %v", err)
		}
	})
}

func TestDeviceBoundsAndZeroLength(t *testing.T) {
	runOnCluster(t, cluster.Baseline, func(p *sim.Proc, cl *cluster.Cluster) {
		dev, err := Create(p, cl.Client, "b", 1<<20, DeviceConfig{ObjectBytes: 256 << 10})
		if err != nil {
			t.Fatal(err)
		}
		got, err := dev.ReadAt(p, 1<<20, 0)
		if err != nil || got.Length() != 0 {
			t.Fatalf("zero-length read at EOF: len=%d err=%v", got.Length(), err)
		}
		if _, err := dev.ReadAt(p, 1<<20, 1); !errors.Is(err, ErrOutOfBounds) {
			t.Fatalf("read past EOF: %v", err)
		}
		if _, err := dev.ReadAt(p, -1, 4); !errors.Is(err, ErrOutOfBounds) {
			t.Fatalf("negative read: %v", err)
		}
		if err := dev.WriteAt(p, wire.FromBytes(make([]byte, 8)), 1<<20-4); !errors.Is(err, ErrOutOfBounds) {
			t.Fatalf("write past EOF: %v", err)
		}
	})
}

// TestCacheServesExactContent is the cache's correctness core: reads
// through the cache are byte-identical to the uncached device for a
// mix of aligned, straddling and sub-page ranges, and the second pass of
// each is served without touching the cluster.
func TestCacheServesExactContent(t *testing.T) {
	runOnCluster(t, cluster.DoCeph, func(p *sim.Proc, cl *cluster.Cluster) {
		const page = 4 << 10
		dev, err := Create(p, cl.Client, "cc", 4<<20, DeviceConfig{
			ObjectBytes: 1 << 20,
			Cache:       CacheConfig{Enable: true, PageBytes: page},
		})
		if err != nil {
			t.Fatal(err)
		}
		content := pattern(2<<20, 11)
		if err := dev.WriteAt(p, wire.FromBytes(content), 0); err != nil {
			t.Fatal(err)
		}
		ranges := []struct{ off, n int64 }{
			{0, page},                // page-aligned
			{page / 2, page},         // straddles a page boundary
			{3 * page, 3 * page},     // multi-page
			{1<<20 - page, 2 * page}, // straddles an object boundary
			{5*page + 17, 100},       // sub-page interior
		}
		for _, rg := range ranges {
			before := dev.Stats().CacheHits
			got, err := dev.ReadAt(p, rg.off, rg.n)
			if err != nil {
				t.Fatalf("read [%d,%d): %v", rg.off, rg.off+rg.n, err)
			}
			if !bytes.Equal(got.Bytes(), content[rg.off:rg.off+rg.n]) {
				t.Fatalf("range [%d,%d): content mismatch", rg.off, rg.off+rg.n)
			}
			// The write-through update cached the whole written range, so
			// every one of these first reads already hits.
			if dev.Stats().CacheHits != before+1 {
				t.Fatalf("range [%d,%d): expected cache hit (hits %d -> %d)",
					rg.off, rg.off+rg.n, before, dev.Stats().CacheHits)
			}
		}
	})
}

// TestCachePopulatesFromReads exercises the miss->populate->hit cycle on
// data the cache has never seen written (a freshly opened device).
func TestCachePopulatesFromReads(t *testing.T) {
	runOnCluster(t, cluster.DoCeph, func(p *sim.Proc, cl *cluster.Cluster) {
		const page = 4 << 10
		// Write through an uncached device, then reopen with the cache on:
		// the cache starts cold.
		plain, err := Create(p, cl.Client, "pp", 1<<20, DeviceConfig{ObjectBytes: 256 << 10})
		if err != nil {
			t.Fatal(err)
		}
		content := pattern(1<<20, 23)
		if err := plain.WriteAt(p, wire.FromBytes(content), 0); err != nil {
			t.Fatal(err)
		}
		dev, err := Open(p, cl.Client, "pp", DeviceConfig{
			ObjectBytes: 256 << 10,
			Cache:       CacheConfig{Enable: true, PageBytes: page},
		})
		if err != nil {
			t.Fatal(err)
		}
		// First read misses and populates; second is all-cached.
		for pass := 0; pass < 2; pass++ {
			got, err := dev.ReadAt(p, 2*page, 4*page)
			if err != nil || !bytes.Equal(got.Bytes(), content[2*page:6*page]) {
				t.Fatalf("pass %d: mismatch err=%v", pass, err)
			}
		}
		st := dev.Stats()
		if st.CacheMisses != 1 || st.CacheHits != 1 {
			t.Fatalf("hit/miss: %+v", st)
		}
		// A sub-page read inside the populated range also hits.
		if got, err := dev.ReadAt(p, 3*page+7, 99); err != nil ||
			!bytes.Equal(got.Bytes(), content[3*page+7:3*page+106]) {
			t.Fatalf("sub-page cached read: err=%v", err)
		}
		if dev.Stats().CacheHits != 2 {
			t.Fatalf("sub-page read missed: %+v", dev.Stats())
		}
		// A read partially outside the cached pages misses but stays exact.
		if got, err := dev.ReadAt(p, 5*page, 4*page); err != nil ||
			!bytes.Equal(got.Bytes(), content[5*page:9*page]) {
			t.Fatalf("partially cached read: err=%v", err)
		}
	})
}

// TestCacheWriteThroughCoherence: overwriting cached data through the same
// device must never serve stale bytes.
func TestCacheWriteThroughCoherence(t *testing.T) {
	runOnCluster(t, cluster.DoCeph, func(p *sim.Proc, cl *cluster.Cluster) {
		const page = 4 << 10
		dev, err := Create(p, cl.Client, "wc", 1<<20, DeviceConfig{
			ObjectBytes: 256 << 10,
			Cache:       CacheConfig{Enable: true, PageBytes: page},
		})
		if err != nil {
			t.Fatal(err)
		}
		v1 := pattern(8*page, 1)
		if err := dev.WriteAt(p, wire.FromBytes(v1), 0); err != nil {
			t.Fatal(err)
		}
		if _, err := dev.ReadAt(p, 0, 8*page); err != nil {
			t.Fatal(err)
		}
		// Overwrite a sub-page slice in the middle (patches the cached page)
		// and a full page (re-stores it).
		v2 := pattern(100, 2)
		if err := dev.WriteAt(p, wire.FromBytes(v2), 3*page+50); err != nil {
			t.Fatal(err)
		}
		v3 := pattern(page, 3)
		if err := dev.WriteAt(p, wire.FromBytes(v3), 5*page); err != nil {
			t.Fatal(err)
		}
		want := append([]byte(nil), v1...)
		copy(want[3*page+50:], v2)
		copy(want[5*page:], v3)
		got, err := dev.ReadAt(p, 0, 8*page)
		if err != nil || !bytes.Equal(got.Bytes(), want) {
			t.Fatalf("post-overwrite read stale or failed: err=%v", err)
		}
		// That read should still have been a pure cache hit.
		if st := dev.Stats(); st.CacheMisses != 0 {
			t.Fatalf("unexpected misses: %+v", st)
		}
	})
}

// TestCacheEvictionBounded: the cache never exceeds its capacity and
// evicted ranges fall back to the cluster with exact content.
func TestCacheEvictionBounded(t *testing.T) {
	runOnCluster(t, cluster.DoCeph, func(p *sim.Proc, cl *cluster.Cluster) {
		const page = 4 << 10
		const capBytes = 8 * page
		dev, err := Create(p, cl.Client, "ev", 1<<20, DeviceConfig{
			ObjectBytes: 256 << 10,
			Cache:       CacheConfig{Enable: true, PageBytes: page, CapacityBytes: capBytes},
		})
		if err != nil {
			t.Fatal(err)
		}
		content := pattern(64*page, 7)
		if err := dev.WriteAt(p, wire.FromBytes(content), 0); err != nil {
			t.Fatal(err)
		}
		if got := dev.Stats().CachedBytes; got > capBytes {
			t.Fatalf("cache over capacity after write: %d > %d", got, capBytes)
		}
		// Touch everything; evicted pages re-fetch and re-populate without
		// ever crossing the bound or corrupting data.
		for i := int64(0); i < 64; i++ {
			got, err := dev.ReadAt(p, i*page, page)
			if err != nil || !bytes.Equal(got.Bytes(), content[i*page:(i+1)*page]) {
				t.Fatalf("page %d: err=%v", i, err)
			}
			if b := dev.Stats().CachedBytes; b > capBytes {
				t.Fatalf("cache over capacity at page %d: %d", i, b)
			}
		}
		if st := dev.Stats(); st.CacheMisses == 0 {
			t.Fatalf("eviction sweep never missed: %+v", st)
		}
		// The most recently populated page is still resident.
		before := dev.Stats().CacheHits
		if _, err := dev.ReadAt(p, 63*page, page); err != nil {
			t.Fatal(err)
		}
		if dev.Stats().CacheHits != before+1 {
			t.Fatalf("freshly populated page evicted: %+v", dev.Stats())
		}
	})
}

// TestSparseReadsThroughCache: zero-filled holes are logically real
// content and may be cached; both passes must agree.
func TestSparseReadsThroughCache(t *testing.T) {
	runOnCluster(t, cluster.Baseline, func(p *sim.Proc, cl *cluster.Cluster) {
		const page = 4 << 10
		dev, err := Create(p, cl.Client, "sp", 1<<20, DeviceConfig{
			ObjectBytes: 256 << 10,
			Cache:       CacheConfig{Enable: true, PageBytes: page},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := dev.WriteAt(p, wire.FromBytes(pattern(100, 9)), 10*page); err != nil {
			t.Fatal(err)
		}
		want := make([]byte, 4*page)
		copy(want[2*page:], pattern(100, 9))
		for pass := 0; pass < 2; pass++ {
			got, err := dev.ReadAt(p, 8*page, 4*page)
			if err != nil || !bytes.Equal(got.Bytes(), want) {
				t.Fatalf("pass %d sparse read: err=%v", pass, err)
			}
		}
		if st := dev.Stats(); st.CacheHits != 1 {
			t.Fatalf("second sparse read did not hit: %+v", st)
		}
	})
}

// Package rbd assembles an RBD-style block device on the striper: a
// fixed-size virtual disk striped across RADOS objects (librbd's layout,
// via internal/striper) fronted by an optional client-side write-through
// page cache (librbd's rbd_cache with writethrough semantics: every write
// reaches the cluster before completing, so durability equals the
// uncached device, while hot reads are absorbed client-side). This is the
// hyper-converged block workload shape Ra's all-flash Ceph study
// measures, grown from the examples/blockdevice seed sketch.
package rbd

import (
	"container/list"

	"doceph/internal/rados"
	"doceph/internal/sim"
	"doceph/internal/striper"
	"doceph/internal/wire"
)

// Errors surfaced by the device (striper errors pass through).
var (
	ErrExists      = striper.ErrExists
	ErrNotFound    = striper.ErrNotFound
	ErrOutOfBounds = striper.ErrOutOfBounds
)

// CacheConfig tunes the client-side page cache (off by default).
type CacheConfig struct {
	// Enable turns the write-through cache on.
	Enable bool
	// CapacityBytes bounds cached page volume (default 32 MiB).
	CapacityBytes int64
	// PageBytes is the cache granularity (default 64 KiB). Only ranges
	// covering whole pages are cached, so a device whose size is not a
	// page multiple simply never caches its tail.
	PageBytes int64
}

func (c CacheConfig) withDefaults() CacheConfig {
	if c.CapacityBytes == 0 {
		c.CapacityBytes = 32 << 20
	}
	if c.PageBytes == 0 {
		c.PageBytes = 64 << 10
	}
	return c
}

// DeviceConfig describes a block device.
type DeviceConfig struct {
	// ObjectBytes is the stripe object size (striper.DefaultObjectBytes
	// if zero).
	ObjectBytes int64
	// Cache configures the client-side write-through cache.
	Cache CacheConfig
}

// Stats counts device activity.
type Stats struct {
	ReadOps      int64
	WriteOps     int64
	BytesRead    int64
	BytesWritten int64
	// CacheHits counts reads served entirely from cached pages;
	// CacheMisses counts reads that went to the cluster.
	CacheHits   int64
	CacheMisses int64
	// CachedBytes is the current cached page volume.
	CachedBytes int64
}

// Device is an open block device.
type Device struct {
	img   *striper.Image
	cfg   DeviceConfig
	cache *pageCache
	stats Stats
}

// Create makes a new block device image of sizeBytes and returns it open.
func Create(p *sim.Proc, client *rados.Client, name string, sizeBytes int64, cfg DeviceConfig) (*Device, error) {
	img, err := striper.Create(p, client, name, sizeBytes, cfg.ObjectBytes)
	if err != nil {
		return nil, err
	}
	return newDevice(img, cfg), nil
}

// Open opens an existing block device image.
func Open(p *sim.Proc, client *rados.Client, name string, cfg DeviceConfig) (*Device, error) {
	img, err := striper.Open(p, client, name)
	if err != nil {
		return nil, err
	}
	return newDevice(img, cfg), nil
}

// Remove deletes the backing image.
func Remove(p *sim.Proc, client *rados.Client, name string) error {
	return striper.Remove(p, client, name)
}

func newDevice(img *striper.Image, cfg DeviceConfig) *Device {
	d := &Device{img: img, cfg: cfg}
	if cfg.Cache.Enable {
		d.cache = newPageCache(cfg.Cache.withDefaults())
	}
	return d
}

// Name returns the image name.
func (d *Device) Name() string { return d.img.Name() }

// Size returns the device size in bytes.
func (d *Device) Size() int64 { return d.img.Size() }

// ObjectBytes returns the stripe object size.
func (d *Device) ObjectBytes() int64 { return d.img.ObjectBytes() }

// Image exposes the backing striper image (placement inspection).
func (d *Device) Image() *striper.Image { return d.img }

// Stats returns a snapshot of the device counters.
func (d *Device) Stats() Stats {
	s := d.stats
	if d.cache != nil {
		s.CachedBytes = d.cache.bytes
	}
	return s
}

// WriteAt stores data at logical offset off. Write-through: the cluster
// write completes before the cache is updated, so a completed write is
// always durable; the cache then absorbs re-reads of the written range.
func (d *Device) WriteAt(p *sim.Proc, data *wire.Bufferlist, off int64) error {
	if err := d.img.WriteAt(p, data, off); err != nil {
		// Conservative: the cluster may hold any prefix of the write, so
		// cached pages under it can no longer be trusted.
		if d.cache != nil {
			d.cache.invalidateRange(off, int64(data.Length()))
		}
		return err
	}
	d.stats.WriteOps++
	d.stats.BytesWritten += int64(data.Length())
	if d.cache != nil {
		d.cache.update(off, data.Bytes())
	}
	return nil
}

// ReadAt returns length bytes at logical offset off; unwritten regions
// read as zeros. With the cache on, a read fully covered by cached pages
// never reaches the cluster.
func (d *Device) ReadAt(p *sim.Proc, off, length int64) (*wire.Bufferlist, error) {
	if off < 0 || length < 0 || off+length > d.img.Size() {
		return nil, ErrOutOfBounds
	}
	d.stats.ReadOps++
	if length == 0 {
		return &wire.Bufferlist{}, nil
	}
	if d.cache != nil {
		if b, ok := d.cache.read(off, length); ok {
			d.stats.CacheHits++
			d.stats.BytesRead += length
			return wire.FromBytes(b), nil
		}
		d.stats.CacheMisses++
	}
	bl, err := d.img.ReadAt(p, off, length)
	if err != nil {
		return nil, err
	}
	d.stats.BytesRead += int64(bl.Length())
	if d.cache != nil {
		d.cache.populate(off, bl.Bytes())
	}
	return bl, nil
}

// pageCache is a deterministic LRU of fixed-size pages keyed by page
// index. Every cached page is exactly PageBytes long by construction
// (only fully covered pages are stored), and pages own their storage
// (copies in and out), so cached content is immune to later buffer
// reuse. Eviction follows access order only, never map iteration,
// keeping runs bit-identical.
type pageCache struct {
	cfg   CacheConfig
	pages map[int64]*cachePage
	lru   *list.List // front = most recent
	bytes int64
}

type cachePage struct {
	idx  int64
	data []byte
	elem *list.Element
}

func newPageCache(cfg CacheConfig) *pageCache {
	return &pageCache{cfg: cfg, pages: make(map[int64]*cachePage), lru: list.New()}
}

// read assembles [off, off+length) from cached pages; false if any byte
// of the range is not cached. Coverage is verified before recency is
// touched, so a miss does not perturb the eviction order.
func (c *pageCache) read(off, length int64) ([]byte, bool) {
	pb := c.cfg.PageBytes
	first, last := off/pb, (off+length-1)/pb
	for i := first; i <= last; i++ {
		if _, ok := c.pages[i]; !ok {
			return nil, false
		}
	}
	out := make([]byte, length)
	for i := first; i <= last; i++ {
		pg := c.pages[i]
		c.lru.MoveToFront(pg.elem)
		lo, hi := maxI64(off, i*pb), minI64(off+length, (i+1)*pb)
		copy(out[lo-off:hi-off], pg.data[lo-i*pb:hi-i*pb])
	}
	return out, true
}

// populate stores the pages fully covered by data read from the cluster
// at logical offset off (partial head/tail pages are skipped — their
// remaining bytes are unknown).
func (c *pageCache) populate(off int64, data []byte) {
	pb := c.cfg.PageBytes
	end := off + int64(len(data))
	for i := off / pb; i*pb < end; i++ {
		lo, hi := i*pb, (i+1)*pb
		if lo < off || hi > end {
			continue
		}
		c.store(i, data[lo-off:hi-off])
	}
}

// update applies a completed write at logical offset off: fully covered
// pages are (re)stored, partially covered pages are patched in place if
// present and left uncached otherwise (their uncovered bytes are
// unknown).
func (c *pageCache) update(off int64, data []byte) {
	pb := c.cfg.PageBytes
	end := off + int64(len(data))
	for i := off / pb; i*pb < end; i++ {
		lo, hi := maxI64(off, i*pb), minI64(end, (i+1)*pb)
		if lo == i*pb && hi == (i+1)*pb {
			c.store(i, data[lo-off:hi-off])
			continue
		}
		pg, ok := c.pages[i]
		if !ok {
			continue
		}
		copy(pg.data[lo-i*pb:hi-i*pb], data[lo-off:hi-off])
		c.lru.MoveToFront(pg.elem)
	}
}

func (c *pageCache) invalidateRange(off, length int64) {
	if length <= 0 {
		return
	}
	pb := c.cfg.PageBytes
	for i := off / pb; i*pb < off+length; i++ {
		if pg, ok := c.pages[i]; ok {
			c.drop(pg)
		}
	}
}

func (c *pageCache) store(idx int64, data []byte) {
	if pg, ok := c.pages[idx]; ok {
		copy(pg.data, data)
		c.lru.MoveToFront(pg.elem)
	} else {
		pg := &cachePage{idx: idx, data: append([]byte(nil), data...)}
		pg.elem = c.lru.PushFront(pg)
		c.pages[idx] = pg
		c.bytes += int64(len(data))
	}
	for c.bytes > c.cfg.CapacityBytes {
		back := c.lru.Back()
		if back == nil {
			return
		}
		c.drop(back.Value.(*cachePage))
	}
}

func (c *pageCache) drop(pg *cachePage) {
	c.lru.Remove(pg.elem)
	delete(c.pages, pg.idx)
	c.bytes -= int64(len(pg.data))
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

package messenger

import (
	"testing"

	"doceph/internal/cephmsg"
	"doceph/internal/sim"
	"doceph/internal/wire"
)

func bigPayload(n int) *wire.Bufferlist {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i*131 + i>>9)
	}
	return wire.FromBytes(b)
}

// An enabled sender talking to a sink-less receiver must be invisible to
// the dispatcher: the reconstructed op arrives whole and byte-identical.
func TestStreamReassemblyTransparent(t *testing.T) {
	r := newRig(Config{WireEncode: true,
		Stream: StreamConfig{Enable: true, ChunkBytes: 64 << 10, Window: 2}})
	payload := bigPayload(500_000)
	wantCRC := payload.CRC32C()
	var got *cephmsg.MOSDOp
	r.b.SetDispatcher(func(p *sim.Proc, src string, m cephmsg.Message) {
		got = m.(*cephmsg.MOSDOp)
	})
	r.env.Spawn("starter", func(p *sim.Proc) {
		r.a.Send("ent.b", &cephmsg.MOSDOp{
			Tid: 9, Object: "obj", Op: cephmsg.OpWrite,
			Length: uint64(payload.Length()), Data: payload,
		})
	})
	r.run(t, sim.Second)
	if got == nil {
		t.Fatal("op never dispatched")
	}
	if got.Tid != 9 || got.Object != "obj" || got.Data.Length() != payload.Length() {
		t.Fatalf("reconstructed op mismatch: %+v", got)
	}
	if got.Data.CRC32C() != wantCRC {
		t.Fatalf("payload corrupted: crc=%08x want %08x", got.Data.CRC32C(), wantCRC)
	}
	wantChunks := int64((500_000 + 64<<10 - 1) / (64 << 10))
	as, bs := r.a.Stats(), r.b.Stats()
	if as.StreamsSent != 1 || as.StreamChunksSent != wantChunks {
		t.Fatalf("sender stats: %+v want 1 stream / %d chunks", as, wantChunks)
	}
	if bs.StreamsRecv != 1 || bs.StreamChunksRecv != wantChunks {
		t.Fatalf("receiver stats: %+v want 1 stream / %d chunks", bs, wantChunks)
	}
}

// Payloads at or below the chunk size must bypass streaming entirely.
func TestStreamSmallWritesBypass(t *testing.T) {
	r := newRig(Config{Stream: StreamConfig{Enable: true, ChunkBytes: 1 << 20}})
	var got bool
	r.b.SetDispatcher(func(p *sim.Proc, src string, m cephmsg.Message) {
		if _, ok := m.(*cephmsg.MOSDOp); ok {
			got = true
		}
	})
	r.env.Spawn("starter", func(p *sim.Proc) {
		r.a.Send("ent.b", &cephmsg.MOSDOp{Tid: 1, Object: "o", Op: cephmsg.OpWrite,
			Data: wire.FromBytes(make([]byte, 1<<20))})
	})
	r.run(t, sim.Second)
	if !got {
		t.Fatal("op not delivered")
	}
	if s := r.a.Stats(); s.StreamsSent != 0 {
		t.Fatalf("small write was streamed: %+v", s)
	}
}

// testSink hands every accepted stream to a consumer goroutine that records
// chunk arrivals and paces credits explicitly.
type testSink struct {
	env     *sim.Env
	hold    bool // withhold credits until released
	release *sim.Event

	chunks   []int
	total    int64
	ended    bool
	aborted  bool
	accepted int
}

func (s *testSink) OpenStream(src string, in *InStream) bool {
	s.accepted++
	s.env.Spawn("sink-consumer", func(p *sim.Proc) {
		for {
			data, done, aborted := in.Next(p)
			if done {
				s.ended = true
				return
			}
			if aborted {
				s.aborted = true
				return
			}
			s.chunks = append(s.chunks, data.Length())
			s.total += int64(data.Length())
			if s.hold {
				s.release.Wait(p)
			}
			in.Credit(1)
		}
	})
	return true
}

// With a sink installed, chunks arrive incrementally and the consumer sees
// every byte exactly once.
func TestStreamSinkIncrementalDelivery(t *testing.T) {
	r := newRig(Config{Stream: StreamConfig{Enable: true, ChunkBytes: 100_000, Window: 3}})
	sink := &testSink{env: r.env}
	r.b.SetStreamSink(sink)
	r.b.SetDispatcher(func(p *sim.Proc, src string, m cephmsg.Message) {
		t.Errorf("unexpected dispatch of %T in sink mode", m)
	})
	payload := bigPayload(450_000)
	r.env.Spawn("starter", func(p *sim.Proc) {
		r.a.Send("ent.b", &cephmsg.MOSDOp{Tid: 3, Object: "o", Op: cephmsg.OpWrite,
			Length: 450_000, Data: payload})
	})
	r.run(t, sim.Second)
	if sink.accepted != 1 || !sink.ended || sink.aborted {
		t.Fatalf("sink state: %+v", sink)
	}
	if len(sink.chunks) != 5 || sink.total != 450_000 {
		t.Fatalf("chunks=%v total=%d", sink.chunks, sink.total)
	}
	for i, n := range sink.chunks {
		want := 100_000
		if i == 4 {
			want = 50_000
		}
		if n != want {
			t.Fatalf("chunk %d: %d bytes, want %d", i, n, want)
		}
	}
}

// A consumer that withholds credits must stall the sender at exactly the
// window: that is the backpressure bound on staging memory.
func TestStreamCreditWindowBoundsInFlight(t *testing.T) {
	const window = 3
	r := newRig(Config{Stream: StreamConfig{Enable: true, ChunkBytes: 10_000, Window: window}})
	sink := &testSink{env: r.env, hold: true, release: sim.NewEvent(r.env)}
	r.b.SetStreamSink(sink)
	payload := bigPayload(100_000) // 10 chunks
	r.env.Spawn("starter", func(p *sim.Proc) {
		r.a.Send("ent.b", &cephmsg.MOSDOp{Tid: 4, Object: "o", Op: cephmsg.OpWrite,
			Length: 100_000, Data: payload})
	})
	// At a virtual instant well past the stall, exactly `window` chunks
	// must have left the sender; then release the consumer and let the
	// stream run to completion.
	r.env.Spawn("checker", func(p *sim.Proc) {
		p.Wait(100 * sim.Millisecond)
		if s := r.a.Stats(); s.StreamChunksSent != window {
			t.Errorf("sender put %d chunks in flight, window is %d", s.StreamChunksSent, window)
		}
		sink.release.Fire()
	})
	r.run(t, sim.Second)
	if !sink.ended || sink.total != 100_000 {
		t.Fatalf("after release: ended=%v total=%d", sink.ended, sink.total)
	}
}

// MRepOp writes stream too (the replica fan-out path), and an explicitly
// opened stream delivers into the sink with the inner op intact.
func TestStreamRepOpViaOpenStream(t *testing.T) {
	r := newRig(Config{Stream: StreamConfig{Enable: true, ChunkBytes: 50_000, Window: 2}})
	sink := &testSink{env: r.env}
	r.b.SetStreamSink(sink)
	r.b.SetDispatcher(func(p *sim.Proc, src string, m cephmsg.Message) {})
	payload := bigPayload(120_000)
	r.env.Spawn("starter", func(p *sim.Proc) {
		out := r.a.OpenStream("ent.b", &cephmsg.MRepOp{
			Tid: 7, PGID: 2, Object: "o", Op: cephmsg.OpWrite,
		}, int64(payload.Length()))
		out.Write(p, payload)
		out.Close(p)
	})
	r.run(t, sim.Second)
	if sink.accepted != 1 || !sink.ended || sink.total != 120_000 {
		t.Fatalf("sink state: accepted=%d ended=%v total=%d",
			sink.accepted, sink.ended, sink.total)
	}
}

// Abort mid-stream surfaces as an aborted InStream and drops partial state;
// a later stream on the same connection still works.
func TestStreamAbortThenReuse(t *testing.T) {
	r := newRig(Config{Stream: StreamConfig{Enable: true, ChunkBytes: 10_000, Window: 8}})
	sink := &testSink{env: r.env}
	r.b.SetStreamSink(sink)
	r.b.SetDispatcher(func(p *sim.Proc, src string, m cephmsg.Message) {})
	r.env.Spawn("starter", func(p *sim.Proc) {
		out := r.a.OpenStream("ent.b", &cephmsg.MOSDOp{
			Tid: 1, Object: "o", Op: cephmsg.OpWrite,
		}, 50_000)
		out.Write(p, bigPayload(20_000))
		out.Abort(p)
		// Second, clean stream.
		out2 := r.a.OpenStream("ent.b", &cephmsg.MOSDOp{
			Tid: 2, Object: "o2", Op: cephmsg.OpWrite,
		}, 30_000)
		out2.Write(p, bigPayload(30_000))
		out2.Close(p)
	})
	r.run(t, sim.Second)
	if !sink.aborted {
		t.Fatal("abort not surfaced")
	}
	if !sink.ended || sink.accepted != 2 {
		t.Fatalf("second stream: ended=%v accepted=%d", sink.ended, sink.accepted)
	}
	if s := r.a.Stats(); s.StreamAborts != 1 {
		t.Fatalf("StreamAborts=%d want 1", s.StreamAborts)
	}
}

// Package messenger models Ceph's AsyncMessenger: per-entity messengers
// whose msgr-worker threads run epoll-style event loops, encode/decode and
// checksum messages, and pay the TCP/IP kernel-stack costs (per-segment
// syscalls, user/kernel copies, context switches) that the paper measures
// as >80% of Ceph's CPU time (§2.3, Figure 5). Wire occupancy is modelled by
// a sim.Fabric; per-connection FIFO ordering is preserved by a dedicated
// wire process per direction.
package messenger

import (
	"fmt"
	"sort"

	"doceph/internal/cephmsg"
	"doceph/internal/sim"
	"doceph/internal/trace"
	"doceph/internal/wire"
)

// ThreadCat is the accounting category for messenger worker threads,
// matching the paper's "msgr-worker-" perf pattern.
const ThreadCat = "msgr-worker"

// EnvelopeBytes approximates the msgr2 frame header + footer size.
const EnvelopeBytes = 64

// Config carries the messenger tunables and CPU cost model. Zero values are
// replaced by defaults in New.
type Config struct {
	// Workers is the number of msgr-worker event-loop threads. When Lanes
	// exceeds it, the pool grows to Lanes so every lane of a connection can
	// map to a distinct worker.
	Workers int
	// Lanes is the number of parallel ordered lanes per connection (the
	// multi-QP transport of DPU-offloaded messengers: LineFS/Xenic-style
	// designs open several queue pairs per peer so independent streams
	// don't serialize behind one event loop). Messages hash to a lane by
	// their ordering key — object name for client ops, PG id for
	// replication — so per-object and per-PG FIFO survive; traffic with no
	// key (maps, boots, heartbeats) stays on lane 0, which preserves the
	// peer-wide order those protocols assume. 1 (the default) is a single
	// ordered connection, byte-identical to the pre-lane messenger.
	Lanes int
	// TCPSegmentBytes is the data moved per send/recv syscall.
	TCPSegmentBytes int64
	// SendSyscallCycles / RecvSyscallCycles are charged per syscall.
	SendSyscallCycles int64
	RecvSyscallCycles int64
	// TxCopyCyclesPerByte / RxCopyCyclesPerByte model user/kernel buffer
	// copies and TCP/IP stack traversal per byte.
	TxCopyCyclesPerByte float64
	RxCopyCyclesPerByte float64
	// CRCCyclesPerByte models message checksumming (charged on both ends).
	CRCCyclesPerByte float64
	// EncodeCycles / DecodeCycles / DispatchCycles are per-message costs.
	EncodeCycles   int64
	DecodeCycles   int64
	DispatchCycles int64
	// SwitchesPerSend / SwitchesPerRecv record voluntary context switches
	// per message (blocking socket wakeups).
	SwitchesPerSend int64
	SwitchesPerRecv int64
	// BytesPerSwitch adds one voluntary switch per this many message bytes
	// (socket-buffer-full blocking on large sends/recvs).
	BytesPerSwitch int64
	// WireEncode really serializes and re-parses every message (integrity
	// at the cost of wall-clock speed); benchmarks leave it off and pass
	// message pointers with size accounting only.
	WireEncode bool
	// ReconnectBackoff is the initial delay before a session reset retries
	// a frame the fabric dropped; each consecutive loss doubles it up to
	// ReconnectBackoffMax (capped exponential backoff, Ceph's msgr2
	// reconnect behaviour).
	ReconnectBackoff    sim.Duration
	ReconnectBackoffMax sim.Duration
	// Stream enables flow-controlled chunked transfer of large write
	// payloads (see stream.go). Off by default.
	Stream StreamConfig
}

// DefaultConfig returns the cost model used by the experiments (calibration
// rationale in EXPERIMENTS.md).
func DefaultConfig() Config {
	return Config{
		Workers:             3,
		TCPSegmentBytes:     64 << 10,
		SendSyscallCycles:   9_000,
		RecvSyscallCycles:   9_000,
		TxCopyCyclesPerByte: 1.05,
		RxCopyCyclesPerByte: 1.05,
		CRCCyclesPerByte:    0.25,
		EncodeCycles:        120_000,
		DecodeCycles:        100_000,
		DispatchCycles:      30_000,
		SwitchesPerSend:     2,
		SwitchesPerRecv:     2,
		BytesPerSwitch:      288 << 10,
		ReconnectBackoff:    10 * sim.Millisecond,
		ReconnectBackoffMax: 2 * sim.Second,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.Workers == 0 {
		c.Workers = d.Workers
	}
	if c.Lanes <= 0 {
		c.Lanes = 1
	}
	if c.Workers < c.Lanes {
		c.Workers = c.Lanes
	}
	if c.TCPSegmentBytes == 0 {
		c.TCPSegmentBytes = d.TCPSegmentBytes
	}
	if c.SendSyscallCycles == 0 {
		c.SendSyscallCycles = d.SendSyscallCycles
	}
	if c.RecvSyscallCycles == 0 {
		c.RecvSyscallCycles = d.RecvSyscallCycles
	}
	if c.TxCopyCyclesPerByte == 0 {
		c.TxCopyCyclesPerByte = d.TxCopyCyclesPerByte
	}
	if c.RxCopyCyclesPerByte == 0 {
		c.RxCopyCyclesPerByte = d.RxCopyCyclesPerByte
	}
	if c.CRCCyclesPerByte == 0 {
		c.CRCCyclesPerByte = d.CRCCyclesPerByte
	}
	if c.EncodeCycles == 0 {
		c.EncodeCycles = d.EncodeCycles
	}
	if c.DecodeCycles == 0 {
		c.DecodeCycles = d.DecodeCycles
	}
	if c.DispatchCycles == 0 {
		c.DispatchCycles = d.DispatchCycles
	}
	if c.SwitchesPerSend == 0 {
		c.SwitchesPerSend = d.SwitchesPerSend
	}
	if c.SwitchesPerRecv == 0 {
		c.SwitchesPerRecv = d.SwitchesPerRecv
	}
	if c.BytesPerSwitch == 0 {
		c.BytesPerSwitch = d.BytesPerSwitch
	}
	if c.ReconnectBackoff == 0 {
		c.ReconnectBackoff = d.ReconnectBackoff
	}
	if c.ReconnectBackoffMax == 0 {
		c.ReconnectBackoffMax = d.ReconnectBackoffMax
	}
	c.Stream = c.Stream.withDefaults()
	return c
}

// Stats counts a messenger's traffic.
type Stats struct {
	Sent      int64
	Received  int64
	BytesSent int64
	BytesRecv int64
	// SessionResets counts reconnects after the fabric dropped a frame;
	// Redeliveries counts frames re-sent by those resets (each dropped
	// frame is redelivered exactly once per successful reset).
	SessionResets int64
	Redeliveries  int64
	// Streaming counters: streams opened by this endpoint (sender side),
	// streams arriving at it, chunks moved each way, and aborts issued.
	StreamsSent      int64
	StreamsRecv      int64
	StreamChunksSent int64
	StreamChunksRecv int64
	StreamAborts     int64
}

// Dispatcher receives decoded messages on a msgr-worker thread; it must not
// block on slow operations (queue to a worker pool instead), mirroring
// Ceph's fast-dispatch contract. p is the worker process, for CPU charging
// by the handler if needed.
type Dispatcher func(p *sim.Proc, src string, m cephmsg.Message)

// Registry resolves entity names ("osd.0", "client.3", "mon.0") to their
// messengers, standing in for address resolution + TCP connect.
type Registry struct {
	entities map[string]*Messenger
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{entities: make(map[string]*Messenger)} }

// Lookup returns the messenger registered under name, or nil.
func (r *Registry) Lookup(name string) *Messenger { return r.entities[name] }

// All returns every registered messenger sorted by entity name, so
// aggregations built from it are deterministic.
func (r *Registry) All() []*Messenger {
	names := make([]string, 0, len(r.entities))
	for n := range r.entities {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*Messenger, 0, len(names))
	for _, n := range names {
		out = append(out, r.entities[n])
	}
	return out
}

// Messenger is one entity's messaging endpoint: a set of worker event loops
// on the entity's CPU plus per-peer wire processes on the fabric.
type Messenger struct {
	env      *sim.Env
	cpu      *sim.CPU
	fabric   *sim.Fabric
	registry *Registry
	cfg      Config

	// name is the entity name; node is the fabric node the entity runs on.
	name string
	node string

	workers    []*worker
	nextWorker int
	// conns maps peer entity -> owning worker and outbound wire queue.
	conns    map[string]*conn
	dispatch Dispatcher

	stats Stats
	tr    *trace.Tracer

	// Streaming state (all lazily allocated; nil until the first stream).
	nextStreamID uint64
	outStreams   map[uint64]*OutStream
	inAsm        map[string]*cephmsg.Assembler
	inStreams    map[inKey]*InStream
	streamSink   StreamSink
}

type worker struct {
	th *sim.Thread
	q  *sim.Queue[workItem]
}

// conn is the state for one peer: Lanes independent ordered lanes, each
// with its own worker, wire process and sequence pair. Lane count can grow
// on the receive side when the peer runs more lanes than we do.
type conn struct {
	peer string
	// base is the worker-pool offset lane 0 maps to; lane i runs on
	// workers[(base+i) % len(workers)].
	base  int
	lanes []*connLane
}

// connLane is one ordered lane of a connection.
type connLane struct {
	worker *worker
	wireq  *sim.Queue[frame]
	// sendSeq stamps outbound frames; recvSeq verifies inbound order.
	// Packet loss is handled below the sequence layer: a frame the fabric
	// drops triggers a session reset on the sending wire process, which
	// backs off and redelivers that same frame before sending the next
	// (Ceph's msgr2 reset + replay of unacked messages). The receive-side
	// invariant therefore still holds per lane — a violated sequence means
	// the transport itself broke and panics loudly.
	sendSeq uint64
	recvSeq uint64
}

type workItem struct {
	recv  bool
	peer  string
	frame frame
}

type frame struct {
	src   string
	lane  int
	seq   uint64
	msg   cephmsg.Message
	bytes int64
	// wire and crc are only set when WireEncode: the encoded frame (header
	// scratch + shared payload segments, no flatten) and its segment-wise
	// CRC-32C, verified on receive.
	wire *wire.Bufferlist
	crc  uint32
	// Tracing state (zero when tracing is off or the message carries no
	// context): the originating op's span, the span of the stage currently
	// in flight, and the instant the frame entered the current queue.
	traceCtx uint64
	span     trace.SpanID
	enq      sim.Time
}

// New creates a messenger for entity name running on fabric node node,
// charging CPU work to cpu, and registers it in registry. The node must
// already be attached to the fabric.
func New(env *sim.Env, registry *Registry, fabric *sim.Fabric, cpu *sim.CPU,
	name, node string, cfg Config) *Messenger {
	if !fabric.HasNode(node) {
		panic(fmt.Sprintf("messenger: node %q not on fabric", node))
	}
	m := &Messenger{
		env: env, cpu: cpu, fabric: fabric, registry: registry,
		cfg: cfg.withDefaults(), name: name, node: node,
		conns: make(map[string]*conn),
	}
	for i := 0; i < m.cfg.Workers; i++ {
		w := &worker{
			th: sim.NewThread(fmt.Sprintf("msgr-worker-%d@%s", i, name), ThreadCat),
			q:  sim.NewQueue[workItem](env),
		}
		m.workers = append(m.workers, w)
		env.SpawnDaemon(w.th.Name, func(p *sim.Proc) { m.workerLoop(p, w) })
	}
	registry.entities[name] = m
	return m
}

// Name returns the entity name.
func (m *Messenger) Name() string { return m.name }

// Node returns the fabric node the entity runs on.
func (m *Messenger) Node() string { return m.node }

// Stats returns a copy of the traffic counters.
func (m *Messenger) Stats() Stats { return m.stats }

// SetDispatcher installs the message handler. It must be set before any
// peer sends to this messenger.
func (m *Messenger) SetDispatcher(d Dispatcher) { m.dispatch = d }

// SetTracer enables framing-stage tracing on this endpoint (nil disables).
// Only messages carrying a trace context (RADOS op traffic) produce spans;
// heartbeats and map gossip stay untraced. With WireEncode the decoded copy
// handed to the dispatcher loses the out-of-band context, so downstream
// stages of wire-encoded runs go untraced by design.
func (m *Messenger) SetTracer(tr *trace.Tracer) { m.tr = tr }

// Send queues msg for delivery to entity dst. It never blocks the caller
// (the connection queue is unbounded, as Ceph's is in practice for the
// workloads modelled here). Unknown destinations panic: entity wiring is
// static in this simulation, so that is a configuration bug.
func (m *Messenger) Send(dst string, msg cephmsg.Message) {
	if m.cfg.Stream.Enable {
		if inner, data, ok := streamSplit(msg, m.cfg.Stream.ChunkBytes); ok {
			m.streamSend(dst, inner, data)
			return
		}
	}
	c := m.connTo(dst)
	f := m.makeFrame(msg)
	if m.tr.Enabled() {
		if f.traceCtx = cephmsg.TraceContext(msg); f.traceCtx != 0 {
			f.span = m.tr.Start(trace.SpanID(f.traceCtx), 0, trace.StageMsgrSend, dst)
			f.enq = m.env.Now()
		}
	}
	if m.cfg.Lanes > 1 {
		if key, ok := cephmsg.LaneKey(msg); ok {
			f.lane = int(key % uint64(m.cfg.Lanes))
		}
	}
	ln := c.lanes[f.lane]
	ln.sendSeq++
	f.seq = ln.sendSeq
	ln.worker.q.Push(workItem{peer: dst, frame: f})
}

func (m *Messenger) makeFrame(msg cephmsg.Message) frame {
	f := frame{src: m.name, msg: msg, bytes: EnvelopeBytes + msg.PayloadBytes()}
	if m.cfg.WireEncode {
		f.wire = cephmsg.Encode(msg)
		f.crc = f.wire.CRC32C()
		f.bytes = EnvelopeBytes + int64(f.wire.Length())
	}
	return f
}

// connTo lazily creates the connection state (owning workers + one wire
// process per lane) for peer dst.
func (m *Messenger) connTo(dst string) *conn {
	if c, ok := m.conns[dst]; ok {
		return c
	}
	if m.registry.Lookup(dst) == nil {
		panic(fmt.Sprintf("messenger %s: unknown destination %q", m.name, dst))
	}
	c := &conn{peer: dst, base: m.nextWorker}
	m.nextWorker = (m.nextWorker + 1) % len(m.workers)
	m.conns[dst] = c
	for i := 0; i < m.cfg.Lanes; i++ {
		m.addLane(c)
	}
	return c
}

// addLane appends one lane to c and spawns its wire process. Lane 0 keeps
// the historical process name so single-lane runs are unchanged.
func (m *Messenger) addLane(c *conn) *connLane {
	lane := len(c.lanes)
	ln := &connLane{
		worker: m.workers[(c.base+lane)%len(m.workers)],
		wireq:  sim.NewQueue[frame](m.env),
	}
	c.lanes = append(c.lanes, ln)
	name := fmt.Sprintf("wire:%s->%s", m.name, c.peer)
	if lane > 0 {
		name = fmt.Sprintf("wire:%s->%s#%d", m.name, c.peer, lane)
	}
	dst := c.peer
	m.env.SpawnDaemon(name, func(p *sim.Proc) {
		peer := m.registry.Lookup(dst)
		for {
			f := ln.wireq.Pop(p)
			if f.span != 0 {
				m.tr.AddQueueWait(f.span, p.Now().Sub(f.enq))
			}
			backoff := m.cfg.ReconnectBackoff
			for {
				if _, ok := m.fabric.TransferFrame(p, m.node, peer.node, f.bytes); ok {
					if f.span != 0 {
						m.tr.AddBytes(f.span, f.bytes)
						m.tr.Finish(f.span)
						f.span = 0
					}
					peer.deliver(f)
					break
				}
				// The frame was lost in flight: reset the session, back
				// off, reconnect and redeliver the same frame so the
				// per-lane FIFO order survives the loss.
				m.stats.SessionResets++
				p.Wait(backoff)
				if backoff *= 2; backoff > m.cfg.ReconnectBackoffMax {
					backoff = m.cfg.ReconnectBackoffMax
				}
				m.stats.Redeliveries++
			}
		}
	})
	return ln
}

// deliver hands an arrived frame to the owning worker of the reverse
// connection's lane, enforcing the per-lane sequence invariant. A peer
// running more lanes than we do grows our side on demand, so asymmetric
// lane configurations interoperate.
func (m *Messenger) deliver(f frame) {
	c := m.connTo(f.src)
	for f.lane >= len(c.lanes) {
		m.addLane(c)
	}
	ln := c.lanes[f.lane]
	if f.seq != ln.recvSeq+1 {
		panic(fmt.Sprintf("messenger %s: frame from %s out of order: lane %d seq %d after %d",
			m.name, f.src, f.lane, f.seq, ln.recvSeq))
	}
	ln.recvSeq = f.seq
	if m.tr.Enabled() && f.traceCtx != 0 {
		f.span = m.tr.Start(trace.SpanID(f.traceCtx), 0, trace.StageMsgrRecv, m.name)
		f.enq = m.env.Now()
	}
	ln.worker.q.Push(workItem{recv: true, peer: f.src, frame: f})
}

// workerLoop is one msgr-worker event loop: it pays the send-side encode +
// TCP costs before handing frames to the wire, and the receive-side TCP +
// decode + dispatch costs after frames arrive.
func (m *Messenger) workerLoop(p *sim.Proc, w *worker) {
	p.SetThread(w.th)
	for {
		it := w.q.Pop(p)
		f := it.frame
		segments := (f.bytes + m.cfg.TCPSegmentBytes - 1) / m.cfg.TCPSegmentBytes
		if it.recv {
			if f.span != 0 {
				m.tr.AddQueueWait(f.span, p.Now().Sub(f.enq))
			}
			cycles := m.cfg.RecvSyscallCycles*segments +
				int64(float64(f.bytes)*(m.cfg.RxCopyCyclesPerByte+m.cfg.CRCCyclesPerByte)) +
				m.cfg.DecodeCycles + m.cfg.DispatchCycles
			m.tr.AddCPU(f.span, m.cpu.Name(), m.cpu.Exec(p, w.th, cycles))
			m.cpu.NoteSwitches(w.th, m.cfg.SwitchesPerRecv+f.bytes/m.cfg.BytesPerSwitch)
			m.stats.Received++
			m.stats.BytesRecv += f.bytes
			msg := f.msg
			if f.wire != nil {
				if got := f.wire.CRC32C(); got != f.crc {
					panic(fmt.Sprintf("messenger %s: frame from %s CRC mismatch: %#x != %#x",
						m.name, it.peer, got, f.crc))
				}
				decoded, err := cephmsg.Decode(f.wire)
				if err != nil {
					panic(fmt.Sprintf("messenger %s: corrupt frame from %s: %v", m.name, it.peer, err))
				}
				msg = decoded
			}
			// Stream frames are transport-level and consumed here; only
			// application messages (including reassembled stream payloads
			// dispatched from handleStream) need a dispatcher.
			if !m.handleStream(p, it.peer, msg) {
				if m.dispatch == nil {
					panic(fmt.Sprintf("messenger %s: message from %s with no dispatcher", m.name, it.peer))
				}
				m.dispatch(p, it.peer, msg)
			}
			if f.span != 0 {
				m.tr.AddBytes(f.span, f.bytes)
				m.tr.Finish(f.span)
			}
			if f.wire != nil {
				// Everything header-shaped was copied out during decode and
				// the payload lives in its own shared segments, so the
				// pooled header scratch can go back.
				wire.PutBuffer(f.wire.FirstSegment())
			}
			continue
		}
		cycles := m.cfg.EncodeCycles +
			int64(float64(f.bytes)*(m.cfg.TxCopyCyclesPerByte+m.cfg.CRCCyclesPerByte)) +
			m.cfg.SendSyscallCycles*segments
		if f.span != 0 {
			m.tr.AddQueueWait(f.span, p.Now().Sub(f.enq))
			m.tr.AddBytes(f.span, f.bytes)
			m.tr.AddCPU(f.span, m.cpu.Name(), m.cpu.Exec(p, w.th, cycles))
			m.tr.Finish(f.span)
			// Hand the frame to the wire stage under a fresh span covering
			// the outbound queue plus fabric occupancy (including any
			// session-reset redeliveries).
			f.span = m.tr.Start(trace.SpanID(f.traceCtx), 0, trace.StageWire, it.peer)
			f.enq = p.Now()
		} else {
			m.cpu.Exec(p, w.th, cycles)
		}
		m.cpu.NoteSwitches(w.th, m.cfg.SwitchesPerSend+f.bytes/m.cfg.BytesPerSwitch)
		m.stats.Sent++
		m.stats.BytesSent += f.bytes
		m.conns[it.peer].lanes[f.lane].wireq.Push(f)
	}
}

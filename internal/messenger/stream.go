// Streaming transfer mode: large write payloads travel as flow-controlled
// chunk streams (cephmsg stream framing) instead of one monolithic frame.
// The send side is transparent — Send intercepts streamable messages,
// opens a stream and pumps chunks from a spawned process under a credit
// window — and the receive side always understands stream frames, so an
// enabled sender interoperates with any receiver (asymmetric configs work,
// like lanes). A receiver either reassembles the payload and dispatches
// the reconstructed op (default), or, when the endpoint registered a
// StreamSink that accepts the stream, hands chunks to an InStream for
// incremental consumption with consumer-paced credit returns — the path
// the OSD uses to start replica fan-out and commit per chunk.

package messenger

import (
	"fmt"

	"doceph/internal/cephmsg"
	"doceph/internal/sim"
	"doceph/internal/trace"
	"doceph/internal/wire"
)

// StreamConfig tunes the streaming transfer mode. Off by default: with
// Enable false Send never streams and no state is allocated, so existing
// runs stay bit-identical.
type StreamConfig struct {
	// Enable turns transparent streaming of large writes on.
	Enable bool
	// ChunkBytes is the chunk size; writes with payloads strictly larger
	// than this are streamed. Defaults to 2 MiB — the DOCA engine's
	// per-transfer segment limit, so every chunk DMAs as exactly one
	// segment and a streamed object moves in the same number of transfers
	// as the monolithic path.
	ChunkBytes int64
	// Window is the credit window: chunks in flight before the sender
	// blocks on returned credits. Staging memory at every hop is bounded
	// by Window×ChunkBytes. Defaults to 4.
	Window int
}

func (c StreamConfig) withDefaults() StreamConfig {
	if !c.Enable {
		return c
	}
	if c.ChunkBytes <= 0 {
		c.ChunkBytes = 2 << 20
	}
	if c.Window <= 0 {
		c.Window = 4
	}
	return c
}

// StreamSink consumes incoming streams incrementally. OpenStream runs on a
// msgr-worker thread and must not block: accept by returning true and
// spawning a consumer that drains in (calling in.Credit as it goes), or
// return false to fall back to messenger-side reassembly.
type StreamSink interface {
	OpenStream(src string, in *InStream) bool
}

// SetStreamSink installs the incremental stream consumer (nil reverts to
// reassembly for all incoming streams).
func (m *Messenger) SetStreamSink(s StreamSink) { m.streamSink = s }

// streamSplit reports whether msg should be streamed at the configured
// chunk size and, if so, returns a shallow copy with the payload stripped
// plus the payload itself.
func streamSplit(msg cephmsg.Message, chunkBytes int64) (cephmsg.Message, *wire.Bufferlist, bool) {
	switch m := msg.(type) {
	case *cephmsg.MOSDOp:
		if m.Op == cephmsg.OpWrite && m.Data != nil && int64(m.Data.Length()) > chunkBytes {
			cp := *m
			cp.Data = nil
			return &cp, m.Data, true
		}
	case *cephmsg.MRepOp:
		if m.Op == cephmsg.OpWrite && m.Data != nil && int64(m.Data.Length()) > chunkBytes {
			cp := *m
			cp.Data = nil
			return &cp, m.Data, true
		}
	}
	return nil, nil, false
}

// streamSend is the transparent interception path: open a stream for inner
// and pump data through it from a dedicated process (Send must not block,
// but chunk writes wait on credits).
func (m *Messenger) streamSend(dst string, inner cephmsg.Message, data *wire.Bufferlist) {
	out := m.OpenStream(dst, inner, int64(data.Length()))
	name := fmt.Sprintf("stream-pump:%s:%d", m.name, out.id)
	m.env.Spawn(name, func(p *sim.Proc) {
		p.SetThread(sim.NewThread(name, ThreadCat))
		out.Write(p, data)
		out.Close(p)
	})
}

// OpenStream starts an outbound stream to dst carrying inner (a write-
// family MOSDOp/MRepOp with Data stripped) totalling total payload bytes.
// The caller feeds it with Write and finishes with Close (or Abort); Write
// blocks on flow-control credits, so call it from a process that may wait.
func (m *Messenger) OpenStream(dst string, inner cephmsg.Message, total int64) *OutStream {
	cfg := m.cfg.Stream
	if cfg.ChunkBytes <= 0 || cfg.Window <= 0 {
		// Receiver-initiated fan-out on an endpoint without explicit
		// stream config (e.g. an OSD forwarding an incoming stream):
		// use the defaults.
		cfg = StreamConfig{Enable: true}.withDefaults()
	}
	lane, _ := cephmsg.LaneKey(inner)
	m.nextStreamID++
	out := &OutStream{
		ms: m, dst: dst, id: m.nextStreamID, lane: lane,
		ctx:        cephmsg.TraceContext(inner),
		chunkBytes: cfg.ChunkBytes,
		credits:    sim.NewSemaphore(m.env, cfg.Window),
	}
	if m.outStreams == nil {
		m.outStreams = make(map[uint64]*OutStream)
	}
	m.outStreams[out.id] = out
	m.stats.StreamsSent++
	m.Send(dst, &cephmsg.MStreamOpen{
		StreamID: out.id, Total: total, ChunkBytes: cfg.ChunkBytes,
		Window: uint32(cfg.Window), Lane: lane, Inner: inner, TraceCtx: out.ctx,
	})
	return out
}

// OutStream is the send half of one stream.
type OutStream struct {
	ms         *Messenger
	dst        string
	id         uint64
	lane       uint64
	ctx        uint64
	chunkBytes int64
	seq        uint32
	credits    *sim.Semaphore
}

// Write splits data into chunk-sized pieces and sends each under the
// credit window, blocking while the window is exhausted. The pieces are
// zero-copy views of data.
func (o *OutStream) Write(p *sim.Proc, data *wire.Bufferlist) {
	total := data.Length()
	for off := 0; off < total; {
		n := int(o.chunkBytes)
		if total-off < n {
			n = total - off
		}
		o.writeChunk(p, data.SubList(off, n))
		off += n
	}
}

func (o *OutStream) writeChunk(p *sim.Proc, chunk *wire.Bufferlist) {
	var sp trace.SpanID
	if o.ms.tr.Enabled() && o.ctx != 0 {
		// stream.window: how long this chunk waited for a flow-control
		// credit before entering the messenger (backpressure residency).
		sp = o.ms.tr.Start(trace.SpanID(o.ctx), 0, trace.StageStreamWindow, o.dst)
	}
	start := p.Now()
	o.credits.Acquire(p, 1)
	if sp != 0 {
		o.ms.tr.AddQueueWait(sp, p.Now().Sub(start))
		o.ms.tr.AddBytes(sp, int64(chunk.Length()))
		o.ms.tr.Finish(sp)
	}
	seq := o.seq
	o.seq++
	o.ms.stats.StreamChunksSent++
	o.ms.Send(o.dst, &cephmsg.MStreamChunk{
		StreamID: o.id, Seq: seq, Lane: o.lane, Data: chunk, TraceCtx: o.ctx,
	})
}

// Close completes the stream. Late credits for in-flight chunks are
// dropped once the stream is deregistered (nothing waits on them).
func (o *OutStream) Close(p *sim.Proc) {
	delete(o.ms.outStreams, o.id)
	o.ms.Send(o.dst, &cephmsg.MStreamEnd{StreamID: o.id, Chunks: o.seq, Lane: o.lane})
}

// Abort tears the stream down mid-flight; the receiver discards partial
// state.
func (o *OutStream) Abort(p *sim.Proc) {
	delete(o.ms.outStreams, o.id)
	o.ms.stats.StreamAborts++
	o.ms.Send(o.dst, &cephmsg.MStreamAbort{StreamID: o.id, Lane: o.lane})
}

// inKey identifies an incoming stream: ids are only unique per sender.
type inKey struct {
	src string
	id  uint64
}

// streamItem is one delivery on an InStream's queue.
type streamItem struct {
	data    *wire.Bufferlist
	end     bool
	aborted bool
}

// InStream is the receive half of one stream in incremental (sink) mode.
// The consumer loops on Next and returns flow-control credits with Credit
// as it durably consumes chunks.
type InStream struct {
	ms   *Messenger
	src  string
	id   uint64
	lane uint64
	open *cephmsg.MStreamOpen
	q    *sim.Queue[streamItem]
}

// Src returns the sending entity.
func (in *InStream) Src() string { return in.src }

// Open returns the stream's open frame (inner op, totals, window).
func (in *InStream) Open() *cephmsg.MStreamOpen { return in.open }

// Next blocks for the next chunk. done reports a clean end (data nil);
// aborted reports a mid-flight teardown (data nil, partial state dropped).
func (in *InStream) Next(p *sim.Proc) (data *wire.Bufferlist, done, aborted bool) {
	it := in.q.Pop(p)
	return it.data, it.end, it.aborted
}

// Credit returns n flow-control credits to the sender, allowing it to put
// n more chunks in flight. Call it when a chunk's memory/processing has
// actually been retired — that is what bounds staging to the window.
func (in *InStream) Credit(n int) {
	if err := in.ms.asmFor(in.src).Credit(in.id, uint32(n)); err != nil {
		panic(fmt.Sprintf("messenger %s: %v", in.ms.name, err))
	}
	in.ms.Send(in.src, &cephmsg.MStreamCredit{
		StreamID: in.id, Credits: uint32(n), Lane: in.lane,
	})
}

// asmFor returns the per-peer stream protocol state machine.
func (m *Messenger) asmFor(src string) *cephmsg.Assembler {
	if m.inAsm == nil {
		m.inAsm = make(map[string]*cephmsg.Assembler)
	}
	a, ok := m.inAsm[src]
	if !ok {
		a = cephmsg.NewAssembler()
		m.inAsm[src] = a
	}
	return a
}

// handleStream intercepts stream frames on the receive path (always
// active, regardless of local Stream.Enable). It reports whether msg was
// consumed. Protocol violations panic: peers are trusted in-simulation, so
// a violation is a transport bug, mirroring the per-lane seq invariant.
func (m *Messenger) handleStream(p *sim.Proc, src string, msg cephmsg.Message) bool {
	switch sm := msg.(type) {
	case *cephmsg.MStreamOpen:
		m.handleStreamOpen(sm, src)
	case *cephmsg.MStreamChunk:
		m.handleStreamChunk(sm, src)
	case *cephmsg.MStreamEnd:
		m.handleStreamEnd(p, sm, src)
	case *cephmsg.MStreamAbort:
		m.handleStreamAbort(sm, src)
	case *cephmsg.MStreamCredit:
		if out, ok := m.outStreams[sm.StreamID]; ok {
			out.credits.Release(int(sm.Credits))
		}
	default:
		return false
	}
	return true
}

func (m *Messenger) handleStreamOpen(sm *cephmsg.MStreamOpen, src string) {
	m.stats.StreamsRecv++
	var in *InStream
	if m.streamSink != nil {
		cand := &InStream{ms: m, src: src, id: sm.StreamID, lane: sm.Lane,
			open: sm, q: sim.NewQueue[streamItem](m.env)}
		if m.streamSink.OpenStream(src, cand) {
			in = cand
		}
	}
	if err := m.asmFor(src).Open(sm, in == nil); err != nil {
		panic(fmt.Sprintf("messenger %s: %v", m.name, err))
	}
	if in != nil {
		if m.inStreams == nil {
			m.inStreams = make(map[inKey]*InStream)
		}
		m.inStreams[inKey{src, sm.StreamID}] = in
	}
}

func (m *Messenger) handleStreamChunk(sm *cephmsg.MStreamChunk, src string) {
	data, err := m.asmFor(src).Chunk(sm)
	if err != nil {
		panic(fmt.Sprintf("messenger %s: %v", m.name, err))
	}
	m.stats.StreamChunksRecv++
	if in, ok := m.inStreams[inKey{src, sm.StreamID}]; ok {
		in.q.Push(streamItem{data: data})
		return
	}
	// Reassembly mode buffers the whole payload anyway, so credit
	// immediately: flow control is consumer-paced only in sink mode.
	if err := m.asmFor(src).Credit(sm.StreamID, 1); err != nil {
		panic(fmt.Sprintf("messenger %s: %v", m.name, err))
	}
	m.Send(src, &cephmsg.MStreamCredit{StreamID: sm.StreamID, Credits: 1, Lane: sm.Lane})
}

func (m *Messenger) handleStreamEnd(p *sim.Proc, sm *cephmsg.MStreamEnd, src string) {
	inner, err := m.asmFor(src).End(sm)
	if err != nil {
		panic(fmt.Sprintf("messenger %s: %v", m.name, err))
	}
	if in, ok := m.inStreams[inKey{src, sm.StreamID}]; ok {
		delete(m.inStreams, inKey{src, sm.StreamID})
		in.q.Push(streamItem{end: true})
		return
	}
	// Reassembly mode: dispatch the reconstructed op as if it had arrived
	// whole (its per-byte costs were paid chunk by chunk).
	if m.dispatch == nil {
		panic(fmt.Sprintf("messenger %s: reassembled stream from %s with no dispatcher", m.name, src))
	}
	m.dispatch(p, src, inner)
}

func (m *Messenger) handleStreamAbort(sm *cephmsg.MStreamAbort, src string) {
	if _, ok := m.asmFor(src).Abort(sm.StreamID); !ok {
		return
	}
	if in, ok := m.inStreams[inKey{src, sm.StreamID}]; ok {
		delete(m.inStreams, inKey{src, sm.StreamID})
		in.q.Push(streamItem{aborted: true})
	}
	// Reassembly mode: partial state is simply discarded; the sender owns
	// surfacing the failure (client retry path).
}

package messenger

import (
	"fmt"
	"testing"

	"doceph/internal/cephmsg"
	"doceph/internal/sim"
	"doceph/internal/wire"
)

type rig struct {
	env    *sim.Env
	fabric *sim.Fabric
	reg    *Registry
	cpuA   *sim.CPU
	cpuB   *sim.CPU
	a, b   *Messenger
}

func newRig(cfg Config) *rig {
	env := sim.NewEnv(1)
	fabric := sim.NewFabric(env, "eth", 5*sim.Microsecond)
	fabric.AddNode("nodeA", 12.5e9) // 100 Gbps
	fabric.AddNode("nodeB", 12.5e9)
	reg := NewRegistry()
	cpuA := sim.NewCPU(env, "cpuA", 8, 3.0, 2000)
	cpuB := sim.NewCPU(env, "cpuB", 8, 3.0, 2000)
	return &rig{
		env: env, fabric: fabric, reg: reg, cpuA: cpuA, cpuB: cpuB,
		a: New(env, reg, fabric, cpuA, "ent.a", "nodeA", cfg),
		b: New(env, reg, fabric, cpuB, "ent.b", "nodeB", cfg),
	}
}

func (r *rig) run(t *testing.T, until sim.Duration) {
	t.Helper()
	if err := r.env.RunUntil(sim.Time(until)); err != nil {
		t.Fatal(err)
	}
	r.env.Shutdown()
}

func TestPingPongDelivery(t *testing.T) {
	r := newRig(Config{WireEncode: true})
	var gotPing, gotReply bool
	r.b.SetDispatcher(func(p *sim.Proc, src string, m cephmsg.Message) {
		ping, ok := m.(*cephmsg.MPing)
		if !ok || src != "ent.a" {
			t.Errorf("unexpected %T from %s", m, src)
			return
		}
		gotPing = true
		r.b.Send("ent.a", &cephmsg.MPingReply{Src: "ent.b", Stamp: ping.Stamp})
	})
	r.a.SetDispatcher(func(p *sim.Proc, src string, m cephmsg.Message) {
		rep, ok := m.(*cephmsg.MPingReply)
		if ok && rep.Stamp == 777 {
			gotReply = true
		}
	})
	r.env.Spawn("starter", func(p *sim.Proc) {
		r.a.Send("ent.b", &cephmsg.MPing{Src: "ent.a", Stamp: 777})
	})
	r.run(t, sim.Second)
	if !gotPing || !gotReply {
		t.Fatalf("gotPing=%v gotReply=%v", gotPing, gotReply)
	}
}

func TestDataPayloadIntegrity(t *testing.T) {
	r := newRig(Config{WireEncode: true})
	payload := make([]byte, 300_000)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	wantCRC := wire.FromBytes(payload).CRC32C()
	var gotCRC uint32
	r.b.SetDispatcher(func(p *sim.Proc, src string, m cephmsg.Message) {
		op := m.(*cephmsg.MOSDOp)
		gotCRC = op.Data.CRC32C()
	})
	r.env.Spawn("starter", func(p *sim.Proc) {
		r.a.Send("ent.b", &cephmsg.MOSDOp{
			Tid: 1, Object: "o", Op: cephmsg.OpWrite,
			Length: uint64(len(payload)), Data: wire.FromBytes(payload),
		})
	})
	r.run(t, sim.Second)
	if gotCRC != wantCRC {
		t.Fatalf("crc=%08x want %08x", gotCRC, wantCRC)
	}
}

func TestPerConnectionFIFO(t *testing.T) {
	r := newRig(Config{})
	var tids []uint64
	r.b.SetDispatcher(func(p *sim.Proc, src string, m cephmsg.Message) {
		tids = append(tids, m.(*cephmsg.MOSDOp).Tid)
	})
	r.env.Spawn("starter", func(p *sim.Proc) {
		for i := uint64(1); i <= 20; i++ {
			r.a.Send("ent.b", &cephmsg.MOSDOp{Tid: i, Object: "o", Op: cephmsg.OpWrite,
				Data: wire.FromBytes(make([]byte, 1000*i))})
		}
	})
	r.run(t, sim.Second)
	if len(tids) != 20 {
		t.Fatalf("delivered %d of 20", len(tids))
	}
	for i, tid := range tids {
		if tid != uint64(i+1) {
			t.Fatalf("order broken: %v", tids)
		}
	}
}

func TestCPUChargedToMsgrWorkerCat(t *testing.T) {
	r := newRig(Config{})
	r.b.SetDispatcher(func(p *sim.Proc, src string, m cephmsg.Message) {})
	r.env.Spawn("starter", func(p *sim.Proc) {
		r.a.Send("ent.b", &cephmsg.MOSDOp{Object: "o", Op: cephmsg.OpWrite,
			Data: wire.FromBytes(make([]byte, 1<<20))})
	})
	r.run(t, sim.Second)
	if r.cpuA.Stats().BusyByCat[ThreadCat] <= 0 {
		t.Fatal("sender CPU not charged to msgr-worker")
	}
	if r.cpuB.Stats().BusyByCat[ThreadCat] <= 0 {
		t.Fatal("receiver CPU not charged to msgr-worker")
	}
}

func TestPerByteCostScales(t *testing.T) {
	cost := func(bytes int) sim.Duration {
		r := newRig(Config{})
		r.b.SetDispatcher(func(p *sim.Proc, src string, m cephmsg.Message) {})
		r.env.Spawn("starter", func(p *sim.Proc) {
			r.a.Send("ent.b", &cephmsg.MOSDOp{Object: "o", Op: cephmsg.OpWrite,
				Data: wire.FromBytes(make([]byte, bytes))})
		})
		r.run(t, sim.Second)
		return r.cpuA.Stats().BusyByCat[ThreadCat]
	}
	small, big := cost(64<<10), cost(4<<20)
	if float64(big) < 10*float64(small) {
		t.Fatalf("4MB send cost (%v) should dwarf 64KB cost (%v)", big, small)
	}
}

func TestContextSwitchesCounted(t *testing.T) {
	r := newRig(Config{})
	r.b.SetDispatcher(func(p *sim.Proc, src string, m cephmsg.Message) {})
	r.env.Spawn("starter", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			r.a.Send("ent.b", &cephmsg.MPing{Src: "ent.a", Stamp: int64(i)})
		}
	})
	r.run(t, sim.Second)
	// 10 sends x SwitchesPerSend(2) voluntary + involuntary core switches.
	if r.cpuA.Stats().SwitchesByCat[ThreadCat] < 20 {
		t.Fatalf("sender switches=%d", r.cpuA.Stats().SwitchesByCat[ThreadCat])
	}
	if r.cpuB.Stats().SwitchesByCat[ThreadCat] < 20 {
		t.Fatalf("receiver switches=%d", r.cpuB.Stats().SwitchesByCat[ThreadCat])
	}
}

func TestStatsCounters(t *testing.T) {
	r := newRig(Config{})
	r.b.SetDispatcher(func(p *sim.Proc, src string, m cephmsg.Message) {})
	r.env.Spawn("starter", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			r.a.Send("ent.b", &cephmsg.MPing{Src: "ent.a"})
		}
	})
	r.run(t, sim.Second)
	if r.a.Stats().Sent != 5 || r.b.Stats().Received != 5 {
		t.Fatalf("sent=%d recv=%d", r.a.Stats().Sent, r.b.Stats().Received)
	}
	if r.a.Stats().BytesSent == 0 || r.a.Stats().BytesSent != r.b.Stats().BytesRecv {
		t.Fatalf("bytes sent=%d recv=%d", r.a.Stats().BytesSent, r.b.Stats().BytesRecv)
	}
}

func TestThroughputBoundedByFabric(t *testing.T) {
	env := sim.NewEnv(1)
	fabric := sim.NewFabric(env, "eth", 5*sim.Microsecond)
	fabric.AddNode("nodeA", 125e6) // 1 Gbps
	fabric.AddNode("nodeB", 125e6)
	reg := NewRegistry()
	cpu := sim.NewCPU(env, "cpu", 16, 3.0, 2000)
	a := New(env, reg, fabric, cpu, "ent.a", "nodeA", Config{})
	b := New(env, reg, fabric, cpu, "ent.b", "nodeB", Config{})
	delivered := 0
	b.SetDispatcher(func(p *sim.Proc, src string, m cephmsg.Message) { delivered++ })
	env.Spawn("starter", func(p *sim.Proc) {
		for i := 0; i < 100; i++ {
			a.Send("ent.b", &cephmsg.MOSDOp{Object: "o", Op: cephmsg.OpWrite,
				Data: wire.FromBytes(make([]byte, 1<<20))})
		}
	})
	if err := env.RunUntil(sim.Time(sim.Second)); err != nil {
		t.Fatal(err)
	}
	env.Shutdown()
	// 1 Gbps moves at most ~119 MiB in 1 s => ~119 deliverable; must be
	// well under 100 only if CPU were infinite... it is bounded by the wire:
	// expect ~110-119 max; with 100 x 1 MiB queued all could fit if the
	// wire were faster. Assert the wire actually throttled pacing:
	if delivered > 119 {
		t.Fatalf("delivered=%d exceeds 1Gbps capacity", delivered)
	}
	if delivered < 50 {
		t.Fatalf("delivered=%d, pipeline stalled", delivered)
	}
}

func TestUnknownDestinationPanics(t *testing.T) {
	r := newRig(Config{})
	r.env.Spawn("starter", func(p *sim.Proc) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic")
			}
		}()
		r.a.Send("ghost.9", &cephmsg.MPing{})
	})
	r.run(t, sim.Second)
}

func TestWorkersRoundRobinAcrossPeers(t *testing.T) {
	env := sim.NewEnv(1)
	fabric := sim.NewFabric(env, "eth", sim.Microsecond)
	fabric.AddNode("n0", 12.5e9)
	reg := NewRegistry()
	cpu := sim.NewCPU(env, "cpu", 8, 3.0, 0)
	hub := New(env, reg, fabric, cpu, "hub", "n0", Config{Workers: 2})
	for i := 0; i < 4; i++ {
		name := []string{"p.0", "p.1", "p.2", "p.3"}[i]
		peer := New(env, reg, fabric, cpu, name, "n0", Config{Workers: 1})
		peer.SetDispatcher(func(p *sim.Proc, src string, m cephmsg.Message) {})
	}
	env.Spawn("starter", func(p *sim.Proc) {
		for _, dst := range []string{"p.0", "p.1", "p.2", "p.3"} {
			hub.Send(dst, &cephmsg.MPing{Src: "hub"})
		}
	})
	if err := env.RunUntil(sim.Time(sim.Second)); err != nil {
		t.Fatal(err)
	}
	env.Shutdown()
	workers := map[*worker]bool{}
	for _, c := range hub.conns {
		workers[c.lanes[0].worker] = true
	}
	if len(workers) != 2 {
		t.Fatalf("connections used %d workers, want 2", len(workers))
	}
}

func TestSessionResetRedeliversExactlyOnce(t *testing.T) {
	r := newRig(Config{ReconnectBackoff: sim.Millisecond})
	var got []uint64
	r.b.SetDispatcher(func(p *sim.Proc, src string, m cephmsg.Message) {
		got = append(got, m.(*cephmsg.MOSDOp).Tid)
	})
	// Drop everything touching nodeB, send mid-fault, then heal: the wire
	// process must reset the session, back off and redeliver the frame
	// exactly once, preserving FIFO order with the follow-up message.
	r.env.Spawn("starter", func(p *sim.Proc) {
		r.fabric.SetDropProb("nodeB", 1.0)
		r.a.Send("ent.b", &cephmsg.MOSDOp{Tid: 1, Object: "o", Op: cephmsg.OpWrite,
			Data: wire.FromBytes(make([]byte, 4096))})
		p.Wait(50 * sim.Millisecond)
		r.fabric.SetDropProb("nodeB", 0)
		r.a.Send("ent.b", &cephmsg.MOSDOp{Tid: 2, Object: "o", Op: cephmsg.OpWrite,
			Data: wire.FromBytes(make([]byte, 4096))})
	})
	r.run(t, sim.Second)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("delivered tids %v, want [1 2]", got)
	}
	if r.a.Stats().SessionResets == 0 || r.a.Stats().Redeliveries == 0 {
		t.Fatalf("stats=%+v, expected resets and redeliveries", r.a.Stats())
	}
	if r.fabric.DroppedFrames() == 0 {
		t.Fatal("fabric recorded no drops")
	}
}

func TestPartitionHealsAndTrafficResumes(t *testing.T) {
	r := newRig(Config{ReconnectBackoff: sim.Millisecond})
	delivered := 0
	r.b.SetDispatcher(func(p *sim.Proc, src string, m cephmsg.Message) { delivered++ })
	r.env.Spawn("starter", func(p *sim.Proc) {
		r.fabric.SetPartitionGroup("nodeA", 1)
		r.fabric.SetPartitionGroup("nodeB", 2)
		r.a.Send("ent.b", &cephmsg.MPing{Src: "ent.a"})
		p.Wait(200 * sim.Millisecond)
		if delivered != 0 {
			t.Errorf("frame crossed an active partition")
		}
		r.fabric.ClearFaults()
	})
	r.run(t, sim.Second)
	if delivered != 1 {
		t.Fatalf("delivered=%d after heal, want 1", delivered)
	}
}

func TestVoluntarySwitchesScaleWithBytes(t *testing.T) {
	switches := func(bytes int) int64 {
		r := newRig(Config{})
		r.b.SetDispatcher(func(p *sim.Proc, src string, m cephmsg.Message) {})
		r.env.Spawn("starter", func(p *sim.Proc) {
			r.a.Send("ent.b", &cephmsg.MOSDOp{Object: "o", Op: cephmsg.OpWrite,
				Data: wire.FromBytes(make([]byte, bytes))})
		})
		r.run(t, sim.Second)
		return r.cpuA.Stats().SwitchesByCat[ThreadCat]
	}
	small, big := switches(4<<10), switches(4<<20)
	// A 4 MiB send blocks on the socket buffer many times (BytesPerSwitch
	// model); a 4 KiB send only pays the fixed wakeups.
	if big < small+10 {
		t.Fatalf("switches did not scale with size: %d vs %d", small, big)
	}
}

func TestLanesPreservePerObjectFIFO(t *testing.T) {
	r := newRig(Config{Lanes: 4})
	got := map[string][]uint64{}
	r.b.SetDispatcher(func(p *sim.Proc, src string, m cephmsg.Message) {
		op := m.(*cephmsg.MOSDOp)
		got[op.Object] = append(got[op.Object], op.Tid)
	})
	objects := []string{"obj-a", "obj-b", "obj-c", "obj-d", "obj-e"}
	r.env.Spawn("starter", func(p *sim.Proc) {
		// Interleave objects round-robin with growing payloads so lanes
		// finish at different times; per-object order must still hold.
		for i := uint64(1); i <= 30; i++ {
			obj := objects[int(i)%len(objects)]
			r.a.Send("ent.b", &cephmsg.MOSDOp{Tid: i, Object: obj, Op: cephmsg.OpWrite,
				Data: wire.FromBytes(make([]byte, 1000*i))})
		}
	})
	r.run(t, sim.Second)
	total := 0
	for obj, tids := range got {
		total += len(tids)
		for i := 1; i < len(tids); i++ {
			if tids[i] < tids[i-1] {
				t.Fatalf("%s: per-object order broken: %v", obj, tids)
			}
		}
	}
	if total != 30 {
		t.Fatalf("delivered %d of 30", total)
	}
	// With five objects hashed over four lanes, more than one lane must
	// have carried traffic.
	used := 0
	for _, ln := range r.a.conns["ent.b"].lanes {
		if ln.sendSeq > 0 {
			used++
		}
	}
	if used < 2 {
		t.Fatalf("only %d lanes carried traffic", used)
	}
}

func TestKeylessTrafficStaysOnLaneZero(t *testing.T) {
	r := newRig(Config{Lanes: 4})
	delivered := 0
	r.b.SetDispatcher(func(p *sim.Proc, src string, m cephmsg.Message) { delivered++ })
	r.env.Spawn("starter", func(p *sim.Proc) {
		// Pings and map traffic carry no ordering key: peer-wide order must
		// be preserved, so they must all ride lane 0.
		for i := 0; i < 8; i++ {
			r.a.Send("ent.b", &cephmsg.MPing{Src: "ent.a", Stamp: int64(i)})
		}
	})
	r.run(t, sim.Second)
	if delivered != 8 {
		t.Fatalf("delivered %d of 8", delivered)
	}
	lanes := r.a.conns["ent.b"].lanes
	if lanes[0].sendSeq != 8 {
		t.Fatalf("lane 0 sent %d frames, want 8", lanes[0].sendSeq)
	}
	for i := 1; i < len(lanes); i++ {
		if lanes[i].sendSeq != 0 {
			t.Fatalf("keyless frame leaked onto lane %d", i)
		}
	}
}

func TestLaneSteeringMatchesLaneKey(t *testing.T) {
	r := newRig(Config{Lanes: 4})
	r.b.SetDispatcher(func(p *sim.Proc, src string, m cephmsg.Message) {})
	obj := "steered-object"
	key, ok := cephmsg.LaneKey(&cephmsg.MOSDOp{Object: obj})
	if !ok {
		t.Fatal("MOSDOp has no lane key")
	}
	want := int(key % 4)
	r.env.Spawn("starter", func(p *sim.Proc) {
		for i := uint64(1); i <= 5; i++ {
			r.a.Send("ent.b", &cephmsg.MOSDOp{Tid: i, Object: obj, Op: cephmsg.OpWrite,
				Data: wire.FromBytes(make([]byte, 4096))})
		}
	})
	r.run(t, sim.Second)
	for i, ln := range r.a.conns["ent.b"].lanes {
		wantSeq := uint64(0)
		if i == want {
			wantSeq = 5
		}
		if ln.sendSeq != wantSeq {
			t.Fatalf("lane %d sent %d frames, want %d (key lane %d)",
				i, ln.sendSeq, wantSeq, want)
		}
	}
}

func TestAsymmetricLaneCountsGrowOnDemand(t *testing.T) {
	// Sender runs 4 lanes, receiver was built with 1: deliver must grow the
	// receive-side connection to match and keep every lane's FIFO intact.
	env := sim.NewEnv(1)
	fabric := sim.NewFabric(env, "eth", 5*sim.Microsecond)
	fabric.AddNode("nodeA", 12.5e9)
	fabric.AddNode("nodeB", 12.5e9)
	reg := NewRegistry()
	cpu := sim.NewCPU(env, "cpu", 8, 3.0, 2000)
	a := New(env, reg, fabric, cpu, "ent.a", "nodeA", Config{Lanes: 4})
	b := New(env, reg, fabric, cpu, "ent.b", "nodeB", Config{})
	delivered := 0
	b.SetDispatcher(func(p *sim.Proc, src string, m cephmsg.Message) { delivered++ })
	env.Spawn("starter", func(p *sim.Proc) {
		for i := uint64(1); i <= 20; i++ {
			a.Send("ent.b", &cephmsg.MOSDOp{Tid: i, Object: fmt.Sprintf("o%d", i),
				Op: cephmsg.OpWrite, Data: wire.FromBytes(make([]byte, 4096))})
		}
	})
	if err := env.RunUntil(sim.Time(sim.Second)); err != nil {
		t.Fatal(err)
	}
	env.Shutdown()
	if delivered != 20 {
		t.Fatalf("delivered %d of 20", delivered)
	}
	if n := len(b.conns["ent.a"].lanes); n < 2 {
		t.Fatalf("receiver grew only %d lanes", n)
	}
}

func TestLaneKeyGroupsByOrderingDomain(t *testing.T) {
	// Same object: same key. Replication traffic keys by PG. Keyless
	// messages (maps, pings) must report no key at all.
	k1, ok1 := cephmsg.LaneKey(&cephmsg.MOSDOp{Object: "x"})
	k2, ok2 := cephmsg.LaneKey(&cephmsg.MOSDOpReply{Object: "x"})
	if !ok1 || !ok2 || k1 != k2 {
		t.Fatalf("op/reply keys differ for one object: %d/%v vs %d/%v", k1, ok1, k2, ok2)
	}
	r1, rok1 := cephmsg.LaneKey(&cephmsg.MRepOp{PGID: 9})
	r2, rok2 := cephmsg.LaneKey(&cephmsg.MRepOpReply{PGID: 9})
	if !rok1 || !rok2 || r1 != r2 || r1 != 9 {
		t.Fatalf("rep-op keys: %d/%v vs %d/%v", r1, rok1, r2, rok2)
	}
	if _, ok := cephmsg.LaneKey(&cephmsg.MPing{}); ok {
		t.Fatal("MPing reported a lane key")
	}
	if _, ok := cephmsg.LaneKey(&cephmsg.MOSDMap{}); ok {
		t.Fatal("MOSDMap reported a lane key")
	}
}

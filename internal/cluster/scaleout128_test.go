package cluster

import (
	"runtime"
	"testing"

	"doceph/internal/radosbench"
	"doceph/internal/sim"
)

// zipf128ScaleOut is the full 16-rack x 8-OSD scenario from -exp scaleout128,
// shrunk in duration only: Zipf popularity over the CRUSH-homed catalog,
// replica-read balancing on, imbalance arrays collected. Everything that
// could plausibly leak worker-count nondeterminism (popularity draws,
// balanced-read routing, queue-depth sampling) is switched on.
func zipf128ScaleOut(seed int64) ScaleOutConfig {
	return ScaleOutConfig{
		Pods:        16,
		OSDsPerPod:  8,
		Mode:        DoCeph,
		Seed:        seed,
		Threads:     2,
		ObjectBytes: 64 << 10,
		ReadPercent: 70,
		// Prepopulating the 1024-object catalog takes ~200ms of sim time at
		// this scale; the duration must clear it or no reads ever issue.
		Duration:         300 * sim.Millisecond,
		Warmup:           50 * sim.Millisecond,
		BeaconPeriod:     10 * sim.Millisecond,
		Popularity:       radosbench.Popularity{Kind: radosbench.PopZipf},
		BalanceReads:     true,
		CollectImbalance: true,
	}
}

// TestScaleOut128ZipfBitIdenticalAcrossWorkersAndGOMAXPROCS is the scale-out
// determinism sweep: the 128-OSD Zipf run is a pure function of (config,
// seed) — bit-identical across worker counts {1,2,4,8}, GOMAXPROCS {1,N},
// and reruns, for several seeds.
func TestScaleOut128ZipfBitIdenticalAcrossWorkersAndGOMAXPROCS(t *testing.T) {
	if testing.Short() {
		t.Skip("128-OSD property sweep is slow")
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	maxprocs := []int{1, runtime.NumCPU()}
	if maxprocs[1] == 1 {
		maxprocs = maxprocs[:1]
	}
	for seed := int64(1); seed <= 4; seed++ {
		cfg := zipf128ScaleOut(seed)
		runtime.GOMAXPROCS(prev)
		want := scaleOutFingerprint(t, cfg, 1)
		// Run-twice: same config, same workers, fresh assembly.
		if again := scaleOutFingerprint(t, cfg, 1); again != want {
			t.Fatalf("seed=%d: rerun diverged:\n %s\n %s", seed, want, again)
		}
		for _, mp := range maxprocs {
			runtime.GOMAXPROCS(mp)
			for _, workers := range []int{1, 2, 4, 8} {
				if got := scaleOutFingerprint(t, cfg, workers); got != want {
					t.Fatalf("seed=%d workers=%d GOMAXPROCS=%d diverged:\n got %s\nwant %s",
						seed, workers, mp, got, want)
				}
			}
		}
	}
}

// TestScaleOutPopularityDeterminismSmall is the always-run (short-mode) slice
// of the sweep: a 4x2 cluster with the same Zipf + balance-reads + imbalance
// collection stack must be bit-identical across worker counts and reruns.
func TestScaleOutPopularityDeterminismSmall(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		cfg := smallScaleOut(seed)
		cfg.ReadPercent = 70
		cfg.Popularity = radosbench.Popularity{Kind: radosbench.PopZipf}
		cfg.BalanceReads = true
		cfg.CollectImbalance = true
		a := scaleOutFingerprint(t, cfg, 4)
		if b := scaleOutFingerprint(t, cfg, 4); b != a {
			t.Fatalf("seed=%d: reruns diverged:\n %s\n %s", seed, a, b)
		}
		if c := scaleOutFingerprint(t, cfg, 1); c != a {
			t.Fatalf("seed=%d: result depends on worker count:\n w4 %s\n w1 %s", seed, a, c)
		}
	}
}

// TestScaleOutPopularityChangesTrajectory guards against the popularity
// knobs silently not engaging: Zipf vs uniform vs hotspot vs legacy must all
// yield distinct trajectories, or the determinism sweep above is vacuous.
func TestScaleOutPopularityChangesTrajectory(t *testing.T) {
	base := smallScaleOut(3)
	base.ReadPercent = 70
	// Collect the per-OSD/PG arrays: aggregate totals alone can coincide
	// between popularity shapes on a cluster this small.
	base.CollectImbalance = true
	variant := func(kind radosbench.PopKind) string {
		cfg := base
		cfg.Popularity = radosbench.Popularity{Kind: kind}
		return scaleOutFingerprint(t, cfg, 2)
	}
	legacy := scaleOutFingerprint(t, base, 2)
	uniform := variant(radosbench.PopUniform)
	zipf := variant(radosbench.PopZipf)
	hotspot := variant(radosbench.PopHotspot)
	fps := map[string]string{"legacy": legacy, "uniform": uniform, "zipf": zipf, "hotspot": hotspot}
	seen := map[string]string{}
	for name, fp := range fps {
		if other, dup := seen[fp]; dup {
			t.Fatalf("%s and %s produced identical trajectories", name, other)
		}
		seen[fp] = name
	}
}

// TestScaleOut128CollectsImbalance checks the tentpole's observability
// contract on the real 128-OSD shape: every OSD slot is present, ops landed
// on them, per-PG counts line up with the per-rack PG count, queue-depth
// samples were taken, and balanced reads actually happened.
func TestScaleOut128CollectsImbalance(t *testing.T) {
	if testing.Short() {
		t.Skip("128-OSD run is slow")
	}
	cfg := zipf128ScaleOut(42)
	so := NewScaleOut(cfg)
	defer so.Shutdown()
	res, err := so.Run(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.OSDOps) != 128 || len(res.OSDReads) != 128 || len(res.OSDBalancedReads) != 128 {
		t.Fatalf("OSD arrays: ops=%d reads=%d balanced=%d, want 128 each",
			len(res.OSDOps), len(res.OSDReads), len(res.OSDBalancedReads))
	}
	wantPGs := 16 * int(so.Cfg.PGs)
	if len(res.PGOps) != wantPGs {
		t.Fatalf("PG array: %d, want %d", len(res.PGOps), wantPGs)
	}
	if len(res.QueueDepthSamples) == 0 {
		t.Fatal("no queue-depth samples collected")
	}
	var ops, balanced int64
	for _, n := range res.OSDOps {
		ops += n
	}
	for _, n := range res.OSDBalancedReads {
		balanced += n
	}
	if ops == 0 {
		t.Fatal("no per-OSD ops attributed")
	}
	if balanced == 0 {
		t.Fatal("balance-reads on but no balanced reads served")
	}
}

package cluster

import (
	"fmt"
	"testing"

	"doceph/internal/messenger"
	"doceph/internal/radosbench"
	"doceph/internal/sim"
	"doceph/internal/wire"
)

func runBody(t *testing.T, cl *Cluster, body func(p *sim.Proc)) {
	t.Helper()
	done := false
	cl.Env.Spawn("test-body", func(p *sim.Proc) {
		p.SetThread(sim.NewThread("tester", "client"))
		body(p)
		done = true
	})
	err := cl.Env.RunUntil(sim.Time(10 * 60 * sim.Second))
	if !done {
		t.Fatalf("body did not finish: %v", err)
	}
	cl.Shutdown()
}

func TestBaselineClusterEndToEnd(t *testing.T) {
	cl := New(Config{Mode: Baseline, WireEncode: true})
	runBody(t, cl, func(p *sim.Proc) {
		data := wire.FromBytes(make([]byte, 256<<10))
		if err := cl.Client.Write(p, "obj", data); err != nil {
			t.Fatal(err)
		}
		got, err := cl.Client.Read(p, "obj", 0, 0)
		if err != nil || got.Length() != 256<<10 {
			t.Fatalf("read err=%v", err)
		}
	})
}

func TestDoCephClusterEndToEnd(t *testing.T) {
	cl := New(Config{Mode: DoCeph, WireEncode: true})
	runBody(t, cl, func(p *sim.Proc) {
		data := make([]byte, 3<<20)
		for i := range data {
			data[i] = byte(i * 31)
		}
		bl := wire.FromBytes(data)
		if err := cl.Client.Write(p, "obj", bl); err != nil {
			t.Fatal(err)
		}
		got, err := cl.Client.Read(p, "obj", 0, 0)
		if err != nil || got.CRC32C() != bl.CRC32C() {
			t.Fatalf("read mismatch err=%v", err)
		}
		// Data must really reside in the host BlueStore, replicated.
		pg := cl.Client.Map().PGForObject("obj")
		coll := fmt.Sprintf("pg.%d", pg)
		for i, n := range cl.Nodes {
			blh, err := n.Store.Read(p, coll, "obj", 0, 0)
			if err != nil || blh.CRC32C() != bl.CRC32C() {
				t.Fatalf("node %d host store mismatch: %v", i, err)
			}
		}
		// The DMA path was actually used.
		if cl.Nodes[0].Bridge.EngUp.Stats().Transfers == 0 &&
			cl.Nodes[1].Bridge.EngUp.Stats().Transfers == 0 {
			t.Fatal("no DMA transfers recorded")
		}
	})
}

func TestDoCephHostRunsOnlyBlueStoreSide(t *testing.T) {
	cl := New(Config{Mode: DoCeph})
	runBody(t, cl, func(p *sim.Proc) {
		if err := cl.Client.Write(p, "x", wire.FromBytes(make([]byte, 1<<20))); err != nil {
			t.Fatal(err)
		}
		p.Wait(sim.Second)
	})
	// Host CPUs must have no messenger or OSD-thread work in DoCeph mode.
	m := func() map[string]sim.Duration {
		out := map[string]sim.Duration{}
		for _, n := range cl.Nodes {
			for k, v := range n.HostCPU.Stats().BusyByCat {
				out[k] += v
			}
		}
		return out
	}()
	if m[messenger.ThreadCat] > 0 || m["tp_osd_tp"] > 0 {
		t.Fatalf("host ran Ceph daemon work: %v", m)
	}
	if m["bstore"] <= 0 {
		t.Fatal("host BlueStore idle")
	}
}

func TestBaselineMessengerDominatesHostCPU(t *testing.T) {
	cl := New(Config{Mode: Baseline})
	cfg := radosbench.Config{
		Threads: 8, ObjectBytes: 1 << 20,
		Duration: 5 * sim.Second, Warmup: sim.Second,
		OnWarmupEnd: cl.ResetHostStats,
	}
	res, err := radosbench.Run(cl.Env, cl.Client, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cl.Shutdown()
	if res.Ops == 0 {
		t.Fatal("no ops completed")
	}
	m := cl.HostCPUMerged()
	share := m.ShareOf(messenger.ThreadCat)
	if share < 0.5 {
		t.Fatalf("messenger share=%.2f, want the dominant component", share)
	}
}

func TestBenchWriteProducesStats(t *testing.T) {
	cl := New(Config{Mode: Baseline})
	res, err := radosbench.Run(cl.Env, cl.Client, radosbench.Config{
		Threads: 4, ObjectBytes: 1 << 20,
		Duration: 4 * sim.Second, Warmup: sim.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	cl.Shutdown()
	if res.Ops == 0 || res.IOPS() <= 0 || res.ThroughputBps() <= 0 {
		t.Fatalf("res=%+v", res)
	}
	if res.AvgLatency <= 0 || res.MinLatency > res.AvgLatency || res.AvgLatency > res.MaxLatency {
		t.Fatalf("latency ordering: %+v", res)
	}
	if res.P50 > res.P99 {
		t.Fatalf("percentiles: p50=%v p99=%v", res.P50, res.P99)
	}
	if len(res.PerSecond) == 0 {
		t.Fatal("no per-second samples")
	}
	// Little's law sanity: ops_in_flight = IOPS x latency ~= threads.
	inFlight := res.IOPS() * res.AvgLatency.Seconds()
	if inFlight < 2 || inFlight > 5 {
		t.Fatalf("Little's law violated: %f in flight for 4 threads", inFlight)
	}
}

func TestBenchReadWorkload(t *testing.T) {
	cl := New(Config{Mode: Baseline})
	res, err := radosbench.Run(cl.Env, cl.Client, radosbench.Config{
		Threads: 4, ObjectBytes: 512 << 10, Op: radosbench.Read,
		PrepopulateObjects: 16,
		Duration:           3 * sim.Second, Warmup: sim.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	cl.Shutdown()
	if res.Ops == 0 || res.Bytes != res.Ops*(512<<10) {
		t.Fatalf("res=%+v", res)
	}
}

func TestDoCephBenchRuns(t *testing.T) {
	cl := New(Config{Mode: DoCeph})
	res, err := radosbench.Run(cl.Env, cl.Client, radosbench.Config{
		Threads: 8, ObjectBytes: 4 << 20,
		Duration: 5 * sim.Second, Warmup: sim.Second,
		OnWarmupEnd: cl.ResetHostStats,
	})
	if err != nil {
		t.Fatal(err)
	}
	b := cl.ProxyBreakdownMerged()
	cl.Shutdown()
	if res.Ops == 0 {
		t.Fatal("no ops")
	}
	if b.Requests == 0 || b.DMA <= 0 {
		t.Fatalf("breakdown=%+v", b)
	}
}

func TestHostCPUBaselineVsDoCeph(t *testing.T) {
	util := func(mode Mode) float64 {
		cl := New(Config{Mode: mode})
		_, err := radosbench.Run(cl.Env, cl.Client, radosbench.Config{
			Threads: 16, ObjectBytes: 4 << 20,
			Duration: 5 * sim.Second, Warmup: sim.Second,
			OnWarmupEnd: cl.ResetHostStats,
		})
		if err != nil {
			t.Fatal(err)
		}
		u := cl.HostCPUMerged().SingleCoreUtilization()
		cl.Shutdown()
		return u
	}
	base, doceph := util(Baseline), util(DoCeph)
	if doceph >= base/4 {
		t.Fatalf("DoCeph host CPU %.3f not clearly below baseline %.3f", doceph, base)
	}
}

func TestBenchMixedWorkload(t *testing.T) {
	cl := New(Config{Mode: DoCeph})
	res, err := radosbench.Run(cl.Env, cl.Client, radosbench.Config{
		Threads: 8, ObjectBytes: 1 << 20, Op: radosbench.Mixed,
		ReadPercent: 50, PrepopulateObjects: 16,
		Duration: 4 * sim.Second, Warmup: sim.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	cl.Shutdown()
	if res.Ops == 0 {
		t.Fatal("no ops")
	}
	// Both paths exercised: the host stores served reads and the proxies
	// shipped write transactions during the whole run (including warmup).
	var reads, writes int64
	for _, n := range cl.Nodes {
		reads += n.Store.Stats().BytesRead
		writes += n.Bridge.Proxy.Stats().DataPlaneTxns
	}
	if reads == 0 || writes == 0 {
		t.Fatalf("reads=%d writeTxns=%d", reads, writes)
	}
}

// TestPrimaryLoadBalanced: with 128 PGs over 2 equal hosts, primary duty
// (and therefore client traffic) must split roughly evenly.
func TestPrimaryLoadBalanced(t *testing.T) {
	cl := New(Config{Mode: Baseline})
	defer cl.Shutdown()
	counts := map[int32]int{}
	m := cl.Client.Map()
	for pg := uint32(0); pg < m.PGCount; pg++ {
		counts[m.Primary(pg)]++
	}
	a, b := counts[0], counts[1]
	if a+b != int(m.PGCount) {
		t.Fatalf("counts=%v", counts)
	}
	ratio := float64(a) / float64(b)
	if ratio < 0.6 || ratio > 1.67 {
		t.Fatalf("primary imbalance: %d vs %d", a, b)
	}
}

// TestMgrCollectsDuringBench: the manager's polls ride the same messengers
// as the workload and keep reporting under load.
func TestMgrCollectsDuringBench(t *testing.T) {
	cl := New(Config{Mode: DoCeph})
	_, err := radosbench.Run(cl.Env, cl.Client, radosbench.Config{
		Threads: 8, ObjectBytes: 1 << 20,
		Duration: 10 * sim.Second, Warmup: sim.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Shutdown()
	if cl.Mgr.Replies() == 0 {
		t.Fatal("mgr got no reports during the bench")
	}
	if cl.Mgr.ClusterTotal("client_writes") == 0 {
		t.Fatal("mgr reports show no writes")
	}
	h := cl.Mgr.AssessHealth(cl.Mon.Map())
	if h.Grade != "HEALTH_OK" {
		t.Fatalf("health=%v", h)
	}
}

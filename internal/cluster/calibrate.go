package cluster

import "doceph/internal/sim"

// calibrate fills the per-layer cost models with the constants that map the
// simulation onto the paper's measured shapes. The anchors (derived in
// EXPERIMENTS.md from the paper's own numbers) are:
//
//   - Baseline 100G/4MB: total Ceph host CPU ~= 0.70 of one core with the
//     messenger at ~80% of it (Fig. 5/7); aggregate throughput disk-bound
//     near 476 MB/s on PM893-class SATA SSDs (Fig. 10: 119 IOPS x 4 MB).
//   - Baseline context switches ~10x higher in the messenger than in the
//     ObjectStore (Table 2).
//   - DoCeph host CPU flat at 5-6% of one core across request sizes
//     (Fig. 7), dominated by BlueStore + the DMA polling thread.
//   - DoCeph 1 MB latency inflated by DMA-wait (~45% of total), shrinking
//     to ~12% at 16 MB thanks to segment pipelining (Table 3 / Fig. 9).
//
// All values are per-layer defaults already (messenger.DefaultConfig etc.);
// this function only overrides where the testbed differs from the layer
// defaults. Keeping every constant in one file makes the calibration
// auditable.
func calibrate(cfg Config) Config {
	// Messenger: kernel TCP path costs. ~1.4 cycles/byte per direction
	// (copy + checksum) at 3.6 GHz reproduces the ~0.7-core total at
	// 476 MB/s with 2x replication.
	// (messenger.DefaultConfig already encodes these; nothing to override.)

	// BlueStore: PM893 sequential writes plus ~0.35 cycles/byte of
	// checksumming keep the ObjectStore share of CPU near the paper's
	// ~10-15%.
	// (bluestore.DefaultConfig already encodes these.)

	// DoCeph host side: the polling thread's idle burn dominates the small
	// flat host usage. 1200 cycles per 50 us poll ~= 0.7% of one 3.6 GHz
	// core per node.
	if cfg.Bridge.Host.PollIdleCycles == 0 {
		cfg.Bridge.Host.PollIdleCycles = 900
	}

	// DMA engine: ~4 GB/s sustained with 25 us setup per <=2 MB segment
	// matches the per-size DMA times of Table 3 to within the shapes the
	// paper reports.
	// (doca.DefaultEngineConfig already encodes these.)

	// Heartbeats (the paper's coordination traffic) are on by default.
	if cfg.OSD.HeartbeatInterval == 0 {
		cfg.OSD.HeartbeatInterval = sim.Second
	}

	cfg.Messenger.WireEncode = cfg.WireEncode
	return cfg
}

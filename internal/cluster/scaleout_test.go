package cluster

import (
	"encoding/json"
	"reflect"
	"runtime"
	"testing"

	"doceph/internal/sim"
)

func smallScaleOut(seed int64) ScaleOutConfig {
	return ScaleOutConfig{
		Pods:         4,
		OSDsPerPod:   2,
		Mode:         DoCeph,
		Seed:         seed,
		Threads:      2,
		ObjectBytes:  64 << 10,
		Duration:     40 * sim.Millisecond,
		Warmup:       10 * sim.Millisecond,
		BeaconPeriod: 10 * sim.Millisecond,
	}
}

func scaleOutFingerprint(t *testing.T, cfg ScaleOutConfig, workers int) string {
	t.Helper()
	so := NewScaleOut(cfg)
	defer so.Shutdown()
	res, err := so.Run(workers)
	if err != nil {
		t.Fatalf("seed=%d workers=%d: %v", cfg.Seed, workers, err)
	}
	if res.TotalOps == 0 {
		t.Fatalf("seed=%d workers=%d: no ops completed", cfg.Seed, workers)
	}
	if res.Beacons == 0 || res.Epochs == 0 {
		t.Fatalf("seed=%d workers=%d: no cross-partition control traffic (beacons=%d epochs=%d)",
			cfg.Seed, workers, res.Beacons, res.Epochs)
	}
	// Rounds/Windows are kernel bookkeeping, identical across workers for a
	// fixed partitioning; include them so any drift fails loudly.
	fp, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return string(fp)
}

// TestScaleOutBitIdenticalAcrossWorkersAndGOMAXPROCS is the tentpole
// property: the scale-out result is a pure function of (config, seed) —
// worker count and GOMAXPROCS must not leak into any observable field.
func TestScaleOutBitIdenticalAcrossWorkersAndGOMAXPROCS(t *testing.T) {
	if testing.Short() {
		t.Skip("property sweep is slow")
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	maxprocs := []int{1, runtime.NumCPU()}
	if maxprocs[1] == 1 {
		maxprocs = maxprocs[:1]
	}
	for seed := int64(1); seed <= 8; seed++ {
		cfg := smallScaleOut(seed)
		runtime.GOMAXPROCS(prev)
		want := scaleOutFingerprint(t, cfg, 1)
		for _, mp := range maxprocs {
			runtime.GOMAXPROCS(mp)
			for _, workers := range []int{1, 2, 4, 8} {
				if got := scaleOutFingerprint(t, cfg, workers); got != want {
					t.Fatalf("seed=%d workers=%d GOMAXPROCS=%d diverged:\n got %s\nwant %s",
						seed, workers, mp, got, want)
				}
			}
		}
	}
}

func TestScaleOutRunTwiceDeterminism(t *testing.T) {
	cfg := smallScaleOut(7)
	a := scaleOutFingerprint(t, cfg, 4)
	b := scaleOutFingerprint(t, cfg, 4)
	if a != b {
		t.Fatalf("reruns diverged:\n %s\n %s", a, b)
	}
}

// TestScaleOutMixedReadDeterminism runs the 70/30 mixed workload (rack-local
// prepopulation + fixed read/write split) on the partitioned kernel with 4
// workers: for every seed, reruns must be bit-identical, and the mix must
// not change the worker-independence property.
func TestScaleOutMixedReadDeterminism(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		cfg := smallScaleOut(seed)
		cfg.ReadPercent = 70
		a := scaleOutFingerprint(t, cfg, 4)
		b := scaleOutFingerprint(t, cfg, 4)
		if a != b {
			t.Fatalf("seed=%d: mixed reruns diverged:\n %s\n %s", seed, a, b)
		}
		if seed == 1 {
			if c := scaleOutFingerprint(t, cfg, 1); c != a {
				t.Fatalf("seed=%d: mixed result depends on worker count:\n w4 %s\n w1 %s", seed, a, c)
			}
			// The mix must actually change the trajectory vs write-only, or
			// this gate is vacuous.
			if wo := scaleOutFingerprint(t, smallScaleOut(seed), 4); wo == a {
				t.Fatal("70/30 mix produced the write-only trajectory")
			}
		}
	}
}

func TestScaleOutSeedsDiffer(t *testing.T) {
	// Different seeds must actually change the trajectory, or the property
	// test above is vacuous.
	a := scaleOutFingerprint(t, smallScaleOut(1), 2)
	b := scaleOutFingerprint(t, smallScaleOut(2), 2)
	if a == b {
		t.Fatal("seeds 1 and 2 produced identical results")
	}
}

func TestPartitionPlan(t *testing.T) {
	got := PartitionPlan(32, 8)
	if len(got) != 8 {
		t.Fatalf("pods=%d", len(got))
	}
	if !reflect.DeepEqual(got[0], []int32{0, 1, 2, 3}) || !reflect.DeepEqual(got[7], []int32{28, 29, 30, 31}) {
		t.Fatalf("plan=%v", got)
	}
	// Uneven split: leading pods absorb the remainder.
	got = PartitionPlan(7, 3)
	want := [][]int32{{0, 1, 2}, {3, 4}, {5, 6}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
	// More pods than OSDs clamps to one OSD per pod.
	if got = PartitionPlan(2, 5); len(got) != 2 {
		t.Fatalf("clamp failed: %v", got)
	}
}

func TestCrossRackLookaheadIsPositiveAndModelDerived(t *testing.T) {
	la := CrossRackLookahead(Config{})
	if la <= 0 {
		t.Fatalf("lookahead=%v", la)
	}
	cfg := Config{}.withDefaults()
	if la <= 5*cfg.LinkLatency {
		t.Fatalf("lookahead %v must include DPU setup and disk floors beyond link latency", la)
	}
	// The default scale-out config derives its link latency from the model.
	so := ScaleOutConfig{}.withDefaults()
	if so.CrossRackLatency != CrossRackLookahead(so.rackConfig(0)) {
		t.Fatalf("default cross-rack latency %v != derived lookahead", so.CrossRackLatency)
	}
}

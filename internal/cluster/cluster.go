// Package cluster assembles the two deployments the paper compares on its
// three-node testbed (§5.1):
//
//   - Baseline: the BlueField-3 operates as a plain NIC; monitor, OSDs and
//     BlueStore all run on the host CPUs.
//   - DoCeph: the SmartNIC switches to DPU mode; monitor and OSDs (with
//     their messengers) run on the DPU ARM cores, each OSD backed by a
//     core.Proxy, while the host retains only BlueStore plus the small
//     RPC/DMA server.
//
// The calibration constants that map simulated cycles to the paper's
// measured shapes live in calibrate.go and are documented in EXPERIMENTS.md.
package cluster

import (
	"fmt"

	"doceph/internal/bluestore"
	"doceph/internal/core"
	"doceph/internal/crush"
	"doceph/internal/doca"
	"doceph/internal/dpu"
	"doceph/internal/faultinject"
	"doceph/internal/messenger"
	"doceph/internal/mgr"
	"doceph/internal/mon"
	"doceph/internal/objstore"
	"doceph/internal/osd"
	"doceph/internal/osdmap"
	"doceph/internal/rados"
	"doceph/internal/sim"
	"doceph/internal/telemetry"
	"doceph/internal/trace"
)

// Mode selects the deployment.
type Mode int

// Deployment modes.
const (
	Baseline Mode = iota
	DoCeph
)

func (m Mode) String() string {
	if m == DoCeph {
		return "doceph"
	}
	return "baseline"
}

// Config describes a testbed. Zero values take the paper's §5.1 defaults.
type Config struct {
	Mode         Mode
	StorageNodes int
	Replicas     int
	PGs          uint32
	Seed         int64

	// MinSize is the Ceph-style write quorum floor (osdmap.Map.MinSize):
	// PGs accept degraded writes down to MinSize acting members and reject
	// them with ResNoQuorum below that. Zero (the default) disables the
	// gate, preserving the legacy accept-always behaviour.
	MinSize int

	// LinkBytesPerSec is the Ethernet line rate (12.5e9 = 100 Gbps,
	// 0.125e9 = 1 Gbps).
	LinkBytesPerSec float64
	LinkLatency     sim.Duration

	// Host hardware (per node): AMD EPYC 9474F-like.
	HostCores   int
	HostFreqGHz float64

	// Disk: Samsung PM893-like SATA SSD.
	DiskWriteBps float64
	DiskReadBps  float64
	DiskIOLat    sim.Duration

	// Layer overrides (zero-valued fields inherit each layer's defaults,
	// already calibrated in calibrate.go).
	Messenger messenger.Config
	OSD       osd.Config
	BlueStore bluestore.Config
	DPU       dpu.Config
	Bridge    core.BridgeConfig
	Client    rados.Config

	// WireEncode turns on real message serialization end to end (slower,
	// used by integrity tests).
	WireEncode bool

	// Trace threads an op-level span tracer through every layer (client,
	// messengers, OSDs, stores, DPU proxy and host server); the assembled
	// tracer is exposed as Cluster.Tracer. Off (the default) every hook
	// stays on its zero-cost nil path. Tracing is pure bookkeeping: it
	// never changes simulated timing or results.
	Trace bool
}

func (c Config) withDefaults() Config {
	if c.StorageNodes == 0 {
		c.StorageNodes = 2
	}
	if c.Replicas == 0 {
		c.Replicas = 2
	}
	if c.PGs == 0 {
		c.PGs = 128
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.LinkBytesPerSec == 0 {
		c.LinkBytesPerSec = Link100G
	}
	if c.LinkLatency == 0 {
		c.LinkLatency = 5 * sim.Microsecond
	}
	if c.HostCores == 0 {
		c.HostCores = 48
	}
	if c.HostFreqGHz == 0 {
		c.HostFreqGHz = 3.6
	}
	if c.DiskWriteBps == 0 {
		c.DiskWriteBps = 520e6
	}
	if c.DiskReadBps == 0 {
		c.DiskReadBps = 550e6
	}
	if c.DiskIOLat == 0 {
		c.DiskIOLat = 30 * sim.Microsecond
	}
	return c
}

// Link rates used by the experiments.
const (
	Link100G = 12.5e9
	Link1G   = 0.125e9
)

// StorageNode is one cluster node: always a host CPU + disk + BlueStore; in
// DoCeph mode additionally the DPU complex.
type StorageNode struct {
	Name    string
	HostCPU *sim.CPU
	Disk    *sim.Disk
	Store   *bluestore.Store
	OSD     *osd.OSD
	// DPU and Bridge are nil in Baseline mode.
	DPU    *dpu.DPU
	Bridge *core.Bridge
}

// Cluster is an assembled testbed ready to run workloads.
type Cluster struct {
	Env      *sim.Env
	Fabric   *sim.Fabric
	Registry *messenger.Registry
	Mon      *mon.Monitor
	Mgr      *mgr.Manager
	Nodes    []*StorageNode
	Client   *rados.Client
	// ClientCPU is the client node's CPU (not measured by the paper).
	ClientCPU *sim.CPU
	// Tracer is the op-level span tracer, nil unless Config.Trace is set.
	Tracer *trace.Tracer

	cfg Config
}

// New assembles a cluster per cfg.
func New(cfg Config) *Cluster {
	cfg = cfg.withDefaults()
	cfg = calibrate(cfg)
	env := sim.NewEnv(cfg.Seed)
	fabric := sim.NewFabric(env, "eth", cfg.LinkLatency)
	reg := messenger.NewRegistry()

	crushMap := crush.BuildUniform(cfg.StorageNodes, 1, 1.0)
	baseMap := osdmap.New(crushMap, cfg.PGs, cfg.Replicas)
	baseMap.MinSize = cfg.MinSize

	cl := &Cluster{Env: env, Fabric: fabric, Registry: reg, cfg: cfg}
	if cfg.Trace {
		cl.Tracer = trace.New(env)
	}

	fabric.AddNode("client-node", cfg.LinkBytesPerSec)
	cl.ClientCPU = sim.NewCPU(env, "client-cpu", 32, 3.2, 2000)

	for i := 0; i < cfg.StorageNodes; i++ {
		node := &StorageNode{Name: fmt.Sprintf("node%d", i)}
		fabric.AddNode(node.Name, cfg.LinkBytesPerSec)
		node.HostCPU = sim.NewCPU(env, "host-"+node.Name, cfg.HostCores, cfg.HostFreqGHz, 2500)
		node.Disk = sim.NewDisk(env, "ssd-"+node.Name, cfg.DiskWriteBps, cfg.DiskReadBps, cfg.DiskIOLat)
		node.Store = bluestore.New(env, node.Name, node.HostCPU, node.Disk, cfg.BlueStore)
		node.Store.SetTracer(cl.Tracer)

		// The CPU that runs Ceph daemons (OSD + messenger + MON) depends on
		// the mode; the store backend the OSD sees does too.
		daemonCPU := node.HostCPU
		var backend objstore.Store = node.Store
		if cfg.Mode == DoCeph {
			node.DPU = dpu.New(env, fmt.Sprintf("bf3-%d", i), cfg.DPU)
			node.Bridge = core.NewBridge(env, node.DPU, node.HostCPU, node.Store, cfg.Bridge)
			node.Bridge.Proxy.SetTracer(cl.Tracer)
			node.Bridge.Host.SetTracer(cl.Tracer)
			daemonCPU = node.DPU.CPU
			backend = node.Bridge.Proxy
		}

		if i == 0 {
			mmsgr := messenger.New(env, reg, fabric, daemonCPU, "mon.0", node.Name, cfg.Messenger)
			cl.Mon = mon.New(env, daemonCPU, mmsgr, baseMap.Next(), mon.Config{})
		}
		omsgr := messenger.New(env, reg, fabric, daemonCPU, osd.Name(int32(i)), node.Name, cfg.Messenger)
		omsgr.SetTracer(cl.Tracer)
		ocfg := cfg.OSD
		ocfg.Monitor = "mon.0"
		node.OSD = osd.New(env, daemonCPU, int32(i), omsgr, backend, baseMap, ocfg)
		node.OSD.SetTracer(cl.Tracer)
		cl.Mon.Subscribe(osd.Name(int32(i)))
		cl.Nodes = append(cl.Nodes, node)
	}

	// The MGR polls every OSD from the first node's daemon CPU (paper
	// §5.1: "the full Ceph cluster (MON, MGR, and OSD)").
	mgrCPU := cl.Nodes[0].HostCPU
	if cfg.Mode == DoCeph {
		mgrCPU = cl.Nodes[0].DPU.CPU
	}
	var osdNames []string
	for i := range cl.Nodes {
		osdNames = append(osdNames, osd.Name(int32(i)))
	}
	gmsgr := messenger.New(env, reg, fabric, mgrCPU, "mgr.0", cl.Nodes[0].Name, cfg.Messenger)
	cl.Mgr = mgr.New(env, mgrCPU, gmsgr, osdNames, mgr.Config{})

	cmsgr := messenger.New(env, reg, fabric, cl.ClientCPU, "client.0", "client-node", cfg.Messenger)
	cmsgr.SetTracer(cl.Tracer)
	ccfg := cfg.Client
	ccfg.Monitor = "mon.0"
	cl.Client = rados.New(env, cl.ClientCPU, cmsgr, baseMap, ccfg)
	cl.Client.SetTracer(cl.Tracer)
	cl.Mon.Subscribe("client.0")
	return cl
}

// Config returns the post-default, post-calibration configuration.
func (c *Cluster) Config() Config { return c.cfg }

// FaultTargets binds this cluster's live components for fault injection.
// In Baseline mode the DPU target maps stay empty, so DPU fault kinds are
// no-ops — the same plan can drive both deployments.
func (c *Cluster) FaultTargets() faultinject.Targets {
	t := faultinject.Targets{
		Fabric:   c.Fabric,
		Stores:   make(map[string]*bluestore.Store),
		StoreOSD: make(map[string]int32),
		OSDs:     make(map[int32]*osd.OSD),
		Mon:      c.Mon,
		Engines:  make(map[string][]*doca.Engine),
		Channels: make(map[string]*doca.CommChannel),
	}
	for i, n := range c.Nodes {
		t.Stores[n.Name] = n.Store
		t.StoreOSD[n.Name] = int32(i)
		t.OSDs[int32(i)] = n.OSD
		if n.Bridge != nil {
			t.Engines[n.Name] = []*doca.Engine{n.Bridge.EngUp, n.Bridge.EngDown}
			t.Channels[n.Name] = n.Bridge.CC
		}
	}
	return t
}

// ResetHostStats starts fresh accounting windows on every host CPU (and DPU
// CPU) — called at the end of benchmark warmup. The tracer window resets
// with it so traced CPU stays comparable to the CPU accounting.
func (c *Cluster) ResetHostStats() {
	c.Tracer.Reset()
	c.ClientCPU.ResetStats()
	for _, n := range c.Nodes {
		n.HostCPU.ResetStats()
		if n.DPU != nil {
			n.DPU.CPU.ResetStats()
		}
		if n.Bridge != nil {
			n.Bridge.Proxy.ResetBreakdown()
		}
	}
}

// HostCPUMerged returns the merged host-CPU accounting across storage nodes
// — the quantity behind Figures 5 and 7 and Table 2.
func (c *Cluster) HostCPUMerged() telemetry.MergedCPU {
	stats := make([]sim.CPUStats, 0, len(c.Nodes))
	for _, n := range c.Nodes {
		stats = append(stats, n.HostCPU.Stats())
	}
	return telemetry.Merge(stats...)
}

// DPUCPUMerged returns the merged DPU ARM accounting (DoCeph mode only).
func (c *Cluster) DPUCPUMerged() telemetry.MergedCPU {
	stats := make([]sim.CPUStats, 0, len(c.Nodes))
	for _, n := range c.Nodes {
		if n.DPU != nil {
			stats = append(stats, n.DPU.CPU.Stats())
		}
	}
	return telemetry.Merge(stats...)
}

// ProxyBreakdownMerged sums the per-phase write accounting across nodes
// (DoCeph mode only).
func (c *Cluster) ProxyBreakdownMerged() core.Breakdown {
	var b core.Breakdown
	for _, n := range c.Nodes {
		if n.Bridge == nil {
			continue
		}
		nb := n.Bridge.Proxy.BreakdownSnapshot()
		b.Requests += nb.Requests
		b.HostWrite += nb.HostWrite
		b.DMA += nb.DMA
		b.DMAWait += nb.DMAWait
	}
	return b
}

// Shutdown reclaims all simulation goroutines.
func (c *Cluster) Shutdown() { c.Env.Shutdown() }

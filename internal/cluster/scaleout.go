// Scale-out assembly: a multi-rack cluster built on the partitioned
// parallel kernel (sim.Group). Each rack ("pod") is a complete DoCeph
// sub-cluster — OSDs, BlueStore, DPU bridges, rack-local MON/MGR and a
// closed-loop client group — living in its own partition with its own
// event heap and worker; replica placement is rack-local (CRUSH failure
// domain = rack). A coordinator partition runs the root monitor: every
// rack agent beacons its health and op counters up on a cross-rack link,
// and the root monitor aggregates them into cluster epochs acked back
// down. Cross-rack links are the only state crossing a partition
// boundary, and their latency is the kernel's lookahead window.
package cluster

import (
	"fmt"

	"doceph/internal/crush"
	"doceph/internal/doca"
	"doceph/internal/osdmap"
	"doceph/internal/rados"
	"doceph/internal/radosbench"
	"doceph/internal/sim"
	"doceph/internal/wire"
)

// PartitionPlan maps a flat space of osds OSD ids onto pods partitions as
// contiguous blocks (rack-style placement: consecutive OSDs share a rack).
// The first osds%pods pods take one extra OSD when the division is uneven.
func PartitionPlan(osds, pods int) [][]int32 {
	if pods <= 0 || osds <= 0 {
		panic(fmt.Sprintf("cluster: partition plan needs positive osds (%d) and pods (%d)", osds, pods))
	}
	if pods > osds {
		pods = osds
	}
	plan := make([][]int32, pods)
	per, extra := osds/pods, osds%pods
	next := int32(0)
	for i := range plan {
		n := per
		if i < extra {
			n++
		}
		for j := 0; j < n; j++ {
			plan[i] = append(plan[i], next)
			next++
		}
	}
	return plan
}

// CrossRackLookahead derives the conservative lookahead bound for
// pod<->coordinator links from the model's own latency floors: five
// rack-link propagation delays for the spine crossing (cfg.LinkLatency),
// plus the DPU DMA engine's first-touch setup floor (doca: descriptor
// setup + doorbell) and the disk I/O floor (cfg.DiskIOLat) — the minimum
// service a cross-rack control message must traverse before it can alter
// a remote rack's data path. Every cross-rack message really takes this
// long, so partitions may safely run ahead of each other by the same
// bound.
func CrossRackLookahead(cfg Config) sim.Duration {
	cfg = cfg.withDefaults()
	eng := doca.DefaultEngineConfig()
	return 5*cfg.LinkLatency + eng.SetupTime + cfg.DiskIOLat
}

// ScaleOutConfig describes a partitioned multi-rack cluster plus the
// closed-loop workload its racks run. Zero values take scale-out defaults
// (8 racks x 4 OSDs = the 32-OSD scenario).
type ScaleOutConfig struct {
	// Pods is the number of racks, one partition each (default 8).
	Pods int
	// OSDsPerPod is the rack size (default 4).
	OSDsPerPod int
	// Mode selects Baseline or DoCeph racks (zero value is Baseline,
	// matching Config; the perf scenarios set DoCeph explicitly).
	Mode Mode
	// Seed seeds the coordinator; rack r derives seed Seed + (r+1)<<32.
	Seed int64
	// Replicas is the rack-local replication factor (default 2).
	Replicas int
	// PGs per rack pool (default 64; racks are independent pools).
	PGs uint32

	// Threads is the closed-loop client count per rack (default 4).
	Threads int
	// ObjectBytes is the write size (default 256 KiB).
	ObjectBytes int64
	// ReadPercent mixes reads into each rack's workload: that share of ops
	// reads back rack-local prepopulated objects, derived from (worker,
	// op-index) like radosbench's fixed-work split so the op set is a pure
	// function of the configuration. 0 (the default) keeps the historical
	// write-only workload with no prepopulation phase.
	ReadPercent int
	// Duration is the measured window (default 2s); Warmup precedes it
	// (default 500ms) and is excluded from the counters.
	Duration sim.Duration
	Warmup   sim.Duration

	// BeaconPeriod is the rack agent's reporting interval (default 50ms).
	BeaconPeriod sim.Duration
	// CrossRackLatency overrides the pod<->coordinator link latency — the
	// lookahead window (default CrossRackLookahead of the rack config).
	CrossRackLatency sim.Duration

	// Popularity switches the workload to a catalog-driven object-popularity
	// model (uniform, Zipf or N-hot). A global rack-aware CRUSH map
	// (crush.BuildRacks over all Pods x OSDsPerPod devices, failure domain =
	// rack) homes each catalog object to the rack owning its global PG's
	// primary, and every rack's clients then draw from their rack's share of
	// the catalog under the model — so real CRUSH drives workload routing
	// while the data plane stays rack-local (the partition constraint).
	// Popularity.Objects sizes the global catalog (default 8 x total OSDs).
	// PopNone (the default) keeps the historical workload and event stream.
	Popularity radosbench.Popularity
	// GlobalPGs is the PG count of the global homing map (default 2 x total
	// OSDs); GlobalReplicas its replica count (default min(3, Pods)). They
	// shape catalog homing only — rack pools keep their own PGs/Replicas.
	GlobalPGs      uint32
	GlobalReplicas int
	// BalanceReads flags reads CEPH_OSD_FLAG_BALANCE_READS so any rack-local
	// acting-set member may serve them, flattening hot primaries.
	BalanceReads bool
	// CollectImbalance gathers per-OSD/per-PG served-op counts and per-tick
	// OSD queue-depth samples into the result (raw arrays; perf computes the
	// max/mean and p99:p50 figures). Sampling rides the existing rack-agent
	// beacon tick, so it adds no events and results stay worker-independent.
	CollectImbalance bool
}

func (c ScaleOutConfig) withDefaults() ScaleOutConfig {
	if c.Pods == 0 {
		c.Pods = 8
	}
	if c.OSDsPerPod == 0 {
		c.OSDsPerPod = 4
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.Replicas == 0 {
		c.Replicas = 2
	}
	if c.PGs == 0 {
		c.PGs = 64
	}
	if c.Threads == 0 {
		c.Threads = 4
	}
	if c.ObjectBytes == 0 {
		c.ObjectBytes = 256 << 10
	}
	if c.Duration == 0 {
		c.Duration = 2 * sim.Second
	}
	if c.Warmup == 0 {
		c.Warmup = 500 * sim.Millisecond
	}
	if c.BeaconPeriod == 0 {
		c.BeaconPeriod = 50 * sim.Millisecond
	}
	if c.CrossRackLatency == 0 {
		c.CrossRackLatency = CrossRackLookahead(c.rackConfig(0))
	}
	if c.Popularity.Kind != radosbench.PopNone {
		c.Popularity = c.Popularity.WithDefaults()
		if c.Popularity.Objects == 0 {
			c.Popularity.Objects = 8 * c.Pods * c.OSDsPerPod
		}
		if c.GlobalPGs == 0 {
			c.GlobalPGs = 2 * uint32(c.Pods*c.OSDsPerPod)
		}
		if c.GlobalReplicas == 0 {
			c.GlobalReplicas = 3
			if c.Pods < 3 {
				c.GlobalReplicas = c.Pods
			}
		}
	}
	return c
}

// rackConfig is the per-rack cluster configuration.
func (c ScaleOutConfig) rackConfig(pod int) Config {
	return Config{
		Mode:         c.Mode,
		StorageNodes: c.OSDsPerPod,
		Replicas:     c.Replicas,
		PGs:          c.PGs,
		Seed:         c.Seed + int64(pod+1)<<32,
		Client:       rados.Config{BalanceReads: c.BalanceReads},
	}
}

// buildCatalogs homes the global object catalog to racks through the
// rack-aware CRUSH hierarchy: object name → global PG → primary OSD → rack
// (device ids are rack-major, so rack = id / OSDsPerPod). Catalog index is
// popularity rank (object 0 hottest); each rack's slice preserves global
// rank order, so rack-local draws keep the configured skew shape.
func (c ScaleOutConfig) buildCatalogs() [][]string {
	gm := osdmap.New(crush.BuildRacks(c.Pods, c.OSDsPerPod, 1, 1.0),
		c.GlobalPGs, c.GlobalReplicas)
	cats := make([][]string, c.Pods)
	for i := 0; i < c.Popularity.Objects; i++ {
		name := fmt.Sprintf("so_obj_%d", i)
		prim := gm.Primary(gm.PGForObject(name))
		if prim < 0 {
			panic(fmt.Sprintf("cluster: catalog object %s has no primary", name))
		}
		rack := int(prim) / c.OSDsPerPod
		cats[rack] = append(cats[rack], name)
	}
	for r, cat := range cats {
		if len(cat) == 0 {
			panic(fmt.Sprintf("cluster: rack %d drew an empty catalog — "+
				"grow Popularity.Objects (%d over %d racks)", r, c.Popularity.Objects, c.Pods))
		}
	}
	return cats
}

// benchPayload builds the immutable workload payload: the same pure
// byte-index fill pattern radosbench uses (kept in sync so stored content
// matches across harnesses), shared read-only by every rack's clients.
func benchPayload(size int64) *wire.Bufferlist {
	b := wire.GetBuffer(int(size))[:size]
	for i := range b {
		b[i] = byte(i * 2654435761)
	}
	return wire.FromBytes(b)
}

// Beacon is the rack agent's periodic report to the root monitor.
type Beacon struct {
	Pod  int
	Ops  int64
	Sent sim.Time
}

// EpochAck is the root monitor's reply: the cluster epoch the beacon was
// folded into.
type EpochAck struct {
	Epoch int64
}

// Pod is one rack: a full sub-cluster bound to its partition plus the
// cross-rack links and the rack-local workload counters.
type Pod struct {
	ID int
	// OSDs are the rack's global OSD ids per the partition plan.
	OSDs    []int32
	Cluster *Cluster
	// Up carries beacons to the coordinator; Down carries epoch acks back.
	Up, Down *sim.XLink

	ops     int64
	bytes   int64
	latSum  sim.Duration
	beacons int64
	acks    int64
	epoch   int64
	err     error
	// qdepth holds per-beacon-tick OSD queue-depth samples (node order,
	// tick-major), populated only under CollectImbalance.
	qdepth []int64
}

// ScaleOut is an assembled partitioned cluster ready to Run.
type ScaleOut struct {
	Cfg   ScaleOutConfig
	Group *sim.Group
	// Coord is the coordinator partition's environment (root monitor).
	Coord *sim.Env
	Pods  []*Pod

	beaconsRx int64
	epochs    int64
	reported  []bool
	pendingRe int
}

// PodResult is one rack's share of a run.
type PodResult struct {
	Pod       int     `json:"pod"`
	OSDs      []int32 `json:"osds"`
	Ops       int64   `json:"ops"`
	Bytes     int64   `json:"bytes"`
	LatSumNs  int64   `json:"lat_sum_ns"`
	Beacons   int64   `json:"beacons"`
	Acks      int64   `json:"acks"`
	LastEpoch int64   `json:"last_epoch"`
	Events    uint64  `json:"events"`
	ClockNs   int64   `json:"clock_ns"`
}

// ScaleOutResult aggregates a run. Every field is a pure function of the
// configuration and seed — never of worker count, GOMAXPROCS or wall
// clock — which is what the determinism property test asserts.
type ScaleOutResult struct {
	Pods       []PodResult `json:"pods"`
	TotalOps   int64       `json:"total_ops"`
	TotalBytes int64       `json:"total_bytes"`
	Beacons    int64       `json:"beacons"`
	Epochs     int64       `json:"epochs"`
	Events     uint64      `json:"events"`
	Rounds     uint64      `json:"rounds"`
	Windows    uint64      `json:"windows"`
	Delivered  uint64      `json:"delivered"`

	// Raw imbalance material, populated only under CollectImbalance
	// (omitted from JSON otherwise, so legacy fingerprints are unchanged).
	// Indexing: OSD arrays by global OSD id (partition-plan order), PGOps
	// by pod*PGs+localPG, QueueDepthSamples pooled over (tick, OSD).
	// perf.ComputeImbalance turns these into the max/mean and p99:p50
	// figures.
	OSDOps            []int64 `json:"osd_ops,omitempty"`
	OSDReads          []int64 `json:"osd_reads,omitempty"`
	OSDBalancedReads  []int64 `json:"osd_balanced_reads,omitempty"`
	PGOps             []int64 `json:"pg_ops,omitempty"`
	QueueDepthSamples []int64 `json:"queue_depth_samples,omitempty"`
}

// AvgLatency returns the mean op latency over the measured window.
func (r ScaleOutResult) AvgLatency() sim.Duration {
	if r.TotalOps == 0 {
		return 0
	}
	var sum sim.Duration
	for _, p := range r.Pods {
		sum += sim.Duration(p.LatSumNs)
	}
	return sum / sim.Duration(r.TotalOps)
}

// NewScaleOut assembles the partitioned cluster: one partition per rack
// plus the coordinator, cross-linked with the lookahead-bounded rack
// links, with the root monitor and every rack's agent, ack listener,
// warmup reset and client group already spawned. Call Run to execute.
func NewScaleOut(cfg ScaleOutConfig) *ScaleOut {
	cfg = cfg.withDefaults()
	g := sim.NewGroup()
	coord := sim.NewEnv(cfg.Seed)
	coordID := g.Add("coord", coord)
	plan := PartitionPlan(cfg.Pods*cfg.OSDsPerPod, cfg.Pods)

	s := &ScaleOut{Cfg: cfg, Group: g, Coord: coord, reported: make([]bool, cfg.Pods)}
	for i := 0; i < cfg.Pods; i++ {
		cl := New(cfg.rackConfig(i))
		pid := g.Add(fmt.Sprintf("pod%d", i), cl.Env)
		pod := &Pod{ID: i, OSDs: plan[i], Cluster: cl}
		pod.Up = g.Connect(fmt.Sprintf("pod%d-up", i), pid, coordID, cfg.CrossRackLatency)
		pod.Down = g.Connect(fmt.Sprintf("pod%d-down", i), coordID, pid, cfg.CrossRackLatency)
		s.Pods = append(s.Pods, pod)
	}

	// Root monitor: one receiver per rack link. Coordinator state is only
	// touched from coordinator procs, so it needs no locking.
	for _, pod := range s.Pods {
		pod := pod
		coord.SpawnDaemon(fmt.Sprintf("root-mon-rx%d", pod.ID), func(p *sim.Proc) {
			for {
				m := pod.Up.Recv(p)
				b := m.Payload.(Beacon)
				s.beaconsRx++
				if !s.reported[b.Pod] {
					s.reported[b.Pod] = true
					s.pendingRe++
					if s.pendingRe == len(s.Pods) {
						// Every rack reported since the last epoch: advance.
						s.epochs++
						s.pendingRe = 0
						for i := range s.reported {
							s.reported[i] = false
						}
					}
				}
				pod.Down.Send(p, EpochAck{Epoch: s.epochs})
			}
		})
	}

	deadline := sim.Time(0).Add(cfg.Warmup + cfg.Duration)
	measureStart := sim.Time(0).Add(cfg.Warmup)
	payload := benchPayload(cfg.ObjectBytes)
	nPrepop := cfg.Threads * 4
	// Catalog-driven mode: home the global catalog to racks through the
	// rack-aware CRUSH map and give each rack a generator over its share.
	var catalogs [][]string
	var gens []*radosbench.PopGen
	if cfg.Popularity.Kind != radosbench.PopNone {
		catalogs = cfg.buildCatalogs()
		gens = make([]*radosbench.PopGen, cfg.Pods)
		for i, cat := range catalogs {
			g, err := radosbench.NewPopGen(cfg.Popularity, len(cat))
			if err != nil {
				panic(fmt.Sprintf("cluster: popularity generator: %v", err))
			}
			gens[i] = g
		}
	}
	for _, pod := range s.Pods {
		pod := pod
		env := pod.Cluster.Env
		var catalog []string
		var gen *radosbench.PopGen
		if gens != nil {
			catalog, gen = catalogs[pod.ID], gens[pod.ID]
		}
		if cfg.Warmup > 0 {
			env.Spawn(fmt.Sprintf("warmup-reset-p%d", pod.ID), func(p *sim.Proc) {
				p.Wait(cfg.Warmup)
				pod.Cluster.ResetHostStats()
			})
		}
		// A mixed workload prepopulates rack-local read targets first — the
		// rack's catalog share in popularity mode, the legacy per-thread
		// stride set otherwise. The write-only default spawns none of this
		// machinery, keeping its event stream (and goldens) untouched.
		var prepopDone *sim.Event
		if cfg.ReadPercent > 0 {
			prepopDone = sim.NewEvent(env)
			env.Spawn(fmt.Sprintf("bench-prepop-p%d", pod.ID), func(p *sim.Proc) {
				p.SetThread(sim.NewThread(fmt.Sprintf("bench-prepop-p%d", pod.ID), rados.ThreadCat))
				n := nPrepop
				if catalog != nil {
					n = len(catalog)
				}
				for i := 0; i < n; i++ {
					obj := fmt.Sprintf("so_p%d_prepop_%d", pod.ID, i)
					if catalog != nil {
						obj = catalog[i]
					}
					if err := pod.Cluster.Client.Write(p, obj, payload); err != nil {
						pod.err = fmt.Errorf("pod %d prepopulate: %w", pod.ID, err)
						break
					}
				}
				prepopDone.Fire()
			})
		}
		for t := 0; t < cfg.Threads; t++ {
			t := t
			env.Spawn(fmt.Sprintf("bench-p%d-t%d", pod.ID, t), func(p *sim.Proc) {
				p.SetThread(sim.NewThread(fmt.Sprintf("bench-p%d-t%d", pod.ID, t), rados.ThreadCat))
				if prepopDone != nil {
					prepopDone.Wait(p)
				}
				for i := 0; pod.err == nil && p.Now() < deadline; i++ {
					start := p.Now()
					var err error
					bytes := cfg.ObjectBytes
					// Same fixed (worker, index) split as radosbench's
					// fixed-work mode: the op set never depends on timing.
					doRead := cfg.ReadPercent > 0 && (t*7919+i*104729)%100 < cfg.ReadPercent
					if gen != nil {
						// Catalog-driven op: the target is a pure function
						// of (seed, pod, thread, op index) — reads and
						// writes both land on the popularity-ranked
						// catalog, so skew shapes write-primary load too.
						stream := uint64(pod.ID)<<48 ^ uint64(t)<<32 ^ uint64(uint32(i))
						obj := catalog[gen.Pick(cfg.Seed, stream)]
						if doRead {
							var bl *wire.Bufferlist
							if bl, err = pod.Cluster.Client.Read(p, obj, 0, 0); err == nil {
								bytes = int64(bl.Length())
							}
						} else {
							err = pod.Cluster.Client.Write(p, obj, payload)
						}
					} else if doRead {
						obj := fmt.Sprintf("so_p%d_prepop_%d", pod.ID, (t*7919+i)%nPrepop)
						var bl *wire.Bufferlist
						if bl, err = pod.Cluster.Client.Read(p, obj, 0, 0); err == nil {
							bytes = int64(bl.Length())
						}
					} else {
						obj := fmt.Sprintf("so_p%d_w%d_%d", pod.ID, t, i)
						err = pod.Cluster.Client.Write(p, obj, payload)
					}
					if err != nil {
						pod.err = fmt.Errorf("pod %d worker %d: %w", pod.ID, t, err)
						return
					}
					if end := p.Now(); end > measureStart && end <= deadline {
						pod.ops++
						pod.bytes += bytes
						pod.latSum += end.Sub(start)
					}
				}
			})
		}
		env.Spawn(fmt.Sprintf("rack-agent-p%d", pod.ID), func(p *sim.Proc) {
			for {
				p.Wait(cfg.BeaconPeriod)
				if p.Now() >= deadline {
					return
				}
				if cfg.CollectImbalance && p.Now() > measureStart {
					// Backlog snapshot on the agent's own tick: node-order
					// deterministic and event-free, so worker count cannot
					// perturb it.
					for _, n := range pod.Cluster.Nodes {
						pod.qdepth = append(pod.qdepth, int64(n.OSD.QueueDepth()))
					}
				}
				pod.Up.Send(p, Beacon{Pod: pod.ID, Ops: pod.ops, Sent: p.Now()})
				pod.beacons++
			}
		})
		env.SpawnDaemon(fmt.Sprintf("rack-ack-p%d", pod.ID), func(p *sim.Proc) {
			for {
				m := pod.Down.Recv(p)
				a := m.Payload.(EpochAck)
				pod.acks++
				pod.epoch = a.Epoch
			}
		})
	}
	return s
}

// Run drives the partitioned kernel to the workload deadline on up to
// workers goroutines and returns the aggregated, deterministic result.
func (s *ScaleOut) Run(workers int) (ScaleOutResult, error) {
	deadline := sim.Time(0).Add(s.Cfg.Warmup + s.Cfg.Duration)
	if err := s.Group.Run(workers, deadline); err != nil {
		return ScaleOutResult{}, err
	}
	res := ScaleOutResult{
		Beacons: s.beaconsRx,
		Epochs:  s.epochs,
		Events:  s.Group.Events(),
	}
	st := s.Group.Stats()
	res.Rounds, res.Windows, res.Delivered = st.Rounds, st.Windows, st.Delivered
	for _, pod := range s.Pods {
		if pod.err != nil {
			return ScaleOutResult{}, pod.err
		}
		res.Pods = append(res.Pods, PodResult{
			Pod: pod.ID, OSDs: pod.OSDs,
			Ops: pod.ops, Bytes: pod.bytes, LatSumNs: int64(pod.latSum),
			Beacons: pod.beacons, Acks: pod.acks, LastEpoch: pod.epoch,
			Events:  pod.Cluster.Env.Events(),
			ClockNs: int64(pod.Cluster.Env.Now()),
		})
		res.TotalOps += pod.ops
		res.TotalBytes += pod.bytes
	}
	if s.Cfg.CollectImbalance {
		s.collectImbalance(&res)
	}
	return res, nil
}

// collectImbalance harvests the raw per-OSD/per-PG counters and queue-depth
// samples from every rack into the result's global-index arrays.
func (s *ScaleOut) collectImbalance(res *ScaleOutResult) {
	totalOSDs := s.Cfg.Pods * s.Cfg.OSDsPerPod
	res.OSDOps = make([]int64, totalOSDs)
	res.OSDReads = make([]int64, totalOSDs)
	res.OSDBalancedReads = make([]int64, totalOSDs)
	res.PGOps = make([]int64, s.Cfg.Pods*int(s.Cfg.PGs))
	for _, pod := range s.Pods {
		for local, node := range pod.Cluster.Nodes {
			g := int(pod.OSDs[local])
			st := node.OSD.Stats()
			res.OSDReads[g] = st.ClientReads
			res.OSDBalancedReads[g] = st.BalancedReads
			for pg, n := range node.OSD.PGOps() {
				res.PGOps[pod.ID*int(s.Cfg.PGs)+int(pg)] += n
				res.OSDOps[g] += n
			}
		}
		res.QueueDepthSamples = append(res.QueueDepthSamples, pod.qdepth...)
	}
}

// Shutdown reclaims every partition's simulation goroutines.
func (s *ScaleOut) Shutdown() {
	for _, pod := range s.Pods {
		pod.Cluster.Shutdown()
	}
	s.Coord.Shutdown()
}

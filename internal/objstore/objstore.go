// Package objstore defines the pluggable storage-backend interface of the
// mini-Ceph OSD — the counterpart of Ceph's ObjectStore — together with the
// Transaction type submitted through it. DoCeph's key architectural trick
// (paper §3.1) is that this interface can be implemented either by a local
// BlueStore-like engine or by a proxy that forwards every call across the
// DPU/host boundary; both implementations live in sibling packages.
package objstore

import (
	"errors"
	"fmt"

	"doceph/internal/sim"
	"doceph/internal/wire"
)

// Errors returned by Store implementations.
var (
	ErrNotFound     = errors.New("objstore: object not found")
	ErrNoCollection = errors.New("objstore: collection not found")
	// ErrProxyIO is surfaced by proxy backends when the remote side failed
	// for a reason other than the ones above.
	ErrProxyIO = errors.New("objstore: proxy I/O error")
)

// OpCode identifies one mutation inside a Transaction.
type OpCode uint8

// Transaction op codes.
const (
	OpTouch OpCode = iota + 1
	OpWrite
	OpZero
	OpTruncate
	OpRemove
	OpSetAttr
	OpMkColl
	OpRmColl
	// OpOmapSet / OpOmapRm mutate an object's key-value map (the omap
	// facility RGW bucket indexes and RBD metadata are built on).
	OpOmapSet
	OpOmapRm
)

func (c OpCode) String() string {
	switch c {
	case OpTouch:
		return "touch"
	case OpWrite:
		return "write"
	case OpZero:
		return "zero"
	case OpTruncate:
		return "truncate"
	case OpRemove:
		return "remove"
	case OpSetAttr:
		return "setattr"
	case OpMkColl:
		return "mkcoll"
	case OpRmColl:
		return "rmcoll"
	case OpOmapSet:
		return "omapset"
	case OpOmapRm:
		return "omaprm"
	}
	return fmt.Sprintf("opcode(%d)", uint8(c))
}

// Op is a single mutation within a transaction.
type Op struct {
	Code       OpCode
	Collection string
	Object     string
	Offset     uint64
	Length     uint64
	Data       *wire.Bufferlist
	AttrName   string
	AttrValue  []byte
}

// Transaction is an ordered batch of mutations applied atomically by a
// Store, mirroring ObjectStore::Transaction. Build one with the fluent
// helpers and submit it via Store.QueueTransaction.
type Transaction struct {
	Ops []Op
	// TraceCtx is the submitting operation's trace span context
	// (trace.SpanID as a raw uint64). Instrumentation only: it is not part
	// of the transaction's encoded form and survives the proxy→host DMA
	// hop out-of-band via the segment tag.
	TraceCtx uint64
	// StreamReuse marks a transaction that is one chunk of an in-flight
	// stream: its staging regions and descriptors are re-established
	// against the same pre-registered host region as the previous chunk,
	// so the DMA engine may charge the amortized per-segment setup
	// (§3.3's "reusing pre-established memory regions") instead of a full
	// CommChannel negotiation per chunk. Not part of the encoded form.
	StreamReuse bool
}

// Touch ensures obj exists in coll.
func (t *Transaction) Touch(coll, obj string) *Transaction {
	t.Ops = append(t.Ops, Op{Code: OpTouch, Collection: coll, Object: obj})
	return t
}

// Write writes data at offset off of obj in coll.
func (t *Transaction) Write(coll, obj string, off uint64, data *wire.Bufferlist) *Transaction {
	t.Ops = append(t.Ops, Op{Code: OpWrite, Collection: coll, Object: obj,
		Offset: off, Length: uint64(data.Length()), Data: data})
	return t
}

// Zero zeroes length bytes at offset off of obj.
func (t *Transaction) Zero(coll, obj string, off, length uint64) *Transaction {
	t.Ops = append(t.Ops, Op{Code: OpZero, Collection: coll, Object: obj,
		Offset: off, Length: length})
	return t
}

// Truncate sets obj's size.
func (t *Transaction) Truncate(coll, obj string, size uint64) *Transaction {
	t.Ops = append(t.Ops, Op{Code: OpTruncate, Collection: coll, Object: obj, Offset: size})
	return t
}

// Remove deletes obj from coll.
func (t *Transaction) Remove(coll, obj string) *Transaction {
	t.Ops = append(t.Ops, Op{Code: OpRemove, Collection: coll, Object: obj})
	return t
}

// SetAttr sets a named attribute on obj.
func (t *Transaction) SetAttr(coll, obj, name string, value []byte) *Transaction {
	t.Ops = append(t.Ops, Op{Code: OpSetAttr, Collection: coll, Object: obj,
		AttrName: name, AttrValue: value})
	return t
}

// MkColl creates a collection.
func (t *Transaction) MkColl(coll string) *Transaction {
	t.Ops = append(t.Ops, Op{Code: OpMkColl, Collection: coll})
	return t
}

// RmColl removes an (empty) collection.
func (t *Transaction) RmColl(coll string) *Transaction {
	t.Ops = append(t.Ops, Op{Code: OpRmColl, Collection: coll})
	return t
}

// OmapSet sets one key of obj's object map.
func (t *Transaction) OmapSet(coll, obj, key string, value []byte) *Transaction {
	t.Ops = append(t.Ops, Op{Code: OpOmapSet, Collection: coll, Object: obj,
		AttrName: key, AttrValue: value})
	return t
}

// OmapRm removes one key of obj's object map.
func (t *Transaction) OmapRm(coll, obj, key string) *Transaction {
	t.Ops = append(t.Ops, Op{Code: OpOmapRm, Collection: coll, Object: obj,
		AttrName: key})
	return t
}

// DataBytes returns the total payload carried by write ops — the quantity
// the proxy's plane classifier and the DMA segmenter care about.
func (t *Transaction) DataBytes() int64 {
	var n int64
	for _, op := range t.Ops {
		if op.Data != nil {
			n += int64(op.Data.Length())
		}
	}
	return n
}

// Encode serializes the transaction (used by the proxy RPC/DMA data plane).
func (t *Transaction) Encode(e *wire.Encoder) {
	e.U32(uint32(len(t.Ops)))
	for i := range t.Ops {
		op := &t.Ops[i]
		e.U8(uint8(op.Code))
		e.String(op.Collection)
		e.String(op.Object)
		e.U64(op.Offset)
		e.U64(op.Length)
		if op.Data != nil {
			e.BufferlistField(op.Data)
		} else {
			e.BufferlistField(&wire.Bufferlist{})
		}
		e.String(op.AttrName)
		e.Blob(op.AttrValue)
	}
}

// DecodeTransaction parses a transaction produced by Encode.
func DecodeTransaction(d *wire.Decoder) (*Transaction, error) {
	n := d.U32()
	t := &Transaction{}
	for i := uint32(0); i < n && d.Err() == nil; i++ {
		op := Op{
			Code:       OpCode(d.U8()),
			Collection: d.String(),
			Object:     d.String(),
			Offset:     d.U64(),
			Length:     d.U64(),
		}
		bl := d.BufferlistField()
		if bl.Length() > 0 {
			op.Data = bl
		}
		op.AttrName = d.String()
		op.AttrValue = d.Blob()
		t.Ops = append(t.Ops, op)
	}
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("objstore: decoding transaction: %w", err)
	}
	return t, nil
}

// EncodeBL serializes the transaction as [u32 metaLen][meta][data...] where
// the data bytes of every write op are appended as zero-copy bufferlist
// segments rather than copied into the frame. This is the wire format the
// DoCeph data plane uses: a multi-megabyte write costs no payload memcpy to
// frame or parse.
func (t *Transaction) EncodeBL() *wire.Bufferlist {
	meta := wire.NewEncoder(64 + 64*len(t.Ops))
	meta.U32(uint32(len(t.Ops)))
	for i := range t.Ops {
		op := &t.Ops[i]
		meta.U8(uint8(op.Code))
		meta.String(op.Collection)
		meta.String(op.Object)
		meta.U64(op.Offset)
		meta.U64(op.Length)
		var dataLen int
		if op.Data != nil {
			dataLen = op.Data.Length()
		}
		meta.U32(uint32(dataLen))
		meta.String(op.AttrName)
		meta.Blob(op.AttrValue)
	}
	hdr := wire.NewEncoder(4 + meta.Len())
	hdr.U32(uint32(meta.Len()))
	bl := hdr.Bufferlist()
	bl.Append(meta.Bytes())
	for i := range t.Ops {
		if t.Ops[i].Data != nil {
			bl.AppendBufferlist(t.Ops[i].Data)
		}
	}
	return bl
}

// DecodeTransactionBL parses a frame produced by EncodeBL. Data payloads
// are zero-copy views into bl.
func DecodeTransactionBL(bl *wire.Bufferlist) (*Transaction, error) {
	if bl.Length() < 4 {
		return nil, fmt.Errorf("objstore: frame too short (%d bytes)", bl.Length())
	}
	metaLen := int(binaryLEU32(bl.SubList(0, 4).Bytes()))
	if 4+metaLen > bl.Length() {
		return nil, fmt.Errorf("objstore: meta length %d exceeds frame %d", metaLen, bl.Length())
	}
	d := wire.NewDecoder(bl.SubList(4, metaLen).Bytes())
	n := d.U32()
	t := &Transaction{}
	dataOff := 4 + metaLen
	for i := uint32(0); i < n && d.Err() == nil; i++ {
		op := Op{
			Code:       OpCode(d.U8()),
			Collection: d.String(),
			Object:     d.String(),
			Offset:     d.U64(),
			Length:     d.U64(),
		}
		dataLen := int(d.U32())
		op.AttrName = d.String()
		op.AttrValue = d.Blob()
		if dataLen > 0 {
			if dataOff+dataLen > bl.Length() {
				return nil, fmt.Errorf("objstore: data overruns frame")
			}
			op.Data = bl.SubList(dataOff, dataLen)
			dataOff += dataLen
		}
		t.Ops = append(t.Ops, op)
	}
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("objstore: decoding transaction frame: %w", err)
	}
	return t, nil
}

func binaryLEU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// StatInfo is object metadata returned by Stat.
type StatInfo struct {
	Size    uint64
	Version uint64
	Mtime   sim.Time
}

// Result tracks an asynchronously queued transaction. Done fires when the
// transaction is durably committed; Err is valid once Done has fired.
// ServiceTime, when the backend fills it, is the pure commit service time
// (checksum CPU + device streaming + KV share) excluding queueing — the
// paper's Table 3 "Host write" metric.
type Result struct {
	Done        *sim.Event
	Err         error
	ServiceTime sim.Duration
}

// Store is the pluggable object-store backend interface. Every method takes
// the calling simulation process because each consumes virtual time. Method
// names follow the Ceph originals (queue_transactions, stat, exists, ...).
type Store interface {
	// QueueTransaction submits txn for asynchronous, atomic, durable
	// application. The returned Result's Done event fires at commit time.
	QueueTransaction(p *sim.Proc, txn *Transaction) *Result
	// Read returns length bytes at offset off of obj (length 0 = to EOF).
	Read(p *sim.Proc, coll, obj string, off, length uint64) (*wire.Bufferlist, error)
	// Stat returns object metadata.
	Stat(p *sim.Proc, coll, obj string) (StatInfo, error)
	// Exists reports whether obj exists in coll.
	Exists(p *sim.Proc, coll, obj string) bool
	// List returns the sorted object names in coll.
	List(p *sim.Proc, coll string) ([]string, error)
	// OmapGet returns the value of one omap key of obj.
	OmapGet(p *sim.Proc, coll, obj, key string) ([]byte, error)
	// OmapKeys returns obj's omap keys in sorted order.
	OmapKeys(p *sim.Proc, coll, obj string) ([]string, error)
}

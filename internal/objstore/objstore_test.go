package objstore

import (
	"bytes"
	"testing"
	"testing/quick"

	"doceph/internal/wire"
)

func TestBuildersPopulateOps(t *testing.T) {
	data := wire.FromBytes([]byte("payload"))
	txn := (&Transaction{}).
		MkColl("c").
		Touch("c", "o").
		Write("c", "o", 5, data).
		Zero("c", "o", 1, 2).
		Truncate("c", "o", 3).
		SetAttr("c", "o", "k", []byte("v")).
		Remove("c", "o").
		RmColl("c")
	want := []OpCode{OpMkColl, OpTouch, OpWrite, OpZero, OpTruncate, OpSetAttr, OpRemove, OpRmColl}
	if len(txn.Ops) != len(want) {
		t.Fatalf("ops=%d", len(txn.Ops))
	}
	for i, c := range want {
		if txn.Ops[i].Code != c {
			t.Fatalf("op %d = %v want %v", i, txn.Ops[i].Code, c)
		}
	}
	w := txn.Ops[2]
	if w.Offset != 5 || w.Length != 7 || w.Data.Length() != 7 {
		t.Fatalf("write op=%+v", w)
	}
	if txn.DataBytes() != 7 {
		t.Fatalf("databytes=%d", txn.DataBytes())
	}
}

func TestEncodeBLZeroCopyAndRoundTrip(t *testing.T) {
	big := make([]byte, 3<<20)
	for i := range big {
		big[i] = byte(i * 7)
	}
	payload := wire.FromBytes(big)
	txn := (&Transaction{}).
		MkColl("pg.1").
		Write("pg.1", "obj", 64, payload).
		SetAttr("pg.1", "obj", "a", []byte("b"))
	frame := txn.EncodeBL()
	// Zero-copy: the frame must not duplicate the 3 MiB payload.
	if frame.Length() < 3<<20 || frame.Length() > (3<<20)+1024 {
		t.Fatalf("frame len=%d", frame.Length())
	}
	got, err := DecodeTransactionBL(frame)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Ops) != 3 || got.Ops[1].Code != OpWrite || got.Ops[1].Offset != 64 {
		t.Fatalf("ops=%+v", got.Ops)
	}
	if !got.Ops[1].Data.Equal(payload) {
		t.Fatal("payload mismatch")
	}
	if got.Ops[2].AttrName != "a" || !bytes.Equal(got.Ops[2].AttrValue, []byte("b")) {
		t.Fatalf("attr=%+v", got.Ops[2])
	}
	// Mutating the original buffer is visible through the decode: proof of
	// shared storage end to end.
	big[100] = ^big[100]
	if !got.Ops[1].Data.Equal(payload) {
		t.Fatal("decoded data no longer shares storage")
	}
}

func TestDecodeBLRejectsCorruptFrames(t *testing.T) {
	txn := (&Transaction{}).Write("c", "o", 0, wire.FromBytes(make([]byte, 100)))
	flat := txn.EncodeBL().Bytes()
	for _, cut := range []int{0, 3, 10, len(flat) - 1} {
		if _, err := DecodeTransactionBL(wire.FromBytes(flat[:cut])); err == nil {
			t.Fatalf("cut=%d accepted", cut)
		}
	}
	// Corrupt the meta length.
	bad := append([]byte{}, flat...)
	bad[0] = 0xFF
	bad[1] = 0xFF
	if _, err := DecodeTransactionBL(wire.FromBytes(bad)); err == nil {
		t.Fatal("oversized meta length accepted")
	}
}

func TestLegacyEncodeDecodeAgreesWithBL(t *testing.T) {
	txn := (&Transaction{}).
		MkColl("c").
		Write("c", "o1", 0, wire.FromBytes([]byte("abc"))).
		Write("c", "o2", 9, wire.FromBytes([]byte("defgh")))
	e := wire.NewEncoder(256)
	txn.Encode(e)
	legacy, err := DecodeTransaction(wire.NewDecoder(e.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	bl, err := DecodeTransactionBL(txn.EncodeBL())
	if err != nil {
		t.Fatal(err)
	}
	if len(legacy.Ops) != len(bl.Ops) {
		t.Fatalf("op counts differ: %d vs %d", len(legacy.Ops), len(bl.Ops))
	}
	for i := range legacy.Ops {
		a, b := legacy.Ops[i], bl.Ops[i]
		if a.Code != b.Code || a.Object != b.Object || a.Offset != b.Offset {
			t.Fatalf("op %d differs", i)
		}
		if (a.Data == nil) != (b.Data == nil) {
			t.Fatalf("op %d data presence differs", i)
		}
		if a.Data != nil && !a.Data.Equal(b.Data) {
			t.Fatalf("op %d data differs", i)
		}
	}
}

func TestQuickEncodeBLRoundTrip(t *testing.T) {
	f := func(coll, obj string, off uint64, data []byte, attr string) bool {
		txn := (&Transaction{}).Write(coll, obj, off, wire.FromBytes(data))
		txn.SetAttr(coll, obj, attr, data)
		got, err := DecodeTransactionBL(txn.EncodeBL())
		if err != nil || len(got.Ops) != 2 {
			return false
		}
		w := got.Ops[0]
		if w.Collection != coll || w.Object != obj || w.Offset != off {
			return false
		}
		if len(data) == 0 {
			if w.Data != nil {
				return false
			}
		} else if !bytes.Equal(w.Data.Bytes(), data) {
			return false
		}
		return got.Ops[1].AttrName == attr
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestOpCodeStrings(t *testing.T) {
	codes := map[OpCode]string{
		OpTouch: "touch", OpWrite: "write", OpZero: "zero",
		OpTruncate: "truncate", OpRemove: "remove", OpSetAttr: "setattr",
		OpMkColl: "mkcoll", OpRmColl: "rmcoll",
	}
	for c, want := range codes {
		if c.String() != want {
			t.Fatalf("%d -> %q want %q", c, c.String(), want)
		}
	}
	if OpCode(99).String() != "opcode(99)" {
		t.Fatalf("unknown=%q", OpCode(99).String())
	}
}

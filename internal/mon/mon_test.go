package mon

import (
	"testing"

	"doceph/internal/cephmsg"
	"doceph/internal/crush"
	"doceph/internal/messenger"
	"doceph/internal/osdmap"
	"doceph/internal/sim"
)

type monRig struct {
	env *sim.Env
	mon *Monitor
	reg *messenger.Registry
	cpu *sim.CPU
	// subscriber collects every map the monitor broadcasts to "sub.0".
	maps []*cephmsg.MOSDMap
}

func newMonRig(t *testing.T, minReporters int) *monRig {
	t.Helper()
	env := sim.NewEnv(3)
	fabric := sim.NewFabric(env, "eth", sim.Microsecond)
	fabric.AddNode("n0", 12.5e9)
	reg := messenger.NewRegistry()
	cpu := sim.NewCPU(env, "cpu", 8, 3.0, 2000)
	r := &monRig{env: env, reg: reg, cpu: cpu}

	mmsgr := messenger.New(env, reg, fabric, cpu, "mon.0", "n0", messenger.Config{})
	m := osdmap.New(crush.BuildUniform(3, 1, 1.0), 32, 2)
	r.mon = New(env, cpu, mmsgr, m, Config{MinReporters: minReporters})

	sub := messenger.New(env, reg, fabric, cpu, "sub.0", "n0", messenger.Config{})
	sub.SetDispatcher(func(p *sim.Proc, src string, msg cephmsg.Message) {
		if mm, ok := msg.(*cephmsg.MOSDMap); ok {
			r.maps = append(r.maps, mm)
		}
	})
	r.mon.Subscribe("sub.0")

	// A reporter entity to send failure reports from.
	rep := messenger.New(env, reg, fabric, cpu, "osd.9", "n0", messenger.Config{})
	rep.SetDispatcher(func(p *sim.Proc, src string, msg cephmsg.Message) {})
	rep2 := messenger.New(env, reg, fabric, cpu, "osd.8", "n0", messenger.Config{})
	rep2.SetDispatcher(func(p *sim.Proc, src string, msg cephmsg.Message) {})
	return r
}

func (r *monRig) report(from string, failed int32) {
	r.env.Spawn("reporter", func(p *sim.Proc) {
		r.reg.Lookup(from).Send("mon.0", &cephmsg.MOSDFailure{
			Reporter: from, Failed: failed, Epoch: r.mon.Map().Epoch,
		})
	})
}

func (r *monRig) run(t *testing.T) {
	t.Helper()
	if err := r.env.RunUntil(sim.Time(10 * sim.Second)); err != nil {
		t.Fatal(err)
	}
	r.env.Shutdown()
}

func TestFailureReportBumpsEpochAndBroadcasts(t *testing.T) {
	r := newMonRig(t, 1)
	before := r.mon.Map().Epoch
	r.report("osd.9", 1)
	r.run(t)
	if r.mon.Map().Epoch != before+1 || r.mon.EpochBumps() != 1 {
		t.Fatalf("epoch=%d bumps=%d", r.mon.Map().Epoch, r.mon.EpochBumps())
	}
	if r.mon.Map().IsUp(1) {
		t.Fatal("failed OSD still up")
	}
	if len(r.maps) != 1 || r.maps[0].Epoch != before+1 {
		t.Fatalf("broadcasts=%v", r.maps)
	}
	up := map[int32]bool{}
	for _, id := range r.maps[0].Up {
		up[id] = true
	}
	if up[1] || !up[0] || !up[2] {
		t.Fatalf("broadcast up set=%v", r.maps[0].Up)
	}
}

func TestMinReportersRequiresQuorum(t *testing.T) {
	r := newMonRig(t, 2)
	r.report("osd.9", 1)
	r.run(t)
	if r.mon.EpochBumps() != 0 {
		t.Fatal("single reporter should not mark down with MinReporters=2")
	}

	r2 := newMonRig(t, 2)
	r2.report("osd.9", 1)
	r2.report("osd.8", 1)
	r2.run(t)
	if r2.mon.EpochBumps() != 1 || r2.mon.Map().IsUp(1) {
		t.Fatalf("bumps=%d up=%v", r2.mon.EpochBumps(), r2.mon.Map().IsUp(1))
	}
}

func TestDuplicateReporterDoesNotCount(t *testing.T) {
	r := newMonRig(t, 2)
	r.report("osd.9", 1)
	r.report("osd.9", 1)
	r.run(t)
	if r.mon.EpochBumps() != 0 {
		t.Fatal("duplicate reporter satisfied the quorum")
	}
}

func TestReportForAlreadyDownOSDIgnored(t *testing.T) {
	r := newMonRig(t, 1)
	r.report("osd.9", 1)
	r.report("osd.8", 1)
	r.run(t)
	if r.mon.EpochBumps() != 1 {
		t.Fatalf("bumps=%d, second report of a down OSD must be ignored", r.mon.EpochBumps())
	}
}

func TestMarkUpPublishesNewEpoch(t *testing.T) {
	r := newMonRig(t, 1)
	r.report("osd.9", 2)
	r.run(t)
	if r.mon.Map().IsUp(2) {
		t.Fatal("osd.2 should be down")
	}
	// MarkUp happens outside the sim; drive another round.
	r2 := newMonRig(t, 1)
	r2.report("osd.9", 2)
	r2.env.Spawn("admin", func(p *sim.Proc) {
		p.Wait(sim.Second)
		r2.mon.MarkUp(2)
	})
	r2.run(t)
	if !r2.mon.Map().IsUp(2) || r2.mon.EpochBumps() != 2 {
		t.Fatalf("up=%v bumps=%d", r2.mon.Map().IsUp(2), r2.mon.EpochBumps())
	}
	if len(r2.maps) != 2 {
		t.Fatalf("broadcasts=%d", len(r2.maps))
	}
}

func TestMonRepliesToPing(t *testing.T) {
	r := newMonRig(t, 1)
	got := false
	r.reg.Lookup("osd.9").SetDispatcher(func(p *sim.Proc, src string, msg cephmsg.Message) {
		if _, ok := msg.(*cephmsg.MPingReply); ok && src == "mon.0" {
			got = true
		}
	})
	r.env.Spawn("pinger", func(p *sim.Proc) {
		r.reg.Lookup("osd.9").Send("mon.0", &cephmsg.MPing{Src: "osd.9", Stamp: 5})
	})
	r.run(t)
	if !got {
		t.Fatal("no ping reply from monitor")
	}
}

// Package mon implements the cluster monitor: the authority over the
// OSDMap. It collects failure reports from OSDs, marks failed OSDs down in
// a new map epoch, and broadcasts map updates to all subscribed entities
// (OSDs and clients), providing the coordination backbone the paper's
// heartbeat traffic feeds.
package mon

import (
	"doceph/internal/cephmsg"
	"doceph/internal/messenger"
	"doceph/internal/osdmap"
	"doceph/internal/sim"
)

// ThreadCat is the accounting category for monitor work.
const ThreadCat = "mon"

// Config carries monitor tunables.
type Config struct {
	// MinReporters is the number of distinct OSDs that must report a peer
	// before it is marked down (Ceph's mon_osd_min_down_reporters).
	MinReporters int
}

// Monitor is a single-instance cluster monitor (quorum protocols are out of
// scope for the paper's experiments, which run one MON).
type Monitor struct {
	env  *sim.Env
	cpu  *sim.CPU
	msgr *messenger.Messenger
	cfg  Config
	th   *sim.Thread

	curMap      *osdmap.Map
	subscribers []string
	reports     map[int32]map[string]bool
	// upFrom records the epoch at which each OSD was last marked up, the
	// fence against failure reports whose silence evidence predates a
	// restart (Ceph's osd_info_t::up_from).
	upFrom map[int32]uint32

	epochBumps int
}

// New creates a monitor owning the initial map m and installs its
// dispatcher on msgr.
func New(env *sim.Env, cpu *sim.CPU, msgr *messenger.Messenger,
	m *osdmap.Map, cfg Config) *Monitor {
	if cfg.MinReporters == 0 {
		cfg.MinReporters = 1
	}
	mon := &Monitor{
		env: env, cpu: cpu, msgr: msgr, cfg: cfg,
		th:      sim.NewThread("mon", ThreadCat),
		curMap:  m,
		reports: make(map[int32]map[string]bool),
		upFrom:  make(map[int32]uint32),
	}
	msgr.SetDispatcher(mon.dispatch)
	return mon
}

// Map returns the current map epoch.
func (m *Monitor) Map() *osdmap.Map { return m.curMap }

// EpochBumps returns how many new epochs the monitor has published.
func (m *Monitor) EpochBumps() int { return m.epochBumps }

// Subscribe registers an entity to receive MOSDMap broadcasts.
func (m *Monitor) Subscribe(entity string) {
	m.subscribers = append(m.subscribers, entity)
}

func (m *Monitor) dispatch(p *sim.Proc, src string, msg cephmsg.Message) {
	switch mm := msg.(type) {
	case *cephmsg.MOSDFailure:
		m.cpu.Exec(p, m.th, 20_000)
		m.handleFailure(mm)
	case *cephmsg.MOSDBoot:
		m.cpu.Exec(p, m.th, 20_000)
		m.handleBoot(mm)
	case *cephmsg.MPing:
		m.msgr.Send(src, &cephmsg.MPingReply{Src: m.msgr.Name(), Stamp: mm.Stamp})
	case *cephmsg.MGetMap:
		// On-demand refresh: a client whose op timed out may have missed
		// the broadcast that went down with the fault.
		if m.curMap.Epoch > mm.Epoch {
			m.cpu.Exec(p, m.th, 10_000)
			m.msgr.Send(src, &cephmsg.MOSDMap{Epoch: m.curMap.Epoch, Up: m.curMap.UpOSDs()})
		}
	}
}

func (m *Monitor) handleFailure(f *cephmsg.MOSDFailure) {
	if f.Epoch < m.upFrom[f.Failed] {
		// Stale report: the silence it describes predates the target's
		// last up transition. Without the fence, a report racing a
		// recovery (failure noticed at epoch e, target restarted and
		// marked up at e+1) would re-down the healthy daemon. The
		// reporter's ledger resets on the up transition, so a genuinely
		// dead peer gets re-reported with a fresh epoch after the next
		// grace window.
		return
	}
	if !m.curMap.IsUp(f.Failed) {
		return
	}
	if m.reports[f.Failed] == nil {
		m.reports[f.Failed] = make(map[string]bool)
	}
	m.reports[f.Failed][f.Reporter] = true
	if len(m.reports[f.Failed]) < m.cfg.MinReporters {
		return
	}
	next := m.curMap.Next()
	next.MarkDown(f.Failed)
	m.curMap = next
	m.epochBumps++
	delete(m.reports, f.Failed)
	m.broadcast()
}

// handleBoot processes a liveness announcement. A booting (or protesting)
// daemon is authoritative evidence of life, so it trumps any accumulated
// failure reports: the in-flight-report race — silence observed across a
// crash window is reported only after the daemon already restarted — would
// otherwise leave a healthy OSD down forever, since nothing later marks it
// up.
func (m *Monitor) handleBoot(b *cephmsg.MOSDBoot) {
	delete(m.reports, b.OSD)
	if m.curMap.IsUp(b.OSD) {
		return
	}
	m.MarkUp(b.OSD)
}

// MarkDown administratively removes an OSD from the map and publishes the
// new epoch — Ceph's `ceph osd down`, bypassing the heartbeat grace. Used
// by experiments that need a degraded map faster than failure detection
// can deliver one; fail the daemon itself first (osd.Fail) so it does not
// protest the mark with a boot message.
func (m *Monitor) MarkDown(id int32) {
	if !m.curMap.IsUp(id) {
		return
	}
	next := m.curMap.Next()
	next.MarkDown(id)
	m.curMap = next
	m.epochBumps++
	delete(m.reports, id)
	m.broadcast()
}

// MarkUp administratively restores an OSD and publishes a new epoch (used
// by recovery scenarios and tests).
func (m *Monitor) MarkUp(id int32) {
	next := m.curMap.Next()
	next.MarkUp(id)
	m.curMap = next
	m.upFrom[id] = next.Epoch
	m.epochBumps++
	m.broadcast()
}

func (m *Monitor) broadcast() {
	up := m.curMap.UpOSDs()
	for _, sub := range m.subscribers {
		m.msgr.Send(sub, &cephmsg.MOSDMap{Epoch: m.curMap.Epoch, Up: up})
	}
}

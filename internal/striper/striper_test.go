package striper

import (
	"bytes"
	"errors"
	"testing"

	"doceph/internal/cluster"
	"doceph/internal/sim"
	"doceph/internal/wire"
)

func runOnCluster(t *testing.T, mode cluster.Mode, body func(p *sim.Proc, cl *cluster.Cluster)) {
	t.Helper()
	cl := cluster.New(cluster.Config{Mode: mode})
	done := false
	cl.Env.Spawn("striper-test", func(p *sim.Proc) {
		p.SetThread(sim.NewThread("striper-test", "client"))
		body(p, cl)
		done = true
	})
	err := cl.Env.RunUntil(sim.Time(10 * 60 * sim.Second))
	if !done {
		t.Fatalf("body did not finish: %v", err)
	}
	cl.Shutdown()
}

func pattern(n int, seed byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(int(seed) + i*37)
	}
	return b
}

func TestCreateOpenRoundTrip(t *testing.T) {
	runOnCluster(t, cluster.Baseline, func(p *sim.Proc, cl *cluster.Cluster) {
		img, err := Create(p, cl.Client, "vol1", 16<<20, 4<<20)
		if err != nil {
			t.Fatal(err)
		}
		if img.Size() != 16<<20 || img.ObjectBytes() != 4<<20 || img.Objects() != 4 {
			t.Fatalf("geometry: %d/%d/%d", img.Size(), img.ObjectBytes(), img.Objects())
		}
		re, err := Open(p, cl.Client, "vol1")
		if err != nil || re.Size() != img.Size() || re.ObjectBytes() != img.ObjectBytes() {
			t.Fatalf("reopen: %+v err=%v", re, err)
		}
		if _, err := Create(p, cl.Client, "vol1", 1<<20, 0); !errors.Is(err, ErrExists) {
			t.Fatalf("duplicate create: %v", err)
		}
		if _, err := Open(p, cl.Client, "ghost"); !errors.Is(err, ErrNotFound) {
			t.Fatalf("open ghost: %v", err)
		}
	})
}

func TestWriteReadAcrossObjectBoundaries(t *testing.T) {
	runOnCluster(t, cluster.DoCeph, func(p *sim.Proc, cl *cluster.Cluster) {
		img, err := Create(p, cl.Client, "vol", 8<<20, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		// A write spanning three stripe objects, starting mid-object.
		data := pattern(2<<20+512<<10, 5)
		off := int64(1<<20 - 256<<10)
		if err := img.WriteAt(p, wire.FromBytes(data), off); err != nil {
			t.Fatal(err)
		}
		got, err := img.ReadAt(p, off, int64(len(data)))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Bytes(), data) {
			t.Fatal("cross-boundary content mismatch")
		}
	})
}

func TestSparseReadsZeroFilled(t *testing.T) {
	runOnCluster(t, cluster.Baseline, func(p *sim.Proc, cl *cluster.Cluster) {
		img, err := Create(p, cl.Client, "sparse", 4<<20, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		// Write only the third object's middle.
		if err := img.WriteAt(p, wire.FromBytes(pattern(1000, 9)), 2<<20+100); err != nil {
			t.Fatal(err)
		}
		got, err := img.ReadAt(p, 0, 4<<20)
		if err != nil {
			t.Fatal(err)
		}
		flat := got.Bytes()
		if len(flat) != 4<<20 {
			t.Fatalf("len=%d", len(flat))
		}
		for i := 0; i < 2<<20+100; i++ {
			if flat[i] != 0 {
				t.Fatalf("non-zero at %d before written range", i)
			}
		}
		if !bytes.Equal(flat[2<<20+100:2<<20+1100], pattern(1000, 9)) {
			t.Fatal("written range mismatch")
		}
		for i := 2<<20 + 1100; i < 4<<20; i++ {
			if flat[i] != 0 {
				t.Fatalf("non-zero at %d after written range", i)
			}
		}
	})
}

func TestOverwriteWithinImage(t *testing.T) {
	runOnCluster(t, cluster.Baseline, func(p *sim.Proc, cl *cluster.Cluster) {
		img, err := Create(p, cl.Client, "ow", 2<<20, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		if err := img.WriteAt(p, wire.FromBytes(pattern(2<<20, 1)), 0); err != nil {
			t.Fatal(err)
		}
		if err := img.WriteAt(p, wire.FromBytes(pattern(4096, 7)), 1<<20-2048); err != nil {
			t.Fatal(err)
		}
		got, err := img.ReadAt(p, 1<<20-2048, 4096)
		if err != nil || !bytes.Equal(got.Bytes(), pattern(4096, 7)) {
			t.Fatalf("overwrite mismatch err=%v", err)
		}
	})
}

func TestBoundsChecking(t *testing.T) {
	runOnCluster(t, cluster.Baseline, func(p *sim.Proc, cl *cluster.Cluster) {
		img, err := Create(p, cl.Client, "b", 1<<20, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		if err := img.WriteAt(p, wire.FromBytes(make([]byte, 100)), 1<<20-50); !errors.Is(err, ErrOutOfBounds) {
			t.Fatalf("write past end: %v", err)
		}
		if _, err := img.ReadAt(p, -1, 10); !errors.Is(err, ErrOutOfBounds) {
			t.Fatalf("negative read: %v", err)
		}
		if _, err := img.ReadAt(p, 0, 2<<20); !errors.Is(err, ErrOutOfBounds) {
			t.Fatalf("oversized read: %v", err)
		}
	})
}

func TestRemoveDeletesEverything(t *testing.T) {
	runOnCluster(t, cluster.Baseline, func(p *sim.Proc, cl *cluster.Cluster) {
		img, err := Create(p, cl.Client, "rm", 2<<20, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		if err := img.WriteAt(p, wire.FromBytes(pattern(2<<20, 2)), 0); err != nil {
			t.Fatal(err)
		}
		if err := Remove(p, cl.Client, "rm"); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(p, cl.Client, "rm"); !errors.Is(err, ErrNotFound) {
			t.Fatalf("open after remove: %v", err)
		}
		if _, _, err := cl.Client.Stat(p, img.ObjectName(0)); err == nil {
			t.Fatal("data object survived remove")
		}
	})
}

func TestStripesSpreadAcrossPGs(t *testing.T) {
	runOnCluster(t, cluster.Baseline, func(p *sim.Proc, cl *cluster.Cluster) {
		img, err := Create(p, cl.Client, "spread", 64<<20, 4<<20)
		if err != nil {
			t.Fatal(err)
		}
		pgs := map[uint32]bool{}
		for i := int64(0); i < img.Objects(); i++ {
			pgs[cl.Client.Map().PGForObject(img.ObjectName(i))] = true
		}
		if len(pgs) < int(img.Objects())/2 {
			t.Fatalf("stripes landed on only %d PGs for %d objects", len(pgs), img.Objects())
		}
	})
}

package striper

import (
	"bytes"
	"math/rand"
	"testing"

	"doceph/internal/cluster"
	"doceph/internal/sim"
	"doceph/internal/wire"
)

// Property: a random sequence of WriteAt calls against the striped image
// matches a flat shadow buffer, including reads that span object boundaries
// and sparse holes.
func TestQuickStriperMatchesShadowBuffer(t *testing.T) {
	runOnCluster(t, cluster.Baseline, func(p *sim.Proc, cl *cluster.Cluster) {
		const volSize = 4 << 20
		const objSize = 512 << 10 // 8 stripe objects
		img, err := Create(p, cl.Client, "shadow", volSize, objSize)
		if err != nil {
			t.Fatal(err)
		}
		shadow := make([]byte, volSize)
		r := rand.New(rand.NewSource(17))
		for i := 0; i < 40; i++ {
			n := 1 + r.Intn(3*objSize/2) // up to 1.5 objects
			off := r.Intn(volSize - n)
			data := make([]byte, n)
			for j := range data {
				data[j] = byte(r.Intn(256))
			}
			if err := img.WriteAt(p, wire.FromBytes(data), int64(off)); err != nil {
				t.Fatalf("write %d: %v", i, err)
			}
			copy(shadow[off:], data)

			// Random ranged readback.
			rn := 1 + r.Intn(volSize/2)
			roff := r.Intn(volSize - rn)
			got, err := img.ReadAt(p, int64(roff), int64(rn))
			if err != nil {
				t.Fatalf("read %d: %v", i, err)
			}
			if !bytes.Equal(got.Bytes(), shadow[roff:roff+rn]) {
				t.Fatalf("iteration %d: image diverged from shadow at [%d,%d)", i, roff, roff+rn)
			}
		}
	})
}

// Package striper implements an RBD-style block-image layer over the RADOS
// client: a logical device of fixed size striped across equally sized
// objects (librbd's default layout), with a header object carrying the
// image metadata. The paper's §2.1 names RBD as one of Ceph's three core
// interfaces; this package is the corresponding client-side substrate and a
// realistic multi-object workload generator for the examples.
package striper

import (
	"errors"
	"fmt"

	"doceph/internal/rados"
	"doceph/internal/sim"
	"doceph/internal/wire"
)

// Errors returned by the striper.
var (
	ErrExists      = errors.New("striper: image already exists")
	ErrNotFound    = errors.New("striper: image not found")
	ErrOutOfBounds = errors.New("striper: I/O beyond image size")
	ErrBadHeader   = errors.New("striper: corrupt image header")
)

// headerMagic guards header decodes.
const headerMagic = 0x5242444D // "RBDM"

// Extent maps one contiguous slice of a logical byte range onto one
// backing stripe object.
type Extent struct {
	// Index is the stripe object index (object name dataName(name, Index)).
	Index int64
	// ObjOff is the byte offset inside that object.
	ObjOff int64
	// BufOff is the byte offset inside the caller's buffer.
	BufOff int64
	// Length is the extent length in bytes.
	Length int64
}

// MapExtents splits the logical range [off, off+length) of an image
// striped over objectBytes-sized objects into per-object extents, ordered
// by ascending BufOff. It is a pure function of its arguments (the fuzz
// target of the stripe math): zero length yields no extents, negative
// offsets/lengths and non-positive object sizes are rejected.
func MapExtents(off, length, objectBytes int64) ([]Extent, error) {
	if objectBytes <= 0 {
		return nil, fmt.Errorf("striper: non-positive object size %d", objectBytes)
	}
	if off < 0 || length < 0 {
		return nil, fmt.Errorf("striper: negative range %d+%d", off, length)
	}
	if length == 0 {
		return nil, nil
	}
	if off > (1<<62)-length {
		return nil, fmt.Errorf("striper: range %d+%d overflows", off, length)
	}
	exts := make([]Extent, 0, length/objectBytes+2)
	pos := int64(0)
	for pos < length {
		idx := (off + pos) / objectBytes
		objOff := (off + pos) % objectBytes
		chunk := objectBytes - objOff
		if chunk > length-pos {
			chunk = length - pos
		}
		exts = append(exts, Extent{Index: idx, ObjOff: objOff, BufOff: pos, Length: chunk})
		pos += chunk
	}
	return exts, nil
}

// DefaultObjectBytes is librbd's default 4 MiB object size.
const DefaultObjectBytes = 4 << 20

// Image is an open striped block image.
type Image struct {
	client      *rados.Client
	name        string
	sizeBytes   int64
	objectBytes int64
}

func headerName(name string) string { return "rbd." + name + ".header" }

func dataName(name string, idx int64) string {
	return fmt.Sprintf("rbd.%s.%012d", name, idx)
}

func encodeHeader(size, objectBytes int64) *wire.Bufferlist {
	e := wire.NewEncoder(24)
	e.U32(headerMagic)
	e.I64(size)
	e.I64(objectBytes)
	return e.Bufferlist()
}

func decodeHeader(bl *wire.Bufferlist) (size, objectBytes int64, err error) {
	d := wire.NewDecoderBL(bl)
	if d.U32() != headerMagic {
		return 0, 0, ErrBadHeader
	}
	size = d.I64()
	objectBytes = d.I64()
	if d.Err() != nil || size <= 0 || objectBytes <= 0 {
		return 0, 0, ErrBadHeader
	}
	return size, objectBytes, nil
}

// Create makes a new image of sizeBytes striped over objectBytes objects
// (DefaultObjectBytes if zero) and returns it open.
func Create(p *sim.Proc, client *rados.Client, name string, sizeBytes, objectBytes int64) (*Image, error) {
	if objectBytes == 0 {
		objectBytes = DefaultObjectBytes
	}
	if sizeBytes <= 0 || objectBytes <= 0 {
		return nil, fmt.Errorf("striper: invalid geometry %d/%d", sizeBytes, objectBytes)
	}
	if _, _, err := client.Stat(p, headerName(name)); err == nil {
		return nil, ErrExists
	}
	if err := client.Write(p, headerName(name), encodeHeader(sizeBytes, objectBytes)); err != nil {
		return nil, fmt.Errorf("striper: writing header: %w", err)
	}
	return &Image{client: client, name: name, sizeBytes: sizeBytes, objectBytes: objectBytes}, nil
}

// Open opens an existing image by reading its header object.
func Open(p *sim.Proc, client *rados.Client, name string) (*Image, error) {
	bl, err := client.Read(p, headerName(name), 0, 0)
	if err != nil {
		if errors.Is(err, rados.ErrNotFound) {
			return nil, ErrNotFound
		}
		return nil, err
	}
	size, objectBytes, err := decodeHeader(bl)
	if err != nil {
		return nil, err
	}
	return &Image{client: client, name: name, sizeBytes: size, objectBytes: objectBytes}, nil
}

// Remove deletes an image: every data object that exists plus the header.
func Remove(p *sim.Proc, client *rados.Client, name string) error {
	img, err := Open(p, client, name)
	if err != nil {
		return err
	}
	objects := (img.sizeBytes + img.objectBytes - 1) / img.objectBytes
	for i := int64(0); i < objects; i++ {
		if err := client.Delete(p, dataName(name, i)); err != nil &&
			!errors.Is(err, rados.ErrNotFound) {
			return err
		}
	}
	return client.Delete(p, headerName(name))
}

// Name returns the image name.
func (im *Image) Name() string { return im.name }

// Size returns the logical image size in bytes.
func (im *Image) Size() int64 { return im.sizeBytes }

// ObjectBytes returns the stripe object size.
func (im *Image) ObjectBytes() int64 { return im.objectBytes }

// Objects returns the number of data objects backing the image.
func (im *Image) Objects() int64 {
	return (im.sizeBytes + im.objectBytes - 1) / im.objectBytes
}

// ObjectName returns the RADOS object backing stripe index idx (for
// placement inspection).
func (im *Image) ObjectName(idx int64) string { return dataName(im.name, idx) }

// WriteAt stores data at logical offset off, splitting across stripe
// objects as needed.
func (im *Image) WriteAt(p *sim.Proc, data *wire.Bufferlist, off int64) error {
	n := int64(data.Length())
	if off < 0 || off+n > im.sizeBytes {
		return ErrOutOfBounds
	}
	exts, err := MapExtents(off, n, im.objectBytes)
	if err != nil {
		return err
	}
	for _, e := range exts {
		sub := data.SubList(int(e.BufOff), int(e.Length))
		if err := im.client.WriteAt(p, dataName(im.name, e.Index), uint64(e.ObjOff), sub); err != nil {
			return fmt.Errorf("striper: object %d: %w", e.Index, err)
		}
	}
	return nil
}

// ReadAt returns length bytes at logical offset off; unwritten regions read
// as zeros (sparse images).
func (im *Image) ReadAt(p *sim.Proc, off, length int64) (*wire.Bufferlist, error) {
	if off < 0 || length < 0 || off+length > im.sizeBytes {
		return nil, ErrOutOfBounds
	}
	exts, err := MapExtents(off, length, im.objectBytes)
	if err != nil {
		return nil, err
	}
	out := &wire.Bufferlist{}
	for _, e := range exts {
		bl, err := im.client.Read(p, dataName(im.name, e.Index), uint64(e.ObjOff), uint64(e.Length))
		switch {
		case errors.Is(err, rados.ErrNotFound):
			out.Append(make([]byte, e.Length))
		case err != nil:
			return nil, fmt.Errorf("striper: object %d: %w", e.Index, err)
		default:
			out.AppendBufferlist(bl)
			if short := e.Length - int64(bl.Length()); short > 0 {
				// Object exists but is shorter than the stripe: zero-fill.
				out.Append(make([]byte, short))
			}
		}
	}
	return out, nil
}

package striper

import (
	"bytes"
	"errors"
	"testing"

	"doceph/internal/cluster"
	"doceph/internal/sim"
	"doceph/internal/wire"
)

func TestMapExtentsBoundaries(t *testing.T) {
	cases := []struct {
		name             string
		off, length, obj int64
		want             []Extent
	}{
		{name: "zero length", off: 7, length: 0, obj: 100, want: nil},
		{name: "within one object", off: 10, length: 20, obj: 100,
			want: []Extent{{Index: 0, ObjOff: 10, BufOff: 0, Length: 20}}},
		{name: "exactly one object", off: 100, length: 100, obj: 100,
			want: []Extent{{Index: 1, ObjOff: 0, BufOff: 0, Length: 100}}},
		{name: "ends on boundary", off: 50, length: 50, obj: 100,
			want: []Extent{{Index: 0, ObjOff: 50, BufOff: 0, Length: 50}}},
		{name: "starts on boundary", off: 100, length: 1, obj: 100,
			want: []Extent{{Index: 1, ObjOff: 0, BufOff: 0, Length: 1}}},
		{name: "straddles one boundary", off: 90, length: 20, obj: 100,
			want: []Extent{
				{Index: 0, ObjOff: 90, BufOff: 0, Length: 10},
				{Index: 1, ObjOff: 0, BufOff: 10, Length: 10}}},
		{name: "spans three objects", off: 150, length: 200, obj: 100,
			want: []Extent{
				{Index: 1, ObjOff: 50, BufOff: 0, Length: 50},
				{Index: 2, ObjOff: 0, BufOff: 50, Length: 100},
				{Index: 3, ObjOff: 0, BufOff: 150, Length: 50}}},
		{name: "single-byte object size", off: 2, length: 3, obj: 1,
			want: []Extent{
				{Index: 2, ObjOff: 0, BufOff: 0, Length: 1},
				{Index: 3, ObjOff: 0, BufOff: 1, Length: 1},
				{Index: 4, ObjOff: 0, BufOff: 2, Length: 1}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := MapExtents(tc.off, tc.length, tc.obj)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(tc.want) {
				t.Fatalf("got %v, want %v", got, tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("extent %d: got %+v, want %+v", i, got[i], tc.want[i])
				}
			}
		})
	}
}

func TestMapExtentsRejectsBadInput(t *testing.T) {
	for _, tc := range []struct{ off, length, obj int64 }{
		{0, 1, 0},                // zero object size
		{0, 1, -4},               // negative object size
		{-1, 1, 100},             // negative offset
		{0, -1, 100},             // negative length
		{1 << 62, 1 << 62, 1024}, // offset+length overflow
		{(1 << 62) - 1, 2, 4096}, // straddles the overflow guard
	} {
		if _, err := MapExtents(tc.off, tc.length, tc.obj); err == nil {
			t.Errorf("MapExtents(%d, %d, %d): expected error", tc.off, tc.length, tc.obj)
		}
	}
}

// FuzzMapExtents asserts the mapper's structural contract on arbitrary
// geometry: either a clean error, or a partition of [off, off+length) —
// contiguous in buffer space, monotone in object space, every extent
// inside its object, with lengths summing to the request.
func FuzzMapExtents(f *testing.F) {
	f.Add(int64(0), int64(0), int64(1))
	f.Add(int64(0), int64(4096), int64(4<<20))
	f.Add(int64(4<<20-1), int64(2), int64(4<<20))
	f.Add(int64(90), int64(20), int64(100))
	f.Add(int64(150), int64(200), int64(100))
	f.Add(int64(-1), int64(10), int64(100))
	f.Add(int64(10), int64(-1), int64(100))
	f.Add(int64(0), int64(10), int64(0))
	f.Add(int64(1<<62), int64(1<<62), int64(1024))
	f.Add(int64(7), int64(3), int64(1))
	f.Fuzz(func(t *testing.T, off, length, objectBytes int64) {
		exts, err := MapExtents(off, length, objectBytes)
		if err != nil {
			if objectBytes > 0 && off >= 0 && length >= 0 && off <= (1<<62)-length {
				t.Fatalf("error on valid input (%d, %d, %d): %v", off, length, objectBytes, err)
			}
			return
		}
		if objectBytes <= 0 || off < 0 || length < 0 {
			t.Fatalf("accepted invalid input (%d, %d, %d)", off, length, objectBytes)
		}
		if length == 0 {
			if len(exts) != 0 {
				t.Fatalf("zero length produced extents: %v", exts)
			}
			return
		}
		var sum int64
		pos, lastIdx := int64(0), int64(-1)
		for i, e := range exts {
			if e.BufOff != pos {
				t.Fatalf("extent %d: buffer gap at %d (want %d)", i, e.BufOff, pos)
			}
			if e.Length <= 0 || e.ObjOff < 0 || e.ObjOff+e.Length > objectBytes {
				t.Fatalf("extent %d out of object bounds: %+v (obj %d)", i, e, objectBytes)
			}
			if e.Index <= lastIdx {
				t.Fatalf("extent %d: object index not increasing: %+v after %d", i, e, lastIdx)
			}
			if want := (off + e.BufOff) / objectBytes; e.Index != want {
				t.Fatalf("extent %d: index %d, want %d", i, e.Index, want)
			}
			if want := (off + e.BufOff) % objectBytes; e.ObjOff != want {
				t.Fatalf("extent %d: object offset %d, want %d", i, e.ObjOff, want)
			}
			lastIdx = e.Index
			pos += e.Length
			sum += e.Length
		}
		if sum != length {
			t.Fatalf("extents cover %d bytes, want %d", sum, length)
		}
	})
}

// TestReadTailOfPartialStripe covers the short-object zero-fill path: the
// image's last stripe object holds fewer bytes than a full stripe, and a
// read past its written extent must come back zero-padded, not short.
func TestReadTailOfPartialStripe(t *testing.T) {
	runOnCluster(t, cluster.DoCeph, func(p *sim.Proc, cl *cluster.Cluster) {
		img, err := Create(p, cl.Client, "tail", 3<<20, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		// The final object gets only 100 bytes; read the whole last stripe.
		if err := img.WriteAt(p, wire.FromBytes(pattern(100, 3)), 2<<20); err != nil {
			t.Fatal(err)
		}
		got, err := img.ReadAt(p, 2<<20, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		flat := got.Bytes()
		if len(flat) != 1<<20 {
			t.Fatalf("short read: %d", len(flat))
		}
		if !bytes.Equal(flat[:100], pattern(100, 3)) {
			t.Fatal("written tail mismatch")
		}
		for i := 100; i < 1<<20; i++ {
			if flat[i] != 0 {
				t.Fatalf("non-zero pad at %d", i)
			}
		}
	})
}

// TestZeroLengthAndEdgeReads covers degenerate ranges: zero-length reads
// anywhere in bounds (including exactly at EOF) succeed empty, and any
// range leaking past EOF is rejected.
func TestZeroLengthAndEdgeReads(t *testing.T) {
	runOnCluster(t, cluster.Baseline, func(p *sim.Proc, cl *cluster.Cluster) {
		img, err := Create(p, cl.Client, "edge", 2<<20, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		for _, off := range []int64{0, 1<<20 - 1, 1 << 20, 2 << 20} {
			got, err := img.ReadAt(p, off, 0)
			if err != nil || got.Length() != 0 {
				t.Fatalf("zero-length read at %d: len=%d err=%v", off, got.Length(), err)
			}
		}
		if _, err := img.ReadAt(p, 2<<20, 1); !errors.Is(err, ErrOutOfBounds) {
			t.Fatalf("read at EOF: %v", err)
		}
		if _, err := img.ReadAt(p, 2<<20+1, 0); !errors.Is(err, ErrOutOfBounds) {
			t.Fatalf("zero-length read past EOF: %v", err)
		}
		if err := img.WriteAt(p, wire.FromBytes([]byte{1}), 2<<20); !errors.Is(err, ErrOutOfBounds) {
			t.Fatalf("write at EOF: %v", err)
		}
	})
}

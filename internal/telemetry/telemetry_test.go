package telemetry

import (
	"math"
	"testing"

	"doceph/internal/sim"
)

func stats(busy map[string]sim.Duration, sw map[string]int64, window sim.Duration, cores int) sim.CPUStats {
	var total sim.Duration
	for _, v := range busy {
		total += v
	}
	return sim.CPUStats{
		WindowStart:   0,
		WindowEnd:     sim.Time(window),
		BusyByCat:     busy,
		SwitchesByCat: sw,
		TotalBusy:     total,
		Cores:         cores,
	}
}

func TestMergeSumsAcrossNodes(t *testing.T) {
	a := stats(map[string]sim.Duration{"msgr-worker": 2 * sim.Second, "bstore": sim.Second},
		map[string]int64{"msgr-worker": 100}, 10*sim.Second, 48)
	b := stats(map[string]sim.Duration{"msgr-worker": 3 * sim.Second},
		map[string]int64{"msgr-worker": 50, "bstore": 7}, 10*sim.Second, 48)
	m := Merge(a, b)
	if m.BusyByCat["msgr-worker"] != 5*sim.Second || m.BusyByCat["bstore"] != sim.Second {
		t.Fatalf("busy=%v", m.BusyByCat)
	}
	if m.SwitchesByCat["msgr-worker"] != 150 || m.SwitchesByCat["bstore"] != 7 {
		t.Fatalf("switches=%v", m.SwitchesByCat)
	}
	if m.TotalBusy != 6*sim.Second || m.Cores != 96 || m.Window != 10*sim.Second {
		t.Fatalf("total=%v cores=%d window=%v", m.TotalBusy, m.Cores, m.Window)
	}
}

func TestSingleCoreUtilization(t *testing.T) {
	a := stats(map[string]sim.Duration{"x": 7 * sim.Second}, nil, 10*sim.Second, 48)
	m := Merge(a)
	if math.Abs(m.SingleCoreUtilization()-0.7) > 1e-9 {
		t.Fatalf("util=%v", m.SingleCoreUtilization())
	}
	if math.Abs(m.CatSingleCoreUtilization("x")-0.7) > 1e-9 {
		t.Fatalf("cat util=%v", m.CatSingleCoreUtilization("x"))
	}
	if math.Abs(m.ShareOf("x")-1.0) > 1e-9 {
		t.Fatalf("share=%v", m.ShareOf("x"))
	}
}

func TestMergeEmpty(t *testing.T) {
	m := Merge()
	if m.SingleCoreUtilization() != 0 || m.ShareOf("x") != 0 {
		t.Fatal("empty merge should be zero")
	}
	if len(m.Categories()) != 0 {
		t.Fatal("categories non-empty")
	}
}

func TestCategoriesSorted(t *testing.T) {
	a := stats(map[string]sim.Duration{"z": 1, "a": 1, "m": 1}, nil, sim.Second, 1)
	cats := Merge(a).Categories()
	if len(cats) != 3 || cats[0] != "a" || cats[1] != "m" || cats[2] != "z" {
		t.Fatalf("cats=%v", cats)
	}
}

func TestSamplerCollectsAndAggregates(t *testing.T) {
	env := sim.NewEnv(1)
	v := 0.0
	s := NewSampler(env, "probe", sim.Second, func() float64 { return v })
	env.Spawn("driver", func(p *sim.Proc) {
		for i := 1; i <= 10; i++ {
			v = float64(i)
			p.Wait(sim.Second)
		}
	})
	if err := env.RunUntil(sim.Time(10 * sim.Second)); err != nil {
		t.Fatal(err)
	}
	env.Shutdown()
	if len(s.Samples) != 10 {
		t.Fatalf("samples=%d", len(s.Samples))
	}
	// Samples observed values 1..10 (sampler fires after each set).
	mean := s.Mean(0)
	if mean < 5 || mean > 6.5 {
		t.Fatalf("mean=%v", mean)
	}
	if s.Stddev(0) <= 0 {
		t.Fatalf("stddev=%v", s.Stddev(0))
	}
	// Windowed mean over the tail only.
	tail := s.Mean(sim.Time(8 * sim.Second))
	if tail <= mean {
		t.Fatalf("tail mean %v should exceed overall %v", tail, mean)
	}
}

func TestStddevConstantSeriesIsZero(t *testing.T) {
	env := sim.NewEnv(1)
	s := NewSampler(env, "c", sim.Second, func() float64 { return 4.2 })
	if err := env.RunUntil(sim.Time(5 * sim.Second)); err != nil {
		t.Fatal(err)
	}
	env.Shutdown()
	if s.Stddev(0) != 0 {
		t.Fatalf("stddev=%v", s.Stddev(0))
	}
}

// Package telemetry aggregates measurement data across a simulated cluster:
// merged per-category CPU accounting (the paper's Figure 5/7 and Table 2
// inputs) and periodic time-series sampling (the per-second htop/iostat
// methodology of §5.1).
package telemetry

import (
	"math"
	"sort"

	"doceph/internal/sim"
)

// MergedCPU is the union of several CPUs' accounting windows.
type MergedCPU struct {
	BusyByCat     map[string]sim.Duration
	SwitchesByCat map[string]int64
	TotalBusy     sim.Duration
	Window        sim.Duration
	Cores         int
}

// Merge combines stats snapshots (typically one per storage node). Windows
// are assumed aligned (same reset instant), as the harness guarantees.
func Merge(stats ...sim.CPUStats) MergedCPU {
	m := MergedCPU{
		BusyByCat:     make(map[string]sim.Duration),
		SwitchesByCat: make(map[string]int64),
	}
	for _, s := range stats {
		for k, v := range s.BusyByCat {
			m.BusyByCat[k] += v
		}
		for k, v := range s.SwitchesByCat {
			m.SwitchesByCat[k] += v
		}
		m.TotalBusy += s.TotalBusy
		m.Cores += s.Cores
		if w := s.WindowEnd.Sub(s.WindowStart); w > m.Window {
			m.Window = w
		}
	}
	return m
}

// SingleCoreUtilization reports total busy time as a fraction of ONE core's
// time — the paper's normalization ("Ceph CPU usage normalized to a single
// core", Figure 5 right axis; Figure 7 uses the same scale).
func (m MergedCPU) SingleCoreUtilization() float64 {
	if m.Window <= 0 {
		return 0
	}
	return m.TotalBusy.Seconds() / m.Window.Seconds()
}

// CatSingleCoreUtilization is SingleCoreUtilization for one category.
func (m MergedCPU) CatSingleCoreUtilization(cat string) float64 {
	if m.Window <= 0 {
		return 0
	}
	return m.BusyByCat[cat].Seconds() / m.Window.Seconds()
}

// ShareOf returns cat's fraction of total busy time.
func (m MergedCPU) ShareOf(cat string) float64 {
	if m.TotalBusy <= 0 {
		return 0
	}
	return m.BusyByCat[cat].Seconds() / m.TotalBusy.Seconds()
}

// Categories returns the categories present, sorted.
func (m MergedCPU) Categories() []string {
	out := make([]string, 0, len(m.BusyByCat))
	for k := range m.BusyByCat {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Counters is a small named-counter set for data-plane robustness events
// (retries, timeouts, stale replies, injected faults). Snapshots are sorted
// by name so reports built from them are deterministic.
type Counters struct {
	vals map[string]int64
}

// NewCounters returns an empty counter set.
func NewCounters() *Counters { return &Counters{vals: make(map[string]int64)} }

// Add increments name by delta.
func (c *Counters) Add(name string, delta int64) { c.vals[name] += delta }

// Get returns name's current value (0 if never incremented).
func (c *Counters) Get(name string) int64 { return c.vals[name] }

// CounterSample is one name/value pair of a Counters snapshot.
type CounterSample struct {
	Name  string
	Value int64
}

// Snapshot returns all counters sorted by name.
func (c *Counters) Snapshot() []CounterSample {
	out := make([]CounterSample, 0, len(c.vals))
	for k, v := range c.vals {
		out = append(out, CounterSample{Name: k, Value: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Sample is one point of a periodic series.
type Sample struct {
	At    sim.Time
	Value float64
}

// Sampler periodically evaluates a probe function, building the per-second
// series the paper's stability plots use.
type Sampler struct {
	Samples []Sample
}

// NewSampler spawns a daemon sampling probe every interval.
func NewSampler(env *sim.Env, name string, interval sim.Duration, probe func() float64) *Sampler {
	s := &Sampler{}
	env.SpawnDaemon("sampler:"+name, func(p *sim.Proc) {
		for {
			p.Wait(interval)
			s.Samples = append(s.Samples, Sample{At: p.Now(), Value: probe()})
		}
	})
	return s
}

// Mean returns the average of samples taken at or after from.
func (s *Sampler) Mean(from sim.Time) float64 {
	var sum float64
	var n int
	for _, smp := range s.Samples {
		if smp.At >= from {
			sum += smp.Value
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Stddev returns the standard deviation of samples at or after from.
func (s *Sampler) Stddev(from sim.Time) float64 {
	mean := s.Mean(from)
	var sum float64
	var n int
	for _, smp := range s.Samples {
		if smp.At >= from {
			d := smp.Value - mean
			sum += d * d
			n++
		}
	}
	if n < 2 {
		return 0
	}
	return math.Sqrt(sum / float64(n-1))
}

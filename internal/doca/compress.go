package doca

import "doceph/internal/sim"

// CompressionEngine models the DPU's hardware compression accelerator
// (paper Figure 1 lists compression/decompression engines among the
// BlueField's fixed-function blocks; PEDAL [12] in the paper's related work
// measures them). Compression runs at accelerator throughput without
// consuming ARM CPU beyond a submission cost.
//
// The simulation keeps the original bytes flowing (so end-to-end integrity
// checks stay real) and models compression as a size/time transform: the
// achieved ratio is configuration, not computed from the synthetic payload
// (which would compress unrealistically well).
type CompressionEngineConfig struct {
	// BytesPerSec is the accelerator's streaming rate over the original
	// data.
	BytesPerSec float64
	// Ratio is the modeled compression ratio (original/compressed).
	Ratio float64
	// SubmitCycles is charged on the submitting CPU per operation.
	SubmitCycles int64
}

// DefaultCompressionEngineConfig returns BlueField-3-like parameters
// (deflate-class engine, LZ4-class ratio on mixed storage payloads).
func DefaultCompressionEngineConfig() CompressionEngineConfig {
	return CompressionEngineConfig{
		BytesPerSec:  8e9,
		Ratio:        2.0,
		SubmitCycles: 5_000,
	}
}

func (c CompressionEngineConfig) withDefaults() CompressionEngineConfig {
	d := DefaultCompressionEngineConfig()
	if c.BytesPerSec == 0 {
		c.BytesPerSec = d.BytesPerSec
	}
	if c.Ratio == 0 {
		c.Ratio = d.Ratio
	}
	if c.SubmitCycles == 0 {
		c.SubmitCycles = d.SubmitCycles
	}
	return c
}

// CompressionEngine is one accelerator instance. Like the DMA engine it is
// a serialized resource.
type CompressionEngine struct {
	env    *sim.Env
	cfg    CompressionEngineConfig
	freeAt sim.Time

	ops      int64
	bytesIn  int64
	bytesOut int64
}

// NewCompressionEngine creates an accelerator.
func NewCompressionEngine(env *sim.Env, cfg CompressionEngineConfig) *CompressionEngine {
	return &CompressionEngine{env: env, cfg: cfg.withDefaults()}
}

// Config returns the accelerator configuration (post-defaulting).
func (ce *CompressionEngine) Config() CompressionEngineConfig { return ce.cfg }

// Ops returns the number of operations executed.
func (ce *CompressionEngine) Ops() int64 { return ce.ops }

// BytesIn returns total original bytes streamed through the engine.
func (ce *CompressionEngine) BytesIn() int64 { return ce.bytesIn }

// BytesOut returns total compressed bytes produced.
func (ce *CompressionEngine) BytesOut() int64 { return ce.bytesOut }

// Compress blocks p while origBytes stream through the accelerator
// (queueing against other users included) and returns the modeled
// compressed size. cpu is charged only the submission cost.
func (ce *CompressionEngine) Compress(p *sim.Proc, cpu *sim.CPU, origBytes int64) int64 {
	cpu.ExecSelf(p, ce.cfg.SubmitCycles)
	ser := sim.Duration(float64(origBytes) / ce.cfg.BytesPerSec * float64(sim.Second))
	start := ce.env.Now()
	if ce.freeAt > start {
		start = ce.freeAt
	}
	ce.freeAt = start.Add(ser)
	p.WaitUntil(ce.freeAt)
	out := int64(float64(origBytes) / ce.cfg.Ratio)
	if out < 64 {
		out = 64
	}
	ce.ops++
	ce.bytesIn += origBytes
	ce.bytesOut += out
	return out
}

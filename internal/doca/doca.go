// Package doca emulates the two NVIDIA DOCA facilities DoCeph builds on
// (paper §3.2):
//
//   - CommChannel: the negotiation API that exports host memory regions to
//     the DPU before DMA can target them. Negotiations cost a PCIe round
//     trip plus CPU on both sides, which is why DoCeph caches established
//     regions instead of renegotiating per transfer.
//   - Engine: the DMA engine moving data between DPU and host memory with
//     the documented ~2 MB per-transfer limit, a per-transfer setup cost,
//     completion by polling, and hooks for error injection (exercised by
//     DoCeph's fallback/cooldown machinery).
//
// Transfers carry real wire.Bufferlist payloads, so data integrity across
// the PCIe path is checked end-to-end by the tests.
package doca

import (
	"errors"
	"fmt"

	"doceph/internal/sim"
	"doceph/internal/wire"
)

// Errors returned by the engine.
var (
	// ErrTooLarge rejects transfers above the hardware segment limit.
	ErrTooLarge = errors.New("doca: transfer exceeds max DMA size")
	// ErrTransferFailed marks an injected or simulated DMA failure.
	ErrTransferFailed = errors.New("doca: DMA transfer failed")
	// ErrNotExported rejects DMA against a region that was never
	// negotiated over the CommChannel.
	ErrNotExported = errors.New("doca: memory region not exported")
)

// MemRegion is a host- or DPU-side memory region that must be exported via
// CommChannel negotiation before the engine may target it.
type MemRegion struct {
	Name     string
	Bytes    int64
	exported bool
}

// NewMemRegion returns an unexported region.
func NewMemRegion(name string, bytes int64) *MemRegion {
	return &MemRegion{Name: name, Bytes: bytes}
}

// Exported reports whether the region has been negotiated.
func (r *MemRegion) Exported() bool { return r.exported }

// CommChannelConfig models the negotiation cost.
type CommChannelConfig struct {
	// RTT is the PCIe/driver round-trip of one negotiation.
	RTT sim.Duration
	// LocalCycles is charged on the negotiating (DPU) thread.
	LocalCycles int64
	// HostCycles is charged on the host thread that services the export.
	HostCycles int64
}

// DefaultCommChannelConfig returns negotiation defaults (~40 us RTT).
func DefaultCommChannelConfig() CommChannelConfig {
	return CommChannelConfig{RTT: 40 * sim.Microsecond, LocalCycles: 20_000, HostCycles: 20_000}
}

// CommChannel is the control channel used to export memory regions.
type CommChannel struct {
	env     *sim.Env
	cfg     CommChannelConfig
	dpuCPU  *sim.CPU
	hostCPU *sim.CPU
	hostTh  *sim.Thread

	// stall is extra per-negotiation latency injected by fault plans (a
	// congested or flapping control channel).
	stall        sim.Duration
	negotiations int64
}

// NewCommChannel binds a channel between the DPU CPU and a host CPU; host
// negotiation work is charged to hostTh.
func NewCommChannel(env *sim.Env, dpuCPU, hostCPU *sim.CPU, hostTh *sim.Thread,
	cfg CommChannelConfig) *CommChannel {
	if cfg.RTT == 0 {
		cfg = DefaultCommChannelConfig()
	}
	return &CommChannel{env: env, cfg: cfg, dpuCPU: dpuCPU, hostCPU: hostCPU, hostTh: hostTh}
}

// Negotiate exports region, blocking p (a DPU thread) for the negotiation
// round trip. Re-negotiating an exported region is permitted (and counted:
// the MR-cache ablation measures exactly this waste).
func (cc *CommChannel) Negotiate(p *sim.Proc, region *MemRegion) {
	cc.negotiations++
	cc.dpuCPU.ExecSelf(p, cc.cfg.LocalCycles)
	cc.hostCPU.Exec(p, cc.hostTh, cc.cfg.HostCycles)
	p.Wait(cc.cfg.RTT + cc.stall)
	region.exported = true
}

// SetStall injects extra latency into every negotiation round trip; zero
// clears the fault.
func (cc *CommChannel) SetStall(d sim.Duration) { cc.stall = d }

// Negotiations returns how many exports have been performed.
func (cc *CommChannel) Negotiations() int64 { return cc.negotiations }

// EngineConfig models the DMA hardware.
type EngineConfig struct {
	// MaxTransferBytes is the hardware per-transfer limit (~2 MB on
	// BlueField-3, [10] in the paper).
	MaxTransferBytes int64
	// BytesPerSec is the sustained DMA copy rate across PCIe.
	BytesPerSec float64
	// SetupTime is the engine-side overhead of the FIRST segment of a
	// request: CommChannel synchronization, descriptor setup and doorbell.
	// The paper's Table 3 implies this is on the order of milliseconds
	// (1 MB "DMA" time 2.8 ms at ~GB/s copy rates).
	SetupTime sim.Duration
	// ReuseSetupTime is the amortized per-segment overhead when the engine
	// executes consecutive segments of the same request against an already
	// established memory region (§3.3: "reusing pre-established memory
	// regions instead of performing CommChannel negotiation for each
	// transfer").
	ReuseSetupTime sim.Duration
	// SubmitCycles is charged on the submitting (DPU) thread per transfer.
	SubmitCycles int64
	// JitterPct randomizes each transfer's execution time uniformly within
	// +-JitterPct/100 (seeded, deterministic per run). Real engines show
	// substantial service-time variance (PCIe arbitration, cache effects);
	// without it the two near-equal bottlenecks of the DoCeph write path
	// (engine and disk) lock into artificial lockstep. Negative disables
	// jitter entirely (exact-timing tests).
	JitterPct float64
	// Queues is the number of parallel DMA queues. BlueField-3 exposes
	// several; the paper's deployment behaves like one (its
	// serial-transfer analysis in §5.4), so 1 is the default. Requests
	// are pinned to queues by id, preserving per-request segment ordering
	// and the ReuseSetupTime amortization (queue-pair affinity).
	Queues int
	// Channels is the deprecated alias for Queues, honored when Queues is
	// zero.
	Channels int
	// CopySlots bounds how many copy phases may occupy the PCIe path at
	// once when Queues > 1: descriptor setup and doorbells proceed
	// independently per queue, but the data movement itself shares link
	// bandwidth. Zero defaults to 2; negative removes the bound. Ignored
	// with one queue (the single executor already serializes).
	CopySlots int
}

// DefaultEngineConfig returns BlueField-3-like DMA parameters.
func DefaultEngineConfig() EngineConfig {
	return EngineConfig{
		MaxTransferBytes: 2 << 20,
		BytesPerSec:      635e6,
		SetupTime:        1600 * sim.Microsecond,
		ReuseSetupTime:   400 * sim.Microsecond,
		SubmitCycles:     6_000,
		JitterPct:        25,
	}
}

func (c EngineConfig) withDefaults() EngineConfig {
	d := DefaultEngineConfig()
	if c.MaxTransferBytes == 0 {
		c.MaxTransferBytes = d.MaxTransferBytes
	}
	if c.BytesPerSec == 0 {
		c.BytesPerSec = d.BytesPerSec
	}
	if c.SetupTime == 0 {
		c.SetupTime = d.SetupTime
	}
	if c.ReuseSetupTime == 0 {
		c.ReuseSetupTime = d.ReuseSetupTime
	}
	if c.SubmitCycles == 0 {
		c.SubmitCycles = d.SubmitCycles
	}
	if c.JitterPct == 0 {
		c.JitterPct = d.JitterPct
	}
	if c.Queues == 0 {
		c.Queues = c.Channels
	}
	if c.Queues == 0 {
		c.Queues = 1
	}
	c.Channels = c.Queues
	if c.CopySlots == 0 {
		c.CopySlots = 2
	}
	return c
}

// Transfer is one DMA work request. Timing fields let callers decompose
// latency exactly as the paper's Table 3 does: queue wait (StartedAt -
// SubmittedAt) versus copy time (CompletedAt - StartedAt).
type Transfer struct {
	ReqID     uint64
	Seg       int
	TotalSegs int
	Bytes     int64
	Data      *wire.Bufferlist
	Src, Dst  *MemRegion
	// Ops is the number of logical operations coalesced into this transfer
	// (batch frames); zero means one. Accounting only.
	Ops int
	// ReuseSetup marks a transfer whose memory regions and descriptors are
	// already established at submit time — batch frames moved out of the
	// pre-registered staging pool into the fixed host region (§3.3's
	// "reusing pre-established memory regions"). The engine charges
	// ReuseSetupTime instead of SetupTime when the queue's previous
	// transfer was also marked, extending the same amortization the
	// per-request segment path gets to consecutive batch frames.
	ReuseSetup bool
	// Queue pins the transfer to queue Queue-1 when positive (a slot
	// reserved earlier via ReserveQueue); zero steers by ReqID hash. Only
	// single-segment transfers may be pinned — multi-segment requests rely
	// on hash steering for their per-request queue-pair affinity.
	Queue int
	// Tag carries caller context to the completion poller.
	Tag interface{}
	// TraceCtx is the submitting operation's trace span context (raw
	// trace.SpanID). Instrumentation only; never serialized.
	TraceCtx uint64

	SubmittedAt sim.Time
	StartedAt   sim.Time
	CompletedAt sim.Time
	Err         error
	forceFail   bool

	// Done fires on completion (success or failure); the submitter waits
	// on it while the host side consumes the completion queue.
	Done *sim.Event
}

// Wait returns the queueing delay the transfer experienced.
func (t *Transfer) Wait() sim.Duration { return t.StartedAt.Sub(t.SubmittedAt) }

// CopyTime returns the pure engine execution time.
func (t *Transfer) CopyTime() sim.Duration { return t.CompletedAt.Sub(t.StartedAt) }

// EngineStats counts engine activity.
type EngineStats struct {
	Transfers int64
	// OpsMoved counts logical operations carried: equal to Transfers
	// without batching, larger with it (OpsMoved/Transfers is the achieved
	// coalescing factor at the engine).
	OpsMoved  int64
	Bytes     int64
	Errors    int64
	TotalWait sim.Duration
	TotalCopy sim.Duration
	// Busy is the summed service time across all queues (setup + copy,
	// including shared-bus arbitration). Busy / (Queues * elapsed) is the
	// engine occupancy.
	Busy sim.Duration
}

// QueueStat is the per-queue slice of the engine counters, for occupancy
// and load-balance analysis of the multi-queue configuration.
type QueueStat struct {
	Transfers int64
	OpsMoved  int64
	Bytes     int64
	Errors    int64
	// Busy is the time this queue spent servicing transfers.
	Busy sim.Duration
	// MaxDepth is the high-water mark of queued + in-flight transfers.
	MaxDepth int
}

// Engine is one DMA engine with N independent queues (N=1: a serial
// executor, the paper's deployment). Each queue has per-request affinity —
// pending segments of the request the queue just served are executed first
// (hardware WQE batching per queue pair), which is what lets the
// ReuseSetupTime amortization take effect under concurrency. With several
// queues, setup/doorbell work overlaps freely while copy phases contend
// for CopySlots shared PCIe bus slots. A single completion queue is
// consumed by the host's polling thread.
type Engine struct {
	env *sim.Env
	cfg EngineConfig

	queues      []*dmaQueue
	bus         *sim.Semaphore // nil with one queue or unbounded CopySlots
	completions *sim.Queue[*Transfer]

	// failNext makes the next n submitted transfers fail (error-injection
	// hook).
	failNext int
	// FailEvery injects a failure every n-th submission when > 0.
	FailEvery int64
	// failProb fails each submission with this probability (seeded via the
	// environment RNG; fault-plan hook).
	failProb  float64
	submitted int64

	stats EngineStats
}

type dmaQueue struct {
	pending []*Transfer
	cond    *sim.Cond
	depth   int // queued + in-flight
	// lastReuse records whether the previous transfer was a
	// ReuseSetup frame (descriptor/MR state still hot on this queue pair).
	lastReuse bool
	stats     QueueStat
}

// NewEngine creates an engine and spawns one execution process per queue.
func NewEngine(env *sim.Env, name string, cfg EngineConfig) *Engine {
	e := &Engine{
		env:         env,
		cfg:         cfg.withDefaults(),
		completions: sim.NewQueue[*Transfer](env),
	}
	if e.cfg.Queues > 1 && e.cfg.CopySlots > 0 {
		e.bus = sim.NewSemaphore(env, e.cfg.CopySlots)
	}
	for i := 0; i < e.cfg.Queues; i++ {
		q := &dmaQueue{cond: sim.NewCond(env)}
		e.queues = append(e.queues, q)
		env.SpawnDaemon(fmt.Sprintf("dma-engine:%s/ch%d", name, i),
			func(p *sim.Proc) { e.run(p, q) })
	}
	return e
}

// NumQueues returns the number of parallel DMA queues.
func (e *Engine) NumQueues() int { return len(e.queues) }

// QueueFor returns the queue index a request id is pinned to. All segments
// of a request (and its commit notifications) ride the same queue.
func (e *Engine) QueueFor(reqID uint64) int { return int(reqID % uint64(len(e.queues))) }

// ReserveQueue picks the shallowest queue (join-shortest-queue; ties break
// to the lowest index, keeping the choice deterministic) and reserves a
// depth slot on it. The caller pins the eventual transfer with
// Transfer.Queue = idx+1; the reservation is released when that transfer
// completes or its Submit fails validation. JSQ steering is what keeps
// single-segment batch frames from queueing behind a busy queue while
// siblings sit idle — hash steering can't see instantaneous depth.
func (e *Engine) ReserveQueue() int {
	idx := 0
	for i := 1; i < len(e.queues); i++ {
		if e.queues[i].depth < e.queues[idx].depth {
			idx = i
		}
	}
	q := e.queues[idx]
	q.depth++
	if q.depth > q.stats.MaxDepth {
		q.stats.MaxDepth = q.depth
	}
	return idx
}

// QueueStats returns a copy of the per-queue counters.
func (e *Engine) QueueStats() []QueueStat {
	out := make([]QueueStat, len(e.queues))
	for i, q := range e.queues {
		out[i] = q.stats
	}
	return out
}

// Config returns the engine configuration (post-defaulting).
func (e *Engine) Config() EngineConfig { return e.cfg }

// Stats returns a copy of the engine counters.
func (e *Engine) Stats() EngineStats { return e.stats }

// FailNext makes the next n submitted transfers fail (test/fallback hook).
func (e *Engine) FailNext(n int) { e.failNext += n }

// SetFailProb makes each submitted transfer fail with probability prob;
// zero clears the fault.
func (e *Engine) SetFailProb(prob float64) { e.failProb = prob }

// Submit validates and enqueues t, charging the submit cost to p's thread
// on cpu. It returns immediately; wait on t.Done or consume Completions.
func (e *Engine) Submit(p *sim.Proc, cpu *sim.CPU, t *Transfer) error {
	if t.Bytes > e.cfg.MaxTransferBytes {
		e.unreserve(t)
		return fmt.Errorf("%w: %d > %d", ErrTooLarge, t.Bytes, e.cfg.MaxTransferBytes)
	}
	if t.Src == nil || t.Dst == nil || !t.Src.Exported() || !t.Dst.Exported() {
		e.unreserve(t)
		return ErrNotExported
	}
	cpu.ExecSelf(p, e.cfg.SubmitCycles)
	t.SubmittedAt = p.Now()
	t.Done = sim.NewEvent(e.env)
	e.submitted++
	if e.failNext > 0 {
		e.failNext--
		t.forceFail = true
	} else if e.FailEvery > 0 && e.submitted%e.FailEvery == 0 {
		t.forceFail = true
	} else if e.failProb > 0 && e.env.Rand().Float64() < e.failProb {
		t.forceFail = true
	}
	var q *dmaQueue
	if t.Queue > 0 && t.Queue <= len(e.queues) {
		// Pinned: the depth slot was reserved by ReserveQueue.
		q = e.queues[t.Queue-1]
	} else {
		q = e.queues[e.QueueFor(t.ReqID)]
		q.depth++
		if q.depth > q.stats.MaxDepth {
			q.stats.MaxDepth = q.depth
		}
	}
	q.pending = append(q.pending, t)
	q.cond.Broadcast()
	return nil
}

// unreserve releases the depth slot of a pinned transfer whose Submit
// failed validation (the run loop never sees it).
func (e *Engine) unreserve(t *Transfer) {
	if t.Queue > 0 && t.Queue <= len(e.queues) {
		e.queues[t.Queue-1].depth--
	}
}

// next pops the queue's next transfer, preferring a pending segment of
// the request the queue last executed (queue-pair affinity).
func (q *dmaQueue) next(p *sim.Proc, lastReq uint64, haveLast bool) *Transfer {
	for len(q.pending) == 0 {
		q.cond.Wait(p)
	}
	idx := 0
	if haveLast {
		for i, t := range q.pending {
			if t.ReqID == lastReq {
				idx = i
				break
			}
		}
	}
	t := q.pending[idx]
	q.pending = append(q.pending[:idx], q.pending[idx+1:]...)
	return t
}

// Completions is the queue the host-side polling thread consumes.
func (e *Engine) Completions() *sim.Queue[*Transfer] { return e.completions }

func (e *Engine) run(p *sim.Proc, q *dmaQueue) {
	var lastReq uint64
	var haveLast bool
	for {
		t := q.next(p, lastReq, haveLast)
		t.StartedAt = p.Now()
		fail := t.forceFail
		setup := e.cfg.SetupTime
		if haveLast && t.ReqID == lastReq && t.Seg > 0 {
			setup = e.cfg.ReuseSetupTime
		} else if t.ReuseSetup && q.lastReuse {
			setup = e.cfg.ReuseSetupTime
		}
		q.lastReuse = t.ReuseSetup
		lastReq, haveLast = t.ReqID, true
		copyTime := setup +
			sim.Duration(float64(t.Bytes)/e.cfg.BytesPerSec*float64(sim.Second))
		if e.cfg.JitterPct > 0 {
			f := 1 + e.cfg.JitterPct/100*(2*e.env.Rand().Float64()-1)
			setup = sim.Duration(float64(setup) * f)
			copyTime = sim.Duration(float64(copyTime) * f)
		}
		switch {
		case fail:
			// A failed transfer burns part of its slot before the engine
			// reports the error (the copy never reaches the bus).
			p.Wait(copyTime / 2)
			t.Err = ErrTransferFailed
			e.stats.Errors++
			q.stats.Errors++
		case e.bus == nil:
			// Single queue (or unbounded CopySlots): the executor itself
			// serializes, no bus arbitration needed.
			p.Wait(copyTime)
			e.noteSuccess(q, t)
		default:
			// Descriptor setup and doorbell proceed per queue; the data
			// movement contends for the shared PCIe bus slots.
			p.Wait(setup)
			e.bus.Acquire(p, 1)
			p.Wait(copyTime - setup)
			e.bus.Release(1)
			e.noteSuccess(q, t)
		}
		t.CompletedAt = p.Now()
		q.depth--
		e.stats.TotalWait += t.Wait()
		e.stats.TotalCopy += t.CopyTime()
		e.stats.Busy += t.CopyTime()
		q.stats.Busy += t.CopyTime()
		e.completions.Push(t)
		t.Done.Fire()
	}
}

func (e *Engine) noteSuccess(q *dmaQueue, t *Transfer) {
	ops := int64(1)
	if t.Ops > 1 {
		ops = int64(t.Ops)
	}
	e.stats.Transfers++
	e.stats.Bytes += t.Bytes
	e.stats.OpsMoved += ops
	q.stats.Transfers++
	q.stats.Bytes += t.Bytes
	q.stats.OpsMoved += ops
}

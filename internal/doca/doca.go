// Package doca emulates the two NVIDIA DOCA facilities DoCeph builds on
// (paper §3.2):
//
//   - CommChannel: the negotiation API that exports host memory regions to
//     the DPU before DMA can target them. Negotiations cost a PCIe round
//     trip plus CPU on both sides, which is why DoCeph caches established
//     regions instead of renegotiating per transfer.
//   - Engine: the DMA engine moving data between DPU and host memory with
//     the documented ~2 MB per-transfer limit, a per-transfer setup cost,
//     completion by polling, and hooks for error injection (exercised by
//     DoCeph's fallback/cooldown machinery).
//
// Transfers carry real wire.Bufferlist payloads, so data integrity across
// the PCIe path is checked end-to-end by the tests.
package doca

import (
	"errors"
	"fmt"

	"doceph/internal/sim"
	"doceph/internal/wire"
)

// Errors returned by the engine.
var (
	// ErrTooLarge rejects transfers above the hardware segment limit.
	ErrTooLarge = errors.New("doca: transfer exceeds max DMA size")
	// ErrTransferFailed marks an injected or simulated DMA failure.
	ErrTransferFailed = errors.New("doca: DMA transfer failed")
	// ErrNotExported rejects DMA against a region that was never
	// negotiated over the CommChannel.
	ErrNotExported = errors.New("doca: memory region not exported")
)

// MemRegion is a host- or DPU-side memory region that must be exported via
// CommChannel negotiation before the engine may target it.
type MemRegion struct {
	Name     string
	Bytes    int64
	exported bool
}

// NewMemRegion returns an unexported region.
func NewMemRegion(name string, bytes int64) *MemRegion {
	return &MemRegion{Name: name, Bytes: bytes}
}

// Exported reports whether the region has been negotiated.
func (r *MemRegion) Exported() bool { return r.exported }

// CommChannelConfig models the negotiation cost.
type CommChannelConfig struct {
	// RTT is the PCIe/driver round-trip of one negotiation.
	RTT sim.Duration
	// LocalCycles is charged on the negotiating (DPU) thread.
	LocalCycles int64
	// HostCycles is charged on the host thread that services the export.
	HostCycles int64
}

// DefaultCommChannelConfig returns negotiation defaults (~40 us RTT).
func DefaultCommChannelConfig() CommChannelConfig {
	return CommChannelConfig{RTT: 40 * sim.Microsecond, LocalCycles: 20_000, HostCycles: 20_000}
}

// CommChannel is the control channel used to export memory regions.
type CommChannel struct {
	env     *sim.Env
	cfg     CommChannelConfig
	dpuCPU  *sim.CPU
	hostCPU *sim.CPU
	hostTh  *sim.Thread

	// stall is extra per-negotiation latency injected by fault plans (a
	// congested or flapping control channel).
	stall        sim.Duration
	negotiations int64
}

// NewCommChannel binds a channel between the DPU CPU and a host CPU; host
// negotiation work is charged to hostTh.
func NewCommChannel(env *sim.Env, dpuCPU, hostCPU *sim.CPU, hostTh *sim.Thread,
	cfg CommChannelConfig) *CommChannel {
	if cfg.RTT == 0 {
		cfg = DefaultCommChannelConfig()
	}
	return &CommChannel{env: env, cfg: cfg, dpuCPU: dpuCPU, hostCPU: hostCPU, hostTh: hostTh}
}

// Negotiate exports region, blocking p (a DPU thread) for the negotiation
// round trip. Re-negotiating an exported region is permitted (and counted:
// the MR-cache ablation measures exactly this waste).
func (cc *CommChannel) Negotiate(p *sim.Proc, region *MemRegion) {
	cc.negotiations++
	cc.dpuCPU.ExecSelf(p, cc.cfg.LocalCycles)
	cc.hostCPU.Exec(p, cc.hostTh, cc.cfg.HostCycles)
	p.Wait(cc.cfg.RTT + cc.stall)
	region.exported = true
}

// SetStall injects extra latency into every negotiation round trip; zero
// clears the fault.
func (cc *CommChannel) SetStall(d sim.Duration) { cc.stall = d }

// Negotiations returns how many exports have been performed.
func (cc *CommChannel) Negotiations() int64 { return cc.negotiations }

// EngineConfig models the DMA hardware.
type EngineConfig struct {
	// MaxTransferBytes is the hardware per-transfer limit (~2 MB on
	// BlueField-3, [10] in the paper).
	MaxTransferBytes int64
	// BytesPerSec is the sustained DMA copy rate across PCIe.
	BytesPerSec float64
	// SetupTime is the engine-side overhead of the FIRST segment of a
	// request: CommChannel synchronization, descriptor setup and doorbell.
	// The paper's Table 3 implies this is on the order of milliseconds
	// (1 MB "DMA" time 2.8 ms at ~GB/s copy rates).
	SetupTime sim.Duration
	// ReuseSetupTime is the amortized per-segment overhead when the engine
	// executes consecutive segments of the same request against an already
	// established memory region (§3.3: "reusing pre-established memory
	// regions instead of performing CommChannel negotiation for each
	// transfer").
	ReuseSetupTime sim.Duration
	// SubmitCycles is charged on the submitting (DPU) thread per transfer.
	SubmitCycles int64
	// JitterPct randomizes each transfer's execution time uniformly within
	// +-JitterPct/100 (seeded, deterministic per run). Real engines show
	// substantial service-time variance (PCIe arbitration, cache effects);
	// without it the two near-equal bottlenecks of the DoCeph write path
	// (engine and disk) lock into artificial lockstep. Negative disables
	// jitter entirely (exact-timing tests).
	JitterPct float64
	// Channels is the number of parallel DMA queue pairs. BlueField-3
	// exposes several; the paper's deployment behaves like one (its
	// serial-transfer analysis in §5.4), so 1 is the default. Requests are
	// pinned to channels by id, preserving per-request ordering and the
	// ReuseSetupTime amortization.
	Channels int
}

// DefaultEngineConfig returns BlueField-3-like DMA parameters.
func DefaultEngineConfig() EngineConfig {
	return EngineConfig{
		MaxTransferBytes: 2 << 20,
		BytesPerSec:      635e6,
		SetupTime:        1600 * sim.Microsecond,
		ReuseSetupTime:   400 * sim.Microsecond,
		SubmitCycles:     6_000,
		JitterPct:        25,
	}
}

func (c EngineConfig) withDefaults() EngineConfig {
	d := DefaultEngineConfig()
	if c.MaxTransferBytes == 0 {
		c.MaxTransferBytes = d.MaxTransferBytes
	}
	if c.BytesPerSec == 0 {
		c.BytesPerSec = d.BytesPerSec
	}
	if c.SetupTime == 0 {
		c.SetupTime = d.SetupTime
	}
	if c.ReuseSetupTime == 0 {
		c.ReuseSetupTime = d.ReuseSetupTime
	}
	if c.SubmitCycles == 0 {
		c.SubmitCycles = d.SubmitCycles
	}
	if c.JitterPct == 0 {
		c.JitterPct = d.JitterPct
	}
	if c.Channels == 0 {
		c.Channels = 1
	}
	return c
}

// Transfer is one DMA work request. Timing fields let callers decompose
// latency exactly as the paper's Table 3 does: queue wait (StartedAt -
// SubmittedAt) versus copy time (CompletedAt - StartedAt).
type Transfer struct {
	ReqID     uint64
	Seg       int
	TotalSegs int
	Bytes     int64
	Data      *wire.Bufferlist
	Src, Dst  *MemRegion
	// Ops is the number of logical operations coalesced into this transfer
	// (batch frames); zero means one. Accounting only.
	Ops int
	// Tag carries caller context to the completion poller.
	Tag interface{}
	// TraceCtx is the submitting operation's trace span context (raw
	// trace.SpanID). Instrumentation only; never serialized.
	TraceCtx uint64

	SubmittedAt sim.Time
	StartedAt   sim.Time
	CompletedAt sim.Time
	Err         error
	forceFail   bool

	// Done fires on completion (success or failure); the submitter waits
	// on it while the host side consumes the completion queue.
	Done *sim.Event
}

// Wait returns the queueing delay the transfer experienced.
func (t *Transfer) Wait() sim.Duration { return t.StartedAt.Sub(t.SubmittedAt) }

// CopyTime returns the pure engine execution time.
func (t *Transfer) CopyTime() sim.Duration { return t.CompletedAt.Sub(t.StartedAt) }

// EngineStats counts engine activity.
type EngineStats struct {
	Transfers int64
	// OpsMoved counts logical operations carried: equal to Transfers
	// without batching, larger with it (OpsMoved/Transfers is the achieved
	// coalescing factor at the engine).
	OpsMoved  int64
	Bytes     int64
	Errors    int64
	TotalWait sim.Duration
	TotalCopy sim.Duration
}

// Engine is one DMA engine: a serial executor with per-request affinity —
// pending segments of the request the engine just served are executed first
// (hardware WQE batching per queue pair), which is what lets the
// ReuseSetupTime amortization take effect under concurrency — plus a
// completion queue consumed by the host's polling thread.
type Engine struct {
	env *sim.Env
	cfg EngineConfig

	channels    []*dmaChannel
	completions *sim.Queue[*Transfer]

	// failNext makes the next n submitted transfers fail (error-injection
	// hook).
	failNext int
	// FailEvery injects a failure every n-th submission when > 0.
	FailEvery int64
	// failProb fails each submission with this probability (seeded via the
	// environment RNG; fault-plan hook).
	failProb  float64
	submitted int64

	stats EngineStats
}

type dmaChannel struct {
	pending []*Transfer
	cond    *sim.Cond
}

// NewEngine creates an engine and spawns its execution process.
func NewEngine(env *sim.Env, name string, cfg EngineConfig) *Engine {
	e := &Engine{
		env:         env,
		cfg:         cfg.withDefaults(),
		completions: sim.NewQueue[*Transfer](env),
	}
	for i := 0; i < e.cfg.Channels; i++ {
		ch := &dmaChannel{cond: sim.NewCond(env)}
		e.channels = append(e.channels, ch)
		env.SpawnDaemon(fmt.Sprintf("dma-engine:%s/ch%d", name, i),
			func(p *sim.Proc) { e.run(p, ch) })
	}
	return e
}

// Config returns the engine configuration (post-defaulting).
func (e *Engine) Config() EngineConfig { return e.cfg }

// Stats returns a copy of the engine counters.
func (e *Engine) Stats() EngineStats { return e.stats }

// FailNext makes the next n submitted transfers fail (test/fallback hook).
func (e *Engine) FailNext(n int) { e.failNext += n }

// SetFailProb makes each submitted transfer fail with probability prob;
// zero clears the fault.
func (e *Engine) SetFailProb(prob float64) { e.failProb = prob }

// Submit validates and enqueues t, charging the submit cost to p's thread
// on cpu. It returns immediately; wait on t.Done or consume Completions.
func (e *Engine) Submit(p *sim.Proc, cpu *sim.CPU, t *Transfer) error {
	if t.Bytes > e.cfg.MaxTransferBytes {
		return fmt.Errorf("%w: %d > %d", ErrTooLarge, t.Bytes, e.cfg.MaxTransferBytes)
	}
	if t.Src == nil || t.Dst == nil || !t.Src.Exported() || !t.Dst.Exported() {
		return ErrNotExported
	}
	cpu.ExecSelf(p, e.cfg.SubmitCycles)
	t.SubmittedAt = p.Now()
	t.Done = sim.NewEvent(e.env)
	e.submitted++
	if e.failNext > 0 {
		e.failNext--
		t.forceFail = true
	} else if e.FailEvery > 0 && e.submitted%e.FailEvery == 0 {
		t.forceFail = true
	} else if e.failProb > 0 && e.env.Rand().Float64() < e.failProb {
		t.forceFail = true
	}
	ch := e.channels[int(t.ReqID)%len(e.channels)]
	ch.pending = append(ch.pending, t)
	ch.cond.Broadcast()
	return nil
}

// next pops the channel's next transfer, preferring a pending segment of
// the request the channel last executed (queue-pair affinity).
func (ch *dmaChannel) next(p *sim.Proc, lastReq uint64, haveLast bool) *Transfer {
	for len(ch.pending) == 0 {
		ch.cond.Wait(p)
	}
	idx := 0
	if haveLast {
		for i, t := range ch.pending {
			if t.ReqID == lastReq {
				idx = i
				break
			}
		}
	}
	t := ch.pending[idx]
	ch.pending = append(ch.pending[:idx], ch.pending[idx+1:]...)
	return t
}

// Completions is the queue the host-side polling thread consumes.
func (e *Engine) Completions() *sim.Queue[*Transfer] { return e.completions }

func (e *Engine) run(p *sim.Proc, ch *dmaChannel) {
	var lastReq uint64
	var haveLast bool
	for {
		t := ch.next(p, lastReq, haveLast)
		t.StartedAt = p.Now()
		fail := t.forceFail
		setup := e.cfg.SetupTime
		if haveLast && t.ReqID == lastReq && t.Seg > 0 {
			setup = e.cfg.ReuseSetupTime
		}
		lastReq, haveLast = t.ReqID, true
		copyTime := setup +
			sim.Duration(float64(t.Bytes)/e.cfg.BytesPerSec*float64(sim.Second))
		if e.cfg.JitterPct > 0 {
			f := 1 + e.cfg.JitterPct/100*(2*e.env.Rand().Float64()-1)
			copyTime = sim.Duration(float64(copyTime) * f)
		}
		if fail {
			// A failed transfer burns part of its slot before the engine
			// reports the error.
			p.Wait(copyTime / 2)
			t.Err = ErrTransferFailed
			e.stats.Errors++
		} else {
			p.Wait(copyTime)
			e.stats.Transfers++
			e.stats.Bytes += t.Bytes
			if t.Ops > 1 {
				e.stats.OpsMoved += int64(t.Ops)
			} else {
				e.stats.OpsMoved++
			}
		}
		t.CompletedAt = p.Now()
		e.stats.TotalWait += t.Wait()
		e.stats.TotalCopy += t.CopyTime()
		e.completions.Push(t)
		t.Done.Fire()
	}
}

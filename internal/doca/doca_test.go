package doca

import (
	"errors"
	"testing"

	"doceph/internal/sim"
	"doceph/internal/wire"
)

type dmaRig struct {
	env     *sim.Env
	dpuCPU  *sim.CPU
	hostCPU *sim.CPU
	hostTh  *sim.Thread
	cc      *CommChannel
	eng     *Engine
	src     *MemRegion
	dst     *MemRegion
}

func newDMARig(cfg EngineConfig) *dmaRig {
	env := sim.NewEnv(1)
	r := &dmaRig{
		env:     env,
		dpuCPU:  sim.NewCPU(env, "arm", 8, 2.0, 2000),
		hostCPU: sim.NewCPU(env, "host", 8, 3.7, 2000),
	}
	r.hostTh = sim.NewThread("host-rpc", "rpc-server")
	r.cc = NewCommChannel(env, r.dpuCPU, r.hostCPU, r.hostTh, CommChannelConfig{})
	r.eng = NewEngine(env, "dma0", cfg)
	r.src = NewMemRegion("dpu-buf", 2<<20)
	r.dst = NewMemRegion("host-buf", 2<<20)
	return r
}

func (r *dmaRig) run(t *testing.T, body func(p *sim.Proc)) {
	t.Helper()
	done := false
	r.env.Spawn("body", func(p *sim.Proc) {
		p.SetThread(sim.NewThread("dpu-proxy", "proxy"))
		body(p)
		done = true
	})
	if err := r.env.RunUntil(sim.Time(60 * sim.Second)); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("body did not finish")
	}
	r.env.Shutdown()
}

func TestNegotiationExportsRegion(t *testing.T) {
	r := newDMARig(EngineConfig{})
	r.run(t, func(p *sim.Proc) {
		if r.src.Exported() {
			t.Fatal("region exported before negotiation")
		}
		before := p.Now()
		r.cc.Negotiate(p, r.src)
		if !r.src.Exported() {
			t.Fatal("region not exported")
		}
		if p.Now().Sub(before) < DefaultCommChannelConfig().RTT {
			t.Fatal("negotiation was free")
		}
		if r.cc.Negotiations() != 1 {
			t.Fatalf("negotiations=%d", r.cc.Negotiations())
		}
	})
}

func TestDMARequiresExportedRegions(t *testing.T) {
	r := newDMARig(EngineConfig{})
	r.run(t, func(p *sim.Proc) {
		tr := &Transfer{Bytes: 1024, Src: r.src, Dst: r.dst,
			Data: wire.FromBytes(make([]byte, 1024))}
		if err := r.eng.Submit(p, r.dpuCPU, tr); !errors.Is(err, ErrNotExported) {
			t.Fatalf("err=%v", err)
		}
		r.cc.Negotiate(p, r.src)
		r.cc.Negotiate(p, r.dst)
		if err := r.eng.Submit(p, r.dpuCPU, tr); err != nil {
			t.Fatal(err)
		}
		tr.Done.Wait(p)
		if tr.Err != nil {
			t.Fatal(tr.Err)
		}
	})
}

func TestDMASizeLimitEnforced(t *testing.T) {
	r := newDMARig(EngineConfig{})
	r.run(t, func(p *sim.Proc) {
		r.cc.Negotiate(p, r.src)
		r.cc.Negotiate(p, r.dst)
		tr := &Transfer{Bytes: 3 << 20, Src: r.src, Dst: r.dst}
		if err := r.eng.Submit(p, r.dpuCPU, tr); !errors.Is(err, ErrTooLarge) {
			t.Fatalf("err=%v", err)
		}
		ok := &Transfer{Bytes: 2 << 20, Src: r.src, Dst: r.dst}
		if err := r.eng.Submit(p, r.dpuCPU, ok); err != nil {
			t.Fatal(err)
		}
		ok.Done.Wait(p)
	})
}

func TestDMATransferTimingAndStats(t *testing.T) {
	r := newDMARig(EngineConfig{BytesPerSec: 4e9, SetupTime: 25 * sim.Microsecond,
		JitterPct: -1})
	r.run(t, func(p *sim.Proc) {
		r.cc.Negotiate(p, r.src)
		r.cc.Negotiate(p, r.dst)
		tr := &Transfer{Bytes: 2 << 20, Src: r.src, Dst: r.dst}
		if err := r.eng.Submit(p, r.dpuCPU, tr); err != nil {
			t.Fatal(err)
		}
		tr.Done.Wait(p)
		// 2 MiB at 4 GB/s = 524 us + 25 us setup.
		want := 25*sim.Microsecond + sim.Duration(float64(2<<20)/4e9*float64(sim.Second))
		if d := tr.CopyTime() - want; d < -sim.Microsecond || d > sim.Microsecond {
			t.Fatalf("copy=%v want %v", tr.CopyTime(), want)
		}
		st := r.eng.Stats()
		if st.Transfers != 1 || st.Bytes != 2<<20 {
			t.Fatalf("stats=%+v", st)
		}
	})
}

func TestDMASerializationQueueWait(t *testing.T) {
	r := newDMARig(EngineConfig{BytesPerSec: 4e9, JitterPct: -1})
	r.run(t, func(p *sim.Proc) {
		r.cc.Negotiate(p, r.src)
		r.cc.Negotiate(p, r.dst)
		var trs []*Transfer
		for i := 0; i < 3; i++ {
			tr := &Transfer{Bytes: 2 << 20, Src: r.src, Dst: r.dst, Seg: i}
			if err := r.eng.Submit(p, r.dpuCPU, tr); err != nil {
				t.Fatal(err)
			}
			trs = append(trs, tr)
		}
		for _, tr := range trs {
			tr.Done.Wait(p)
		}
		// The third transfer waited for the first two.
		if trs[2].Wait() <= trs[0].Wait() {
			t.Fatalf("waits: %v %v %v", trs[0].Wait(), trs[1].Wait(), trs[2].Wait())
		}
	})
}

func TestDMAPayloadDelivered(t *testing.T) {
	r := newDMARig(EngineConfig{})
	r.run(t, func(p *sim.Proc) {
		r.cc.Negotiate(p, r.src)
		r.cc.Negotiate(p, r.dst)
		data := wire.FromBytes([]byte("dma payload"))
		tr := &Transfer{Bytes: int64(data.Length()), Src: r.src, Dst: r.dst,
			Data: data, Tag: "req-7"}
		if err := r.eng.Submit(p, r.dpuCPU, tr); err != nil {
			t.Fatal(err)
		}
		got := r.eng.Completions().Pop(p)
		if got != tr || got.Tag != "req-7" || !got.Data.Equal(data) {
			t.Fatal("completion mismatch")
		}
	})
}

func TestFailNextInjectsErrors(t *testing.T) {
	r := newDMARig(EngineConfig{})
	r.run(t, func(p *sim.Proc) {
		r.cc.Negotiate(p, r.src)
		r.cc.Negotiate(p, r.dst)
		r.eng.FailNext(1)
		bad := &Transfer{Bytes: 1024, Src: r.src, Dst: r.dst}
		if err := r.eng.Submit(p, r.dpuCPU, bad); err != nil {
			t.Fatal(err)
		}
		bad.Done.Wait(p)
		if !errors.Is(bad.Err, ErrTransferFailed) {
			t.Fatalf("err=%v", bad.Err)
		}
		good := &Transfer{Bytes: 1024, Src: r.src, Dst: r.dst}
		if err := r.eng.Submit(p, r.dpuCPU, good); err != nil {
			t.Fatal(err)
		}
		good.Done.Wait(p)
		if good.Err != nil {
			t.Fatal(good.Err)
		}
		if r.eng.Stats().Errors != 1 {
			t.Fatalf("errors=%d", r.eng.Stats().Errors)
		}
	})
}

func TestFailEvery(t *testing.T) {
	r := newDMARig(EngineConfig{})
	r.eng.FailEvery = 3
	r.run(t, func(p *sim.Proc) {
		r.cc.Negotiate(p, r.src)
		r.cc.Negotiate(p, r.dst)
		fails := 0
		for i := 0; i < 9; i++ {
			tr := &Transfer{Bytes: 1024, Src: r.src, Dst: r.dst}
			if err := r.eng.Submit(p, r.dpuCPU, tr); err != nil {
				t.Fatal(err)
			}
			tr.Done.Wait(p)
			if tr.Err != nil {
				fails++
			}
		}
		if fails != 3 {
			t.Fatalf("fails=%d want 3", fails)
		}
	})
}

func TestMultiChannelParallelism(t *testing.T) {
	// Two requests of equal size: on one channel they serialize, on two
	// channels they overlap.
	elapsed := func(channels int) sim.Duration {
		r := newDMARig(EngineConfig{Channels: channels, JitterPct: -1})
		var last sim.Time
		r.run(t, func(p *sim.Proc) {
			r.cc.Negotiate(p, r.src)
			r.cc.Negotiate(p, r.dst)
			var trs []*Transfer
			for req := uint64(1); req <= 2; req++ {
				tr := &Transfer{ReqID: req, Bytes: 2 << 20, Src: r.src, Dst: r.dst}
				if err := r.eng.Submit(p, r.dpuCPU, tr); err != nil {
					t.Fatal(err)
				}
				trs = append(trs, tr)
			}
			for _, tr := range trs {
				tr.Done.Wait(p)
				if tr.CompletedAt > last {
					last = tr.CompletedAt
				}
			}
		})
		return last.Sub(0)
	}
	one, two := elapsed(1), elapsed(2)
	if two >= one {
		t.Fatalf("2 channels (%v) not faster than 1 (%v)", two, one)
	}
}

func TestChannelsPreservePerRequestOrder(t *testing.T) {
	r := newDMARig(EngineConfig{Channels: 4})
	r.run(t, func(p *sim.Proc) {
		r.cc.Negotiate(p, r.src)
		r.cc.Negotiate(p, r.dst)
		var trs []*Transfer
		for req := uint64(1); req <= 8; req++ {
			for seg := 0; seg < 3; seg++ {
				tr := &Transfer{ReqID: req, Seg: seg, TotalSegs: 3,
					Bytes: 256 << 10, Src: r.src, Dst: r.dst}
				if err := r.eng.Submit(p, r.dpuCPU, tr); err != nil {
					t.Fatal(err)
				}
				trs = append(trs, tr)
			}
		}
		started := map[uint64]sim.Time{}
		for _, tr := range trs {
			tr.Done.Wait(p)
		}
		// Within a request, segments must start in submission order
		// (channel pinning by request id guarantees this).
		for _, tr := range trs {
			if tr.Seg == 0 {
				started[tr.ReqID] = tr.StartedAt
				continue
			}
			if tr.StartedAt < started[tr.ReqID] {
				t.Fatalf("req %d seg %d started before seg 0", tr.ReqID, tr.Seg)
			}
		}
	})
}

func TestReserveQueueJSQAndUnreserve(t *testing.T) {
	r := newDMARig(EngineConfig{Queues: 4})
	// Empty queues: JSQ fills 0,1,2,3 (ties break to the lowest index),
	// then wraps back to 0 once every queue holds one reservation.
	for i, want := range []int{0, 1, 2, 3, 0} {
		if got := r.eng.ReserveQueue(); got != want {
			t.Fatalf("reservation %d: queue %d, want %d", i, got, want)
		}
	}
	// A pinned submit that fails validation must release its depth slot:
	// queue 1 now holds one reservation fewer than its siblings, so JSQ
	// must pick it next.
	r.run(t, func(p *sim.Proc) {
		bad := &Transfer{Bytes: 3 << 20, Src: r.src, Dst: r.dst, Queue: 2}
		if err := r.eng.Submit(p, r.dpuCPU, bad); !errors.Is(err, ErrTooLarge) {
			t.Fatalf("err=%v", err)
		}
		if got := r.eng.ReserveQueue(); got != 1 {
			t.Fatalf("after unreserve: queue %d, want 1", got)
		}
	})
}

func TestPinnedTransferRidesReservedQueue(t *testing.T) {
	r := newDMARig(EngineConfig{Queues: 4, JitterPct: -1})
	r.run(t, func(p *sim.Proc) {
		r.cc.Negotiate(p, r.src)
		r.cc.Negotiate(p, r.dst)
		idx := r.eng.ReserveQueue()
		if idx != 0 {
			t.Fatalf("first reservation on queue %d", idx)
		}
		// ReqID 1 would hash-steer to queue 1; the pin must win.
		tr := &Transfer{ReqID: 1, Bytes: 64 << 10, Src: r.src, Dst: r.dst,
			Queue: idx + 1}
		if err := r.eng.Submit(p, r.dpuCPU, tr); err != nil {
			t.Fatal(err)
		}
		tr.Done.Wait(p)
		qs := r.eng.QueueStats()
		if qs[0].Transfers != 1 || qs[1].Transfers != 0 {
			t.Fatalf("queue stats %+v: pinned transfer did not ride queue 0", qs)
		}
		if qs[0].MaxDepth != 1 {
			t.Fatalf("MaxDepth=%d, want 1", qs[0].MaxDepth)
		}
	})
}

func TestReuseSetupAmortizedAcrossFrames(t *testing.T) {
	r := newDMARig(EngineConfig{Queues: 1, BytesPerSec: 4e9, JitterPct: -1})
	cfg := r.eng.Config()
	submit := func(p *sim.Proc, req uint64, reuse bool) *Transfer {
		tr := &Transfer{ReqID: req, Bytes: 64 << 10, Src: r.src, Dst: r.dst,
			ReuseSetup: reuse}
		if err := r.eng.Submit(p, r.dpuCPU, tr); err != nil {
			t.Fatal(err)
		}
		tr.Done.Wait(p)
		return tr
	}
	r.run(t, func(p *sim.Proc) {
		r.cc.Negotiate(p, r.src)
		r.cc.Negotiate(p, r.dst)
		first := submit(p, 1, true)  // cold queue: full setup
		second := submit(p, 2, true) // previous frame was ReuseSetup: amortized
		third := submit(p, 3, false) // plain transfer breaks the chain
		fourth := submit(p, 4, true) // chain broken: full setup again
		saved := cfg.SetupTime - cfg.ReuseSetupTime
		if d := first.CopyTime() - second.CopyTime(); d != saved {
			t.Fatalf("amortization saved %v, want %v", d, saved)
		}
		if fourth.CopyTime() != first.CopyTime() {
			t.Fatalf("chain not reset by plain transfer: %v vs %v",
				fourth.CopyTime(), first.CopyTime())
		}
		_ = third
	})
}

func TestQueueStatsSumToEngineStats(t *testing.T) {
	r := newDMARig(EngineConfig{Queues: 4})
	r.run(t, func(p *sim.Proc) {
		r.cc.Negotiate(p, r.src)
		r.cc.Negotiate(p, r.dst)
		var trs []*Transfer
		for req := uint64(1); req <= 12; req++ {
			tr := &Transfer{ReqID: req, Bytes: 32 << 10, Src: r.src, Dst: r.dst,
				Ops: 2}
			if err := r.eng.Submit(p, r.dpuCPU, tr); err != nil {
				t.Fatal(err)
			}
			trs = append(trs, tr)
		}
		for _, tr := range trs {
			tr.Done.Wait(p)
		}
		var transfers, ops, bytes int64
		var busy sim.Duration
		used := 0
		for _, qs := range r.eng.QueueStats() {
			transfers += qs.Transfers
			ops += qs.OpsMoved
			bytes += qs.Bytes
			busy += qs.Busy
			if qs.Transfers > 0 {
				used++
			}
		}
		st := r.eng.Stats()
		if transfers != st.Transfers || ops != st.OpsMoved ||
			bytes != st.Bytes || busy != st.Busy {
			t.Fatalf("per-queue sums (%d/%d/%d/%v) != engine stats (%d/%d/%d/%v)",
				transfers, ops, bytes, busy, st.Transfers, st.OpsMoved, st.Bytes, st.Busy)
		}
		if st.Transfers != 12 || st.OpsMoved != 24 {
			t.Fatalf("stats=%+v", st)
		}
		if used < 2 {
			t.Fatalf("only %d queues carried transfers", used)
		}
	})
}

package doca

import (
	"errors"
	"testing"

	"doceph/internal/sim"
	"doceph/internal/wire"
)

type dmaRig struct {
	env     *sim.Env
	dpuCPU  *sim.CPU
	hostCPU *sim.CPU
	hostTh  *sim.Thread
	cc      *CommChannel
	eng     *Engine
	src     *MemRegion
	dst     *MemRegion
}

func newDMARig(cfg EngineConfig) *dmaRig {
	env := sim.NewEnv(1)
	r := &dmaRig{
		env:     env,
		dpuCPU:  sim.NewCPU(env, "arm", 8, 2.0, 2000),
		hostCPU: sim.NewCPU(env, "host", 8, 3.7, 2000),
	}
	r.hostTh = sim.NewThread("host-rpc", "rpc-server")
	r.cc = NewCommChannel(env, r.dpuCPU, r.hostCPU, r.hostTh, CommChannelConfig{})
	r.eng = NewEngine(env, "dma0", cfg)
	r.src = NewMemRegion("dpu-buf", 2<<20)
	r.dst = NewMemRegion("host-buf", 2<<20)
	return r
}

func (r *dmaRig) run(t *testing.T, body func(p *sim.Proc)) {
	t.Helper()
	done := false
	r.env.Spawn("body", func(p *sim.Proc) {
		p.SetThread(sim.NewThread("dpu-proxy", "proxy"))
		body(p)
		done = true
	})
	if err := r.env.RunUntil(sim.Time(60 * sim.Second)); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("body did not finish")
	}
	r.env.Shutdown()
}

func TestNegotiationExportsRegion(t *testing.T) {
	r := newDMARig(EngineConfig{})
	r.run(t, func(p *sim.Proc) {
		if r.src.Exported() {
			t.Fatal("region exported before negotiation")
		}
		before := p.Now()
		r.cc.Negotiate(p, r.src)
		if !r.src.Exported() {
			t.Fatal("region not exported")
		}
		if p.Now().Sub(before) < DefaultCommChannelConfig().RTT {
			t.Fatal("negotiation was free")
		}
		if r.cc.Negotiations() != 1 {
			t.Fatalf("negotiations=%d", r.cc.Negotiations())
		}
	})
}

func TestDMARequiresExportedRegions(t *testing.T) {
	r := newDMARig(EngineConfig{})
	r.run(t, func(p *sim.Proc) {
		tr := &Transfer{Bytes: 1024, Src: r.src, Dst: r.dst,
			Data: wire.FromBytes(make([]byte, 1024))}
		if err := r.eng.Submit(p, r.dpuCPU, tr); !errors.Is(err, ErrNotExported) {
			t.Fatalf("err=%v", err)
		}
		r.cc.Negotiate(p, r.src)
		r.cc.Negotiate(p, r.dst)
		if err := r.eng.Submit(p, r.dpuCPU, tr); err != nil {
			t.Fatal(err)
		}
		tr.Done.Wait(p)
		if tr.Err != nil {
			t.Fatal(tr.Err)
		}
	})
}

func TestDMASizeLimitEnforced(t *testing.T) {
	r := newDMARig(EngineConfig{})
	r.run(t, func(p *sim.Proc) {
		r.cc.Negotiate(p, r.src)
		r.cc.Negotiate(p, r.dst)
		tr := &Transfer{Bytes: 3 << 20, Src: r.src, Dst: r.dst}
		if err := r.eng.Submit(p, r.dpuCPU, tr); !errors.Is(err, ErrTooLarge) {
			t.Fatalf("err=%v", err)
		}
		ok := &Transfer{Bytes: 2 << 20, Src: r.src, Dst: r.dst}
		if err := r.eng.Submit(p, r.dpuCPU, ok); err != nil {
			t.Fatal(err)
		}
		ok.Done.Wait(p)
	})
}

func TestDMATransferTimingAndStats(t *testing.T) {
	r := newDMARig(EngineConfig{BytesPerSec: 4e9, SetupTime: 25 * sim.Microsecond,
		JitterPct: -1})
	r.run(t, func(p *sim.Proc) {
		r.cc.Negotiate(p, r.src)
		r.cc.Negotiate(p, r.dst)
		tr := &Transfer{Bytes: 2 << 20, Src: r.src, Dst: r.dst}
		if err := r.eng.Submit(p, r.dpuCPU, tr); err != nil {
			t.Fatal(err)
		}
		tr.Done.Wait(p)
		// 2 MiB at 4 GB/s = 524 us + 25 us setup.
		want := 25*sim.Microsecond + sim.Duration(float64(2<<20)/4e9*float64(sim.Second))
		if d := tr.CopyTime() - want; d < -sim.Microsecond || d > sim.Microsecond {
			t.Fatalf("copy=%v want %v", tr.CopyTime(), want)
		}
		st := r.eng.Stats()
		if st.Transfers != 1 || st.Bytes != 2<<20 {
			t.Fatalf("stats=%+v", st)
		}
	})
}

func TestDMASerializationQueueWait(t *testing.T) {
	r := newDMARig(EngineConfig{BytesPerSec: 4e9, JitterPct: -1})
	r.run(t, func(p *sim.Proc) {
		r.cc.Negotiate(p, r.src)
		r.cc.Negotiate(p, r.dst)
		var trs []*Transfer
		for i := 0; i < 3; i++ {
			tr := &Transfer{Bytes: 2 << 20, Src: r.src, Dst: r.dst, Seg: i}
			if err := r.eng.Submit(p, r.dpuCPU, tr); err != nil {
				t.Fatal(err)
			}
			trs = append(trs, tr)
		}
		for _, tr := range trs {
			tr.Done.Wait(p)
		}
		// The third transfer waited for the first two.
		if trs[2].Wait() <= trs[0].Wait() {
			t.Fatalf("waits: %v %v %v", trs[0].Wait(), trs[1].Wait(), trs[2].Wait())
		}
	})
}

func TestDMAPayloadDelivered(t *testing.T) {
	r := newDMARig(EngineConfig{})
	r.run(t, func(p *sim.Proc) {
		r.cc.Negotiate(p, r.src)
		r.cc.Negotiate(p, r.dst)
		data := wire.FromBytes([]byte("dma payload"))
		tr := &Transfer{Bytes: int64(data.Length()), Src: r.src, Dst: r.dst,
			Data: data, Tag: "req-7"}
		if err := r.eng.Submit(p, r.dpuCPU, tr); err != nil {
			t.Fatal(err)
		}
		got := r.eng.Completions().Pop(p)
		if got != tr || got.Tag != "req-7" || !got.Data.Equal(data) {
			t.Fatal("completion mismatch")
		}
	})
}

func TestFailNextInjectsErrors(t *testing.T) {
	r := newDMARig(EngineConfig{})
	r.run(t, func(p *sim.Proc) {
		r.cc.Negotiate(p, r.src)
		r.cc.Negotiate(p, r.dst)
		r.eng.FailNext(1)
		bad := &Transfer{Bytes: 1024, Src: r.src, Dst: r.dst}
		if err := r.eng.Submit(p, r.dpuCPU, bad); err != nil {
			t.Fatal(err)
		}
		bad.Done.Wait(p)
		if !errors.Is(bad.Err, ErrTransferFailed) {
			t.Fatalf("err=%v", bad.Err)
		}
		good := &Transfer{Bytes: 1024, Src: r.src, Dst: r.dst}
		if err := r.eng.Submit(p, r.dpuCPU, good); err != nil {
			t.Fatal(err)
		}
		good.Done.Wait(p)
		if good.Err != nil {
			t.Fatal(good.Err)
		}
		if r.eng.Stats().Errors != 1 {
			t.Fatalf("errors=%d", r.eng.Stats().Errors)
		}
	})
}

func TestFailEvery(t *testing.T) {
	r := newDMARig(EngineConfig{})
	r.eng.FailEvery = 3
	r.run(t, func(p *sim.Proc) {
		r.cc.Negotiate(p, r.src)
		r.cc.Negotiate(p, r.dst)
		fails := 0
		for i := 0; i < 9; i++ {
			tr := &Transfer{Bytes: 1024, Src: r.src, Dst: r.dst}
			if err := r.eng.Submit(p, r.dpuCPU, tr); err != nil {
				t.Fatal(err)
			}
			tr.Done.Wait(p)
			if tr.Err != nil {
				fails++
			}
		}
		if fails != 3 {
			t.Fatalf("fails=%d want 3", fails)
		}
	})
}

func TestMultiChannelParallelism(t *testing.T) {
	// Two requests of equal size: on one channel they serialize, on two
	// channels they overlap.
	elapsed := func(channels int) sim.Duration {
		r := newDMARig(EngineConfig{Channels: channels, JitterPct: -1})
		var last sim.Time
		r.run(t, func(p *sim.Proc) {
			r.cc.Negotiate(p, r.src)
			r.cc.Negotiate(p, r.dst)
			var trs []*Transfer
			for req := uint64(1); req <= 2; req++ {
				tr := &Transfer{ReqID: req, Bytes: 2 << 20, Src: r.src, Dst: r.dst}
				if err := r.eng.Submit(p, r.dpuCPU, tr); err != nil {
					t.Fatal(err)
				}
				trs = append(trs, tr)
			}
			for _, tr := range trs {
				tr.Done.Wait(p)
				if tr.CompletedAt > last {
					last = tr.CompletedAt
				}
			}
		})
		return last.Sub(0)
	}
	one, two := elapsed(1), elapsed(2)
	if two >= one {
		t.Fatalf("2 channels (%v) not faster than 1 (%v)", two, one)
	}
}

func TestChannelsPreservePerRequestOrder(t *testing.T) {
	r := newDMARig(EngineConfig{Channels: 4})
	r.run(t, func(p *sim.Proc) {
		r.cc.Negotiate(p, r.src)
		r.cc.Negotiate(p, r.dst)
		var trs []*Transfer
		for req := uint64(1); req <= 8; req++ {
			for seg := 0; seg < 3; seg++ {
				tr := &Transfer{ReqID: req, Seg: seg, TotalSegs: 3,
					Bytes: 256 << 10, Src: r.src, Dst: r.dst}
				if err := r.eng.Submit(p, r.dpuCPU, tr); err != nil {
					t.Fatal(err)
				}
				trs = append(trs, tr)
			}
		}
		started := map[uint64]sim.Time{}
		for _, tr := range trs {
			tr.Done.Wait(p)
		}
		// Within a request, segments must start in submission order
		// (channel pinning by request id guarantees this).
		for _, tr := range trs {
			if tr.Seg == 0 {
				started[tr.ReqID] = tr.StartedAt
				continue
			}
			if tr.StartedAt < started[tr.ReqID] {
				t.Fatalf("req %d seg %d started before seg 0", tr.ReqID, tr.Seg)
			}
		}
	})
}

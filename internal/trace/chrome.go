package trace

import (
	"bytes"
	"fmt"
	"strconv"
)

// ChromeTrace renders finished spans as Chrome trace_event JSON ("X"
// complete events, chrome://tracing / Perfetto compatible). Each CPU
// resource becomes a process row (spans without a resource land on the
// "virtual" row) and each operation becomes a thread row, so one op's
// stages stack under its tid. The output is built with deterministic
// formatting: identical span slices yield identical bytes, which the
// golden trace test relies on.
func ChromeTrace(spans []Span) []byte {
	var buf bytes.Buffer
	buf.WriteString("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[")

	// Assign pids per resource in first-seen order (deterministic: spans
	// arrive in ID order).
	pids := make(map[string]int)
	var resources []string
	pidOf := func(res string) int {
		if res == "" {
			res = "virtual"
		}
		pid, ok := pids[res]
		if !ok {
			pid = len(resources) + 1
			pids[res] = pid
			resources = append(resources, res)
		}
		return pid
	}

	first := true
	sep := func() {
		if !first {
			buf.WriteByte(',')
		}
		first = false
	}
	us := func(ns int64) string {
		return strconv.FormatFloat(float64(ns)/1e3, 'f', 3, 64)
	}

	for i := range spans {
		s := &spans[i]
		sep()
		buf.WriteString("{\"name\":")
		writeJSONString(&buf, s.Stage+" "+s.Name)
		buf.WriteString(",\"cat\":")
		writeJSONString(&buf, s.Stage)
		buf.WriteString(",\"ph\":\"X\",\"ts\":")
		buf.WriteString(us(int64(s.Start)))
		buf.WriteString(",\"dur\":")
		buf.WriteString(us(int64(s.Latency())))
		fmt.Fprintf(&buf, ",\"pid\":%d,\"tid\":%d", pidOf(s.Resource), s.OpID)
		fmt.Fprintf(&buf, ",\"args\":{\"span\":%d,\"parent\":%d,\"cpu_us\":%s,\"queue_wait_us\":%s,\"bytes\":%d}}",
			s.ID, s.Parent, us(int64(s.CPU)), us(int64(s.QueueWait)), s.Bytes)
	}

	// Name the process rows after their resources.
	for i, res := range resources {
		sep()
		fmt.Fprintf(&buf, "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"args\":{\"name\":", i+1)
		writeJSONString(&buf, res)
		buf.WriteString("}}")
	}

	buf.WriteString("]}\n")
	return buf.Bytes()
}

// writeJSONString writes s as a JSON string literal. Span names are plain
// ASCII identifiers in practice; anything else is \u-escaped.
func writeJSONString(buf *bytes.Buffer, s string) {
	buf.WriteByte('"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			buf.WriteByte('\\')
			buf.WriteByte(c)
		case c < 0x20 || c >= 0x7f:
			fmt.Fprintf(buf, "\\u%04x", c)
		default:
			buf.WriteByte(c)
		}
	}
	buf.WriteByte('"')
}

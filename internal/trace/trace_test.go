package trace

import (
	"bytes"
	"strings"
	"testing"

	"doceph/internal/sim"
)

// runScript drives fn on a fresh env's clock and returns the tracer.
func runScript(t *testing.T, fn func(p *sim.Proc, tr *Tracer)) *Tracer {
	t.Helper()
	env := sim.NewEnv(1)
	defer env.Shutdown()
	tr := New(env)
	env.Spawn("script", func(p *sim.Proc) { fn(p, tr) })
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestSpanLifecycle(t *testing.T) {
	tr := runScript(t, func(p *sim.Proc, tr *Tracer) {
		root := tr.Start(0, 7, StageOp, "obj")
		p.Wait(10 * sim.Microsecond)
		child := tr.Start(root, 999, StageCommit, "node0")
		tr.AddCPU(child, "host-node0", 3*sim.Microsecond)
		tr.AddCPU(child, "ignored-second-resource", 2*sim.Microsecond)
		tr.AddQueueWait(child, sim.Microsecond)
		tr.AddBytes(child, 4096)
		p.Wait(20 * sim.Microsecond)
		tr.Finish(child)
		tr.Finish(root)
	})
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	root, child := spans[0], spans[1]
	if root.OpID != 7 || root.Parent != 0 || root.Stage != StageOp {
		t.Errorf("bad root: %+v", root)
	}
	if child.Parent != root.ID {
		t.Errorf("child parent = %d, want %d", child.Parent, root.ID)
	}
	if child.OpID != 7 {
		t.Errorf("child must inherit OpID, got %d", child.OpID)
	}
	if child.Resource != "host-node0" {
		t.Errorf("resource must be fixed by first charge, got %q", child.Resource)
	}
	if child.CPU != 5*sim.Microsecond {
		t.Errorf("cpu = %v, want 5us", child.CPU)
	}
	if child.QueueWait != sim.Microsecond || child.Bytes != 4096 {
		t.Errorf("wait/bytes = %v/%d", child.QueueWait, child.Bytes)
	}
	if child.Latency() != 20*sim.Microsecond {
		t.Errorf("latency = %v, want 20us", child.Latency())
	}
	if err := CheckInvariants(spans); err != nil {
		t.Errorf("invariants: %v", err)
	}
}

func TestUnfinishedSpansNotExported(t *testing.T) {
	tr := runScript(t, func(p *sim.Proc, tr *Tracer) {
		tr.Start(0, 1, StageOp, "never-finished")
		sp := tr.Start(0, 2, StageOp, "finished")
		tr.Finish(sp)
	})
	spans := tr.Spans()
	if len(spans) != 1 || spans[0].OpID != 2 {
		t.Fatalf("want only the finished span, got %+v", spans)
	}
}

func TestResetInvalidatesOutstandingIDs(t *testing.T) {
	tr := runScript(t, func(p *sim.Proc, tr *Tracer) {
		stale := tr.Start(0, 1, StageOp, "pre-reset")
		tr.Reset()
		// Hooks on a stale ID must all be no-ops, and a child of a stale
		// parent becomes a root.
		tr.AddCPU(stale, "cpu", sim.Second)
		tr.Finish(stale)
		orphan := tr.Start(stale, 5, StageCommit, "post-reset")
		tr.Finish(orphan)
	})
	spans := tr.Spans()
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(spans))
	}
	if spans[0].Parent != 0 || spans[0].OpID != 5 {
		t.Errorf("orphan must be a root keeping its own opID: %+v", spans[0])
	}
}

func TestNilTracerIsSafeAndFree(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer must report disabled")
	}
	allocs := testing.AllocsPerRun(100, func() {
		sp := tr.Start(0, 1, StageOp, "x")
		tr.AddCPU(sp, "cpu", sim.Second)
		tr.AddQueueWait(sp, sim.Second)
		tr.AddBytes(sp, 1)
		tr.Finish(sp)
		tr.Reset()
		if tr.Spans() != nil {
			t.Fatal("nil tracer returned spans")
		}
	})
	if allocs != 0 {
		t.Errorf("disabled tracing allocated %.1f per op, want 0", allocs)
	}
}

func TestAggregateOrderAndSums(t *testing.T) {
	tr := runScript(t, func(p *sim.Proc, tr *Tracer) {
		// Recorded out of path order on purpose: kv, then two ops, then an
		// unknown stage.
		kv := tr.Start(0, 1, StageKV, "node0")
		tr.AddCPU(kv, "host-node0", 2*sim.Microsecond)
		tr.Finish(kv)
		for i := 0; i < 2; i++ {
			op := tr.Start(0, uint64(i), StageOp, "obj")
			tr.AddCPU(op, "client-cpu", sim.Microsecond)
			tr.AddBytes(op, 100)
			p.Wait(sim.Microsecond)
			tr.Finish(op)
		}
		x := tr.Start(0, 9, "zz-custom", "elsewhere")
		tr.Finish(x)
	})
	stats := Aggregate(tr.Spans())
	if len(stats) != 3 {
		t.Fatalf("got %d rows, want 3: %+v", len(stats), stats)
	}
	// Path order: op before kv; unknown stages sort last.
	if stats[0].Stage != StageOp || stats[1].Stage != StageKV || stats[2].Stage != "zz-custom" {
		t.Fatalf("bad order: %s, %s, %s", stats[0].Stage, stats[1].Stage, stats[2].Stage)
	}
	op := stats[0]
	if op.Count != 2 || op.CPU != 2*sim.Microsecond || op.Bytes != 200 {
		t.Errorf("bad op row: %+v", op)
	}
	if op.Latency != 2*sim.Microsecond {
		t.Errorf("summed latency = %v, want 2us", op.Latency)
	}
	byRes := CPUByResource(tr.Spans())
	if byRes["client-cpu"] != 2*sim.Microsecond || byRes["host-node0"] != 2*sim.Microsecond {
		t.Errorf("bad CPUByResource: %v", byRes)
	}
}

func TestCheckInvariantsCatchesViolations(t *testing.T) {
	cases := []struct {
		name  string
		spans []Span
		wants string
	}{
		{
			"end before start",
			[]Span{{ID: 1, Start: 100, End: 50, Finished: true}},
			"End precedes Start",
		},
		{
			"child escapes parent",
			[]Span{
				{ID: 1, OpID: 1, Start: 0, End: 100, Finished: true},
				{ID: 2, Parent: 1, OpID: 1, Start: 50, End: 150, Finished: true},
			},
			"escapes parent",
		},
		{
			"op id mismatch",
			[]Span{
				{ID: 1, OpID: 1, Start: 0, End: 100, Finished: true},
				{ID: 2, Parent: 1, OpID: 2, Start: 10, End: 20, Finished: true},
			},
			"OpID",
		},
	}
	for _, tc := range cases {
		err := CheckInvariants(tc.spans)
		if err == nil || !strings.Contains(err.Error(), tc.wants) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.wants)
		}
	}
	// A child whose parent is absent from the slice (reset, unfinished) is
	// skipped, not a violation.
	ok := []Span{{ID: 2, Parent: 1, OpID: 1, Start: 50, End: 150, Finished: true}}
	if err := CheckInvariants(ok); err != nil {
		t.Errorf("orphan child flagged: %v", err)
	}
}

func TestCheckCPUConservation(t *testing.T) {
	spans := []Span{
		{ID: 1, Finished: true, CPU: 5 * sim.Microsecond, Resource: "host-node0"},
		{ID: 2, Finished: true, CPU: 3 * sim.Microsecond, Resource: "host-node0"},
	}
	busy := map[string]sim.Duration{"host-node0": 8 * sim.Microsecond}
	if err := CheckCPUConservation(spans, busy); err != nil {
		t.Errorf("exact sum rejected: %v", err)
	}
	busy["host-node0"] = 7 * sim.Microsecond
	if err := CheckCPUConservation(spans, busy); err == nil {
		t.Error("traced > busy must fail")
	}
}

func TestChromeTraceShape(t *testing.T) {
	tr := runScript(t, func(p *sim.Proc, tr *Tracer) {
		op := tr.Start(0, 3, StageOp, `obj "quoted"\x`)
		tr.AddCPU(op, "client-cpu", sim.Microsecond)
		p.Wait(5 * sim.Microsecond)
		tr.Finish(op)
	})
	out := ChromeTrace(tr.Spans())
	if !bytes.HasPrefix(out, []byte(`{"displayTimeUnit":"ms","traceEvents":[`)) {
		t.Fatalf("bad prefix: %.60s", out)
	}
	if !bytes.HasSuffix(out, []byte("]}\n")) {
		t.Fatalf("bad suffix: %s", out[len(out)-10:])
	}
	for _, want := range []string{
		`"ph":"X"`, `"dur":5.000`, `"cpu_us":1.000`, `"tid":3`,
		`obj \"quoted\"\\x`, `"ph":"M"`, `"process_name"`, `client-cpu`,
	} {
		if !bytes.Contains(out, []byte(want)) {
			t.Errorf("output missing %q", want)
		}
	}
	if again := ChromeTrace(tr.Spans()); !bytes.Equal(out, again) {
		t.Error("ChromeTrace is not deterministic for identical spans")
	}
}

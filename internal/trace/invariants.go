package trace

import (
	"fmt"
	"strings"

	"doceph/internal/sim"
)

// CheckInvariants validates the structural properties every deterministic
// trace must satisfy:
//
//  1. every finished span has Start <= End;
//  2. a child's virtual lifetime lies within its parent's when the parent
//     is also in the trace (parent.Start <= child.Start and
//     child.End <= parent.End);
//  3. a child inherits its parent's OpID.
//
// It returns an error describing every violation found, or nil.
func CheckInvariants(spans []Span) error {
	byID := make(map[SpanID]*Span, len(spans))
	for i := range spans {
		byID[spans[i].ID] = &spans[i]
	}
	var bad []string
	for i := range spans {
		s := &spans[i]
		if s.End.Sub(s.Start) < 0 {
			bad = append(bad, fmt.Sprintf("span %d (%s): End precedes Start", s.ID, s.Stage))
		}
		if s.Parent == 0 {
			continue
		}
		p, ok := byID[s.Parent]
		if !ok {
			// The parent may legitimately be missing (unfinished at run
			// end, or discarded by a warmup Reset); nothing to check.
			continue
		}
		if s.Start.Sub(p.Start) < 0 || p.End.Sub(s.End) < 0 {
			bad = append(bad, fmt.Sprintf(
				"span %d (%s) [%d,%d] escapes parent %d (%s) [%d,%d]",
				s.ID, s.Stage, s.Start, s.End, p.ID, p.Stage, p.Start, p.End))
		}
		if s.OpID != p.OpID {
			bad = append(bad, fmt.Sprintf("span %d (%s): OpID %d != parent's %d",
				s.ID, s.Stage, s.OpID, p.OpID))
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("trace: %d invariant violation(s):\n%s", len(bad), strings.Join(bad, "\n"))
	}
	return nil
}

// CheckCPUConservation verifies that the CPU time attributed to spans on
// each resource never exceeds what that processor actually accumulated
// (busy, keyed by CPU name, e.g. from CPUStats.TotalBusy over the same
// window). Traced CPU is a subset of total busy time — background daemons
// (heartbeats, scrub, compaction) run untraced — so the check is <=, and
// it is exact: both sides derive from the same integer charges.
func CheckCPUConservation(spans []Span, busy map[string]sim.Duration) error {
	traced := CPUByResource(spans)
	var bad []string
	for res, d := range traced {
		if d > busy[res] {
			bad = append(bad, fmt.Sprintf("resource %q: traced CPU %v exceeds busy %v",
				res, d, busy[res]))
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("trace: CPU conservation violated:\n%s", strings.Join(bad, "\n"))
	}
	return nil
}

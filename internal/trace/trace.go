// Package trace is the simulator's op-level observability layer: a
// virtual-time, allocation-lean span tracer threaded through every RADOS
// operation, from client submit through messenger framing, DPU DMA
// staging, OSD dispatch, replication fan-out and the BlueStore commit back
// to the reply. Each span records its virtual start/end instants, the CPU
// occupancy it charged (and on which processor), queue wait and bytes
// moved — the quantities behind the paper's per-stage CPU-attribution
// breakdown.
//
// Spans derive entirely from the deterministic kernel: identical (seed,
// config) yields byte-identical trace output, which the golden trace test
// pins. A nil *Tracer is the disabled state — every method is nil-receiver
// safe and returns immediately, so the instrumented hot path stays intact
// when tracing is off.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"doceph/internal/sim"
)

// SpanID identifies a span within a Tracer. Zero means "no span"; all
// hooks treat it as a no-op, so untraced contexts propagate for free.
type SpanID uint64

// Span is one stage of one operation's lifetime.
//
// Spans carry at most one CPU resource: the instrumentation charges each
// stage's cycles on exactly one processor (client, host or DPU SoC), which
// is what lets Aggregate and the CPU-conservation invariant attribute
// occupancy per resource without per-span maps.
type Span struct {
	ID     SpanID
	Parent SpanID
	// OpID groups the spans of one logical operation (the client tid);
	// children inherit it from their parent.
	OpID  uint64
	Stage string
	// Name carries instance detail (object, peer, resource), free-form.
	Name  string
	Start sim.Time
	End   sim.Time
	// Finished marks spans whose End is valid. Only finished spans are
	// exported and aggregated.
	Finished bool
	// CPU is the busy time this stage charged on Resource (as returned by
	// CPU.Exec), including context-switch overhead.
	CPU      sim.Duration
	Resource string
	// QueueWait is time spent parked in a queue before service.
	QueueWait sim.Duration
	// Bytes is payload moved by this stage.
	Bytes int64
}

// Latency returns the span's virtual wall time.
func (s *Span) Latency() sim.Duration { return s.End.Sub(s.Start) }

// Tracer records spans against an Env's virtual clock. Span IDs are
// assigned sequentially in event order — the kernel is deterministic, so
// the ID sequence (and therefore the whole trace) is too.
type Tracer struct {
	env *sim.Env
	// base is the ID of the last span discarded by Reset; IDs at or below
	// it are stale and all hooks ignore them.
	base  uint64
	spans []Span
}

// New returns an enabled tracer on env's clock.
func New(env *sim.Env) *Tracer { return &Tracer{env: env} }

// Enabled reports whether the tracer records anything.
func (t *Tracer) Enabled() bool { return t != nil }

// span returns the live record for id, or nil for 0/stale/foreign ids.
func (t *Tracer) span(id SpanID) *Span {
	if t == nil || uint64(id) <= t.base {
		return nil
	}
	i := uint64(id) - t.base - 1
	if i >= uint64(len(t.spans)) {
		return nil
	}
	return &t.spans[i]
}

// Start opens a span under parent (0 for a root) and returns its ID. The
// opID argument seeds a root span's operation identity; children ignore it
// and inherit the parent's. Start on a nil tracer returns 0.
func (t *Tracer) Start(parent SpanID, opID uint64, stage, name string) SpanID {
	if t == nil {
		return 0
	}
	id := SpanID(t.base + uint64(len(t.spans)) + 1)
	s := Span{ID: id, OpID: opID, Stage: stage, Name: name, Start: t.env.Now()}
	if ps := t.span(parent); ps != nil {
		s.Parent = parent
		s.OpID = ps.OpID
	}
	t.spans = append(t.spans, s)
	return id
}

// Finish closes the span at the current virtual instant.
func (t *Tracer) Finish(id SpanID) {
	if s := t.span(id); s != nil && !s.Finished {
		s.End = t.env.Now()
		s.Finished = true
	}
}

// AddCPU attributes busy time on the named processor to the span. A span's
// resource is fixed by its first charge; the instrumentation keeps each
// span on a single processor.
func (t *Tracer) AddCPU(id SpanID, resource string, d sim.Duration) {
	if s := t.span(id); s != nil && d > 0 {
		if s.Resource == "" {
			s.Resource = resource
		}
		s.CPU += d
	}
}

// AddQueueWait attributes queueing delay to the span.
func (t *Tracer) AddQueueWait(id SpanID, d sim.Duration) {
	if s := t.span(id); s != nil && d > 0 {
		s.QueueWait += d
	}
}

// AddBytes attributes moved payload bytes to the span.
func (t *Tracer) AddBytes(id SpanID, n int64) {
	if s := t.span(id); s != nil && n > 0 {
		s.Bytes += n
	}
}

// Reset discards every recorded span and invalidates outstanding IDs, so
// in-flight operations that started before the reset contribute nothing
// afterwards. Call it at the warmup/measurement boundary alongside
// CPU.ResetStats.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.base += uint64(len(t.spans))
	t.spans = t.spans[:0]
}

// Spans returns the finished spans in ID (event) order. The slice is
// freshly allocated; the Span values are copies.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	out := make([]Span, 0, len(t.spans))
	for i := range t.spans {
		if t.spans[i].Finished {
			out = append(out, t.spans[i])
		}
	}
	return out
}

// StageStat is one row of the per-stage aggregation: every finished span
// of one stage on one resource, summed.
type StageStat struct {
	Stage    string
	Resource string
	Count    int64
	// CPU is total busy time charged; Latency and QueueWait are summed
	// span wall times and queue waits (divide by Count for means).
	CPU       sim.Duration
	Latency   sim.Duration
	QueueWait sim.Duration
	Bytes     int64
}

// stageRank orders stages along the request path for stable, readable
// aggregate tables. Per-queue DMA stages ("dma.q<N>", "batch.dma.q<N>")
// share their base stage's rank and order alphabetically within it; other
// unknown stages sort after, alphabetically.
var stageRank = map[string]int{
	StageOp:          0,
	StageMsgrSend:    1,
	StageWire:        2,
	StageMsgrRecv:    3,
	StageOSDOp:       4,
	StageRepOp:       5,
	StageReplication: 6,
	StageCommit:      7,
	StageSerialize:   8,
	StageDMAStage:    9,
	StageDMA:         10,
	StageBatchStage:  11,
	StageBatchDMA:    12,
	StageHostCommit:  13,
	StageAIO:         14,
	StageKV:          15,
	// Recovery stages rank after the foreground path: background work
	// reads last in the per-stage table.
	StageRecovery:     16,
	StageRecoveryPush: 17,
	// Streaming stages appended after (existing table order unchanged).
	StageStreamWindow: 18,
	StageStreamStage:  19,
}

// rankOf resolves a stage's path rank, mapping per-queue DMA stages onto
// their base stage's slot.
func rankOf(stage string) (int, bool) {
	if r, ok := stageRank[stage]; ok {
		return r, true
	}
	if strings.HasPrefix(stage, StageBatchDMA+".q") {
		return stageRank[StageBatchDMA], true
	}
	if strings.HasPrefix(stage, StageDMA+".q") {
		return stageRank[StageDMA], true
	}
	return 0, false
}

// Canonical stage names used by the instrumentation.
const (
	StageOp          = "op"
	StageMsgrSend    = "msgr-send"
	StageWire        = "wire"
	StageMsgrRecv    = "msgr-recv"
	StageOSDOp       = "osd-op"
	StageRepOp       = "rep-op"
	StageReplication = "replication"
	StageCommit      = "objectstore-commit"
	StageSerialize   = "proxy-serialize"
	StageDMAStage    = "dma-stage"
	StageDMA         = "dma"
	// StageBatchStage / StageBatchDMA are the batched-path analogues of
	// dma-stage/dma: per-op staging into the shared batch frame and the
	// op's ride on the coalesced transfer.
	StageBatchStage = "batch.stage"
	StageBatchDMA   = "batch.dma"
	StageHostCommit = "host-commit"
	// StageAIO is the bstore_aio data stage (checksum + direct blob
	// writes); StageKV is the bstore_kv stage (WAL + metadata batch
	// commit, deferred payloads riding the WAL).
	StageAIO = "bstore-aio"
	StageKV  = "bstore-kv"
	// StageRecovery is one PG backfill (root span, one per recovering PG);
	// StageRecoveryPush is one object push under it. QoS throttle waits are
	// attributed as queue wait on the backfill span.
	StageRecovery     = "recovery.backfill"
	StageRecoveryPush = "recovery.push"
	// StageStreamWindow is a streamed chunk's wait for a flow-control
	// credit before entering the messenger (sender-side backpressure);
	// StageStreamStage is the per-chunk ingest at the receiving OSD (txn
	// build + queueing into the object store).
	StageStreamWindow = "stream.window"
	StageStreamStage  = "stream.stage"
)

// Per-queue DMA stage names ("dma.q<N>", "batch.dma.q<N>"), used instead
// of StageDMA/StageBatchDMA when the engine runs more than one queue so
// the aggregate tables expose per-queue occupancy. Precomputed for the
// realistic queue counts to keep the hot path allocation-free.
var (
	dmaQueueStages      [16]string
	batchDMAQueueStages [16]string
)

func init() {
	for q := range dmaQueueStages {
		dmaQueueStages[q] = fmt.Sprintf("%s.q%d", StageDMA, q)
		batchDMAQueueStages[q] = fmt.Sprintf("%s.q%d", StageBatchDMA, q)
	}
}

// StageDMAQueue returns the per-queue variant of StageDMA.
func StageDMAQueue(q int) string {
	if q >= 0 && q < len(dmaQueueStages) {
		return dmaQueueStages[q]
	}
	return fmt.Sprintf("%s.q%d", StageDMA, q)
}

// StageBatchDMAQueue returns the per-queue variant of StageBatchDMA.
func StageBatchDMAQueue(q int) string {
	if q >= 0 && q < len(batchDMAQueueStages) {
		return batchDMAQueueStages[q]
	}
	return fmt.Sprintf("%s.q%d", StageBatchDMA, q)
}

// Aggregate folds finished spans into per-(stage, resource) rows, ordered
// along the request path. Deterministic input order yields deterministic
// output.
func Aggregate(spans []Span) []StageStat {
	type key struct{ stage, res string }
	acc := make(map[key]*StageStat)
	var order []key
	for i := range spans {
		s := &spans[i]
		k := key{s.Stage, s.Resource}
		st, ok := acc[k]
		if !ok {
			st = &StageStat{Stage: s.Stage, Resource: s.Resource}
			acc[k] = st
			order = append(order, k)
		}
		st.Count++
		st.CPU += s.CPU
		st.Latency += s.Latency()
		st.QueueWait += s.QueueWait
		st.Bytes += s.Bytes
	}
	sort.Slice(order, func(i, j int) bool {
		ri, iKnown := rankOf(order[i].stage)
		rj, jKnown := rankOf(order[j].stage)
		switch {
		case iKnown && jKnown && ri != rj:
			return ri < rj
		case iKnown != jKnown:
			return iKnown
		case order[i].stage != order[j].stage:
			return order[i].stage < order[j].stage
		}
		return order[i].res < order[j].res
	})
	out := make([]StageStat, len(order))
	for i, k := range order {
		out[i] = *acc[k]
	}
	return out
}

// CPUByResource sums traced CPU per processor over finished spans.
func CPUByResource(spans []Span) map[string]sim.Duration {
	out := make(map[string]sim.Duration)
	for i := range spans {
		if spans[i].CPU > 0 {
			out[spans[i].Resource] += spans[i].CPU
		}
	}
	return out
}

// Package osdmap implements the cluster map shared by monitors, OSDs and
// clients: an epoch, the set of up OSDs, the CRUSH hierarchy, and the
// object -> placement-group -> acting-set resolution path (RADOS §2).
package osdmap

import (
	"hash/fnv"

	"doceph/internal/crush"
)

// Map is one epoch of cluster state. Maps are treated as immutable once
// published; Next derives a successor epoch.
type Map struct {
	Epoch uint32
	// PGCount is the number of placement groups in the (single) pool.
	PGCount uint32
	// Replicas is the pool replication factor.
	Replicas int
	// MinSize is the Ceph-style write quorum floor: with MinSize > 0 a PG
	// accepts (degraded) writes while its acting set holds at least MinSize
	// members and rejects them below that. Zero disables the gate entirely
	// (legacy behaviour).
	MinSize int
	// Crush is the placement hierarchy; each epoch owns an independent
	// copy so down-marks cannot leak between epochs.
	Crush *crush.Map
	// Down marks OSDs excluded from placement in this epoch.
	Down map[int32]bool
}

// New returns an epoch-1 map over the given hierarchy.
func New(crushMap *crush.Map, pgCount uint32, replicas int) *Map {
	return &Map{
		Epoch:    1,
		PGCount:  pgCount,
		Replicas: replicas,
		Crush:    crushMap,
		Down:     make(map[int32]bool),
	}
}

// Next returns a successor map with the epoch advanced and an independent
// Down set.
func (m *Map) Next() *Map {
	down := make(map[int32]bool, len(m.Down))
	for k, v := range m.Down {
		down[k] = v
	}
	return &Map{
		Epoch:    m.Epoch + 1,
		PGCount:  m.PGCount,
		Replicas: m.Replicas,
		MinSize:  m.MinSize,
		Crush:    m.Crush.Clone(),
		Down:     down,
	}
}

// MarkDown excludes an OSD from this map's placement (and from CRUSH
// selection).
func (m *Map) MarkDown(osd int32) {
	m.Down[osd] = true
	_ = m.Crush.MarkOut(crush.ItemID(osd))
}

// MarkUp restores an OSD.
func (m *Map) MarkUp(osd int32) {
	delete(m.Down, osd)
	_ = m.Crush.MarkIn(crush.ItemID(osd))
}

// IsUp reports whether osd participates in this epoch.
func (m *Map) IsUp(osd int32) bool { return !m.Down[osd] }

// UpOSDs returns the ids of all up devices in ascending order.
func (m *Map) UpOSDs() []int32 {
	var out []int32
	for _, id := range m.Crush.Devices() {
		if !m.Down[int32(id)] {
			out = append(out, int32(id))
		}
	}
	return out
}

// PGForObject hashes an object name to its placement group, mirroring
// Ceph's stable ceph_str_hash + pg mask.
func (m *Map) PGForObject(object string) uint32 {
	h := fnv.New32a()
	_, _ = h.Write([]byte(object))
	return h.Sum32() % m.PGCount
}

// pgSeed decorrelates PG ids before they enter CRUSH.
func pgSeed(pg uint32) uint32 {
	x := pg*2654435761 + 0x9e3779b9
	x ^= x >> 16
	x *= 0x85ebca6b
	x ^= x >> 13
	return x
}

// ActingSet returns the OSDs serving pg, primary first.
func (m *Map) ActingSet(pg uint32) []int32 {
	ids := m.Crush.Select(pgSeed(pg), m.Replicas)
	out := make([]int32, 0, len(ids))
	for _, id := range ids {
		out = append(out, int32(id))
	}
	return out
}

// Primary returns the primary OSD for pg, or -1 if the PG is unservable.
func (m *Map) Primary(pg uint32) int32 {
	acting := m.ActingSet(pg)
	if len(acting) == 0 {
		return -1
	}
	return acting[0]
}

package osdmap

import (
	"testing"
	"testing/quick"

	"doceph/internal/crush"
)

func newMap(hosts int, replicas int) *Map {
	return New(crush.BuildUniform(hosts, 1, 1.0), 64, replicas)
}

func TestPGForObjectDeterministicAndInRange(t *testing.T) {
	m := newMap(3, 2)
	f := func(obj string) bool {
		pg := m.PGForObject(obj)
		return pg == m.PGForObject(obj) && pg < m.PGCount
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPGsSpreadAcrossRange(t *testing.T) {
	m := newMap(3, 2)
	seen := map[uint32]bool{}
	for i := 0; i < 2000; i++ {
		seen[m.PGForObject(string(rune('a'+i%26))+string(rune('0'+i%10))+string(rune(i)))] = true
	}
	if len(seen) < int(m.PGCount)*3/4 {
		t.Fatalf("only %d of %d PGs used", len(seen), m.PGCount)
	}
}

func TestActingSetDistinctAndStable(t *testing.T) {
	m := newMap(4, 3)
	for pg := uint32(0); pg < m.PGCount; pg++ {
		a := m.ActingSet(pg)
		b := m.ActingSet(pg)
		if len(a) != 3 {
			t.Fatalf("pg %d acting=%v", pg, a)
		}
		seen := map[int32]bool{}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("pg %d unstable acting set", pg)
			}
			if seen[a[i]] {
				t.Fatalf("pg %d duplicate osd: %v", pg, a)
			}
			seen[a[i]] = true
		}
		if m.Primary(pg) != a[0] {
			t.Fatalf("pg %d primary mismatch", pg)
		}
	}
}

func TestNextAdvancesEpochIndependently(t *testing.T) {
	m1 := newMap(3, 2)
	m2 := m1.Next()
	if m2.Epoch != m1.Epoch+1 {
		t.Fatalf("epochs %d -> %d", m1.Epoch, m2.Epoch)
	}
	m2.MarkDown(1)
	if !m1.IsUp(1) {
		t.Fatal("down-mark leaked into the previous epoch")
	}
	if m2.IsUp(1) {
		t.Fatal("down-mark did not apply")
	}
	// CRUSH copies are independent too: m1 still places on osd 1.
	found := false
	for pg := uint32(0); pg < m1.PGCount && !found; pg++ {
		for _, id := range m1.ActingSet(pg) {
			found = found || id == 1
		}
	}
	if !found {
		t.Fatal("previous epoch's CRUSH lost the device")
	}
	for pg := uint32(0); pg < m2.PGCount; pg++ {
		for _, id := range m2.ActingSet(pg) {
			if id == 1 {
				t.Fatal("new epoch still places on the down OSD")
			}
		}
	}
}

func TestNextCarriesMinSize(t *testing.T) {
	m1 := newMap(3, 2)
	if m1.MinSize != 0 {
		t.Fatalf("fresh map MinSize = %d, want 0 (gate off)", m1.MinSize)
	}
	m1.MinSize = 1
	m2 := m1.Next().Next()
	if m2.MinSize != 1 {
		t.Fatalf("MinSize lost across epochs: %d", m2.MinSize)
	}
}

func TestUpOSDsAndMarkUp(t *testing.T) {
	m := newMap(3, 2)
	if got := m.UpOSDs(); len(got) != 3 {
		t.Fatalf("up=%v", got)
	}
	m.MarkDown(0)
	if got := m.UpOSDs(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("up=%v", got)
	}
	m.MarkUp(0)
	if got := m.UpOSDs(); len(got) != 3 {
		t.Fatalf("up=%v", got)
	}
}

func TestPrimaryUnservable(t *testing.T) {
	m := newMap(2, 2)
	m.MarkDown(0)
	m.MarkDown(1)
	if p := m.Primary(5); p != -1 {
		t.Fatalf("primary=%d on empty cluster", p)
	}
}

func TestPGSeedDecorrelates(t *testing.T) {
	// Adjacent PG ids must not map to correlated acting sets; check that
	// consecutive PGs do not all share a primary.
	m := newMap(4, 2)
	same := 0
	for pg := uint32(0); pg+1 < m.PGCount; pg++ {
		if m.Primary(pg) == m.Primary(pg+1) {
			same++
		}
	}
	if same > int(m.PGCount)*3/4 {
		t.Fatalf("%d of %d consecutive PG pairs share a primary", same, m.PGCount-1)
	}
}

package mgr

import (
	"strings"
	"testing"

	"doceph/internal/cephmsg"
	"doceph/internal/crush"
	"doceph/internal/messenger"
	"doceph/internal/osdmap"
	"doceph/internal/sim"
)

// fakeDaemon answers stats polls with a scripted, advancing counter.
type fakeDaemon struct {
	msgr   *messenger.Messenger
	name   string
	writes int64
}

func (f *fakeDaemon) dispatch(p *sim.Proc, src string, m cephmsg.Message) {
	gs, ok := m.(*cephmsg.MGetStats)
	if !ok {
		return
	}
	f.writes += 10
	f.msgr.Send(src, &cephmsg.MStatsReply{
		Tid: gs.Tid, Source: f.name,
		Keys:   []string{"client_writes", "map_epoch"},
		Values: []int64{f.writes, 3},
	})
}

func newMgrRig(t *testing.T) (*sim.Env, *Manager, []*fakeDaemon) {
	t.Helper()
	env := sim.NewEnv(2)
	fabric := sim.NewFabric(env, "eth", sim.Microsecond)
	fabric.AddNode("n", 12.5e9)
	reg := messenger.NewRegistry()
	cpu := sim.NewCPU(env, "cpu", 8, 3.0, 2000)
	var daemons []*fakeDaemon
	var names []string
	for _, n := range []string{"osd.0", "osd.1"} {
		f := &fakeDaemon{name: n}
		f.msgr = messenger.New(env, reg, fabric, cpu, n, "n", messenger.Config{})
		f.msgr.SetDispatcher(f.dispatch)
		daemons = append(daemons, f)
		names = append(names, n)
	}
	gmsgr := messenger.New(env, reg, fabric, cpu, "mgr.0", "n", messenger.Config{})
	m := New(env, cpu, gmsgr, names, Config{PollInterval: sim.Second, HistoryDepth: 4})
	return env, m, daemons
}

func TestManagerPollsAndAggregates(t *testing.T) {
	env, m, _ := newMgrRig(t)
	if err := env.RunUntil(sim.Time(6 * sim.Second)); err != nil {
		t.Fatal(err)
	}
	env.Shutdown()
	if m.Polls() < 5 || m.Replies() < 10 {
		t.Fatalf("polls=%d replies=%d", m.Polls(), m.Replies())
	}
	s := m.Latest("osd.0")
	if s == nil || s.Values["client_writes"] == 0 || s.Values["map_epoch"] != 3 {
		t.Fatalf("snapshot=%+v", s)
	}
	// Two daemons, each advancing by 10 per poll.
	if total := m.ClusterTotal("client_writes"); total < 100 {
		t.Fatalf("total=%d", total)
	}
}

func TestManagerRateAndHistory(t *testing.T) {
	env, m, _ := newMgrRig(t)
	if err := env.RunUntil(sim.Time(10 * sim.Second)); err != nil {
		t.Fatal(err)
	}
	env.Shutdown()
	// 10 writes per 1 s poll round.
	rate := m.Rate("osd.1", "client_writes")
	if rate < 9 || rate > 11 {
		t.Fatalf("rate=%v", rate)
	}
	h := m.History("osd.1")
	if len(h) != 4 {
		t.Fatalf("history depth=%d want 4 (bounded)", len(h))
	}
	for i := 1; i < len(h); i++ {
		if h[i].Values["client_writes"] <= h[i-1].Values["client_writes"] {
			t.Fatal("history not advancing")
		}
	}
}

func TestManagerReportRenders(t *testing.T) {
	env, m, _ := newMgrRig(t)
	if err := env.RunUntil(sim.Time(3 * sim.Second)); err != nil {
		t.Fatal(err)
	}
	env.Shutdown()
	rep := m.Report()
	if !strings.Contains(rep, "osd.0") || !strings.Contains(rep, "osd.1") ||
		!strings.Contains(rep, "totals:") {
		t.Fatalf("report:\n%s", rep)
	}
}

func TestManagerUnknownSourceRate(t *testing.T) {
	env, m, _ := newMgrRig(t)
	if err := env.RunUntil(sim.Time(sim.Second / 2)); err != nil {
		t.Fatal(err)
	}
	env.Shutdown()
	if m.Rate("ghost", "x") != 0 || m.Latest("ghost") != nil {
		t.Fatal("unknown source should be zero-valued")
	}
}

func TestAssessHealth(t *testing.T) {
	env, m, _ := newMgrRig(t)
	if err := env.RunUntil(sim.Time(2 * sim.Second)); err != nil {
		t.Fatal(err)
	}
	env.Shutdown()

	full := osdmap.New(crush.BuildUniform(2, 1, 1.0), 32, 2)
	h := m.AssessHealth(full)
	if h.Grade != "HEALTH_OK" || h.DegradedPGs != 0 {
		t.Fatalf("health=%v", h)
	}

	// With 2 hosts and 2 replicas, losing one host degrades every PG.
	degraded := full.Next()
	degraded.MarkDown(1)
	h = m.AssessHealth(degraded)
	if h.Grade != "HEALTH_WARN" || h.DegradedPGs != int(degraded.PGCount) || h.DownOSDs != 1 {
		t.Fatalf("health=%v", h)
	}

	dead := degraded.Next()
	dead.MarkDown(0)
	h = m.AssessHealth(dead)
	if h.Grade != "HEALTH_ERR" || h.UnservedPGs != int(dead.PGCount) {
		t.Fatalf("health=%v", h)
	}
	if h.String() == "" {
		t.Fatal("empty health string")
	}
}

// Package mgr implements the Manager daemon (paper §2.1): it polls every
// OSD for runtime statistics on a fixed cadence, keeps the latest snapshot
// and a small history per counter, and renders the dashboard-style cluster
// report real Ceph's MGR modules expose. Its polling traffic rides the
// messenger like everything else — on the DPU in DoCeph mode.
package mgr

import (
	"fmt"
	"sort"
	"strings"

	"doceph/internal/cephmsg"
	"doceph/internal/messenger"
	"doceph/internal/osdmap"
	"doceph/internal/sim"
)

// ThreadCat is the accounting category for manager work.
const ThreadCat = "mgr"

// Config carries manager tunables.
type Config struct {
	// PollInterval spaces statistics polls (Ceph default: a few seconds).
	PollInterval sim.Duration
	// HistoryDepth bounds the per-counter sample history.
	HistoryDepth int
}

// Snapshot is one daemon's most recent counter report.
type Snapshot struct {
	Source string
	At     sim.Time
	Values map[string]int64
}

// Manager is a single MGR instance.
type Manager struct {
	env  *sim.Env
	cpu  *sim.CPU
	msgr *messenger.Messenger
	cfg  Config
	th   *sim.Thread

	targets []string
	nextTid uint64

	latest  map[string]*Snapshot
	history map[string][]Snapshot

	polls   int64
	replies int64
}

// New creates a manager polling the given OSD entity names.
func New(env *sim.Env, cpu *sim.CPU, msgr *messenger.Messenger,
	targets []string, cfg Config) *Manager {
	if cfg.PollInterval == 0 {
		cfg.PollInterval = 5 * sim.Second
	}
	if cfg.HistoryDepth == 0 {
		cfg.HistoryDepth = 64
	}
	m := &Manager{
		env: env, cpu: cpu, msgr: msgr, cfg: cfg,
		th:      sim.NewThread("mgr", ThreadCat),
		targets: append([]string(nil), targets...),
		latest:  make(map[string]*Snapshot),
		history: make(map[string][]Snapshot),
	}
	msgr.SetDispatcher(m.dispatch)
	env.SpawnDaemon("mgr-poll", func(p *sim.Proc) { m.pollLoop(p) })
	return m
}

// Polls returns how many poll rounds have been issued.
func (m *Manager) Polls() int64 { return m.polls }

// Replies returns how many reports have been received.
func (m *Manager) Replies() int64 { return m.replies }

// Latest returns the most recent snapshot from source, or nil.
func (m *Manager) Latest(source string) *Snapshot { return m.latest[source] }

// History returns up to HistoryDepth snapshots for source, oldest first.
func (m *Manager) History(source string) []Snapshot { return m.history[source] }

// ClusterTotal sums the latest value of key across all reporting daemons.
func (m *Manager) ClusterTotal(key string) int64 {
	var sum int64
	for _, s := range m.latest {
		sum += s.Values[key]
	}
	return sum
}

// Stale reports whether source has not reported within maxAge of now.
func (m *Manager) Stale(source string, now sim.Time, maxAge sim.Duration) bool {
	s := m.latest[source]
	return s == nil || now.Sub(s.At) > maxAge
}

// Rate returns the per-second rate of key for source over its last two
// snapshots (0 until two samples exist).
func (m *Manager) Rate(source, key string) float64 {
	h := m.history[source]
	if len(h) < 2 {
		return 0
	}
	a, b := h[len(h)-2], h[len(h)-1]
	dt := b.At.Sub(a.At).Seconds()
	if dt <= 0 {
		return 0
	}
	return float64(b.Values[key]-a.Values[key]) / dt
}

func (m *Manager) pollLoop(p *sim.Proc) {
	p.SetThread(m.th)
	for {
		p.Wait(m.cfg.PollInterval)
		m.cpu.Exec(p, m.th, 20_000)
		m.polls++
		for _, t := range m.targets {
			m.nextTid++
			m.msgr.Send(t, &cephmsg.MGetStats{Tid: m.nextTid})
		}
	}
}

func (m *Manager) dispatch(p *sim.Proc, src string, msg cephmsg.Message) {
	sr, ok := msg.(*cephmsg.MStatsReply)
	if !ok {
		return
	}
	m.cpu.Exec(p, m.th, 10_000)
	m.replies++
	snap := &Snapshot{Source: sr.Source, At: p.Now(), Values: make(map[string]int64, len(sr.Keys))}
	for i := range sr.Keys {
		snap.Values[sr.Keys[i]] = sr.Values[i]
	}
	m.latest[sr.Source] = snap
	h := append(m.history[sr.Source], *snap)
	if len(h) > m.cfg.HistoryDepth {
		h = h[len(h)-m.cfg.HistoryDepth:]
	}
	m.history[sr.Source] = h
}

// Health grades the cluster from a map: OK when every PG has its full
// replica count on up OSDs, WARN when some PGs are degraded (serving with
// fewer replicas), ERR when any PG has no up OSD at all (Ceph's
// HEALTH_OK/WARN/ERR taxonomy).
type Health struct {
	Grade       string
	TotalPGs    int
	DegradedPGs int
	UnservedPGs int
	DownOSDs    int
	ScrubErrors int64
}

// AssessHealth evaluates m (typically the monitor's current map) together
// with the latest daemon reports.
func (mg *Manager) AssessHealth(m *osdmap.Map) Health {
	h := Health{Grade: "HEALTH_OK", TotalPGs: int(m.PGCount)}
	for pg := uint32(0); pg < m.PGCount; pg++ {
		acting := m.ActingSet(pg)
		switch {
		case len(acting) == 0:
			h.UnservedPGs++
		case len(acting) < m.Replicas:
			h.DegradedPGs++
		}
	}
	for _, dev := range m.Crush.Devices() {
		if !m.IsUp(int32(dev)) {
			h.DownOSDs++
		}
	}
	h.ScrubErrors = mg.ClusterTotal("scrub_errors")
	switch {
	case h.UnservedPGs > 0:
		h.Grade = "HEALTH_ERR"
	case h.DegradedPGs > 0 || h.DownOSDs > 0 || h.ScrubErrors > 0:
		h.Grade = "HEALTH_WARN"
	}
	return h
}

func (h Health) String() string {
	s := h.Grade
	if h.DownOSDs > 0 {
		s += fmt.Sprintf("; %d OSD(s) down", h.DownOSDs)
	}
	if h.DegradedPGs > 0 {
		s += fmt.Sprintf("; %d/%d PGs degraded", h.DegradedPGs, h.TotalPGs)
	}
	if h.UnservedPGs > 0 {
		s += fmt.Sprintf("; %d PGs unserved", h.UnservedPGs)
	}
	if h.ScrubErrors > 0 {
		s += fmt.Sprintf("; %d scrub errors found", h.ScrubErrors)
	}
	return s
}

// Report renders a cluster status summary from the latest snapshots.
func (m *Manager) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cluster status (%d daemons reporting)\n", len(m.latest))
	sources := make([]string, 0, len(m.latest))
	for s := range m.latest {
		sources = append(sources, s)
	}
	sort.Strings(sources)
	for _, src := range sources {
		s := m.latest[src]
		fmt.Fprintf(&b, "  %-8s epoch %d  writes %d  reads %d  rep-ops %d  recovered %d  scrub-errs %d\n",
			src, s.Values["map_epoch"], s.Values["client_writes"], s.Values["client_reads"],
			s.Values["rep_ops"], s.Values["objects_recovered"], s.Values["scrub_errors"])
	}
	fmt.Fprintf(&b, "  totals: %d writes, %.1f MB written, %d scrub errors\n",
		m.ClusterTotal("client_writes"),
		float64(m.ClusterTotal("bytes_written"))/1e6,
		m.ClusterTotal("scrub_errors"))
	return b.String()
}

package doceph

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"os"
	"runtime"
	"strings"
	"testing"

	"doceph/internal/cluster"
	"doceph/internal/trace"
)

// The trace golden pins the complete trace output — span count and the
// SHA-256 of the byte-exact Chrome JSON — of the same pinned scenario as
// golden_sim.json, with tracing on. Any change to span creation order,
// attribution or the exporter shows up here. Regenerate alongside the sim
// golden for an intentional model change:
//
//	go test -run 'TestGolden' -update-golden .
const goldenTracePath = "testdata/golden_trace.json"

type goldenTrace struct {
	Spans        int    `json:"spans"`
	StageRows    int    `json:"stage_rows"`
	ChromeSHA256 string `json:"chrome_sha256"`
}

// tracedRun is one traced golden-scenario execution, shared by the tests
// below so each mode only runs once.
type tracedRun struct {
	metrics goldenMetrics
	spans   []trace.Span
	busy    map[string]Duration
}

var tracedRunCache = map[cluster.Mode]*tracedRun{}

func tracedGolden(t *testing.T, mode cluster.Mode) *tracedRun {
	t.Helper()
	if r, ok := tracedRunCache[mode]; ok {
		return r
	}
	metrics, cl := runGoldenScenarioOpt(t, mode, true)
	defer cl.Shutdown()
	busy := map[string]Duration{cl.ClientCPU.Name(): cl.ClientCPU.Stats().TotalBusy}
	for _, n := range cl.Nodes {
		busy[n.HostCPU.Name()] = n.HostCPU.Stats().TotalBusy
		if n.DPU != nil {
			busy[n.DPU.CPU.Name()] = n.DPU.CPU.Stats().TotalBusy
		}
	}
	r := &tracedRun{metrics: metrics, spans: cl.Tracer.Spans(), busy: busy}
	tracedRunCache[mode] = r
	return r
}

func chromeHash(spans []trace.Span) string {
	sum := sha256.Sum256(trace.ChromeTrace(spans))
	return hex.EncodeToString(sum[:])
}

// TestGoldenTrace pins the byte-exact trace output for both deployments
// and asserts that enabling tracing leaves every simulated metric exactly
// at its untraced golden value (the observer-effect-zero property:
// tracing is pure bookkeeping).
func TestGoldenTrace(t *testing.T) {
	got := map[string]goldenTrace{}
	metrics := map[string]goldenMetrics{}
	for name, mode := range map[string]cluster.Mode{
		"baseline": cluster.Baseline, "doceph": cluster.DoCeph,
	} {
		r := tracedGolden(t, mode)
		got[name] = goldenTrace{
			Spans:        len(r.spans),
			StageRows:    len(trace.Aggregate(r.spans)),
			ChromeSHA256: chromeHash(r.spans),
		}
		metrics[name] = r.metrics
	}

	if *updateGolden {
		raw, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenTracePath, append(raw, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", goldenTracePath)
		return
	}

	// Observer effect: the traced run must reproduce the untraced golden
	// metrics bit-identically.
	simRaw, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing %s: %v", goldenPath, err)
	}
	var simWant map[string]goldenMetrics
	if err := json.Unmarshal(simRaw, &simWant); err != nil {
		t.Fatal(err)
	}
	for name, w := range simWant {
		if g := metrics[name]; g != w {
			t.Errorf("tracing perturbed the simulation for %q:\n got  %+v\n want %+v", name, g, w)
		}
	}

	raw, err := os.ReadFile(goldenTracePath)
	if err != nil {
		t.Fatalf("missing trace golden (run with -update-golden to create): %v", err)
	}
	var want map[string]goldenTrace
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatal(err)
	}
	for name, w := range want {
		if g := got[name]; g != w {
			t.Errorf("trace output diverged for %q:\n got  %+v\n want %+v", name, g, w)
		}
	}
}

// TestTraceInvariants runs the structural and CPU-conservation checkers
// over both deployments' real traces.
func TestTraceInvariants(t *testing.T) {
	for _, mode := range []cluster.Mode{cluster.Baseline, cluster.DoCeph} {
		r := tracedGolden(t, mode)
		if len(r.spans) == 0 {
			t.Fatalf("%v: no spans recorded", mode)
		}
		if err := trace.CheckInvariants(r.spans); err != nil {
			t.Errorf("%v: %v", mode, err)
		}
		if err := trace.CheckCPUConservation(r.spans, r.busy); err != nil {
			t.Errorf("%v: %v", mode, err)
		}
	}
}

// TestTraceMessengerShiftsToDPU asserts the paper's core claim at span
// granularity: in the baseline, messenger and OSD stages burn host CPU; in
// DoCeph every messenger/OSD span runs on the DPU ARM cores, and the only
// traced host work left is the BlueStore commit path.
func TestTraceMessengerShiftsToDPU(t *testing.T) {
	daemonStages := map[string]bool{
		trace.StageMsgrSend: true, trace.StageMsgrRecv: true,
		trace.StageOSDOp: true, trace.StageRepOp: true,
	}
	hostStages := map[string]bool{
		trace.StageHostCommit: true, trace.StageAIO: true, trace.StageKV: true,
	}

	base := trace.Aggregate(tracedGolden(t, cluster.Baseline).spans)
	var baseHostDaemon Duration
	for _, s := range base {
		if daemonStages[s.Stage] && strings.HasPrefix(s.Resource, "host-") {
			baseHostDaemon += s.CPU
		}
	}
	if baseHostDaemon == 0 {
		t.Fatal("baseline: no messenger/OSD CPU attributed to host processors")
	}

	dc := trace.Aggregate(tracedGolden(t, cluster.DoCeph).spans)
	var dcDPUDaemon, dcHostStore Duration
	for _, s := range dc {
		if daemonStages[s.Stage] {
			if strings.HasPrefix(s.Resource, "host-") {
				t.Errorf("doceph: stage %s still on %s (%v CPU)", s.Stage, s.Resource, s.CPU)
			}
			if strings.Contains(s.Resource, "-arm") {
				dcDPUDaemon += s.CPU
			}
		}
		if hostStages[s.Stage] && strings.HasPrefix(s.Resource, "host-") {
			dcHostStore += s.CPU
		}
	}
	if dcDPUDaemon == 0 {
		t.Error("doceph: no messenger/OSD CPU attributed to DPU ARM cores")
	}
	if dcHostStore == 0 {
		t.Error("doceph: no BlueStore commit CPU attributed to host processors")
	}

	// The traced host CPU must collapse: DoCeph's host total below half the
	// baseline's (the paper measures >90% savings; half is a loose floor).
	hostTotal := func(stats []trace.StageStat) Duration {
		var d Duration
		for _, s := range stats {
			if strings.HasPrefix(s.Resource, "host-") {
				d += s.CPU
			}
		}
		return d
	}
	if b, d := hostTotal(base), hostTotal(dc); d*2 > b {
		t.Errorf("doceph traced host CPU %v not below half of baseline %v", d, b)
	}
}

// TestTraceDeterminismAcrossGOMAXPROCS is the determinism property test:
// the same (seed, config) must yield bit-identical metrics AND
// byte-identical trace output whether the Go runtime schedules on one OS
// thread or many.
func TestTraceDeterminismAcrossGOMAXPROCS(t *testing.T) {
	run := func() (goldenMetrics, string) {
		m, cl := runGoldenScenarioOpt(t, cluster.DoCeph, true)
		defer cl.Shutdown()
		return m, chromeHash(cl.Tracer.Spans())
	}
	prev := runtime.GOMAXPROCS(1)
	m1, h1 := run()
	runtime.GOMAXPROCS(8)
	m2, h2 := run()
	runtime.GOMAXPROCS(prev)
	if m1 != m2 {
		t.Errorf("metrics differ across GOMAXPROCS:\n 1: %+v\n 8: %+v", m1, m2)
	}
	if h1 != h2 {
		t.Errorf("trace output differs across GOMAXPROCS: %s vs %s", h1, h2)
	}
}

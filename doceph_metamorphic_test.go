package doceph

import (
	"fmt"
	"testing"

	"doceph/internal/cluster"
	"doceph/internal/radosbench"
	"doceph/internal/sim"
	"doceph/internal/trace"
	"doceph/internal/wire"
)

// The metamorphic property of adaptive batching: it is a pure transport
// optimization. For a fixed workload, turning batching on may change WHEN
// things happen (virtual-time metrics) but never WHAT happens — every
// stored object byte-identical, every reply's success/error identical, and
// the trace still structurally sound. The suite runs a fixed op set at
// sizes spanning the batched path (4K, 64K), the eligibility boundary and
// the segmented bypass (1M, 4M), under both deployments.

// metaOutcome captures everything observable about one run that batching
// must NOT change.
type metaOutcome struct {
	ops      int64
	objCRC   map[string]uint32
	objLen   map[string]int
	ghostErr string
	// what batching/streaming MAY change, kept for the assertions about
	// the optimized arm itself:
	batchedTxns  int64
	streamWrites int64
	peakStaging  int64
	stages       map[string]bool
}

const (
	metaThreads = 4
	metaOps     = 5
)

// runMetamorphic executes the fixed workload and reads every written object
// back through the client, plus one ghost read of an object that was never
// written (the error half of the reply-set identity). Extra mutators let the
// multi-queue arm reshape the transport (queues, shards, lanes) on top of
// the batch toggle.
func runMetamorphic(t *testing.T, mode cluster.Mode, size int64, batch bool,
	mut ...func(*cluster.Config)) metaOutcome {
	t.Helper()
	cfg := cluster.Config{Mode: mode, Seed: 42, Trace: true}
	if batch {
		cfg.Bridge.Batch.Enable = true
	}
	for _, m := range mut {
		m(&cfg)
	}
	cl := cluster.New(cfg)
	defer cl.Shutdown()
	res, err := radosbench.Run(cl.Env, cl.Client, radosbench.Config{
		Threads:      metaThreads,
		ObjectBytes:  size,
		OpsPerThread: metaOps,
	})
	if err != nil {
		t.Fatalf("mode %v size %d batch %v: %v", mode, size, batch, err)
	}
	out := metaOutcome{
		ops:    res.Ops,
		objCRC: map[string]uint32{},
		objLen: map[string]int{},
		stages: map[string]bool{},
	}
	readback := false
	cl.Env.Spawn("meta-readback", func(p *sim.Proc) {
		p.SetThread(sim.NewThread("meta-readback", "client"))
		for w := 0; w < metaThreads; w++ {
			for i := 0; i < metaOps; i++ {
				obj := fmt.Sprintf("benchmark_data_w%d_%d", w, i)
				var bl *wire.Bufferlist
				bl, err := cl.Client.Read(p, obj, 0, 0)
				if err != nil {
					t.Errorf("readback %s: %v", obj, err)
					continue
				}
				out.objCRC[obj] = bl.CRC32C()
				out.objLen[obj] = bl.Length()
			}
		}
		if _, err := cl.Client.Read(p, "never_written", 0, 0); err != nil {
			out.ghostErr = err.Error()
		}
		readback = true
	})
	if err := cl.Env.RunUntil(cl.Env.Now().Add(60 * sim.Second)); err != nil || !readback {
		t.Fatalf("readback did not finish: err=%v", err)
	}

	// The trace must stay structurally sound in every arm.
	spans := cl.Tracer.Spans()
	if err := trace.CheckInvariants(spans); err != nil {
		t.Errorf("mode %v size %d batch %v: trace invariants: %v", mode, size, batch, err)
	}
	busy := map[string]Duration{cl.ClientCPU.Name(): cl.ClientCPU.Stats().TotalBusy}
	for _, n := range cl.Nodes {
		busy[n.HostCPU.Name()] = n.HostCPU.Stats().TotalBusy
		if n.DPU != nil {
			busy[n.DPU.CPU.Name()] = n.DPU.CPU.Stats().TotalBusy
		}
	}
	if err := trace.CheckCPUConservation(spans, busy); err != nil {
		t.Errorf("mode %v size %d batch %v: CPU conservation: %v", mode, size, batch, err)
	}
	for _, s := range spans {
		out.stages[s.Stage] = true
	}
	for _, n := range cl.Nodes {
		out.streamWrites += n.OSD.Stats().StreamWrites
		if n.Bridge != nil {
			st := n.Bridge.Proxy.Stats()
			out.batchedTxns += st.BatchedTxns
			if st.PeakStagingBytes > out.peakStaging {
				out.peakStaging = st.PeakStagingBytes
			}
		}
	}
	return out
}

func TestMetamorphicBatchingPreservesSemantics(t *testing.T) {
	sizes := []int64{4 << 10, 64 << 10, 1 << 20, 4 << 20}
	for _, mode := range []cluster.Mode{cluster.Baseline, cluster.DoCeph} {
		for _, size := range sizes {
			mode, size := mode, size
			t.Run(fmt.Sprintf("%v_%dKB", mode, size>>10), func(t *testing.T) {
				t.Parallel()
				off := runMetamorphic(t, mode, size, false)
				on := runMetamorphic(t, mode, size, true)

				// Reply sets: same op count, no write failures in either
				// arm (runMetamorphic fails the test on any), and the same
				// error for the never-written object.
				if off.ops != on.ops {
					t.Errorf("op count changed: %d vs %d", off.ops, on.ops)
				}
				if off.ghostErr == "" || off.ghostErr != on.ghostErr {
					t.Errorf("ghost-read error changed: %q vs %q", off.ghostErr, on.ghostErr)
				}

				// Stored objects byte-identical between arms AND equal to
				// the submitted payload.
				want := radosbench.Payload(size)
				if len(on.objCRC) != metaThreads*metaOps || len(off.objCRC) != len(on.objCRC) {
					t.Fatalf("object sets differ: %d vs %d", len(off.objCRC), len(on.objCRC))
				}
				for obj, crc := range off.objCRC {
					if on.objCRC[obj] != crc {
						t.Errorf("%s: stored bytes changed with batching: %08x vs %08x",
							obj, crc, on.objCRC[obj])
					}
					if crc != want.CRC32C() || int64(off.objLen[obj]) != size {
						t.Errorf("%s: stored object corrupt (len %d, crc %08x)",
							obj, off.objLen[obj], crc)
					}
				}

				// The batched arm really batched where eligible, and the
				// batch stages only ever appear in the batched arm.
				if off.stages[trace.StageBatchStage] || off.stages[trace.StageBatchDMA] {
					t.Error("batch spans present with batching off")
				}
				if mode == cluster.DoCeph && size <= 64<<10 {
					if on.batchedTxns == 0 {
						t.Error("no transactions batched in the batched arm")
					}
					if !on.stages[trace.StageBatchStage] || !on.stages[trace.StageBatchDMA] {
						t.Errorf("batch spans missing in batched arm: %v", on.stages)
					}
				}
			})
		}
	}
}

package doceph

import (
	"fmt"
	"strings"
	"testing"

	"doceph/internal/cluster"
	"doceph/internal/sim"
	"doceph/internal/trace"
)

// mqConfig is the canonical multi-queue shape the acceptance criteria pin:
// 4 DMA queues, 4 OSD op shards, 4 messenger lanes, batching on.
func mqConfig(c *cluster.Config) {
	c.Bridge.Batch.Enable = true
	c.Bridge.Engine.Queues = 4
	c.OSD.OpShards = 4
	c.Messenger.Lanes = 4
}

// TestMultiSeedDeterminismMultiQueue is the run-twice determinism gate for
// the multi-queue configuration: 4 DMA queues, 4 OSD op shards and 4
// messenger lanes all introduce new interleaving freedom, and every bit of
// it must be resolved deterministically by the virtual clock. For each seed
// the traced small-op benchmark runs twice and must reproduce ops, average
// latency, the kernel event count and the byte-exact Chrome trace.
func TestMultiSeedDeterminismMultiQueue(t *testing.T) {
	seeds := []int64{1, 2, 3, 5, 8, 13, 21, 42}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			run := func() (int64, int64, uint64, string) {
				cfg := cluster.Config{Mode: cluster.DoCeph, Seed: seed, Trace: true}
				mqConfig(&cfg)
				cl := cluster.New(cfg)
				defer cl.Shutdown()
				res, err := RunBench(cl, BenchConfig{
					Threads: 8, ObjectBytes: 4 << 10,
					Duration: sim.Second, Warmup: 200 * sim.Millisecond,
				})
				if err != nil {
					t.Fatal(err)
				}
				spans := cl.Tracer.Spans()
				if err := trace.CheckInvariants(spans); err != nil {
					t.Errorf("trace invariants: %v", err)
				}
				var batched int64
				queuesUsed := map[int]bool{}
				for _, n := range cl.Nodes {
					batched += n.Bridge.Proxy.Stats().BatchedTxns
					for qi, qs := range n.Bridge.EngUp.QueueStats() {
						if qs.Transfers > 0 {
							queuesUsed[qi] = true
						}
					}
				}
				if batched == 0 {
					t.Error("no transactions batched")
				}
				if len(queuesUsed) < 2 {
					t.Errorf("only %d of 4 DMA queues carried transfers", len(queuesUsed))
				}
				return res.Ops, int64(res.AvgLatency), cl.Env.Events(), chromeHash(spans)
			}
			o1, l1, e1, h1 := run()
			o2, l2, e2, h2 := run()
			if o1 != o2 || l1 != l2 || e1 != e2 || h1 != h2 {
				t.Errorf("multi-queue run not deterministic: ops %d/%d lat %d/%d events %d/%d trace %s/%s",
					o1, o2, l1, l2, e1, e2, h1, h2)
			}
		})
	}
}

// TestMetamorphicMultiQueuePreservesSemantics extends the batching
// metamorphic property to the multi-queue transport: with 4 DMA queues, 4
// OSD op shards and 4 messenger lanes, every stored object must stay
// byte-identical to the serial plain arm, the reply set unchanged, and the
// trace structurally sound. The per-queue batch DMA stages must replace the
// un-suffixed one, and more than one of them must actually appear.
func TestMetamorphicMultiQueuePreservesSemantics(t *testing.T) {
	sizes := []int64{4 << 10, 64 << 10}
	for _, size := range sizes {
		size := size
		t.Run(fmt.Sprintf("%dKB", size>>10), func(t *testing.T) {
			t.Parallel()
			plain := runMetamorphic(t, cluster.DoCeph, size, false)
			mq := runMetamorphic(t, cluster.DoCeph, size, false, mqConfig)

			if plain.ops != mq.ops {
				t.Errorf("op count changed: %d vs %d", plain.ops, mq.ops)
			}
			if plain.ghostErr == "" || plain.ghostErr != mq.ghostErr {
				t.Errorf("ghost-read error changed: %q vs %q", plain.ghostErr, mq.ghostErr)
			}
			if len(mq.objCRC) != len(plain.objCRC) {
				t.Fatalf("object sets differ: %d vs %d", len(plain.objCRC), len(mq.objCRC))
			}
			for obj, crc := range plain.objCRC {
				if mq.objCRC[obj] != crc {
					t.Errorf("%s: stored bytes changed with multi-queue: %08x vs %08x",
						obj, crc, mq.objCRC[obj])
				}
				if plain.objLen[obj] != mq.objLen[obj] {
					t.Errorf("%s: stored length changed: %d vs %d",
						obj, plain.objLen[obj], mq.objLen[obj])
				}
			}

			if mq.batchedTxns == 0 {
				t.Error("no transactions batched in the multi-queue arm")
			}
			// With queues > 1 the engine reports per-queue stages
			// ("batch.dma.q<N>"), never the un-suffixed serial stage.
			if mq.stages[trace.StageBatchDMA] {
				t.Error("un-suffixed batch.dma stage present with 4 queues")
			}
			perQueue := 0
			for s := range mq.stages {
				if strings.HasPrefix(s, trace.StageBatchDMA+".q") {
					perQueue++
				}
			}
			if perQueue < 2 {
				t.Errorf("want >=2 per-queue batch DMA stages, got %d (%v)", perQueue, mq.stages)
			}
		})
	}
}

// TestParallelRunnerDeterministicOrderedOutput is the race-mode smoke for
// the parallel experiment runner: the multi-queue sweep fans its cells out
// over worker goroutines, and two invocations must produce element-wise
// identical, sweep-ordered results. Run under -race (the CI smoke does)
// this also exercises the runner's only cross-goroutine state.
func TestParallelRunnerDeterministicOrderedOutput(t *testing.T) {
	opts := ExpOptions{Duration: 400 * Millisecond, Warmup: 100 * Millisecond,
		Threads: 4, Seed: 42}
	queues := []int{1, 2}
	sizes := []int64{8 << 10}
	a, err := RunMultiQueueSweep(opts, queues, sizes)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunMultiQueueSweep(opts, queues, sizes)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(queues)*len(sizes) {
		t.Fatalf("got %d cells", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("cell %d differs across runs:\n 1: %+v\n 2: %+v", i, a[i], b[i])
		}
		if a[i].Queues != queues[i%len(queues)] || a[i].SizeBytes != sizes[i/len(queues)] {
			t.Errorf("cell %d out of sweep order: %+v", i, a[i])
		}
		if a[i].IOPS <= 0 {
			t.Errorf("cell %d empty: %+v", i, a[i])
		}
	}
}

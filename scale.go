package doceph

import (
	"fmt"

	"doceph/internal/report"
)

// ScaleRow is one cluster size of the scale-out extension experiment.
type ScaleRow struct {
	Nodes         int
	BaselineUtil  float64 // per-node host CPU, single-core norm
	DoCephUtil    float64
	SavingPct     float64
	BaselineMBps  float64
	DoCephMBps    float64
	DoCephDPUUtil float64 // per-node DPU ARM, single-core norm
}

// RunScaleSweep grows the cluster beyond the paper's two storage nodes and
// measures whether the host-CPU savings and throughput scaling persist.
// Utilization is reported per node so cluster sizes are comparable.
func RunScaleSweep(opts ExpOptions, nodeCounts []int) ([]ScaleRow, error) {
	opts = opts.withDefaults()
	if len(nodeCounts) == 0 {
		nodeCounts = []int{2, 4, 8}
	}
	var out []ScaleRow
	for _, n := range nodeCounts {
		row := ScaleRow{Nodes: n}
		for _, m := range []Mode{Baseline, DoCeph} {
			cl := NewCluster(ClusterConfig{Mode: m, StorageNodes: n, Seed: opts.Seed})
			res, err := RunBench(cl, BenchConfig{
				Threads:     opts.Threads * n / 2, // scale offered load with capacity
				ObjectBytes: 4 << 20,
				Duration:    opts.Duration, Warmup: opts.Warmup,
			})
			if err != nil {
				cl.Shutdown()
				return nil, fmt.Errorf("scale %d nodes %v: %w", n, m, err)
			}
			util := cl.HostCPUMerged().SingleCoreUtilization() / float64(n)
			if m == Baseline {
				row.BaselineUtil = util
				row.BaselineMBps = res.ThroughputBps() / 1e6
			} else {
				row.DoCephUtil = util
				row.DoCephMBps = res.ThroughputBps() / 1e6
				row.DoCephDPUUtil = cl.DPUCPUMerged().SingleCoreUtilization() / float64(n)
			}
			cl.Shutdown()
		}
		if row.BaselineUtil > 0 {
			row.SavingPct = (1 - row.DoCephUtil/row.BaselineUtil) * 100
		}
		out = append(out, row)
	}
	return out, nil
}

// ScaleTable renders the scale-out sweep.
func ScaleTable(rows []ScaleRow) *report.Table {
	t := &report.Table{
		Title: "Extension: scale-out, 4MB writes (per-node CPU, 1-core norm)",
		Header: []string{"nodes", "Baseline host", "DoCeph host", "saving",
			"Baseline MB/s", "DoCeph MB/s", "DoCeph DPU"},
	}
	for _, r := range rows {
		t.AddRow(fmt.Sprint(r.Nodes), report.Pct(r.BaselineUtil),
			report.Pct(r.DoCephUtil), fmt.Sprintf("%.1f%%", r.SavingPct),
			report.F2(r.BaselineMBps), report.F2(r.DoCephMBps),
			report.Pct(r.DoCephDPUUtil))
	}
	t.AddNote("offered load scales with node count (threads = 16*n/2); savings must persist")
	return t
}

package doceph

import (
	"fmt"

	"doceph/internal/report"
	"doceph/internal/trace"
)

// Tracing re-exports: the span record, the per-stage aggregate row and the
// tracer itself, so callers can post-process traces without importing the
// internal package.
type (
	// TraceSpan is one stage of one operation's lifetime.
	TraceSpan = trace.Span
	// TraceStageStat is one (stage, resource) row of the aggregation.
	TraceStageStat = trace.StageStat
	// Tracer records spans against a cluster's virtual clock.
	Tracer = trace.Tracer
)

// ChromeTrace renders spans as Chrome trace_event JSON (open in
// chrome://tracing or https://ui.perfetto.dev). Byte-deterministic for a
// deterministic span slice.
func ChromeTrace(spans []TraceSpan) []byte { return trace.ChromeTrace(spans) }

// CheckTraceInvariants validates span structure: finished spans nest
// inside their parents in virtual time and inherit their operation ID.
func CheckTraceInvariants(spans []TraceSpan) error { return trace.CheckInvariants(spans) }

// TracedRun is one deployment's traced benchmark window.
type TracedRun struct {
	Mode  Mode
	Bench BenchResult
	// Spans are the finished spans of the measured window, in event order.
	Spans []TraceSpan
	// Stages is the per-(stage, resource) aggregation of Spans.
	Stages []TraceStageStat
	// TracedCPU sums span CPU per processor; Busy is each processor's
	// total accounted busy time over the same window (traced <= busy, the
	// conservation invariant — background daemons are untraced).
	TracedCPU map[string]Duration
	Busy      map[string]Duration
}

// TraceBreakdownResult holds both deployments traced at one request size.
type TraceBreakdownResult struct {
	SizeBytes int64
	Baseline  TracedRun
	DoCeph    TracedRun
}

// RunTraceBreakdown runs one traced write benchmark per deployment and
// returns per-stage CPU-attribution and latency breakdowns. Each run is
// self-checking: span-nesting and CPU-conservation invariants are
// verified before the result is returned. size 0 means 4 MB.
func RunTraceBreakdown(opts ExpOptions, size int64) (TraceBreakdownResult, error) {
	opts = opts.withDefaults()
	if size == 0 {
		size = 4 << 20
	}
	out := TraceBreakdownResult{SizeBytes: size}
	for _, mode := range []Mode{Baseline, DoCeph} {
		r, err := runTraced(mode, size, opts)
		if err != nil {
			return out, fmt.Errorf("%s: %w", mode, err)
		}
		if mode == Baseline {
			out.Baseline = r
		} else {
			out.DoCeph = r
		}
	}
	return out, nil
}

// runTraced builds a traced cluster, runs one write benchmark and folds
// the span set into the run summary.
func runTraced(mode Mode, size int64, opts ExpOptions) (TracedRun, error) {
	cfg := ClusterConfig{Mode: mode, Seed: opts.Seed, Trace: true}
	cfg.Bridge.Engine.Queues = opts.DMAQueues
	cfg.OSD.OpShards = opts.OpShards
	cfg.Messenger.Lanes = opts.lanes()
	cfg.Bridge.Batch = opts.Batch
	cl := NewCluster(cfg)
	defer cl.Shutdown()
	bench, err := RunBench(cl, BenchConfig{
		Threads: opts.Threads, ObjectBytes: size,
		Duration: opts.Duration, Warmup: opts.Warmup,
	})
	if err != nil {
		return TracedRun{}, err
	}
	spans := cl.Tracer.Spans()
	busy := make(map[string]Duration)
	busy[cl.ClientCPU.Name()] = cl.ClientCPU.Stats().TotalBusy
	for _, n := range cl.Nodes {
		busy[n.HostCPU.Name()] = n.HostCPU.Stats().TotalBusy
		if n.DPU != nil {
			busy[n.DPU.CPU.Name()] = n.DPU.CPU.Stats().TotalBusy
		}
	}
	if err := trace.CheckInvariants(spans); err != nil {
		return TracedRun{}, fmt.Errorf("trace invariants: %w", err)
	}
	if err := trace.CheckCPUConservation(spans, busy); err != nil {
		return TracedRun{}, fmt.Errorf("trace cpu conservation: %w", err)
	}
	return TracedRun{
		Mode: mode, Bench: bench, Spans: spans,
		Stages:    trace.Aggregate(spans),
		TracedCPU: trace.CPUByResource(spans),
		Busy:      busy,
	}, nil
}

// StageTable renders one deployment's per-stage breakdown.
func (r TracedRun) StageTable(sizeBytes int64) *report.Table {
	return report.StageTable(fmt.Sprintf(
		"Tracing: per-stage breakdown, %s (%s writes)", r.Mode, report.MB(sizeBytes)),
		r.Stages)
}

// CPUAttributionTable renders traced CPU per processor for both
// deployments side by side — the host→DPU shift the paper measures, now
// derived bottom-up from op spans instead of thread accounting.
func (r TraceBreakdownResult) CPUAttributionTable() *report.Table {
	t := &report.Table{
		Title:  fmt.Sprintf("Tracing: traced CPU by processor (%s writes)", report.MB(r.SizeBytes)),
		Header: []string{"deployment", "resource", "traced cpu (s)", "share"},
	}
	for _, run := range []TracedRun{r.Baseline, r.DoCeph} {
		for _, row := range report.CPUAttributionRows(run.TracedCPU) {
			t.AddRow(append([]string{run.Mode.String()}, row...)...)
		}
	}
	t.AddNote("DoCeph moves messenger/OSD cycles from host-* to bf3-*-arm; the host keeps BlueStore + the RPC/DMA server")
	return t
}
